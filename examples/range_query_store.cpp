// Range-query store: the workload class the paper's introduction motivates
// — long read-only operations (range queries / traversals) that never fit
// best-effort HTM, mixed with short updates.
//
//   build/examples/range_query_store
//
// Runs the same lock-protected hash map under plain TLE and under SpRWL in
// the virtual-time simulator and prints what happens to the long readers:
// TLE burns its retry budget on capacity aborts and serializes on the
// fallback lock, SpRWL executes them uninstrumented and keeps scaling.
#include <cstdio>

#include "core/sprwl.h"
#include "htm/engine.h"
#include "locks/tle.h"
#include "sim/simulator.h"
#include "workloads/driver.h"
#include "workloads/hashmap.h"

namespace {

using namespace sprwl;

workloads::DriverConfig scan_workload(int threads) {
  workloads::DriverConfig dc;
  dc.threads = threads;
  dc.update_ratio = 0.10;
  dc.lookups_per_read = 10;  // a "range query": ~10 bucket traversals
  dc.key_space = 65536;
  dc.warmup_cycles = 300'000;
  dc.measure_cycles = 3'000'000;
  dc.seed = 7;
  return dc;
}

workloads::HashMap make_store(int threads) {
  workloads::HashMap::Config mc;
  mc.buckets = 256;  // long chains: one scan touches ~64 cache lines
  mc.capacity = 65536;
  mc.max_threads = threads;
  workloads::HashMap map(mc);
  Rng rng(7);
  map.populate(32768, 65536, rng);
  return map;
}

template <class Lock>
void run_one(const char* name, Lock& lock, int threads) {
  htm::Engine engine{htm::EngineConfig{}};  // Broadwell-like capacity
  workloads::HashMap map = make_store(threads);
  sim::Simulator sim;
  const workloads::RunResult r =
      workloads::run_hashmap(sim, engine, lock, map, scan_workload(threads));
  const auto& reads = r.lock_stats.reads;
  std::printf(
      "%-6s | %8.3e tx/s | range queries: %5.1f%% in HTM, %5.1f%% "
      "uninstrumented, %5.1f%% under the global lock | capacity aborts: "
      "%llu\n",
      name, r.throughput_tx_s(),
      100.0 * static_cast<double>(reads.htm) / static_cast<double>(reads.total()),
      100.0 * static_cast<double>(reads.unins) / static_cast<double>(reads.total()),
      100.0 * static_cast<double>(reads.gl) / static_cast<double>(reads.total()),
      static_cast<unsigned long long>(r.engine_stats.aborts_capacity));
}

}  // namespace

int main() {
  constexpr int kThreads = 28;
  std::printf("range-query store, %d threads, 10%% updates\n", kThreads);

  locks::TLELock::Config tc;
  tc.max_threads = kThreads;
  locks::TLELock tle{tc};
  run_one("TLE", tle, kThreads);

  core::SpRWLock sprwl{
      core::Config::variant(core::SchedulingVariant::kFull, kThreads)};
  run_one("SpRWL", sprwl, kThreads);
  return 0;
}
