// Lock advisor: runs a user-described workload (update ratio, reader size,
// thread count) under every lock in the library and prints a ranked table —
// the "which synchronization primitive should I use?" question the paper's
// evaluation answers per workload regime.
//
//   build/examples/lock_advisor [updates%] [lookups-per-read] [threads]
//   e.g. build/examples/lock_advisor 10 10 28
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/sprwl.h"
#include "htm/engine.h"
#include "locks/brlock.h"
#include "locks/passive_rwlock.h"
#include "locks/phase_fair.h"
#include "locks/posix_rwlock.h"
#include "locks/rwle.h"
#include "locks/tle.h"
#include "sim/simulator.h"
#include "workloads/driver.h"
#include "workloads/hashmap.h"

namespace {

using namespace sprwl;

struct Entry {
  std::string name;
  double tx_s;
  double read_lat;
  double write_lat;
};

template <class Lock>
Entry measure(const char* name, std::unique_ptr<Lock> lock,
              const workloads::DriverConfig& dc) {
  htm::Engine engine{htm::EngineConfig{}};
  workloads::HashMap::Config mc;
  mc.buckets = 256;
  mc.capacity = 65536;
  mc.max_threads = dc.threads;
  workloads::HashMap map(mc);
  Rng rng(3);
  map.populate(32768, dc.key_space, rng);
  sim::Simulator sim;
  const workloads::RunResult r = run_hashmap(sim, engine, *lock, map, dc);
  return Entry{name, r.throughput_tx_s(), r.read_latency.mean(),
               r.write_latency.mean()};
}

}  // namespace

int main(int argc, char** argv) {
  const double updates = argc > 1 ? std::atof(argv[1]) / 100.0 : 0.10;
  const int lookups = argc > 2 ? std::atoi(argv[2]) : 10;
  const int threads = argc > 3 ? std::atoi(argv[3]) : 28;

  workloads::DriverConfig dc;
  dc.threads = threads;
  dc.update_ratio = updates;
  dc.lookups_per_read = lookups;
  dc.key_space = 65536;
  dc.warmup_cycles = 300'000;
  dc.measure_cycles = 3'000'000;
  dc.seed = 3;

  std::printf("workload: %.0f%% updates, %d lookups/read, %d threads\n",
              updates * 100, lookups, threads);

  std::vector<Entry> results;
  results.push_back(measure("SpRWL",
                            std::make_unique<core::SpRWLock>(core::Config::variant(
                                core::SchedulingVariant::kFull, threads)),
                            dc));
  {
    core::Config c = core::Config::variant(core::SchedulingVariant::kFull, threads);
    c.use_snzi = true;
    results.push_back(
        measure("SpRWL+SNZI", std::make_unique<core::SpRWLock>(c), dc));
  }
  {
    locks::TLELock::Config c;
    c.max_threads = threads;
    results.push_back(measure("TLE", std::make_unique<locks::TLELock>(c), dc));
  }
  {
    locks::RWLELock::Config c;
    c.max_threads = threads;
    results.push_back(measure("RW-LE", std::make_unique<locks::RWLELock>(c), dc));
  }
  results.push_back(
      measure("RWL", std::make_unique<locks::PosixRWLock>(threads), dc));
  results.push_back(
      measure("BRLock", std::make_unique<locks::BRLock>(threads), dc));
  results.push_back(
      measure("PhaseFair", std::make_unique<locks::PhaseFairRWLock>(threads), dc));
  results.push_back(
      measure("PRWL", std::make_unique<locks::PassiveRWLock>(threads), dc));

  std::sort(results.begin(), results.end(),
            [](const Entry& a, const Entry& b) { return a.tx_s > b.tx_s; });

  std::printf("%-12s %12s %14s %14s\n", "lock", "tx/s", "read lat (cy)",
              "write lat (cy)");
  for (const Entry& e : results) {
    std::printf("%-12s %12.3e %14.0f %14.0f\n", e.name.c_str(), e.tx_s, e.read_lat,
                e.write_lat);
  }
  std::printf("\nrecommendation: %s\n", results.front().name.c_str());
  return 0;
}
