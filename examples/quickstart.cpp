// Quickstart: protect shared data with SpRWL on plain std::threads.
//
//   build/examples/quickstart
//
// Demonstrates the three things a user needs:
//  1. install an htm::Engine (the emulated best-effort HTM),
//  2. give every thread a dense id (ThreadIdScope / sim helpers),
//  3. wrap critical sections in lock.read()/lock.write() with shared data
//     in htm::Shared<T> cells.
#include <cstdio>
#include <vector>

#include "core/sprwl.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "sim/simulator.h"

int main() {
  using namespace sprwl;

  constexpr int kThreads = 4;

  // 1. The "machine": a best-effort HTM with Broadwell-like capacity.
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);

  // 2. The lock (full SpRWL: reader+writer scheduling, HTM-first readers).
  core::SpRWLock lock{core::Config::variant(core::SchedulingVariant::kFull, kThreads)};

  // 3. Shared data lives in Shared<T> cells so transactional writers and
  //    uninstrumented readers can touch it safely.
  std::vector<htm::Shared<std::uint64_t>> counters(64);

  sim::run_real_threads(kThreads, [&](int tid) {
    for (int op = 0; op < 20000; ++op) {
      if (op % 10 == 0) {  // 10% updates
        lock.write(/*cs_id=*/1, [&] {
          auto& c = counters[static_cast<std::size_t>(op % 64)];
          c.store(c.load() + 1);
        });
      } else {  // 90% read-only: sums run outside any transaction
        lock.read(/*cs_id=*/0, [&] {
          std::uint64_t sum = 0;
          for (auto& c : counters) sum += c.load();
          (void)sum;
        });
      }
    }
    (void)tid;
  });

  std::uint64_t total = 0;
  for (auto& c : counters) total += c.raw_load();
  const locks::LockStats s = lock.stats();
  std::printf("total increments        : %llu (expected %d)\n",
              static_cast<unsigned long long>(total), kThreads * 2000);
  std::printf("reads  htm/unins        : %llu / %llu\n",
              static_cast<unsigned long long>(s.reads.htm),
              static_cast<unsigned long long>(s.reads.unins));
  std::printf("writes htm/gl           : %llu / %llu\n",
              static_cast<unsigned long long>(s.writes.htm),
              static_cast<unsigned long long>(s.writes.gl));
  std::printf("writer aborts by readers: %llu\n",
              static_cast<unsigned long long>(lock.reader_abort_count()));
  return total == static_cast<std::uint64_t>(kThreads) * 2000 ? 0 : 1;
}
