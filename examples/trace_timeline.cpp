// Decision-timeline tracing: install a trace::Tracer around a contended
// SpRWL run and print what every thread decided, in virtual-time order —
// readers waiting for writers, writers aborted by readers, SGL round trips.
//
//   build/examples/trace_timeline
#include <cstdio>

#include "common/trace.h"
#include "core/sprwl.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "sim/simulator.h"

int main() {
  using namespace sprwl;

  constexpr int kThreads = 4;
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope escope(engine);
  core::Config cfg = core::Config::variant(core::SchedulingVariant::kFull, kThreads);
  cfg.reader_htm_first = false;  // show the uninstrumented reader protocol
  core::SpRWLock lock{cfg};
  htm::Shared<std::uint64_t> value;

  trace::Tracer tracer;
  trace::TracerScope tscope(tracer);

  sim::Simulator sim;
  sim.run(kThreads, [&](int tid) {
    Rng rng(static_cast<std::uint64_t>(tid) + 1);
    for (int i = 0; i < 6; ++i) {
      if (tid == 0) {  // the writer
        lock.write(1, [&] {
          value.store(value.load() + 1);
          platform::advance(3'000);
        });
        platform::advance(2'000);
      } else {  // long readers
        lock.read(0, [&] { platform::advance(8'000 + rng.next_below(4'000)); });
        platform::advance(1'000);
      }
    }
  });

  std::printf("%12s  %4s  %-20s %s\n", "virt-time", "tid", "event", "arg");
  for (const trace::Record& r : tracer.drain()) {
    std::printf("%12llu  %4d  %-20s %u\n",
                static_cast<unsigned long long>(r.time), r.tid,
                trace::to_string(r.event), r.arg);
  }
  std::printf("\nfinal value: %llu (expected 6)\n",
              static_cast<unsigned long long>(value.raw_load()));
  return value.raw_load() == 6 ? 0 : 1;
}
