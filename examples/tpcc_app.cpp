// In-memory order-processing application: the full TPC-C workload running
// against the library's Database with one global SpRWL, as in the paper's
// Section 4.2 evaluation.
//
//   build/examples/tpcc_app
//
// Prints per-transaction-type throughput, the commit-mode breakdown, and
// verifies the TPC-C consistency conditions afterwards.
#include <cstdio>

#include "core/sprwl.h"
#include "htm/engine.h"
#include "sim/simulator.h"
#include "tpcc/tpcc_driver.h"

int main() {
  using namespace sprwl;

  constexpr int kThreads = 8;

  tpcc::Scale scale;
  scale.warehouses = kThreads;
  scale.customers_per_district = 120;
  scale.items = 2000;
  scale.order_ring = 128;
  scale.max_threads = kThreads;
  tpcc::Database db(scale);
  db.populate();

  htm::Engine engine{htm::EngineConfig{}};
  core::SpRWLock lock{core::Config::variant(core::SchedulingVariant::kFull, kThreads)};

  tpcc::TpccDriverConfig dc;
  dc.threads = kThreads;
  dc.warmup_cycles = 300'000;
  dc.measure_cycles = 5'000'000;
  sim::Simulator sim;
  const tpcc::TpccRunResult r = run_tpcc(sim, engine, lock, db, dc);

  std::printf("TPC-C on %d warehouses / %d threads under SpRWL\n",
              scale.warehouses, kThreads);
  std::printf("  throughput    : %.3e tx/s\n", r.throughput_tx_s());
  std::printf("  new-order     : %llu\n", static_cast<unsigned long long>(r.new_orders));
  std::printf("  payment       : %llu\n", static_cast<unsigned long long>(r.payments));
  std::printf("  order-status  : %llu\n",
              static_cast<unsigned long long>(r.order_statuses));
  std::printf("  delivery      : %llu\n", static_cast<unsigned long long>(r.deliveries));
  std::printf("  stock-level   : %llu\n",
              static_cast<unsigned long long>(r.stock_levels));
  const auto& w = r.lock_stats.writes;
  const auto& rd = r.lock_stats.reads;
  std::printf("  updates       : %.1f%% HTM, %.1f%% global lock\n",
              100.0 * static_cast<double>(w.htm) / static_cast<double>(w.total()),
              100.0 * static_cast<double>(w.gl) / static_cast<double>(w.total()));
  std::printf("  read-only     : %.1f%% HTM, %.1f%% uninstrumented\n",
              100.0 * static_cast<double>(rd.htm) / static_cast<double>(rd.total()),
              100.0 * static_cast<double>(rd.unins) / static_cast<double>(rd.total()));
  std::printf("  mean latency  : reads %.0f cycles, writes %.0f cycles\n",
              r.read_latency.mean(), r.write_latency.mean());

  const bool c1 = db.check_warehouse_ytd();
  const bool c2 = db.check_next_order_id();
  const bool c3 = db.check_new_order_queue();
  const bool c4 = db.check_order_line_counts();
  std::printf("  consistency   : C1 %s, C2 %s, C3 %s, C4 %s\n", c1 ? "ok" : "FAIL",
              c2 ? "ok" : "FAIL", c3 ? "ok" : "FAIL", c4 ? "ok" : "FAIL");
  return (c1 && c2 && c3 && c4) ? 0 : 1;
}
