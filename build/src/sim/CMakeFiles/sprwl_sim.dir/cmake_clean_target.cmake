file(REMOVE_RECURSE
  "libsprwl_sim.a"
)
