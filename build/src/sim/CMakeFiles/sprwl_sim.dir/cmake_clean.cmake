file(REMOVE_RECURSE
  "CMakeFiles/sprwl_sim.dir/fiber_switch.S.o"
  "CMakeFiles/sprwl_sim.dir/simulator.cpp.o"
  "CMakeFiles/sprwl_sim.dir/simulator.cpp.o.d"
  "libsprwl_sim.a"
  "libsprwl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang ASM CXX)
  include(CMakeFiles/sprwl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
