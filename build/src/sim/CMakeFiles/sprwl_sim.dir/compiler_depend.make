# Empty compiler generated dependencies file for sprwl_sim.
# This may be replaced when dependencies are built.
