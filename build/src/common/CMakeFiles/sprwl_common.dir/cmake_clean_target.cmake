file(REMOVE_RECURSE
  "libsprwl_common.a"
)
