# Empty dependencies file for sprwl_common.
# This may be replaced when dependencies are built.
