file(REMOVE_RECURSE
  "CMakeFiles/sprwl_common.dir/platform.cpp.o"
  "CMakeFiles/sprwl_common.dir/platform.cpp.o.d"
  "libsprwl_common.a"
  "libsprwl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprwl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
