# Empty dependencies file for sprwl_htm.
# This may be replaced when dependencies are built.
