file(REMOVE_RECURSE
  "libsprwl_htm.a"
)
