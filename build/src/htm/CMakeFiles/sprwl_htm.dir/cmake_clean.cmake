file(REMOVE_RECURSE
  "CMakeFiles/sprwl_htm.dir/engine.cpp.o"
  "CMakeFiles/sprwl_htm.dir/engine.cpp.o.d"
  "libsprwl_htm.a"
  "libsprwl_htm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprwl_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
