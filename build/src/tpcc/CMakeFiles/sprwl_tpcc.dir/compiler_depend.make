# Empty compiler generated dependencies file for sprwl_tpcc.
# This may be replaced when dependencies are built.
