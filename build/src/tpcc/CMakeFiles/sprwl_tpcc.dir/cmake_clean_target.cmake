file(REMOVE_RECURSE
  "libsprwl_tpcc.a"
)
