file(REMOVE_RECURSE
  "CMakeFiles/sprwl_tpcc.dir/tpcc.cpp.o"
  "CMakeFiles/sprwl_tpcc.dir/tpcc.cpp.o.d"
  "libsprwl_tpcc.a"
  "libsprwl_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprwl_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
