
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_ema.cpp" "tests/CMakeFiles/test_common.dir/common/test_ema.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_ema.cpp.o.d"
  "/root/repo/tests/common/test_histogram.cpp" "tests/CMakeFiles/test_common.dir/common/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_histogram.cpp.o.d"
  "/root/repo/tests/common/test_platform.cpp" "tests/CMakeFiles/test_common.dir/common/test_platform.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_platform.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_trace.cpp" "tests/CMakeFiles/test_common.dir/common/test_trace.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sprwl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sprwl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/sprwl_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/tpcc/CMakeFiles/sprwl_tpcc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
