file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_adaptive.cpp.o"
  "CMakeFiles/test_core.dir/core/test_adaptive.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_base_safety.cpp.o"
  "CMakeFiles/test_core.dir/core/test_base_safety.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_config_fuzz.cpp.o"
  "CMakeFiles/test_core.dir/core/test_config_fuzz.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_latency_tradeoff.cpp.o"
  "CMakeFiles/test_core.dir/core/test_latency_tradeoff.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_scheduling.cpp.o"
  "CMakeFiles/test_core.dir/core/test_scheduling.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_variants.cpp.o"
  "CMakeFiles/test_core.dir/core/test_variants.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_versioned_sgl.cpp.o"
  "CMakeFiles/test_core.dir/core/test_versioned_sgl.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
