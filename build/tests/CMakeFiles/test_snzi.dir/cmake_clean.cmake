file(REMOVE_RECURSE
  "CMakeFiles/test_snzi.dir/snzi/test_snzi.cpp.o"
  "CMakeFiles/test_snzi.dir/snzi/test_snzi.cpp.o.d"
  "test_snzi"
  "test_snzi.pdb"
  "test_snzi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snzi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
