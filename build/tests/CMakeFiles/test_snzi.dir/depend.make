# Empty dependencies file for test_snzi.
# This may be replaced when dependencies are built.
