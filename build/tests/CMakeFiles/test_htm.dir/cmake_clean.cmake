file(REMOVE_RECURSE
  "CMakeFiles/test_htm.dir/htm/test_engine_basic.cpp.o"
  "CMakeFiles/test_htm.dir/htm/test_engine_basic.cpp.o.d"
  "CMakeFiles/test_htm.dir/htm/test_engine_capacity.cpp.o"
  "CMakeFiles/test_htm.dir/htm/test_engine_capacity.cpp.o.d"
  "CMakeFiles/test_htm.dir/htm/test_engine_conflicts.cpp.o"
  "CMakeFiles/test_htm.dir/htm/test_engine_conflicts.cpp.o.d"
  "CMakeFiles/test_htm.dir/htm/test_line_set.cpp.o"
  "CMakeFiles/test_htm.dir/htm/test_line_set.cpp.o.d"
  "CMakeFiles/test_htm.dir/htm/test_opacity.cpp.o"
  "CMakeFiles/test_htm.dir/htm/test_opacity.cpp.o.d"
  "CMakeFiles/test_htm.dir/htm/test_serializability.cpp.o"
  "CMakeFiles/test_htm.dir/htm/test_serializability.cpp.o.d"
  "CMakeFiles/test_htm.dir/htm/test_shared.cpp.o"
  "CMakeFiles/test_htm.dir/htm/test_shared.cpp.o.d"
  "test_htm"
  "test_htm.pdb"
  "test_htm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
