file(REMOVE_RECURSE
  "CMakeFiles/test_tpcc.dir/tpcc/test_index_shadow.cpp.o"
  "CMakeFiles/test_tpcc.dir/tpcc/test_index_shadow.cpp.o.d"
  "CMakeFiles/test_tpcc.dir/tpcc/test_tpcc_concurrency.cpp.o"
  "CMakeFiles/test_tpcc.dir/tpcc/test_tpcc_concurrency.cpp.o.d"
  "CMakeFiles/test_tpcc.dir/tpcc/test_tpcc_database.cpp.o"
  "CMakeFiles/test_tpcc.dir/tpcc/test_tpcc_database.cpp.o.d"
  "CMakeFiles/test_tpcc.dir/tpcc/test_tpcc_details.cpp.o"
  "CMakeFiles/test_tpcc.dir/tpcc/test_tpcc_details.cpp.o.d"
  "CMakeFiles/test_tpcc.dir/tpcc/test_tpcc_random.cpp.o"
  "CMakeFiles/test_tpcc.dir/tpcc/test_tpcc_random.cpp.o.d"
  "test_tpcc"
  "test_tpcc.pdb"
  "test_tpcc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
