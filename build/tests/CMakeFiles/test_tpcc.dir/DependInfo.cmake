
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tpcc/test_index_shadow.cpp" "tests/CMakeFiles/test_tpcc.dir/tpcc/test_index_shadow.cpp.o" "gcc" "tests/CMakeFiles/test_tpcc.dir/tpcc/test_index_shadow.cpp.o.d"
  "/root/repo/tests/tpcc/test_tpcc_concurrency.cpp" "tests/CMakeFiles/test_tpcc.dir/tpcc/test_tpcc_concurrency.cpp.o" "gcc" "tests/CMakeFiles/test_tpcc.dir/tpcc/test_tpcc_concurrency.cpp.o.d"
  "/root/repo/tests/tpcc/test_tpcc_database.cpp" "tests/CMakeFiles/test_tpcc.dir/tpcc/test_tpcc_database.cpp.o" "gcc" "tests/CMakeFiles/test_tpcc.dir/tpcc/test_tpcc_database.cpp.o.d"
  "/root/repo/tests/tpcc/test_tpcc_details.cpp" "tests/CMakeFiles/test_tpcc.dir/tpcc/test_tpcc_details.cpp.o" "gcc" "tests/CMakeFiles/test_tpcc.dir/tpcc/test_tpcc_details.cpp.o.d"
  "/root/repo/tests/tpcc/test_tpcc_random.cpp" "tests/CMakeFiles/test_tpcc.dir/tpcc/test_tpcc_random.cpp.o" "gcc" "tests/CMakeFiles/test_tpcc.dir/tpcc/test_tpcc_random.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sprwl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sprwl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/sprwl_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/tpcc/CMakeFiles/sprwl_tpcc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
