# Empty dependencies file for test_tpcc.
# This may be replaced when dependencies are built.
