file(REMOVE_RECURSE
  "CMakeFiles/test_locks.dir/locks/test_brlock_scaling.cpp.o"
  "CMakeFiles/test_locks.dir/locks/test_brlock_scaling.cpp.o.d"
  "CMakeFiles/test_locks.dir/locks/test_lock_safety.cpp.o"
  "CMakeFiles/test_locks.dir/locks/test_lock_safety.cpp.o.d"
  "CMakeFiles/test_locks.dir/locks/test_mcs_rwlock.cpp.o"
  "CMakeFiles/test_locks.dir/locks/test_mcs_rwlock.cpp.o.d"
  "CMakeFiles/test_locks.dir/locks/test_phase_fair.cpp.o"
  "CMakeFiles/test_locks.dir/locks/test_phase_fair.cpp.o.d"
  "CMakeFiles/test_locks.dir/locks/test_rwle.cpp.o"
  "CMakeFiles/test_locks.dir/locks/test_rwle.cpp.o.d"
  "CMakeFiles/test_locks.dir/locks/test_sgl.cpp.o"
  "CMakeFiles/test_locks.dir/locks/test_sgl.cpp.o.d"
  "CMakeFiles/test_locks.dir/locks/test_tle.cpp.o"
  "CMakeFiles/test_locks.dir/locks/test_tle.cpp.o.d"
  "test_locks"
  "test_locks.pdb"
  "test_locks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
