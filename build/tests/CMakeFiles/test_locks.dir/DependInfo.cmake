
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/locks/test_brlock_scaling.cpp" "tests/CMakeFiles/test_locks.dir/locks/test_brlock_scaling.cpp.o" "gcc" "tests/CMakeFiles/test_locks.dir/locks/test_brlock_scaling.cpp.o.d"
  "/root/repo/tests/locks/test_lock_safety.cpp" "tests/CMakeFiles/test_locks.dir/locks/test_lock_safety.cpp.o" "gcc" "tests/CMakeFiles/test_locks.dir/locks/test_lock_safety.cpp.o.d"
  "/root/repo/tests/locks/test_mcs_rwlock.cpp" "tests/CMakeFiles/test_locks.dir/locks/test_mcs_rwlock.cpp.o" "gcc" "tests/CMakeFiles/test_locks.dir/locks/test_mcs_rwlock.cpp.o.d"
  "/root/repo/tests/locks/test_phase_fair.cpp" "tests/CMakeFiles/test_locks.dir/locks/test_phase_fair.cpp.o" "gcc" "tests/CMakeFiles/test_locks.dir/locks/test_phase_fair.cpp.o.d"
  "/root/repo/tests/locks/test_rwle.cpp" "tests/CMakeFiles/test_locks.dir/locks/test_rwle.cpp.o" "gcc" "tests/CMakeFiles/test_locks.dir/locks/test_rwle.cpp.o.d"
  "/root/repo/tests/locks/test_sgl.cpp" "tests/CMakeFiles/test_locks.dir/locks/test_sgl.cpp.o" "gcc" "tests/CMakeFiles/test_locks.dir/locks/test_sgl.cpp.o.d"
  "/root/repo/tests/locks/test_tle.cpp" "tests/CMakeFiles/test_locks.dir/locks/test_tle.cpp.o" "gcc" "tests/CMakeFiles/test_locks.dir/locks/test_tle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sprwl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sprwl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/sprwl_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/tpcc/CMakeFiles/sprwl_tpcc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
