file(REMOVE_RECURSE
  "CMakeFiles/test_structures.dir/structures/test_btree.cpp.o"
  "CMakeFiles/test_structures.dir/structures/test_btree.cpp.o.d"
  "CMakeFiles/test_structures.dir/structures/test_btree_edges.cpp.o"
  "CMakeFiles/test_structures.dir/structures/test_btree_edges.cpp.o.d"
  "test_structures"
  "test_structures.pdb"
  "test_structures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
