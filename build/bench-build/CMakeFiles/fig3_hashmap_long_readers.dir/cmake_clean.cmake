file(REMOVE_RECURSE
  "../bench/fig3_hashmap_long_readers"
  "../bench/fig3_hashmap_long_readers.pdb"
  "CMakeFiles/fig3_hashmap_long_readers.dir/fig3_hashmap_long_readers.cpp.o"
  "CMakeFiles/fig3_hashmap_long_readers.dir/fig3_hashmap_long_readers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_hashmap_long_readers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
