# Empty dependencies file for fig3_hashmap_long_readers.
# This may be replaced when dependencies are built.
