# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig3_hashmap_long_readers.
