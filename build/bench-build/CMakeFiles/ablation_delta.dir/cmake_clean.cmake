file(REMOVE_RECURSE
  "../bench/ablation_delta"
  "../bench/ablation_delta.pdb"
  "CMakeFiles/ablation_delta.dir/ablation_delta.cpp.o"
  "CMakeFiles/ablation_delta.dir/ablation_delta.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
