file(REMOVE_RECURSE
  "../bench/fig7_tpcc"
  "../bench/fig7_tpcc.pdb"
  "CMakeFiles/fig7_tpcc.dir/fig7_tpcc.cpp.o"
  "CMakeFiles/fig7_tpcc.dir/fig7_tpcc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
