# Empty compiler generated dependencies file for fig7_tpcc.
# This may be replaced when dependencies are built.
