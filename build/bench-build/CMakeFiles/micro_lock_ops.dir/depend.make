# Empty dependencies file for micro_lock_ops.
# This may be replaced when dependencies are built.
