file(REMOVE_RECURSE
  "../bench/micro_lock_ops"
  "../bench/micro_lock_ops.pdb"
  "CMakeFiles/micro_lock_ops.dir/micro_lock_ops.cpp.o"
  "CMakeFiles/micro_lock_ops.dir/micro_lock_ops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_lock_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
