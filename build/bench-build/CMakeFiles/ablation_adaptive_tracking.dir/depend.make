# Empty dependencies file for ablation_adaptive_tracking.
# This may be replaced when dependencies are built.
