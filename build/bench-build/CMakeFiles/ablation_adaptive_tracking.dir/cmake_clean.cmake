file(REMOVE_RECURSE
  "../bench/ablation_adaptive_tracking"
  "../bench/ablation_adaptive_tracking.pdb"
  "CMakeFiles/ablation_adaptive_tracking.dir/ablation_adaptive_tracking.cpp.o"
  "CMakeFiles/ablation_adaptive_tracking.dir/ablation_adaptive_tracking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
