file(REMOVE_RECURSE
  "../bench/extra_btree_range_scan"
  "../bench/extra_btree_range_scan.pdb"
  "CMakeFiles/extra_btree_range_scan.dir/extra_btree_range_scan.cpp.o"
  "CMakeFiles/extra_btree_range_scan.dir/extra_btree_range_scan.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_btree_range_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
