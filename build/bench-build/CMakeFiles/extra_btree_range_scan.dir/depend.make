# Empty dependencies file for extra_btree_range_scan.
# This may be replaced when dependencies are built.
