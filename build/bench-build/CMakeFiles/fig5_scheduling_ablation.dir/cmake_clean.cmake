file(REMOVE_RECURSE
  "../bench/fig5_scheduling_ablation"
  "../bench/fig5_scheduling_ablation.pdb"
  "CMakeFiles/fig5_scheduling_ablation.dir/fig5_scheduling_ablation.cpp.o"
  "CMakeFiles/fig5_scheduling_ablation.dir/fig5_scheduling_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_scheduling_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
