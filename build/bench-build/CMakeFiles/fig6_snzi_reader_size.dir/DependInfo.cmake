
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_snzi_reader_size.cpp" "bench-build/CMakeFiles/fig6_snzi_reader_size.dir/fig6_snzi_reader_size.cpp.o" "gcc" "bench-build/CMakeFiles/fig6_snzi_reader_size.dir/fig6_snzi_reader_size.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sprwl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sprwl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/sprwl_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/tpcc/CMakeFiles/sprwl_tpcc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
