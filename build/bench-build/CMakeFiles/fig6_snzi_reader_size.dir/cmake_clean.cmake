file(REMOVE_RECURSE
  "../bench/fig6_snzi_reader_size"
  "../bench/fig6_snzi_reader_size.pdb"
  "CMakeFiles/fig6_snzi_reader_size.dir/fig6_snzi_reader_size.cpp.o"
  "CMakeFiles/fig6_snzi_reader_size.dir/fig6_snzi_reader_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_snzi_reader_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
