# Empty compiler generated dependencies file for fig6_snzi_reader_size.
# This may be replaced when dependencies are built.
