file(REMOVE_RECURSE
  "../bench/fig4_hashmap_short_readers"
  "../bench/fig4_hashmap_short_readers.pdb"
  "CMakeFiles/fig4_hashmap_short_readers.dir/fig4_hashmap_short_readers.cpp.o"
  "CMakeFiles/fig4_hashmap_short_readers.dir/fig4_hashmap_short_readers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_hashmap_short_readers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
