# Empty dependencies file for fig4_hashmap_short_readers.
# This may be replaced when dependencies are built.
