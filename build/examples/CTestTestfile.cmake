# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;11;sprwl_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_range_query_store "/root/repo/build/examples/range_query_store")
set_tests_properties(example_range_query_store PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;12;sprwl_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tpcc_app "/root/repo/build/examples/tpcc_app")
set_tests_properties(example_tpcc_app PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;13;sprwl_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lock_advisor "/root/repo/build/examples/lock_advisor")
set_tests_properties(example_lock_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;14;sprwl_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_timeline "/root/repo/build/examples/trace_timeline")
set_tests_properties(example_trace_timeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;15;sprwl_example;/root/repo/examples/CMakeLists.txt;0;")
