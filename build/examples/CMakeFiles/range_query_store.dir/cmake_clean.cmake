file(REMOVE_RECURSE
  "CMakeFiles/range_query_store.dir/range_query_store.cpp.o"
  "CMakeFiles/range_query_store.dir/range_query_store.cpp.o.d"
  "range_query_store"
  "range_query_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_query_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
