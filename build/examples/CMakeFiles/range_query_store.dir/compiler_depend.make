# Empty compiler generated dependencies file for range_query_store.
# This may be replaced when dependencies are built.
