file(REMOVE_RECURSE
  "CMakeFiles/lock_advisor.dir/lock_advisor.cpp.o"
  "CMakeFiles/lock_advisor.dir/lock_advisor.cpp.o.d"
  "lock_advisor"
  "lock_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
