# Empty dependencies file for lock_advisor.
# This may be replaced when dependencies are built.
