// Hierarchical per-socket reader tracking (Config::socket_sharded_tracking,
// DESIGN.md §11) and the lock's entry-point guards: construction rejects
// topologies too small for the shard layout, out-of-range thread ids throw
// instead of corrupting a neighbour's flag slot, SNZI auto-sizing follows
// max_threads, and the sharded layout preserves the base algorithm's
// safety scenarios unchanged.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/platform.h"
#include "core/sprwl.h"
#include "htm/shared.h"
#include "sim/simulator.h"

namespace sprwl::core {
namespace {

struct alignas(64) Cell {
  htm::Shared<std::uint64_t> v;
};

Config sharded_config(int threads, int sockets) {
  Config cfg = Config::variant(SchedulingVariant::kNoSched, threads);
  cfg.reader_htm_first = false;
  cfg.socket_sharded_tracking = true;
  cfg.topology = sim::Topology::split(threads, sockets);
  return cfg;
}

// A dense id outside [0, max_threads) would index past the flag array (or,
// sharded, wrap onto another socket's shard). Both entry points must throw
// instead of asserting away the problem in release builds.
TEST(SpRWLGuards, ThreadIdOutOfRangeThrows) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Config cfg = Config::variant(SchedulingVariant::kNoSched, 2);
  SpRWLock lock{cfg};
  ThreadIdScope tid(2);  // == max_threads: first invalid id
  EXPECT_THROW(lock.read(0, [] {}), std::out_of_range);
  EXPECT_THROW(lock.write(1, [] {}), std::out_of_range);
  ThreadIdScope far(1000);
  EXPECT_THROW(lock.read(0, [] {}), std::out_of_range);
}

TEST(SpRWLGuards, ValidThreadIdStillWorks) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Config cfg = Config::variant(SchedulingVariant::kNoSched, 2);
  SpRWLock lock{cfg};
  Cell x;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      lock.read(0, [&] { (void)x.v.load(); });
    } else {
      lock.write(1, [&] { x.v.store(1); });
    }
  });
  EXPECT_EQ(x.v.raw_load(), 1u);
}

// An undersized topology would map two tids to the same shard slot; the
// constructor refuses rather than silently aliasing reader flags.
TEST(SpRWLSharded, ConstructorRejectsUndersizedTopology) {
  Config c = Config::variant(SchedulingVariant::kNoSched, 4);
  c.socket_sharded_tracking = true;
  c.topology.sockets = 2;
  c.topology.cores_per_socket = 1;  // 2 * 1 < 4 threads
  EXPECT_THROW(SpRWLock{c}, std::invalid_argument);
  c.topology.cores_per_socket = 0;  // unset cps with >1 socket
  EXPECT_THROW(SpRWLock{c}, std::invalid_argument);
  c.topology = sim::Topology::split(4, 2);  // 2 * 2 >= 4: fine
  EXPECT_NO_THROW(SpRWLock{c});
}

// SNZI auto-sizing (snzi_levels = 0): the tree grows until the leaf row
// holds roughly max_threads / 2 slots, capped only at the tree's own
// kMaxLevels (past-256-thread cases live in test_bravo.cpp's regression).
TEST(SpRWLSharded, SnziAutoSizeTracksMaxThreads) {
  const struct {
    int max_threads;
    std::size_t leaves;
  } cases[] = {{1, 1}, {2, 1}, {64, 32}, {256, 128}};
  for (const auto& tc : cases) {
    Config c;
    c.max_threads = tc.max_threads;
    c.use_snzi = true;
    c.snzi_levels = 0;
    SpRWLock lock{c};
    EXPECT_EQ(lock.snzi_leaf_count(), tc.leaves)
        << "max_threads=" << tc.max_threads;
  }
  Config flat;  // no SNZI configured: no tree at all
  SpRWLock lock{flat};
  EXPECT_EQ(lock.snzi_leaf_count(), 0u);
}

// Fig. 1 under the sharded layout with the reader and writer on different
// sockets: the writer's commit scan reads socket summaries instead of flag
// lines, and must still abort while the remote reader is in its section.
TEST(SpRWLSharded, Fig1_WriterAbortsOnRemoteSocketReader) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  SpRWLock lock{sharded_config(2, 2)};  // tid 0 -> socket 0, tid 1 -> 1
  Cell x;
  std::vector<std::uint64_t> reader_saw;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      lock.read(0, [&] {
        reader_saw.push_back(x.v.load());
        platform::advance(50000);
        reader_saw.push_back(x.v.load());
      });
    } else {
      platform::advance(10000);
      lock.write(1, [&] { x.v.store(1); });
    }
  });
  ASSERT_EQ(reader_saw.size(), 2u);
  EXPECT_EQ(reader_saw[0], 0u);
  EXPECT_EQ(reader_saw[1], 0u);
  EXPECT_EQ(x.v.raw_load(), 1u);
  EXPECT_GE(lock.reader_abort_count(), 1u);
}

// Scan-cost accounting: only scans that found no reader are sampled (an
// abort unwinds past the sample), so an uncontended HTM write records
// exactly one passing scan with a non-zero virtual-cycle cost.
TEST(SpRWLSharded, PassingCommitScanIsSampled) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  SpRWLock lock{sharded_config(4, 2)};
  Cell x;
  sim::Simulator sim;
  sim.run(1, [&](int) { lock.write(1, [&] { x.v.store(1); }); });
  EXPECT_EQ(lock.stats().writes.htm, 1u);
  EXPECT_EQ(lock.commit_scan_count(), 1u);
  EXPECT_GT(lock.commit_scan_cycles(), 0u);
}

// Atomicity stress across both sockets: concurrent readers must never see
// the two cells out of sync while writers update them together.
TEST(SpRWLSharded, NoTornReadsAcrossSockets) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Config cfg = Config::variant(SchedulingVariant::kFull, 8);
  cfg.socket_sharded_tracking = true;
  cfg.topology = sim::Topology::split(8, 2);
  SpRWLock lock{cfg};
  Cell a, b;
  std::uint64_t torn = 0;
  sim::Simulator sim;
  sim.run(8, [&](int tid) {
    for (int op = 0; op < 20; ++op) {
      if (tid % 4 == 0) {  // tids 0 and 4: one writer per socket
        lock.write(1, [&] {
          const std::uint64_t n = a.v.load() + 1;
          a.v.store(n);
          b.v.store(n);
        });
      } else {
        lock.read(0, [&] {
          const std::uint64_t x = a.v.load();
          platform::advance(200);
          const std::uint64_t y = b.v.load();
          if (x != y) ++torn;
        });
      }
      platform::advance(100 * static_cast<std::uint64_t>(tid) + 50);
    }
  });
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(a.v.raw_load(), 40u);  // 2 writers x 20 increments
  EXPECT_EQ(a.v.raw_load(), b.v.raw_load());
}

// Sharded tracking composes with the SNZI indicator (the tree goes
// socket-major, see snzi/snzi.h): same atomicity guarantee.
TEST(SpRWLSharded, ComposesWithSocketMajorSnzi) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Config cfg = Config::variant(SchedulingVariant::kFull, 8);
  cfg.socket_sharded_tracking = true;
  cfg.topology = sim::Topology::split(8, 2);
  cfg.use_snzi = true;
  SpRWLock lock{cfg};
  EXPECT_GT(lock.snzi_leaf_count(), 0u);
  Cell a, b;
  std::uint64_t torn = 0;
  sim::Simulator sim;
  sim.run(8, [&](int tid) {
    for (int op = 0; op < 10; ++op) {
      if (tid == 0) {
        lock.write(1, [&] {
          const std::uint64_t n = a.v.load() + 1;
          a.v.store(n);
          b.v.store(n);
        });
      } else {
        lock.read(0, [&] {
          const std::uint64_t x = a.v.load();
          platform::advance(150);
          if (x != b.v.load()) ++torn;
        });
      }
      platform::advance(70 * static_cast<std::uint64_t>(tid) + 30);
    }
  });
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(a.v.raw_load(), 10u);
}

// RSync-aligned batching (Config::socket_batched_rsync, DESIGN.md §16) is
// meaningless without the socket-major shards and summaries it batches
// over; the constructor refuses the combination loudly.
TEST(SpRWLBatchedRsync, RequiresShardedTracking) {
  Config c = Config::variant(SchedulingVariant::kFull, 4);
  c.socket_batched_rsync = true;  // socket_sharded_tracking left off
  EXPECT_THROW(SpRWLock{c}, std::invalid_argument);
  c.socket_sharded_tracking = true;
  c.topology = sim::Topology::split(4, 2);
  EXPECT_NO_THROW(SpRWLock{c});
}

// The batched scheduling scans are heuristics, not safety: under the full
// scheduling variant (readers_wait, reader_join and writer_wait all
// exercised, with writers and readers on both sockets) the atomicity
// guarantee must be exactly the flat scan's.
TEST(SpRWLBatchedRsync, NoTornReadsWithBatchedScheduling) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Config cfg = Config::variant(SchedulingVariant::kFull, 8);
  cfg.reader_htm_first = false;  // drive the scheduled slow path itself
  cfg.socket_sharded_tracking = true;
  cfg.socket_batched_rsync = true;
  cfg.topology = sim::Topology::split(8, 2);
  SpRWLock lock{cfg};
  Cell a, b;
  std::uint64_t torn = 0;
  sim::Simulator sim;
  sim.run(8, [&](int tid) {
    for (int op = 0; op < 20; ++op) {
      if (tid % 4 == 0) {  // one writer per socket
        lock.write(1, [&] {
          const std::uint64_t n = a.v.load() + 1;
          a.v.store(n);
          b.v.store(n);
        });
      } else {
        lock.read(0, [&] {
          const std::uint64_t x = a.v.load();
          platform::advance(200);
          if (x != b.v.load()) ++torn;
        });
      }
      platform::advance(90 * static_cast<std::uint64_t>(tid) + 40);
    }
  });
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(a.v.raw_load(), 40u);
  EXPECT_EQ(a.v.raw_load(), b.v.raw_load());
  EXPECT_TRUE(lock.tracking_quiescent());
}

// The point of the batching: with every reader parked on socket 0, a
// writer's Alg. 3 wait scans socket 1's summary word and stops — the
// idle remote socket costs one line read, not cores_per_socket flag
// reads. Cheaper scheduling must not change WHO is waited for, so the
// batched and flat runs must agree on the section outcomes.
TEST(SpRWLBatchedRsync, AgreesWithFlatScanOutcomes) {
  const auto run_one = [](bool batched) {
    htm::Engine engine{htm::EngineConfig{}};
    htm::EngineScope scope(engine);
    Config cfg = Config::variant(SchedulingVariant::kFull, 4);
    cfg.reader_htm_first = false;
    cfg.socket_sharded_tracking = true;
    cfg.socket_batched_rsync = batched;
    cfg.topology = sim::Topology::split(4, 2);
    SpRWLock lock{cfg};
    Cell a, b;
    std::uint64_t torn = 0;
    sim::Simulator sim;
    sim.run(4, [&](int tid) {
      for (int op = 0; op < 12; ++op) {
        if (tid == 3) {
          lock.write(1, [&] {
            const std::uint64_t n = a.v.load() + 1;
            a.v.store(n);
            b.v.store(n);
          });
        } else {  // all readers on socket 0 (tids 0, 1) plus tid 2
          lock.read(0, [&] {
            const std::uint64_t x = a.v.load();
            platform::advance(300);
            if (x != b.v.load()) ++torn;
          });
        }
        platform::advance(110 * static_cast<std::uint64_t>(tid) + 60);
      }
    });
    struct Out {
      std::uint64_t torn, final_a, final_b;
    };
    return Out{torn, a.v.raw_load(), b.v.raw_load()};
  };
  const auto flat = run_one(false);
  const auto batched = run_one(true);
  EXPECT_EQ(flat.torn, 0u);
  EXPECT_EQ(batched.torn, 0u);
  EXPECT_EQ(flat.final_a, batched.final_a);
  EXPECT_EQ(flat.final_b, batched.final_b);
}

}  // namespace
}  // namespace sprwl::core
