// SpRWL base-algorithm safety: the scenarios of the paper's Figs. 1 and 2
// plus the SGL interplay rules of Alg. 1, scripted deterministically under
// the virtual-time simulator.
#include <gtest/gtest.h>

#include <vector>

#include "common/platform.h"
#include "core/sprwl.h"
#include "htm/shared.h"
#include "sim/simulator.h"

namespace sprwl::core {
namespace {

Config base_config(int threads) {
  // Pure Section-3.1 algorithm: no scheduling, no reader-HTM path, so the
  // base mechanism itself is what gets exercised.
  Config cfg = Config::variant(SchedulingVariant::kNoSched, threads);
  cfg.reader_htm_first = false;
  return cfg;
}

struct alignas(64) Cell {
  htm::Shared<std::uint64_t> v;
};

TEST(SpRWLBase, Fig1_WriterAbortsWhenReaderActiveAtCommit) {
  // Reader begins first and stays active across the writer's commit
  // attempt: the writer must not commit its first attempt and the reader
  // must observe x == 0 throughout.
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  SpRWLock lock{base_config(2)};
  Cell x;
  std::vector<std::uint64_t> reader_saw;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {  // reader: long, starts immediately
      lock.read(0, [&] {
        reader_saw.push_back(x.v.load());
        platform::advance(50000);
        reader_saw.push_back(x.v.load());
      });
    } else {  // writer: starts mid-reader
      platform::advance(10000);
      lock.write(1, [&] { x.v.store(1); });
    }
  });
  ASSERT_EQ(reader_saw.size(), 2u);
  EXPECT_EQ(reader_saw[0], 0u);
  EXPECT_EQ(reader_saw[1], 0u);  // no torn/partial view mid-section
  EXPECT_EQ(x.v.raw_load(), 1u);  // writer eventually succeeded
  EXPECT_GE(lock.reader_abort_count(), 1u);
}

TEST(SpRWLBase, Fig2_ReaderFinishingFirstLetsWriterCommitInHtm) {
  // Reader completes before the writer reaches its commit check: the
  // writer commits in HTM on the first attempt (no reader abort).
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  SpRWLock lock{base_config(2)};
  Cell x, y;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {  // short reader
      lock.read(0, [&] {
        (void)x.v.load();
        (void)y.v.load();
      });
    } else {  // writer overlapping the reader's start, committing later
      lock.write(1, [&] {
        x.v.store(5);
        y.v.store(7);
        platform::advance(20000);
      });
    }
  });
  EXPECT_EQ(x.v.raw_load(), 5u);
  EXPECT_EQ(y.v.raw_load(), 7u);
  EXPECT_EQ(lock.reader_abort_count(), 0u);
  const locks::LockStats s = lock.stats();
  EXPECT_EQ(s.writes.htm, 1u);
  EXPECT_EQ(s.writes.gl, 0u);
}

TEST(SpRWLBase, UninstrumentedReaderIsImmuneToCapacity) {
  // Readers touching far more lines than any HTM capacity still complete
  // (they run outside transactions); a TLE-style reader would fall back.
  htm::EngineConfig ecfg;
  ecfg.capacity = htm::CapacityProfile{"tiny", 8, 8};
  htm::Engine engine{ecfg};
  htm::EngineScope scope(engine);
  SpRWLock lock{base_config(1)};
  std::vector<Cell> cells(64);
  std::uint64_t sum = 0;
  sim::Simulator sim;
  sim.run(1, [&](int) {
    lock.read(0, [&] {
      for (auto& c : cells) sum += c.v.load();
    });
  });
  const locks::LockStats s = lock.stats();
  EXPECT_EQ(s.reads.unins, 1u);
  EXPECT_EQ(sum, 0u);
}

TEST(SpRWLBase, WriterCapacityAbortGoesToSgl) {
  htm::EngineConfig ecfg;
  ecfg.capacity = htm::CapacityProfile{"tiny", 8, 4};
  htm::Engine engine{ecfg};
  htm::EngineScope scope(engine);
  SpRWLock lock{base_config(1)};
  std::vector<Cell> cells(16);
  sim::Simulator sim;
  sim.run(1, [&](int) {
    lock.write(1, [&] {
      for (auto& c : cells) c.v.store(3);
    });
  });
  const locks::LockStats s = lock.stats();
  EXPECT_EQ(s.writes.gl, 1u);
  EXPECT_EQ(s.writes.htm, 0u);
  for (auto& c : cells) EXPECT_EQ(c.v.raw_load(), 3u);
  EXPECT_EQ(engine.stats().aborts_capacity, 1u);
}

TEST(SpRWLBase, ReaderDefersToSglWriter) {
  // A writer in the SGL fallback excludes uninstrumented readers: a reader
  // arriving mid-SGL-section must wait and then see the full update.
  htm::EngineConfig ecfg;
  ecfg.capacity = htm::CapacityProfile{"tiny", 64, 2};  // force SGL writers
  htm::Engine engine{ecfg};
  htm::EngineScope scope(engine);
  SpRWLock lock{base_config(2)};
  std::vector<Cell> cells(8);
  std::uint64_t reader_sum = 0;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {  // writer: capacity-aborts, then long SGL section
      lock.write(1, [&] {
        for (auto& c : cells) {
          c.v.store(1);
          platform::advance(5000);
        }
      });
    } else {  // reader arrives once the writer holds the SGL
      platform::advance(20000);
      lock.read(0, [&] {
        for (auto& c : cells) reader_sum += c.v.load();
      });
    }
  });
  // All-or-nothing: the reader waited for the SGL writer.
  EXPECT_EQ(reader_sum, 8u);
  EXPECT_EQ(lock.stats().writes.gl, 1u);
}

TEST(SpRWLBase, SglWriterWaitsForActiveReaders) {
  // A reader already inside its section when a writer acquires the SGL
  // must finish undisturbed (the writer waits; Alg. 1 line 45).
  htm::EngineConfig ecfg;
  ecfg.capacity = htm::CapacityProfile{"tiny", 64, 1};  // 2 lines -> SGL
  htm::Engine engine{ecfg};
  htm::EngineScope scope(engine);
  SpRWLock lock{base_config(2)};
  Cell a, b;
  std::uint64_t torn = 0;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {  // long reader, starts first
      lock.read(0, [&] {
        const std::uint64_t x = a.v.load();
        platform::advance(60000);
        const std::uint64_t y = b.v.load();
        if (x != y) ++torn;
      });
    } else {  // SGL writer arriving mid-reader
      platform::advance(10000);
      lock.write(1, [&] {
        a.v.store(9);
        b.v.store(9);  // 2 distinct lines > capacity 1: abort -> SGL
      });
    }
  });
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(a.v.raw_load(), 9u);
  EXPECT_EQ(b.v.raw_load(), 9u);
}

TEST(SpRWLBase, ConcurrentHtmWritersOnDisjointDataBothCommit) {
  // Unlike every pessimistic RWLock, SpRWL lets two writers commit
  // concurrently when HTM finds no conflict.
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  SpRWLock lock{base_config(2)};
  Cell a, b;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    lock.write(1, [&] {
      auto& mine = tid == 0 ? a : b;
      mine.v.store(static_cast<std::uint64_t>(tid) + 1);
      platform::advance(5000);  // overlap
    });
  });
  const locks::LockStats s = lock.stats();
  EXPECT_EQ(s.writes.htm, 2u);
  EXPECT_EQ(s.writes.gl, 0u);
  EXPECT_EQ(a.v.raw_load(), 1u);
  EXPECT_EQ(b.v.raw_load(), 2u);
}

TEST(SpRWLBase, WriterRetriesAfterReaderAbortAndEventuallyCommitsInHtm) {
  // The reader ends before the writer's retry budget runs out: the writer
  // must commit in HTM (not the SGL), paying reader-aborts along the way.
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Config cfg = base_config(2);
  cfg.max_retries = 1000;
  SpRWLock lock{cfg};
  Cell x;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      lock.read(0, [&] { platform::advance(30000); });
    } else {
      platform::advance(1000);
      lock.write(1, [&] { x.v.store(1); });
    }
  });
  EXPECT_EQ(lock.stats().writes.htm, 1u);
  EXPECT_GE(lock.reader_abort_count(), 1u);
  EXPECT_EQ(x.v.raw_load(), 1u);
}

}  // namespace
}  // namespace sprwl::core
