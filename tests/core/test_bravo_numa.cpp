// Socket-sharded BRAVO reader tables (bravo::Config::shard_by_socket,
// DESIGN.md §16): shard geometry derived from the topology, per-socket slot
// confinement (a reader's publish never leaves its socket's lines), the
// summary-gated revocation drain's exact O(sockets) clean cost, the
// migration-safe release (summary of the *registering* shard), per-shard
// revocation EMAs driving socket-local re-bias throttling, and a real-thread
// stress leg for the TSan CI job.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>

#include "common/costs.h"
#include "common/platform.h"
#include "core/bravo.h"
#include "core/sprwl.h"
#include "htm/shared.h"
#include "sim/simulator.h"
#include "sim/topology.h"

namespace sprwl::core {
namespace {

struct alignas(64) Cell {
  htm::Shared<std::uint64_t> v;
};

std::shared_ptr<bravo::ReaderTable> make_sharded_table(
    int threads, int sockets, std::size_t per_shard_slots = 0) {
  bravo::ReaderTable::Config tc;
  tc.max_threads = threads;
  tc.slots = per_shard_slots;
  tc.shard_by_socket = true;
  // Clear on every outermost release: these tests assert exact summary
  // transitions; the amortized default is covered by SummaryClearsAmortized.
  tc.summary_clear_period = 1;
  tc.topology = sim::Topology::split(threads, sockets);
  return std::make_shared<bravo::ReaderTable>(tc);
}

Config sharded_bravo_config(int threads,
                            std::shared_ptr<bravo::ReaderTable> table) {
  Config cfg = Config::variant(SchedulingVariant::kFull, threads);
  cfg.reader_htm_first = false;
  cfg.bravo_bias = true;
  cfg.bravo_table = std::move(table);
  return cfg;
}

// Shard geometry follows the topology: one shard per socket, sized from
// that socket's core count (slots_per_thread per core), each starting on
// its own cache line; slot_of confines every (lock, tid) hash to the
// acquirer's socket's shard.
TEST(BravoNuma, ShardGeometryFromTopology) {
  bravo::ReaderTable::Config tc;
  tc.max_threads = 16;
  tc.slots_per_thread = 4;
  tc.shard_by_socket = true;
  tc.topology = sim::Topology::split(16, 4);  // 4 sockets x 4 cores
  bravo::ReaderTable t(tc);
  EXPECT_TRUE(t.sharded());
  EXPECT_EQ(t.shard_count(), 4);
  EXPECT_EQ(t.shard_slots(), 16u);  // 4 cores x 4 slots each
  EXPECT_EQ(t.slot_count(), 64u);
  for (int tid = 0; tid < 16; ++tid) {
    const int shard = t.shard_of_tid(tid);
    EXPECT_EQ(shard, tc.topology.socket_of(tid));
    for (std::uint32_t lock = 0; lock < 8; ++lock) {
      const std::size_t slot = t.slot_of(lock, tid);
      EXPECT_EQ(t.shard_of_slot(slot), shard)
          << "tid " << tid << " lock " << lock << " escaped its shard";
    }
  }
  EXPECT_GT(t.footprint_bytes(), t.slot_count() * 8)
      << "summary lines must be accounted";
}

// A topology that cannot size a shard is rejected loudly instead of
// handing out a zero-slot shard whose readers could never register.
TEST(BravoNuma, EmptyShardRejected) {
  bravo::ReaderTable::Config tc;
  tc.max_threads = 8;
  tc.shard_by_socket = true;
  tc.topology.sockets = 2;  // cores_per_socket left 0: shard would be empty
  EXPECT_THROW(bravo::ReaderTable{tc}, std::invalid_argument);
  tc.slots = 4;  // explicit per-shard override sidesteps the auto-sizing
  EXPECT_NO_THROW(bravo::ReaderTable{tc});
}

// Regression: one core per socket is a legal shape (the scale-out sweeps
// use it), and its shards — a single thread's slots each — must round up
// to a full line and still confine each tid.
TEST(BravoNuma, OneCorePerSocketShardsStayValid) {
  bravo::ReaderTable::Config tc;
  tc.max_threads = 4;
  tc.slots_per_thread = 2;
  tc.shard_by_socket = true;
  tc.topology = sim::Topology::split(4, 4);  // 4 sockets x 1 core
  bravo::ReaderTable t(tc);
  EXPECT_EQ(t.shard_count(), 4);
  EXPECT_EQ(t.shard_slots(), 2u);
  for (int tid = 0; tid < 4; ++tid) {
    EXPECT_EQ(t.shard_of_slot(t.slot_of(0, tid)), tid);
  }
}

// The tentpole's cost claim, exact by construction: a revocation drain
// over a CLEAN sharded table reads exactly one line per socket (the
// shard's occupancy summary), while the global table must OR-read every
// slot line. Same spirit as Bravo.FastPathExactCost — any accidental
// extra shared access in the drain fails this.
TEST(BravoNuma, CleanDrainReadsOneLinePerSocket) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  bravo::ReaderTable::Config tc;
  tc.max_threads = 16;
  tc.shard_by_socket = true;
  tc.topology = sim::Topology::split(16, 4);
  bravo::ReaderTable sharded(tc);
  bravo::ReaderTable::Config gc;
  gc.max_threads = 16;
  bravo::ReaderTable global(gc);
  std::uint64_t sharded_cost = 0, global_cost = 0;
  sim::Simulator sim;
  sim.run(1, [&](int) {
    std::uint64_t t0 = platform::now();
    EXPECT_TRUE(sharded.wait_for_readers_of(0));
    sharded_cost = platform::now() - t0;
    t0 = platform::now();
    EXPECT_TRUE(global.wait_for_readers_of(0));
    global_cost = platform::now() - t0;
  });
  EXPECT_EQ(sharded_cost, 4 * g_costs.load);
  EXPECT_EQ(global_cost,
            (global.slot_count() + bravo::ReaderTable::kSlotsPerLine - 1) /
                bravo::ReaderTable::kSlotsPerLine * g_costs.load);
  EXPECT_LT(sharded_cost, global_cost);
}

// The sticky amortization (summary_clear_period, the product default):
// only the FIRST registration after a clear stores the summary word —
// later registrations are mirror-gated and touch no summary line at all
// (exact by cycle count) — and the word clears on every period-th
// outermost release, over-reporting in between.
TEST(BravoNuma, SummaryClearsAmortized) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  bravo::ReaderTable::Config tc;
  tc.max_threads = 2;
  tc.shard_by_socket = true;
  tc.summary_clear_period = 2;
  tc.topology = sim::Topology::split(2, 2);
  bravo::ReaderTable table(tc);
  const std::size_t slot = table.slot_of(0, 0);
  std::uint64_t first_occupy = 0, sticky_occupy = 0;
  sim::Simulator sim;
  sim.run(1, [&](int) {
    std::uint64_t t0 = platform::now();
    ASSERT_TRUE(table.occupy(slot, 0, 0));  // publishes the summary word
    first_occupy = platform::now() - t0;
    table.release(slot, 0);  // release #1: word stays raised (sticky)
    EXPECT_EQ(table.summary_raw(0), 1u);
    t0 = platform::now();
    ASSERT_TRUE(table.occupy(slot, 0, 0));  // mirror-gated: slot CAS only
    sticky_occupy = platform::now() - t0;
    table.release(slot, 0);  // release #2 = period: clears and re-arms
    EXPECT_EQ(table.summary_raw(0), 0u);
    t0 = platform::now();
    ASSERT_TRUE(table.occupy(slot, 0, 0));  // re-armed: publishes again
    EXPECT_EQ(platform::now() - t0, first_occupy);
    EXPECT_EQ(table.summary_raw(0), 1u);
    table.release(slot, 0);  // release #1 of the next period: sticky again
    EXPECT_EQ(table.summary_raw(0), 1u);
  });
  EXPECT_EQ(first_occupy - sticky_occupy,
            g_costs.store + g_costs.line_publish)
      << "steady-state occupy must touch no summary line";
  EXPECT_TRUE(table.all_slots_empty_raw());
}

// Cross-socket slot collisions are impossible by construction: even a
// 1-slot-per-shard table gives same-tid-hash readers on different sockets
// different slots, so a remote reader can never steal a local reader's
// fast path.
TEST(BravoNuma, CrossSocketOccupancyNeverCollides) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  auto table = make_sharded_table(2, 2, /*per_shard_slots=*/1);
  const std::size_t s0 = table->slot_of(0, 0);
  const std::size_t s1 = table->slot_of(0, 1);
  ASSERT_NE(s0, s1);
  ASSERT_NE(table->shard_of_slot(s0), table->shard_of_slot(s1));
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    EXPECT_TRUE(table->occupy(tid == 0 ? s0 : s1, 0, tid))
        << "1-slot shards must still admit one reader per socket";
  });
  EXPECT_EQ(table->summary_raw(0), 1u);
  EXPECT_EQ(table->summary_raw(1), 1u);
  sim::Simulator sim2;
  sim2.run(2, [&](int tid) { table->release(tid == 0 ? s0 : s1, tid); });
  EXPECT_TRUE(table->all_slots_empty_raw());
}

// Migration safety: a reader that occupied on socket 0 and releases while
// running on socket 1 must clear its summary word in the shard it
// REGISTERED in (release derives the shard from the slot index, never
// from the where the release executes) — otherwise shard 0's summary
// leaks high forever and later drains scan it needlessly.
TEST(BravoNuma, MigratedReaderReleasesFromRegisteringShard) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  auto table = make_sharded_table(2, 2);  // split(2,2): tid 0 -> socket 0
  const std::size_t slot = table->slot_of(0, 0);
  ASSERT_EQ(table->shard_of_slot(slot), 0);
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      ASSERT_TRUE(table->occupy(slot, 0, 0));
    } else {
      // The release below executes on the socket-1 fiber: it models
      // reader 0 having migrated there between occupy and release (the
      // thread id is identity and stays 0; only where it runs changed).
      platform::advance(10'000);
      EXPECT_EQ(table->summary_raw(0), 1u);
      EXPECT_EQ(table->summary_raw(1), 0u);
      table->release(slot, 0);
    }
  });
  EXPECT_EQ(table->summary_raw(0), 0u) << "registering shard not cleared";
  EXPECT_EQ(table->summary_raw(1), 0u) << "releasing socket's shard touched";
  EXPECT_TRUE(table->all_slots_empty_raw());
}

// End-to-end over the lock: a writer's revocation drains a fast-path
// reader parked on the REMOTE socket — the summary skip must never let
// the writer pass a shard whose reader is mid-section.
TEST(BravoNuma, WriterDrainsRemoteSocketReader) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  auto table = make_sharded_table(4, 2);  // tids {0,1} socket 0, {2,3} socket 1
  SpRWLock lock{sharded_bravo_config(4, table)};
  Cell a, b;
  std::uint64_t saw_a = 0, saw_b = 0;
  sim::Simulator sim;
  sim.run(4, [&](int tid) {
    if (tid == 3) {  // socket-1 reader, remote from the writer's socket 0
      lock.read(0, [&] {
        saw_a = a.v.load();
        platform::advance(50'000);
        saw_b = b.v.load();
      });
    } else if (tid == 0) {
      platform::advance(10'000);  // arrive mid-read
      lock.write(1, [&] {
        a.v.store(1);
        b.v.store(1);
      });
    }
  });
  EXPECT_EQ(saw_a, saw_b) << "writer committed over a remote fast reader";
  EXPECT_EQ(a.v.raw_load(), 1u);
  EXPECT_EQ(lock.revocation_count(), 1u);
  EXPECT_TRUE(table->all_slots_empty_raw());
}

// Per-shard re-bias throttling: one saturated socket must not suppress
// bias process-wide. Phase 1 makes shard 1's drain expensive (a parked
// socket-1 reader) while shard 0 drains clean; phase 2 runs a reader
// streak from one socket. The socket-0 reader re-arms the bias (its
// shard's EMA is the one-line clean probe); the identical streak from
// socket 1 stays suppressed by its shard's large EMA.
TEST(BravoNuma, RebiasCooldownIsPerShard) {
  const auto run_one = [](int streak_tid) {
    htm::Engine engine{htm::EngineConfig{}};
    htm::EngineScope scope(engine);
    auto table = make_sharded_table(4, 2);
    Config cfg = sharded_bravo_config(4, table);
    cfg.bravo_rebias_reads = 3;
    cfg.bravo_rebias_cooldown = 100.0;
    SpRWLock lock{cfg};
    Cell x;
    sim::Simulator sim;
    sim.run(4, [&](int tid) {
      if (tid == 3) {  // socket-1 reader parks: shard 1's drain runs long
        lock.read(0, [&] { platform::advance(50'000); });
      } else if (tid == 0) {
        platform::advance(10'000);
        lock.write(1, [&] { x.v.store(1); });  // revokes: EMAs sampled
      }
      if (tid == streak_tid) {
        platform::advance(80'000);  // well past the clean shard's cooldown
        for (int i = 0; i < 6; ++i) lock.read(0, [&] { (void)x.v.load(); });
      }
    });
    struct Out {
      bool bias_on;
      std::uint64_t rebias, ema0, ema1;
    };
    return Out{lock.bias_is_on(), lock.rebias_count(),
               lock.shard_revoke_ema(0), lock.shard_revoke_ema(1)};
  };
  const auto local = run_one(1);   // tid 1: socket 0, the clean shard
  const auto remote = run_one(2);  // tid 2: socket 1, the saturated shard
  ASSERT_GT(local.ema1, 10'000u) << "shard 1's drain EMA missed the park";
  ASSERT_LT(local.ema0, 100u) << "clean shard's EMA should be ~one line read";
  EXPECT_TRUE(local.bias_on) << "clean socket's reader must re-arm the bias";
  EXPECT_GE(local.rebias, 1u);
  EXPECT_FALSE(remote.bias_on)
      << "saturated socket's reader must stay throttled by its shard's EMA";
  EXPECT_EQ(remote.rebias, 0u);
}

// Concurrency stress on REAL threads (the TSan CI leg: -R
// 'BravoNumaRealThread'): the sharded fast path, summary-gated drains and
// per-shard re-bias under actual preemption across two simulated sockets.
TEST(BravoNumaRealThread, ShardedStressNoTornReads) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  auto table = make_sharded_table(8, 2);
  Config cfg = sharded_bravo_config(8, table);
  cfg.bravo_rebias_reads = 4;
  cfg.bravo_rebias_cooldown = 1.0;
  SpRWLock lock{cfg};
  struct alignas(64) Pair {
    htm::Shared<std::uint64_t> a, b;
  };
  Pair p;
  std::atomic<std::uint64_t> torn{0};
  sim::run_real_threads(8, [&](int tid) {
    for (int i = 0; i < 200; ++i) {
      if (tid % 4 == 0) {
        lock.write(1, [&] {
          const std::uint64_t v = p.a.load() + 1;
          p.a.store(v);
          p.b.store(v);
        });
      } else {
        lock.read(0, [&] {
          if (p.a.load() != p.b.load()) torn.fetch_add(1);
        });
      }
    }
  });
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(p.a.raw_load(), 400u);  // 2 writers x 200 increments
  EXPECT_EQ(p.a.raw_load(), p.b.raw_load());
  EXPECT_TRUE(table->all_slots_empty_raw());
}

}  // namespace
}  // namespace sprwl::core
