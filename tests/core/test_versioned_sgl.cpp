// The versioned-SGL reader-starvation fix (Section 3.3): under a constant
// stream of SGL writers, a plain reader can wait indefinitely; with the
// versioned lock it is admitted after at most one lock generation.
#include <gtest/gtest.h>

#include <vector>

#include "common/platform.h"
#include "core/sprwl.h"
#include "htm/shared.h"
#include "sim/simulator.h"

namespace sprwl::core {
namespace {

struct alignas(64) Cell {
  htm::Shared<std::uint64_t> v;
};

// Every writer capacity-aborts (two padded lines > 1-line write capacity),
// so the SGL is held back-to-back by the writer threads.
Config storm_config(int threads, bool versioned) {
  Config cfg = Config::variant(SchedulingVariant::kNoSched, threads);
  cfg.reader_htm_first = false;
  cfg.versioned_sgl = versioned;
  return cfg;
}

htm::EngineConfig tiny_write_capacity() {
  htm::EngineConfig ecfg;
  ecfg.capacity = htm::CapacityProfile{"tiny", 64, 1};
  return ecfg;
}

/// Runs a 2-writer storm with one reader arriving at t=3000; returns the
/// virtual time at which the reader got in.
std::uint64_t reader_entry_time(bool versioned) {
  htm::Engine engine{tiny_write_capacity()};
  htm::EngineScope scope(engine);
  SpRWLock lock{storm_config(3, versioned)};
  Cell a, b;
  std::uint64_t entered = 0;
  sim::Simulator sim;
  sim.run(3, [&](int tid) {
    if (tid == 0) {
      platform::advance(3'000);
      lock.read(0, [&] { entered = platform::now(); });
    } else {
      for (int i = 0; i < 60; ++i) {
        lock.write(1, [&] {
          a.v.store(a.v.load() + 1);
          platform::advance(2'000);
          b.v.store(b.v.load() + 1);
        });
      }
    }
  });
  return entered;
}

TEST(VersionedSgl, AdmitsTheReaderWithinOneGeneration) {
  const std::uint64_t versioned = reader_entry_time(true);
  const std::uint64_t plain = reader_entry_time(false);
  // The storm lasts ~120 sections x ~2.4k cycles ~ 290k cycles. The
  // versioned reader must get in near its arrival; the plain one depends
  // on catching a free gap between back-to-back writers.
  EXPECT_LT(versioned, 40'000u);
  EXPECT_LE(versioned, plain);
}

TEST(VersionedSgl, ManyWaitingReadersAllGetPriority) {
  htm::Engine engine{tiny_write_capacity()};
  htm::EngineScope scope(engine);
  SpRWLock lock{storm_config(6, true)};
  Cell a, b;
  std::vector<std::uint64_t> entered(6, 0);
  sim::Simulator sim;
  sim.run(6, [&](int tid) {
    if (tid < 4) {  // four readers arriving during the storm
      platform::advance(2'000 + static_cast<std::uint64_t>(tid) * 500);
      lock.read(0, [&] { entered[static_cast<std::size_t>(tid)] = platform::now(); });
    } else {
      for (int i = 0; i < 40; ++i) {
        lock.write(1, [&] {
          const std::uint64_t v = a.v.load() + 1;
          a.v.store(v);
          platform::advance(1'500);
          b.v.store(v);
        });
      }
    }
  });
  for (int t = 0; t < 4; ++t) {
    EXPECT_GT(entered[static_cast<std::size_t>(t)], 0u);
    EXPECT_LT(entered[static_cast<std::size_t>(t)], 60'000u) << "reader " << t;
  }
  EXPECT_EQ(a.v.raw_load(), 80u);
  EXPECT_EQ(a.v.raw_load(), b.v.raw_load());
}

TEST(VersionedSgl, WriterStillExcludesAdmittedReaders) {
  // Priority must not break exclusion: a reader admitted past a queued
  // writer still never observes that writer's partial section.
  htm::Engine engine{tiny_write_capacity()};
  htm::EngineScope scope(engine);
  SpRWLock lock{storm_config(3, true)};
  Cell a, b;
  std::uint64_t torn = 0;
  sim::Simulator sim;
  sim.run(3, [&](int tid) {
    Rng rng(static_cast<std::uint64_t>(tid) + 4);
    if (tid == 0) {
      for (int i = 0; i < 80; ++i) {
        platform::advance(rng.next_below(2'000));
        lock.read(0, [&] {
          const std::uint64_t x = a.v.load();
          platform::advance(rng.next_below(500));
          if (b.v.load() != x) ++torn;
        });
      }
    } else {
      for (int i = 0; i < 50; ++i) {
        lock.write(1, [&] {
          const std::uint64_t v = a.v.load() + 1;
          a.v.store(v);
          platform::advance(rng.next_below(1'000));
          b.v.store(v);
        });
        platform::advance(rng.next_below(500));
      }
    }
  });
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(a.v.raw_load(), 100u);
}

}  // namespace
}  // namespace sprwl::core
