// Configuration fuzz: SpRWL's safety properties must hold for EVERY
// combination of its knobs (scheduling toggles, tracking scheme, retry
// budgets, versioned SGL, δ, thresholds) under every capacity profile.
// Each fuzz case derives a random-but-deterministic Config from its index
// and runs the torn-read + lost-update workload.
#include <gtest/gtest.h>

#include <vector>

#include "common/platform.h"
#include "common/rng.h"
#include "core/sprwl.h"
#include "fault/fault.h"
#include "htm/shared.h"
#include "sim/simulator.h"

#include "../support/seed_replay.h"

namespace sprwl::core {
namespace {

Config fuzz_config(std::uint64_t index, int threads) {
  Rng rng(0xF022 + index * 0x9E37);
  Config cfg;
  cfg.max_threads = threads;
  cfg.max_retries = static_cast<int>(rng.next_in(1, 20));
  cfg.reader_htm_retries = static_cast<int>(rng.next_in(1, 10));
  cfg.reader_sync = rng.next_bool(0.7);
  cfg.reader_join = cfg.reader_sync && rng.next_bool(0.7);
  cfg.writer_sync = rng.next_bool(0.5);
  cfg.reader_htm_first = rng.next_bool(0.5);
  cfg.use_snzi = rng.next_bool(0.3);
  cfg.adaptive_tracking = !cfg.use_snzi && rng.next_bool(0.3);
  cfg.adaptive_threshold_cycles = rng.next_in(100, 50'000);
  cfg.versioned_sgl = rng.next_bool(0.3);
  cfg.delta_fraction = rng.next_double();
  cfg.ema_alpha = 0.05 + rng.next_double() * 0.9;
  cfg.snzi_levels = static_cast<int>(rng.next_in(0, 4));
  cfg.bootstrap_estimate = rng.next_in(1, 5'000);
  return cfg;
}

htm::CapacityProfile fuzz_capacity(std::uint64_t index) {
  switch (index % 4) {
    case 0:
      return htm::kBroadwell;
    case 1:
      return htm::kPower8;
    case 2:
      return htm::CapacityProfile{"tiny", 8, 4};
    default:
      return htm::kUnbounded;
  }
}

class SpRWLConfigFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SpRWLConfigFuzz, SafetyHoldsForArbitraryConfigs) {
  // SPRWL_SEED shifts the whole sweep onto fresh configs/schedules; the
  // default (0) keeps the historical deterministic cases. Failures print
  // the standard replay line (tests/support/seed_replay.h).
  const std::uint64_t base = fault::env_seed(0);
  const auto index = static_cast<std::uint64_t>(GetParam()) + base;
  SCOPED_TRACE("config index " + std::to_string(index) + "; " +
               testutil::seed_replay(base));
  const int threads = 2 + static_cast<int>(index % 7);
  htm::EngineConfig ec;
  ec.capacity = fuzz_capacity(index);
  ec.max_threads = threads;
  ec.spurious_abort_rate = (index % 5 == 0) ? 0.001 : 0.0;
  htm::Engine engine(ec);
  htm::EngineScope scope(engine);
  SpRWLock lock{fuzz_config(index, threads)};

  struct alignas(64) Pair {
    htm::Shared<std::uint64_t> a, b;
  };
  Pair p;
  htm::Shared<std::uint64_t> counter;
  std::uint64_t torn = 0;
  std::uint64_t expected_increments = 0;

  sim::Simulator sim;
  sim.run(threads, [&](int tid) {
    Rng rng(index * 31 + static_cast<std::uint64_t>(tid));
    std::uint64_t mine = 0;
    for (int i = 0; i < 120; ++i) {
      if (rng.next_bool(0.35)) {
        lock.write(1, [&] {
          counter.store(counter.load() + 1);
          const std::uint64_t v = p.a.load() + 1;
          p.a.store(v);
          platform::advance(rng.next_below(300));
          p.b.store(v);
        });
        ++mine;
      } else {
        lock.read(0, [&] {
          const std::uint64_t a = p.a.load();
          platform::advance(rng.next_below(300));
          if (p.b.load() != a) ++torn;
        });
      }
      platform::advance(rng.next_below(150));
    }
    expected_increments += mine;
  });

  EXPECT_EQ(torn, 0u) << "config index " << index;
  EXPECT_EQ(counter.raw_load(), expected_increments);
  EXPECT_EQ(p.a.raw_load(), p.b.raw_load());
  EXPECT_EQ(p.a.raw_load(), expected_increments);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SpRWLConfigFuzz, ::testing::Range(0, 32));

}  // namespace
}  // namespace sprwl::core
