// BRAVO global reader bias (Config::bravo_bias + bravo::ReaderTable,
// DESIGN.md §12): the biased fast path and its exact virtual-time cost, the
// lazy tracking plane (cold locks stay O(1) words), writer-side revocation
// with table drain, adaptive re-bias with the revocation-cost cooldown,
// hash-collision fallbacks (lock/lock and tid/tid sharing a slot), the
// bravo-off no-op guarantee, and the corrected SNZI auto-size cap.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/costs.h"
#include "common/platform.h"
#include "core/bravo.h"
#include "core/sprwl.h"
#include "htm/shared.h"
#include "sim/simulator.h"

namespace sprwl::core {
namespace {

struct alignas(64) Cell {
  htm::Shared<std::uint64_t> v;
};

std::shared_ptr<bravo::ReaderTable> make_table(int threads,
                                               std::size_t slots = 0) {
  bravo::ReaderTable::Config tc;
  tc.max_threads = threads;
  tc.slots = slots;
  return std::make_shared<bravo::ReaderTable>(tc);
}

Config bravo_config(int threads,
                    std::shared_ptr<bravo::ReaderTable> table = nullptr) {
  Config cfg = Config::variant(SchedulingVariant::kFull, threads);
  cfg.reader_htm_first = false;
  cfg.bravo_bias = true;
  cfg.bravo_table = table != nullptr ? std::move(table) : make_table(threads);
  return cfg;
}

TEST(Bravo, RequiresTable) {
  Config cfg = Config::variant(SchedulingVariant::kFull, 2);
  cfg.bravo_bias = true;  // no table
  EXPECT_THROW(SpRWLock{cfg}, std::invalid_argument);
}

TEST(Bravo, TableAutoSizeAndRegistration) {
  bravo::ReaderTable::Config tc;
  tc.max_threads = 64;
  tc.slots_per_thread = 4;
  bravo::ReaderTable t(tc);
  EXPECT_GE(t.slot_count(), 256u);
  EXPECT_EQ(t.slot_count() % bravo::ReaderTable::kSlotsPerLine, 0u);
  EXPECT_EQ(t.register_lock(), 0u);
  EXPECT_EQ(t.register_lock(), 1u);
  EXPECT_EQ(t.registered_locks(), 2u);
  EXPECT_GT(t.footprint_bytes(), t.slot_count() * 8);
}

// The headline property: a biased reader never touches the per-lock flag
// plane, so a read-only lock stays at its O(1)-word shell forever.
TEST(Bravo, FastPathReadAllocatesNoPlane) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  SpRWLock lock{bravo_config(4)};
  EXPECT_TRUE(lock.bias_is_on());
  EXPECT_FALSE(lock.has_plane());
  Cell x;
  sim::Simulator sim;
  sim.run(4, [&](int) {
    for (int i = 0; i < 10; ++i) lock.read(0, [&] { (void)x.v.load(); });
  });
  EXPECT_FALSE(lock.has_plane());
  EXPECT_EQ(lock.bias_read_count(), 40u);
  EXPECT_EQ(lock.stats().reads.unins, 40u);
  EXPECT_EQ(lock.revocation_count(), 0u);
  // The whole lock footprint is its shell — orders of magnitude under a
  // plane (flag arrays, clocks, EMAs, stats for max_threads threads).
  EXPECT_EQ(lock.footprint_bytes(), sizeof(SpRWLock));
}

// Exact virtual-time cost of the biased fast path, by construction from
// the cost model: bias check + slot CAS (nontx: load+cas+line_publish) +
// fence + bias recheck + SGL check + [reader body] + fence + slot release
// (nontx: store+line_publish). Pins the fast path against accidental extra
// shared accesses — the whole point is that readers skip the plane.
TEST(Bravo, FastPathExactCost) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  SpRWLock lock{bravo_config(2)};
  std::uint64_t cost = 0;
  sim::Simulator sim;
  sim.run(1, [&](int) {
    const std::uint64_t t0 = platform::now();
    lock.read(0, [] {});
    cost = platform::now() - t0;
  });
  const std::uint64_t expected =
      3 * g_costs.load                                     // bias, bias, SGL
      + (g_costs.load + g_costs.cas + g_costs.line_publish)  // occupy CAS
      + 2 * g_costs.fence                                  // entry + exit
      + (g_costs.store + g_costs.line_publish);            // release
  EXPECT_EQ(cost, expected);
  EXPECT_EQ(lock.bias_read_count(), 1u);
}

// Writer revocation: the writer flips the bias off, drains the global
// table (waiting out the parked fast-path reader), and only then runs —
// the reader's snapshot is never torn.
TEST(Bravo, WriterRevokesAndDrainsFastReader) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  SpRWLock lock{bravo_config(2)};
  Cell a, b;
  std::vector<std::uint64_t> saw;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      lock.read(0, [&] {
        saw.push_back(a.v.load());
        platform::advance(50'000);  // park in the section, slot occupied
        saw.push_back(b.v.load());
      });
    } else {
      platform::advance(10'000);  // arrive mid-read
      lock.write(1, [&] {
        a.v.store(1);
        b.v.store(1);
      });
    }
  });
  ASSERT_EQ(saw.size(), 2u);
  EXPECT_EQ(saw[0], saw[1]) << "writer committed over a parked fast reader";
  EXPECT_EQ(a.v.raw_load(), 1u);
  EXPECT_FALSE(lock.bias_is_on());
  EXPECT_EQ(lock.revocation_count(), 1u);
  EXPECT_GT(lock.revocation_cycles(), 0u) << "drain waited on the slot";
}

// Re-bias: after the configured reader-only streak (and past the
// revocation-cost cooldown), a reader re-arms the bias and later readers
// take the fast path again.
TEST(Bravo, ReaderStreakRebiases) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Config cfg = bravo_config(2);
  cfg.bravo_rebias_reads = 3;
  cfg.bravo_rebias_cooldown = 0.0;  // isolate the streak rule
  SpRWLock lock{cfg};
  Cell x;
  sim::Simulator sim;
  sim.run(1, [&](int) {
    lock.write(1, [&] { x.v.store(1); });  // revokes
    EXPECT_FALSE(lock.bias_is_on());
    for (int i = 0; i < 8; ++i) lock.read(0, [&] { (void)x.v.load(); });
  });
  EXPECT_TRUE(lock.bias_is_on());
  EXPECT_GE(lock.rebias_count(), 1u);
  EXPECT_GT(lock.bias_read_count(), 0u) << "post-rebias reads take the fast path";
}

// The BRAVO cooldown rule: an expensive revocation suppresses re-bias for
// a multiple of its sampled latency, so write-heavy phases are not made
// quadratically worse by bias flapping.
TEST(Bravo, RebiasHonorsRevocationCooldown) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Config cfg = bravo_config(2);
  cfg.bravo_rebias_reads = 2;
  cfg.bravo_rebias_cooldown = 1e9;  // effectively forever
  SpRWLock lock{cfg};
  Cell x;
  sim::Simulator sim;
  sim.run(1, [&](int) {
    // A fast-path read parks a slot so the revocation drain really waits
    // (nonzero sampled latency — cooldown 0 * anything would pass).
    lock.read(0, [&] { (void)x.v.load(); });
    lock.write(1, [&] { x.v.store(1); });
    ASSERT_GT(lock.revocation_cycles(), 0u);
    for (int i = 0; i < 10; ++i) lock.read(0, [&] { (void)x.v.load(); });
  });
  EXPECT_FALSE(lock.bias_is_on()) << "cooldown must suppress re-bias";
  EXPECT_EQ(lock.rebias_count(), 0u);
}

// Two LOCKS hashed to the same slot: the second reader's occupy CAS fails
// and it falls back to the per-lock slow path — correct, just slower. A
// 1-slot table forces every (lock, tid) pair onto slot 0.
TEST(Bravo, LockCollisionFallsBackCorrectly) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  auto table = make_table(2, 1);
  SpRWLock lock_a{bravo_config(2, table)};
  SpRWLock lock_b{bravo_config(2, table)};
  Cell a1, a2, b1, b2;
  std::uint64_t torn = 0;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    for (int op = 0; op < 12; ++op) {
      if (tid == 0) {
        lock_a.read(0, [&] {
          const std::uint64_t x = a1.v.load();
          platform::advance(300);
          if (x != a2.v.load()) ++torn;
        });
        lock_b.write(1, [&] {
          const std::uint64_t n = b1.v.load() + 1;
          b1.v.store(n);
          b2.v.store(n);
        });
      } else {
        lock_b.read(0, [&] {
          const std::uint64_t x = b1.v.load();
          platform::advance(300);
          if (x != b2.v.load()) ++torn;
        });
        lock_a.write(1, [&] {
          const std::uint64_t n = a1.v.load() + 1;
          a1.v.store(n);
          a2.v.store(n);
        });
      }
      platform::advance(100 * static_cast<std::uint64_t>(tid) + 40);
    }
  });
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(a1.v.raw_load(), 12u);
  EXPECT_EQ(b1.v.raw_load(), 12u);
}

// Two TIDS of the same lock hashed to the same slot: one takes the fast
// path, the colliding one the slow path; a writer must wait for BOTH (the
// table drain catches the first, the plane scan the second).
TEST(Bravo, TidCollisionBothReadersVisible) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  SpRWLock lock{bravo_config(3, make_table(3, 1))};
  Cell a, b;
  std::uint64_t torn = 0;
  sim::Simulator sim;
  sim.run(3, [&](int tid) {
    if (tid < 2) {  // both readers contend for slot 0
      lock.read(0, [&] {
        const std::uint64_t x = a.v.load();
        platform::advance(40'000);
        if (x != b.v.load()) ++torn;
      });
    } else {
      platform::advance(5'000);  // both readers are in their sections
      lock.write(1, [&] {
        a.v.store(1);
        b.v.store(1);
      });
    }
  });
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(a.v.raw_load(), 1u);
  EXPECT_TRUE(lock.has_plane()) << "the collision loser advertised via plane";
}

// bravo_bias=false must be a strict no-op: identical virtual-time outcome
// with and without a ReaderTable attached to the config (the table is
// registered but never consulted), and no plane-related behavior change.
TEST(Bravo, BiasOffIsExactNoOp) {
  struct Outcome {
    std::uint64_t end_time[4] = {0, 0, 0, 0};
    std::uint64_t final_a = 0;
    std::uint64_t reads = 0, writes = 0;
  };
  const auto run_one = [](bool attach_table) {
    htm::Engine engine{htm::EngineConfig{}};
    htm::EngineScope scope(engine);
    Config cfg = Config::variant(SchedulingVariant::kFull, 4);
    cfg.reader_htm_first = false;
    if (attach_table) cfg.bravo_table = make_table(4);  // bias stays off
    SpRWLock lock{cfg};
    Cell a, b;
    Outcome o;
    sim::Simulator sim;
    sim.run(4, [&](int tid) {
      for (int op = 0; op < 15; ++op) {
        if (tid == 0) {
          lock.write(1, [&] {
            const std::uint64_t n = a.v.load() + 1;
            a.v.store(n);
            b.v.store(n);
          });
        } else {
          lock.read(0, [&] {
            (void)a.v.load();
            platform::advance(120);
            (void)b.v.load();
          });
        }
        platform::advance(60 * static_cast<std::uint64_t>(tid) + 20);
      }
      o.end_time[tid] = platform::now();
    });
    o.final_a = a.v.raw_load();
    o.reads = lock.stats().reads.unins;
    o.writes = lock.stats().writes.htm + lock.stats().writes.gl;
    return o;
  };
  const Outcome plain = run_one(false);
  const Outcome attached = run_one(true);
  for (int t = 0; t < 4; ++t) EXPECT_EQ(plain.end_time[t], attached.end_time[t]);
  EXPECT_EQ(plain.final_a, attached.final_a);
  EXPECT_EQ(plain.reads, attached.reads);
  EXPECT_EQ(plain.writes, attached.writes);
}

// Regression for the SNZI auto-size cap: the old hard `levels < 8` clamp
// silently under-sized the tree past 256 threads (1024 threads got 128
// leaves — 4x the intended per-leaf contention). The cap now follows
// max_threads up to the tree's own kMaxLevels.
TEST(Bravo, SnziAutoSizeNoLongerCapsAt256Threads) {
  const struct {
    int max_threads;
    std::size_t leaves;
  } cases[] = {{256, 128}, {512, 256}, {1024, 512}, {4096, 2048}};
  for (const auto& tc : cases) {
    Config c;
    c.max_threads = tc.max_threads;
    c.use_snzi = true;
    c.snzi_levels = 0;
    SpRWLock lock{c};
    EXPECT_EQ(lock.snzi_leaf_count(), tc.leaves)
        << "max_threads=" << tc.max_threads;
  }
}

// The lazy plane under plain (non-bravo) configs: nothing is allocated at
// construction; the first slow-path operation installs it and behavior is
// unchanged from the eager days (covered by the whole existing suite —
// here we just pin the allocation points).
TEST(Bravo, PlaneIsLazyForPlainConfigsToo) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Config cfg = Config::variant(SchedulingVariant::kFull, 8);
  cfg.reader_htm_first = false;
  SpRWLock lock{cfg};
  EXPECT_FALSE(lock.has_plane());
  const std::size_t shell = lock.footprint_bytes();
  EXPECT_EQ(shell, sizeof(SpRWLock));
  Cell x;
  sim::Simulator sim;
  sim.run(1, [&](int) { lock.read(0, [&] { (void)x.v.load(); }); });
  EXPECT_TRUE(lock.has_plane());
  EXPECT_GT(lock.footprint_bytes(), shell);
}

// Concurrency stress on REAL threads (also the TSan CI leg: -R
// 'Bravo.*RealThread'): the full bias/revoke/rebias protocol under actual
// preemption, with the invariant pair checked from both path families.
TEST(BravoRealThread, StressNoTornReads) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Config cfg = bravo_config(8);
  cfg.bravo_rebias_reads = 4;
  cfg.bravo_rebias_cooldown = 1.0;
  SpRWLock lock{cfg};
  struct alignas(64) Pair {
    htm::Shared<std::uint64_t> a, b;
  };
  Pair p;
  std::atomic<std::uint64_t> torn{0};
  sim::run_real_threads(8, [&](int tid) {
    for (int i = 0; i < 200; ++i) {
      if (tid % 4 == 0) {
        lock.write(1, [&] {
          const std::uint64_t v = p.a.load() + 1;
          p.a.store(v);
          p.b.store(v);
        });
      } else {
        lock.read(0, [&] {
          if (p.a.load() != p.b.load()) torn.fetch_add(1);
        });
      }
    }
  });
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(p.a.raw_load(), 400u);  // 2 writers x 200 increments
  EXPECT_EQ(p.a.raw_load(), p.b.raw_load());
}

}  // namespace
}  // namespace sprwl::core
