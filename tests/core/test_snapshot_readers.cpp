// SpRWLock::read_snapshot (Config::snapshot_readers, DESIGN.md §14): the
// third acquisition mode. A snapshot reader pins the engine's version
// clock and registers NOTHING — no flag plane, no SNZI arrival, no bravo
// slot — so writers commit as if the reader did not exist; consistency
// comes from the multi-version lookup, not from mutual exclusion. Covers
// the no-registration invariant, writer invisibility, the SnapshotMiss
// fallback to a registered read, the SGL pin guard, graceful degradation
// when the feature is off, and pin hygiene under fault injection
// (preemption mid-section) and exceptions.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/platform.h"
#include "core/sprwl.h"
#include "fault/fault.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "sim/simulator.h"

namespace sprwl::core {
namespace {

struct alignas(64) Cell {
  htm::Shared<std::uint64_t> v;
};

htm::EngineConfig engine_cfg(std::uint32_t retain) {
  htm::EngineConfig cfg;
  cfg.retain_versions = retain;
  cfg.table_bits = 12;
  return cfg;
}

Config snap_config(int threads) {
  Config cfg = Config::variant(SchedulingVariant::kFull, threads);
  cfg.reader_htm_first = false;  // exercise the snapshot path itself
  cfg.snapshot_readers = true;
  return cfg;
}

// The no-registration invariant, structurally: a lock that only ever
// serves snapshot readers never allocates its flag plane — the snapshot
// path touches no per-lock reader state at all.
TEST(SnapshotReaders, PureSnapshotReadsAllocateNoPlane) {
  htm::Engine engine{engine_cfg(4)};
  htm::EngineScope scope(engine);
  SpRWLock lock{snap_config(4)};
  EXPECT_FALSE(lock.has_plane());
  Cell x;
  sim::Simulator sim;
  sim.run(4, [&](int) {
    for (int i = 0; i < 8; ++i) lock.read_snapshot(0, [&] { (void)x.v.load(); });
  });
  EXPECT_FALSE(lock.has_plane());
  EXPECT_EQ(lock.snapshot_read_count(), 32u);
  EXPECT_EQ(lock.snapshot_fallback_count(), 0u);
  EXPECT_EQ(lock.footprint_bytes(), sizeof(SpRWLock));
}

// Writer invisibility — the tentpole property. A snapshot reader parked in
// its section for a long interval never delays or aborts the writers that
// commit meanwhile, and still observes a consistent multi-cell view as of
// its pin.
TEST(SnapshotReaders, ParkedReaderNeverAbortsWriters) {
  htm::Engine engine{engine_cfg(8)};
  htm::EngineScope scope(engine);
  SpRWLock lock{snap_config(2)};
  Cell a, b;
  std::vector<std::uint64_t> saw;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      lock.read_snapshot(0, [&] {
        saw.push_back(a.v.load());
        platform::advance(80'000);  // park with writers committing around us
        saw.push_back(b.v.load());
      });
    } else {
      platform::advance(5'000);  // arrive while the reader is parked
      for (int i = 0; i < 6; ++i) {
        lock.write(1, [&] {
          const std::uint64_t n = a.v.load() + 1;
          a.v.store(n);
          b.v.store(n);
        });
        platform::advance(2'000);
      }
    }
  });
  ASSERT_EQ(saw.size(), 2u);
  EXPECT_EQ(saw[0], saw[1]) << "snapshot view tore across writer commits";
  EXPECT_EQ(a.v.raw_load(), 6u) << "writers must all have committed";
  EXPECT_EQ(lock.snapshot_read_count(), 1u);
  // The writers' commit path found no registered readers to wait out: the
  // parked snapshot reader cost them nothing.
  EXPECT_EQ(lock.reader_abort_count(), 0u);
}

// Graceful degradation: with the config flag off, or without an engine
// that retains versions, read_snapshot() is a plain read() — the body runs
// exactly once and no snapshot counter moves.
TEST(SnapshotReaders, DegradesToPlainReadWithoutSupport) {
  {  // flag off
    htm::Engine engine{engine_cfg(4)};
    htm::EngineScope scope(engine);
    Config cfg = snap_config(2);
    cfg.snapshot_readers = false;
    SpRWLock lock{cfg};
    Cell x;
    int runs = 0;
    sim::Simulator sim;
    sim.run(1, [&](int) {
      lock.read_snapshot(0, [&] {
        ++runs;
        (void)x.v.load();
      });
    });
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(lock.snapshot_read_count(), 0u);
  }
  {  // engine without retention
    htm::Engine engine{htm::EngineConfig{}};
    htm::EngineScope scope(engine);
    SpRWLock lock{snap_config(2)};
    Cell x;
    int runs = 0;
    sim::Simulator sim;
    sim.run(1, [&](int) {
      lock.read_snapshot(0, [&] {
        ++runs;
        (void)x.v.load();
      });
    });
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(lock.snapshot_read_count(), 0u);
    EXPECT_EQ(lock.snapshot_fallback_count(), 0u);
  }
}

// The bounded-ring escape hatch: a section so long (relative to
// retain_versions) that its pinned version is reclaimed mid-read throws
// SnapshotMiss and re-runs as a normal registered read — correct, counted,
// just no longer invisible.
TEST(SnapshotReaders, MissFallsBackToRegisteredRead) {
  htm::Engine engine{engine_cfg(2)};  // tiny ring: easy to overflow
  htm::EngineScope scope(engine);
  SpRWLock lock{snap_config(2)};
  Cell x;
  int runs = 0;
  std::uint64_t last_seen = 0;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      lock.read_snapshot(0, [&] {
        ++runs;
        platform::advance(60'000);  // let the writer churn the ring
        last_seen = x.v.load();
      });
    } else {
      platform::advance(5'000);
      for (int i = 1; i <= 5; ++i) {  // 5 publishes > ring of 2 with pin live
        lock.write(1, [&] { x.v.store(static_cast<std::uint64_t>(i) * 10); });
        platform::advance(1'000);
      }
    }
  });
  EXPECT_EQ(runs, 2) << "body must re-run on the fallback path";
  EXPECT_EQ(lock.snapshot_read_count(), 0u);
  EXPECT_EQ(lock.snapshot_fallback_count(), 1u);
  EXPECT_EQ(last_seen, 50u) << "the registered re-run reads current state";
  EXPECT_GE(engine.stats().version_overflows, 1u);
}

// The SGL pin guard: an SGL-fallback writer publishes each store of its
// section with its own write version, so a pin taken mid-section could
// otherwise observe a torn prefix. A profile with a 2-line write capacity
// forces every 4-cell writer onto the SGL; snapshot readers must still see
// all four cells agree.
TEST(SnapshotReaders, SglFallbackWritersAreNeverTorn) {
  htm::EngineConfig ec = engine_cfg(8);
  ec.capacity = htm::CapacityProfile{"tiny", 512, 2};
  htm::Engine engine{ec};
  htm::EngineScope scope(engine);
  SpRWLock lock{snap_config(2)};
  constexpr int kCells = 4;
  std::vector<Cell> cells(kCells);
  std::uint64_t torn = 0;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    for (int op = 0; op < 10; ++op) {
      if (tid == 0) {
        lock.read_snapshot(0, [&] {
          const std::uint64_t a = cells[0].v.load();
          platform::advance(500);
          for (int c = 1; c < kCells; ++c) {
            if (cells[c].v.load() != a) ++torn;
          }
        });
      } else {
        lock.write(1, [&] {
          const std::uint64_t n = cells[0].v.load() + 1;
          for (int c = 0; c < kCells; ++c) cells[c].v.store(n);
        });
      }
      platform::advance(700 * static_cast<std::uint64_t>(tid) + 300);
    }
  });
  EXPECT_EQ(torn, 0u);
  EXPECT_GT(lock.stats().writes.gl, 0u) << "writers must have used the SGL";
  EXPECT_EQ(cells[0].v.raw_load(), 10u);
}

// Reclamation under fault injection, pin side: a reader preempted right
// after pinning (kReadEnter fires post-pin by design) holds its epoch
// across the whole descheduled interval — writers that commit meanwhile
// cannot reclaim past it, and the resumed reader still resolves at its pin.
TEST(SnapshotReaders, PreemptedReaderKeepsItsPin) {
  htm::Engine engine{engine_cfg(8)};
  htm::EngineScope scope(engine);
  SpRWLock lock{snap_config(2)};
  Cell a, b;
  std::uint64_t saw_a = ~0ull, saw_b = ~0ull;
  sim::Simulator sim;
  fault::FaultPlan plan;
  plan.preempts.push_back(fault::PreemptSpec{
      fault::InjectPoint::kReadEnter, /*tid=*/0, /*not_before=*/0,
      /*duration=*/200'000, /*count=*/1});
  fault::FaultInjector inj(plan, &sim, &engine);
  fault::FaultScope fscope(inj);
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      lock.read_snapshot(0, [&] {
        saw_a = a.v.load();
        saw_b = b.v.load();
      });
    } else {
      platform::advance(10'000);  // inside the reader's preemption window
      for (int i = 1; i <= 4; ++i) {
        lock.write(1, [&] {
          a.v.store(static_cast<std::uint64_t>(i));
          b.v.store(static_cast<std::uint64_t>(i));
        });
      }
    }
  });
  EXPECT_EQ(inj.stats().preemptions, 1u);
  // The pin predates every write: the resumed reader sees the initial
  // state, proving the descheduled interval did not lose the epoch.
  EXPECT_EQ(saw_a, 0u);
  EXPECT_EQ(saw_b, 0u);
  EXPECT_EQ(lock.snapshot_read_count(), 1u);
  EXPECT_EQ(a.v.raw_load(), 4u);
}

// Reclamation under fault injection, unpin side: any unwind out of the
// section — here a plain exception from the body — must release the pin,
// or reclamation is silently wedged for the rest of the run.
TEST(SnapshotReaders, ExceptionOutOfBodyReleasesThePin) {
  htm::Engine engine{engine_cfg(2)};
  htm::EngineScope scope(engine);
  SpRWLock lock{snap_config(1)};
  Cell x;
  sim::Simulator sim;
  sim.run(1, [&](int) {
    try {
      lock.read_snapshot(0, [&]() -> void {
        (void)x.v.load();
        throw std::runtime_error("body failed");
      });
      FAIL() << "exception must propagate";
    } catch (const std::runtime_error&) {
    }
    EXPECT_FALSE(engine.in_snapshot()) << "pin leaked across the unwind";
    // With the pin gone the tiny ring reclaims freely: publishes far past
    // its depth cause no overflow.
    for (int i = 1; i <= 6; ++i) {
      lock.write(1, [&] { x.v.store(static_cast<std::uint64_t>(i)); });
    }
  });
  EXPECT_EQ(engine.stats().version_overflows, 0u);
  EXPECT_EQ(x.v.raw_load(), 6u);
}

// Composition with bravo bias: a snapshot reader does not occupy a bravo
// slot (nothing to drain), so a writer's revocation cost is independent of
// parked snapshot readers.
TEST(SnapshotReaders, ComposesWithBravoWithoutSlotOccupancy) {
  htm::Engine engine{engine_cfg(8)};
  htm::EngineScope scope(engine);
  Config cfg = snap_config(2);
  cfg.bravo_bias = true;
  bravo::ReaderTable::Config tc;
  tc.max_threads = 2;
  cfg.bravo_table = std::make_shared<bravo::ReaderTable>(tc);
  SpRWLock lock{cfg};
  Cell a, b;
  std::uint64_t torn = 0;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      lock.read_snapshot(0, [&] {
        const std::uint64_t x = a.v.load();
        platform::advance(50'000);  // parked across the writer's revocation
        if (b.v.load() != x) ++torn;
      });
    } else {
      platform::advance(10'000);
      lock.write(1, [&] {
        a.v.store(1);
        b.v.store(1);
      });
    }
  });
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(lock.snapshot_read_count(), 1u);
  // The revocation drained an empty table: no slot was held by the
  // snapshot reader, so the writer did not wait out its 50k-cycle park.
  EXPECT_EQ(a.v.raw_load(), 1u);
  EXPECT_EQ(lock.bias_read_count(), 0u);
}

}  // namespace
}  // namespace sprwl::core
