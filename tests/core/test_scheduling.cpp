// SpRWL scheduling techniques (Section 3.2): reader synchronization
// (fairness for writers + aligned reader starts) and writer
// synchronization (delayed retries sized from duration estimates).
#include <gtest/gtest.h>

#include <vector>

#include "common/platform.h"
#include "core/sprwl.h"
#include "htm/shared.h"
#include "sim/simulator.h"

namespace sprwl::core {
namespace {

struct alignas(64) Cell {
  htm::Shared<std::uint64_t> v;
};

Config sched_config(SchedulingVariant v, int threads) {
  Config cfg = Config::variant(v, threads);
  cfg.reader_htm_first = false;  // exercise the uninstrumented path
  return cfg;
}

TEST(SpRWLScheduling, ReaderWaitsForActiveWriter) {
  // Fairness (Section 3.2.1): a reader arriving after a writer is flagged
  // must not start before the writer finishes, so the writer is never
  // aborted by it.
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  SpRWLock lock{sched_config(SchedulingVariant::kRWait, 2)};
  Cell x;
  std::uint64_t reader_entered_at = 0;
  std::uint64_t writer_done_at = 0;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {  // writer, long section
      lock.write(1, [&] {
        x.v.store(1);
        platform::advance(40000);
      });
      writer_done_at = platform::now();
    } else {  // reader arrives while the writer is active
      platform::advance(5000);
      lock.read(0, [&] { reader_entered_at = platform::now(); });
    }
  });
  EXPECT_GE(reader_entered_at, writer_done_at - 1000);
  EXPECT_EQ(lock.reader_abort_count(), 0u);
  EXPECT_EQ(lock.stats().writes.htm, 1u);  // never fell back
}

TEST(SpRWLScheduling, NoSchedReaderDoesNotWait) {
  // Without reader synchronization the reader starts immediately and the
  // writer pays a reader abort.
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  SpRWLock lock{sched_config(SchedulingVariant::kNoSched, 2)};
  Cell x;
  std::uint64_t reader_entered_at = ~0ULL;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      lock.write(1, [&] {
        x.v.store(1);
        platform::advance(40000);
      });
    } else {
      platform::advance(5000);
      // Long reader: still active when the writer reaches its commit-time
      // check, so the writer pays a reader abort.
      lock.read(0, [&] {
        reader_entered_at = platform::now();
        platform::advance(60000);
      });
    }
  });
  EXPECT_LT(reader_entered_at, 20000u);  // started mid-writer
  EXPECT_GE(lock.reader_abort_count(), 1u);
}

TEST(SpRWLScheduling, LateReadersJoinWaitingReader) {
  // RSync (Alg. 2): while reader A waits for a writer, reader B arriving
  // later joins A instead of scanning; both start together when the
  // writer completes — their entry times align.
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  SpRWLock lock{sched_config(SchedulingVariant::kRSync, 3)};
  Cell x;
  std::vector<std::uint64_t> entered(3, 0);
  sim::Simulator sim;
  sim.run(3, [&](int tid) {
    if (tid == 0) {
      lock.write(1, [&] {
        x.v.store(1);
        platform::advance(60000);
      });
    } else {
      platform::advance(tid == 1 ? 5000u : 20000u);
      lock.read(0, [&] {
        entered[static_cast<std::size_t>(tid)] = platform::now();
        platform::advance(10000);
      });
    }
  });
  // Both readers entered after the writer (>= ~60000) and close together.
  EXPECT_GE(entered[1], 55000u);
  EXPECT_GE(entered[2], 55000u);
  const std::uint64_t gap = entered[1] > entered[2] ? entered[1] - entered[2]
                                                    : entered[2] - entered[1];
  EXPECT_LT(gap, 5000u);
}

TEST(SpRWLScheduling, WriterSyncDelaysRetryUntilReadersDrain) {
  // Writer synchronization (Alg. 3): after a reader abort the writer
  // sleeps instead of burning its retry budget, so it still commits in
  // HTM even with a modest budget and a long reader.
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Config cfg = sched_config(SchedulingVariant::kFull, 2);
  cfg.max_retries = 10;  // would be exhausted without writer_wait
  SpRWLock lock{cfg};
  Cell x;
  sim::Simulator sim;
  // Seed the duration EMAs: a few solo sections sampled by thread 0.
  sim.run(1, [&](int) {
    for (int i = 0; i < 5; ++i) {
      lock.read(0, [&] { platform::advance(30000); });
      lock.write(1, [&] {
        x.v.store(0);
        platform::advance(500);
      });
    }
  });
  sim::Simulator sim2;
  sim2.run(2, [&](int tid) {
    if (tid == 0) {
      lock.read(0, [&] { platform::advance(30000); });
    } else {
      platform::advance(100);
      lock.write(1, [&] {
        x.v.store(1);
        platform::advance(500);
      });
    }
  });
  EXPECT_EQ(lock.stats().writes.gl, 0u);
  EXPECT_EQ(lock.stats().writes.htm, 6u);  // 5 seeding + 1 contended
  EXPECT_EQ(x.v.raw_load(), 1u);
}

TEST(SpRWLScheduling, BudgetExhaustionWithoutWriterSyncFallsBack) {
  // Same scenario as above but with writer_sync off: the writer burns its
  // 10 attempts against the 30000-cycle reader and lands in the SGL.
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Config cfg = sched_config(SchedulingVariant::kRSync, 2);
  cfg.max_retries = 10;
  SpRWLock lock{cfg};
  Cell x;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      lock.read(0, [&] { platform::advance(30000); });
    } else {
      platform::advance(100);
      lock.write(1, [&] {
        x.v.store(1);
        platform::advance(500);
      });
    }
  });
  EXPECT_EQ(lock.stats().writes.gl, 1u);
  EXPECT_EQ(x.v.raw_load(), 1u);
}

TEST(SpRWLScheduling, ClockAdvertisementUsesEstimates) {
  // After sampling, a reader waiting for a writer should wake close to
  // the writer's real end time rather than spinning from the start: the
  // reader's entry time tracks the writer duration, not a fixed poll.
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Config cfg = sched_config(SchedulingVariant::kFull, 2);
  SpRWLock lock{cfg};
  Cell x;
  // Seed write EMA with 20000-cycle sections.
  sim::Simulator seed;
  seed.run(1, [&](int) {
    for (int i = 0; i < 8; ++i) {
      lock.write(1, [&] {
        x.v.store(1);
        platform::advance(20000);
      });
    }
  });
  std::uint64_t reader_entered = 0;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      lock.write(1, [&] {
        x.v.store(2);
        platform::advance(20000);
      });
    } else {
      platform::advance(1000);
      lock.read(0, [&] { reader_entered = platform::now(); });
    }
  });
  EXPECT_GE(reader_entered, 20000u);
  EXPECT_LT(reader_entered, 40000u);  // woke near the estimate, not late
}

TEST(SpRWLScheduling, WritersNotStarvedByReaderStream) {
  // A continuous stream of readers: with full scheduling the writer keeps
  // committing (fairness), i.e. completes many sections well before the
  // run ends.
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Config cfg = sched_config(SchedulingVariant::kFull, 5);
  SpRWLock lock{cfg};
  Cell x;
  int writes_done = 0;
  sim::Simulator sim;
  sim.run(5, [&](int tid) {
    if (tid == 0) {
      for (int i = 0; i < 20; ++i) {
        lock.write(1, [&] {
          x.v.store(static_cast<std::uint64_t>(i));
          platform::advance(500);
        });
        ++writes_done;
        platform::advance(200);
      }
    } else {
      for (int i = 0; i < 40; ++i) {
        lock.read(0, [&] { platform::advance(4000); });
        platform::advance(100);
      }
    }
  });
  EXPECT_EQ(writes_done, 20);
}

}  // namespace
}  // namespace sprwl::core
