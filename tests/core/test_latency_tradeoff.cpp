// Integration check of the paper's headline latency contrast (Section 4.1,
// Fig. 3 discussion): under long churning readers, SpRWL keeps writer
// latency orders of magnitude below RW-LE's quiescence-bound writers, at
// the cost of a (relatively) modest increase in reader latency.
#include <gtest/gtest.h>

#include "common/platform.h"
#include "core/sprwl.h"
#include "htm/engine.h"
#include "locks/rwle.h"
#include "locks/tle.h"
#include "sim/simulator.h"
#include "workloads/driver.h"
#include "workloads/hashmap.h"

namespace sprwl::core {
namespace {

workloads::HashMap make_map(int threads) {
  workloads::HashMap::Config mc;
  mc.buckets = 64;  // long chains: readers far beyond POWER8 capacity
  mc.capacity = 8192;
  mc.max_threads = threads;
  workloads::HashMap map(mc);
  Rng rng(3);
  map.populate(4096, 8192, rng);
  return map;
}

workloads::DriverConfig config(int threads) {
  workloads::DriverConfig dc;
  dc.threads = threads;
  dc.update_ratio = 0.10;
  dc.lookups_per_read = 10;
  dc.key_space = 8192;
  dc.warmup_cycles = 200'000;
  dc.measure_cycles = 4'000'000;
  dc.seed = 21;
  return dc;
}

template <class Lock>
workloads::RunResult run(Lock& lock, int threads) {
  htm::EngineConfig ec;
  ec.capacity = htm::kPower8;
  ec.max_threads = threads;
  htm::Engine engine(ec);
  workloads::HashMap map = make_map(threads);
  sim::Simulator sim;
  return run_hashmap(sim, engine, lock, map, config(threads));
}

TEST(LatencyTradeoff, SpRWLWritersFarBelowRWLEWriters) {
  constexpr int kThreads = 16;
  SpRWLock sprwl{Config::variant(SchedulingVariant::kFull, kThreads)};
  const workloads::RunResult a = run(sprwl, kThreads);
  locks::RWLELock::Config rc;
  rc.max_threads = kThreads;
  locks::RWLELock rwle{rc};
  const workloads::RunResult b = run(rwle, kThreads);

  ASSERT_GT(a.writes, 50u);
  ASSERT_GT(b.writes, 50u);
  // Writer latency: RW-LE pays quiescence against churning long readers;
  // the paper reports >10x (up to two orders of magnitude).
  EXPECT_GT(b.write_latency.mean(), a.write_latency.mean() * 5);
  // Reader latency: SpRWL's reader-sync costs something, but nothing like
  // the writer gap (the paper reports ~3x-4x at the crossover point).
  EXPECT_LT(a.read_latency.mean(), b.read_latency.mean() * 20);
  // And SpRWL's throughput is ahead (Fig. 3 POWER8 beyond ~8 threads).
  EXPECT_GT(a.throughput_tx_s(), b.throughput_tx_s());
}

TEST(LatencyTradeoff, SpRWLBeatsTleOnLongReaders) {
  constexpr int kThreads = 16;
  SpRWLock sprwl{Config::variant(SchedulingVariant::kFull, kThreads)};
  const workloads::RunResult a = run(sprwl, kThreads);
  locks::TLELock::Config tc;
  tc.max_threads = kThreads;
  locks::TLELock tle{tc};
  const workloads::RunResult b = run(tle, kThreads);
  EXPECT_GT(a.throughput_tx_s(), b.throughput_tx_s() * 2);
  // TLE's long readers land under the global lock; SpRWL's never do.
  EXPECT_GT(b.lock_stats.reads.gl, 0u);
  EXPECT_EQ(a.lock_stats.reads.gl, 0u);
}

}  // namespace
}  // namespace sprwl::core
