// Self-tuning reader tracking (Section 5 future work): flags for short
// readers, SNZI for long ones, with drain-based transitions that never hide
// an active reader from writers.
#include <gtest/gtest.h>

#include "common/platform.h"
#include "core/sprwl.h"
#include "htm/shared.h"
#include "sim/simulator.h"

namespace sprwl::core {
namespace {

struct alignas(64) Cell {
  htm::Shared<std::uint64_t> v;
};

Config adaptive_config(int threads) {
  Config cfg = Config::variant(SchedulingVariant::kFull, threads);
  cfg.adaptive_tracking = true;
  cfg.adaptive_threshold_cycles = 20'000;
  cfg.reader_htm_first = false;  // exercise the tracked (uninstrumented) path
  return cfg;
}

TEST(AdaptiveTracking, StartsWithFlags) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  SpRWLock lock{adaptive_config(4)};
  EXPECT_FALSE(lock.tracking_with_snzi());
  EXPECT_FALSE(lock.tracking_transition_active());
}

TEST(AdaptiveTracking, LongReadersFlipToSnzi) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  SpRWLock lock{adaptive_config(2)};
  sim::Simulator sim;
  sim.run(1, [&](int) {
    for (int i = 0; i < 20; ++i) {
      lock.read(0, [&] { platform::advance(100'000); });
    }
  });
  EXPECT_TRUE(lock.tracking_with_snzi());
  EXPECT_FALSE(lock.tracking_transition_active());  // drained & finalized
}

TEST(AdaptiveTracking, ShortReadersStayOnFlags) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  SpRWLock lock{adaptive_config(2)};
  Cell x;
  sim::Simulator sim;
  sim.run(1, [&](int) {
    for (int i = 0; i < 50; ++i) {
      lock.read(0, [&] { (void)x.v.load(); });
    }
  });
  EXPECT_FALSE(lock.tracking_with_snzi());
}

TEST(AdaptiveTracking, FlipsBackWhenReadersShorten) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Config cfg = adaptive_config(2);
  cfg.ema_alpha = 0.5;  // adapt fast for the test
  SpRWLock lock{cfg};
  sim::Simulator sim;
  sim.run(1, [&](int) {
    for (int i = 0; i < 10; ++i) {
      lock.read(0, [&] { platform::advance(100'000); });
    }
  });
  EXPECT_TRUE(lock.tracking_with_snzi());
  sim::Simulator sim2;
  sim2.run(1, [&](int) {
    for (int i = 0; i < 30; ++i) {
      lock.read(0, [&] { platform::advance(100); });
    }
  });
  EXPECT_FALSE(lock.tracking_with_snzi());
}

TEST(AdaptiveTracking, SafetyAcrossTransitions) {
  // Readers alternate between long and short phases so the lock keeps
  // flipping modes while writers update a two-word invariant: no reader
  // may ever observe a torn pair, transition or not.
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Config cfg = adaptive_config(8);
  cfg.ema_alpha = 0.5;
  cfg.adaptive_threshold_cycles = 3'000;
  SpRWLock lock{cfg};
  struct alignas(64) Pair {
    htm::Shared<std::uint64_t> a, b;
  };
  Pair p;
  std::uint64_t torn = 0;
  int flips = 0;
  bool was_snzi = false;
  sim::Simulator sim;
  sim.run(8, [&](int tid) {
    Rng rng(static_cast<std::uint64_t>(tid) * 5 + 2);
    for (int phase = 0; phase < 6; ++phase) {
      const bool long_phase = phase % 2 == 1;
      for (int i = 0; i < 40; ++i) {
        // tid 0 must read: it is the sampler driving the adaptation.
        if (tid % 2 == 1) {
          lock.write(1, [&] {
            const std::uint64_t v = p.a.load() + 1;
            p.a.store(v);
            platform::advance(rng.next_below(200));
            p.b.store(v);
          });
        } else {
          lock.read(0, [&] {
            const std::uint64_t a = p.a.load();
            platform::advance(long_phase ? 8'000 : rng.next_below(200));
            if (p.b.load() != a) ++torn;
          });
        }
        platform::advance(rng.next_below(100));
        if (tid == 0 && lock.tracking_with_snzi() != was_snzi) {
          was_snzi = !was_snzi;
          ++flips;
        }
      }
    }
  });
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(p.a.raw_load(), p.b.raw_load());
  EXPECT_GE(flips, 2);  // the workload really did flip modes
}

TEST(AdaptiveTracking, WriterSeesReaderDuringTransition) {
  // A long reader registered under flags keeps the transition window open;
  // a writer in that window must still abort on it (it checks both
  // structures).
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Config cfg = adaptive_config(3);
  cfg.ema_alpha = 1.0;  // first long sample flips immediately
  SpRWLock lock{cfg};
  Cell x;
  std::uint64_t seen_mid_read = ~0ULL;
  sim::Simulator sim;
  sim.run(3, [&](int tid) {
    if (tid == 1) {
      // Long reader (registers under flags; while it runs, tid 0 samples a
      // long read and flips the mode to SNZI, but cannot finish the
      // transition until this reader drains).
      platform::advance(100);
      lock.read(0, [&] {
        platform::advance(300'000);
        seen_mid_read = x.v.load();
      });
    } else if (tid == 0) {
      // Sampler: one long read flips the desired mode.
      platform::advance(5'000);
      lock.read(0, [&] { platform::advance(150'000); });
    } else {
      // Writer mid-transition: must not commit while reader 1 is active.
      platform::advance(200'000);
      lock.write(1, [&] { x.v.store(1); });
    }
  });
  EXPECT_EQ(seen_mid_read, 0u);  // writer publication waited for the reader
  EXPECT_EQ(x.v.raw_load(), 1u);
}

}  // namespace
}  // namespace sprwl::core
