// Configuration variants: the Fig. 5 ablation presets, the SNZI reader
// tracking scheme, the reader-HTM-first optimization and the versioned-SGL
// starvation fix.
#include <gtest/gtest.h>

#include <vector>

#include "common/platform.h"
#include "core/sprwl.h"
#include "htm/shared.h"
#include "sim/simulator.h"

namespace sprwl::core {
namespace {

struct alignas(64) Cell {
  htm::Shared<std::uint64_t> v;
};

TEST(SpRWLVariants, PresetsToggleTheRightKnobs) {
  const Config nosched = Config::variant(SchedulingVariant::kNoSched, 8);
  EXPECT_FALSE(nosched.reader_sync);
  EXPECT_FALSE(nosched.reader_join);
  EXPECT_FALSE(nosched.writer_sync);

  const Config rwait = Config::variant(SchedulingVariant::kRWait, 8);
  EXPECT_TRUE(rwait.reader_sync);
  EXPECT_FALSE(rwait.reader_join);
  EXPECT_FALSE(rwait.writer_sync);

  const Config rsync = Config::variant(SchedulingVariant::kRSync, 8);
  EXPECT_TRUE(rsync.reader_sync);
  EXPECT_TRUE(rsync.reader_join);
  EXPECT_FALSE(rsync.writer_sync);

  const Config full = Config::variant(SchedulingVariant::kFull, 8);
  EXPECT_TRUE(full.reader_sync);
  EXPECT_TRUE(full.reader_join);
  EXPECT_TRUE(full.writer_sync);
  EXPECT_EQ(full.max_threads, 8);
}

TEST(SpRWLVariants, SnziVariantPreservesSafety) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Config cfg = Config::variant(SchedulingVariant::kFull, 8);
  cfg.use_snzi = true;
  cfg.reader_htm_first = false;
  SpRWLock lock{cfg};
  struct alignas(64) Pair {
    htm::Shared<std::uint64_t> a, b;
  };
  Pair p;
  std::uint64_t torn = 0;
  sim::Simulator sim;
  sim.run(8, [&](int tid) {
    for (int i = 0; i < 100; ++i) {
      if (tid % 4 == 0) {
        lock.write(1, [&] {
          const std::uint64_t v = p.a.load() + 1;
          p.a.store(v);
          platform::advance(300);
          p.b.store(v);
        });
      } else {
        lock.read(0, [&] {
          const std::uint64_t a = p.a.load();
          platform::advance(300);
          if (p.b.load() != a) ++torn;
        });
      }
      platform::advance(50);
    }
  });
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(p.a.raw_load(), p.b.raw_load());
  EXPECT_EQ(p.a.raw_load(), 200u);
}

TEST(SpRWLVariants, SnziWriterAbortsOnActiveReader) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Config cfg = Config::variant(SchedulingVariant::kNoSched, 2);
  cfg.use_snzi = true;
  cfg.reader_htm_first = false;
  SpRWLock lock{cfg};
  Cell x;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      lock.read(0, [&] { platform::advance(50000); });
    } else {
      platform::advance(5000);
      lock.write(1, [&] { x.v.store(1); });
    }
  });
  EXPECT_GE(lock.reader_abort_count(), 1u);
  EXPECT_EQ(x.v.raw_load(), 1u);
}

TEST(SpRWLVariants, ReaderHtmFirstCommitsShortReadersInHardware) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Config cfg = Config::variant(SchedulingVariant::kFull, 2);
  cfg.reader_htm_first = true;
  SpRWLock lock{cfg};
  Cell x;
  sim::Simulator sim;
  sim.run(1, [&](int) {
    for (int i = 0; i < 10; ++i) {
      lock.read(0, [&] { (void)x.v.load(); });
    }
  });
  const locks::LockStats s = lock.stats();
  EXPECT_EQ(s.reads.htm, 10u);
  EXPECT_EQ(s.reads.unins, 0u);
}

TEST(SpRWLVariants, ReaderHtmFirstFallsBackOnCapacity) {
  htm::EngineConfig ecfg;
  ecfg.capacity = htm::CapacityProfile{"tiny", 8, 8};
  htm::Engine engine{ecfg};
  htm::EngineScope scope(engine);
  Config cfg = Config::variant(SchedulingVariant::kFull, 2);
  cfg.reader_htm_first = true;
  SpRWLock lock{cfg};
  std::vector<Cell> cells(32);
  sim::Simulator sim;
  sim.run(1, [&](int) {
    lock.read(0, [&] {
      for (auto& c : cells) (void)c.v.load();
    });
  });
  const locks::LockStats s = lock.stats();
  EXPECT_EQ(s.reads.unins, 1u);
  EXPECT_EQ(s.reads.htm, 0u);
  EXPECT_GE(engine.stats().aborts_capacity, 1u);
}

TEST(SpRWLVariants, ReaderHtmFirstRunsConcurrentlyWithLongWriter) {
  // Footnote 4 / Section 3.4: a short reader should overlap an active
  // HTM writer instead of waiting for it, because it executes as a
  // transaction itself.
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Config cfg = Config::variant(SchedulingVariant::kFull, 2);
  SpRWLock lock{cfg};
  Cell x, y;
  std::uint64_t reader_done_at = 0;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {  // long writer on x
      lock.write(1, [&] {
        x.v.store(1);
        platform::advance(50000);
      });
    } else {  // short reader on y (no data conflict)
      platform::advance(2000);
      lock.read(0, [&] { (void)y.v.load(); });
      reader_done_at = platform::now();
    }
  });
  EXPECT_LT(reader_done_at, 20000u);  // finished well before the writer
  EXPECT_EQ(lock.stats().reads.htm, 1u);
}

TEST(SpRWLVariants, VersionedSglGivesWaitingReaderPriority) {
  // Section 3.3: with a stream of SGL writers, a versioned SGL admits the
  // waiting reader after one lock generation instead of letting writers
  // starve it. We verify the reader completes while writers are still
  // queueing (versioned) — and that safety holds.
  htm::EngineConfig ecfg;
  ecfg.capacity = htm::CapacityProfile{"tiny", 64, 1};  // all writers -> SGL
  htm::Engine engine{ecfg};
  htm::EngineScope scope(engine);
  Config cfg = Config::variant(SchedulingVariant::kNoSched, 3);
  cfg.reader_htm_first = false;
  cfg.versioned_sgl = true;
  SpRWLock lock{cfg};
  Cell a, b;
  std::uint64_t reader_done_at = 0;
  std::uint64_t writers_done_at = 0;
  std::uint64_t torn = 0;
  sim::Simulator sim;
  sim.run(3, [&](int tid) {
    if (tid == 0) {  // reader arriving into a writer storm
      platform::advance(3000);
      lock.read(0, [&] {
        const std::uint64_t x = a.v.load();
        platform::advance(500);
        if (b.v.load() != x) ++torn;
      });
      reader_done_at = platform::now();
    } else {  // back-to-back SGL writers
      for (int i = 0; i < 40; ++i) {
        lock.write(1, [&] {
          const std::uint64_t v = a.v.load() + 1;
          a.v.store(v);
          platform::advance(2000);
          b.v.store(v);
        });
      }
      writers_done_at = platform::now();
    }
  });
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(a.v.raw_load(), 80u);
  EXPECT_EQ(a.v.raw_load(), b.v.raw_load());
  // The reader got in long before the writer storm drained.
  EXPECT_LT(reader_done_at, writers_done_at);
}

TEST(SpRWLVariants, EmaSlotsHandleManyCriticalSectionIds) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Config cfg = Config::variant(SchedulingVariant::kFull, 1);
  SpRWLock lock{cfg};
  Cell x;
  sim::Simulator sim;
  sim.run(1, [&](int) {
    for (int cs = 0; cs < 1000; ++cs) {
      lock.write(cs, [&] { x.v.store(static_cast<std::uint64_t>(cs)); });
      lock.read(cs + 1000, [&] { (void)x.v.load(); });
    }
  });
  EXPECT_EQ(lock.stats().writes.total(), 1000u);
  EXPECT_EQ(lock.stats().reads.total(), 1000u);
}

}  // namespace
}  // namespace sprwl::core
