// SpRWL's pessimistic escape hatch: every path a writer can take off HTM
// onto the single global lock, and the accounting each leaves behind.
//  * retry exhaustion under a permanent interrupt storm,
//  * immediate fallback on a capacity abort (one attempt, no retries),
//  * the virtual-time retry budget (bounds storms when the attempt counter
//    alone would spin for a long time),
//  * lemming-effect avoidance (lock-busy aborts do not burn attempts),
//  * the versioned SGL admitting readers that arrive mid-storm, with
//    HTM-first readers in play.
#include <gtest/gtest.h>

#include <vector>

#include "common/platform.h"
#include "core/sprwl.h"
#include "htm/shared.h"
#include "sim/simulator.h"

namespace sprwl::core {
namespace {

struct alignas(64) Cell {
  htm::Shared<std::uint64_t> v;
};

TEST(SglFallback, RetryExhaustionUnderPermanentSpuriousAborts) {
  // Every transactional access aborts: each write must burn exactly
  // max_retries attempts and then complete pessimistically.
  htm::EngineConfig ecfg;
  ecfg.spurious_abort_rate = 1.0;
  htm::Engine engine{ecfg};
  htm::EngineScope scope(engine);
  Config cfg = Config::variant(SchedulingVariant::kNoSched, 1);
  cfg.max_retries = 4;
  cfg.writer_retry_budget_cycles = 0;  // isolate the attempt counter
  SpRWLock lock{cfg};

  Cell cell;
  constexpr std::uint64_t kWrites = 25;
  sim::Simulator sim;
  sim.run(1, [&](int) {
    for (std::uint64_t i = 0; i < kWrites; ++i) {
      lock.write(1, [&] { cell.v.store(cell.v.load() + 1); });
    }
  });
  EXPECT_EQ(cell.v.raw_load(), kWrites);
  const locks::LockStats s = lock.stats();
  EXPECT_EQ(s.writes.gl, kWrites);
  EXPECT_EQ(s.writes.htm, 0u);
  EXPECT_EQ(s.escalations.retry_exhausted, kWrites);
  EXPECT_EQ(s.aborts.spurious, kWrites * 4);  // max_retries attempts each
}

TEST(SglFallback, CapacityAbortFallsBackImmediately) {
  // A section that cannot fit must not be retried: one capacity abort, one
  // escalation, straight to the SGL.
  htm::EngineConfig ecfg;
  ecfg.capacity = htm::CapacityProfile{"tiny", 64, 1};
  htm::Engine engine{ecfg};
  htm::EngineScope scope(engine);
  SpRWLock lock{Config::variant(SchedulingVariant::kNoSched, 1)};

  Cell a, b;  // two padded lines > 1-line write capacity
  constexpr std::uint64_t kWrites = 20;
  sim::Simulator sim;
  sim.run(1, [&](int) {
    for (std::uint64_t i = 0; i < kWrites; ++i) {
      lock.write(1, [&] {
        const std::uint64_t v = a.v.load() + 1;
        a.v.store(v);
        b.v.store(v);
      });
    }
  });
  EXPECT_EQ(a.v.raw_load(), kWrites);
  EXPECT_EQ(b.v.raw_load(), kWrites);
  const locks::LockStats s = lock.stats();
  EXPECT_EQ(s.writes.gl, kWrites);
  EXPECT_EQ(s.escalations.capacity, kWrites);
  EXPECT_EQ(s.aborts.capacity, kWrites);   // exactly one attempt per write
  EXPECT_EQ(s.aborts.total(), kWrites);    // and no other abort ever fired
}

TEST(SglFallback, RetryBudgetBoundsAStorm) {
  // With the attempt counter effectively unlimited, the virtual-time budget
  // is what stops a writer from spinning through a storm forever.
  htm::EngineConfig ecfg;
  ecfg.spurious_abort_rate = 1.0;
  htm::Engine engine{ecfg};
  htm::EngineScope scope(engine);
  Config cfg = Config::variant(SchedulingVariant::kNoSched, 1);
  cfg.max_retries = 1'000'000;
  cfg.writer_retry_budget_cycles = 3'000;
  SpRWLock lock{cfg};

  Cell cell;
  constexpr std::uint64_t kWrites = 10;
  sim::Simulator sim;
  sim.run(1, [&](int) {
    for (std::uint64_t i = 0; i < kWrites; ++i) {
      lock.write(1, [&] { cell.v.store(cell.v.load() + 1); });
    }
  });
  EXPECT_EQ(cell.v.raw_load(), kWrites);
  const locks::LockStats s = lock.stats();
  EXPECT_EQ(s.writes.gl, kWrites);
  EXPECT_EQ(s.escalations.budget_exhausted, kWrites);
  EXPECT_EQ(s.escalations.retry_exhausted, 0u);
  // The backoff between attempts is what makes the budget bite quickly:
  // a handful of attempts per write, not thousands.
  EXPECT_LT(s.aborts.spurious, kWrites * 50);
}

TEST(SglFallback, LemmingAvoidanceKeepsWritersOffTheSgl) {
  // Writer 1 capacity-aborts every section and lives on the SGL back to
  // back; three small writers fit HTM easily but keep colliding with the
  // SGL tenure: a small writer that starts its transaction just as the SGL
  // is grabbed aborts with the lock-busy subscription code. Those aborts
  // say nothing about the small sections, so with avoidance on they must
  // not burn retry attempts — with max_retries = 1, a single burned attempt
  // would throw the small writer onto the SGL (the lemming effect).
  static constexpr std::uint64_t kBig = 150, kSmall = 400;
  const auto run = [](bool avoidance) {
    htm::EngineConfig ecfg;
    ecfg.capacity = htm::CapacityProfile{"tiny", 64, 1};
    htm::Engine engine{ecfg};
    htm::EngineScope scope(engine);
    Config cfg = Config::variant(SchedulingVariant::kNoSched, 4);
    cfg.max_retries = 1;  // tight: any burned attempt escalates immediately
    cfg.backoff_base_cycles = 0;  // isolate the lemming path
    cfg.lemming_avoidance = avoidance;
    SpRWLock lock{cfg};

    Cell big_a, big_b;
    std::vector<Cell> small(3);
    sim::Simulator sim;
    sim.run(4, [&](int tid) {
      Rng rng(static_cast<std::uint64_t>(tid) * 31 + 7);
      if (tid == 0) {
        for (std::uint64_t i = 0; i < kBig; ++i) {
          lock.write(1, [&] {  // two lines: always capacity -> always SGL
            const std::uint64_t v = big_a.v.load() + 1;
            platform::advance(400);
            big_a.v.store(v);
            big_b.v.store(v);
          });
          platform::advance(rng.next_below(200));
        }
      } else {
        auto& mine = small[static_cast<std::size_t>(tid - 1)];
        for (std::uint64_t i = 0; i < kSmall; ++i) {
          lock.write(2 + tid, [&] {  // one line: fits HTM
            mine.v.store(mine.v.load() + 1);
            platform::advance(100);
          });
          platform::advance(rng.next_below(150));
        }
      }
    });
    EXPECT_EQ(big_a.v.raw_load(), kBig);
    for (auto& c : small) EXPECT_EQ(c.v.raw_load(), kSmall);
    return lock.stats();
  };

  const locks::LockStats with = run(true);
  const locks::LockStats without = run(false);
  // Both runs hit the SGL-busy subscription abort (the contention is real).
  EXPECT_GT(with.aborts.explicit_lock_busy, 0u);
  EXPECT_GT(without.aborts.explicit_lock_busy, 0u);
  // With avoidance, every lock-busy abort is forgiven — and visibly so.
  EXPECT_EQ(with.escalations.lemming_avoided, with.aborts.explicit_lock_busy);
  EXPECT_EQ(without.escalations.lemming_avoided, 0u);
  // The lemming effect itself: without avoidance the lock-busy aborts burn
  // the single retry attempt and drag writers onto the SGL that, with
  // avoidance, would have committed in HTM.
  EXPECT_GT(with.writes.htm, without.writes.htm);
  EXPECT_LT(with.writes.gl, without.writes.gl);
  // Totals are conserved either way (no lost sections, just worse modes).
  EXPECT_EQ(with.writes.total(), kBig + 3 * kSmall);
  EXPECT_EQ(without.writes.total(), kBig + 3 * kSmall);
}

TEST(SglFallback, VersionedSglAdmitsHtmFirstReadersDuringAStorm) {
  // Readers with the default HTM-first policy arriving during a
  // back-to-back SGL writer storm: the versioned lock must admit them
  // within one generation, and their snapshots must never be torn.
  htm::EngineConfig ecfg;
  ecfg.capacity = htm::CapacityProfile{"tiny", 64, 1};
  htm::Engine engine{ecfg};
  htm::EngineScope scope(engine);
  Config cfg = Config::variant(SchedulingVariant::kNoSched, 6);
  cfg.versioned_sgl = true;
  cfg.reader_htm_first = true;
  SpRWLock lock{cfg};

  Cell a, b;
  std::vector<std::uint64_t> entered(4, 0);
  std::uint64_t torn = 0;
  sim::Simulator sim;
  sim.run(6, [&](int tid) {
    if (tid < 4) {  // readers arriving mid-storm
      platform::advance(2'000 + static_cast<std::uint64_t>(tid) * 700);
      lock.read(0, [&] {
        entered[static_cast<std::size_t>(tid)] = platform::now();
        const std::uint64_t x = a.v.load();
        platform::advance(300);
        if (b.v.load() != x) ++torn;
      });
    } else {
      for (int i = 0; i < 40; ++i) {
        lock.write(1, [&] {
          const std::uint64_t v = a.v.load() + 1;
          a.v.store(v);
          platform::advance(1'500);
          b.v.store(v);
        });
      }
    }
  });
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(a.v.raw_load(), 80u);
  EXPECT_EQ(a.v.raw_load(), b.v.raw_load());
  for (int t = 0; t < 4; ++t) {
    EXPECT_GT(entered[static_cast<std::size_t>(t)], 0u);
    EXPECT_LT(entered[static_cast<std::size_t>(t)], 80'000u) << "reader " << t;
  }
  const locks::LockStats s = lock.stats();
  EXPECT_EQ(s.reads.total(), 4u);
  EXPECT_EQ(s.escalations.capacity, 80u);  // every write went via the SGL
}

}  // namespace
}  // namespace sprwl::core
