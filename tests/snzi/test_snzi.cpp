#include "snzi/snzi.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/platform.h"
#include "common/rng.h"
#include "htm/engine.h"
#include "sim/simulator.h"

namespace sprwl::snzi {
namespace {

TEST(Snzi, StartsAtZero) {
  Snzi s;
  EXPECT_FALSE(s.query());
  EXPECT_EQ(s.root_count_raw(), 0u);
}

TEST(Snzi, SingleArriveDepart) {
  ThreadIdScope tid(0);
  Snzi s;
  s.arrive(0);
  EXPECT_TRUE(s.query());
  s.depart(0);
  EXPECT_FALSE(s.query());
}

TEST(Snzi, MultipleArrivalsSameSlot) {
  ThreadIdScope tid(0);
  Snzi s;
  for (int i = 0; i < 10; ++i) s.arrive(0);
  for (int i = 0; i < 9; ++i) {
    s.depart(0);
    EXPECT_TRUE(s.query()) << "after " << i + 1 << " departs";
  }
  s.depart(0);
  EXPECT_FALSE(s.query());
}

TEST(Snzi, DistinctSlotsShareTheIndicator) {
  ThreadIdScope tid(0);
  Snzi s(Snzi::Config{3});
  s.arrive(0);
  s.arrive(5);
  s.arrive(11);
  EXPECT_TRUE(s.query());
  s.depart(5);
  s.depart(0);
  EXPECT_TRUE(s.query());
  s.depart(11);
  EXPECT_FALSE(s.query());
}

TEST(Snzi, SingleLevelDegeneratesToCounter) {
  ThreadIdScope tid(0);
  Snzi s(Snzi::Config{1});
  EXPECT_EQ(s.leaf_count(), 1u);
  s.arrive(3);
  s.arrive(4);
  EXPECT_TRUE(s.query());
  s.depart(3);
  s.depart(4);
  EXPECT_FALSE(s.query());
}

// Property: query() agrees with a reference surplus counter whenever no
// arrive/depart is mid-flight; checked across tree depths and fiber counts.
using Params = std::tuple<int /*levels*/, int /*threads*/>;
class SnziProperty : public ::testing::TestWithParam<Params> {};

TEST_P(SnziProperty, MatchesReferenceCounterAtQuiescentPoints) {
  const auto [levels, threads] = GetParam();
  Snzi s(Snzi::Config{levels});
  sim::Simulator sim;
  // Each fiber performs arrive/depart cycles; between its own operations
  // its contribution to the surplus is known. We check the global property
  // at the end and per-thread monotonic sanity during the run.
  std::vector<int> my_surplus(static_cast<std::size_t>(threads), 0);
  sim.run(threads, [&](int tid) {
    Rng rng(static_cast<std::uint64_t>(tid) * 31 + 7);
    int held = 0;
    for (int op = 0; op < 400; ++op) {
      if (held > 0 && rng.next_bool(0.5)) {
        s.depart(tid);
        --held;
      } else {
        s.arrive(tid);
        ++held;
      }
      // While we hold at least one arrival, the indicator must be true
      // (our surplus alone is non-zero).
      if (held > 0) {
        EXPECT_TRUE(s.query());
      }
      platform::advance(rng.next_below(200));
    }
    while (held > 0) {
      s.depart(tid);
      --held;
    }
    my_surplus[static_cast<std::size_t>(tid)] = held;
  });
  EXPECT_FALSE(s.query());
  EXPECT_EQ(s.root_count_raw(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SnziProperty,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5),
                                            ::testing::Values(1, 2, 8, 32)));

// Socket-major layout (DESIGN.md §11): with a topology configured, the
// leaf row is partitioned into one contiguous block per socket, so a
// socket's readers fold into their own leaves instead of striping across
// the row. levels=3 -> 4 leaves; 2 sockets of 8 cores -> blocks of 2.
TEST(SnziSocketMajor, LeavesPartitionBySocket) {
  Snzi s(Snzi::Config{3, /*sockets=*/2, /*cores_per_socket=*/8});
  ASSERT_EQ(s.leaf_count(), 4u);
  for (int slot = 0; slot < 8; ++slot) {
    EXPECT_LT(s.leaf_index(slot), 2u) << "slot " << slot;  // socket 0 block
  }
  for (int slot = 8; slot < 16; ++slot) {
    const std::size_t leaf = s.leaf_index(slot);
    EXPECT_GE(leaf, 2u) << "slot " << slot;  // socket 1 block
    EXPECT_LT(leaf, 4u) << "slot " << slot;
  }
}

TEST(SnziSocketMajor, FlatDefaultKeepsModuloStriping) {
  Snzi s(Snzi::Config{3});
  ASSERT_EQ(s.leaf_count(), 4u);
  for (int slot = 0; slot < 16; ++slot) {
    EXPECT_EQ(s.leaf_index(slot), static_cast<std::size_t>(slot) % 4u);
  }
}

// The leaf is chosen by the slot id, not by where the caller currently
// runs: a thread that migrated sockets between arrive and depart still
// departs the leaf it arrived on, so the surplus balances to zero.
TEST(SnziSocketMajor, DepartAfterMigrationBalances) {
  Snzi s(Snzi::Config{3, 2, 8});
  {
    ThreadIdScope tid(3);  // socket 0
    s.arrive(3);
    EXPECT_TRUE(s.query());
  }
  {
    ThreadIdScope tid(12);  // same logical slot departing from socket 1
    s.depart(3);
  }
  EXPECT_FALSE(s.query());
  EXPECT_EQ(s.root_count_raw(), 0u);
}

TEST(SnziSocketMajor, OversizedSocketCountFallsBackToFlat) {
  // More sockets than leaves cannot be partitioned; the layout degrades to
  // the flat stripe rather than handing sockets empty blocks.
  Snzi s(Snzi::Config{1, /*sockets=*/4, /*cores_per_socket=*/2});
  ASSERT_EQ(s.leaf_count(), 1u);
  for (int slot = 0; slot < 8; ++slot) EXPECT_EQ(s.leaf_index(slot), 0u);
  ThreadIdScope tid(0);
  s.arrive(5);
  EXPECT_TRUE(s.query());
  s.depart(5);
  EXPECT_FALSE(s.query());
}

TEST(SnziRealThreads, NeverFalseNegativeUnderContention) {
  Snzi s(Snzi::Config{3});
  std::atomic<int> false_negatives{0};
  sim::run_real_threads(4, [&](int tid) {
    for (int op = 0; op < 3000; ++op) {
      s.arrive(tid);
      if (!s.query()) false_negatives.fetch_add(1);
      s.depart(tid);
    }
  });
  EXPECT_EQ(false_negatives.load(), 0);
  EXPECT_FALSE(s.query());
}

TEST(SnziWithEngine, WriterTransactionSubscribesToRoot) {
  // A writer that queried the (empty) SNZI inside its transaction must
  // abort when a reader arrives before the commit — the strong-isolation
  // property the SpRWL SNZI variant needs.
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Snzi s;
  struct alignas(64) Cell {
    htm::Shared<std::uint64_t> v;
  };
  Cell data;
  sim::Simulator sim;
  htm::TxStatus status;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      status = engine.try_transaction([&] {
        data.v.store(1);
        if (s.query()) engine.abort_tx(2);
        platform::advance(10000);  // reader arrives in this window
      });
    } else {
      platform::advance(2000);
      s.arrive(tid);
    }
  });
  EXPECT_FALSE(status.committed());
  EXPECT_EQ(status.cause, htm::AbortCause::kConflict);
  EXPECT_EQ(data.v.raw_load(), 0u);
}

TEST(SnziWithEngine, ArriveDepartWorkInsideTransactions) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  ThreadIdScope tid(0);
  Snzi s;
  const htm::TxStatus st = engine.try_transaction([&] {
    s.arrive(0);
    EXPECT_TRUE(s.query());
  });
  EXPECT_TRUE(st.committed());
  EXPECT_TRUE(s.query());  // published at commit
  engine.try_transaction([&] { s.depart(0); });
  EXPECT_FALSE(s.query());
}

}  // namespace
}  // namespace sprwl::snzi
