#include "tpcc/tpcc_random.h"

#include <gtest/gtest.h>

#include <set>

namespace sprwl::tpcc {
namespace {

TEST(NuRandDist, StaysWithinBounds) {
  NuRand nu(123, 511, 4095);
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const auto c = nu.customer_id(rng, 3000);
    EXPECT_GE(c, 1u);
    EXPECT_LE(c, 3000u);
    const auto it = nu.item_id(rng, 100000);
    EXPECT_GE(it, 1u);
    EXPECT_LE(it, 100000u);
    EXPECT_LE(nu.last_name_code(rng, 999), 999u);
  }
}

TEST(NuRandDist, IsNonUniform) {
  // NURand concentrates mass: the most popular decile should receive far
  // more than 10% of draws.
  NuRand nu(7, 11, 13);
  Rng rng(2);
  std::array<int, 10> deciles{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto v = nu.customer_id(rng, 3000);
    ++deciles[(v - 1) * 10 / 3000];
  }
  int max_decile = 0;
  for (int d : deciles) max_decile = std::max(max_decile, d);
  EXPECT_GT(max_decile, n / 10 * 2);
}

TEST(LastName, BuildsFromSyllables) {
  EXPECT_EQ(last_name(0), "BARBARBAR");
  EXPECT_EQ(last_name(999), "EINGEINGEING");
  EXPECT_EQ(last_name(371), "PRICALLYOUGHT");
  EXPECT_EQ(last_name(123), "OUGHTABLEPRI");
}

TEST(RandomStrings, RespectLengthBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::string a = random_astring(rng, 14, 24);
    EXPECT_GE(a.size(), 14u);
    EXPECT_LE(a.size(), 24u);
    const std::string d = random_nstring(rng, 16, 16);
    EXPECT_EQ(d.size(), 16u);
    for (char ch : d) EXPECT_TRUE(ch >= '0' && ch <= '9');
  }
}

TEST(RandomStrings, FixedLengthWorks) {
  Rng rng(4);
  EXPECT_EQ(random_astring(rng, 24, 24).size(), 24u);
}

}  // namespace
}  // namespace sprwl::tpcc
