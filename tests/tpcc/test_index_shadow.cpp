#include "tpcc/index_shadow.h"

#include <gtest/gtest.h>

#include "common/platform.h"
#include "htm/engine.h"
#include "sim/simulator.h"

namespace sprwl::tpcc {
namespace {

TEST(IndexShadow, ProbeAddsTreeFootprintToTransactions) {
  // A transaction probing K distinct keys must track roughly root + inner
  // + K leaf lines — enough to trip small capacity limits, exactly the
  // effect the shadow exists to model.
  htm::EngineConfig cfg;
  cfg.capacity = htm::CapacityProfile{"tiny", 16, 16};
  htm::Engine engine(cfg);
  htm::EngineScope scope(engine);
  ThreadIdScope tid(0);
  IndexShadow idx(4096, 128);

  // Few probes fit (root + <=4 inner + <=4 leaf lines)...
  htm::TxStatus st = engine.try_transaction([&] {
    for (std::uint64_t k = 0; k < 4; ++k) idx.probe(k * 7919);
  });
  EXPECT_TRUE(st.committed());

  // ...many probes exceed the read capacity.
  st = engine.try_transaction([&] {
    for (std::uint64_t k = 0; k < 64; ++k) idx.probe(k * 7919);
  });
  EXPECT_FALSE(st.committed());
  EXPECT_EQ(st.cause, htm::AbortCause::kCapacity);
}

TEST(IndexShadow, UpdatesConflictOnSharedLeafLines) {
  // Two transactions updating keys that land on the same leaf line must
  // conflict (page-level contention of a real tree).
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  IndexShadow idx(16, 4);  // tiny: collisions guaranteed
  sim::Simulator sim;
  int committed = 0;
  sim.run(2, [&](int tid) {
    const htm::TxStatus st = engine.try_transaction([&] {
      idx.update(static_cast<std::uint64_t>(tid));
      platform::advance(5000);  // overlap
      idx.update(static_cast<std::uint64_t>(tid) + 100);
    });
    committed += st.committed();
  });
  // With 16 leaf cells on 2 lines, the four updates collide: at most one
  // transaction commits speculatively.
  EXPECT_LE(committed, 1);
}

TEST(IndexShadow, ProbesAreReadOnly) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  sim::Simulator sim;
  IndexShadow idx;
  int committed = 0;
  sim.run(4, [&](int) {
    const htm::TxStatus st = engine.try_transaction([&] {
      for (std::uint64_t k = 0; k < 20; ++k) idx.probe(k);
      platform::advance(2000);
    });
    committed += st.committed();
  });
  EXPECT_EQ(committed, 4);  // concurrent read-only probes never conflict
}

}  // namespace
}  // namespace sprwl::tpcc
