// TPC-C database: population conformance, single-threaded transaction
// semantics and the clause 3.3.2 consistency conditions.
#include "tpcc/tpcc.h"

#include <gtest/gtest.h>

#include "common/platform.h"
#include "common/rng.h"

namespace sprwl::tpcc {
namespace {

Scale tiny_scale() {
  Scale s;
  s.warehouses = 2;
  s.districts_per_warehouse = 4;
  s.customers_per_district = 60;
  s.items = 500;
  s.order_ring = 64;
  s.max_threads = 4;
  s.history_per_thread = 1024;
  return s;
}

class TpccDb : public ::testing::Test {
 protected:
  TpccDb() : db_(tiny_scale()), tid_(0) { db_.populate(); }
  Database db_;
  ThreadIdScope tid_;
  Rng rng_{42};
};

TEST_F(TpccDb, PopulationSatisfiesConsistencyConditions) {
  EXPECT_TRUE(db_.check_warehouse_ytd());
  EXPECT_TRUE(db_.check_next_order_id());
  EXPECT_TRUE(db_.check_new_order_queue());
  EXPECT_TRUE(db_.check_order_line_counts());
  EXPECT_EQ(db_.raw_total_balance_drift(), 0);
}

TEST_F(TpccDb, RejectsBadScale) {
  Scale s = tiny_scale();
  s.order_ring = 100;  // not a power of two
  EXPECT_THROW(Database{s}, std::invalid_argument);
  Scale s2 = tiny_scale();
  s2.warehouses = 0;
  EXPECT_THROW(Database{s2}, std::invalid_argument);
}

TEST_F(TpccDb, NewOrderAdvancesOrderIdAndChargesStock) {
  NewOrderInput in = db_.make_new_order_input(rng_, 1);
  in.rollback = false;
  const NewOrderResult r = db_.new_order(in);
  EXPECT_TRUE(r.committed);
  EXPECT_GT(r.total_cents, 0);
  EXPECT_EQ(r.o_id, static_cast<std::uint32_t>(tiny_scale().customers_per_district) + 1);
  EXPECT_TRUE(db_.check_next_order_id());
  EXPECT_TRUE(db_.check_new_order_queue());
  EXPECT_EQ(db_.raw_total_balance_drift(), 0);

  // A subsequent Order-Status for the same customer sees the new order.
  OrderStatusInput os{};
  os.w_id = in.w_id;
  os.d_id = in.d_id;
  os.by_last_name = false;
  os.c_id = in.c_id;
  const OrderStatusResult st = db_.order_status(os);
  EXPECT_EQ(st.o_id, r.o_id);
  EXPECT_EQ(st.carrier_id, 0u);  // not delivered yet
  EXPECT_EQ(st.lines, in.ol_cnt);
}

TEST_F(TpccDb, NewOrderRollbackLeavesNoTrace) {
  NewOrderInput in = db_.make_new_order_input(rng_, 1);
  in.rollback = true;
  const NewOrderResult r = db_.new_order(in);
  EXPECT_FALSE(r.committed);
  EXPECT_TRUE(db_.check_next_order_id());
  EXPECT_EQ(db_.raw_total_balance_drift(), 0);
}

TEST_F(TpccDb, PaymentMovesMoneyConsistently) {
  PaymentInput in = db_.make_payment_input(rng_, 2);
  in.by_last_name = false;
  const PaymentResult r = db_.payment(in);
  EXPECT_EQ(r.c_id, in.c_id);
  EXPECT_TRUE(db_.check_warehouse_ytd());
  EXPECT_EQ(db_.raw_total_balance_drift(), 0);
}

TEST_F(TpccDb, PaymentByLastNamePicksMedianCustomer) {
  // Run many by-name payments; every one must resolve to a valid customer
  // and keep the money invariants.
  for (int i = 0; i < 50; ++i) {
    PaymentInput in = db_.make_payment_input(rng_, 1);
    in.by_last_name = true;
    const PaymentResult r = db_.payment(in);
    EXPECT_GE(r.c_id, 1);
    EXPECT_LE(r.c_id, tiny_scale().customers_per_district);
  }
  EXPECT_TRUE(db_.check_warehouse_ytd());
  EXPECT_EQ(db_.raw_total_balance_drift(), 0);
}

TEST_F(TpccDb, DeliveryDrainsTheNewOrderQueue) {
  DeliveryInput in = db_.make_delivery_input(rng_, 1);
  const DeliveryResult r = db_.delivery(in);
  // Population leaves 30% of orders undelivered in every district.
  EXPECT_EQ(r.delivered, tiny_scale().districts_per_warehouse);
  EXPECT_TRUE(db_.check_new_order_queue());
  EXPECT_EQ(db_.raw_total_balance_drift(), 0);

  // Keep delivering until all queues drain.
  int guard = 0;
  while (db_.delivery(db_.make_delivery_input(rng_, 1)).delivered > 0) {
    ASSERT_LT(++guard, 1000);
  }
  EXPECT_TRUE(db_.check_new_order_queue());
  EXPECT_EQ(db_.raw_total_balance_drift(), 0);
}

TEST_F(TpccDb, DeliveryUpdatesCustomerBalance) {
  // Issue a fresh order, deliver it, and check the customer received the
  // order-line amounts.
  NewOrderInput in = db_.make_new_order_input(rng_, 1);
  in.rollback = false;
  in.d_id = 1;
  // Drain district 1's queue first so our order is next.
  while (true) {
    DeliveryInput din = db_.make_delivery_input(rng_, 1);
    if (db_.delivery(din).delivered == 0) break;
  }
  const NewOrderResult no = db_.new_order(in);
  ASSERT_TRUE(no.committed);
  OrderStatusInput os{};
  os.w_id = 1;
  os.d_id = in.d_id;
  os.c_id = in.c_id;
  const std::int64_t before = db_.order_status(os).balance_cents;
  DeliveryInput din = db_.make_delivery_input(rng_, 1);
  const DeliveryResult dr = db_.delivery(din);
  EXPECT_GE(dr.delivered, 1);
  const std::int64_t after = db_.order_status(os).balance_cents;
  EXPECT_GT(after, before);  // order-line amounts credited
  EXPECT_EQ(db_.raw_total_balance_drift(), 0);
}

TEST_F(TpccDb, StockLevelScansTheLastTwentyOrders) {
  StockLevelInput in = db_.make_stock_level_input(rng_, 1);
  const StockLevelResult r = db_.stock_level(in);
  EXPECT_GT(r.scanned_lines, 20 * 5 / 2);  // ~20 orders * >=5 lines
  EXPECT_GE(r.low_stock, 0);
  EXPECT_LE(r.low_stock, r.scanned_lines);
}

TEST_F(TpccDb, StockLevelThresholdIsMonotonic) {
  StockLevelInput lo = db_.make_stock_level_input(rng_, 1);
  lo.d_id = 1;
  StockLevelInput hi = lo;
  lo.threshold = 10;
  hi.threshold = 200;  // everything is below 200
  EXPECT_LE(db_.stock_level(lo).low_stock, db_.stock_level(hi).low_stock);
}

TEST_F(TpccDb, MixedSingleThreadedRunKeepsAllInvariants) {
  for (int i = 0; i < 400; ++i) {
    const double u = rng_.next_double();
    const int w = 1 + static_cast<int>(rng_.next_below(2));
    if (u < 0.31) {
      db_.stock_level(db_.make_stock_level_input(rng_, w));
    } else if (u < 0.35) {
      db_.order_status(db_.make_order_status_input(rng_, w));
    } else if (u < 0.39) {
      db_.delivery(db_.make_delivery_input(rng_, w));
    } else if (u < 0.82) {
      db_.payment(db_.make_payment_input(rng_, w));
    } else {
      db_.new_order(db_.make_new_order_input(rng_, w));
    }
  }
  EXPECT_TRUE(db_.check_warehouse_ytd());
  EXPECT_TRUE(db_.check_next_order_id());
  EXPECT_TRUE(db_.check_new_order_queue());
  EXPECT_TRUE(db_.check_order_line_counts());
}

TEST_F(TpccDb, InputGeneratorsRespectBounds) {
  for (int i = 0; i < 2000; ++i) {
    const NewOrderInput no = db_.make_new_order_input(rng_, 1);
    EXPECT_EQ(no.w_id, 1);
    EXPECT_GE(no.d_id, 1);
    EXPECT_LE(no.d_id, 4);
    EXPECT_GE(no.c_id, 1);
    EXPECT_LE(no.c_id, 60);
    EXPECT_GE(no.ol_cnt, 5);
    EXPECT_LE(no.ol_cnt, kMaxOrderLines);
    for (int l = 0; l < no.ol_cnt; ++l) {
      EXPECT_GE(no.lines[static_cast<std::size_t>(l)].i_id, 1);
      EXPECT_LE(no.lines[static_cast<std::size_t>(l)].i_id, 500);
      EXPECT_GE(no.lines[static_cast<std::size_t>(l)].supply_w_id, 1);
      EXPECT_LE(no.lines[static_cast<std::size_t>(l)].supply_w_id, 2);
    }
    const PaymentInput p = db_.make_payment_input(rng_, 2);
    EXPECT_GE(p.amount_cents, 100);
    EXPECT_LE(p.amount_cents, 500000);
  }
}

}  // namespace
}  // namespace sprwl::tpcc
