// TPC-C under concurrency: the full driver running against every lock
// family, with the clause 3.3.2 consistency conditions checked at
// quiescence. This is the integration test behind the Fig. 7 bench.
#include "tpcc/tpcc_driver.h"

#include <gtest/gtest.h>

#include "core/sprwl.h"
#include "locks/brlock.h"
#include "locks/posix_rwlock.h"
#include "locks/rwle.h"
#include "locks/tle.h"

namespace sprwl::tpcc {
namespace {

Scale test_scale(int threads) {
  Scale s;
  s.warehouses = threads;
  s.districts_per_warehouse = 4;
  s.customers_per_district = 60;
  s.items = 1000;
  // Large ring: the balance-drift invariant needs no delivered order to be
  // overwritten during the run.
  s.order_ring = 512;
  s.max_threads = threads;
  s.history_per_thread = 4096;
  return s;
}

TpccDriverConfig driver_config(int threads) {
  TpccDriverConfig cfg;
  cfg.threads = threads;
  cfg.warmup_cycles = 200'000;
  cfg.measure_cycles = 3'000'000;
  cfg.seed = 77;
  return cfg;
}

template <class Lock>
void run_and_check(Lock& lock, int threads) {
  htm::EngineConfig ecfg;
  ecfg.capacity = htm::kBroadwell;
  ecfg.max_threads = threads;
  htm::Engine engine(ecfg);
  Database db(test_scale(threads));
  db.populate();
  sim::Simulator sim;
  const TpccRunResult r = run_tpcc(sim, engine, lock, db, driver_config(threads));

  EXPECT_GT(r.committed(), 100u);
  EXPECT_GT(r.payments, r.deliveries);  // mix sanity: 43% vs 4%
  EXPECT_GT(r.stock_levels, r.order_statuses);
  EXPECT_TRUE(db.check_warehouse_ytd());
  EXPECT_TRUE(db.check_next_order_id());
  EXPECT_TRUE(db.check_new_order_queue());
  EXPECT_TRUE(db.check_order_line_counts());
  EXPECT_EQ(db.raw_total_balance_drift(), 0);
}

TEST(TpccConcurrency, UnderSpRWL) {
  core::SpRWLock lock{core::Config::variant(core::SchedulingVariant::kFull, 4)};
  run_and_check(lock, 4);
}

TEST(TpccConcurrency, UnderSpRWLWithSnzi) {
  core::Config cfg = core::Config::variant(core::SchedulingVariant::kFull, 4);
  cfg.use_snzi = true;
  core::SpRWLock lock{cfg};
  run_and_check(lock, 4);
}

TEST(TpccConcurrency, UnderTLE) {
  locks::TLELock::Config cfg;
  cfg.max_threads = 4;
  locks::TLELock lock{cfg};
  run_and_check(lock, 4);
}

TEST(TpccConcurrency, UnderRWLE) {
  locks::RWLELock::Config cfg;
  cfg.max_threads = 4;
  locks::RWLELock lock{cfg};
  run_and_check(lock, 4);
}

TEST(TpccConcurrency, UnderPosixRWLock) {
  locks::PosixRWLock lock{4};
  run_and_check(lock, 4);
}

TEST(TpccConcurrency, UnderBRLock) {
  locks::BRLock lock{4};
  run_and_check(lock, 4);
}

TEST(TpccConcurrency, SpRWLCommitsUpdatesInHardware) {
  // The headline behaviour behind Fig. 7: a large share of update
  // transactions commits in HTM while long readers stay uninstrumented.
  const int threads = 4;
  core::SpRWLock lock{core::Config::variant(core::SchedulingVariant::kFull, threads)};
  htm::EngineConfig ecfg;
  ecfg.capacity = htm::kBroadwell;
  htm::Engine engine(ecfg);
  Database db(test_scale(threads));
  db.populate();
  sim::Simulator sim;
  const TpccRunResult r = run_tpcc(sim, engine, lock, db, driver_config(threads));
  const auto& w = r.lock_stats.writes;
  EXPECT_GT(w.htm, w.gl);  // most updates elided
  EXPECT_GT(r.lock_stats.reads.unins + r.lock_stats.reads.htm, 0u);
  EXPECT_EQ(r.lock_stats.reads.gl, 0u);  // readers never serialize
}

TEST(TpccConcurrency, ReadersObserveConsistentMoney) {
  // Readers repeatedly snapshot W_YTD vs sum(D_YTD) of one warehouse while
  // payments hammer it; under SpRWL they must always agree... observed
  // through the read critical section (C1 as a *live* invariant).
  const int threads = 4;
  Scale s = test_scale(threads);
  Database db(s);
  db.populate();
  htm::EngineConfig ecfg;
  ecfg.max_threads = threads;
  htm::Engine engine(ecfg);
  core::SpRWLock lock{core::Config::variant(core::SchedulingVariant::kFull, threads)};
  std::uint64_t violations = 0;
  sim::Simulator sim;
  sim.run(threads, [&](int tid) {
    htm::EngineScope scope(engine);
    Rng rng(static_cast<std::uint64_t>(tid) + 5);
    for (int i = 0; i < 150; ++i) {
      if (tid == 0) {
        // Reader: C1 snapshot through the public transactions is not
        // directly exposed; use payment+order_status pairs instead —
        // balance must move by exactly the paid amount.
        PaymentInput pin = db.make_payment_input(rng, 1);
        pin.by_last_name = false;
        pin.c_w_id = pin.w_id = 1;
        pin.c_d_id = pin.d_id = 1;
        OrderStatusInput os{};
        os.w_id = 1;
        os.d_id = 1;
        os.c_id = pin.c_id;
        std::int64_t before = 0, after = 0;
        lock.read(kCsOrderStatus, [&] { before = db.order_status(os).balance_cents; });
        std::int64_t paid = 0;
        lock.write(kCsPayment, [&] { paid = db.payment(pin).balance_cents; });
        lock.read(kCsOrderStatus, [&] { after = db.order_status(os).balance_cents; });
        if (after > before) ++violations;  // balance can only fall (no delivery here)
      } else {
        // Writers: payments to other districts of warehouse 1.
        PaymentInput pin = db.make_payment_input(rng, 1);
        pin.by_last_name = false;
        pin.c_w_id = pin.w_id = 1;
        pin.c_d_id = pin.d_id = 2 + (tid - 1) % 3;
        lock.write(kCsPayment, [&] { db.payment(pin); });
      }
      platform::advance(rng.next_below(200));
    }
  });
  EXPECT_EQ(violations, 0u);
  EXPECT_TRUE(db.check_warehouse_ytd());
}

}  // namespace
}  // namespace sprwl::tpcc
