// Clause-level details of the TPC-C transactions that the coarse
// integration tests do not pin down.
#include <gtest/gtest.h>

#include "common/platform.h"
#include "common/rng.h"
#include "tpcc/tpcc.h"

namespace sprwl::tpcc {
namespace {

Scale tiny_scale() {
  Scale s;
  s.warehouses = 2;
  s.districts_per_warehouse = 2;
  s.customers_per_district = 40;
  s.items = 200;
  s.order_ring = 64;
  s.max_threads = 2;
  s.history_per_thread = 512;
  return s;
}

class TpccDetails : public ::testing::Test {
 protected:
  TpccDetails() : db_(tiny_scale()), tid_(0) { db_.populate(); }
  Database db_;
  ThreadIdScope tid_;
  Rng rng_{17};
};

TEST_F(TpccDetails, StockReorderRuleWrapsBelowThreshold) {
  // Clause 2.4.2.2: s_quantity' = s_quantity - qty if that leaves >= 10,
  // else s_quantity - qty + 91. Drive one stock item down repeatedly and
  // check it never goes below zero (unsigned wrap would explode).
  for (int round = 0; round < 60; ++round) {
    NewOrderInput in = db_.make_new_order_input(rng_, 1);
    in.rollback = false;
    in.ol_cnt = 5;
    for (int l = 0; l < in.ol_cnt; ++l) {
      in.lines[static_cast<std::size_t>(l)].i_id = 7;  // same item
      in.lines[static_cast<std::size_t>(l)].supply_w_id = 1;
      in.lines[static_cast<std::size_t>(l)].quantity = 10;
    }
    const NewOrderResult r = db_.new_order(in);
    EXPECT_TRUE(r.committed);
  }
  // Quantity stayed in a sane band (reorder keeps it positive, < 200).
  StockLevelInput sl{};
  sl.w_id = 1;
  sl.d_id = 1;
  sl.threshold = 200;
  const StockLevelResult res = db_.stock_level(sl);
  EXPECT_GE(res.low_stock, 0);
}

TEST_F(TpccDetails, NewOrderTotalIncludesDiscountAndTaxes) {
  NewOrderInput in = db_.make_new_order_input(rng_, 1);
  in.rollback = false;
  in.ol_cnt = 5;
  for (int l = 0; l < in.ol_cnt; ++l) {
    auto& line = in.lines[static_cast<std::size_t>(l)];
    line.i_id = l + 1;
    line.supply_w_id = 1;
    line.quantity = 2;
  }
  const NewOrderResult r = db_.new_order(in);
  ASSERT_TRUE(r.committed);
  EXPECT_GT(r.total_cents, 0);
  // 5 items, quantity 2, prices in [1,100] dollars, discount <= 50%,
  // taxes <= 2 x 20%: bound the total sanity-wise.
  EXPECT_LE(r.total_cents, 5 * 2 * 10000 * 2);
}

TEST_F(TpccDetails, BadCreditPaymentRewritesCustomerData) {
  // Clause 2.5.2.2: a payment by a bad-credit customer prepends the
  // payment record to C_DATA (truncated to the column); good-credit
  // customers' data stays untouched.
  int bad = -1, good = -1;
  for (int c = 1; c <= tiny_scale().customers_per_district; ++c) {
    if (!db_.raw_customer_good_credit(1, 1, c) && bad < 0) bad = c;
    if (db_.raw_customer_good_credit(1, 1, c) && good < 0) good = c;
  }
  ASSERT_GT(bad, 0) << "population must create ~10% bad-credit customers";
  ASSERT_GT(good, 0);

  const std::string before_bad = db_.raw_customer_data(1, 1, bad);
  const std::string before_good = db_.raw_customer_data(1, 1, good);
  for (const int c : {bad, good}) {
    PaymentInput in{};
    in.w_id = in.c_w_id = 1;
    in.d_id = in.c_d_id = 1;
    in.by_last_name = false;
    in.c_id = c;
    in.amount_cents = 123456;
    db_.payment(in);
  }
  const std::string after_bad = db_.raw_customer_data(1, 1, bad);
  EXPECT_NE(after_bad, before_bad);
  EXPECT_NE(after_bad.find("123456"), std::string::npos);  // amount recorded
  EXPECT_EQ(after_bad.rfind(std::to_string(bad) + " ", 0), 0u);  // prefixed
  EXPECT_LE(after_bad.size(), 240u);  // truncated to the column size
  EXPECT_EQ(db_.raw_customer_data(1, 1, good), before_good);
  EXPECT_TRUE(db_.check_warehouse_ytd());
  EXPECT_EQ(db_.raw_total_balance_drift(), 0);
}

TEST_F(TpccDetails, RemotePaymentChargesHomeDistrict) {
  // A remote payment (customer lives in warehouse 2) must add to warehouse
  // 1's YTD — the C1 consistency base. Drift stays zero either way.
  PaymentInput in{};
  in.w_id = 1;
  in.d_id = 1;
  in.c_w_id = 2;
  in.c_d_id = 2;
  in.by_last_name = false;
  in.c_id = 3;
  in.amount_cents = 777;
  const PaymentResult r = db_.payment(in);
  EXPECT_EQ(r.c_id, 3);
  EXPECT_TRUE(db_.check_warehouse_ytd());
  EXPECT_EQ(db_.raw_total_balance_drift(), 0);
}

TEST_F(TpccDetails, DeliveryIsFifoPerDistrict) {
  // The oldest undelivered order of each district goes first.
  // District 1's queue head after population is its oldest undelivered id.
  DeliveryInput in = db_.make_delivery_input(rng_, 1);
  const DeliveryResult first = db_.delivery(in);
  ASSERT_GT(first.delivered, 0);
  // Deliver everything; ids must come out in increasing order per district
  // (verified indirectly: queue consistency holds after each call).
  int guard = 0;
  while (db_.delivery(db_.make_delivery_input(rng_, 1)).delivered > 0) {
    ASSERT_TRUE(db_.check_new_order_queue());
    ASSERT_LT(++guard, 200);
  }
}

TEST_F(TpccDetails, StockLevelCountsDistinctItemsOnly) {
  // Seed a district with orders that repeat one item heavily: low_stock
  // must count the item at most once.
  NewOrderInput in = db_.make_new_order_input(rng_, 2);
  in.rollback = false;
  in.d_id = 1;
  in.ol_cnt = 10;
  for (int l = 0; l < in.ol_cnt; ++l) {
    auto& line = in.lines[static_cast<std::size_t>(l)];
    line.i_id = 42;
    line.supply_w_id = 2;
    line.quantity = 10;
  }
  for (int i = 0; i < 20; ++i) db_.new_order(in);  // 20 orders, same item
  StockLevelInput sl{};
  sl.w_id = 2;
  sl.d_id = 1;
  sl.threshold = 10000;  // everything counts as low
  const StockLevelResult r = db_.stock_level(sl);
  // 20 orders x 10 lines scanned, but distinct items bound the count.
  EXPECT_GT(r.scanned_lines, 100);
  EXPECT_LT(r.low_stock, r.scanned_lines / 2);
}

TEST_F(TpccDetails, OrderStatusReflectsDeliveryCarrier) {
  NewOrderInput in = db_.make_new_order_input(rng_, 1);
  in.rollback = false;
  in.d_id = 1;
  const NewOrderResult no = db_.new_order(in);
  ASSERT_TRUE(no.committed);
  // Drain older orders so ours is delivered next in district 1.
  OrderStatusInput os{};
  os.w_id = 1;
  os.d_id = 1;
  os.c_id = in.c_id;
  int guard = 0;
  for (;;) {
    const OrderStatusResult st = db_.order_status(os);
    ASSERT_EQ(st.o_id, no.o_id);
    if (st.carrier_id != 0) break;  // delivered: carrier assigned
    DeliveryInput din = db_.make_delivery_input(rng_, 1);
    ASSERT_GT(db_.delivery(din).delivered, 0);
    ASSERT_LT(++guard, 100);
  }
}

}  // namespace
}  // namespace sprwl::tpcc
