// Property tests for opacity: under randomized concurrent transactions and
// strong-isolation stores, no transaction — committed OR live — ever
// observes an inconsistent snapshot. This is the property that lets the
// emulator run real data-structure code inside transactions without
// crashing, exactly like hardware transactions.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/platform.h"
#include "common/rng.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "sim/simulator.h"

namespace sprwl::htm {
namespace {

struct alignas(64) Slot {
  Shared<std::int64_t> v;
};

// Parameters: (threads, cells, spurious_abort_rate, table_bits)
using Params = std::tuple<int, int, double, int>;

class OpacityProperty : public ::testing::TestWithParam<Params> {};

TEST_P(OpacityProperty, InvariantNeverObservedBroken) {
  const auto [threads, ncells, spurious, table_bits] = GetParam();
  EngineConfig cfg;
  cfg.spurious_abort_rate = spurious;
  cfg.table_bits = table_bits;
  cfg.capacity = kUnbounded;
  Engine engine(cfg);
  EngineScope scope(engine);

  // Invariant: sum over all cells == 0. Every writer moves value between
  // two random cells atomically; every reader sums everything.
  std::vector<Slot> cells(static_cast<std::size_t>(ncells));
  sim::Simulator sim;
  std::int64_t violations = 0;
  std::int64_t committed_writes = 0;

  sim.run(threads, [&](int tid) {
    Rng rng(static_cast<std::uint64_t>(tid) * 7919 + 13);
    for (int op = 0; op < 300; ++op) {
      if (rng.next_bool(0.5)) {
        const auto i = static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(ncells)));
        auto j = static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(ncells)));
        if (j == i) j = (j + 1) % static_cast<std::size_t>(ncells);
        const auto amount = static_cast<std::int64_t>(rng.next_below(100));
        const TxStatus st = engine.try_transaction([&] {
          const std::int64_t a = cells[i].v.load();
          platform::advance(rng.next_below(500));
          const std::int64_t b = cells[j].v.load();
          cells[i].v.store(a - amount);
          cells[j].v.store(b + amount);
        });
        committed_writes += st.committed();
      } else {
        std::int64_t sum = 0;
        bool complete = false;
        const TxStatus st = engine.try_transaction([&] {
          sum = 0;
          for (auto& c : cells) {
            sum += c.v.load();
            if (rng.next_bool(0.1)) platform::advance(rng.next_below(200));
          }
          complete = true;
        });
        // Opacity: even while running, every snapshot read so far was
        // consistent; if the body ran to completion the sum must be 0
        // regardless of whether the commit later succeeded.
        if (complete && sum != 0) ++violations;
        (void)st;
      }
      platform::advance(rng.next_below(100));
    }
  });

  EXPECT_EQ(violations, 0);
  EXPECT_GT(committed_writes, 0);
  // Quiescent check: the invariant holds on raw memory.
  std::int64_t final_sum = 0;
  for (auto& c : cells) final_sum += c.v.raw_load();
  EXPECT_EQ(final_sum, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OpacityProperty,
    ::testing::Values(Params{2, 4, 0.0, 20}, Params{4, 8, 0.0, 20},
                      Params{8, 16, 0.0, 20}, Params{4, 8, 0.001, 20},
                      Params{8, 8, 0.0005, 20}, Params{4, 8, 0.0, 8},
                      Params{8, 16, 0.0, 6}, Params{16, 32, 0.0, 20},
                      Params{16, 8, 0.0002, 10}));

// The same property must hold under real preemptive threads (slow host:
// keep it small). This exercises the lock-bit publish protocol for real.
TEST(OpacityRealThreads, InvariantHolds) {
  EngineConfig cfg;
  cfg.capacity = kUnbounded;
  Engine engine(cfg);
  EngineScope scope(engine);
  std::vector<Slot> cells(8);
  std::atomic<std::int64_t> violations{0};
  sim::run_real_threads(4, [&](int tid) {
    Rng rng(static_cast<std::uint64_t>(tid) + 1);
    for (int op = 0; op < 4000; ++op) {
      if (rng.next_bool(0.5)) {
        const auto i = static_cast<std::size_t>(rng.next_below(8));
        const auto j = (i + 1 + static_cast<std::size_t>(rng.next_below(7))) % 8;
        const auto amount = static_cast<std::int64_t>(rng.next_below(10));
        engine.try_transaction([&] {
          const std::int64_t a = cells[i].v.load();
          const std::int64_t b = cells[j].v.load();
          cells[i].v.store(a - amount);
          cells[j].v.store(b + amount);
        });
      } else {
        std::int64_t sum = 0;
        bool complete = false;
        engine.try_transaction([&] {
          sum = 0;
          for (auto& c : cells) sum += c.v.load();
          complete = true;
        });
        if (complete && sum != 0) violations.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(violations.load(), 0);
  std::int64_t final_sum = 0;
  for (auto& c : cells) final_sum += c.v.raw_load();
  EXPECT_EQ(final_sum, 0);
}

}  // namespace
}  // namespace sprwl::htm
