// Serializability checker: record every committed transaction's effect
// under a concurrent run, then replay the commits sequentially (in their
// commit order) against a reference state — the final memories must agree.
// This is the strongest correctness property the HTM emulator claims
// (committed histories are serializable in commit order), checked across
// capacity/table parameterizations.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/platform.h"
#include "common/rng.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "sim/simulator.h"

namespace sprwl::htm {
namespace {

struct alignas(64) Slot {
  Shared<std::uint64_t> v;
};

// One committed operation: cells[dst] = f(cells[src]) + amount, recorded
// with a global commit sequence so the replay can use commit order.
struct CommittedOp {
  std::uint64_t seq;
  std::size_t src;
  std::size_t dst;
  std::uint64_t amount;
};

using Params = std::tuple<int /*threads*/, int /*cells*/, int /*table_bits*/>;
class Serializability : public ::testing::TestWithParam<Params> {};

TEST_P(Serializability, CommittedHistoryReplaysSequentially) {
  const auto [threads, ncells, table_bits] = GetParam();
  EngineConfig cfg;
  cfg.capacity = kUnbounded;
  cfg.table_bits = table_bits;
  Engine engine(cfg);
  EngineScope scope(engine);

  std::vector<Slot> cells(static_cast<std::size_t>(ncells));
  // Commit-order stamp: incremented transactionally inside each writer, so
  // its final value inside a COMMITTED transaction is unique and ordered
  // consistently with the serialization order of the cells themselves.
  Slot commit_seq;
  std::vector<std::vector<CommittedOp>> logs(static_cast<std::size_t>(threads));

  sim::Simulator sim;
  sim.run(threads, [&](int tid) {
    Rng rng(static_cast<std::uint64_t>(tid) * 101 + 7);
    for (int op = 0; op < 250; ++op) {
      const auto src =
          static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(ncells)));
      const auto dst =
          static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(ncells)));
      const std::uint64_t amount = rng.next_below(1000);
      std::uint64_t seq = 0;
      const TxStatus st = engine.try_transaction([&] {
        const std::uint64_t s = cells[src].v.load();
        platform::advance(rng.next_below(400));
        cells[dst].v.store(s * 3 + amount);
        seq = commit_seq.v.load() + 1;
        commit_seq.v.store(seq);
      });
      if (st.committed()) {
        logs[static_cast<std::size_t>(tid)].push_back(
            CommittedOp{seq, src, dst, amount});
      }
      platform::advance(rng.next_below(200));
    }
  });

  // Merge logs by commit sequence; sequences must be unique and dense-ish.
  std::vector<CommittedOp> history;
  for (const auto& log : logs) history.insert(history.end(), log.begin(), log.end());
  std::sort(history.begin(), history.end(),
            [](const CommittedOp& a, const CommittedOp& b) { return a.seq < b.seq; });
  for (std::size_t i = 1; i < history.size(); ++i) {
    ASSERT_NE(history[i].seq, history[i - 1].seq) << "duplicate commit stamp";
  }
  ASSERT_FALSE(history.empty());
  EXPECT_EQ(history.back().seq, history.size());  // dense: every commit logged

  // Sequential replay in commit order must reproduce the final memory.
  std::vector<std::uint64_t> ref(static_cast<std::size_t>(ncells), 0);
  for (const CommittedOp& op : history) {
    ref[op.dst] = ref[op.src] * 3 + op.amount;
  }
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(cells[i].v.raw_load(), ref[i]) << "cell " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Serializability,
                         ::testing::Values(Params{2, 4, 20}, Params{4, 8, 20},
                                           Params{8, 16, 20}, Params{8, 4, 20},
                                           Params{4, 8, 8}, Params{16, 16, 10}));

}  // namespace
}  // namespace sprwl::htm
