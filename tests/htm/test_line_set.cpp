#include "htm/line_set.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.h"

namespace sprwl::htm {
namespace {

TEST(EpochMap, InsertAndFind) {
  EpochMap<std::uint32_t> m;
  bool inserted = false;
  m.get_or_insert(7, 100, inserted);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(m.size(), 1u);
  const std::uint32_t* v = m.find(7);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 100u);
  EXPECT_EQ(m.find(8), nullptr);
}

TEST(EpochMap, SecondInsertReturnsExisting) {
  EpochMap<std::uint32_t> m;
  bool inserted = false;
  m.get_or_insert(7, 100, inserted);
  std::uint32_t& v = m.get_or_insert(7, 999, inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(v, 100u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(EpochMap, ZeroKeyIsValid) {
  EpochMap<std::uint32_t> m;
  bool inserted = false;
  m.get_or_insert(0, 5, inserted);
  EXPECT_TRUE(inserted);
  const std::uint32_t* v = m.find(0);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 5u);
}

TEST(EpochMap, ClearIsConstantTimeEviction) {
  EpochMap<std::uint32_t> m;
  bool inserted = false;
  for (std::uint32_t k = 0; k < 100; ++k) m.get_or_insert(k, k, inserted);
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  for (std::uint32_t k = 0; k < 100; ++k) EXPECT_EQ(m.find(k), nullptr);
  m.get_or_insert(3, 33, inserted);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(m.size(), 1u);
}

TEST(EpochMap, GrowsBeyondInitialCapacity) {
  EpochMap<std::uint32_t> m(16);
  bool inserted = false;
  for (std::uint32_t k = 0; k < 10000; ++k) {
    m.get_or_insert(k, k * 2, inserted);
    EXPECT_TRUE(inserted);
  }
  EXPECT_EQ(m.size(), 10000u);
  for (std::uint32_t k = 0; k < 10000; ++k) {
    const std::uint32_t* v = m.find(k);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, k * 2);
  }
}

TEST(EpochMap, PointerKeys) {
  EpochMap<std::uint64_t> m;
  bool inserted = false;
  int a = 0, b = 0;
  m.get_or_insert(reinterpret_cast<std::uint64_t>(&a), 1, inserted);
  m.get_or_insert(reinterpret_cast<std::uint64_t>(&b), 2, inserted);
  EXPECT_EQ(*m.find(reinterpret_cast<std::uint64_t>(&a)), 1u);
  EXPECT_EQ(*m.find(reinterpret_cast<std::uint64_t>(&b)), 2u);
}

TEST(EpochMap, MatchesReferenceMapUnderRandomOps) {
  EpochMap<std::uint32_t> m;
  std::unordered_map<std::uint32_t, std::uint32_t> ref;
  Rng rng(99);
  for (int epoch = 0; epoch < 20; ++epoch) {
    for (int i = 0; i < 500; ++i) {
      const auto key = static_cast<std::uint32_t>(rng.next_below(300));
      const auto val = static_cast<std::uint32_t>(rng.next());
      bool inserted = false;
      std::uint32_t& slot = m.get_or_insert(key, val, inserted);
      auto [it, ref_inserted] = ref.try_emplace(key, val);
      EXPECT_EQ(inserted, ref_inserted);
      EXPECT_EQ(slot, it->second);
    }
    EXPECT_EQ(m.size(), ref.size());
    for (const auto& [k, v] : ref) {
      const std::uint32_t* found = m.find(k);
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(*found, v);
    }
    m.clear();
    ref.clear();
  }
}

}  // namespace
}  // namespace sprwl::htm
