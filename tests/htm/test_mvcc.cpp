// MVCC version retention (EngineConfig::retain_versions): the bounded
// per-line version ring, snapshot pin/lookup semantics, pin-gated
// reclamation, overflow accounting, and the TSan real-thread stress leg
// over the seqlock-protected ring (the MvccRealThread suite CI runs under
// -fsanitize=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/platform.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "sim/simulator.h"

namespace sprwl::htm {
namespace {

EngineConfig mvcc_cfg(std::uint32_t retain) {
  EngineConfig cfg;
  cfg.retain_versions = retain;
  cfg.table_bits = 10;
  return cfg;
}

class Mvcc : public ::testing::Test {
 protected:
  Mvcc() : engine_(mvcc_cfg(4)), scope_(engine_), tid_(0) {}

  Engine engine_;
  EngineScope scope_;
  ThreadIdScope tid_;
};

TEST_F(Mvcc, SnapshotPinToggles) {
  EXPECT_TRUE(engine_.retains_versions());
  EXPECT_FALSE(engine_.in_snapshot());
  EXPECT_EQ(engine_.snapshot_version(), Engine::kNoSnapshot);
  const std::uint64_t pin = engine_.snapshot_begin();
  EXPECT_TRUE(engine_.in_snapshot());
  EXPECT_EQ(engine_.snapshot_version(), pin);
  engine_.snapshot_end();
  EXPECT_FALSE(engine_.in_snapshot());
}

TEST_F(Mvcc, BeginWithoutRetentionThrows) {
  Engine plain{EngineConfig{}};
  EngineScope scope(plain);
  EXPECT_FALSE(plain.retains_versions());
  EXPECT_THROW(plain.snapshot_begin(), std::logic_error);
  // And the Shared<T> fast path never consults the snapshot machinery.
  EXPECT_FALSE(plain.in_snapshot());
}

TEST_F(Mvcc, UnchangedLineServesMemoryFastPath) {
  Shared<std::uint64_t> x(7);
  x.store(10);  // publish so the line has a real version
  engine_.snapshot_begin();
  EXPECT_EQ(x.load(), 10u);  // line version <= pin: memory, re-validated
  engine_.snapshot_end();
}

TEST_F(Mvcc, PinnedReadIgnoresLaterNontxPublish) {
  Shared<std::uint64_t> x(0);
  x.store(10);
  engine_.snapshot_begin();
  x.store(20);               // newer than the pin; appends (10) to the ring
  EXPECT_EQ(x.load(), 10u);  // the snapshot still sees 10
  engine_.snapshot_end();
  EXPECT_EQ(x.load(), 20u);
  const EngineStats s = engine_.stats();
  EXPECT_GE(s.snapshot_hits, 1u);
  EXPECT_EQ(s.snapshot_misses, 0u);
}

TEST_F(Mvcc, PinnedReadIgnoresLaterCommits) {
  Shared<std::uint64_t> x(0);
  ASSERT_TRUE(engine_.try_transaction([&] { x.store(10); }).committed());
  engine_.snapshot_begin();
  x.store(20);  // commit-path append sits under the nontx one in the ring
  EXPECT_EQ(x.load(), 10u);
  engine_.snapshot_end();
}

TEST_F(Mvcc, OldestRetainedVersionWinsTheScan) {
  Shared<std::uint64_t> x(0);
  x.store(10);
  engine_.snapshot_begin();
  x.store(20);
  x.store(30);
  x.store(40);
  // Three entries newer than the pin retained (K=4): the lookup must serve
  // the OLDEST one newer than the pin — the value at pin time — not the
  // most recent.
  EXPECT_EQ(x.load(), 10u);
  engine_.snapshot_end();
}

TEST_F(Mvcc, TwoWordsOnOneLineResolveByAddress) {
  struct alignas(64) Pair {
    Shared<std::uint64_t> a;
    Shared<std::uint64_t> b;
  } p;
  p.a.store(1);
  p.b.store(2);
  engine_.snapshot_begin();
  p.a.store(11);
  p.b.store(22);
  EXPECT_EQ(p.a.load(), 1u);
  EXPECT_EQ(p.b.load(), 2u);
  engine_.snapshot_end();
  EXPECT_EQ(p.a.load(), 11u);
  EXPECT_EQ(p.b.load(), 22u);
}

TEST_F(Mvcc, LivePinOverflowsInsteadOfReclaiming) {
  Engine small(mvcc_cfg(2));
  EngineScope scope(small);
  Shared<std::uint64_t> x(0);
  x.store(10);
  small.snapshot_begin();
  x.store(20);
  x.store(30);
  // Ring of 2 is full with entries the pin still protects; the next append
  // must refuse to evict (overflow), raising the line's floor past the pin.
  x.store(40);
  EXPECT_GE(small.stats().version_overflows, 1u);
  // The floor passed the pin: history on this line is no longer complete
  // for it, so the lookup reports a miss rather than a wrong value.
  EXPECT_THROW((void)x.load(), SnapshotMiss);
  EXPECT_GE(small.stats().snapshot_misses, 1u);
  small.snapshot_end();
  EXPECT_EQ(x.load(), 40u);
}

TEST_F(Mvcc, NoLivePinReclaimsWithoutOverflow) {
  Engine small(mvcc_cfg(2));
  EngineScope scope(small);
  Shared<std::uint64_t> x(0);
  x.store(10);
  x.store(20);
  x.store(30);
  x.store(40);  // ring wraps twice; nothing pinned, so eviction is free
  EXPECT_EQ(small.stats().version_overflows, 0u);
  small.snapshot_begin();
  x.store(50);
  EXPECT_EQ(x.load(), 40u);  // fresh pin still sees its own snapshot
  small.snapshot_end();
}

TEST_F(Mvcc, SnapshotEndReleasesTheReclamationPin) {
  Engine small(mvcc_cfg(2));
  EngineScope scope(small);
  Shared<std::uint64_t> x(0);
  x.store(10);
  small.snapshot_begin();
  small.snapshot_end();
  x.store(20);
  x.store(30);
  x.store(40);  // would overflow if the pin had leaked
  EXPECT_EQ(small.stats().version_overflows, 0u);
}

TEST_F(Mvcc, StatsMergeAndReset) {
  Shared<std::uint64_t> x(0);
  x.store(10);
  engine_.snapshot_begin();
  x.store(20);
  (void)x.load();
  engine_.snapshot_end();
  EXPECT_GE(engine_.stats().snapshot_hits, 1u);
  engine_.reset_stats();
  const EngineStats s = engine_.stats();
  EXPECT_EQ(s.snapshot_hits, 0u);
  EXPECT_EQ(s.snapshot_misses, 0u);
  EXPECT_EQ(s.version_overflows, 0u);
  EXPECT_EQ(s.ring_occupancy_max, 0u);
}

// The ring high-water mark (EngineStats::ring_occupancy_max): the signal
// an adaptive ring-depth policy keys off. It tracks the max number of live
// retained entries on any line — clamped at retain_versions, growing
// monotonically, and zero while MVCC never appended.
TEST_F(Mvcc, RingOccupancyHighWaterTracksAppends) {
  EXPECT_EQ(engine_.stats().ring_occupancy_max, 0u) << "no appends yet";
  Shared<std::uint64_t> x(0);
  x.store(10);  // each publish appends the overwritten value to the ring
  EXPECT_EQ(engine_.stats().ring_occupancy_max, 1u);
  x.store(20);
  EXPECT_EQ(engine_.stats().ring_occupancy_max, 2u);
  x.store(30);
  x.store(40);
  x.store(50);
  x.store(60);
  // K=4: live occupancy is clamped at the ring depth no matter how many
  // more appends wrap it.
  EXPECT_EQ(engine_.stats().ring_occupancy_max, 4u);
  // Monotone: a shallower line elsewhere never lowers the high water.
  Shared<std::uint64_t> y(0);
  y.store(1);
  y.store(2);
  EXPECT_EQ(engine_.stats().ring_occupancy_max, 4u);
  engine_.reset_stats();
  EXPECT_EQ(engine_.stats().ring_occupancy_max, 0u);
}

// A shallow workload never fills the ring: the high water reports the
// depth actually used (the "shrink to k" signal), not the configured one.
TEST_F(Mvcc, RingOccupancyReportsUsedDepthNotConfigured) {
  Engine deep(mvcc_cfg(16));
  EngineScope scope(deep);
  Shared<std::uint64_t> x(0);
  x.store(10);
  x.store(20);
  x.store(30);
  EXPECT_EQ(deep.stats().ring_occupancy_max, 3u)
      << "three appends use three entries of the 16-deep ring";
}

TEST_F(Mvcc, BrokenTooNewServesCurrentMemory) {
  EngineConfig cfg = mvcc_cfg(4);
  cfg.broken_snapshot_too_new = true;  // checker self-validation knob
  Engine broken(cfg);
  EngineScope scope(broken);
  Shared<std::uint64_t> x(0);
  x.store(10);
  broken.snapshot_begin();
  x.store(20);
  EXPECT_EQ(x.load(), 20u);  // the too-new read the SI checker must catch
  broken.snapshot_end();
}

TEST_F(Mvcc, RetentionOffChargesNoExtraVirtualTime) {
  // The byte-identity contract: with retain_versions = 0 the publish paths
  // must advance the clock exactly as before the feature existed.
  const auto run = [](std::uint32_t retain) {
    EngineConfig cfg;
    cfg.retain_versions = retain;
    cfg.table_bits = 10;
    Engine e(cfg);
    EngineScope scope(e);
    sim::Simulator sim;
    std::uint64_t end = 0;
    sim.run(1, [&](int) {
      Shared<std::uint64_t> x(0);
      x.store(1);
      e.try_transaction([&] { x.store(2); });
      end = platform::now();
    });
    return end;
  };
  const std::uint64_t off = run(0);
  const std::uint64_t on = run(4);
  EXPECT_LT(off, on);  // retention IS charged...
  EXPECT_EQ(run(0), off);  // ...and off-mode is deterministic
}

// TSan stress: concurrent transactional publishers and snapshot readers
// over one engine. Readers assert snapshot *consistency* — all cells of a
// multi-word object observed under one pin must agree — which fails if the
// seqlock ring ever serves a torn or misplaced entry. CI runs this suite
// under -fsanitize=thread (`-R 'MvccRealThread'`).
TEST(MvccRealThread, ConsistentSnapshotsUnderConcurrentCommits) {
  EngineConfig cfg;
  cfg.retain_versions = 6;
  cfg.max_threads = 8;
  cfg.table_bits = 12;
  Engine engine(cfg);
  EngineScope scope(engine);

  constexpr int kCells = 4;
  struct alignas(64) Cell {
    Shared<std::uint64_t> v;
  };
  std::vector<Cell> cells(kCells);
  std::atomic<std::uint64_t> inconsistent{0};
  std::atomic<std::uint64_t> snapshots{0};

  sim::run_real_threads(8, [&](int tid) {
    if (tid < 2) {  // writers: multi-cell counter increments
      for (int i = 0; i < 2000; ++i) {
        engine.try_transaction([&] {
          const std::uint64_t v = cells[0].v.load() + 1;
          for (int c = 0; c < kCells; ++c) cells[c].v.store(v);
        });
      }
    } else {  // snapshot readers
      for (int i = 0; i < 2000; ++i) {
        engine.snapshot_begin();
        try {
          const std::uint64_t a = cells[0].v.load();
          bool ok = true;
          for (int c = 1; c < kCells; ++c) ok &= cells[c].v.load() == a;
          if (!ok) inconsistent.fetch_add(1, std::memory_order_relaxed);
          snapshots.fetch_add(1, std::memory_order_relaxed);
        } catch (const SnapshotMiss&) {
          // Ring churned past the pin: legal, just retry with a new pin.
        }
        engine.snapshot_end();
      }
    }
  });

  EXPECT_EQ(inconsistent.load(), 0u);
  EXPECT_GT(snapshots.load(), 0u);
  // No pin leaked: reclamation is unimpeded after the run.
  EXPECT_FALSE(engine.in_snapshot());
}

}  // namespace
}  // namespace sprwl::htm
