#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/platform.h"
#include "htm/engine.h"
#include "htm/shared.h"

namespace sprwl::htm {
namespace {

// A block of cells spread one per cache line so that each access consumes
// one line of HTM footprint.
struct LineArray {
  explicit LineArray(std::size_t n) : cells(n) {}
  struct alignas(64) Cell {
    Shared<std::uint64_t> v;
  };
  std::vector<Cell> cells;
};

class EngineCapacity : public ::testing::Test {
 protected:
  static EngineConfig config(std::uint32_t read_lines, std::uint32_t write_lines) {
    EngineConfig cfg;
    cfg.capacity = CapacityProfile{"test", read_lines, write_lines};
    return cfg;
  }
  ThreadIdScope tid_{0};
};

TEST_F(EngineCapacity, ReadFootprintWithinLimitCommits) {
  Engine engine(config(64, 64));
  EngineScope scope(engine);
  LineArray arr(64);
  const TxStatus st = engine.try_transaction([&] {
    for (auto& c : arr.cells) (void)c.v.load();
  });
  EXPECT_TRUE(st.committed());
}

TEST_F(EngineCapacity, ReadFootprintBeyondLimitAborts) {
  Engine engine(config(64, 64));
  EngineScope scope(engine);
  LineArray arr(65);
  const TxStatus st = engine.try_transaction([&] {
    for (auto& c : arr.cells) (void)c.v.load();
  });
  EXPECT_FALSE(st.committed());
  EXPECT_EQ(st.cause, AbortCause::kCapacity);
  EXPECT_EQ(engine.stats().aborts_capacity, 1u);
}

TEST_F(EngineCapacity, WriteFootprintBeyondLimitAborts) {
  Engine engine(config(1024, 16));
  EngineScope scope(engine);
  LineArray arr(17);
  const TxStatus st = engine.try_transaction([&] {
    for (auto& c : arr.cells) c.v.store(1);
  });
  EXPECT_FALSE(st.committed());
  EXPECT_EQ(st.cause, AbortCause::kCapacity);
  // Nothing was published.
  for (auto& c : arr.cells) EXPECT_EQ(c.v.raw_load(), 0u);
}

TEST_F(EngineCapacity, RepeatedAccessToSameLineCostsOneSlot) {
  Engine engine(config(2, 2));
  EngineScope scope(engine);
  LineArray arr(1);
  const TxStatus st = engine.try_transaction([&] {
    for (int i = 0; i < 100; ++i) (void)arr.cells[0].v.load();
    for (int i = 0; i < 100; ++i) arr.cells[0].v.store(static_cast<std::uint64_t>(i));
  });
  EXPECT_TRUE(st.committed());
  EXPECT_EQ(arr.cells[0].v.raw_load(), 99u);
}

TEST_F(EngineCapacity, RotHasNoReadLimitButKeepsWriteLimit) {
  Engine engine(config(4, 4));
  EngineScope scope(engine);
  LineArray arr(64);
  // Reads unbounded in a ROT (no read tracking)...
  TxStatus st = engine.try_rot([&] {
    for (auto& c : arr.cells) (void)c.v.load();
  });
  EXPECT_TRUE(st.committed());
  // ...but the write buffer is still finite.
  st = engine.try_rot([&] {
    for (auto& c : arr.cells) c.v.store(1);
  });
  EXPECT_FALSE(st.committed());
  EXPECT_EQ(st.cause, AbortCause::kCapacity);
}

TEST_F(EngineCapacity, BroadwellProfileShape) {
  // The Broadwell profile must let "writer-sized" sections (hundreds of
  // lines) commit while "10-lookup reader" sections (thousands) abort —
  // the regime of the paper's Fig. 3.
  Engine engine(EngineConfig{});  // default = Broadwell
  EngineScope scope(engine);
  LineArray small(300), big(2000);
  EXPECT_TRUE(engine
                  .try_transaction([&] {
                    for (auto& c : small.cells) (void)c.v.load();
                  })
                  .committed());
  const TxStatus st = engine.try_transaction([&] {
    for (auto& c : big.cells) (void)c.v.load();
  });
  EXPECT_EQ(st.cause, AbortCause::kCapacity);
}

TEST_F(EngineCapacity, Power8ProfileIsSymmetricAndSmall) {
  EngineConfig cfg;
  cfg.capacity = kPower8;
  Engine engine(cfg);
  EngineScope scope(engine);
  LineArray arr(129);
  TxStatus st = engine.try_transaction([&] {
    for (auto& c : arr.cells) (void)c.v.load();
  });
  EXPECT_EQ(st.cause, AbortCause::kCapacity);
  st = engine.try_transaction([&] {
    for (std::size_t i = 0; i < 128; ++i) (void)arr.cells[i].v.load();
  });
  EXPECT_TRUE(st.committed());
}

TEST_F(EngineCapacity, UnboundedProfileNeverCapacityAborts) {
  EngineConfig cfg;
  cfg.capacity = kUnbounded;
  Engine engine(cfg);
  EngineScope scope(engine);
  LineArray arr(5000);
  const TxStatus st = engine.try_transaction([&] {
    for (auto& c : arr.cells) c.v.store(7);
  });
  EXPECT_TRUE(st.committed());
}

TEST_F(EngineCapacity, TinyLockTableAliasesLinesConservatively) {
  // With a tiny version table, distinct addresses alias into the same
  // slot. Aliasing may cause spurious conflicts but never lost updates.
  EngineConfig cfg;
  cfg.table_bits = 4;
  Engine engine(cfg);
  EngineScope scope(engine);
  LineArray arr(64);
  int committed = 0;
  for (int round = 0; round < 10; ++round) {
    const TxStatus st = engine.try_transaction([&] {
      for (auto& c : arr.cells) c.v.store(c.v.load() + 1);
    });
    committed += st.committed();
  }
  for (auto& c : arr.cells) {
    EXPECT_EQ(c.v.raw_load(), static_cast<std::uint64_t>(committed));
  }
}

}  // namespace
}  // namespace sprwl::htm
