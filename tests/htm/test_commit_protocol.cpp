// The decentralized commit protocol (CommitMode::kPerLineLocks): per-line
// versioned locks must let disjoint commits and nontx publishes proceed in
// parallel, while preserving the strong-isolation guarantee the SpRWL
// algorithm is built on — a reader that flags itself either aborts every
// writer that read the flag, or observes the full effects of writers that
// validated first (the publish drain). kGlobalLock keeps the centralized
// seed protocol alive as the contrast these tests measure against.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/costs.h"
#include "common/platform.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "sim/simulator.h"

namespace sprwl::htm {
namespace {

struct alignas(64) Cell {
  Shared<std::uint64_t> v;
};

EngineConfig config_with_mode(CommitMode mode, int max_threads = 16) {
  EngineConfig cfg;
  cfg.commit_mode = mode;
  cfg.max_threads = max_threads;
  return cfg;
}

// Virtual time for `nthreads` fibers each committing `per_thread` update
// transactions to their own cache line.
std::uint64_t disjoint_commit_time(CommitMode mode, int nthreads,
                                   int per_thread) {
  Engine engine{config_with_mode(mode)};
  EngineScope scope(engine);
  std::vector<Cell> cells(static_cast<std::size_t>(nthreads));
  sim::Simulator sim;
  sim.run(nthreads, [&](int tid) {
    auto& mine = cells[static_cast<std::size_t>(tid)].v;
    for (int i = 0; i < per_thread; ++i) {
      const TxStatus st =
          engine.try_transaction([&] { mine.store(mine.load() + 1); });
      ASSERT_TRUE(st.committed());
    }
  });
  for (auto& c : cells)
    EXPECT_EQ(c.v.raw_load(), static_cast<std::uint64_t>(per_thread));
  return sim.final_time();
}

TEST(CommitProtocol, DisjointCommitsDoNotSerialize) {
  const std::uint64_t t1 = disjoint_commit_time(CommitMode::kPerLineLocks, 1, 200);
  const std::uint64_t t8 = disjoint_commit_time(CommitMode::kPerLineLocks, 8, 200);
  // Eight writers on eight disjoint lines never touch a common word: each
  // fiber's clock advances as if it ran alone.
  EXPECT_LE(t8, t1 + t1 / 10);
}

TEST(CommitProtocol, GlobalLockModeSerializesTheSameWorkload) {
  // The seed protocol, with its handoff contention charged: the same
  // disjoint workload pays for the centralized lock. This is the baseline
  // the micro-benchmark quantifies and the per-line path removes.
  const std::uint64_t t1 = disjoint_commit_time(CommitMode::kGlobalLock, 1, 200);
  const std::uint64_t t8 = disjoint_commit_time(CommitMode::kGlobalLock, 8, 200);
  EXPECT_GE(t8, 2 * t1);
}

// Virtual time for `nthreads` fibers each performing `per_thread`
// strong-isolation stores to their own cache line (the SpRWL reader
// entry/exit pattern with unpacked flags).
std::uint64_t disjoint_nontx_time(CommitMode mode, int nthreads,
                                  int per_thread) {
  Engine engine{config_with_mode(mode)};
  EngineScope scope(engine);
  std::vector<Cell> cells(static_cast<std::size_t>(nthreads));
  sim::Simulator sim;
  sim.run(nthreads, [&](int tid) {
    auto& mine = cells[static_cast<std::size_t>(tid)].v;
    for (int i = 0; i < per_thread; ++i) mine.store(static_cast<std::uint64_t>(i));
  });
  return sim.final_time();
}

TEST(CommitProtocol, DisjointNonTxStoresDoNotSerialize) {
  const std::uint64_t t1 = disjoint_nontx_time(CommitMode::kPerLineLocks, 1, 400);
  const std::uint64_t t8 = disjoint_nontx_time(CommitMode::kPerLineLocks, 8, 400);
  EXPECT_LE(t8, t1 + t1 / 10);
  const std::uint64_t g8 = disjoint_nontx_time(CommitMode::kGlobalLock, 8, 400);
  EXPECT_GE(g8, 2 * t8);
}

TEST(CommitProtocol, FlagBumpDuringWriteBackWindowDrainsTheCommit) {
  // Deterministic reproduction of the one interleaving the publish drain
  // exists for: a writer validates its read set (flag still clear), then a
  // reader flags itself *inside* the writer's write-back window. The
  // reader's store must not return until the commit is fully published, so
  // the flagged reader observes every one of its writes.
  Engine engine{config_with_mode(CommitMode::kPerLineLocks)};
  EngineScope scope(engine);
  Cell flag;
  std::vector<Cell> data(100);
  sim::Simulator sim;
  TxStatus writer_status;
  std::uint64_t seen_min = ~0ULL, seen_max = 0;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      // The writer validates at ~t=1150 (tx_begin + flag load + 100
      // buffered stores + tx_commit) and its write-back window runs for
      // 100 lines * line_publish cycles after that.
      writer_status = engine.try_transaction([&] {
        if (flag.v.load() != 0) engine.abort_tx(1);
        for (auto& c : data) c.v.store(1);
      });
    } else {
      platform::advance(1800);  // bump lands mid-window: after validation
      flag.v.store(1);  // lands inside the writer's write-back window
      for (auto& c : data) {
        const std::uint64_t v = c.v.load();  // uninstrumented reads
        seen_min = v < seen_min ? v : seen_min;
        seen_max = v > seen_max ? v : seen_max;
      }
    }
  });
  ASSERT_TRUE(writer_status.committed());
  // The flagged reader saw the whole commit, not a stale or partial view.
  EXPECT_EQ(seen_min, 1u);
  EXPECT_EQ(seen_max, 1u);
  EXPECT_GE(engine.stats().publish_drains, 1u);
}

TEST(CommitProtocol, StrongIsolationStressSim) {
  // One writer transfers (D1, D2) in lockstep; flagged readers must always
  // observe D1 == D2 and values that never go backwards: every writer that
  // validated before the flag bump is drained, every later one aborts.
  Engine engine{config_with_mode(CommitMode::kPerLineLocks)};
  EngineScope scope(engine);
  constexpr int kReaders = 3;
  Cell flags[kReaders];
  Cell d1, d2;
  sim::Simulator sim;
  int violations = 0;
  sim.run(1 + kReaders, [&](int tid) {
    if (tid == 0) {
      for (int i = 0; i < 300; ++i) {
        engine.try_transaction([&] {
          for (auto& f : flags)
            if (f.v.load() != 0) engine.abort_tx(7);
          const std::uint64_t a = d1.v.load();
          const std::uint64_t b = d2.v.load();
          d1.v.store(a + 1);
          d2.v.store(b + 1);
        });
        platform::advance(150);
      }
    } else {
      std::uint64_t last = 0;
      auto& flag = flags[tid - 1].v;
      for (int i = 0; i < 200; ++i) {
        flag.store(1);
        const std::uint64_t a = d1.v.load();
        const std::uint64_t b = d2.v.load();
        if (a != b || a < last) ++violations;
        last = a;
        flag.store(0);
        platform::advance(90 + 37 * tid);
      }
    }
  });
  EXPECT_EQ(violations, 0);
}

TEST(CommitProtocolRealThreads, StrongIsolationStress) {
  // Same invariant on real threads: the lock-free nontx publish and the
  // per-line commit path race for real here (and under TSan in CI). A
  // missing drain shows up as a torn (D1 != D2) or backwards view.
  Engine engine{config_with_mode(CommitMode::kPerLineLocks, 4)};
  EngineScope scope(engine);
  constexpr int kReaders = 3;
  Cell flags[kReaders];
  Cell d1, d2;
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  sim::run_real_threads(1 + kReaders, [&](int tid) {
    if (tid == 0) {
      for (int i = 0; i < 4000; ++i) {
        engine.try_transaction([&] {
          for (auto& f : flags)
            if (f.v.load() != 0) engine.abort_tx(7);
          const std::uint64_t a = d1.v.load();
          const std::uint64_t b = d2.v.load();
          d1.v.store(a + 1);
          d2.v.store(b + 1);
        });
      }
      stop.store(true, std::memory_order_release);
    } else {
      std::uint64_t last = 0;
      auto& flag = flags[tid - 1].v;
      while (!stop.load(std::memory_order_acquire)) {
        flag.store(1);
        const std::uint64_t a = d1.v.load();
        const std::uint64_t b = d2.v.load();
        if (a != b || a < last) violations.fetch_add(1);
        last = a;
        flag.store(0);
      }
    }
  });
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(d1.v.raw_load(), d2.v.raw_load());
}

TEST(CommitProtocolRealThreads, DisjointCommitsAllSucceed) {
  // Sorted per-line acquisition must stay deadlock- and livelock-free with
  // overlapping write sets on real threads.
  Engine engine{config_with_mode(CommitMode::kPerLineLocks, 4)};
  EngineScope scope(engine);
  std::vector<Cell> cells(16);
  sim::run_real_threads(4, [&](int tid) {
    for (int i = 0; i < 3000; ++i) {
      // Each transaction writes its own line plus a rotating shared one.
      const std::size_t shared_idx =
          static_cast<std::size_t>((tid + i) % 8) + 8;
      engine.try_transaction([&] {
        auto& mine = cells[static_cast<std::size_t>(tid)].v;
        mine.store(mine.load() + 1);
        auto& other = cells[shared_idx].v;
        other.store(other.load() + 1);
      });
    }
  });
  // No assertion on totals (conflicting attempts abort and are not
  // retried); the test is that every thread terminates and the engine
  // kept its bookkeeping intact.
  std::uint64_t sum = 0;
  for (auto& c : cells) sum += c.v.raw_load();
  const EngineStats s = engine.stats();
  EXPECT_EQ(sum, 2 * s.commits_htm);
}

TEST(CommitProtocol, FailedNonTxCasIsInvisibleToTransactions) {
  // Regression: a failing nontx_cas used to take the commit lock; it must
  // now be a plain load — no version bump, so a live transaction that read
  // the same line commits untouched.
  Engine engine{config_with_mode(CommitMode::kPerLineLocks)};
  EngineScope scope(engine);
  Cell x;
  x.v.raw_store(5);
  sim::Simulator sim;
  TxStatus status;
  bool cas_result = true;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      status = engine.try_transaction([&] {
        (void)x.v.load();
        platform::advance(10000);  // overlap with the failing CAS
      });
    } else {
      platform::advance(2000);
      cas_result = x.v.cas(7, 9);  // mismatch: 5 != 7
    }
  });
  EXPECT_FALSE(cas_result);
  EXPECT_TRUE(status.committed());
  EXPECT_EQ(x.v.raw_load(), 5u);
  EXPECT_EQ(engine.stats().aborts_conflict, 0u);
}

TEST(CommitProtocol, SuccessfulNonTxCasStillAbortsConflictingTransaction) {
  Engine engine{config_with_mode(CommitMode::kPerLineLocks)};
  EngineScope scope(engine);
  Cell x;
  x.v.raw_store(5);
  sim::Simulator sim;
  TxStatus status;
  bool cas_result = false;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      status = engine.try_transaction([&] {
        (void)x.v.load();
        platform::advance(10000);
        (void)x.v.load();  // must observe the invalidation
      });
    } else {
      platform::advance(2000);
      cas_result = x.v.cas(5, 9);
    }
  });
  EXPECT_TRUE(cas_result);
  EXPECT_FALSE(status.committed());
  EXPECT_EQ(status.cause, AbortCause::kConflict);
  EXPECT_EQ(x.v.raw_load(), 9u);
}

TEST(CommitProtocol, GlobalLockModePreservesSeedSemantics) {
  // The kGlobalLock baseline still implements strong isolation the seed
  // way: a nontx store before the writer's commit aborts it.
  Engine engine{config_with_mode(CommitMode::kGlobalLock)};
  EngineScope scope(engine);
  Cell flag, data;
  sim::Simulator sim;
  TxStatus writer_status;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      writer_status = engine.try_transaction([&] {
        if (flag.v.load() != 0) engine.abort_tx(9);
        data.v.store(7);
        platform::advance(10000);
      });
    } else {
      platform::advance(2000);
      flag.v.store(1);
    }
  });
  EXPECT_FALSE(writer_status.committed());
  EXPECT_EQ(writer_status.cause, AbortCause::kConflict);
  EXPECT_EQ(data.v.raw_load(), 0u);
}

TEST(CommitProtocol, ContentionStatsAreReported) {
  // Two committers hammering one line: the loser's acquisition retries and
  // the nontx publishes' contended rounds must surface in EngineStats.
  Engine engine{config_with_mode(CommitMode::kPerLineLocks)};
  EngineScope scope(engine);
  Cell hot;
  sim::Simulator sim;
  sim.run(4, [&](int tid) {
    for (int i = 0; i < 100; ++i) {
      if (tid % 2 == 0) {
        engine.try_transaction([&] { hot.v.store(hot.v.load() + 1); });
      } else {
        hot.v.store(static_cast<std::uint64_t>(i));
      }
      platform::advance(20 + 13 * tid);
    }
  });
  const EngineStats s = engine.stats();
  // The workload forces same-line publish windows to overlap; at least one
  // of the contention counters must have fired, and the reset clears them.
  EXPECT_GT(s.commit_line_retries + s.nontx_line_retries + s.publish_drains,
            0u);
  engine.reset_stats();
  const EngineStats z = engine.stats();
  EXPECT_EQ(z.commit_line_retries, 0u);
  EXPECT_EQ(z.nontx_line_retries, 0u);
  EXPECT_EQ(z.publish_drains, 0u);
}

}  // namespace
}  // namespace sprwl::htm
