#include <gtest/gtest.h>

#include <cstdint>

#include "common/platform.h"
#include "htm/engine.h"
#include "htm/shared.h"

namespace sprwl::htm {
namespace {

TEST(Shared, WorksWithoutAnyEngine) {
  ASSERT_EQ(Engine::current(), nullptr);
  Shared<int> x(3);
  EXPECT_EQ(x.load(), 3);
  x.store(4);
  EXPECT_EQ(x.load(), 4);
  EXPECT_TRUE(x.cas(4, 5));
  EXPECT_FALSE(x.cas(4, 6));
  EXPECT_EQ(x.load(), 5);
}

TEST(Shared, RoundTripsVariousTypes) {
  Shared<std::uint8_t> u8(0xAB);
  EXPECT_EQ(u8.load(), 0xAB);
  Shared<std::int32_t> i32(-12345);
  EXPECT_EQ(i32.load(), -12345);
  Shared<std::uint64_t> u64(0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(u64.load(), 0xDEADBEEFCAFEF00DULL);
  Shared<double> d(3.25);
  EXPECT_DOUBLE_EQ(d.load(), 3.25);
  d.store(-0.5);
  EXPECT_DOUBLE_EQ(d.load(), -0.5);
  int dummy = 0;
  Shared<int*> p(&dummy);
  EXPECT_EQ(p.load(), &dummy);
}

TEST(Shared, DefaultConstructedIsZero) {
  Shared<std::uint64_t> x;
  EXPECT_EQ(x.load(), 0u);
  Shared<double> d;
  EXPECT_DOUBLE_EQ(d.load(), 0.0);
}

TEST(Shared, RawAccessorsBypassEngine) {
  Engine engine{EngineConfig{}};
  EngineScope scope(engine);
  ThreadIdScope tid(0);
  Shared<int> x(0);
  engine.try_transaction([&] {
    x.store(9);
    x.raw_store(1);       // bypasses the redo log
    EXPECT_EQ(x.load(), 9);  // transactional view
    EXPECT_EQ(x.raw_load(), 1);
  });
  EXPECT_EQ(x.raw_load(), 9);  // commit overwrote the raw store
}

TEST(SharedString, AssignAndReadBack) {
  SharedString<24> s;
  s.assign("hello world");
  EXPECT_EQ(s.str(), "hello world");
  s.assign("");
  EXPECT_EQ(s.str(), "");
  s.assign("exactly-24-characters!!!");
  EXPECT_EQ(s.str(), "exactly-24-characters!!!");
}

TEST(SharedString, TruncatesToCapacity) {
  SharedString<8> s;
  s.assign("0123456789");
  EXPECT_EQ(s.str(), "01234567");
  EXPECT_EQ(SharedString<8>::capacity(), 8u);
}

TEST(SharedString, RawAssignForPopulation) {
  SharedString<16> s;
  s.raw_assign("warehouse-7");
  EXPECT_EQ(s.str(), "warehouse-7");
}

TEST(SharedString, TransactionalUpdateIsAtomic) {
  Engine engine{EngineConfig{}};
  EngineScope scope(engine);
  ThreadIdScope tid(0);
  SharedString<16> s;
  s.raw_assign("before-value");
  const TxStatus st = engine.try_transaction([&] {
    s.assign("after-value!");
    engine.abort_tx(1);
  });
  EXPECT_FALSE(st.committed());
  EXPECT_EQ(s.str(), "before-value");  // rollback restored everything
  engine.try_transaction([&] { s.assign("after-value!"); });
  EXPECT_EQ(s.str(), "after-value!");
}

TEST(MemoryFence, ChargesVirtualTimeUnderContext) {
  class CountingCtx final : public ExecutionContext {
   public:
    std::uint64_t now() override { return time; }
    void advance(std::uint64_t c) override { time += c; }
    void pause() override {}
    void wait_until(std::uint64_t) override {}
    int thread_id() override { return 0; }
    std::uint64_t time = 0;
  };
  CountingCtx ctx;
  platform::set_context(&ctx);
  memory_fence();
  platform::set_context(nullptr);
  EXPECT_GT(ctx.time, 0u);
}

}  // namespace
}  // namespace sprwl::htm
