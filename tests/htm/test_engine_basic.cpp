#include <gtest/gtest.h>

#include "common/platform.h"
#include "htm/engine.h"
#include "htm/shared.h"

namespace sprwl::htm {
namespace {

class EngineBasic : public ::testing::Test {
 protected:
  EngineBasic() : engine_(EngineConfig{}), scope_(engine_), tid_(0) {}

  Engine engine_;
  EngineScope scope_;
  ThreadIdScope tid_;
};

TEST_F(EngineBasic, CommitPublishesWrites) {
  Shared<int> x(1);
  const TxStatus st = engine_.try_transaction([&] { x.store(42); });
  EXPECT_TRUE(st.committed());
  EXPECT_EQ(x.load(), 42);
  EXPECT_EQ(engine_.stats().commits_htm, 1u);
}

TEST_F(EngineBasic, ReadOnlyTransactionCommits) {
  Shared<int> x(7);
  int seen = 0;
  const TxStatus st = engine_.try_transaction([&] { seen = x.load(); });
  EXPECT_TRUE(st.committed());
  EXPECT_EQ(seen, 7);
}

TEST_F(EngineBasic, ExplicitAbortDiscardsWritesAndReportsCode) {
  Shared<int> x(1);
  const TxStatus st = engine_.try_transaction([&] {
    x.store(99);
    engine_.abort_tx(0xAB);
  });
  EXPECT_FALSE(st.committed());
  EXPECT_EQ(st.cause, AbortCause::kExplicit);
  EXPECT_EQ(st.code, 0xAB);
  EXPECT_EQ(x.load(), 1);
  EXPECT_EQ(engine_.stats().aborts_explicit, 1u);
}

TEST_F(EngineBasic, ReadOwnWriteInsideTransaction) {
  Shared<int> x(5);
  const TxStatus st = engine_.try_transaction([&] {
    x.store(10);
    EXPECT_EQ(x.load(), 10);  // redo-log hit
    x.store(x.load() + 1);
    EXPECT_EQ(x.load(), 11);
  });
  EXPECT_TRUE(st.committed());
  EXPECT_EQ(x.load(), 11);
}

TEST_F(EngineBasic, WritesInvisibleBeforeCommit) {
  Shared<int> x(1);
  const TxStatus st = engine_.try_transaction([&] {
    x.store(2);
    // An out-of-band raw view must not observe the buffered store.
    EXPECT_EQ(x.raw_load(), 1);
  });
  EXPECT_TRUE(st.committed());
  EXPECT_EQ(x.raw_load(), 2);
}

TEST_F(EngineBasic, FlatNestingCommitsAtOuterLevel) {
  Shared<int> x(0);
  const TxStatus st = engine_.try_transaction([&] {
    x.store(1);
    const TxStatus inner = engine_.try_transaction([&] { x.store(2); });
    EXPECT_TRUE(inner.committed());  // flattened: no separate commit
    EXPECT_EQ(x.raw_load(), 0);      // still buffered
  });
  EXPECT_TRUE(st.committed());
  EXPECT_EQ(x.load(), 2);
  EXPECT_EQ(engine_.stats().commits_htm, 1u);  // one hardware commit
}

TEST_F(EngineBasic, InnerAbortUnwindsToOuterBegin) {
  Shared<int> x(0);
  const TxStatus st = engine_.try_transaction([&] {
    x.store(1);
    engine_.try_transaction([&] { engine_.abort_tx(3); });
    FAIL() << "must not resume after inner abort";
  });
  EXPECT_EQ(st.cause, AbortCause::kExplicit);
  EXPECT_EQ(st.code, 3);
  EXPECT_EQ(x.load(), 0);
}

TEST_F(EngineBasic, UserExceptionAbortsAndPropagates) {
  Shared<int> x(0);
  EXPECT_THROW(engine_.try_transaction([&] {
                 x.store(5);
                 throw std::runtime_error("user error");
               }),
               std::runtime_error);
  EXPECT_EQ(x.load(), 0);
  EXPECT_FALSE(engine_.in_tx());
  // Engine is reusable afterwards.
  EXPECT_TRUE(engine_.try_transaction([&] { x.store(1); }).committed());
  EXPECT_EQ(x.load(), 1);
}

TEST_F(EngineBasic, InTxReflectsTransactionScope) {
  EXPECT_FALSE(engine_.in_tx());
  engine_.try_transaction([&] { EXPECT_TRUE(engine_.in_tx()); });
  EXPECT_FALSE(engine_.in_tx());
}

TEST_F(EngineBasic, NonTxStoreIsImmediatelyVisible) {
  Shared<int> x(0);
  x.store(17);
  EXPECT_EQ(x.raw_load(), 17);
}

TEST_F(EngineBasic, NonTxCasSemantics) {
  Shared<int> x(10);
  EXPECT_FALSE(x.cas(11, 12));
  EXPECT_EQ(x.raw_load(), 10);
  EXPECT_TRUE(x.cas(10, 12));
  EXPECT_EQ(x.raw_load(), 12);
}

TEST_F(EngineBasic, TransactionalCasSemantics) {
  Shared<int> x(1);
  const TxStatus st = engine_.try_transaction([&] {
    EXPECT_TRUE(x.cas(1, 2));
    EXPECT_FALSE(x.cas(1, 3));
    EXPECT_TRUE(x.cas(2, 4));
  });
  EXPECT_TRUE(st.committed());
  EXPECT_EQ(x.load(), 4);
}

TEST_F(EngineBasic, SpuriousAbortsFireAtConfiguredRate) {
  EngineConfig cfg;
  cfg.spurious_abort_rate = 0.2;
  Engine noisy(cfg);
  EngineScope scope(noisy);
  Shared<int> x(0);
  int aborts = 0;
  for (int i = 0; i < 500; ++i) {
    const TxStatus st = noisy.try_transaction([&] { x.store(i); });
    aborts += !st.committed();
    if (!st.committed()) {
      EXPECT_EQ(st.cause, AbortCause::kSpurious);
    }
  }
  // Each attempt performs 1 store + commit => ~2 chances at 20%.
  EXPECT_GT(aborts, 50);
  EXPECT_LT(aborts, 350);
  EXPECT_EQ(noisy.stats().aborts_spurious, static_cast<std::uint64_t>(aborts));
}

TEST_F(EngineBasic, RotBuffersWritesAndCommitsAtomically) {
  Shared<int> x(0), y(0);
  const TxStatus st = engine_.try_rot([&] {
    x.store(1);
    y.store(2);
    EXPECT_EQ(x.raw_load(), 0);
    EXPECT_EQ(x.load(), 1);  // ROT still reads its own redo log
  });
  EXPECT_TRUE(st.committed());
  EXPECT_EQ(x.load(), 1);
  EXPECT_EQ(y.load(), 2);
  EXPECT_EQ(engine_.stats().commits_rot, 1u);
}

TEST_F(EngineBasic, RotIgnoresReadValidation) {
  // A ROT that read a value later changed by a plain store still commits
  // (no read tracking) — matching POWER8 rollback-only semantics.
  Shared<int> x(0), y(0);
  const TxStatus st = engine_.try_rot([&] {
    (void)x.load();
    // Simulate an interleaved plain store via the raw path (the engine
    // cannot see it, just like POWER8 would not track the read).
    x.raw_store(77);
    y.store(1);
  });
  EXPECT_TRUE(st.committed());
  EXPECT_EQ(y.load(), 1);
}

TEST_F(EngineBasic, StatsResetClearsCounters) {
  Shared<int> x(0);
  engine_.try_transaction([&] { x.store(1); });
  engine_.reset_stats();
  const EngineStats s = engine_.stats();
  EXPECT_EQ(s.commits_htm, 0u);
  EXPECT_EQ(s.total_aborts(), 0u);
}

TEST_F(EngineBasic, RejectsBadConfig) {
  EngineConfig bad;
  bad.max_threads = 0;
  EXPECT_THROW(Engine{bad}, std::invalid_argument);
  EngineConfig bad2;
  bad2.table_bits = 2;
  EXPECT_THROW(Engine{bad2}, std::invalid_argument);
}

TEST_F(EngineBasic, ThreadWithoutIdIsRejectedInsideTx) {
  platform::set_thread_id(-1);
  EXPECT_THROW(engine_.try_transaction([&] {}), std::logic_error);
  platform::set_thread_id(0);
}

TEST(EngineCurrent, ScopeInstallsAndRestores) {
  EXPECT_EQ(Engine::current(), nullptr);
  Engine a{EngineConfig{}};
  {
    EngineScope sa(a);
    EXPECT_EQ(Engine::current(), &a);
    Engine b{EngineConfig{}};
    {
      EngineScope sb(b);
      EXPECT_EQ(Engine::current(), &b);
    }
    EXPECT_EQ(Engine::current(), &a);
  }
  EXPECT_EQ(Engine::current(), nullptr);
}

TEST(AbortCauseNames, AllDistinct) {
  EXPECT_STREQ(to_string(AbortCause::kNone), "none");
  EXPECT_STREQ(to_string(AbortCause::kConflict), "conflict");
  EXPECT_STREQ(to_string(AbortCause::kCapacity), "capacity");
  EXPECT_STREQ(to_string(AbortCause::kExplicit), "explicit");
  EXPECT_STREQ(to_string(AbortCause::kSpurious), "spurious");
}

}  // namespace
}  // namespace sprwl::htm
