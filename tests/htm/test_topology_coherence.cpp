// Topology-aware coherence cost model (DESIGN.md §11): with owner tracking
// on, every tracked access migrates the line's ownership to the accessing
// thread and pays a tiered extra — nothing when the owner is unchanged or
// the line is first-touched, CostModel::remote_socket when the previous
// owner shares the socket, remote_cross when it does not. The defaults
// (remote_socket = 0, tracking off, 1 socket) must make the whole model a
// strict no-op, which is what keeps the seed benchmark outputs
// bit-identical (fig_numa_scaling's identity check).
#include <gtest/gtest.h>

#include <cstdint>

#include "common/costs.h"
#include "common/platform.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "sim/simulator.h"
#include "sim/topology.h"

namespace sprwl::htm {
namespace {

struct alignas(64) Cell {
  Shared<std::uint64_t> v;
};

TEST(Topology, SocketOfIsSocketMajorAndWraps) {
  sim::Topology t;
  t.sockets = 2;
  t.cores_per_socket = 4;
  EXPECT_EQ(t.socket_of(0), 0);
  EXPECT_EQ(t.socket_of(3), 0);
  EXPECT_EQ(t.socket_of(4), 1);
  EXPECT_EQ(t.socket_of(7), 1);
  EXPECT_EQ(t.socket_of(8), 0);  // oversubscribed ids wrap
  EXPECT_TRUE(t.same_socket(0, 3));
  EXPECT_FALSE(t.same_socket(3, 4));
}

TEST(Topology, FlatDefaultMakesEveryCoreEquidistant) {
  const sim::Topology t;
  EXPECT_TRUE(t.flat());
  EXPECT_TRUE(t.same_socket(0, 63));
}

TEST(Topology, SplitCoversAllThreads) {
  const sim::Topology t = sim::Topology::split(10, 4);
  EXPECT_EQ(t.sockets, 4);
  EXPECT_EQ(t.cores_per_socket, 3);  // ceil(10/4)
  EXPECT_EQ(t.socket_of(9), 3);
  const sim::Topology one = sim::Topology::split(10, 1);
  EXPECT_TRUE(one.flat());
}

// Plain (uninstrumented) load path: the second thread's access migrates the
// line across the interconnect and costs exactly load + remote_cross.
TEST(TopologyCoherence, CrossSocketPlainLoadChargesRemoteCross) {
  EngineConfig ec;
  ec.topology = sim::Topology::split(2, 2);  // tid 0 -> socket 0, tid 1 -> 1
  Engine engine{ec};
  EngineScope scope(engine);
  Cell x;
  std::uint64_t elapsed[2] = {0, 0};
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 1) platform::advance(1000);  // strictly after tid 0's access
    const std::uint64_t t0 = platform::now();
    (void)x.v.load();
    elapsed[tid] = platform::now() - t0;
  });
  EXPECT_EQ(elapsed[0], g_costs.load);  // first touch: born local
  EXPECT_EQ(elapsed[1], g_costs.load + g_costs.remote_cross);
  EXPECT_EQ(engine.stats().cross_transfers, 1u);
  EXPECT_EQ(engine.stats().socket_transfers, 0u);
}

// Same-socket transfer: counted, but charged at remote_socket — 0 by
// default, so an on-socket handoff costs the same as a local hit.
TEST(TopologyCoherence, SameSocketTransferUsesRemoteSocketRate) {
  EngineConfig ec;
  ec.topology.sockets = 2;
  ec.topology.cores_per_socket = 2;  // tids 0 and 1 share socket 0
  Engine engine{ec};
  EngineScope scope(engine);
  Cell x;
  std::uint64_t elapsed[2] = {0, 0};
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 1) platform::advance(1000);
    const std::uint64_t t0 = platform::now();
    (void)x.v.load();
    elapsed[tid] = platform::now() - t0;
  });
  EXPECT_EQ(elapsed[1], g_costs.load + g_costs.remote_socket);
  EXPECT_EQ(engine.stats().socket_transfers, 1u);
  EXPECT_EQ(engine.stats().cross_transfers, 0u);
}

// Ownership is migratory: once a thread accessed the line, its repeat
// accesses are local again and the bounce is charged on the way back.
TEST(TopologyCoherence, RepeatAccessByNewOwnerIsLocal) {
  EngineConfig ec;
  ec.topology = sim::Topology::split(2, 2);
  Engine engine{ec};
  EngineScope scope(engine);
  Cell x;
  std::uint64_t second = 0, third = 0;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      (void)x.v.load();
      platform::advance(5000);  // let tid 1 take the line
      platform::advance(5000);
      const std::uint64_t t0 = platform::now();
      (void)x.v.load();  // bounce back: cross again
      third = platform::now() - t0;
    } else {
      platform::advance(2000);
      (void)x.v.load();  // cross transfer
      const std::uint64_t t0 = platform::now();
      (void)x.v.load();  // now the owner: local
      second = platform::now() - t0;
    }
  });
  EXPECT_EQ(second, g_costs.load);
  EXPECT_EQ(third, g_costs.load + g_costs.remote_cross);
  EXPECT_EQ(engine.stats().cross_transfers, 2u);
}

// The default engine neither tracks nor charges: the no-op guarantee the
// single-socket benchmarks rely on.
TEST(TopologyCoherence, DefaultEngineTracksNothing) {
  Engine engine{EngineConfig{}};
  EngineScope scope(engine);
  EXPECT_FALSE(engine.tracks_owners());
  Cell x;
  std::uint64_t elapsed[2] = {0, 0};
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 1) platform::advance(1000);
    const std::uint64_t t0 = platform::now();
    (void)x.v.load();
    elapsed[tid] = platform::now() - t0;
  });
  EXPECT_EQ(elapsed[0], g_costs.load);
  EXPECT_EQ(elapsed[1], g_costs.load);
  EXPECT_EQ(engine.stats().socket_transfers, 0u);
  EXPECT_EQ(engine.stats().cross_transfers, 0u);
}

// Tracking forced on over a flat topology observes the transfers but adds
// zero cost (remote_socket defaults to 0) — the identity fig_numa_scaling
// asserts byte-for-byte on real benchmark output.
TEST(TopologyCoherence, ForcedTrackingOnOneSocketAddsNoCost) {
  EngineConfig ec;
  ec.track_line_owners = true;
  Engine engine{ec};
  EngineScope scope(engine);
  EXPECT_TRUE(engine.tracks_owners());
  Cell x;
  std::uint64_t elapsed[2] = {0, 0};
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 1) platform::advance(1000);
    const std::uint64_t t0 = platform::now();
    (void)x.v.load();
    elapsed[tid] = platform::now() - t0;
  });
  EXPECT_EQ(elapsed[1], g_costs.load);  // transfer seen, priced at 0
  EXPECT_EQ(engine.stats().socket_transfers, 1u);
  EXPECT_EQ(engine.stats().cross_transfers, 0u);
}

// Transactional reads go through the same model: a tx re-reading a line a
// remote thread owns pays the extra inside tx_read.
TEST(TopologyCoherence, TxReadChargesCoherenceExtra) {
  EngineConfig ec;
  ec.topology = sim::Topology::split(2, 2);
  Engine engine{ec};
  EngineScope scope(engine);
  Cell x;
  std::uint64_t tx_elapsed = 0;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      (void)x.v.load();  // socket 0 owns the line
    } else {
      platform::advance(1000);
      const TxStatus st = engine.try_transaction([&] {
        const std::uint64_t t0 = platform::now();
        (void)x.v.load();
        tx_elapsed = platform::now() - t0;
      });
      EXPECT_TRUE(st.committed());
    }
  });
  EXPECT_GE(tx_elapsed, g_costs.load + g_costs.remote_cross);
  EXPECT_GE(engine.stats().cross_transfers, 1u);
}

}  // namespace
}  // namespace sprwl::htm
