// Conflict-detection semantics, exercised deterministically with fibers:
// the simulator schedules in virtual-time order, so interleavings are
// scripted precisely with platform::advance().
#include <gtest/gtest.h>

#include "common/platform.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "sim/simulator.h"

namespace sprwl::htm {
namespace {

TEST(EngineConflicts, NonTxStoreInvalidatesWriterTransaction) {
  // An update transaction reads x (a "reader flag"); a strong-isolation
  // store to x lands before the transaction commits -> the commit must
  // fail with a conflict, so its writes never become visible. This is the
  // exact mechanism SpRWL's reader flags rely on (paper Fig. 1).
  Engine engine{EngineConfig{}};
  EngineScope scope(engine);
  struct alignas(64) Cell {
    Shared<std::uint64_t> v;
  };
  Cell flag, data;
  sim::Simulator sim;
  TxStatus writer_status;
  sim.run(2, [&](int tid) {
    if (tid == 0) {  // the "HTM writer"
      writer_status = engine.try_transaction([&] {
        if (flag.v.load() != 0) engine.abort_tx(9);
        data.v.store(7);
        platform::advance(10000);  // linger so tid 1 flags meanwhile
      });
    } else {  // the "uninstrumented reader" flipping its flag
      platform::advance(2000);
      flag.v.store(1);
    }
  });
  EXPECT_FALSE(writer_status.committed());
  EXPECT_EQ(writer_status.cause, AbortCause::kConflict);
  EXPECT_EQ(data.v.raw_load(), 0u);  // aborted writer published nothing
}

TEST(EngineConflicts, ReadOnlyTransactionSerializesBeforeLaterStore) {
  // A transaction with no writes that read x before a conflicting store
  // commits fine: it serializes before the store (TL2 read-only fast
  // path). SpRWL writers always publish writes, so they never take this
  // path with a stale reader-flag check.
  Engine engine{EngineConfig{}};
  EngineScope scope(engine);
  Shared<std::uint64_t> x(0);
  sim::Simulator sim;
  TxStatus status;
  std::uint64_t seen = ~0ULL;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      status = engine.try_transaction([&] {
        seen = x.load();
        platform::advance(10000);
      });
    } else {
      platform::advance(2000);
      x.store(1);
    }
  });
  EXPECT_TRUE(status.committed());
  EXPECT_EQ(seen, 0u);
}

TEST(EngineConflicts, NonTxStoreAfterCommitDoesNotAbort) {
  Engine engine{EngineConfig{}};
  EngineScope scope(engine);
  Shared<std::uint64_t> x(0);
  sim::Simulator sim;
  TxStatus writer_status;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      writer_status = engine.try_transaction([&] { (void)x.load(); });
    } else {
      platform::advance(500000);  // long after the transaction finished
      x.store(1);
    }
  });
  EXPECT_TRUE(writer_status.committed());
}

TEST(EngineConflicts, WriteWriteConflictSecondCommitterLoses) {
  // Two transactions read-modify-write the same cell with overlapping
  // lifetimes: exactly one commit must succeed and the value reflects it.
  Engine engine{EngineConfig{}};
  EngineScope scope(engine);
  Shared<std::uint64_t> x(0);
  sim::Simulator sim;
  TxStatus status[2];
  sim.run(2, [&](int tid) {
    status[tid] = engine.try_transaction([&] {
      const std::uint64_t v = x.load();
      platform::advance(5000);  // both overlap
      x.store(v + 1);
    });
  });
  EXPECT_NE(status[0].committed(), status[1].committed());
  EXPECT_EQ(x.raw_load(), 1u);
  EXPECT_EQ(engine.stats().aborts_conflict, 1u);
}

TEST(EngineConflicts, DisjointWritesBothCommit) {
  Engine engine{EngineConfig{}};
  EngineScope scope(engine);
  // Separate cells, far apart -> distinct lines -> no conflict.
  struct alignas(64) Cell {
    Shared<std::uint64_t> v;
  };
  Cell a, b;
  sim::Simulator sim;
  TxStatus status[2];
  sim.run(2, [&](int tid) {
    status[tid] = engine.try_transaction([&] {
      auto& mine = tid == 0 ? a.v : b.v;
      const std::uint64_t v = mine.load();
      platform::advance(5000);
      mine.store(v + 1);
    });
  });
  EXPECT_TRUE(status[0].committed());
  EXPECT_TRUE(status[1].committed());
  EXPECT_EQ(a.v.raw_load(), 1u);
  EXPECT_EQ(b.v.raw_load(), 1u);
}

TEST(EngineConflicts, SameLineFalseSharingConflicts) {
  // Two adjacent words share a cache line: HTM conflicts at line
  // granularity, so overlapping writers must collide.
  Engine engine{EngineConfig{}};
  EngineScope scope(engine);
  struct alignas(64) Line {
    Shared<std::uint64_t> a;
    Shared<std::uint64_t> b;
  };
  Line line;
  sim::Simulator sim;
  TxStatus status[2];
  sim.run(2, [&](int tid) {
    status[tid] = engine.try_transaction([&] {
      // Both read both words, then write their own word.
      (void)line.a.load();
      (void)line.b.load();
      platform::advance(5000);
      if (tid == 0) {
        line.a.store(1);
      } else {
        line.b.store(2);
      }
    });
  });
  EXPECT_NE(status[0].committed(), status[1].committed());
}

TEST(EngineConflicts, ReaderTransactionSeesConsistentSnapshot) {
  // Invariant a + b == 0 is preserved by every committed writer; a reader
  // transaction must never observe a broken invariant (opacity).
  Engine engine{EngineConfig{}};
  EngineScope scope(engine);
  struct alignas(64) Cell {
    Shared<std::int64_t> v;
  };
  Cell a, b;
  sim::Simulator sim;
  int violations = 0;
  sim.run(3, [&](int tid) {
    if (tid == 0) {  // writer: repeatedly transfers between a and b
      for (int i = 0; i < 200; ++i) {
        engine.try_transaction([&] {
          const std::int64_t va = a.v.load();
          const std::int64_t vb = b.v.load();
          platform::advance(200);
          a.v.store(va + 1);
          b.v.store(vb - 1);
        });
        platform::advance(100);
      }
    } else {  // readers
      for (int i = 0; i < 200; ++i) {
        std::int64_t sa = 0, sb = 0;
        const TxStatus st = engine.try_transaction([&] {
          sa = a.v.load();
          platform::advance(300);  // widen the window
          sb = b.v.load();
        });
        if (st.committed() && sa + sb != 0) ++violations;
        platform::advance(50);
      }
    }
  });
  EXPECT_EQ(violations, 0);
}

TEST(EngineConflicts, SubscribedWordAbortsEagerlyViaValidationOnRead) {
  // Transaction reads word L, another thread nontx-stores L, transaction
  // then reads another word: the read must abort (extension fails) rather
  // than return a value from a broken snapshot.
  Engine engine{EngineConfig{}};
  EngineScope scope(engine);
  struct alignas(64) Cell {
    Shared<std::uint64_t> v;
  };
  Cell lockword, data;
  sim::Simulator sim;
  TxStatus status;
  bool reached_after_second_read = false;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      status = engine.try_transaction([&] {
        (void)lockword.v.load();   // subscribe
        platform::advance(10000);  // meanwhile tid 1 "acquires the lock"
        (void)data.v.load();       // must throw: snapshot extension fails
        reached_after_second_read = true;
      });
    } else {
      platform::advance(2000);
      lockword.v.store(1);
      data.v.store(123);
    }
  });
  EXPECT_FALSE(status.committed());
  EXPECT_EQ(status.cause, AbortCause::kConflict);
  EXPECT_FALSE(reached_after_second_read);
}

}  // namespace
}  // namespace sprwl::htm
