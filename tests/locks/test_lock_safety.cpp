// Safety properties checked uniformly over every lock in the library
// (pessimistic baselines, TLE, RW-LE and SpRWL):
//  * writer-writer mutual exclusion (no lost updates),
//  * reader isolation (readers never observe a torn multi-word update),
//  * reader-reader concurrency (readers overlap in virtual time),
//  * RAII behaviour under exceptions from the critical section.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/platform.h"
#include "common/rng.h"
#include "fault/fault.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "lock_test_utils.h"
#include "sim/simulator.h"

#include "../support/seed_replay.h"

namespace sprwl {
namespace {

template <class Lock>
class LockSafety : public ::testing::Test {
 protected:
  static constexpr int kThreads = 8;

  LockSafety() : engine_(make_engine_config()), scope_(engine_) {
    lock_ = testutil::make_lock<Lock>(kThreads);
  }

  static htm::EngineConfig make_engine_config() {
    htm::EngineConfig cfg;
    cfg.capacity = htm::kUnbounded;
    return cfg;
  }

  htm::Engine engine_;
  htm::EngineScope scope_;
  std::unique_ptr<Lock> lock_;
};

TYPED_TEST_SUITE(LockSafety, testutil::AllLockTypes);

TYPED_TEST(LockSafety, NoLostUpdates) {
  // N threads each increment a shared counter K times under the write
  // lock; the final value must be exactly N*K.
  htm::Shared<std::uint64_t> counter(0);
  constexpr int kIncrements = 50;
  sim::Simulator sim;
  sim.run(this->kThreads, [&](int) {
    for (int i = 0; i < kIncrements; ++i) {
      this->lock_->write(1, [&] { counter.store(counter.load() + 1); });
      platform::advance(50);
    }
  });
  EXPECT_EQ(counter.raw_load(),
            static_cast<std::uint64_t>(this->kThreads) * kIncrements);
}

TYPED_TEST(LockSafety, ReadersNeverSeeTornUpdates) {
  // Writers keep a two-word invariant (a == b); readers check it. Any
  // torn observation is a safety violation of the lock protocol.
  struct alignas(64) Pair {
    htm::Shared<std::uint64_t> a;
    htm::Shared<std::uint64_t> b;
  };
  Pair p;
  std::uint64_t violations = 0;
  sim::Simulator sim;
  sim.run(this->kThreads, [&](int tid) {
    Rng rng(static_cast<std::uint64_t>(tid) + 1);
    for (int i = 0; i < 120; ++i) {
      if (tid % 2 == 0) {
        this->lock_->write(1, [&] {
          const std::uint64_t v = p.a.load() + 1;
          p.a.store(v);
          platform::advance(rng.next_below(400));  // widen the torn window
          p.b.store(v);
        });
      } else {
        this->lock_->read(0, [&] {
          const std::uint64_t a = p.a.load();
          platform::advance(rng.next_below(400));
          const std::uint64_t b = p.b.load();
          if (a != b) ++violations;
        });
      }
      platform::advance(rng.next_below(100));
    }
  });
  EXPECT_EQ(violations, 0u);
  EXPECT_EQ(p.a.raw_load(), p.b.raw_load());
}

TYPED_TEST(LockSafety, ReadersOverlapInVirtualTime) {
  // Two readers of duration D each, started together, must finish in far
  // less than 2*D of virtual time (readers admit each other).
  sim::Simulator sim;
  constexpr std::uint64_t kReaderCycles = 200000;
  sim.run(2, [&](int) {
    this->lock_->read(0, [&] { platform::advance(kReaderCycles); });
  });
  EXPECT_LT(sim.final_time(), kReaderCycles + kReaderCycles / 2);
}

// Writer serialization is verified systematically rather than by an ad-hoc
// loop here: tests/check/test_checker_locks.cpp drives every lock type
// through controlled schedules (bounded-exhaustive DFS and PCT) and checks
// the committed histories for lost updates and linearizability against the
// sequential rw-lock spec. (The previous WritersSerializeObservably test
// only asserted max_inside >= 1 — vacuously true — because speculative HTM
// attempts may legitimately overlap before aborting.)

TYPED_TEST(LockSafety, ReadWriteExclusionOnCommittedState) {
  // Readers snapshot a monotonically growing pair (seq, payload) where
  // payload == seq * 3; they must never read a mismatched pair.
  struct alignas(64) Versioned {
    htm::Shared<std::uint64_t> seq;
    htm::Shared<std::uint64_t> payload;
  };
  Versioned v;
  std::uint64_t violations = 0;
  sim::Simulator sim;
  sim.run(4, [&](int tid) {
    for (int i = 0; i < 200; ++i) {
      if (tid == 0) {
        this->lock_->write(1, [&] {
          const std::uint64_t s = v.seq.load() + 1;
          v.seq.store(s);
          platform::advance(150);
          v.payload.store(s * 3);
        });
      } else {
        this->lock_->read(0, [&] {
          const std::uint64_t s = v.seq.load();
          platform::advance(150);
          const std::uint64_t p = v.payload.load();
          if (p != s * 3) ++violations;
        });
      }
      platform::advance(30);
    }
  });
  EXPECT_EQ(violations, 0u);
}

TYPED_TEST(LockSafety, ExceptionFromReadSectionPropagates) {
  sim::Simulator sim;
  EXPECT_THROW(sim.run(1,
                       [&](int) {
                         this->lock_->read(0, [&] {
                           throw std::runtime_error("reader failed");
                         });
                       }),
               std::runtime_error);
}

TYPED_TEST(LockSafety, LockUsableAfterReaderException) {
  htm::Shared<std::uint64_t> x(0);
  sim::Simulator sim;
  sim.run(1, [&](int) {
    try {
      this->lock_->read(0, [&] { throw std::runtime_error("oops"); });
    } catch (const std::runtime_error&) {
    }
    // The lock must not be left in a state that blocks future sections.
    this->lock_->write(1, [&] { x.store(1); });
    this->lock_->read(0, [&] { EXPECT_EQ(x.load(), 1u); });
  });
  EXPECT_EQ(x.raw_load(), 1u);
}

TYPED_TEST(LockSafety, StatsCountEverySection) {
  sim::Simulator sim;
  sim.run(4, [&](int tid) {
    for (int i = 0; i < 25; ++i) {
      if (tid == 0) {
        this->lock_->write(1, [&] { platform::advance(10); });
      } else {
        this->lock_->read(0, [&] { platform::advance(10); });
      }
    }
  });
  const locks::LockStats s = this->lock_->stats();
  EXPECT_EQ(s.writes.total(), 25u);
  EXPECT_EQ(s.reads.total(), 75u);
  this->lock_->reset_stats();
  EXPECT_EQ(this->lock_->stats().reads.total(), 0u);
}

TYPED_TEST(LockSafety, MixedStressKeepsInvariant) {
  // Randomized mixed workload over an array with invariant sum == 0.
  // The run is deterministic given the seed; failures print the standard
  // replay line (tests/support/seed_replay.h).
  const std::uint64_t seed = fault::env_seed(3);
  SCOPED_TRACE(testutil::seed_replay(seed));
  struct alignas(64) Slot {
    htm::Shared<std::int64_t> v;
  };
  std::vector<Slot> slots(16);
  std::uint64_t violations = 0;
  sim::Simulator sim;
  sim.run(this->kThreads, [&](int tid) {
    Rng rng(static_cast<std::uint64_t>(tid) * 977 + seed);
    for (int i = 0; i < 150; ++i) {
      if (rng.next_bool(0.3)) {
        const auto a = static_cast<std::size_t>(rng.next_below(16));
        auto b = static_cast<std::size_t>(rng.next_below(16));
        if (b == a) b = (b + 1) % 16;
        const auto amt = static_cast<std::int64_t>(rng.next_below(50));
        this->lock_->write(1, [&] {
          slots[a].v.store(slots[a].v.load() - amt);
          platform::advance(rng.next_below(100));
          slots[b].v.store(slots[b].v.load() + amt);
        });
      } else {
        this->lock_->read(0, [&] {
          std::int64_t sum = 0;
          for (auto& s : slots) sum += s.v.load();
          if (sum != 0) ++violations;
        });
      }
      platform::advance(rng.next_below(60));
    }
  });
  EXPECT_EQ(violations, 0u);
  std::int64_t total = 0;
  for (auto& s : slots) total += s.v.raw_load();
  EXPECT_EQ(total, 0);
}

// Real preemptive threads: smaller but genuinely concurrent (on multicore
// hosts) safety check for every lock type.
TYPED_TEST(LockSafety, RealThreadStress) {
  const std::uint64_t seed = fault::env_seed(42);
  SCOPED_TRACE(testutil::seed_replay(seed));
  htm::Shared<std::uint64_t> counter(0);
  std::atomic<std::uint64_t> torn{0};
  struct alignas(64) Pair {
    htm::Shared<std::uint64_t> a, b;
  };
  Pair p;
  sim::run_real_threads(4, [&](int tid) {
    Rng rng(static_cast<std::uint64_t>(tid) + seed);
    for (int i = 0; i < 300; ++i) {
      if (tid % 2 == 0) {
        this->lock_->write(1, [&] {
          counter.store(counter.load() + 1);
          const std::uint64_t v = p.a.load() + 1;
          p.a.store(v);
          p.b.store(v);
        });
      } else {
        this->lock_->read(0, [&] {
          if (p.a.load() != p.b.load()) torn.fetch_add(1);
        });
      }
    }
  });
  EXPECT_EQ(counter.raw_load(), 600u);
  EXPECT_EQ(torn.load(), 0u);
}

}  // namespace
}  // namespace sprwl
