// MCS-RW specifics beyond the generic typed safety suite: FIFO fairness and
// the reader-cascade admission the queue-based design is known for.
#include "locks/mcs_rwlock.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/platform.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace sprwl::locks {
namespace {

TEST(McsRWLock, FifoOrderAmongWriters) {
  McsRWLock lock{8};
  std::vector<int> order;
  sim::Simulator sim;
  sim.run(6, [&](int tid) {
    platform::advance(static_cast<std::uint64_t>(tid) * 1000 + 1);
    lock.write(1, [&] {
      order.push_back(tid);
      platform::advance(5000);  // force queueing of later arrivals
    });
  });
  ASSERT_EQ(order.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(McsRWLock, ReaderBehindWriterWaitsItsTurn) {
  McsRWLock lock{4};
  std::uint64_t reader_entered = 0;
  std::uint64_t writer_done = 0;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      lock.write(1, [&] { platform::advance(40000); });
      writer_done = platform::now();
    } else {
      platform::advance(2000);
      lock.read(0, [&] { reader_entered = platform::now(); });
    }
  });
  EXPECT_GE(reader_entered, writer_done - 1000);
}

TEST(McsRWLock, ReadersQueuedBehindWriterEnterTogether) {
  // Cascade: when the writer leaves, the whole batch of queued readers is
  // admitted back-to-back, not one per lock cycle.
  McsRWLock lock{8};
  std::vector<std::uint64_t> entered(8, 0);
  sim::Simulator sim;
  sim.run(8, [&](int tid) {
    if (tid == 0) {
      lock.write(1, [&] { platform::advance(50000); });
    } else {
      platform::advance(1000 + static_cast<std::uint64_t>(tid));
      lock.read(0, [&] {
        entered[static_cast<std::size_t>(tid)] = platform::now();
        platform::advance(20000);
      });
    }
  });
  std::uint64_t lo = ~0ULL, hi = 0;
  for (int t = 1; t < 8; ++t) {
    lo = std::min(lo, entered[static_cast<std::size_t>(t)]);
    hi = std::max(hi, entered[static_cast<std::size_t>(t)]);
  }
  EXPECT_GE(lo, 50000u);       // none before the writer finished
  EXPECT_LT(hi - lo, 20000u);  // all admitted within one reader duration
}

TEST(McsRWLock, WriterAfterReadersWaitsForAll) {
  McsRWLock lock{4};
  std::uint64_t writer_entered = 0;
  sim::Simulator sim;
  sim.run(4, [&](int tid) {
    if (tid == 3) {
      platform::advance(500);
      lock.write(1, [&] { writer_entered = platform::now(); });
    } else {
      lock.read(0, [&] { platform::advance(30000); });
    }
  });
  EXPECT_GE(writer_entered, 30000u);
}

TEST(McsRWLock, AlternatingStress) {
  McsRWLock lock{8};
  struct alignas(64) Pair {
    std::uint64_t a = 0, b = 0;  // plain: protected purely by the lock
  };
  Pair p;
  std::uint64_t torn = 0;
  sim::Simulator sim;
  sim.run(8, [&](int tid) {
    Rng rng(static_cast<std::uint64_t>(tid) * 13 + 1);
    for (int i = 0; i < 200; ++i) {
      if (rng.next_bool(0.3)) {
        lock.write(1, [&] {
          ++p.a;
          platform::advance(rng.next_below(200));
          ++p.b;
        });
      } else {
        lock.read(0, [&] {
          const std::uint64_t a = p.a;
          platform::advance(rng.next_below(200));
          if (p.b != a) ++torn;
        });
      }
      platform::advance(rng.next_below(100));
    }
  });
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(p.a, p.b);
}

TEST(McsRWLock, RealThreadStress) {
  McsRWLock lock{4};
  std::uint64_t counter = 0;
  sim::run_real_threads(4, [&](int) {
    for (int i = 0; i < 2000; ++i) {
      lock.write(1, [&] { ++counter; });
      lock.read(0, [&] { (void)counter; });
    }
  });
  EXPECT_EQ(counter, 8000u);
}

}  // namespace
}  // namespace sprwl::locks
