#include "locks/sgl.h"

#include <gtest/gtest.h>

#include "common/platform.h"
#include "htm/engine.h"
#include "sim/simulator.h"

namespace sprwl::locks {
namespace {

TEST(SglLock, BasicLockUnlock) {
  ThreadIdScope tid(0);
  SglLock gl;
  EXPECT_FALSE(gl.is_locked());
  EXPECT_EQ(gl.version(), 0u);
  gl.lock();
  EXPECT_TRUE(gl.is_locked());
  gl.unlock();
  EXPECT_FALSE(gl.is_locked());
  EXPECT_EQ(gl.version(), 1u);  // one full acquire/release cycle
}

TEST(SglLock, TryLock) {
  ThreadIdScope tid(0);
  SglLock gl;
  EXPECT_TRUE(gl.try_lock());
  EXPECT_FALSE(gl.try_lock());
  gl.unlock();
  EXPECT_TRUE(gl.try_lock());
  gl.unlock();
  EXPECT_EQ(gl.version(), 2u);
}

TEST(SglLock, VersionCountsAcquisitions) {
  ThreadIdScope tid(0);
  SglLock gl;
  for (int i = 0; i < 10; ++i) {
    gl.lock();
    gl.unlock();
  }
  EXPECT_EQ(gl.version(), 10u);
}

TEST(SglLock, MutualExclusionUnderFibers) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  SglLock gl;
  int inside = 0;
  int max_inside = 0;
  sim::Simulator sim;
  sim.run(8, [&](int) {
    for (int i = 0; i < 50; ++i) {
      gl.lock();
      max_inside = std::max(max_inside, ++inside);
      platform::advance(100);
      --inside;
      gl.unlock();
      platform::advance(50);
    }
  });
  EXPECT_EQ(max_inside, 1);
  EXPECT_EQ(gl.version(), 400u);
}

TEST(SglLock, SubscriptionAbortsTransactionOnAcquire) {
  // A transaction that subscribed (read is_locked()) must fail its commit
  // if the lock was acquired afterwards — the TLE safety property.
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  SglLock gl;
  htm::Shared<std::uint64_t> data;
  sim::Simulator sim;
  htm::TxStatus status;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      status = engine.try_transaction([&] {
        if (gl.is_locked()) engine.abort_tx(1);
        data.store(42);
        platform::advance(10000);
      });
    } else {
      platform::advance(2000);
      gl.lock();
      platform::advance(100);
      gl.unlock();
    }
  });
  EXPECT_FALSE(status.committed());
  EXPECT_EQ(status.cause, htm::AbortCause::kConflict);
  EXPECT_EQ(data.raw_load(), 0u);
}

}  // namespace
}  // namespace sprwl::locks
