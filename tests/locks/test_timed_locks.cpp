// The deadline-aware acquisition API (try_read_for / try_write_for)
// across the lock family: entry validation (checked_deadline), the
// kNoDeadline budget behaving exactly like the untimed entry points, real
// timeouts under a held lock with full unwind, and the concept gating
// which locks participate at all.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "core/bravo.h"
#include "core/sprwl.h"
#include "common/platform.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "locks/deadline.h"
#include "locks/rwlock_concept.h"
#include "sim/simulator.h"

#include "lock_test_utils.h"

namespace sprwl::locks {
namespace {

// Which locks model cancellation is a compile-time contract: consumers
// (the checker's timed workloads, the tail-latency bench) gate on the
// concept instead of assuming it. MCS-RW is deliberately out — its queue
// node cannot be abandoned without an abortable-MCS protocol (DESIGN.md
// §13) — but remains a full RegionRWLock.
static_assert(TimedRegionRWLock<core::SpRWLock>);
static_assert(TimedRegionRWLock<PosixRWLock>);
static_assert(TimedRegionRWLock<BRLock>);
static_assert(TimedRegionRWLock<PhaseFairRWLock>);
static_assert(TimedRegionRWLock<PassiveRWLock>);
static_assert(TimedRegionRWLock<TLELock>);
static_assert(TimedRegionRWLock<RWLELock>);
static_assert(!TimedRegionRWLock<McsRWLock>);
static_assert(RegionRWLock<McsRWLock>);

template <class Lock>
class TimedLocks : public ::testing::Test {};
using TimedLockTypes =
    ::testing::Types<PosixRWLock, BRLock, PhaseFairRWLock, PassiveRWLock,
                     TLELock, RWLELock, core::SpRWLock>;
TYPED_TEST_SUITE(TimedLocks, TimedLockTypes);

// checked_tid convention for deadlines: a zero budget is a caller bug
// (try-lock semantics belong to an explicit API, not a degenerate
// deadline) and is rejected loudly at entry, before any lock state is
// touched — the body must never run.
TYPED_TEST(TimedLocks, ZeroBudgetRejectedAtEntry) {
  htm::Engine engine;
  htm::EngineScope scope(engine);
  auto lock = testutil::make_lock<TypeParam>(2);
  sim::Simulator sim;
  sim.run(1, [&](int) {
    bool ran = false;
    EXPECT_THROW(lock->try_read_for(0, 0, [&] { ran = true; }),
                 std::invalid_argument);
    EXPECT_THROW(lock->try_write_for(1, 0, [&] { ran = true; }),
                 std::invalid_argument);
    EXPECT_FALSE(ran);
  });
}

// A budget that would wrap the virtual clock must not silently become a
// deadline in the past.
TYPED_TEST(TimedLocks, OverflowingBudgetRejectedAtEntry) {
  htm::Engine engine;
  htm::EngineScope scope(engine);
  auto lock = testutil::make_lock<TypeParam>(2);
  sim::Simulator sim;
  sim.run(1, [&](int) {
    platform::advance(64);  // now() > 0, so ~0-1 cannot fit
    bool ran = false;
    EXPECT_THROW(lock->try_read_for(0, ~std::uint64_t{0} - 1,
                                    [&] { ran = true; }),
                 std::invalid_argument);
    EXPECT_THROW(lock->try_write_for(1, ~std::uint64_t{0} - 1,
                                     [&] { ran = true; }),
                 std::invalid_argument);
    EXPECT_FALSE(ran);
  });
}

// The kNoDeadline budget is the untimed path (every expiry check is a
// not-taken branch on a free clock read): always kAcquired, body runs.
TYPED_TEST(TimedLocks, NoDeadlineBudgetAcquiresLikeUntimed) {
  htm::Engine engine;
  htm::EngineScope scope(engine);
  auto lock = testutil::make_lock<TypeParam>(2);
  sim::Simulator sim;
  sim.run(1, [&](int) {
    int reads = 0, writes = 0;
    EXPECT_EQ(lock->try_write_for(1, kNoDeadline, [&] { ++writes; }),
              AcquireResult::kAcquired);
    EXPECT_EQ(lock->try_read_for(0, kNoDeadline, [&] { ++reads; }),
              AcquireResult::kAcquired);
    EXPECT_EQ(reads, 1);
    EXPECT_EQ(writes, 1);
  });
}

TYPED_TEST(TimedLocks, GenerousBudgetAcquiresUncontended) {
  htm::Engine engine;
  htm::EngineScope scope(engine);
  auto lock = testutil::make_lock<TypeParam>(2);
  sim::Simulator sim;
  sim.run(1, [&](int) {
    int ran = 0;
    EXPECT_EQ(lock->try_read_for(0, 10'000'000, [&] { ++ran; }),
              AcquireResult::kAcquired);
    EXPECT_EQ(lock->try_write_for(1, 10'000'000, [&] { ++ran; }),
              AcquireResult::kAcquired);
    EXPECT_EQ(ran, 2);
  });
}

// Pessimistic baselines, where "the lock is held" is unambiguous: a
// writer parks inside the section for 500k cycles while a timed reader
// and a timed writer (20k budgets) must report kTimeout — and the unwind
// must be complete, proven by the same threads then acquiring untimed.
// A leaked waiter count (PosixRWLock's writers_waiting_, PhaseFair's
// rin/wout protocol words, PRWL's writer_present_) would wedge those
// follow-up acquisitions and trip the simulator's time watchdog instead.
template <class Lock>
class PessimisticTimed : public ::testing::Test {};
using PessimisticTimedTypes =
    ::testing::Types<PosixRWLock, BRLock, PhaseFairRWLock, PassiveRWLock>;
TYPED_TEST_SUITE(PessimisticTimed, PessimisticTimedTypes);

TYPED_TEST(PessimisticTimed, TimeoutUnderHeldWriteLockThenCleanReacquire) {
  auto lock = testutil::make_lock<TypeParam>(3);
  struct alignas(64) Cell {
    htm::Shared<std::uint64_t> v;
  };
  Cell cell;
  int read_timeouts = 0, write_timeouts = 0;
  int late_reads = 0, late_writes = 0;
  sim::Simulator sim;
  sim.run(3, [&](int tid) {
    if (tid == 0) {
      lock->write(1, [&] {
        cell.v.store(1);
        platform::advance(500'000);
      });
    } else if (tid == 1) {
      platform::wait_until(10'000);  // holder is certainly inside by now
      if (lock->try_read_for(0, 20'000, [] {}) == AcquireResult::kTimeout) {
        ++read_timeouts;
      }
      // Unwind proof: the untimed read must go through once released. The
      // other thread's late write may or may not have landed yet, so only
      // the holder's store is certain.
      lock->read(0, [&] { late_reads += cell.v.load() >= 1 ? 1 : 0; });
    } else {
      platform::wait_until(10'000);
      if (lock->try_write_for(1, 20'000, [] {}) == AcquireResult::kTimeout) {
        ++write_timeouts;
      }
      lock->write(1, [&] {
        cell.v.store(cell.v.load() + 1);
        ++late_writes;
      });
    }
  });
  EXPECT_EQ(read_timeouts, 1);
  EXPECT_EQ(write_timeouts, 1);
  EXPECT_EQ(late_reads, 1);
  EXPECT_EQ(late_writes, 1);
  EXPECT_EQ(cell.v.raw_load(), 2u);
}

// The deadline-keyed wakeup (locks::deadline_pause): a spin whose expiry
// would land mid-pause sleeps on a simulator wakeup to exactly the
// deadline, so the caller's next expiry check observes now == deadline
// precisely — not the next multiple of g_costs.pause past it. Exact
// virtual-time regression: each equality below fails if the wait is
// quantized back to whole pauses.
TEST(DeadlineWakeup, PauseLoopExpiresAtExactVirtualTime) {
  sim::Simulator sim;
  sim.run(1, [&](int) {
    // Budget 103 = 2 full pauses (80) + a 23-cycle tail: the tail must be
    // slept exactly, not rounded up to 120.
    std::uint64_t d = platform::now() + 103;
    while (!deadline_expired(d)) deadline_pause(d);
    EXPECT_EQ(platform::now(), d);
    // A budget that IS a multiple of the pause cost also lands exactly.
    d = platform::now() + 2 * g_costs.pause;
    while (!deadline_expired(d)) deadline_pause(d);
    EXPECT_EQ(platform::now(), d);
    // kNoDeadline compiles to the plain pause — one pause charge plus the
    // simulator's deterministic 0..15-cycle spin jitter (simulator.cpp),
    // never a timed wakeup — so untimed traces stay byte-identical.
    const std::uint64_t t0 = platform::now();
    deadline_pause(kNoDeadline);
    EXPECT_GE(platform::now(), t0 + g_costs.pause);
    EXPECT_LT(platform::now(), t0 + g_costs.pause + 16);
  });
}

// The same property end to end through SglLock::lock_until: a waiter
// blocked on a held lock times out within one lock-word load of its
// deadline — the expiry is discovered either by the load right after the
// exact-deadline wakeup, or by a load that itself crossed the deadline —
// never a whole pause quantum late, which is what this pins down.
TEST(DeadlineWakeup, SglLockUntilTimesOutAtExactDeadline) {
  SglLock gl;
  std::uint64_t observed = 0, deadline = 0;
  bool acquired = true;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      EXPECT_TRUE(gl.lock_until(kNoDeadline));
      platform::advance(500'000);
      gl.unlock();
    } else {
      platform::wait_until(10'000);  // the holder is certainly inside
      deadline = platform::now() + 1'003;
      acquired = gl.lock_until(deadline);
      observed = platform::now();
    }
  });
  EXPECT_FALSE(acquired);
  EXPECT_GE(observed, deadline);
  EXPECT_LE(observed, deadline + g_costs.load)
      << "timeout drifted off the deadline-keyed wakeup";
}

// Concurrency stress on REAL threads (the TSan CI leg: -R
// 'TimeoutRealThread'): timed readers with an always-expiring budget and a
// comfortable one racing writer revocations over the bravo table, under
// actual preemption. Every unwind races a concurrent revocation drain; at
// the end no tracking state and no table slot may survive.
TEST(TimeoutRealThread, StressTimedReadersVsRevocationsLeaveNoResidue) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  bravo::ReaderTable::Config tc;
  tc.max_threads = 8;
  auto table = std::make_shared<bravo::ReaderTable>(tc);
  core::Config cfg;
  cfg.max_threads = 8;
  cfg.reader_htm_first = false;
  cfg.bravo_bias = true;
  cfg.bravo_table = table;
  cfg.bravo_rebias_reads = 4;
  cfg.bravo_rebias_cooldown = 1.0;
  core::SpRWLock lock{cfg};
  struct alignas(64) Pair {
    htm::Shared<std::uint64_t> a, b;
  };
  Pair p;
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> commits{0};
  std::atomic<std::uint64_t> timeouts{0};
  sim::run_real_threads(8, [&](int tid) {
    for (int i = 0; i < 200; ++i) {
      if (tid % 4 == 0) {
        const auto r = lock.try_write_for(1, i % 2 ? 1 : 400'000'000, [&] {
          const std::uint64_t v = p.a.load() + 1;
          p.a.store(v);
          p.b.store(v);
        });
        if (r == locks::AcquireResult::kAcquired) {
          commits.fetch_add(1);
        } else {
          timeouts.fetch_add(1);
        }
      } else {
        // Budget 1 expires before the first expiry check can pass: the
        // occupy-expire-release unwind runs even uncontended, every time.
        const auto r = lock.try_read_for(0, i % 2 ? 1 : 400'000'000, [&] {
          if (p.a.load() != p.b.load()) torn.fetch_add(1);
        });
        if (r != locks::AcquireResult::kAcquired) timeouts.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(p.a.raw_load(), commits.load());
  EXPECT_EQ(p.a.raw_load(), p.b.raw_load());
  EXPECT_GT(timeouts.load(), 0u);
  EXPECT_TRUE(lock.tracking_quiescent()) << "phantom reader state";
  EXPECT_TRUE(table->all_slots_empty_raw()) << "leaked ReaderTable slot";
}

}  // namespace
}  // namespace sprwl::locks
