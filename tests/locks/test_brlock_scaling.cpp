// BRLock's defining asymmetry, measured in virtual time: read cost is
// independent of the thread count (one private mutex), write cost grows
// linearly with it (acquire them all).
#include <gtest/gtest.h>

#include "common/platform.h"
#include "locks/brlock.h"
#include "sim/simulator.h"

namespace sprwl::locks {
namespace {

std::uint64_t solo_read_cost(int max_threads) {
  BRLock lock{max_threads};
  std::uint64_t cost = 0;
  sim::Simulator sim;
  sim.run(1, [&](int) {
    const std::uint64_t t0 = platform::now();
    lock.read(0, [] {});
    cost = platform::now() - t0;
  });
  return cost;
}

std::uint64_t solo_write_cost(int max_threads) {
  BRLock lock{max_threads};
  std::uint64_t cost = 0;
  sim::Simulator sim;
  sim.run(1, [&](int) {
    const std::uint64_t t0 = platform::now();
    lock.write(1, [] {});
    cost = platform::now() - t0;
  });
  return cost;
}

TEST(BRLockScaling, ReadCostIndependentOfThreadCount) {
  EXPECT_EQ(solo_read_cost(2), solo_read_cost(64));
}

TEST(BRLockScaling, WriteCostLinearInThreadCount) {
  const std::uint64_t w2 = solo_write_cost(2);
  const std::uint64_t w64 = solo_write_cost(64);
  // 64 per-thread mutexes instead of 2: roughly 32x the lock traffic.
  EXPECT_GT(w64, w2 * 8);
  EXPECT_LT(w64, w2 * 64);
}

TEST(BRLockScaling, ReadersUndisturbedByOtherReaders) {
  // 16 concurrent readers finish in ~one section of virtual time.
  BRLock lock{16};
  sim::Simulator sim;
  constexpr std::uint64_t kSection = 50'000;
  sim.run(16, [&](int) {
    lock.read(0, [&] { platform::advance(kSection); });
  });
  EXPECT_LT(sim.final_time(), kSection + kSection / 2);
}

}  // namespace
}  // namespace sprwl::locks
