// Shared helpers for the lock test suites: uniform construction of every
// lock type in the library, so safety properties can be checked with typed
// test suites across the whole family.
#pragma once

#include <memory>

#include "core/sprwl.h"
#include "locks/brlock.h"
#include "locks/mcs_rwlock.h"
#include "locks/passive_rwlock.h"
#include "locks/phase_fair.h"
#include "locks/posix_rwlock.h"
#include "locks/rwle.h"
#include "locks/tle.h"

namespace sprwl::testutil {

template <class Lock>
std::unique_ptr<Lock> make_lock(int max_threads);

template <>
inline std::unique_ptr<locks::PosixRWLock> make_lock(int max_threads) {
  return std::make_unique<locks::PosixRWLock>(max_threads);
}
template <>
inline std::unique_ptr<locks::BRLock> make_lock(int max_threads) {
  return std::make_unique<locks::BRLock>(max_threads);
}
template <>
inline std::unique_ptr<locks::PhaseFairRWLock> make_lock(int max_threads) {
  return std::make_unique<locks::PhaseFairRWLock>(max_threads);
}
template <>
inline std::unique_ptr<locks::PassiveRWLock> make_lock(int max_threads) {
  return std::make_unique<locks::PassiveRWLock>(max_threads);
}
template <>
inline std::unique_ptr<locks::McsRWLock> make_lock(int max_threads) {
  return std::make_unique<locks::McsRWLock>(max_threads);
}
template <>
inline std::unique_ptr<locks::TLELock> make_lock(int max_threads) {
  locks::TLELock::Config cfg;
  cfg.max_threads = max_threads;
  return std::make_unique<locks::TLELock>(cfg);
}
template <>
inline std::unique_ptr<locks::RWLELock> make_lock(int max_threads) {
  locks::RWLELock::Config cfg;
  cfg.max_threads = max_threads;
  return std::make_unique<locks::RWLELock>(cfg);
}
template <>
inline std::unique_ptr<core::SpRWLock> make_lock(int max_threads) {
  core::Config cfg;
  cfg.max_threads = max_threads;
  return std::make_unique<core::SpRWLock>(cfg);
}

using AllLockTypes =
    ::testing::Types<locks::PosixRWLock, locks::BRLock, locks::PhaseFairRWLock,
                     locks::PassiveRWLock, locks::McsRWLock, locks::TLELock,
                     locks::RWLELock, core::SpRWLock>;

}  // namespace sprwl::testutil
