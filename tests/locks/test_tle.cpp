#include "locks/tle.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/platform.h"
#include "htm/shared.h"
#include "sim/simulator.h"

namespace sprwl::locks {
namespace {

struct alignas(64) Cell {
  htm::Shared<std::uint64_t> v;
};

TLELock::Config config(int threads, int retries = 10) {
  TLELock::Config c;
  c.max_threads = threads;
  c.max_retries = retries;
  return c;
}

TEST(TLE, ShortSectionsCommitInHardware) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  ThreadIdScope tid(0);
  TLELock lock{config(1)};
  Cell x;
  sim::Simulator sim;
  sim.run(1, [&](int) {
    for (int i = 0; i < 100; ++i) {
      lock.write(1, [&] { x.v.store(x.v.load() + 1); });
      lock.read(0, [&] { (void)x.v.load(); });
    }
  });
  const LockStats s = lock.stats();
  EXPECT_EQ(s.writes.htm, 100u);
  EXPECT_EQ(s.reads.htm, 100u);
  EXPECT_EQ(s.writes.gl + s.reads.gl, 0u);
}

TEST(TLE, CapacityAbortActivatesFallbackImmediately) {
  htm::EngineConfig ecfg;
  ecfg.capacity = htm::CapacityProfile{"tiny", 8, 8};
  htm::Engine engine(ecfg);
  htm::EngineScope scope(engine);
  TLELock lock{config(1)};
  std::vector<Cell> cells(32);
  sim::Simulator sim;
  sim.run(1, [&](int) {
    lock.read(0, [&] {
      for (auto& c : cells) (void)c.v.load();
    });
  });
  // The paper's retry policy: capacity -> fallback without retries.
  EXPECT_EQ(engine.stats().aborts_capacity, 1u);
  EXPECT_EQ(lock.stats().reads.gl, 1u);
}

TEST(TLE, ExhaustedRetriesFallBack) {
  // Force persistent conflicts: a long writer transaction is repeatedly
  // invalidated by strong-isolation stores from a second fiber.
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  TLELock lock{config(2, 3)};
  Cell shared_cell;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      lock.write(1, [&] {
        const std::uint64_t v = shared_cell.v.load();
        platform::advance(20000);  // long window
        shared_cell.v.store(v + 1);
      });
    } else {
      // Hammer the cell with plain stores until tid 0 gave up on HTM.
      for (int i = 0; i < 40; ++i) {
        shared_cell.v.store(1000 + static_cast<std::uint64_t>(i));
        platform::advance(3000);
      }
    }
  });
  EXPECT_EQ(lock.stats().writes.gl, 1u);
  EXPECT_GE(engine.stats().aborts_conflict, 1u);
}

TEST(TLE, FallbackExcludesHardwareTransactions) {
  // Writers exceed write capacity (2 padded cells > 1 line) and always run
  // under the fallback lock; readers elide in HTM. Subscription must keep
  // the elided readers from observing the fallback writer's torn state.
  htm::EngineConfig ecfg;
  ecfg.capacity = htm::CapacityProfile{"tiny", 16, 1};
  htm::Engine engine(ecfg);
  htm::EngineScope scope(engine);
  TLELock lock{config(4)};
  Cell a, b;  // separate cache lines
  std::uint64_t torn = 0;
  sim::Simulator sim;
  sim.run(4, [&](int tid) {
    for (int i = 0; i < 80; ++i) {
      if (tid == 0) {
        lock.write(1, [&] {
          const std::uint64_t v = a.v.load() + 1;
          a.v.store(v);
          platform::advance(500);
          b.v.store(v);
        });
      } else {
        lock.read(0, [&] {
          const std::uint64_t x = a.v.load();
          platform::advance(300);
          if (b.v.load() != x) ++torn;
        });
      }
      platform::advance(100);
    }
  });
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(lock.stats().writes.gl, 80u);
  EXPECT_EQ(a.v.raw_load(), 80u);
  EXPECT_EQ(b.v.raw_load(), 80u);
}

}  // namespace
}  // namespace sprwl::locks
