#include "locks/rwle.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/platform.h"
#include "htm/shared.h"
#include "sim/simulator.h"

namespace sprwl::locks {
namespace {

struct alignas(64) Cell {
  htm::Shared<std::uint64_t> v;
};

RWLELock::Config config(int threads) {
  RWLELock::Config c;
  c.max_threads = threads;
  return c;
}

TEST(RWLE, ReadersAreUninstrumented) {
  htm::EngineConfig ecfg;
  ecfg.capacity = htm::CapacityProfile{"tiny", 4, 4};
  htm::Engine engine(ecfg);
  htm::EngineScope scope(engine);
  RWLELock lock{config(1)};
  std::vector<Cell> cells(32);
  sim::Simulator sim;
  sim.run(1, [&](int) {
    lock.read(0, [&] {
      for (auto& c : cells) (void)c.v.load();  // way beyond capacity
    });
  });
  EXPECT_EQ(lock.stats().reads.unins, 1u);
  EXPECT_EQ(engine.stats().aborts_capacity, 0u);  // readers never enter HTM
}

TEST(RWLE, ShortWritersCommitInHtm) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  ThreadIdScope tid(0);
  RWLELock lock{config(1)};
  Cell x;
  sim::Simulator sim;
  sim.run(1, [&](int) {
    for (int i = 0; i < 50; ++i) {
      lock.write(1, [&] { x.v.store(x.v.load() + 1); });
    }
  });
  EXPECT_EQ(lock.stats().writes.htm, 50u);
  EXPECT_EQ(x.v.raw_load(), 50u);
}

TEST(RWLE, CapacityWritersUseRot) {
  // Writers beyond plain-HTM read capacity but within the ROT's
  // write-buffer limits must commit as ROTs, like on POWER8.
  htm::EngineConfig ecfg;
  ecfg.capacity = htm::CapacityProfile{"tiny", 8, 64};
  htm::Engine engine(ecfg);
  htm::EngineScope scope(engine);
  RWLELock lock{config(1)};
  std::vector<Cell> cells(32);
  sim::Simulator sim;
  sim.run(1, [&](int) {
    lock.write(1, [&] {
      for (auto& c : cells) c.v.store(c.v.load() + 1);  // reads > 8 lines
    });
  });
  EXPECT_EQ(lock.stats().writes.rot, 1u);
  for (auto& c : cells) EXPECT_EQ(c.v.raw_load(), 1u);
}

TEST(RWLE, RotWriterWaitsForOverlappingReader) {
  // The quiescence property: a ROT writer must not publish while a reader
  // that started before the publish is still active.
  htm::EngineConfig ecfg;
  ecfg.capacity = htm::CapacityProfile{"tiny", 4, 64};  // writers -> ROT
  htm::Engine engine(ecfg);
  htm::EngineScope scope(engine);
  RWLELock lock{config(2)};
  std::vector<Cell> cells(8);
  std::uint64_t reader_sum = ~0ULL;
  std::uint64_t writer_done_at = 0;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {  // long reader starts first
      lock.read(0, [&] {
        std::uint64_t sum = 0;
        for (auto& c : cells) {
          sum += c.v.load();
          platform::advance(8000);
        }
        reader_sum = sum;
      });
    } else {  // writer arrives mid-reader
      platform::advance(10000);
      lock.write(1, [&] {
        for (auto& c : cells) c.v.store(c.v.load() + 1);
      });
      writer_done_at = platform::now();
    }
  });
  EXPECT_EQ(reader_sum, 0u);             // all-old snapshot
  EXPECT_GE(writer_done_at, 60000u);     // writer quiesced past the reader
  for (auto& c : cells) EXPECT_EQ(c.v.raw_load(), 1u);
}

TEST(RWLE, WriterLatencyGrowsWithReaderChurn) {
  // The paper's key observation: RW-LE writers pay quiescence proportional
  // to reader activity; with long churning readers, writer latency is far
  // above the critical-section length.
  htm::EngineConfig ecfg;
  ecfg.capacity = htm::CapacityProfile{"tiny", 4, 64};
  htm::Engine engine(ecfg);
  htm::EngineScope scope(engine);
  RWLELock lock{config(4)};
  Cell x;
  std::uint64_t writer_total = 0;
  int writes = 0;
  sim::Simulator sim;
  sim.run(4, [&](int tid) {
    if (tid == 0) {
      for (int i = 0; i < 10; ++i) {
        const std::uint64_t t0 = platform::now();
        lock.write(1, [&] { x.v.store(x.v.load() + 1); });
        writer_total += platform::now() - t0;
        ++writes;
        platform::advance(500);
      }
    } else {
      for (int i = 0; i < 60; ++i) {
        lock.read(0, [&] { platform::advance(5000); });
        platform::advance(200);
      }
    }
  });
  EXPECT_EQ(writes, 10);
  EXPECT_EQ(x.v.raw_load(), 10u);
  // Mean writer latency far exceeds the ~100-cycle critical section.
  EXPECT_GT(writer_total / 10, 3000u);
}

TEST(RWLE, TornFreeUnderMixedStress) {
  htm::EngineConfig ecfg;
  ecfg.capacity = htm::CapacityProfile{"tiny", 6, 64};
  htm::Engine engine(ecfg);
  htm::EngineScope scope(engine);
  RWLELock lock{config(8)};
  struct alignas(64) Pair {
    htm::Shared<std::uint64_t> a, b;
  };
  Pair p;
  std::uint64_t torn = 0;
  sim::Simulator sim;
  sim.run(8, [&](int tid) {
    Rng rng(static_cast<std::uint64_t>(tid) + 9);
    for (int i = 0; i < 100; ++i) {
      if (tid % 2 == 0) {
        lock.write(1, [&] {
          const std::uint64_t v = p.a.load() + 1;
          p.a.store(v);
          platform::advance(rng.next_below(300));
          p.b.store(v);
        });
      } else {
        lock.read(0, [&] {
          const std::uint64_t a = p.a.load();
          platform::advance(rng.next_below(300));
          if (p.b.load() != a) ++torn;
        });
      }
      platform::advance(rng.next_below(100));
    }
  });
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(p.a.raw_load(), 400u);
  EXPECT_EQ(p.a.raw_load(), p.b.raw_load());
}

}  // namespace
}  // namespace sprwl::locks
