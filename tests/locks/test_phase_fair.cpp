#include "locks/phase_fair.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/platform.h"
#include "locks/passive_rwlock.h"
#include "sim/simulator.h"

namespace sprwl::locks {
namespace {

TEST(PhaseFair, WriterWaitsForAtMostOneReaderPhase) {
  // Phase-fairness: with a continuous stream of readers, an arriving
  // writer is admitted after the in-flight readers finish — it is not
  // starved by the readers that keep arriving behind it.
  PhaseFairRWLock lock{8};
  std::uint64_t writer_entered_at = 0;
  sim::Simulator sim;
  sim.run(8, [&](int tid) {
    if (tid == 0) {
      platform::advance(5000);
      const std::uint64_t t0 = platform::now();
      lock.write(1, [&] { writer_entered_at = platform::now(); });
      (void)t0;
    } else {
      for (int i = 0; i < 100; ++i) {
        lock.read(0, [&] { platform::advance(2000); });
        platform::advance(50);
      }
    }
  });
  // Readers churn for ~200k cycles; a starving writer would enter at the
  // end. Phase-fairness admits it after roughly one reader phase.
  EXPECT_LT(writer_entered_at, 30000u);
}

TEST(PhaseFair, ReadersBetweenConsecutiveWriters) {
  // After a writer completes, waiting readers enter before the next
  // queued writer (the alternation phase-fair locks guarantee).
  PhaseFairRWLock lock{4};
  std::vector<int> order;
  sim::Simulator sim;
  sim.run(4, [&](int tid) {
    if (tid <= 1) {  // two writers, back to back
      platform::advance(static_cast<std::uint64_t>(tid) * 100);
      lock.write(1, [&] {
        order.push_back(100 + tid);
        platform::advance(20000);
      });
    } else {  // two readers arriving while writer 0 runs
      platform::advance(5000);
      lock.read(0, [&] {
        order.push_back(tid);
        platform::advance(1000);
      });
    }
  });
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 100);  // writer 0 first
  // Both readers run before the second writer.
  EXPECT_TRUE((order[1] == 2 || order[1] == 3));
  EXPECT_TRUE((order[2] == 2 || order[2] == 3));
  EXPECT_EQ(order[3], 101);
}

TEST(PhaseFair, ReadersRunConcurrently) {
  PhaseFairRWLock lock{4};
  sim::Simulator sim;
  constexpr std::uint64_t kReader = 100000;
  sim.run(4, [&](int) {
    lock.read(0, [&] { platform::advance(kReader); });
  });
  EXPECT_LT(sim.final_time(), kReader * 2);
}

TEST(PassiveRWLock, WriterDrainsAllReadersFirst) {
  PassiveRWLock lock{4};
  std::uint64_t writer_entered_at = 0;
  std::uint64_t readers_done_at = 0;
  sim::Simulator sim;
  sim.run(4, [&](int tid) {
    if (tid == 0) {
      platform::advance(1000);
      lock.write(1, [&] { writer_entered_at = platform::now(); });
    } else {
      lock.read(0, [&] { platform::advance(30000); });
      readers_done_at = std::max(readers_done_at, platform::now());
    }
  });
  EXPECT_GE(writer_entered_at, 29000u);  // waited for the readers
}

TEST(PassiveRWLock, ReadersRetreatWhileWriterPresent) {
  PassiveRWLock lock{4};
  std::uint64_t reader_entered_at = 0;
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      lock.write(1, [&] { platform::advance(50000); });
    } else {
      platform::advance(5000);
      lock.read(0, [&] { reader_entered_at = platform::now(); });
    }
  });
  EXPECT_GE(reader_entered_at, 49000u);
}

}  // namespace
}  // namespace sprwl::locks
