// Determinism regression for the parallel bench runner: fanning data
// points across a worker pool must not change a single byte of bench
// output, and every per-point result (virtual end time included) must be
// bit-identical to the serial run. This is the contract that lets
// perf_pipeline's parallel mode publish the same figure data as serial.
#include "bench/support/runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/support/hashmap_fig.h"

namespace sprwl::bench {
namespace {

TEST(Runner, EmitsInSubmissionOrder) {
  Runner runner(4);
  std::string order;
  for (int i = 0; i < 16; ++i) {
    runner.submit([] {}, [&order, i] { order += static_cast<char>('a' + i); });
  }
  runner.drain();
  EXPECT_EQ(order, "abcdefghijklmnop");
}

TEST(Runner, EmitOnlyTasksInterleaveWithComputes) {
  Runner runner(3);
  std::string order;
  runner.submit({}, [&] { order += "H"; });  // header, no compute
  for (int i = 0; i < 3; ++i) {
    runner.submit([] {}, [&order] { order += "r"; });
  }
  runner.submit({}, [&] { order += "H"; });
  runner.submit([] {}, [&order] { order += "r"; });
  runner.drain();
  EXPECT_EQ(order, "HrrrHr");
}

TEST(Runner, SubmitTimedDeliversWallTimeInSubmissionOrder) {
  Runner runner(4);
  std::vector<double> wall;
  std::string order;
  for (int i = 0; i < 6; ++i) {
    runner.submit_timed(
        [] {
          volatile unsigned sink = 0;
          for (unsigned j = 0; j < 50'000; ++j) sink = sink + j;
        },
        [&, i](double ms) {
          order += static_cast<char>('a' + i);
          wall.push_back(ms);
        });
  }
  runner.drain();
  EXPECT_EQ(order, "abcdef");
  ASSERT_EQ(wall.size(), 6u);
  for (const double ms : wall) {
    EXPECT_GE(ms, 0.0);
    EXPECT_LT(ms, 60'000.0) << "wall time should be milliseconds, not ns";
  }
}

TEST(Runner, ComputeExceptionPropagatesAtDrain) {
  Runner runner(2);
  runner.submit([] { throw std::runtime_error("boom"); }, [] { FAIL(); });
  EXPECT_THROW(runner.drain(), std::runtime_error);
}

TEST(Runner, JobsFromEnvHonorsOverride) {
  ::setenv("SPRWL_BENCH_JOBS", "3", 1);
  EXPECT_EQ(Runner::jobs_from_env(), 3);
  ::setenv("SPRWL_BENCH_JOBS", "0", 1);
  EXPECT_GE(Runner::jobs_from_env(), 1);  // invalid: fall back to hardware
  ::unsetenv("SPRWL_BENCH_JOBS");
  EXPECT_GE(Runner::jobs_from_env(), 1);
}

// One reduced hash-map series (three locks, two thread counts) captured
// through SeriesOptions. Returns the concatenated rows plus each point's
// virtual end time.
struct SuiteCapture {
  std::string rows;
  std::vector<std::uint64_t> final_times;
};

SuiteCapture run_suite(int jobs, std::uint64_t seed) {
  SuiteCapture cap;
  SeriesOptions opt;
  opt.out = [&cap](const std::string& s) { cap.rows += s; };
  opt.observe = [&cap](const SeriesPoint& pt) {
    cap.final_times.push_back(pt.final_time);
  };
  const Machine m = broadwell_machine();
  HashmapFigParams p;
  p.seed = seed;
  p.population = 2048;
  p.key_space = 4096;
  p.buckets = 64;
  p.warmup_cycles = 20'000;
  p.measure_cycles = 100'000;
  const std::vector<int> threads{2, 4};
  Runner runner(jobs);
  hashmap_series(runner, "TLE", m, p, threads, make_tle(), opt);
  hashmap_series(runner, "RWL", m, p, threads, make_rwl(), opt);
  hashmap_series(runner, "SpRWL", m, p, threads, make_sprwl(), opt);
  runner.drain();
  return cap;
}

TEST(ParallelDeterminism, ParallelOutputByteIdenticalToSerialAcrossSeeds) {
  for (const std::uint64_t seed : {42u, 7u, 1234u}) {
    const SuiteCapture serial = run_suite(/*jobs=*/1, seed);
    const SuiteCapture parallel = run_suite(/*jobs=*/4, seed);
    ASSERT_FALSE(serial.rows.empty());
    EXPECT_EQ(serial.rows, parallel.rows) << "seed " << seed;
    EXPECT_EQ(serial.final_times, parallel.final_times) << "seed " << seed;
  }
}

TEST(ParallelDeterminism, RepeatedParallelRunsAgree) {
  const SuiteCapture a = run_suite(/*jobs=*/4, /*seed=*/42);
  const SuiteCapture b = run_suite(/*jobs=*/4, /*seed=*/42);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.final_times, b.final_times);
}

// The NUMA sweep's shape (fig_numa_scaling): a 2-socket topology with
// line-owner tracking in the engine and socket-sharded reader tracking in
// the lock. The coherence model's owner table lives per engine and each
// point owns its engine, so fanning points across workers must stay
// byte-identical to the serial run.
SuiteCapture run_numa_suite(int jobs, std::uint64_t seed) {
  SuiteCapture cap;
  const Machine m = broadwell_machine();
  HashmapFigParams p;
  p.seed = seed;
  p.population = 2048;
  p.key_space = 4096;
  p.buckets = 64;
  p.warmup_cycles = 20'000;
  p.measure_cycles = 100'000;
  Runner runner(jobs);
  for (const int n : {2, 4}) {
    for (const bool sharded : {false, true}) {
      auto point = std::make_shared<SeriesPoint>();
      point->lock = sharded ? "sharded" : "flat";
      point->threads = n;
      runner.submit(
          [point, m, p, n, sharded] {
            htm::EngineConfig ec;
            ec.capacity = m.capacity_at(n);
            ec.max_threads = n;
            ec.seed = p.seed;
            ec.topology = sim::Topology::split(n, 2);
            ec.track_line_owners = true;
            htm::Engine engine(ec);
            workloads::HashMap map = make_figure_map(p, n);
            core::Config c =
                core::Config::variant(core::SchedulingVariant::kFull, n);
            c.topology = ec.topology;
            c.socket_sharded_tracking = sharded;
            core::SpRWLock lock(c);
            workloads::DriverConfig dc;
            dc.threads = n;
            dc.update_ratio = p.update_ratio;
            dc.lookups_per_read = p.lookups_per_read;
            dc.key_space = p.key_space;
            dc.warmup_cycles = p.warmup_cycles;
            dc.measure_cycles = p.measure_cycles;
            dc.seed = p.seed;
            sim::Simulator sim;
            point->run = run_hashmap(sim, engine, lock, map, dc);
            point->final_time = sim.final_time();
          },
          [point, &cap] {
            const workloads::RunResult& r = point->run;
            const Breakdown b =
                make_breakdown(r.engine_stats, r.lock_stats, r.reader_aborts);
            cap.rows += format_series_row(point->lock.c_str(), point->threads,
                                          r.throughput_tx_s(), b,
                                          r.read_latency.mean(),
                                          r.write_latency.mean());
            cap.final_times.push_back(point->final_time);
          });
    }
  }
  runner.drain();
  return cap;
}

TEST(ParallelDeterminism, TopologyEnabledSuiteIsByteIdenticalAcrossJobs) {
  for (const std::uint64_t seed : {42u, 7u}) {
    const SuiteCapture serial = run_numa_suite(/*jobs=*/1, seed);
    const SuiteCapture parallel = run_numa_suite(/*jobs=*/4, seed);
    ASSERT_FALSE(serial.rows.empty());
    EXPECT_EQ(serial.rows, parallel.rows) << "seed " << seed;
    EXPECT_EQ(serial.final_times, parallel.final_times) << "seed " << seed;
  }
}

}  // namespace
}  // namespace sprwl::bench
