// Determinism regression for the parallel bench runner: fanning data
// points across a worker pool must not change a single byte of bench
// output, and every per-point result (virtual end time included) must be
// bit-identical to the serial run. This is the contract that lets
// perf_pipeline's parallel mode publish the same figure data as serial.
#include "bench/support/runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/support/hashmap_fig.h"

namespace sprwl::bench {
namespace {

TEST(Runner, EmitsInSubmissionOrder) {
  Runner runner(4);
  std::string order;
  for (int i = 0; i < 16; ++i) {
    runner.submit([] {}, [&order, i] { order += static_cast<char>('a' + i); });
  }
  runner.drain();
  EXPECT_EQ(order, "abcdefghijklmnop");
}

TEST(Runner, EmitOnlyTasksInterleaveWithComputes) {
  Runner runner(3);
  std::string order;
  runner.submit({}, [&] { order += "H"; });  // header, no compute
  for (int i = 0; i < 3; ++i) {
    runner.submit([] {}, [&order] { order += "r"; });
  }
  runner.submit({}, [&] { order += "H"; });
  runner.submit([] {}, [&order] { order += "r"; });
  runner.drain();
  EXPECT_EQ(order, "HrrrHr");
}

TEST(Runner, ComputeExceptionPropagatesAtDrain) {
  Runner runner(2);
  runner.submit([] { throw std::runtime_error("boom"); }, [] { FAIL(); });
  EXPECT_THROW(runner.drain(), std::runtime_error);
}

TEST(Runner, JobsFromEnvHonorsOverride) {
  ::setenv("SPRWL_BENCH_JOBS", "3", 1);
  EXPECT_EQ(Runner::jobs_from_env(), 3);
  ::setenv("SPRWL_BENCH_JOBS", "0", 1);
  EXPECT_GE(Runner::jobs_from_env(), 1);  // invalid: fall back to hardware
  ::unsetenv("SPRWL_BENCH_JOBS");
  EXPECT_GE(Runner::jobs_from_env(), 1);
}

// One reduced hash-map series (three locks, two thread counts) captured
// through SeriesOptions. Returns the concatenated rows plus each point's
// virtual end time.
struct SuiteCapture {
  std::string rows;
  std::vector<std::uint64_t> final_times;
};

SuiteCapture run_suite(int jobs, std::uint64_t seed) {
  SuiteCapture cap;
  SeriesOptions opt;
  opt.out = [&cap](const std::string& s) { cap.rows += s; };
  opt.observe = [&cap](const SeriesPoint& pt) {
    cap.final_times.push_back(pt.final_time);
  };
  const Machine m = broadwell_machine();
  HashmapFigParams p;
  p.seed = seed;
  p.population = 2048;
  p.key_space = 4096;
  p.buckets = 64;
  p.warmup_cycles = 20'000;
  p.measure_cycles = 100'000;
  const std::vector<int> threads{2, 4};
  Runner runner(jobs);
  hashmap_series(runner, "TLE", m, p, threads, make_tle(), opt);
  hashmap_series(runner, "RWL", m, p, threads, make_rwl(), opt);
  hashmap_series(runner, "SpRWL", m, p, threads, make_sprwl(), opt);
  runner.drain();
  return cap;
}

TEST(ParallelDeterminism, ParallelOutputByteIdenticalToSerialAcrossSeeds) {
  for (const std::uint64_t seed : {42u, 7u, 1234u}) {
    const SuiteCapture serial = run_suite(/*jobs=*/1, seed);
    const SuiteCapture parallel = run_suite(/*jobs=*/4, seed);
    ASSERT_FALSE(serial.rows.empty());
    EXPECT_EQ(serial.rows, parallel.rows) << "seed " << seed;
    EXPECT_EQ(serial.final_times, parallel.final_times) << "seed " << seed;
  }
}

TEST(ParallelDeterminism, RepeatedParallelRunsAgree) {
  const SuiteCapture a = run_suite(/*jobs=*/4, /*seed=*/42);
  const SuiteCapture b = run_suite(/*jobs=*/4, /*seed=*/42);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.final_times, b.final_times);
}

}  // namespace
}  // namespace sprwl::bench
