#include "bench/support/bench_common.h"

#include <gtest/gtest.h>

namespace sprwl::bench {
namespace {

TEST(Breakdown, PercentagesFromEngineAndLockStats) {
  htm::EngineStats es;
  es.commits_htm = 60;
  es.aborts_conflict = 10;
  es.aborts_capacity = 20;
  es.aborts_explicit = 10;  // of which 6 are reader aborts
  locks::LockStats ls;
  ls.reads.unins = 50;
  ls.writes.htm = 40;
  ls.writes.gl = 10;
  const Breakdown b = make_breakdown(es, ls, 6);
  EXPECT_DOUBLE_EQ(b.abort_rate, 40.0);
  EXPECT_DOUBLE_EQ(b.ab_conflict, 10.0);
  EXPECT_DOUBLE_EQ(b.ab_capacity, 20.0);
  EXPECT_DOUBLE_EQ(b.ab_reader, 6.0);
  EXPECT_DOUBLE_EQ(b.ab_explicit, 4.0);
  EXPECT_DOUBLE_EQ(b.commit_htm, 40.0);
  EXPECT_DOUBLE_EQ(b.commit_gl, 10.0);
  EXPECT_DOUBLE_EQ(b.commit_unins, 50.0);
}

TEST(Breakdown, EmptyStatsGiveZeros) {
  const Breakdown b = make_breakdown(htm::EngineStats{}, locks::LockStats{}, 0);
  EXPECT_EQ(b.abort_rate, 0.0);
  EXPECT_EQ(b.commit_htm, 0.0);
}

TEST(Breakdown, ReaderAbortsNeverExceedExplicit) {
  htm::EngineStats es;
  es.commits_htm = 50;
  es.aborts_explicit = 5;
  const Breakdown b = make_breakdown(es, locks::LockStats{}, 99);  // stale count
  EXPECT_LE(b.ab_reader, 100.0 * 5 / 55 + 1e-9);
  EXPECT_GE(b.ab_explicit, 0.0);
}

TEST(Machine, SmtCapacitySharingPower8) {
  const Machine m = power8_machine();
  EXPECT_EQ(m.capacity_at(1).read_lines, htm::kPower8.read_lines);
  EXPECT_EQ(m.capacity_at(10).read_lines, htm::kPower8.read_lines);
  // 80 threads = SMT8; POWER8's dynamic sharing divides by smt/2 = 4.
  EXPECT_EQ(m.capacity_at(80).read_lines, htm::kPower8.read_lines / 4);
  EXPECT_GE(m.capacity_at(80).read_lines, 1u);
}

TEST(Machine, SmtCapacitySharingBroadwell) {
  const Machine m = broadwell_machine();
  EXPECT_EQ(m.capacity_at(28).read_lines, htm::kBroadwell.read_lines);
  // Hyper-threading statically halves the per-thread footprint.
  EXPECT_EQ(m.capacity_at(56).read_lines, htm::kBroadwell.read_lines / 2);
  EXPECT_EQ(m.capacity_at(56).write_lines, htm::kBroadwell.write_lines / 2);
}

TEST(Args, ParsesFlags) {
  const char* argv[] = {"bench", "--full", "--profile=power8", "--measure=12345",
                        "--seed=9"};
  const Args a = Args::parse(5, const_cast<char**>(argv));
  EXPECT_TRUE(a.full);
  EXPECT_EQ(a.profile, "power8");
  EXPECT_EQ(a.measure_cycles, 12345u);
  EXPECT_EQ(a.seed, 9u);
  EXPECT_TRUE(a.want_profile("power8"));
  EXPECT_FALSE(a.want_profile("broadwell"));
}

TEST(Args, BothProfileMatchesEverything) {
  const char* argv[] = {"bench", "--profile=both"};
  const Args a = Args::parse(2, const_cast<char**>(argv));
  EXPECT_TRUE(a.want_profile("broadwell"));
  EXPECT_TRUE(a.want_profile("power8"));
}

TEST(JsonWriter, ObjectsArraysAndScalars) {
  JsonWriter j;
  j.begin_object();
  j.key("bench").value("engine_ops");
  j.key("threads").value(8);
  j.key("ok").value(true);
  j.key("ratio").value(2.5);
  j.key("rows").begin_array();
  j.begin_object().key("n").value(std::uint64_t{1}).end_object();
  j.begin_object().key("n").value(std::uint64_t{2}).end_object();
  j.end_array();
  j.end_object();
  EXPECT_EQ(j.str(),
            "{\"bench\":\"engine_ops\",\"threads\":8,\"ok\":true,"
            "\"ratio\":2.5,\"rows\":[{\"n\":1},{\"n\":2}]}");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter j;
  j.begin_array();
  j.value("a\"b\\c\nd\te\r");
  j.value(std::string(1, '\x01'));
  j.end_array();
  EXPECT_EQ(j.str(), "[\"a\\\"b\\\\c\\nd\\te\\r\",\"\\u0001\"]");
}

TEST(JsonWriter, EmptyContainersAndNestedArrays) {
  JsonWriter j;
  j.begin_object();
  j.key("empty_obj").begin_object().end_object();
  j.key("empty_arr").begin_array().end_array();
  j.key("nested").begin_array();
  j.begin_array().value(1).value(2).end_array();
  j.begin_array().end_array();
  j.end_array();
  j.end_object();
  EXPECT_EQ(j.str(),
            "{\"empty_obj\":{},\"empty_arr\":[],\"nested\":[[1,2],[]]}");
}

TEST(JsonWriter, WritesFile) {
  JsonWriter j;
  j.begin_object().key("x").value(7).end_object();
  const std::string path =
      testing::TempDir() + "/sprwl_jsonwriter_test.json";
  ASSERT_TRUE(j.write_file(path.c_str()));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), "{\"x\":7}");
}

}  // namespace
}  // namespace sprwl::bench
