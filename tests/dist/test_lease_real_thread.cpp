// Real-thread (TSan) stress for the lease tier: the simulator cannot be
// followed by TSan, so these run on std::threads. The virtual-time expiry
// fence is only sound under the simulator's min-time scheduling (DESIGN.md
// §15), so the terms here are effectively infinite and ownership hands off
// by explicit release — what this leg verifies is data-race freedom of the
// grant/join/renew/validate/release state machine and of the LeasedLock
// seqlock under genuine concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

#include "common/platform.h"
#include "common/rng.h"
#include "dist/lease.h"
#include "dist/lock_service.h"
#include "fault/fault.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "sim/simulator.h"
#include "sim/topology.h"

#include "../support/seed_replay.h"

namespace sprwl::dist {
namespace {

LeaseConfig real_thread_lease() {
  LeaseConfig cfg;
  cfg.term = ~0ULL / 2;  // no expiry: handoff is by explicit release only
  cfg.backoff_base = 64;
  cfg.backoff_max = 4'096;
  return cfg;
}

TEST(LeaseRealThreadStress, ServiceStateMachineIsRaceFree) {
  const std::uint64_t seed = fault::env_seed(42);
  SCOPED_TRACE(testutil::seed_replay(seed));
  LeaseService svc(real_thread_lease());
  std::atomic<std::uint64_t> held{0};  // > 1 would mean two live holders
  std::atomic<std::uint64_t> overlaps{0};
  sim::run_real_threads(4, [&](int tid) {
    const int node = tid;  // every thread its own node: pure contention
    for (int i = 0; i < 200; ++i) {
      const Lease l = svc.acquire(node);
      ASSERT_TRUE(l.valid());
      if (held.fetch_add(1, std::memory_order_acq_rel) != 0) {
        overlaps.fetch_add(1, std::memory_order_relaxed);
      }
      EXPECT_TRUE(svc.validate(l));
      held.fetch_sub(1, std::memory_order_acq_rel);
      svc.release(l);
    }
  });
  EXPECT_EQ(overlaps.load(), 0u) << "two nodes held the lease at once";
  EXPECT_EQ(svc.stats().grants.load(), 4u * 200u);
}

TEST(LeaseRealThreadStress, LeasedLockSeqlockPublishesConsistently) {
  const std::uint64_t seed = fault::env_seed(42);
  SCOPED_TRACE(testutil::seed_replay(seed));
  htm::Engine engine;
  htm::EngineScope scope(engine);
  LeasedLock::Config cfg;
  cfg.topology = sim::Topology::split_nodes(4, 2);
  cfg.max_threads = 4;
  cfg.lease = real_thread_lease();
  LeasedLock lock(cfg);
  struct alignas(64) Pair {
    htm::Shared<std::uint64_t> a, b;
  };
  Pair p;
  std::atomic<std::uint64_t> torn{0};
  sim::run_real_threads(4, [&](int tid) {
    Rng rng(static_cast<std::uint64_t>(tid) + seed);
    for (int i = 0; i < 150; ++i) {
      if (tid % 2 == 0) {
        lock.write(1, [&] {
          const std::uint64_t v = p.a.load() + 1;
          p.a.store(v);
          p.b.store(v);
        });
      } else {
        std::uint64_t av = 0, bv = 0;
        lock.read(0, [&] {
          av = p.a.load();
          bv = p.b.load();
        });
        if (av != bv) torn.fetch_add(1, std::memory_order_relaxed);
      }
      if (rng.next_bool(0.1)) platform::pause();
    }
  });
  EXPECT_EQ(torn.load(), 0u) << "validated read observed a torn pair";
  EXPECT_EQ(p.a.raw_load(), 2u * 150u);
  EXPECT_EQ(p.b.raw_load(), p.a.raw_load());
}

}  // namespace
}  // namespace sprwl::dist
