// Distributed chaos + the torn-read oracle: seeded node-crash/partition
// schedules over a multi-node shard (fault::run_dist_chaos), and the
// oracle that manufactures split cross-node copies and demands the
// version-validation loop rejects every one of them — including its own
// self-check against the deliberately broken validation.
#include <gtest/gtest.h>

#include <cstdint>

#include "dist/lock_service.h"
#include "fault/chaos.h"
#include "fault/fault.h"
#include "htm/engine.h"
#include "sim/topology.h"

#include "../support/seed_replay.h"

namespace sprwl::fault {
namespace {

// Virtual-time window for planned node faults, matched to the default
// 8x120-op distributed scenario (lease churn makes ops slower than the
// single-node chaos workload's).
constexpr std::uint64_t kHorizon = 700'000;

dist::ShardConfig shard_config(const DistChaosConfig& cfg) {
  dist::ShardConfig sc;
  sc.topology = cfg.topology;
  sc.max_threads = cfg.threads;
  sc.lease.term = 40'000;
  return sc;
}

htm::EngineConfig engine_config(const DistChaosConfig& cfg) {
  htm::EngineConfig ec;
  ec.max_threads = cfg.threads;
  ec.topology = cfg.topology;
  return ec;
}

TEST(DistChaos, SurvivesSixteenSeededNodeFaultSchedules) {
  const std::uint64_t base = env_seed(1);
  std::uint64_t crashes_seen = 0, recoveries_seen = 0, stalls_seen = 0;
  for (std::uint64_t seed = base; seed < base + 16; ++seed) {
    SCOPED_TRACE(testutil::seed_replay(seed));
    DistChaosConfig cfg;
    cfg.seed = seed;
    const FaultPlan plan = FaultPlan::chaos_nodes(seed, kHorizon, cfg.topology);
    htm::Engine engine(engine_config(cfg));
    dist::Shard shard(shard_config(cfg));
    const DistChaosResult r = run_dist_chaos(shard, engine, cfg, plan);
    EXPECT_TRUE(r.completed) << "progress watchdog tripped";
    EXPECT_EQ(r.torn_reads, 0u);
    EXPECT_EQ(r.stale_reads, 0u);
    EXPECT_TRUE(r.invariants_ok())
        << "writes=" << r.writes << " final=" << r.final_value
        << " crashed=" << r.crashed_fibers;
    crashes_seen += r.faults.crash_kills;
    recoveries_seen += r.recoveries;
    stalls_seen += r.faults.partition_stalls;
  }
  // The suite is vacuous unless the planned faults actually bit somewhere
  // across the seed batch.
  EXPECT_GT(crashes_seen, 0u) << "no fiber ever died to a node crash";
  EXPECT_GT(stalls_seen, 0u) << "no lease RPC ever hit a partition";
  (void)recoveries_seen;  // tears are timing-dependent; tracked, not required
}

TEST(DistChaos, SameSeedReplaysBitIdentically) {
  DistChaosConfig cfg;
  cfg.seed = 7;
  const FaultPlan plan = FaultPlan::chaos_nodes(7, kHorizon, cfg.topology);
  htm::Engine e1(engine_config(cfg)), e2(engine_config(cfg));
  dist::Shard s1(shard_config(cfg)), s2(shard_config(cfg));
  const DistChaosResult a = run_dist_chaos(s1, e1, cfg, plan);
  const DistChaosResult b = run_dist_chaos(s2, e2, cfg, plan);
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.final_value, b.final_value);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.crashed_fibers, b.crashed_fibers);
  EXPECT_EQ(a.faults.partition_stalls, b.faults.partition_stalls);
}

TEST(DistChaos, CrossNodeTrafficIsPricedOnTheFabric) {
  DistChaosConfig cfg;
  cfg.seed = 3;
  FaultPlan plan;  // no faults: pure cross-node churn
  plan.topology = cfg.topology;
  htm::Engine engine(engine_config(cfg));
  dist::Shard shard(shard_config(cfg));
  const DistChaosResult r = run_dist_chaos(shard, engine, cfg, plan);
  EXPECT_TRUE(r.invariants_ok());
  EXPECT_EQ(r.crashed_fibers, 0u);
  EXPECT_GT(r.node_transfers, 0u);
}

TEST(TornOracle, RejectsEveryManufacturedSplitCopy) {
  const std::uint64_t seed = env_seed(11);
  SCOPED_TRACE(testutil::seed_replay(seed));
  DistChaosConfig shape;
  shape.topology = sim::Topology::split_nodes(2, 2);
  shape.threads = 2;
  dist::ShardConfig sc = shard_config(shape);
  sc.lease.term = 1'000'000'000;  // the writer never loses its lease
  dist::Shard shard(sc);
  htm::Engine engine(engine_config(shape));
  TornOracleConfig cfg;
  cfg.seed = seed;
  const TornOracleResult r = run_torn_oracle(shard, engine, cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.splits, 0u) << "the stall never straddled a publish — the "
                             "oracle manufactured nothing";
  EXPECT_GT(r.accepted, 0u) << "no clean copy ever validated";
  EXPECT_EQ(r.accepted_torn, 0u)
      << "validation accepted a torn cross-node copy";
  EXPECT_EQ(r.stale_accepted, 0u);
  EXPECT_TRUE(r.oracle_ok());
}

TEST(TornOracle, CatchesTheBrokenValidationItGuardsAgainst) {
  // Oracle self-check: with the version re-validation skipped
  // (broken_skip_read_validation) the very same harness must observe
  // accepted torn copies — proving the oracle can see the failure it
  // exists to rule out.
  const std::uint64_t seed = env_seed(11);
  SCOPED_TRACE(testutil::seed_replay(seed));
  DistChaosConfig shape;
  shape.topology = sim::Topology::split_nodes(2, 2);
  shape.threads = 2;
  dist::ShardConfig sc = shard_config(shape);
  sc.lease.term = 1'000'000'000;
  sc.broken_skip_read_validation = true;
  dist::Shard shard(sc);
  htm::Engine engine(engine_config(shape));
  TornOracleConfig cfg;
  cfg.seed = seed;
  const TornOracleResult r = run_torn_oracle(shard, engine, cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.accepted_torn, 0u)
      << "the broken validation slipped past the oracle";
  EXPECT_FALSE(r.oracle_ok());
}

}  // namespace
}  // namespace sprwl::fault
