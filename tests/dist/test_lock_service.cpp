// Shard protocol tests: the seqlock publication over a single node, the
// torn-write window (node crash between the version claim and the payload
// publish) with recovery by the next lease holder, the undo-stamp
// discipline for crashes mid-undo, and the degraded path when the lease
// service is unreachable.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/platform.h"
#include "dist/lock_service.h"
#include "fault/fault.h"
#include "htm/engine.h"
#include "sim/simulator.h"
#include "sim/topology.h"

namespace sprwl::dist {
namespace {

ShardConfig two_node_config() {
  ShardConfig cfg;
  cfg.topology = sim::Topology::split_nodes(2, 2);
  cfg.max_threads = 2;
  cfg.lease.term = 30'000;
  return cfg;
}

htm::EngineConfig engine_config(const ShardConfig& cfg) {
  htm::EngineConfig ec;
  ec.max_threads = cfg.max_threads;
  ec.topology = cfg.topology;
  return ec;
}

void set_all(std::uint64_t* vals, std::size_t n, std::uint64_t v) {
  for (std::size_t i = 0; i < n; ++i) vals[i] = v;
}

TEST(Shard, SingleNodeWriteThenValidatedRead) {
  ShardConfig cfg;  // default topology: one node, nothing crosses the fabric
  cfg.max_threads = 2;
  Shard shard(cfg);
  htm::Engine engine(engine_config(cfg));
  htm::EngineScope scope(engine);
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(shard.write(tid, [](std::uint64_t* vals, std::size_t n) {
          set_all(vals, n, vals[0] + 1);
        }));
      }
    } else {
      std::vector<std::uint64_t> buf(cfg.cells, 0);
      std::uint64_t last = 0;
      for (int i = 0; i < 20; ++i) {
        ASSERT_TRUE(shard.read(tid, buf.data()));
        for (std::size_t c = 1; c < cfg.cells; ++c) {
          EXPECT_EQ(buf[c], buf[0]) << "validated read observed a tear";
        }
        EXPECT_GE(buf[0], last) << "validated read went backwards";
        last = buf[0];
        platform::advance(500);
      }
    }
  });
  EXPECT_EQ(shard.raw_cell(0), 10u);
  EXPECT_EQ(shard.raw_version() & 1, 0u);
  EXPECT_EQ(shard.stats().writes.load(), 10u);
}

// Sweep the crash instant across the whole write: whichever store the
// holder died between — claim/undo (stale stamp, cells clean), undo/stamp,
// stamp/publish (cells possibly half-written) — the next node's fresh
// grant must recover a consistent payload: version even, all cells equal,
// value either the pre-write or the post-write image. At least one offset
// must land inside the torn-write window (version left odd) or the sweep
// proves nothing.
TEST(Shard, CrashSweepAcrossTornWriteWindowRecovers) {
  int torn_offsets = 0;
  for (std::uint64_t crash_at = 2'000; crash_at <= 26'000; crash_at += 171) {
    const ShardConfig cfg = two_node_config();
    Shard shard(cfg);
    htm::Engine engine(engine_config(cfg));
    fault::FaultPlan plan;
    plan.topology = cfg.topology;
    fault::NodeCrashSpec crash;
    crash.node = 0;
    crash.at = crash_at;
    plan.crashes.push_back(crash);

    sim::Simulator sim;
    fault::FaultInjector injector(plan, &sim, &engine);
    fault::FaultScope fscope(injector);
    htm::EngineScope escope(engine);

    bool crashed = false;
    bool writer_done = false;
    bool saw_torn_version = false;
    sim.run(2, [&](int tid) {
      if (cfg.topology.node_of(tid) == 0) {
        try {
          // Seed the payload with 7, then keep rewriting to 7 until the
          // crash lands somewhere inside one of the write bodies.
          for (int i = 0; i < 2'000; ++i) {
            shard.write(tid, [](std::uint64_t* vals, std::size_t n) {
              set_all(vals, n, 7);
            });
            writer_done = true;
          }
        } catch (const fault::NodeCrashed&) {
          crashed = true;
          saw_torn_version = (shard.raw_version() & 1) != 0;
        }
        return;
      }
      // The healthy node takes over after the lease dies and writes 9.
      platform::wait_until(crash_at + cfg.lease.term + 5'000);
      EXPECT_TRUE(shard.write(tid, [](std::uint64_t* vals, std::size_t n) {
        set_all(vals, n, 9);
      }));
    });

    ASSERT_TRUE(crashed) << "crash_at=" << crash_at;
    if (saw_torn_version) ++torn_offsets;
    EXPECT_EQ(shard.raw_version() & 1, 0u) << "crash_at=" << crash_at;
    const std::uint64_t v0 = shard.raw_cell(0);
    for (std::size_t c = 1; c < cfg.cells; ++c) {
      EXPECT_EQ(shard.raw_cell(c), v0)
          << "inconsistent payload after recovery, crash_at=" << crash_at;
    }
    EXPECT_EQ(v0, 9u) << "crash_at=" << crash_at;
    // The takeover's fresh grant runs recovery exactly when the crash left
    // the claim without its publish.
    EXPECT_EQ(shard.stats().recoveries.load() > 0, saw_torn_version)
        << "crash_at=" << crash_at;
    (void)writer_done;
  }
  EXPECT_GT(torn_offsets, 0)
      << "no crash instant hit the torn-write window; sweep is too coarse";
}

TEST(Shard, WriteAbandonedWhenLeaseExpiresMidSection) {
  // A writer stalled (preempted) inside its section past its own expiry:
  // every remaining store is fenced, the attempt reports failure, and the
  // retry re-acquires a fresh epoch and succeeds — no stale-epoch store
  // ever lands after the fence.
  const ShardConfig cfg = two_node_config();
  Shard shard(cfg);
  htm::Engine engine(engine_config(cfg));
  fault::FaultPlan plan;
  plan.topology = cfg.topology;
  fault::PreemptSpec s;
  s.point = fault::InjectPoint::kWriteBody;
  s.tid = 0;
  s.not_before = 0;
  s.duration = 2 * cfg.lease.term;  // sleeps through its own expiry
  s.count = 1;
  plan.preempts.push_back(s);

  sim::Simulator sim;
  fault::FaultInjector injector(plan, &sim, &engine);
  fault::FaultScope fscope(injector);
  htm::EngineScope escope(engine);
  sim.run(1, [&](int tid) {
    EXPECT_TRUE(shard.write(tid, [](std::uint64_t* vals, std::size_t n) {
      set_all(vals, n, vals[0] + 1);
    }));
  });
  EXPECT_GE(shard.stats().write_abandons.load(), 1u);
  EXPECT_EQ(shard.stats().writes.load(), 1u);
  EXPECT_EQ(shard.raw_version() & 1, 0u);
  EXPECT_EQ(shard.raw_cell(0), 1u);
  EXPECT_GE(shard.stats().recoveries.load(), 1u)
      << "the fenced claim left a tear; the retry's fresh grant repairs it";
}

TEST(Shard, DegradedModeWritesThroughFallbackSgl) {
  const ShardConfig cfg = two_node_config();
  Shard shard(cfg);
  htm::Engine engine(engine_config(cfg));
  htm::EngineScope scope(engine);
  shard.set_service_reachable(false);
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (cfg.topology.node_of(tid) == 0) {
      for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(shard.write(tid, [](std::uint64_t* vals, std::size_t n) {
          set_all(vals, n, vals[0] + 1);
        }));
      }
    } else {
      std::vector<std::uint64_t> buf(cfg.cells, 0);
      for (int i = 0; i < 12; ++i) {
        ASSERT_TRUE(shard.read(tid, buf.data()));
        for (std::size_t c = 1; c < cfg.cells; ++c) {
          EXPECT_EQ(buf[c], buf[0]);
        }
        platform::advance(700);
      }
    }
  });
  EXPECT_EQ(shard.stats().degraded_writes.load(), 8u);
  EXPECT_EQ(shard.stats().writes.load(), 0u) << "leased path must be bypassed";
  EXPECT_EQ(shard.lease().stats().grants.load(), 0u);
  EXPECT_EQ(shard.raw_cell(0), 8u);

  // Service restored: the leased path resumes where degradation left off.
  shard.set_service_reachable(true);
  sim::Simulator sim2;
  sim2.run(1, [&](int tid) {
    EXPECT_TRUE(shard.write(tid, [](std::uint64_t* vals, std::size_t n) {
      set_all(vals, n, vals[0] + 1);
    }));
  });
  EXPECT_EQ(shard.raw_cell(0), 9u);
  EXPECT_EQ(shard.stats().writes.load(), 1u);
}

TEST(Shard, CrossNodeReadPaysTheFabricAndValidates) {
  // A reader on node 1 against a writer on node 0: the copies cross the
  // fabric (EngineStats::node_transfers with owner tracking), and every
  // accepted copy is consistent despite the churn.
  const ShardConfig cfg = two_node_config();
  Shard shard(cfg);
  htm::Engine engine(engine_config(cfg));
  htm::EngineScope scope(engine);
  sim::Simulator sim;
  std::uint64_t accepted = 0;
  sim.run(2, [&](int tid) {
    if (cfg.topology.node_of(tid) == 0) {
      for (int i = 0; i < 15; ++i) {
        shard.write(tid, [](std::uint64_t* vals, std::size_t n) {
          set_all(vals, n, vals[0] + 1);
        });
        platform::advance(300);
      }
    } else {
      std::vector<std::uint64_t> buf(cfg.cells, 0);
      for (int i = 0; i < 15; ++i) {
        if (shard.read(tid, buf.data())) {
          ++accepted;
          for (std::size_t c = 1; c < cfg.cells; ++c) {
            EXPECT_EQ(buf[c], buf[0]);
          }
        }
        platform::advance(400);
      }
    }
  });
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(engine.stats().node_transfers, 0u)
      << "cross-node copies must be priced as fabric transfers";
}

TEST(Shard, LockServiceRoutesAndDegradesPerService) {
  const ShardConfig cfg = two_node_config();
  LockService svc(cfg, 3);
  EXPECT_EQ(&svc.shard(0), &svc.shard(3));  // modulo routing
  svc.set_service_reachable(false);
  htm::Engine engine(engine_config(cfg));
  htm::EngineScope scope(engine);
  sim::Simulator sim;
  sim.run(1, [&](int tid) {
    EXPECT_TRUE(svc.shard(1).write(tid, [](std::uint64_t* vals,
                                           std::size_t n) {
      set_all(vals, n, 3);
    }));
  });
  EXPECT_EQ(svc.shard(1).stats().degraded_writes.load(), 1u);
  EXPECT_EQ(svc.shard(0).stats().degraded_writes.load(), 0u);
}

}  // namespace
}  // namespace sprwl::dist
