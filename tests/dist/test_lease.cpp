// LeaseService unit tests: grant/join/release mechanics, the renewal
// margin, and the edge cases the epoch fence exists for — expiry exactly
// at the renewal instant, a grant over an expired holder ("double expiry"
// must consume the old epoch exactly once), and a partition that delays a
// renewal past expiry (the stale holder must learn it lost the lease, not
// extend someone else's).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/platform.h"
#include "dist/lease.h"
#include "fault/fault.h"
#include "htm/engine.h"
#include "locks/deadline.h"
#include "sim/simulator.h"
#include "sim/topology.h"

namespace sprwl::dist {
namespace {

LeaseConfig small_term() {
  LeaseConfig cfg;
  cfg.term = 10'000;
  return cfg;
}

TEST(Lease, GrantJoinReleaseLifecycle) {
  LeaseService svc(small_term());
  sim::Simulator sim;
  sim.run(1, [&](int) {
    bool fresh = false;
    const Lease a = svc.acquire(0, locks::kNoDeadline, &fresh);
    ASSERT_TRUE(a.valid());
    EXPECT_TRUE(fresh) << "first grant must be fresh (recovery owner)";
    EXPECT_EQ(a.epoch, 1u);
    EXPECT_TRUE(svc.validate(a));

    // Same node acquires again: a join — same epoch, not a new grant.
    const Lease b = svc.acquire(0, locks::kNoDeadline, &fresh);
    ASSERT_TRUE(b.valid());
    EXPECT_FALSE(fresh);
    EXPECT_EQ(b.epoch, a.epoch);

    svc.release(a);
    EXPECT_FALSE(svc.validate(a));

    // Released: the next acquire is a fresh grant with a bumped epoch.
    const Lease c = svc.acquire(0, locks::kNoDeadline, &fresh);
    ASSERT_TRUE(c.valid());
    EXPECT_TRUE(fresh);
    EXPECT_EQ(c.epoch, a.epoch + 1);
  });
  EXPECT_EQ(svc.stats().grants.load(), 2u);
  EXPECT_EQ(svc.stats().joins.load(), 1u);
}

TEST(Lease, RenewBeforeExpiryExtendsSameEpoch) {
  LeaseService svc(small_term());
  sim::Simulator sim;
  sim.run(1, [&](int) {
    Lease l = svc.acquire(0);
    ASSERT_TRUE(l.valid());
    const std::uint64_t first_expiry = l.expiry;
    platform::wait_until(first_expiry - 2'000);
    EXPECT_TRUE(svc.renew(l));
    EXPECT_GT(l.expiry, first_expiry);
    EXPECT_EQ(l.epoch, 1u);
    EXPECT_TRUE(svc.validate(l));
  });
  EXPECT_EQ(svc.stats().renewals.load(), 1u);
  EXPECT_EQ(svc.stats().renewals_rejected.load(), 0u);
}

TEST(Lease, ExpiryExactlyAtRenewalInstantRejects) {
  // The boundary the fence is calibrated to: the service grants over the
  // holder at now >= expiry, so a renewal arriving at now == expiry must
  // already be rejected — the two decisions may not both succeed.
  LeaseService svc(small_term());
  sim::Simulator sim;
  sim.run(1, [&](int) {
    Lease l = svc.acquire(0);
    ASSERT_TRUE(l.valid());
    platform::wait_until(l.expiry);
    ASSERT_EQ(platform::now(), l.expiry);
    EXPECT_FALSE(svc.renew(l)) << "renewal exactly at expiry must fail";
    EXPECT_FALSE(svc.validate(l));
  });
  EXPECT_EQ(svc.stats().renewals_rejected.load(), 1u);
}

TEST(Lease, GrantOverExpiredHolderBumpsEpochOnce) {
  // "Double expiry of the same epoch": two nodes racing over one expired
  // holder must consume the dead epoch exactly once — one grant, one
  // expiry event, strictly increasing epochs, and the loser either joins
  // nothing or waits out the winner's fresh term.
  LeaseService svc(small_term());
  std::vector<Lease> got(2);
  sim::Simulator sim;
  sim.run(3, [&](int tid) {
    if (tid == 0) {
      const Lease l = svc.acquire(0);
      ASSERT_TRUE(l.valid());
      return;  // crash-stop: never renews, never releases
    }
    // Nodes 1 and 2 both discover the expired epoch and race the grant.
    platform::wait_until(small_term().term + 1);
    got[static_cast<std::size_t>(tid - 1)] = svc.acquire(tid);
  });
  ASSERT_TRUE(got[0].valid());
  ASSERT_TRUE(got[1].valid());
  EXPECT_NE(got[0].epoch, got[1].epoch);
  EXPECT_EQ(svc.stats().grants.load(), 3u);
  // Only the first racer granted *over* the dead holder; the second waited
  // out (or followed) a live lease and its grant is an ordinary one.
  EXPECT_GE(svc.stats().expiries.load(), 1u);
  EXPECT_LE(svc.stats().expiries.load(), 2u);
}

TEST(Lease, PartitionDelaysRenewalPastExpiry) {
  // The stale-holder scenario: node 0's renewal traffic is stalled by a
  // partition that outlives its term. The renewal "arrives late" — after
  // the heal — and must be rejected, after which another node owns a
  // fresh epoch and the old lease validates false forever.
  const LeaseConfig cfg = small_term();
  LeaseService svc(cfg);
  fault::FaultPlan plan;
  fault::PartitionSpec part;
  part.node = 0;
  part.from = 2'000;
  part.until = 2 * cfg.term;  // heals only after the lease is long dead
  plan.partitions.push_back(part);
  plan.topology = sim::Topology::split_nodes(2, 2);

  htm::Engine engine;
  sim::Simulator sim;
  fault::FaultInjector injector(plan, &sim, &engine);
  fault::FaultScope fscope(injector);
  htm::EngineScope escope(engine);

  bool renewed = true;
  Lease stale;
  sim.run(2, [&](int tid) {
    if (plan.topology.node_of(tid) == 0) {
      stale = svc.acquire(0);
      ASSERT_TRUE(stale.valid());
      platform::wait_until(part.from + 1);  // inside the partition window
      renewed = svc.renew(stale);           // stalls until the heal
    } else {
      // The healthy node takes over once the term lapses.
      platform::wait_until(cfg.term + 1'000);
      const Lease l = svc.acquire(1);
      ASSERT_TRUE(l.valid());
      EXPECT_EQ(l.epoch, 2u);
    }
  });
  EXPECT_FALSE(renewed) << "post-heal renewal must be rejected";
  EXPECT_FALSE(svc.validate(stale));
  EXPECT_GE(svc.stats().partition_stalls.load(), 1u);
  EXPECT_EQ(svc.stats().renewals_rejected.load(), 1u);
}

TEST(Lease, AcquireBudgetGivesUpWhileHeldElsewhere) {
  LeaseConfig cfg;
  cfg.term = 1'000'000;  // node 0 holds essentially forever
  cfg.acquire_budget = 3;
  LeaseService svc(cfg);
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      ASSERT_TRUE(svc.acquire(0).valid());
    } else {
      platform::wait_until(1'000);
      const Lease l = svc.acquire(1);
      EXPECT_FALSE(l.valid());
    }
  });
  EXPECT_EQ(svc.stats().acquire_failures.load(), 1u);
}

TEST(Lease, AcquireDeadlineCapsTheWait) {
  LeaseConfig cfg;
  cfg.term = 1'000'000;
  LeaseService svc(cfg);
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      ASSERT_TRUE(svc.acquire(0).valid());
    } else {
      platform::wait_until(1'000);
      const std::uint64_t deadline = platform::now() + 20'000;
      const Lease l = svc.acquire(1, deadline);
      EXPECT_FALSE(l.valid());
      EXPECT_LE(platform::now(), deadline + cfg.backoff_max);
    }
  });
}

}  // namespace
}  // namespace sprwl::dist
