// B+-tree boundary behaviour: degenerate ranges, extreme keys, duplicate
// churn at node boundaries.
#include <gtest/gtest.h>

#include "common/platform.h"
#include "common/rng.h"
#include "structures/btree.h"

namespace sprwl::structures {
namespace {

BTree::Config cfg() {
  BTree::Config c;
  c.capacity = 1 << 13;
  c.max_threads = 1;
  return c;
}

TEST(BTreeEdges, DegenerateRanges) {
  ThreadIdScope tid(0);
  BTree t(cfg());
  for (std::uint64_t k = 10; k <= 100; k += 10) t.insert(k, k);
  EXPECT_EQ(t.range_count(50, 50), 1u);   // point range, present
  EXPECT_EQ(t.range_count(51, 51), 0u);   // point range, absent
  EXPECT_EQ(t.range_count(60, 40), 0u);   // inverted range is empty
  EXPECT_EQ(t.range_count(0, 9), 0u);     // below the minimum
  EXPECT_EQ(t.range_count(101, ~0ULL), 0u);  // above the maximum
  EXPECT_EQ(t.range_count(10, 100), 10u);
}

TEST(BTreeEdges, ExtremeKeys) {
  ThreadIdScope tid(0);
  BTree t(cfg());
  EXPECT_TRUE(t.insert(0, 1));
  EXPECT_TRUE(t.insert(~0ULL, 2));
  EXPECT_TRUE(t.contains(0));
  EXPECT_TRUE(t.contains(~0ULL));
  EXPECT_EQ(t.range_count(0, ~0ULL), 2u);
  std::uint64_t v = 0;
  EXPECT_TRUE(t.lookup(~0ULL, v));
  EXPECT_EQ(v, 2u);
}

TEST(BTreeEdges, ChurnAtSplitBoundaries) {
  // Insert/erase around the fanout boundary repeatedly: leaves split, then
  // empty out (no rebalancing) and refill; invariants must survive.
  ThreadIdScope tid(0);
  BTree t(cfg());
  Rng rng(77);
  for (int round = 0; round < 50; ++round) {
    for (std::uint64_t k = 0; k < 64; ++k) t.insert(k, round);
    ASSERT_TRUE(t.raw_validate());
    for (std::uint64_t k = 0; k < 64; k += 2) t.erase(k);
    ASSERT_TRUE(t.raw_validate());
    EXPECT_EQ(t.raw_size(), 32u);
    for (std::uint64_t k = 0; k < 64; k += 2) t.insert(k, round);
    for (std::uint64_t k = 0; k < 64; ++k) t.erase(k);
    EXPECT_EQ(t.raw_size(), 0u);
  }
}

TEST(BTreeEdges, ValuesSurviveSplits) {
  ThreadIdScope tid(0);
  BTree t(cfg());
  Rng rng(3);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t k = rng.next();
    keys.push_back(k);
    t.insert(k, k ^ 0xABCD);
  }
  for (const std::uint64_t k : keys) {
    std::uint64_t v = 0;
    ASSERT_TRUE(t.lookup(k, v));
    EXPECT_EQ(v, k ^ 0xABCD);
  }
}

TEST(BTreeEdges, RangeCountAfterHeavyErase) {
  ThreadIdScope tid(0);
  BTree t(cfg());
  for (std::uint64_t k = 0; k < 1000; ++k) t.insert(k, k);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    if (k % 3 != 0) t.erase(k);
  }
  // Remaining: multiples of 3 in [0, 999] -> 334.
  EXPECT_EQ(t.range_count(0, 999), 334u);
  EXPECT_EQ(t.range_count(300, 600), 101u);  // 300,303,...,600
  EXPECT_TRUE(t.raw_validate());
}

}  // namespace
}  // namespace sprwl::structures
