#include "structures/btree.h"

#include <gtest/gtest.h>

#include <set>

#include "common/platform.h"
#include "common/rng.h"
#include "core/sprwl.h"
#include "htm/engine.h"
#include "sim/simulator.h"

namespace sprwl::structures {
namespace {

BTree::Config small_config() {
  BTree::Config cfg;
  cfg.capacity = 1 << 14;
  cfg.max_threads = 8;
  return cfg;
}

TEST(BTree, EmptyTree) {
  ThreadIdScope tid(0);
  BTree t(small_config());
  EXPECT_FALSE(t.contains(1));
  EXPECT_EQ(t.raw_size(), 0u);
  EXPECT_EQ(t.range_count(0, ~0ULL), 0u);
  EXPECT_TRUE(t.raw_validate());
}

TEST(BTree, InsertLookupUpdate) {
  ThreadIdScope tid(0);
  BTree t(small_config());
  EXPECT_TRUE(t.insert(42, 100));
  EXPECT_TRUE(t.contains(42));
  std::uint64_t v = 0;
  EXPECT_TRUE(t.lookup(42, v));
  EXPECT_EQ(v, 100u);
  EXPECT_FALSE(t.insert(42, 200));  // update, not insert
  EXPECT_TRUE(t.lookup(42, v));
  EXPECT_EQ(v, 200u);
  EXPECT_EQ(t.raw_size(), 1u);
}

TEST(BTree, EraseSemantics) {
  ThreadIdScope tid(0);
  BTree t(small_config());
  t.insert(1, 1);
  t.insert(2, 2);
  EXPECT_TRUE(t.erase(1));
  EXPECT_FALSE(t.erase(1));
  EXPECT_FALSE(t.contains(1));
  EXPECT_TRUE(t.contains(2));
  EXPECT_EQ(t.raw_size(), 1u);
  EXPECT_TRUE(t.raw_validate());
}

TEST(BTree, SplitsKeepOrderAscendingInsert) {
  ThreadIdScope tid(0);
  BTree t(small_config());
  for (std::uint64_t k = 1; k <= 1000; ++k) EXPECT_TRUE(t.insert(k, k * 2));
  EXPECT_EQ(t.raw_size(), 1000u);
  EXPECT_TRUE(t.raw_validate());
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    std::uint64_t v = 0;
    ASSERT_TRUE(t.lookup(k, v)) << k;
    EXPECT_EQ(v, k * 2);
  }
  EXPECT_FALSE(t.contains(0));
  EXPECT_FALSE(t.contains(1001));
}

TEST(BTree, SplitsKeepOrderDescendingInsert) {
  ThreadIdScope tid(0);
  BTree t(small_config());
  for (std::uint64_t k = 1000; k >= 1; --k) EXPECT_TRUE(t.insert(k, k));
  EXPECT_EQ(t.raw_size(), 1000u);
  EXPECT_TRUE(t.raw_validate());
  for (std::uint64_t k = 1; k <= 1000; ++k) EXPECT_TRUE(t.contains(k));
}

TEST(BTree, RangeCountMatchesReference) {
  ThreadIdScope tid(0);
  BTree t(small_config());
  std::set<std::uint64_t> ref;
  Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t k = rng.next_below(10000);
    t.insert(k, k);
    ref.insert(k);
  }
  ASSERT_TRUE(t.raw_validate());
  for (int i = 0; i < 200; ++i) {
    std::uint64_t lo = rng.next_below(10000);
    std::uint64_t hi = lo + rng.next_below(3000);
    const auto expect = static_cast<std::uint64_t>(
        std::distance(ref.lower_bound(lo), ref.upper_bound(hi)));
    EXPECT_EQ(t.range_count(lo, hi), expect) << "[" << lo << "," << hi << "]";
  }
  EXPECT_EQ(t.range_count(0, ~0ULL), ref.size());
}

TEST(BTree, MatchesReferenceUnderRandomMixedOps) {
  ThreadIdScope tid(0);
  BTree t(small_config());
  std::set<std::uint64_t> ref;
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t k = rng.next_below(2000);
    switch (rng.next_below(3)) {
      case 0:
        EXPECT_EQ(t.insert(k, k), ref.insert(k).second);
        break;
      case 1:
        EXPECT_EQ(t.erase(k), ref.erase(k) > 0);
        break;
      default:
        EXPECT_EQ(t.contains(k), ref.count(k) > 0);
    }
  }
  EXPECT_EQ(t.raw_size(), ref.size());
  EXPECT_TRUE(t.raw_validate());
}

TEST(BTree, PoolExhaustionDropsInsertsButStaysConsistent) {
  ThreadIdScope tid(0);
  BTree::Config cfg;
  cfg.capacity = 64;  // tiny pool
  cfg.max_threads = 1;
  BTree t(cfg);
  std::set<std::uint64_t> ref;
  for (std::uint64_t k = 0; k < 5000; ++k) {
    if (t.insert(k * 37 % 4096, k)) ref.insert(k * 37 % 4096);
  }
  EXPECT_TRUE(t.raw_validate());
  // Everything reported inserted must be findable.
  for (const std::uint64_t k : ref) EXPECT_TRUE(t.contains(k));
}

TEST(BTree, DeepTreeIntegrity) {
  ThreadIdScope tid(0);
  BTree::Config cfg;
  cfg.capacity = 1 << 15;
  cfg.max_threads = 1;
  BTree t(cfg);
  Rng rng(3);
  std::set<std::uint64_t> ref;
  for (int i = 0; i < 60000; ++i) {
    const std::uint64_t k = rng.next();
    t.insert(k, k ^ 1);
    ref.insert(k);
  }
  EXPECT_EQ(t.raw_size(), ref.size());
  EXPECT_TRUE(t.raw_validate());
}

TEST(BTree, TransactionalWritersAtomicUnderAbort) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  ThreadIdScope tid(0);
  BTree t(small_config());
  // An aborted transaction's inserts (including node splits!) must vanish.
  const htm::TxStatus st = engine.try_transaction([&] {
    for (std::uint64_t k = 0; k < 50; ++k) t.insert(k, k);
    engine.abort_tx(7);
  });
  EXPECT_FALSE(st.committed());
  EXPECT_EQ(t.raw_size(), 0u);
  EXPECT_TRUE(t.raw_validate());
  // And a committed one persists.
  engine.try_transaction([&] {
    for (std::uint64_t k = 0; k < 50; ++k) t.insert(k, k);
  });
  EXPECT_EQ(t.raw_size(), 50u);
}

TEST(BTree, ConcurrentUseUnderSpRWL) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  BTree t(small_config());
  {
    ThreadIdScope tid(0);
    for (std::uint64_t k = 0; k < 4096; k += 2) t.insert(k, k);  // evens
  }
  core::SpRWLock lock{core::Config::variant(core::SchedulingVariant::kFull, 8)};
  std::uint64_t bad_ranges = 0;
  sim::Simulator sim;
  sim.run(8, [&](int tid) {
    Rng rng(static_cast<std::uint64_t>(tid) * 3 + 1);
    for (int i = 0; i < 60; ++i) {
      if (rng.next_bool(0.3)) {
        // Writers insert/erase PAIRS of odd keys, preserving the evenness
        // invariant of counts over aligned ranges of width 512:
        // each aligned range holds 256 evens plus 0 or 2 odds per pair.
        const std::uint64_t base = rng.next_below(8) * 512;
        const std::uint64_t k1 = base + 2 * rng.next_below(256) + 1;
        const std::uint64_t k2 = k1 ^ 2;  // same 512-range, also odd
        const bool add = rng.next_bool(0.5);
        lock.write(1, [&] {
          if (add) {
            t.insert(k1, 1);
            t.insert(k2, 1);
          } else {
            t.erase(k1);
            t.erase(k2);
          }
        });
      } else {
        const std::uint64_t base = rng.next_below(8) * 512;
        lock.read(0, [&] {
          const std::uint64_t n = t.range_count(base, base + 511);
          if (n % 2 != 0) ++bad_ranges;  // 256 evens + even # of odds
        });
      }
    }
  });
  EXPECT_EQ(bad_ranges, 0u);
  EXPECT_TRUE(t.raw_validate());
}

}  // namespace
}  // namespace sprwl::structures
