// Cancellation-unwind chaos: timed acquisitions racing preemptions and
// abort storms, over a seed matrix, with the quiesce-state invariants
// checked after every run.
//
// The property under test is the tentpole's unwind guarantee: a timed
// read or write that gives up mid-acquisition must undo everything it
// published — reader flag, socket count, SNZI arrival, bravo ReaderTable
// slot — no matter where in the protocol the deadline expired or which
// fault fired in the window. A single leaked bit shows up here as a
// phantom reader (tracking_quiescent() false), a ghost table occupant
// (all_slots_empty_raw() false), or a wedged writer (watchdog trip).
//
// Seed replay: SPRWL_SEED=<n> reproduces any failing schedule
// bit-identically (tests/support/seed_replay.h).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/bravo.h"
#include "core/sprwl.h"
#include "common/platform.h"
#include "common/rng.h"
#include "fault/fault.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "locks/deadline.h"
#include "sim/simulator.h"

#include "../support/seed_replay.h"

namespace sprwl::fault {
namespace {

constexpr int kThreads = 6;
constexpr int kWriters = 2;
constexpr int kOps = 60;
constexpr std::size_t kCells = 4;
constexpr std::uint64_t kHorizon = 300'000;

// Budgets alternate per op: the tiny one expires while the acquisition is
// still mid-protocol (exercising the unwind), the comfortable one lets the
// section run (exercising the normal exit after a timed entry).
constexpr std::uint64_t kTinyBudget = 50;
constexpr std::uint64_t kFatBudget = 2'000'000;

struct TimedChaosResult {
  bool completed = false;
  std::uint64_t commits = 0;
  std::uint64_t read_timeouts = 0;
  std::uint64_t write_timeouts = 0;
  std::uint64_t torn = 0;
  std::uint64_t final_value = 0;
};

TimedChaosResult run_timed_chaos(core::SpRWLock& lock, htm::Engine& engine,
                                 std::uint64_t seed, const FaultPlan& plan) {
  struct alignas(64) Cell {
    htm::Shared<std::uint64_t> v;
  };
  std::vector<Cell> cells(kCells);
  std::vector<std::uint64_t> commits(kThreads, 0);
  std::vector<std::uint64_t> rto(kThreads, 0), wto(kThreads, 0);
  std::vector<std::uint64_t> torn(kThreads, 0);

  sim::SimConfig scfg;
  scfg.max_virtual_time = 4ULL * 1000 * 1000 * 1000;
  sim::Simulator sim(scfg);
  FaultInjector injector(plan, &sim, &engine);
  FaultScope fscope(injector);
  htm::EngineScope escope(engine);

  TimedChaosResult res;
  try {
    sim.run(kThreads, [&](int tid) {
      Rng rng(seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(tid));
      const auto me = static_cast<std::size_t>(tid);
      const bool is_writer = tid >= kThreads - kWriters;
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t budget = (i % 2 == 0) ? kTinyBudget : kFatBudget;
        if (is_writer) {
          const auto r = lock.try_write_for(1, budget, [&] {
            checkpoint(InjectPoint::kWriteBody);
            const std::uint64_t v = cells[0].v.load() + 1;
            platform::advance(200);
            for (std::size_t c = 0; c < kCells; ++c) cells[c].v.store(v);
          });
          if (r == locks::AcquireResult::kAcquired) ++commits[me];
          else ++wto[me];
        } else {
          std::uint64_t torn_here = 0;
          const auto r = lock.try_read_for(0, budget, [&] {
            torn_here = 0;
            checkpoint(InjectPoint::kReadBody);
            const std::uint64_t a = cells[0].v.load();
            platform::advance(400);
            for (std::size_t c = 1; c < kCells; ++c) {
              if (cells[c].v.load() != a) ++torn_here;
            }
          });
          if (r == locks::AcquireResult::kAcquired) torn[me] += torn_here;
          else ++rto[me];
        }
        platform::advance(1 + rng.next_below(300));
      }
    });
    res.completed = true;
  } catch (const sim::SimTimeLimitError&) {
    res.completed = false;
  }

  for (int t = 0; t < kThreads; ++t) {
    const auto i = static_cast<std::size_t>(t);
    res.commits += commits[i];
    res.read_timeouts += rto[i];
    res.write_timeouts += wto[i];
    res.torn += torn[i];
  }
  res.final_value = cells[0].v.raw_load();
  for (std::size_t c = 1; c < kCells; ++c) {
    if (cells[c].v.raw_load() != res.final_value) ++res.torn;
  }
  return res;
}

FaultPlan storm_plan(std::uint64_t seed) {
  FaultPlan plan = FaultPlan::chaos(seed, kThreads, kHorizon);
  plan.storm.from = 0;
  plan.storm.until = 100'000'000;  // peak lands mid-run
  plan.storm.peak_rate = 0.7;
  return plan;
}

// Bravo bias on, uninstrumented readers: every timed read drives the
// ReaderTable occupy/expire/release protocol under fire. The table must be
// empty at quiesce — a leaked slot is exactly the bug the
// SpRWL-timeout-broken checker variant plants.
TEST(TimeoutChaos, BravoUnwindLeavesNoPhantomStateAcrossSeeds) {
  const std::uint64_t base = env_seed(21);
  std::uint64_t total_timeouts = 0;
  for (std::uint64_t seed = base; seed < base + 12; ++seed) {
    SCOPED_TRACE(testutil::seed_replay(seed));
    bravo::ReaderTable::Config tc;
    tc.max_threads = kThreads;
    auto table = std::make_shared<bravo::ReaderTable>(tc);
    core::Config cfg;
    cfg.max_threads = kThreads;
    cfg.reader_htm_first = false;
    cfg.bravo_bias = true;
    cfg.bravo_table = table;
    htm::Engine engine;
    core::SpRWLock lock{cfg};
    const TimedChaosResult r = run_timed_chaos(lock, engine, seed,
                                               storm_plan(seed));
    EXPECT_TRUE(r.completed) << "progress watchdog tripped";
    EXPECT_EQ(r.torn, 0u);
    EXPECT_EQ(r.final_value, r.commits) << "lost or phantom update";
    EXPECT_TRUE(lock.tracking_quiescent()) << "phantom reader left behind";
    EXPECT_TRUE(table->all_slots_empty_raw()) << "leaked ReaderTable slot";
    total_timeouts += r.read_timeouts + r.write_timeouts;
  }
  // The matrix must actually exercise the unwind, not just the happy path.
  EXPECT_GT(total_timeouts, 0u);
}

// SNZI tracking: a timed reader that arrived at the SNZI and then expired
// must depart on the unwind path; a lost depart keeps the root nonzero
// forever (tracking_quiescent() false) and wedges every later writer.
TEST(TimeoutChaos, SnziUnwindPairsEveryArriveWithADepart) {
  const std::uint64_t base = env_seed(22);
  std::uint64_t total_timeouts = 0;
  for (std::uint64_t seed = base; seed < base + 12; ++seed) {
    SCOPED_TRACE(testutil::seed_replay(seed));
    core::Config cfg;
    cfg.max_threads = kThreads;
    cfg.reader_htm_first = false;
    cfg.use_snzi = true;
    htm::Engine engine;
    core::SpRWLock lock{cfg};
    const TimedChaosResult r = run_timed_chaos(lock, engine, seed,
                                               storm_plan(seed));
    EXPECT_TRUE(r.completed) << "progress watchdog tripped";
    EXPECT_EQ(r.torn, 0u);
    EXPECT_EQ(r.final_value, r.commits) << "lost or phantom update";
    EXPECT_TRUE(lock.tracking_quiescent()) << "lost SNZI depart";
    total_timeouts += r.read_timeouts + r.write_timeouts;
  }
  EXPECT_GT(total_timeouts, 0u);
}

// Same-seed determinism for the timed harness: replayability is what makes
// the seed matrix a usable regression net.
TEST(TimeoutChaos, SameSeedSameOutcome) {
  const std::uint64_t seed = 7;
  core::Config cfg;
  cfg.max_threads = kThreads;
  cfg.reader_htm_first = false;
  cfg.use_snzi = true;
  htm::Engine e1, e2;
  core::SpRWLock l1{cfg}, l2{cfg};
  const TimedChaosResult a = run_timed_chaos(l1, e1, seed, storm_plan(seed));
  const TimedChaosResult b = run_timed_chaos(l2, e2, seed, storm_plan(seed));
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.read_timeouts, b.read_timeouts);
  EXPECT_EQ(a.write_timeouts, b.write_timeouts);
  EXPECT_EQ(a.final_value, b.final_value);
}

}  // namespace
}  // namespace sprwl::fault
