// Seeded chaos runs: randomized fault schedules against the lock family,
// with the safety invariants (exclusion, no lost updates, no torn reads) and
// the progress watchdog checked on every run.
//
// Seed replay: every scenario derives from env_seed(), so any failure
// reproduces bit-identically; failures print the standard replay line
// (tests/support/seed_replay.h): SPRWL_SEED=<n> to replay.
#include <gtest/gtest.h>

#include <string>

#include "core/sprwl.h"
#include "fault/chaos.h"
#include "fault/fault.h"
#include "htm/engine.h"
#include "locks/tle.h"

#include "../locks/lock_test_utils.h"
#include "../support/seed_replay.h"

namespace sprwl::fault {
namespace {

// Chaos-plan event window, matched to the virtual-time length of the
// default 8x150-op scenario (~450k cycles) so planned events land in-run.
constexpr std::uint64_t kHorizon = 450'000;

core::Config sprwl_config(int threads) {
  core::Config cfg;
  cfg.max_threads = threads;
  return cfg;
}

TEST(Chaos, SpRWLSurvivesTwentyFourSeededFaultSchedules) {
  const std::uint64_t base = env_seed(1);
  for (std::uint64_t seed = base; seed < base + 24; ++seed) {
    SCOPED_TRACE(testutil::seed_replay(seed));
    ChaosConfig cfg;
    cfg.seed = seed;
    const FaultPlan plan = FaultPlan::chaos(seed, cfg.threads, kHorizon);
    htm::Engine engine;
    core::SpRWLock lock{sprwl_config(cfg.threads)};
    const ChaosResult r = run_chaos(lock, engine, cfg, plan);
    EXPECT_TRUE(r.completed) << "progress watchdog tripped";
    EXPECT_EQ(r.torn_reads, 0u);
    EXPECT_EQ(r.lost_updates, 0u);
    EXPECT_EQ(r.writes,
              static_cast<std::uint64_t>(cfg.writers) *
                  static_cast<std::uint64_t>(cfg.ops_per_thread));
    EXPECT_TRUE(r.invariants_ok());
  }
}

TEST(Chaos, SeedChangesTheSchedule) {
  // Replay determinism: same seed -> identical run; different seed ->
  // (at least somewhere) different timing.
  ChaosConfig cfg;
  cfg.seed = 5;
  const FaultPlan plan = FaultPlan::chaos(5, cfg.threads, kHorizon);
  htm::Engine e1, e2;
  core::SpRWLock l1{sprwl_config(cfg.threads)};
  core::SpRWLock l2{sprwl_config(cfg.threads)};
  const ChaosResult a = run_chaos(l1, e1, cfg, plan);
  const ChaosResult b = run_chaos(l2, e2, cfg, plan);
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.final_value, b.final_value);
  EXPECT_EQ(a.faults.preemptions, b.faults.preemptions);
  EXPECT_EQ(a.faults.syscalls, b.faults.syscalls);
}

TEST(Chaos, StalledReaderEscalationFiresAndIsCounted) {
  // A reader descheduled right after raising its flag (the kReadEnter
  // dangerous window) blocks every writer. With the retry limit out of the
  // way, the stalled-reader watchdog is what must rescue the writer —
  // visibly, in the escalation stats.
  ChaosConfig cfg;
  cfg.threads = 3;
  cfg.writers = 1;
  cfg.ops_per_thread = 40;
  FaultPlan plan;
  PreemptSpec s;
  s.point = InjectPoint::kReadEnter;
  s.tid = 0;
  s.not_before = 10'000;
  s.duration = 1'500'000;  // far past the watchdog threshold
  plan.preempts.push_back(s);

  htm::Engine engine;
  core::Config lcfg = sprwl_config(cfg.threads);
  lcfg.max_retries = 1'000'000;  // retry exhaustion must not fire first
  lcfg.writer_retry_budget_cycles = 0;  // nor the budget
  core::SpRWLock lock{lcfg};
  const ChaosResult r = run_chaos(lock, engine, cfg, plan);
  ASSERT_TRUE(r.invariants_ok());
  EXPECT_GE(r.faults.preemptions, 1u);
  EXPECT_GE(r.lock_stats.escalations.stalled_reader, 1u);
  EXPECT_GE(r.lock_stats.aborts.explicit_reader, 1u);
  EXPECT_GE(r.lock_stats.writes.gl, 1u);  // the escalated write took the SGL
}

TEST(Chaos, WatchdogDisabledWritersStillFinishViaRetryLimit) {
  // Same stall, default retry limit, watchdog off: the plain retry budget
  // must still rescue the writers (escalation accounted differently).
  ChaosConfig cfg;
  cfg.threads = 3;
  cfg.writers = 1;
  cfg.ops_per_thread = 40;
  FaultPlan plan;
  PreemptSpec s;
  s.point = InjectPoint::kReadEnter;
  s.tid = 0;
  s.not_before = 10'000;
  s.duration = 1'500'000;
  plan.preempts.push_back(s);

  htm::Engine engine;
  core::Config lcfg = sprwl_config(cfg.threads);
  lcfg.reader_stall_multiplier = 0.0;  // watchdog off
  core::SpRWLock lock{lcfg};
  const ChaosResult r = run_chaos(lock, engine, cfg, plan);
  ASSERT_TRUE(r.invariants_ok());
  EXPECT_EQ(r.lock_stats.escalations.stalled_reader, 0u);
  EXPECT_GE(r.lock_stats.escalations.fallbacks(), 1u);
}

TEST(Chaos, AbortStormSpRWLReadersStayUninstrumentedTLECollapses) {
  // A hard interrupt storm across the whole run. SpRWL's uninstrumented
  // readers cannot abort, so reads keep completing off the HTM path; TLE
  // readers are transactions and collapse onto the global lock.
  ChaosConfig cfg;
  cfg.seed = 11;
  FaultPlan plan;
  plan.seed = 11;
  plan.storm.from = 0;
  plan.storm.until = 100'000'000;  // covers the whole run
  plan.storm.peak_rate = 0.9;

  htm::Engine e1;
  core::SpRWLock sprwl{sprwl_config(cfg.threads)};
  const ChaosResult rs = run_chaos(sprwl, e1, cfg, plan);
  ASSERT_TRUE(rs.invariants_ok());
  EXPECT_GT(rs.lock_stats.reads.unins, 0u);

  htm::Engine e2;
  locks::TLELock::Config tcfg;
  tcfg.max_threads = cfg.threads;
  locks::TLELock tle{tcfg};
  const ChaosResult rt = run_chaos(tle, e2, cfg, plan);
  ASSERT_TRUE(rt.invariants_ok());
  EXPECT_GT(rt.lock_stats.reads.gl, 0u);
  EXPECT_GT(rt.lock_stats.aborts.spurious, 0u);
  // The storm pushes a larger share of TLE's reads onto its pessimistic
  // path than SpRWL's (whose readers never need the SGL to make progress).
  const double tle_gl_share =
      static_cast<double>(rt.lock_stats.reads.gl) /
      static_cast<double>(rt.lock_stats.reads.total());
  const double sprwl_gl_share =
      static_cast<double>(rs.lock_stats.reads.gl) /
      static_cast<double>(rs.lock_stats.reads.total());
  EXPECT_GT(tle_gl_share, sprwl_gl_share);
}

// Every lock of the library must keep the chaos invariants under a mild
// seeded fault schedule (pessimistic locks simply never notice the
// HTM-side faults; preemptions hit everyone).
template <class Lock>
class ChaosAllLocks : public ::testing::Test {};
TYPED_TEST_SUITE(ChaosAllLocks, testutil::AllLockTypes);

TYPED_TEST(ChaosAllLocks, KeepsInvariantsUnderSeededFaults) {
  const std::uint64_t seed = env_seed(3);
  SCOPED_TRACE(testutil::seed_replay(seed));
  ChaosConfig cfg;
  cfg.seed = seed;
  cfg.threads = 6;
  cfg.ops_per_thread = 60;
  const FaultPlan plan = FaultPlan::chaos(seed, cfg.threads, kHorizon / 2);
  htm::Engine engine;
  auto lock = testutil::make_lock<TypeParam>(cfg.threads);
  const ChaosResult r = run_chaos(*lock, engine, cfg, plan);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.torn_reads, 0u);
  EXPECT_EQ(r.lost_updates, 0u);
}

}  // namespace
}  // namespace sprwl::fault
