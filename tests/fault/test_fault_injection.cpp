// Unit tests for the fault-injection subsystem: the simulator's deschedule
// hook, each FaultPlan mechanism in isolation, and the seed-replay override.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/platform.h"
#include "core/sprwl.h"
#include "fault/fault.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "locks/tle.h"
#include "sim/simulator.h"

namespace sprwl::fault {
namespace {

TEST(DescheduleHook, JumpsTheFiberClockAndCounts) {
  sim::Simulator sim;
  std::uint64_t resumed_at = 0;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      platform::advance(100);
      sim.deschedule_current_until(50'000);
      resumed_at = platform::now();
    } else {
      platform::advance(10'000);
    }
  });
  EXPECT_GE(resumed_at, 50'000u);
  EXPECT_EQ(sim.preemptions(), 1u);
  EXPECT_GE(sim.final_time(), 50'000u);
}

TEST(DescheduleHook, OtherFibersRunInTheGap) {
  // While fiber 0 is descheduled, fiber 1's work fills the interval — the
  // preempted fiber performs no work, it does not stop the world.
  sim::Simulator sim;
  std::uint64_t t1_done = 0;
  std::uint64_t t0_resumed = 0;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      sim.deschedule_current_until(20'000);
      t0_resumed = platform::now();
    } else {
      platform::advance(5'000);
      t1_done = platform::now();
    }
  });
  EXPECT_EQ(t1_done, 5'000u);
  EXPECT_GE(t0_resumed, 20'000u);
}

TEST(DescheduleHook, NoOpOutsideAFiber) {
  sim::Simulator sim;
  sim.deschedule_current_until(1'000'000);  // must not crash or count
  EXPECT_EQ(sim.preemptions(), 0u);
}

TEST(Preempt, FiresAtMatchingPointAndTidOnly) {
  sim::Simulator sim;
  FaultPlan plan;
  PreemptSpec s;
  s.point = InjectPoint::kReadBody;
  s.tid = 1;
  s.duration = 30'000;
  s.count = 1;
  plan.preempts.push_back(s);
  FaultInjector injector(plan, &sim, nullptr);
  FaultScope scope(injector);

  std::vector<std::uint64_t> after(2, 0);
  sim.run(2, [&](int tid) {
    checkpoint(InjectPoint::kWriteBody);  // wrong point: must not fire
    checkpoint(InjectPoint::kReadBody);   // fires for tid 1 only
    checkpoint(InjectPoint::kReadBody);   // count spent: must not fire again
    after[static_cast<std::size_t>(tid)] = platform::now();
  });
  EXPECT_LT(after[0], 30'000u);
  EXPECT_GE(after[1], 30'000u);
  EXPECT_EQ(injector.stats().preemptions, 1u);
  EXPECT_EQ(sim.preemptions(), 1u);
}

TEST(Preempt, AbortsAnInFlightTransaction) {
  // A context switch kills a best-effort hardware transaction: preempting
  // inside try_transaction must surface as a spurious abort, not a commit.
  htm::Engine engine;
  htm::EngineScope escope(engine);
  sim::Simulator sim;
  FaultPlan plan;
  PreemptSpec s;
  s.point = InjectPoint::kWriteBody;
  s.duration = 10'000;
  plan.preempts.push_back(s);
  FaultInjector injector(plan, &sim, &engine);
  FaultScope scope(injector);

  htm::Shared<std::uint64_t> cell;
  htm::TxStatus first{};
  std::uint64_t commits = 0;
  sim.run(1, [&](int) {
    for (int i = 0; i < 3; ++i) {
      const htm::TxStatus st = engine.try_transaction([&] {
        cell.store(cell.load() + 1);
        checkpoint(InjectPoint::kWriteBody);
      });
      if (i == 0) first = st;
      if (st.committed()) ++commits;
    }
  });
  EXPECT_EQ(first.cause, htm::AbortCause::kSpurious);
  EXPECT_EQ(commits, 2u);           // the preempt had count 1
  EXPECT_EQ(cell.raw_load(), 2u);   // the aborted attempt left no trace
}

TEST(AbortStorm, RampsUpAndRestoresTheBaseRate) {
  htm::EngineConfig ecfg;
  ecfg.spurious_abort_rate = 0.01;  // configured base rate
  htm::Engine engine{ecfg};
  sim::Simulator sim;
  FaultPlan plan;
  plan.storm.from = 10'000;
  plan.storm.until = 20'000;
  plan.storm.peak_rate = 0.5;
  FaultInjector injector(plan, &sim, &engine);
  FaultScope scope(injector);

  double before = -1.0, mid = -1.0, after = -1.0;
  sim.run(1, [&](int) {
    checkpoint(InjectPoint::kReadBody);
    before = engine.spurious_abort_rate();
    platform::advance(15'000);  // exact midpoint of the window
    checkpoint(InjectPoint::kReadBody);
    mid = engine.spurious_abort_rate();
    platform::advance(15'000);
    checkpoint(InjectPoint::kReadBody);
    after = engine.spurious_abort_rate();
  });
  EXPECT_DOUBLE_EQ(before, 0.01);
  EXPECT_DOUBLE_EQ(mid, 0.51);    // base + full peak at the triangle apex
  EXPECT_DOUBLE_EQ(after, 0.01);  // restored, not clobbered to zero
  EXPECT_DOUBLE_EQ(injector.stats().peak_applied_rate, 0.51);
}

TEST(CapacityJitter, ShrinksCapacityInsideTheWindowOnly) {
  htm::EngineConfig ecfg;
  ecfg.capacity = htm::CapacityProfile{"small", 8, 8};
  htm::Engine engine{ecfg};
  htm::EngineScope escope(engine);
  sim::Simulator sim;
  FaultPlan plan;
  plan.jitter.from = 0;
  plan.jitter.until = 50'000;
  plan.jitter.min_scale = 0.2;  // 8 lines * 0.2 = 1.6 -> at most 1-6 lines
  plan.jitter.max_scale = 0.2;
  FaultInjector injector(plan, &sim, &engine);
  FaultScope scope(injector);

  struct alignas(64) Cell { htm::Shared<std::uint64_t> v; };
  std::vector<Cell> cells(4);
  htm::TxStatus inside{}, outside{};
  sim.run(1, [&](int) {
    checkpoint(InjectPoint::kWriteBody);  // applies the jitter
    inside = engine.try_transaction([&] {
      for (auto& c : cells) c.v.store(1);  // 4 lines > jittered capacity
    });
    platform::advance(60'000);            // leave the window
    checkpoint(InjectPoint::kWriteBody);  // restores the base profile
    outside = engine.try_transaction([&] {
      for (auto& c : cells) c.v.store(2);  // 4 lines <= 8: fits again
    });
  });
  EXPECT_EQ(inside.cause, htm::AbortCause::kCapacity);
  EXPECT_TRUE(outside.committed());
  EXPECT_GT(injector.stats().capacity_jitters, 0u);
}

TEST(Syscall, AbortsInsideATransactionChargesTimeOutside) {
  htm::Engine engine;
  htm::EngineScope escope(engine);
  sim::Simulator sim;
  htm::TxStatus in_tx{};
  std::uint64_t charged = 0;
  sim.run(1, [&](int) {
    in_tx = engine.try_transaction([&] { engine.syscall(1'000); });
    const std::uint64_t t0 = platform::now();
    engine.syscall(1'000);
    charged = platform::now() - t0;
  });
  EXPECT_EQ(in_tx.cause, htm::AbortCause::kSpurious);
  EXPECT_EQ(charged, 1'000u);
}

TEST(Syscall, WindowForcesHtmFirstReadersUninstrumented) {
  // The decisive SpRWL scenario: a reader that performs a syscall can never
  // commit in HTM, so every section inside the window must land on the
  // uninstrumented path — and still succeed. The same syscalls push TLE's
  // readers onto its global lock.
  htm::Engine engine;
  htm::EngineScope escope(engine);
  core::Config cfg = core::Config::variant(core::SchedulingVariant::kNoSched, 1);
  cfg.reader_htm_first = true;
  core::SpRWLock sprwl{cfg};
  locks::TLELock tle{locks::TLELock::Config{}};

  sim::Simulator sim;
  FaultPlan plan;
  SyscallSpec s;  // default window [0, inf): every read hits a syscall
  plan.syscalls.push_back(s);
  FaultInjector injector(plan, &sim, &engine);
  FaultScope scope(injector);

  htm::Shared<std::uint64_t> cell;
  cell.raw_store(7);
  std::uint64_t seen = 0;
  sim.run(1, [&](int) {
    for (int i = 0; i < 20; ++i) {
      sprwl.read(0, [&] {
        checkpoint(InjectPoint::kReadBody);
        seen += cell.load();
      });
      tle.read(0, [&] {
        checkpoint(InjectPoint::kReadBody);
        seen += cell.load();
      });
    }
  });
  EXPECT_EQ(seen, 2u * 20u * 7u);
  const locks::LockStats sp = sprwl.stats();
  EXPECT_EQ(sp.reads.unins, 20u);  // all fell back, none stuck in HTM
  EXPECT_EQ(sp.reads.htm, 0u);
  EXPECT_GT(sp.aborts.spurious, 0u);  // the syscall aborts were attributed
  const locks::LockStats tl = tle.stats();
  EXPECT_EQ(tl.reads.gl, 20u);  // TLE has no uninstrumented path to save it
  EXPECT_GT(tl.escalations.retry_exhausted, 0u);
  EXPECT_EQ(injector.stats().syscalls > 0, true);
}

TEST(FaultPlanChaos, IsDeterministicInItsSeed) {
  const FaultPlan a = FaultPlan::chaos(123, 8, 1'000'000);
  const FaultPlan b = FaultPlan::chaos(123, 8, 1'000'000);
  const FaultPlan c = FaultPlan::chaos(124, 8, 1'000'000);
  ASSERT_EQ(a.preempts.size(), b.preempts.size());
  for (std::size_t i = 0; i < a.preempts.size(); ++i) {
    EXPECT_EQ(a.preempts[i].tid, b.preempts[i].tid);
    EXPECT_EQ(a.preempts[i].not_before, b.preempts[i].not_before);
    EXPECT_EQ(a.preempts[i].duration, b.preempts[i].duration);
  }
  EXPECT_EQ(a.storm.from, b.storm.from);
  EXPECT_DOUBLE_EQ(a.storm.peak_rate, b.storm.peak_rate);
  // Different seeds produce different schedules (with overwhelming
  // probability; these two differ).
  const bool same = a.preempts.size() == c.preempts.size() &&
                    a.storm.from == c.storm.from &&
                    (a.preempts.empty() || a.preempts[0].not_before ==
                                               c.preempts[0].not_before);
  EXPECT_FALSE(same);
}

TEST(EnvSeed, OverridesTheFallback) {
  ::unsetenv("SPRWL_SEED");
  EXPECT_EQ(env_seed(42), 42u);
  ::setenv("SPRWL_SEED", "777", 1);
  EXPECT_EQ(env_seed(42), 777u);
  ::setenv("SPRWL_SEED", "12x", 1);  // garbage: fall back
  EXPECT_EQ(env_seed(42), 42u);
  ::setenv("SPRWL_SEED", "", 1);
  EXPECT_EQ(env_seed(42), 42u);
  ::unsetenv("SPRWL_SEED");
}

}  // namespace
}  // namespace sprwl::fault
