// Cost-model accounting: shared accesses, fences and HTM events must charge
// exactly the cycles common/costs.h specifies — the figures' virtual-time
// denominators depend on it.
#include <gtest/gtest.h>

#include "common/costs.h"
#include "common/platform.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "sim/simulator.h"

namespace sprwl {
namespace {

TEST(CostAccounting, PlainLoadsAndStoresChargePerAccess) {
  sim::Simulator sim;
  htm::Shared<std::uint64_t> cell;
  std::uint64_t elapsed = 0;
  sim.run(1, [&](int) {
    const std::uint64_t t0 = platform::now();
    for (int i = 0; i < 100; ++i) (void)cell.load();
    for (int i = 0; i < 50; ++i) cell.store(1);  // no engine: plain stores
    elapsed = platform::now() - t0;
  });
  EXPECT_EQ(elapsed, 100 * g_costs.load + 50 * g_costs.store);
}

TEST(CostAccounting, FenceChargesFenceCost) {
  sim::Simulator sim;
  std::uint64_t elapsed = 0;
  sim.run(1, [&](int) {
    const std::uint64_t t0 = platform::now();
    htm::memory_fence();
    elapsed = platform::now() - t0;
  });
  EXPECT_EQ(elapsed, g_costs.fence);
}

TEST(CostAccounting, CommittedTransactionChargesBeginBodyCommit) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  htm::Shared<std::uint64_t> cell;
  sim::Simulator sim;
  std::uint64_t elapsed = 0;
  sim.run(1, [&](int) {
    const std::uint64_t t0 = platform::now();
    engine.try_transaction([&] {
      (void)cell.load();
      cell.store(1);
    });
    elapsed = platform::now() - t0;
  });
  // The commit publishes one written line: its publish window costs
  // line_publish on top of the fixed commit cost.
  EXPECT_EQ(elapsed, g_costs.tx_begin + g_costs.load + g_costs.store +
                         g_costs.tx_commit + g_costs.line_publish);
}

TEST(CostAccounting, ReadOnlyTransactionChargesNoPublishWindow) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  htm::Shared<std::uint64_t> cell;
  sim::Simulator sim;
  std::uint64_t elapsed = 0;
  sim.run(1, [&](int) {
    const std::uint64_t t0 = platform::now();
    engine.try_transaction([&] { (void)cell.load(); });
    elapsed = platform::now() - t0;
  });
  EXPECT_EQ(elapsed, g_costs.tx_begin + g_costs.load + g_costs.tx_commit);
}

TEST(CostAccounting, AbortedTransactionChargesAbortPenalty) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  sim::Simulator sim;
  std::uint64_t elapsed = 0;
  sim.run(1, [&](int) {
    const std::uint64_t t0 = platform::now();
    engine.try_transaction([&] { engine.abort_tx(1); });
    elapsed = platform::now() - t0;
  });
  EXPECT_EQ(elapsed, g_costs.tx_begin + g_costs.tx_abort);
}

TEST(CostAccounting, UninstrumentedReaderPaysNoTxOverhead) {
  // The core claim of the paper, in cost-model terms: an uninstrumented
  // read of N cells costs N loads — no begin/commit, no per-access
  // instrumentation beyond the load itself.
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  std::vector<htm::Shared<std::uint64_t>> cells(64);
  sim::Simulator sim;
  std::uint64_t elapsed = 0;
  sim.run(1, [&](int) {
    const std::uint64_t t0 = platform::now();
    for (auto& c : cells) (void)c.load();  // outside any transaction
    elapsed = platform::now() - t0;
  });
  EXPECT_EQ(elapsed, 64 * g_costs.load);
}

TEST(CostAccounting, StrongIsolationStoreCostsOneStore) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  htm::Shared<std::uint64_t> flag;
  sim::Simulator sim;
  std::uint64_t elapsed = 0;
  sim.run(1, [&](int) {
    const std::uint64_t t0 = platform::now();
    flag.store(1);  // one store plus the line's publish window
    elapsed = platform::now() - t0;
  });
  EXPECT_EQ(elapsed, g_costs.store + g_costs.line_publish);
}

TEST(CostAccounting, FailedNonTxCasCostsOneLoad) {
  // Regression: the failure path of a strong-isolation CAS must be a plain
  // load — no RMW charge, no publish window, no lock traffic.
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  htm::Shared<std::uint64_t> word{5};
  sim::Simulator sim;
  std::uint64_t elapsed = 0;
  bool ok = true;
  sim.run(1, [&](int) {
    const std::uint64_t t0 = platform::now();
    ok = word.cas(7, 9);
    elapsed = platform::now() - t0;
  });
  EXPECT_FALSE(ok);
  EXPECT_EQ(elapsed, g_costs.load);
}

TEST(CostAccounting, SuccessfulNonTxCasCostsLoadCasPublish) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  htm::Shared<std::uint64_t> word{5};
  sim::Simulator sim;
  std::uint64_t elapsed = 0;
  bool ok = false;
  sim.run(1, [&](int) {
    const std::uint64_t t0 = platform::now();
    ok = word.cas(5, 9);
    elapsed = platform::now() - t0;
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(elapsed, g_costs.load + g_costs.cas + g_costs.line_publish);
}

}  // namespace
}  // namespace sprwl
