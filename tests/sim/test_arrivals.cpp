// Arrival-process generation (sim/arrivals.h): seed determinism, the
// long-run mean staying at the nominal rate for every process, and the
// diurnal process actually modulating — peak-phase arrivals must outnumber
// trough-phase arrivals by roughly the configured swing, not just on
// average but in every full period.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/arrivals.h"

namespace sprwl::sim {
namespace {

TEST(Arrivals, DiurnalValidatesItsShape) {
  ArrivalConfig cfg;
  cfg.process = ArrivalProcess::kDiurnal;
  cfg.diurnal_period = 0;
  EXPECT_THROW(generate_arrivals(cfg), std::invalid_argument);
  cfg.diurnal_period = 1'000'000;
  cfg.diurnal_amplitude = 1.5;
  EXPECT_THROW(generate_arrivals(cfg), std::invalid_argument);
  cfg.diurnal_amplitude = -0.1;
  EXPECT_THROW(generate_arrivals(cfg), std::invalid_argument);
}

TEST(Arrivals, DiurnalIsSeedDeterministicAndSorted) {
  ArrivalConfig cfg;
  cfg.process = ArrivalProcess::kDiurnal;
  cfg.count = 2'000;
  cfg.seed = 9;
  const std::vector<Request> a = generate_arrivals(cfg);
  const std::vector<Request> b = generate_arrivals(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].is_write, b[i].is_write);
    if (i > 0) EXPECT_GE(a[i].arrival, a[i - 1].arrival);
  }
  cfg.seed = 10;
  const std::vector<Request> c = generate_arrivals(cfg);
  bool differs = false;
  for (std::size_t i = 0; i < std::min(a.size(), c.size()); ++i) {
    if (a[i].arrival != c[i].arrival) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Arrivals, DiurnalLongRunMeanMatchesNominalRate) {
  ArrivalConfig cfg;
  cfg.process = ArrivalProcess::kDiurnal;
  cfg.rate = 1e-4;
  cfg.count = 20'000;
  cfg.diurnal_period = 500'000;
  cfg.diurnal_amplitude = 0.8;
  const std::vector<Request> reqs = generate_arrivals(cfg);
  const double span = static_cast<double>(reqs.back().arrival);
  const double mean = static_cast<double>(reqs.size()) / span;
  EXPECT_NEAR(mean, cfg.rate, 0.05 * cfg.rate)
      << "thinning must preserve the nominal long-run mean";
}

TEST(Arrivals, DiurnalPeakHalfBeatsTroughHalfEveryPeriod) {
  // Split each period into the half where sin >= 0 (rising, peak) and the
  // half where it is < 0 (trough). With amplitude 0.8 the expected counts
  // are (1 + 2*0.8/pi) : (1 - 2*0.8/pi) ≈ 1.51 : 0.49 — demand a ratio of
  // at least 2 in every fully covered period, which noise cannot erase at
  // ~50 arrivals per period.
  ArrivalConfig cfg;
  cfg.process = ArrivalProcess::kDiurnal;
  cfg.rate = 1e-4;
  cfg.count = 5'000;
  cfg.diurnal_period = 500'000;
  cfg.diurnal_amplitude = 0.8;
  const std::vector<Request> reqs = generate_arrivals(cfg);
  const std::uint64_t period = cfg.diurnal_period;
  const std::uint64_t whole_periods = reqs.back().arrival / period;
  ASSERT_GE(whole_periods, 5u);
  std::vector<std::uint64_t> peak(whole_periods, 0), trough(whole_periods, 0);
  for (const Request& r : reqs) {
    const std::uint64_t p = r.arrival / period;
    if (p >= whole_periods) break;
    if (r.arrival % period < period / 2) {
      ++peak[p];
    } else {
      ++trough[p];
    }
  }
  std::uint64_t peak_total = 0, trough_total = 0, peak_won = 0;
  for (std::uint64_t p = 0; p < whole_periods; ++p) {
    peak_total += peak[p];
    trough_total += trough[p];
    if (peak[p] > trough[p]) ++peak_won;
  }
  // Aggregate swing: expected ratio ≈ 3.07; demand at least 2.
  EXPECT_GE(peak_total, 2 * trough_total)
      << "peak=" << peak_total << " trough=" << trough_total;
  // And the swing must be periodic, not one lucky burst: the peak half
  // wins in (nearly) every period.
  EXPECT_GE(peak_won * 10, whole_periods * 9)
      << peak_won << " of " << whole_periods << " periods";
}

TEST(Arrivals, ZeroAmplitudeDiurnalIsPlainPoisson) {
  // amplitude 0 degenerates to a homogeneous process: every thinning
  // candidate is accepted, so the stream has the Poisson mean.
  ArrivalConfig cfg;
  cfg.process = ArrivalProcess::kDiurnal;
  cfg.rate = 1e-4;
  cfg.count = 10'000;
  cfg.diurnal_amplitude = 0.0;
  const std::vector<Request> reqs = generate_arrivals(cfg);
  const double mean = static_cast<double>(reqs.size()) /
                      static_cast<double>(reqs.back().arrival);
  EXPECT_NEAR(mean, cfg.rate, 0.05 * cfg.rate);
}

TEST(Arrivals, ExistingProcessesUnchangedBySeed) {
  // Guard: adding the diurnal branch must not perturb the Poisson or
  // bursty streams (the BENCH_tail goldens depend on them).
  ArrivalConfig cfg;
  cfg.count = 500;
  cfg.seed = 4;
  const std::vector<Request> p1 = generate_arrivals(cfg);
  const std::vector<Request> p2 = generate_arrivals(cfg);
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i].arrival, p2[i].arrival);
  }
  cfg.process = ArrivalProcess::kBursty;
  const std::vector<Request> b1 = generate_arrivals(cfg);
  const std::vector<Request> b2 = generate_arrivals(cfg);
  ASSERT_EQ(b1.size(), b2.size());
  for (std::size_t i = 0; i < b1.size(); ++i) {
    EXPECT_EQ(b1[i].arrival, b2[i].arrival);
  }
}

}  // namespace
}  // namespace sprwl::sim
