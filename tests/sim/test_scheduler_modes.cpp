// Equivalence and invariants across the three scheduler configurations:
// direct switching (default), trampoline (direct_switch = false) and the
// legacy priority-queue baseline (legacy_ready_queue = true). All three
// must produce the *same schedule* — perf_pipeline's speedup claims depend
// on the modes being interchangeable in everything but wall-clock cost.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace sprwl::sim {
namespace {

struct ModeRun {
  std::vector<int> order;       // fiber activations in execution order
  std::uint64_t final_time = 0;
  SimStats stats;
};

// A heavily interleaving workload: per-fiber step costs are coprime-ish so
// fibers constantly overtake each other and almost every advance yields.
ModeRun run_mode(SimConfig cfg, int nfibers, int steps) {
  Simulator sim(cfg);
  ModeRun r;
  sim.run(nfibers, [&](int tid) {
    for (int i = 0; i < steps; ++i) {
      platform::advance(static_cast<std::uint64_t>(3 + (tid * 7 + i) % 11));
      r.order.push_back(tid);
    }
  });
  r.final_time = sim.final_time();
  r.stats = sim.stats();
  return r;
}

TEST(SchedulerModes, IdenticalScheduleAcrossAllThreeModes) {
  constexpr int kFibers = 9;
  constexpr int kSteps = 200;
  SimConfig direct;
  direct.direct_switch = true;
  SimConfig trampoline;
  trampoline.direct_switch = false;
  SimConfig legacy;
  legacy.legacy_ready_queue = true;

  const ModeRun a = run_mode(direct, kFibers, kSteps);
  const ModeRun b = run_mode(trampoline, kFibers, kSteps);
  const ModeRun c = run_mode(legacy, kFibers, kSteps);

  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.order, c.order);
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.final_time, c.final_time);
}

TEST(SchedulerModes, SwitchCountInvariants) {
  constexpr int kFibers = 7;
  constexpr int kSteps = 150;
  SimConfig direct;
  direct.direct_switch = true;
  SimConfig trampoline;
  trampoline.direct_switch = false;
  SimConfig legacy;
  legacy.legacy_ready_queue = true;

  const ModeRun a = run_mode(direct, kFibers, kSteps);
  const ModeRun b = run_mode(trampoline, kFibers, kSteps);
  const ModeRun c = run_mode(legacy, kFibers, kSteps);

  // Total activations are a property of the schedule, not the switch
  // mechanism, so all modes agree.
  EXPECT_EQ(a.stats.switches, b.stats.switches);
  EXPECT_EQ(a.stats.switches, c.stats.switches);
  EXPECT_GT(a.stats.switches, static_cast<std::uint64_t>(kFibers));

  // Under direct switching the scheduler stack is entered exactly once per
  // fiber (to start it); every other activation is fiber→fiber.
  EXPECT_EQ(a.stats.direct_switches,
            a.stats.switches - static_cast<std::uint64_t>(kFibers));

  // The trampoline modes never switch fiber→fiber.
  EXPECT_EQ(b.stats.direct_switches, 0u);
  EXPECT_EQ(c.stats.direct_switches, 0u);
}

TEST(SchedulerModes, DirectSwitchHeapTrafficMatchesActivations) {
  constexpr int kFibers = 5;
  SimConfig direct;
  direct.direct_switch = true;
  const ModeRun a = run_mode(direct, kFibers, 100);
  // Every push has a matching pop: the heap drains completely.
  EXPECT_EQ(a.stats.heap_pushes, a.stats.heap_pops);
}

// The livelock bound auto-derives from the fiber count (64 + 16 * n):
// queue-lock handoff chains get longer with more parked waiters, so a flat
// constant misreads healthy MCS handoffs as livelock at 8+ threads.
// Explicit values are honoured unchanged (livelock tests pin small ones).
TEST(SchedulerModes, NoProgressBoundAutoDerivesFromThreadCount) {
  SimConfig sc;
  EXPECT_EQ(sc.no_progress_bound, 0);  // auto is the default
  EXPECT_EQ(sc.resolved_no_progress_bound(1), 64 + 16);
  EXPECT_EQ(sc.resolved_no_progress_bound(8), 64 + 128);
  EXPECT_EQ(sc.resolved_no_progress_bound(64), 64 + 1024);
  EXPECT_EQ(sc.resolved_no_progress_bound(0), 64 + 16);  // degenerate
  sc.no_progress_bound = 7;
  EXPECT_EQ(sc.resolved_no_progress_bound(64), 7);
}

TEST(SchedulerModes, LegacyModeStatsResetBetweenRuns) {
  SimConfig legacy;
  legacy.legacy_ready_queue = true;
  Simulator sim(legacy);
  sim.run(4, [](int) { platform::advance(10); });
  const std::uint64_t first = sim.stats().switches;
  sim.run(4, [](int) { platform::advance(10); });
  EXPECT_EQ(sim.stats().switches, first);  // reset, not accumulated
}

}  // namespace
}  // namespace sprwl::sim
