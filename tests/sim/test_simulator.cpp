#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/costs.h"

namespace sprwl::sim {
namespace {

TEST(Simulator, RunsEveryFiberExactlyOnce) {
  Simulator sim;
  std::vector<int> ran(8, 0);
  sim.run(8, [&](int tid) { ++ran[static_cast<std::size_t>(tid)]; });
  for (int r : ran) EXPECT_EQ(r, 1);
}

TEST(Simulator, ZeroThreadsIsANoOp) {
  Simulator sim;
  sim.run(0, [&](int) { FAIL(); });
  EXPECT_EQ(sim.final_time(), 0u);
}

TEST(Simulator, FiberSeesItsOwnVirtualClock) {
  Simulator sim;
  sim.run(1, [&](int) {
    EXPECT_EQ(platform::now(), 0u);
    platform::advance(100);
    EXPECT_EQ(platform::now(), 100u);
    platform::advance(50);
    EXPECT_EQ(platform::now(), 150u);
  });
  EXPECT_EQ(sim.final_time(), 150u);
}

TEST(Simulator, FinalTimeIsMaxOverFibers) {
  Simulator sim;
  sim.run(3, [&](int tid) { platform::advance(static_cast<std::uint64_t>(tid) * 100); });
  EXPECT_EQ(sim.final_time(), 200u);
}

TEST(Simulator, InterleavesInVirtualTimeOrder) {
  // Each fiber stamps a global sequence at known virtual times; the
  // observed order must be sorted by (time, id).
  Simulator sim;
  struct Stamp {
    std::uint64_t time;
    int tid;
  };
  std::vector<Stamp> stamps;
  sim.run(4, [&](int tid) {
    for (int i = 0; i < 10; ++i) {
      platform::advance(static_cast<std::uint64_t>(7 + tid));
      stamps.push_back({platform::now(), tid});
    }
  });
  // A fiber only keeps running while no other ready fiber has a strictly
  // smaller clock, so observed stamps are non-decreasing in virtual time
  // (ties may appear in either id order).
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    EXPECT_LE(stamps[i - 1].time, stamps[i].time) << "at index " << i;
  }
}

TEST(Simulator, SameSeedSameSchedule) {
  auto trace = [] {
    Simulator sim;
    std::vector<int> order;
    sim.run(6, [&](int tid) {
      for (int i = 0; i < 20; ++i) {
        platform::advance(static_cast<std::uint64_t>(3 + (tid * 7 + i) % 11));
        order.push_back(tid);
      }
    });
    return order;
  };
  EXPECT_EQ(trace(), trace());
}

TEST(Simulator, WaitUntilJumpsTheClock) {
  Simulator sim;
  sim.run(1, [&](int) {
    platform::wait_until(123456);
    EXPECT_EQ(platform::now(), 123456u);
    platform::wait_until(100);  // already passed: no-op
    EXPECT_EQ(platform::now(), 123456u);
  });
}

TEST(Simulator, SpinWaitMakesProgressAcrossFibers) {
  // Fiber 1 spins until fiber 0 sets a flag: classic producer/consumer.
  Simulator sim;
  std::atomic<bool> flag{false};
  std::uint64_t consumer_done = 0;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      platform::advance(10000);
      flag.store(true, std::memory_order_release);
    } else {
      while (!flag.load(std::memory_order_acquire)) platform::pause();
      consumer_done = platform::now();
    }
  });
  EXPECT_GE(consumer_done, 10000u);
}

TEST(Simulator, VirtualTimeLimitConvertsLivelockIntoError) {
  SimConfig cfg;
  cfg.max_virtual_time = 100000;
  Simulator sim(cfg);
  std::atomic<bool> never{false};
  EXPECT_THROW(sim.run(1,
                       [&](int) {
                         while (!never.load()) platform::pause();
                       }),
               SimTimeLimitError);
}

TEST(Simulator, FiberExceptionsPropagateToRun) {
  Simulator sim;
  EXPECT_THROW(sim.run(2,
                       [&](int tid) {
                         platform::advance(10);
                         if (tid == 1) throw std::runtime_error("boom");
                       }),
               std::runtime_error);
}

TEST(Simulator, EarliestErrorWins) {
  Simulator sim;
  try {
    sim.run(2, [&](int tid) {
      platform::advance(tid == 0 ? 50u : 10u);
      throw std::runtime_error(tid == 0 ? "late" : "early");
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "early");
  }
}

TEST(Simulator, ManyFibers) {
  Simulator sim;
  std::uint64_t total = 0;
  sim.run(128, [&](int) {
    platform::advance(100);
    ++total;
  });
  EXPECT_EQ(total, 128u);
}

TEST(Simulator, ReusableForMultipleRuns) {
  Simulator sim;
  for (int round = 0; round < 3; ++round) {
    int count = 0;
    sim.run(4, [&](int) {
      platform::advance(5);
      ++count;
    });
    EXPECT_EQ(count, 4);
    EXPECT_EQ(sim.final_time(), 5u);
  }
}

TEST(Simulator, DeepCallStacksSurviveSwitching) {
  Simulator sim;
  // Recursion depth * frame size stays within the fiber stack; switching
  // mid-recursion must preserve the stack contents.
  std::function<std::uint64_t(int, int)> rec = [&](int depth, int salt) -> std::uint64_t {
    volatile std::uint64_t local = static_cast<std::uint64_t>(depth) * 31 + salt;
    if (depth == 0) return local;
    platform::advance(1);
    return local + rec(depth - 1, salt ^ depth);
  };
  std::vector<std::uint64_t> results(4);
  sim.run(4, [&](int tid) { results[static_cast<std::size_t>(tid)] = rec(200, tid); });
  // Same computation single-fiber must match.
  for (int tid = 0; tid < 4; ++tid) {
    Simulator solo;
    std::uint64_t expect = 0;
    solo.run(1, [&](int) { expect = rec(200, tid); });
    EXPECT_EQ(results[static_cast<std::size_t>(tid)], expect);
  }
}

TEST(Simulator, ContextClearedAfterRun) {
  Simulator sim;
  sim.run(1, [](int) { platform::advance(1); });
  EXPECT_EQ(platform::context(), nullptr);
  EXPECT_EQ(platform::thread_id(), -1);
}

TEST(RunRealThreads, AssignsDenseIdsAndJoins) {
  std::vector<int> seen(4, -1);
  run_real_threads(4, [&](int tid) { seen[static_cast<std::size_t>(tid)] = platform::thread_id(); });
  for (int i = 0; i < 4; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

TEST(RunRealThreads, PropagatesWorkerExceptions) {
  EXPECT_THROW(run_real_threads(2,
                                [&](int tid) {
                                  if (tid == 1) throw std::logic_error("bad");
                                }),
               std::logic_error);
}

}  // namespace
}  // namespace sprwl::sim
