// The library-wide seed-replay convention for randomized tests.
//
// Every suite that derives randomness from fault::env_seed() attaches this
// line to its failure output (via SCOPED_TRACE or an assertion message), so
// any failure anywhere prints the same actionable instruction:
//
//   SPRWL_SEED=<n> to replay
//
// and re-running the test with that environment variable reproduces the
// failing run bit-identically.
#pragma once

#include <cstdint>
#include <string>

namespace sprwl::testutil {

inline std::string seed_replay(std::uint64_t seed) {
  return "SPRWL_SEED=" + std::to_string(seed) + " to replay";
}

}  // namespace sprwl::testutil
