#include "workloads/graph.h"

#include <gtest/gtest.h>

#include "common/platform.h"
#include "core/sprwl.h"
#include "htm/engine.h"
#include "locks/rwlock_concept.h"
#include "locks/tle.h"
#include "sim/simulator.h"

namespace sprwl::workloads {
namespace {

// The region-lock concept holds for the whole family (compile-time check).
static_assert(locks::RegionRWLock<core::SpRWLock>);
static_assert(locks::RegionRWLock<locks::TLELock>);

Graph::Config small_config() {
  Graph::Config cfg;
  cfg.nodes = 256;
  cfg.edge_capacity = 8192;
  cfg.max_threads = 8;
  return cfg;
}

TEST(Graph, AddRemoveEdgeSemantics) {
  ThreadIdScope tid(0);
  Graph g(small_config());
  EXPECT_TRUE(g.add_edge(1, 2));
  EXPECT_FALSE(g.add_edge(1, 2));  // duplicate
  EXPECT_TRUE(g.raw_has_edge(1, 2));
  EXPECT_FALSE(g.raw_has_edge(2, 1));
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_TRUE(g.remove_edge(1, 2));
  EXPECT_FALSE(g.remove_edge(1, 2));
  EXPECT_EQ(g.raw_edge_count(), 0u);
}

TEST(Graph, PopulateCreatesEdges) {
  Graph g(small_config());
  Rng rng(4);
  g.populate(2000, rng);
  // Duplicates collapse, so <= 2000, but most survive.
  EXPECT_GT(g.raw_edge_count(), 1500u);
  EXPECT_LE(g.raw_edge_count(), 2000u);
}

TEST(Graph, BfsOnKnownTopology) {
  ThreadIdScope tid(0);
  Graph g(small_config());
  // Chain 0 -> 1 -> 2 -> 3 plus an island 10 -> 11.
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(10, 11);
  EXPECT_EQ(g.bfs_count(0, 1000), 4u);
  EXPECT_EQ(g.bfs_count(1, 1000), 3u);
  EXPECT_EQ(g.bfs_count(3, 1000), 1u);
  EXPECT_EQ(g.bfs_count(10, 1000), 2u);
}

TEST(Graph, BfsVisitBoundLimitsTraversal) {
  ThreadIdScope tid(0);
  Graph g(small_config());
  for (std::uint32_t i = 0; i + 1 < 100; ++i) g.add_edge(i, i + 1);
  EXPECT_EQ(g.bfs_count(0, 10), 11u);   // 10 dequeues discover 11 nodes
  EXPECT_EQ(g.bfs_count(0, 1000), 100u);
}

TEST(Graph, EdgeRecyclingAfterRemove) {
  ThreadIdScope tid(0);
  Graph::Config cfg;
  cfg.nodes = 16;
  cfg.edge_capacity = 8;
  cfg.max_threads = 1;
  Graph g(cfg);
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(g.add_edge(1, static_cast<std::uint32_t>(round % 7)));
    EXPECT_TRUE(g.remove_edge(1, static_cast<std::uint32_t>(round % 7)));
  }
  EXPECT_EQ(g.raw_edge_count(), 0u);
}

TEST(Graph, SymmetricEdgePairsStayAtomicUnderSpRWL) {
  // Writers add/remove symmetric pairs (a->b with b->a) in one section;
  // traversal readers must never observe a one-way pair.
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  Graph g(small_config());
  core::SpRWLock lock{core::Config::variant(core::SchedulingVariant::kFull, 8)};
  std::uint64_t asymmetries = 0;
  sim::Simulator sim;
  sim.run(8, [&](int tid) {
    Rng rng(static_cast<std::uint64_t>(tid) * 7 + 3);
    for (int i = 0; i < 120; ++i) {
      std::uint32_t a = static_cast<std::uint32_t>(rng.next_below(64));
      std::uint32_t b = static_cast<std::uint32_t>(rng.next_below(64));
      if (a == b) b = (b + 1) % 64;
      if (rng.next_bool(0.4)) {
        const bool add = rng.next_bool(0.5);
        lock.write(1, [&] {
          if (add) {
            // Keep the pair invariant even if one direction pre-exists.
            const bool f = g.add_edge(a, b);
            const bool r = g.add_edge(b, a);
            if (f != r) {  // restore symmetry
              if (f) g.remove_edge(a, b);
              if (r) g.remove_edge(b, a);
            }
          } else {
            const bool f = g.remove_edge(a, b);
            const bool r = g.remove_edge(b, a);
            if (f != r) {  // restore symmetry
              if (f) g.add_edge(a, b);
              if (r) g.add_edge(b, a);
            }
          }
        });
      } else {
        // Reader: symmetric membership must hold inside one read section.
        lock.read(0, [&] {
          const bool ab = g.has_edge(a, b);
          platform::advance(rng.next_below(200));
          const bool ba = g.has_edge(b, a);
          if (ab != ba) ++asymmetries;
        });
      }
    }
  });
  EXPECT_EQ(asymmetries, 0u);
  // Quiescent symmetry check: every edge has its reverse.
  for (std::uint32_t a = 0; a < 64; ++a) {
    for (std::uint32_t b = 0; b < 64; ++b) {
      if (g.raw_has_edge(a, b) && !g.raw_has_edge(b, a)) ++asymmetries;
    }
  }
  EXPECT_EQ(asymmetries, 0u);
}

TEST(Graph, LongTraversalsRunUninstrumentedUnderSpRWL) {
  htm::EngineConfig ecfg;
  ecfg.capacity = htm::kPower8;
  htm::Engine engine(ecfg);
  htm::EngineScope scope(engine);
  Graph g(small_config());
  {
    ThreadIdScope tid(0);
    Rng rng(9);
    g.populate(4000, rng);
  }
  core::SpRWLock lock{core::Config::variant(core::SchedulingVariant::kFull, 4)};
  sim::Simulator sim;
  sim.run(4, [&](int tid) {
    Rng rng(static_cast<std::uint64_t>(tid) + 1);
    for (int i = 0; i < 30; ++i) {
      lock.read(0, [&] {
        (void)g.bfs_count(static_cast<std::uint32_t>(rng.next_below(256)), 200);
      });
    }
  });
  const locks::LockStats s = lock.stats();
  EXPECT_GT(s.reads.unins, 0u);  // traversals exceeded HTM capacity
  EXPECT_EQ(s.reads.gl, 0u);
}

}  // namespace
}  // namespace sprwl::workloads
