// The per-key lock table workload (workloads/lock_table.h): the zipfian
// generator, the rank-to-key scramble, the leaf-striped invariant pair,
// and whole runs under both the flat and the BRAVO-biased lock — the
// scale-out regime where footprint and cold-lock laziness matter.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>

#include "common/rng.h"
#include "core/bravo.h"
#include "htm/htm.h"
#include "sim/simulator.h"
#include "workloads/lock_table.h"

namespace sprwl::workloads {
namespace {

core::Config flat_lock_cfg(int threads) {
  core::Config c = core::Config::variant(core::SchedulingVariant::kFull, threads);
  c.reader_htm_first = false;
  return c;
}

core::Config bravo_lock_cfg(int threads) {
  core::Config c = flat_lock_cfg(threads);
  c.bravo_bias = true;
  bravo::ReaderTable::Config tc;
  tc.max_threads = threads;
  c.bravo_table = std::make_shared<bravo::ReaderTable>(tc);
  return c;
}

TEST(Zipfian, RejectsDegenerateDomain) {
  EXPECT_THROW(Zipfian(0), std::invalid_argument);
  EXPECT_THROW(Zipfian(1), std::invalid_argument);
}

TEST(Zipfian, DeterministicAndInBounds) {
  const Zipfian z(1024, 0.99);
  Rng a(7), b(7);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t ra = z.next(a);
    EXPECT_EQ(ra, z.next(b));
    EXPECT_LT(ra, 1024u);
  }
}

TEST(Zipfian, LowRanksDominateAtHighTheta) {
  const Zipfian z(1 << 16, 0.99);
  Rng rng(42);
  std::uint64_t top16 = 0, total = 20'000;
  for (std::uint64_t i = 0; i < total; ++i) {
    if (z.next(rng) < 16) ++top16;
  }
  // At theta=0.99 over 64k keys, the top 16 ranks carry far more than
  // their uniform share (16/65536 ~ 0.02%); expect well over a quarter.
  EXPECT_GT(top16 * 4, total);
}

TEST(Zipfian, NearUniformAtLowTheta) {
  const Zipfian z(1 << 10, 0.1);
  Rng rng(9);
  std::uint64_t top16 = 0, total = 20'000;
  for (std::uint64_t i = 0; i < total; ++i) {
    if (z.next(rng) < 16) ++top16;
  }
  // Uniform share would be 16/1024 ~ 1.6% (312 of 20k); allow slack but
  // rule out the hot-set concentration of the skewed case.
  EXPECT_LT(top16, total / 10);
}

TEST(LockTable, RejectsBadKeyCounts) {
  LockTable::Config c;
  c.lock = flat_lock_cfg(2);
  c.keys = 3;  // not a power of two
  EXPECT_THROW(LockTable{c}, std::invalid_argument);
  c.keys = 2;  // below a leaf
  EXPECT_THROW(LockTable{c}, std::invalid_argument);
}

TEST(LockTable, KeyScrambleIsABijection) {
  LockTable::Config c;
  c.keys = 1 << 12;
  c.lock = flat_lock_cfg(2);
  LockTable table(c);
  std::set<std::uint64_t> seen;
  for (std::uint64_t r = 0; r < c.keys; ++r) {
    const std::uint64_t k = table.key_of_rank(r);
    ASSERT_LT(k, c.keys);
    seen.insert(k);
  }
  EXPECT_EQ(seen.size(), c.keys) << "scramble must not collide ranks";
  // And it actually scrambles: consecutive hot ranks land on different
  // leaf lines, not the accidental-best-case same line.
  EXPECT_NE(table.key_of_rank(0) / LockTable::kKeysPerLeaf,
            table.key_of_rank(1) / LockTable::kKeysPerLeaf);
}

TEST(LockTable, InvariantPairSemantics) {
  LockTable::Config c;
  c.keys = 16;
  c.lock = flat_lock_cfg(1);
  LockTable table(c);
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  sim::Simulator sim;
  sim.run(1, [&](int) {
    for (std::uint64_t k = 0; k < c.keys; ++k) {
      EXPECT_TRUE(table.verify_key(k, /*leaf_scan=*/true));
      EXPECT_TRUE(table.verify_key(k, /*leaf_scan=*/false));
    }
    table.bump_key(5);
    table.bump_key(5);
    EXPECT_TRUE(table.verify_key(5));
  });
  EXPECT_EQ(table.raw_version_of(5), 2u);
  EXPECT_EQ(table.raw_version_of(4), 0u) << "leaf neighbours untouched";
  EXPECT_TRUE(table.raw_all_intact());
}

// A full skewed run over per-key bravo locks: no torn reads, the table
// quiesces intact, and — the point of the lazy plane — only the keys that
// actually saw writer traffic allocated one.
TEST(LockTable, BravoRunIsCorrectAndMostLocksStayCold) {
  LockTable::Config c;
  c.keys = 1 << 12;
  c.lock = bravo_lock_cfg(4);
  LockTable table(c);
  htm::Engine engine{htm::EngineConfig{}};
  sim::Simulator sim;
  LockTableDriverConfig dc;
  dc.threads = 4;
  dc.update_ratio = 0.05;
  dc.warmup_cycles = 20'000;
  dc.measure_cycles = 400'000;
  dc.seed = 3;
  const LockTableRunResult res = run_lock_table(sim, engine, table, dc);
  EXPECT_EQ(res.invariant_failures, 0u);
  EXPECT_GT(res.reads, 0u);
  EXPECT_GT(res.writes, 0u);
  EXPECT_TRUE(table.raw_all_intact());
  EXPECT_GT(res.totals.bias_reads, 0u) << "hot reads took the fast path";
  EXPECT_GT(res.totals.locks_with_plane, 0u) << "hot keys saw writers";
  // The zipfian tail: the overwhelming majority of locks never needed a
  // plane, so the mean bytes/lock stays far below what the old eager
  // layout paid (a full plane for every lock).
  EXPECT_LT(res.totals.locks_with_plane, c.keys / 4);
  std::size_t planed_footprint = 0;
  for (std::uint64_t k = 0; k < c.keys && planed_footprint == 0; ++k) {
    if (table.lock_of(k).has_plane()) {
      planed_footprint = table.lock_of(k).footprint_bytes();
    }
  }
  ASSERT_GT(planed_footprint, sizeof(core::SpRWLock));
  EXPECT_LT(res.totals.bytes_per_lock(),
            static_cast<double>(planed_footprint) / 4);
}

TEST(LockTable, FlatRunIsCorrect) {
  LockTable::Config c;
  c.keys = 1 << 10;
  c.lock = flat_lock_cfg(4);
  LockTable table(c);
  htm::Engine engine{htm::EngineConfig{}};
  sim::Simulator sim;
  LockTableDriverConfig dc;
  dc.threads = 4;
  dc.update_ratio = 0.10;
  dc.leaf_scan = false;
  dc.warmup_cycles = 10'000;
  dc.measure_cycles = 250'000;
  dc.seed = 11;
  const LockTableRunResult res = run_lock_table(sim, engine, table, dc);
  EXPECT_EQ(res.invariant_failures, 0u);
  EXPECT_TRUE(table.raw_all_intact());
  EXPECT_GT(res.committed(), 0u);
  EXPECT_GT(res.throughput_tx_s(), 0.0);
  EXPECT_EQ(res.totals.bias_reads, 0u) << "no bias without bravo";
  EXPECT_EQ(res.totals.shared_table_bytes, 0u);
}

TEST(LockTable, RunsAreDeterministicPerSeed) {
  const auto run_once = [](std::uint64_t seed) {
    LockTable::Config c;
    c.keys = 1 << 8;
    c.lock = bravo_lock_cfg(2);
    LockTable table(c);
    htm::Engine engine{htm::EngineConfig{}};
    sim::Simulator sim;
    LockTableDriverConfig dc;
    dc.threads = 2;
    dc.update_ratio = 0.05;
    dc.warmup_cycles = 5'000;
    dc.measure_cycles = 120'000;
    dc.seed = seed;
    return run_lock_table(sim, engine, table, dc);
  };
  const LockTableRunResult a = run_once(5);
  const LockTableRunResult b = run_once(5);
  const LockTableRunResult other = run_once(6);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.totals.bias_reads, b.totals.bias_reads);
  EXPECT_EQ(a.totals.revocations, b.totals.revocations);
  EXPECT_NE(a.reads + a.totals.bias_reads, other.reads + other.totals.bias_reads)
      << "different seeds should explore different schedules";
}

TEST(LockTable, TotalsArithmetic) {
  LockTable::Totals t;
  EXPECT_EQ(t.bytes_per_lock(), 0.0);
  EXPECT_EQ(t.revocation_latency(), 0.0);
  t.locks = 4;
  t.lock_bytes = 300;
  t.shared_table_bytes = 100;
  t.revocations = 2;
  t.revoke_cycles = 500;
  EXPECT_DOUBLE_EQ(t.bytes_per_lock(), 100.0);
  EXPECT_DOUBLE_EQ(t.revocation_latency(), 250.0);
}

}  // namespace
}  // namespace sprwl::workloads
