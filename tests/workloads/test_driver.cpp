#include "workloads/driver.h"

#include <gtest/gtest.h>

#include "core/sprwl.h"
#include "locks/posix_rwlock.h"
#include "locks/tle.h"

namespace sprwl::workloads {
namespace {

DriverConfig tiny_driver(int threads) {
  DriverConfig cfg;
  cfg.threads = threads;
  cfg.update_ratio = 0.2;
  cfg.lookups_per_read = 3;
  cfg.key_space = 2048;
  cfg.warmup_cycles = 50'000;
  cfg.measure_cycles = 500'000;
  cfg.seed = 9;
  return cfg;
}

HashMap make_map(int max_threads) {
  HashMap::Config cfg;
  cfg.buckets = 128;
  cfg.capacity = 4096;
  cfg.max_threads = max_threads;
  HashMap map(cfg);
  Rng rng(1);
  map.populate(1024, 2048, rng);
  return map;
}

TEST(Driver, ProducesThroughputAndLatencies) {
  htm::Engine engine{htm::EngineConfig{}};
  HashMap map = make_map(4);
  core::SpRWLock lock{core::Config::variant(core::SchedulingVariant::kFull, 4)};
  sim::Simulator sim;
  const RunResult r = run_hashmap(sim, engine, lock, map, tiny_driver(4));
  EXPECT_GT(r.committed(), 100u);
  EXPECT_GT(r.reads, r.writes);  // 20% updates
  EXPECT_GT(r.throughput_tx_s(), 0.0);
  EXPECT_EQ(r.read_latency.count(), r.reads);
  EXPECT_EQ(r.write_latency.count(), r.writes);
  EXPECT_GT(r.read_latency.mean(), 0.0);
  // Commit-mode accounting covers every committed section (warmup sections
  // are counted by the lock but not by the measurement window).
  EXPECT_GE(r.lock_stats.reads.total(), r.reads);
  EXPECT_GE(r.lock_stats.writes.total(), r.writes);
}

TEST(Driver, StableAcrossIdenticalRuns) {
  // The fiber schedule and workload stream are bit-deterministic given the
  // seed; the only run-to-run noise left is which cache lines alias in the
  // engine's version table (a function of heap base addresses, just as on
  // real hardware it is a function of physical-page placement). Committed
  // work must therefore agree to well under a percent.
  auto once = [] {
    htm::Engine engine{htm::EngineConfig{}};
    HashMap map = make_map(4);
    core::SpRWLock lock{core::Config::variant(core::SchedulingVariant::kFull, 4)};
    sim::Simulator sim;
    return run_hashmap(sim, engine, lock, map, tiny_driver(4));
  };
  const RunResult a = once();
  const RunResult b = once();
  const auto near = [](std::uint64_t x, std::uint64_t y, double tol) {
    const double hi = static_cast<double>(x > y ? x : y);
    const double lo = static_cast<double>(x > y ? y : x);
    return hi == 0.0 || (hi - lo) / hi <= tol;
  };
  EXPECT_TRUE(near(a.reads, b.reads, 0.01)) << a.reads << " vs " << b.reads;
  EXPECT_TRUE(near(a.writes, b.writes, 0.02)) << a.writes << " vs " << b.writes;
  EXPECT_TRUE(near(a.engine_stats.commits_htm, b.engine_stats.commits_htm, 0.02));
}

TEST(Driver, DifferentSeedsProduceDifferentRuns) {
  htm::Engine engine{htm::EngineConfig{}};
  HashMap map = make_map(2);
  core::SpRWLock lock{core::Config::variant(core::SchedulingVariant::kFull, 2)};
  DriverConfig cfg = tiny_driver(2);
  sim::Simulator sim;
  const RunResult a = run_hashmap(sim, engine, lock, map, cfg);
  cfg.seed = 12345;
  sim::Simulator sim2;
  const RunResult b = run_hashmap(sim2, engine, lock, map, cfg);
  EXPECT_NE(a.reads * 1000 + a.writes, b.reads * 1000 + b.writes);
}

TEST(Driver, WorksWithPessimisticLock) {
  htm::Engine engine{htm::EngineConfig{}};
  HashMap map = make_map(4);
  locks::PosixRWLock lock{4};
  sim::Simulator sim;
  const RunResult r = run_hashmap(sim, engine, lock, map, tiny_driver(4));
  EXPECT_GT(r.committed(), 50u);
  EXPECT_GE(r.lock_stats.reads.pessimistic, r.reads);
  EXPECT_EQ(r.lock_stats.reads.htm, 0u);
  EXPECT_EQ(r.reader_aborts, 0u);  // pessimistic locks have no such class
}

TEST(Driver, TleLongReadersHitCapacityAndFallBack) {
  // Chains of ~32 nodes, 10 lookups per read CS, POWER8 capacity: TLE
  // readers must frequently exceed capacity and run under the global lock
  // — the effect driving Fig. 3.
  htm::EngineConfig ecfg;
  ecfg.capacity = htm::kPower8;
  htm::Engine engine(ecfg);
  HashMap::Config mcfg;
  mcfg.buckets = 32;
  mcfg.capacity = 2048;
  mcfg.max_threads = 4;
  HashMap map(mcfg);
  Rng rng(2);
  map.populate(1024, 2048, rng);
  locks::TLELock::Config lcfg;
  lcfg.max_threads = 4;
  locks::TLELock lock{lcfg};
  DriverConfig dcfg = tiny_driver(4);
  dcfg.lookups_per_read = 10;
  dcfg.measure_cycles = 2'000'000;
  sim::Simulator sim;
  const RunResult r = run_hashmap(sim, engine, lock, map, dcfg);
  EXPECT_GT(r.engine_stats.aborts_capacity, 0u);
  EXPECT_GT(r.lock_stats.reads.gl, r.lock_stats.reads.htm / 2);
}

TEST(Driver, SpRWLUninstrumentedReadersAvoidTheGlobalLock) {
  // Same workload as above under SpRWL: reads complete uninstrumented,
  // no read ever serializes on the SGL.
  htm::EngineConfig ecfg;
  ecfg.capacity = htm::kPower8;
  htm::Engine engine(ecfg);
  HashMap::Config mcfg;
  mcfg.buckets = 32;
  mcfg.capacity = 2048;
  mcfg.max_threads = 4;
  HashMap map(mcfg);
  Rng rng(2);
  map.populate(1024, 2048, rng);
  core::SpRWLock lock{core::Config::variant(core::SchedulingVariant::kFull, 4)};
  DriverConfig dcfg = tiny_driver(4);
  dcfg.lookups_per_read = 10;
  dcfg.measure_cycles = 2'000'000;
  sim::Simulator sim;
  const RunResult r = run_hashmap(sim, engine, lock, map, dcfg);
  EXPECT_EQ(r.lock_stats.reads.gl, 0u);
  EXPECT_GT(r.lock_stats.reads.unins, 0u);
}

}  // namespace
}  // namespace sprwl::workloads
