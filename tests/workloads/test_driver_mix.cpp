// Driver statistics: the generated operation mix must track the configured
// update ratio, and the virtual-time accounting must be internally
// consistent (latency sums bounded by threads x window).
#include <gtest/gtest.h>

#include "core/sprwl.h"
#include "workloads/driver.h"

namespace sprwl::workloads {
namespace {

RunResult run_with_ratio(double ratio) {
  htm::Engine engine{htm::EngineConfig{}};
  HashMap::Config mc;
  mc.buckets = 128;
  mc.capacity = 8192;
  mc.max_threads = 4;
  HashMap map(mc);
  Rng rng(1);
  map.populate(2048, 4096, rng);
  core::SpRWLock lock{core::Config::variant(core::SchedulingVariant::kFull, 4)};
  DriverConfig dc;
  dc.threads = 4;
  dc.update_ratio = ratio;
  dc.lookups_per_read = 2;
  dc.key_space = 4096;
  dc.warmup_cycles = 100'000;
  dc.measure_cycles = 2'000'000;
  dc.seed = 5;
  sim::Simulator sim;
  return run_hashmap(sim, engine, lock, map, dc);
}

TEST(DriverMix, UpdateRatioIsHonoured) {
  for (const double ratio : {0.1, 0.5, 0.9}) {
    const RunResult r = run_with_ratio(ratio);
    const double measured =
        static_cast<double>(r.writes) / static_cast<double>(r.committed());
    EXPECT_NEAR(measured, ratio, 0.05) << "ratio " << ratio;
  }
}

TEST(DriverMix, ZeroAndFullUpdateRatios) {
  const RunResult none = run_with_ratio(0.0);
  EXPECT_EQ(none.writes, 0u);
  EXPECT_GT(none.reads, 0u);
  const RunResult all = run_with_ratio(1.0);
  EXPECT_EQ(all.reads, 0u);
  EXPECT_GT(all.writes, 0u);
}

TEST(DriverMix, LatencySumsBoundedByThreadTime) {
  const RunResult r = run_with_ratio(0.3);
  // Total time spent inside measured operations cannot exceed the window
  // times the thread count (operations do not overlap within a thread).
  const double budget = 4.0 * (2'000'000 + 100'000);
  EXPECT_LE(static_cast<double>(r.read_latency.sum() + r.write_latency.sum()),
            budget);
  EXPECT_GE(r.read_latency.quantile(0.99), r.read_latency.quantile(0.10));
}

}  // namespace
}  // namespace sprwl::workloads
