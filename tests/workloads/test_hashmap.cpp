#include "workloads/hashmap.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/platform.h"
#include "common/rng.h"
#include "core/sprwl.h"
#include "htm/engine.h"
#include "sim/simulator.h"

namespace sprwl::workloads {
namespace {

HashMap::Config small_config() {
  HashMap::Config cfg;
  cfg.buckets = 64;
  cfg.capacity = 4096;
  cfg.max_threads = 8;
  return cfg;
}

TEST(HashMap, InsertLookupErase) {
  ThreadIdScope tid(0);
  HashMap map(small_config());
  EXPECT_FALSE(map.lookup(42));
  EXPECT_TRUE(map.insert(42, 1));
  EXPECT_TRUE(map.lookup(42));
  EXPECT_FALSE(map.insert(42, 2));  // duplicate: refresh, not insert
  EXPECT_TRUE(map.erase(42));
  EXPECT_FALSE(map.lookup(42));
  EXPECT_FALSE(map.erase(42));
}

TEST(HashMap, PopulateCreatesExactCount) {
  HashMap map(small_config());
  Rng rng(5);
  map.populate(1000, 1u << 14, rng);
  EXPECT_EQ(map.raw_size(), 1000u);
}

TEST(HashMap, PopulatedKeysAreFindable) {
  HashMap::Config cfg = small_config();
  HashMap map(cfg);
  Rng rng(7);
  map.populate(500, 1024, rng);
  ThreadIdScope tid(0);
  std::size_t found = 0;
  for (std::uint64_t k = 0; k < 1024; ++k) found += map.lookup(k);
  EXPECT_EQ(found, 500u);
}

TEST(HashMap, PopulateRejectsOverflow) {
  HashMap map(small_config());
  Rng rng(5);
  EXPECT_THROW(map.populate(5000, 1 << 20, rng), std::invalid_argument);
}

TEST(HashMap, NodeRecyclingAfterErase) {
  ThreadIdScope tid(0);
  HashMap::Config cfg;
  cfg.buckets = 4;
  cfg.capacity = 8;
  cfg.max_threads = 1;
  HashMap map(cfg);
  // Insert/erase far more distinct values than pool capacity: recycling
  // must keep this working.
  for (std::uint64_t k = 0; k < 100; ++k) {
    EXPECT_TRUE(map.insert(k, k));
    EXPECT_TRUE(map.erase(k));
  }
  EXPECT_EQ(map.raw_size(), 0u);
}

TEST(HashMap, PoolExhaustionDropsInsertsGracefully) {
  ThreadIdScope tid(0);
  HashMap::Config cfg;
  cfg.buckets = 4;
  cfg.capacity = 4;
  cfg.max_threads = 1;
  HashMap map(cfg);
  int inserted = 0;
  for (std::uint64_t k = 0; k < 10; ++k) inserted += map.insert(k, k);
  EXPECT_EQ(inserted, 4);
  EXPECT_EQ(map.raw_size(), 4u);
}

TEST(HashMap, MatchesReferenceSetSingleThreaded) {
  ThreadIdScope tid(0);
  HashMap map(small_config());
  std::unordered_set<std::uint64_t> ref;
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t key = rng.next_below(512);
    switch (rng.next_below(3)) {
      case 0:
        EXPECT_EQ(map.insert(key, key), ref.insert(key).second);
        break;
      case 1:
        EXPECT_EQ(map.erase(key), ref.erase(key) > 0);
        break;
      default:
        EXPECT_EQ(map.lookup(key), ref.count(key) > 0);
    }
  }
  EXPECT_EQ(map.raw_size(), ref.size());
}

TEST(HashMap, ConcurrentUseUnderSpRWLKeepsIntegrity) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope scope(engine);
  HashMap map(small_config());
  Rng prng(3);
  map.populate(1024, 4096, prng);
  core::Config lcfg = core::Config::variant(core::SchedulingVariant::kFull, 8);
  core::SpRWLock lock{lcfg};
  sim::Simulator sim;
  std::int64_t delta = 0;  // net inserts minus erases that succeeded
  sim.run(8, [&](int tid) {
    Rng rng(static_cast<std::uint64_t>(tid) * 17 + 1);
    std::int64_t my_delta = 0;
    for (int i = 0; i < 100; ++i) {
      const std::uint64_t key = rng.next_below(4096);
      if (rng.next_bool(0.5)) {
        // Decide the operation outside the region: the body may re-run on
        // HTM retries and must be idempotent w.r.t. its inputs.
        const bool do_insert = rng.next_bool(0.5);
        lock.write(1, [&] {
          // Compute the effect from the final attempt only, by writing to
          // a local that each execution overwrites.
          my_delta = 0;
          if (do_insert) {
            if (map.insert(key, key)) my_delta = 1;
          } else {
            if (map.erase(key)) my_delta = -1;
          }
        });
        delta += my_delta;
      } else {
        lock.read(0, [&] {
          for (int j = 0; j < 5; ++j) map.lookup(rng.next_below(4096));
        });
      }
    }
  });
  EXPECT_EQ(map.raw_size(), static_cast<std::size_t>(1024 + delta));
}

}  // namespace
}  // namespace sprwl::workloads
