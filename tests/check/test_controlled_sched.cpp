// Controlled-scheduler semantics: determinism, trace replay, livelock
// detection, and clean run cancellation.
#include <gtest/gtest.h>

#include <vector>

#include "check/harness.h"
#include "check/policies.h"
#include "check/registry.h"
#include "common/platform.h"

namespace sprwl::check {
namespace {

bool same_trace(const std::vector<sim::PendingOp>& a,
                const std::vector<sim::PendingOp>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].fiber != b[i].fiber || a[i].kind != b[i].kind ||
        a[i].obj != b[i].obj) {
      return false;
    }
  }
  return true;
}

bool same_history(const History& a, const History& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].tid != b[i].tid || a[i].is_write != b[i].is_write ||
        a[i].value != b[i].value || a[i].invoke != b[i].invoke ||
        a[i].response != b[i].response || a[i].torn != b[i].torn) {
      return false;
    }
  }
  return true;
}

TEST(ControlledSched, IdenticalPoliciesProduceIdenticalRuns) {
  const Workload w;
  const RunFn run = make_runner("SpRWL", w);
  // An exhausted ReplayPolicy always picks the lowest eligible fiber:
  // a fixed deterministic schedule.
  ReplayPolicy p1({}), p2({});
  const RunResult r1 = run(p1);
  const RunResult r2 = run(p2);
  ASSERT_TRUE(r1.completed);
  ASSERT_TRUE(r2.completed);
  EXPECT_TRUE(same_trace(r1.trace, r2.trace));
  EXPECT_TRUE(same_history(r1.history, r2.history));
  EXPECT_EQ(r1.final_value, r2.final_value);
  EXPECT_FALSE(r1.trace.empty());
}

TEST(ControlledSched, RecordedChoicesReplayTheExactRun) {
  Workload w;
  w.threads = 4;
  w.writers = 2;
  w.ops_per_thread = 2;
  const RunFn run = make_runner("RWL", w);
  PctPolicy pct(/*seed=*/7);
  const RunResult original = run(pct);
  ASSERT_TRUE(original.completed);

  ReplayPolicy replay(original.choices());
  const RunResult again = run(replay);
  ASSERT_TRUE(again.completed);
  EXPECT_FALSE(replay.diverged());
  EXPECT_TRUE(same_trace(original.trace, again.trace));
  EXPECT_TRUE(same_history(original.history, again.history));
}

TEST(ControlledSched, DecisionPointsCoverTheLockApi) {
  const Workload w;
  const RunFn run = make_runner("SpRWL", w);
  ReplayPolicy p({});
  const RunResult r = run(p);
  ASSERT_TRUE(r.completed);
  bool saw_lock_point = false;
  for (const sim::PendingOp& op : r.trace) {
    if (op.kind >= SchedKind::kReadEnter &&
        op.kind <= SchedKind::kWriteExit) {
      saw_lock_point = true;
      EXPECT_NE(op.obj, 0u) << "lock-API points must carry the lock tag";
    }
  }
  EXPECT_TRUE(saw_lock_point);
}

// A lock whose write side never returns: the reader fibers finish, the
// writer pause-parks forever, and the no-progress bound must convert that
// into a livelock verdict instead of hanging or exhausting virtual time.
struct StuckWriteLock {
  template <class F>
  void read(int, F&& f) {
    std::forward<F>(f)();
  }
  template <class F>
  void write(int, F&&) {
    for (;;) platform::pause();
  }
};

TEST(ControlledSched, NoProgressBoundDetectsLivelock) {
  Workload w;
  w.threads = 3;
  w.writers = 1;
  w.no_progress_bound = 32;
  ReplayPolicy p({});
  const RunResult r =
      run_controlled(w, p, [] { return StuckWriteLock{}; });
  EXPECT_TRUE(r.livelock);
  EXPECT_FALSE(r.completed);
  const Verdict v = evaluate(r);
  EXPECT_EQ(v.kind, Verdict::kLivelock);
}

struct CancelAfter : sim::SchedulePolicy {
  explicit CancelAfter(std::size_t n) : n_(n) {}
  int pick(const sim::PickView& view) override {
    if (view.decision >= n_) return kCancelRun;
    return view.ops[0].fiber;
  }
  std::size_t n_;
};

TEST(ControlledSched, CancelledRunsUnwindCleanlyAndAreSkipped) {
  const Workload w;
  const RunFn run = make_runner("SpRWL", w);
  // Measure the run length, then cancel at several depths inside it,
  // including mid-critical-section ones; each run's fibers must unwind
  // without tripping the simulator's teardown.
  ReplayPolicy probe({});
  const std::size_t len = run(probe).trace.size();
  ASSERT_GT(len, 2u);
  for (std::size_t depth : {std::size_t{0}, len / 3, len / 2, len - 1}) {
    CancelAfter cancel(depth);
    const RunResult r = run(cancel);
    EXPECT_TRUE(r.cancelled);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(evaluate(r).kind, Verdict::kSkipped);
  }
  // The world is intact afterwards: a fresh full run still passes.
  ReplayPolicy p({});
  const RunResult clean = run(p);
  EXPECT_TRUE(clean.completed);
  EXPECT_EQ(evaluate(clean).kind, Verdict::kOk);
}

TEST(ControlledSched, LegacyAndControlledModesAreMutuallyExclusive) {
  sim::SimConfig cfg;
  cfg.legacy_ready_queue = true;
  ReplayPolicy p({});
  cfg.policy = &p;
  sim::Simulator sim(cfg);
  EXPECT_THROW(sim.run(2, [](int) {}), std::invalid_argument);
}

}  // namespace
}  // namespace sprwl::check
