// The checker applied to the whole lock family: exclusion and
// linearizability under PCT for every registered lock, the
// bounded-exhaustive acceptance run on SpRWL, and the self-validation that
// a deliberately broken SpRWL is caught with a minimized, deterministic
// repro.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "check/artifact.h"
#include "check/explorer.h"
#include "check/harness.h"
#include "check/registry.h"
#include "fault/fault.h"

#include "../support/seed_replay.h"

namespace sprwl::check {
namespace {

TEST(CheckerLocks, EveryLockPassesPctReaderHeavy) {
  const std::uint64_t seed = fault::env_seed(1);
  Workload w;  // 2 readers / 1 writer
  w.ops_per_thread = 2;
  ExploreOptions opt;
  opt.seed = seed;
  opt.max_runs = 25;
  for (const std::string& name : checked_locks()) {
    SCOPED_TRACE(name + "; " + testutil::seed_replay(seed));
    const ExploreReport rep = explore_pct(make_runner(name, w), w, opt);
    EXPECT_EQ(rep.schedules, opt.max_runs);
    EXPECT_FALSE(rep.found_violation)
        << to_string(rep.verdict.kind) << ": " << rep.verdict.detail;
  }
}

TEST(CheckerLocks, EveryLockPassesPctWriterHeavy) {
  const std::uint64_t seed = fault::env_seed(2);
  Workload w;
  w.threads = 3;
  w.writers = 2;  // exclusion stress: two increments racing one reader
  w.ops_per_thread = 2;
  ExploreOptions opt;
  opt.seed = seed;
  opt.max_runs = 25;
  for (const std::string& name : checked_locks()) {
    SCOPED_TRACE(name + "; " + testutil::seed_replay(seed));
    const ExploreReport rep = explore_pct(make_runner(name, w), w, opt);
    EXPECT_FALSE(rep.found_violation)
        << to_string(rep.verdict.kind) << ": " << rep.verdict.detail;
  }
}

// The issue's acceptance bar: bounded-exhaustive DFS over 3-thread SpRWL
// (2 readers / 1 writer, kFull scheduling) terminates, reports how many
// distinct schedules it covered, and finds no violation.
TEST(CheckerLocks, AcceptanceDfsSpRWLFull) {
  const Workload w;  // defaults: 3 threads, 1 writer, 1 op each
  ExploreOptions opt;
  const ExploreReport rep = explore_dfs(make_runner("SpRWL", w), w, opt);
  EXPECT_TRUE(rep.exhausted) << "DFS did not exhaust the bounded tree";
  EXPECT_GT(rep.schedules, 1u);
  EXPECT_FALSE(rep.found_violation)
      << to_string(rep.verdict.kind) << ": " << rep.verdict.detail;
  ::testing::Test::RecordProperty(
      "dfs_schedules", static_cast<int>(rep.schedules));
  ::testing::Test::RecordProperty("dfs_pruned", static_cast<int>(rep.pruned));
}

// Self-validation: SpRWL with the broken commit-time reader scan (skips
// reader tid 0) must be caught, the failing schedule minimized, the
// artifact round-tripped, and the repro deterministic.
TEST(CheckerLocks, BrokenScanCaughtWithMinimizedDeterministicRepro) {
  const Workload w;
  ExploreOptions opt;
  opt.lock_name = broken_lock_name();
  opt.artifact_dir = ::testing::TempDir();
  opt.seed = 99;
  const RunFn run = make_runner(broken_lock_name(), w);
  const ExploreReport rep = explore_dfs(run, w, opt);

  ASSERT_TRUE(rep.found_violation)
      << "the checker missed the deliberately broken scan";
  EXPECT_EQ(rep.verdict.kind, Verdict::kTorn) << rep.verdict.detail;
  ASSERT_FALSE(rep.repro.empty());

  // Deterministic replay: the minimized trace reproduces the violation on
  // every attempt.
  EXPECT_EQ(replay_trace(run, rep.repro).kind, rep.verdict.kind);
  EXPECT_EQ(replay_trace(run, rep.repro).kind, rep.verdict.kind);

  // Artifact round-trip, and a replay driven purely from the file: the
  // one-command repro path (check_schedules --replay) uses exactly this.
  ASSERT_FALSE(rep.artifact_path.empty());
  ReproArtifact a;
  ASSERT_TRUE(read_artifact(rep.artifact_path, &a)) << rep.artifact_path;
  EXPECT_EQ(a.lock, broken_lock_name());
  EXPECT_EQ(a.policy, "dfs");
  EXPECT_EQ(a.choices, rep.repro);
  EXPECT_EQ(a.workload.threads, w.threads);
  EXPECT_EQ(a.workload.writers, w.writers);
  const Verdict from_file =
      replay_trace(make_runner(a.lock, a.workload), a.choices);
  EXPECT_EQ(from_file.kind, Verdict::kTorn) << from_file.detail;
  std::remove(rep.artifact_path.c_str());
}

TEST(CheckerLocks, UnknownLockNameIsRejected) {
  EXPECT_THROW(make_runner("NoSuchLock", Workload{}), std::invalid_argument);
}

// The hierarchical-tracking acceptance bar: 2-thread bounded-exhaustive
// DFS over the sharded variant (split over two simulated sockets, so the
// commit scan really reads two summaries) terminates with no violation.
TEST(CheckerLocks, AcceptanceDfsSpRWLShardedTwoThreads) {
  Workload w;
  w.threads = 2;
  w.writers = 1;
  ExploreOptions opt;
  const ExploreReport rep = explore_dfs(make_runner("SpRWL-sharded", w), w, opt);
  EXPECT_TRUE(rep.exhausted) << "DFS did not exhaust the bounded tree";
  EXPECT_GT(rep.schedules, 1u);
  EXPECT_FALSE(rep.found_violation)
      << to_string(rep.verdict.kind) << ": " << rep.verdict.detail;
  ::testing::Test::RecordProperty(
      "sharded_dfs_schedules", static_cast<int>(rep.schedules));
}

// Self-validation under the hierarchical layout: a commit scan that skips
// the socket summary owning reader tid 0 must be caught exactly like the
// flat broken scan — minimized, deterministic, artifact round-tripped.
// Guards against the sharded read-set reduction hiding reader arrivals
// from the checker.
TEST(CheckerLocks, ShardedBrokenScanCaughtWithDeterministicRepro) {
  const Workload w;
  ExploreOptions opt;
  opt.lock_name = "SpRWL-sharded-broken";
  opt.artifact_dir = ::testing::TempDir();
  opt.seed = 123;
  const RunFn run = make_runner("SpRWL-sharded-broken", w);
  const ExploreReport rep = explore_dfs(run, w, opt);

  ASSERT_TRUE(rep.found_violation)
      << "the checker missed the broken sharded scan";
  EXPECT_EQ(rep.verdict.kind, Verdict::kTorn) << rep.verdict.detail;
  ASSERT_FALSE(rep.repro.empty());
  EXPECT_EQ(replay_trace(run, rep.repro).kind, rep.verdict.kind);
  EXPECT_EQ(replay_trace(run, rep.repro).kind, rep.verdict.kind);

  ASSERT_FALSE(rep.artifact_path.empty());
  ReproArtifact a;
  ASSERT_TRUE(read_artifact(rep.artifact_path, &a)) << rep.artifact_path;
  EXPECT_EQ(a.lock, "SpRWL-sharded-broken");
  EXPECT_EQ(a.choices, rep.repro);
  const Verdict from_file =
      replay_trace(make_runner(a.lock, a.workload), a.choices);
  EXPECT_EQ(from_file.kind, Verdict::kTorn) << from_file.detail;
  std::remove(rep.artifact_path.c_str());
}

// The global-reader-bias acceptance bar: 2-thread bounded-exhaustive DFS
// over the bravo variant (bias starts on; a fresh 8-slot shared table per
// schedule) terminates with no violation — covering fast-path publishes
// racing revocation drains and the re-bias CAS.
TEST(CheckerLocks, AcceptanceDfsSpRWLBravoTwoThreads) {
  Workload w;
  w.threads = 2;
  w.writers = 1;
  ExploreOptions opt;
  const ExploreReport rep = explore_dfs(make_runner("SpRWL-bravo", w), w, opt);
  EXPECT_TRUE(rep.exhausted) << "DFS did not exhaust the bounded tree";
  EXPECT_GT(rep.schedules, 1u);
  EXPECT_FALSE(rep.found_violation)
      << to_string(rep.verdict.kind) << ": " << rep.verdict.detail;
  ::testing::Test::RecordProperty(
      "bravo_dfs_schedules", static_cast<int>(rep.schedules));
}

// Self-validation for the revocation drain: with a one-slot table and a
// drain that skips the table's last slot, revocation waits for nobody — a
// fast-path reader parked in slot 0 survives it and the writer commits
// over the reader's snapshot. The checker must catch it, minimize it, and
// round-trip the artifact exactly like the flat and sharded broken scans.
TEST(CheckerLocks, BravoBrokenRevokeCaughtWithDeterministicRepro) {
  const Workload w;
  ExploreOptions opt;
  opt.lock_name = "SpRWL-bravo-broken";
  opt.artifact_dir = ::testing::TempDir();
  opt.seed = 123;
  const RunFn run = make_runner("SpRWL-bravo-broken", w);
  const ExploreReport rep = explore_dfs(run, w, opt);

  ASSERT_TRUE(rep.found_violation)
      << "the checker missed the broken revocation drain";
  EXPECT_EQ(rep.verdict.kind, Verdict::kTorn) << rep.verdict.detail;
  ASSERT_FALSE(rep.repro.empty());
  EXPECT_EQ(replay_trace(run, rep.repro).kind, rep.verdict.kind);
  EXPECT_EQ(replay_trace(run, rep.repro).kind, rep.verdict.kind);

  ASSERT_FALSE(rep.artifact_path.empty());
  ReproArtifact a;
  ASSERT_TRUE(read_artifact(rep.artifact_path, &a)) << rep.artifact_path;
  EXPECT_EQ(a.lock, "SpRWL-bravo-broken");
  EXPECT_EQ(a.choices, rep.repro);
  const Verdict from_file =
      replay_trace(make_runner(a.lock, a.workload), a.choices);
  EXPECT_EQ(from_file.kind, Verdict::kTorn) << from_file.detail;
  std::remove(rep.artifact_path.c_str());
}

// The NUMA-sharded-table acceptance bar: 2-thread bounded-exhaustive DFS
// over the socket-sharded bravo variant — the checker threads split over
// two simulated sockets, so the reader's fast-path publish (slot CAS +
// shard summary bump) lands in shard 0 while the writer's revocation
// drain walks both shards summary-first. Exhausting clean covers the
// Dekker race the clean-shard skip leans on: a drain reading summary 0
// concurrent with a reader between its slot CAS and its bias validation.
TEST(CheckerLocks, AcceptanceDfsSpRWLBravoNumaTwoThreads) {
  Workload w;
  w.threads = 2;
  w.writers = 1;
  ExploreOptions opt;
  const ExploreReport rep =
      explore_dfs(make_runner("SpRWL-bravo-numa", w), w, opt);
  EXPECT_TRUE(rep.exhausted) << "DFS did not exhaust the bounded tree";
  EXPECT_GT(rep.schedules, 1u);
  EXPECT_FALSE(rep.found_violation)
      << to_string(rep.verdict.kind) << ": " << rep.verdict.detail;
  ::testing::Test::RecordProperty(
      "bravo_numa_dfs_schedules", static_cast<int>(rep.schedules));
}

// Self-validation for the sharded drain: a drain blinded to shard 0 —
// summary and slots — never waits for the socket-0 reader's fast-path
// registration, so the writer commits over the reader's snapshot. The
// checker must catch it, ddmin must minimize it, and the artifact must
// round-trip and replay deterministically, like the global-table broken
// drain. Guards the per-shard summary skip against ever hiding a remote
// socket's readers.
TEST(CheckerLocks, BravoNumaBrokenDrainCaughtWithDeterministicRepro) {
  const Workload w;
  ExploreOptions opt;
  opt.lock_name = "SpRWL-bravo-numa-broken";
  opt.artifact_dir = ::testing::TempDir();
  opt.seed = 123;
  const RunFn run = make_runner("SpRWL-bravo-numa-broken", w);
  const ExploreReport rep = explore_dfs(run, w, opt);

  ASSERT_TRUE(rep.found_violation)
      << "the checker missed the shard-blinded revocation drain";
  EXPECT_EQ(rep.verdict.kind, Verdict::kTorn) << rep.verdict.detail;
  ASSERT_FALSE(rep.repro.empty());
  EXPECT_EQ(replay_trace(run, rep.repro).kind, rep.verdict.kind);
  EXPECT_EQ(replay_trace(run, rep.repro).kind, rep.verdict.kind);

  ASSERT_FALSE(rep.artifact_path.empty());
  ReproArtifact a;
  ASSERT_TRUE(read_artifact(rep.artifact_path, &a)) << rep.artifact_path;
  EXPECT_EQ(a.lock, "SpRWL-bravo-numa-broken");
  EXPECT_EQ(a.choices, rep.repro);
  const Verdict from_file =
      replay_trace(make_runner(a.lock, a.workload), a.choices);
  EXPECT_EQ(from_file.kind, Verdict::kTorn) << from_file.detail;
  std::remove(rep.artifact_path.c_str());
}

// The cancellation acceptance bar: 2-thread bounded-exhaustive DFS over
// the timed variant. Each reader alternates an immediately expiring budget
// (the occupy-expire-release unwind runs on every schedule) with a
// comfortable one (the acquired path runs too), so the tree covers timeout
// unwinds racing writer revocations in both orders. Exhausting clean means
// no interleaving leaves a phantom reader wedging a writer (livelock) or a
// half-released slot tearing a snapshot.
TEST(CheckerLocks, AcceptanceDfsSpRWLTimeoutTwoThreads) {
  Workload w;
  w.threads = 2;
  w.writers = 1;
  w.ops_per_thread = 2;
  ExploreOptions opt;
  const ExploreReport rep = explore_dfs(make_runner("SpRWL-timeout", w), w, opt);
  EXPECT_TRUE(rep.exhausted) << "DFS did not exhaust the bounded tree";
  EXPECT_GT(rep.schedules, 1u);
  EXPECT_FALSE(rep.found_violation)
      << to_string(rep.verdict.kind) << ": " << rep.verdict.detail;
  ::testing::Test::RecordProperty(
      "timeout_dfs_schedules", static_cast<int>(rep.schedules));
}

// Self-validation for the cancellation unwind: the timed bias read's
// timeout path skips the ReaderTable slot release, so the expired reader
// leaves a ghost occupant behind and the next writer's revocation drain
// waits on it forever. The checker must report it as a livelock, and the
// artifact must round-trip — including through make_runner, which
// re-applies the timed workload settings from the lock name. Unlike the
// torn-read repros, the leak is unconditional (budget 1 expires on every
// schedule), so ddmin legitimately minimizes the trace to zero decisions;
// the replay must still reproduce the verdict from that empty trace.
TEST(CheckerLocks, TimeoutBrokenCaughtWithDeterministicRepro) {
  const Workload w;
  ExploreOptions opt;
  opt.lock_name = "SpRWL-timeout-broken";
  opt.artifact_dir = ::testing::TempDir();
  opt.seed = 123;
  const RunFn run = make_runner("SpRWL-timeout-broken", w);
  const ExploreReport rep = explore_dfs(run, w, opt);

  ASSERT_TRUE(rep.found_violation)
      << "the checker missed the leaked reader-table slot";
  EXPECT_EQ(rep.verdict.kind, Verdict::kLivelock) << rep.verdict.detail;
  EXPECT_EQ(replay_trace(run, rep.repro).kind, rep.verdict.kind);
  EXPECT_EQ(replay_trace(run, rep.repro).kind, rep.verdict.kind);

  ASSERT_FALSE(rep.artifact_path.empty());
  ReproArtifact a;
  ASSERT_TRUE(read_artifact(rep.artifact_path, &a)) << rep.artifact_path;
  EXPECT_EQ(a.lock, "SpRWL-timeout-broken");
  EXPECT_EQ(a.choices, rep.repro);
  const Verdict from_file =
      replay_trace(make_runner(a.lock, a.workload), a.choices);
  EXPECT_EQ(from_file.kind, Verdict::kLivelock) << from_file.detail;
  std::remove(rep.artifact_path.c_str());
}

// The distributed-tier acceptance bar: 2-thread bounded-exhaustive DFS
// over the lease variant (one node per thread, so every write is a full
// cross-node lease handoff and the reader is a remote optimist running
// the version-validated copy loop) terminates with no violation. The
// lease term is effectively infinite here — controlled scheduling ignores
// clocks, so expiry fencing is out of scope (DESIGN.md §15); what the
// tree covers is grant serialization racing the seqlock claim/publish.
TEST(CheckerLocks, AcceptanceDfsSpRWLLeaseTwoThreads) {
  Workload w;
  w.threads = 2;
  w.writers = 1;
  ExploreOptions opt;
  const ExploreReport rep = explore_dfs(make_runner("SpRWL-lease", w), w, opt);
  EXPECT_TRUE(rep.exhausted) << "DFS did not exhaust the bounded tree";
  EXPECT_GT(rep.schedules, 1u);
  EXPECT_FALSE(rep.found_violation)
      << to_string(rep.verdict.kind) << ": " << rep.verdict.detail;
  ::testing::Test::RecordProperty(
      "lease_dfs_schedules", static_cast<int>(rep.schedules));
}

// Self-validation for the optimistic-read validation: with the version
// re-validation skipped, a reader whose copy straddles the writer's
// claim/publish window accepts a torn observation — the stale-lease read
// the dist tier's whole read protocol exists to reject. The checker must
// catch it, ddmin must minimize it, and the artifact must round-trip and
// replay deterministically, exactly like the other broken variants.
TEST(CheckerLocks, LeaseBrokenValidationCaughtWithDeterministicRepro) {
  const Workload w;
  ExploreOptions opt;
  opt.lock_name = "SpRWL-lease-broken";
  opt.artifact_dir = ::testing::TempDir();
  opt.seed = 123;
  const RunFn run = make_runner("SpRWL-lease-broken", w);
  const ExploreReport rep = explore_dfs(run, w, opt);

  ASSERT_TRUE(rep.found_violation)
      << "the checker missed the skipped read validation";
  EXPECT_EQ(rep.verdict.kind, Verdict::kTorn) << rep.verdict.detail;
  ASSERT_FALSE(rep.repro.empty());
  EXPECT_EQ(replay_trace(run, rep.repro).kind, rep.verdict.kind);
  EXPECT_EQ(replay_trace(run, rep.repro).kind, rep.verdict.kind);

  ASSERT_FALSE(rep.artifact_path.empty());
  ReproArtifact a;
  ASSERT_TRUE(read_artifact(rep.artifact_path, &a)) << rep.artifact_path;
  EXPECT_EQ(a.lock, "SpRWL-lease-broken");
  EXPECT_EQ(a.choices, rep.repro);
  const Verdict from_file =
      replay_trace(make_runner(a.lock, a.workload), a.choices);
  EXPECT_EQ(from_file.kind, Verdict::kTorn) << from_file.detail;
  std::remove(rep.artifact_path.c_str());
}

// Workload deadline fields survive the artifact round-trip (needed when a
// repro is driven by explicit timed settings rather than a registry name
// that re-applies them).
TEST(CheckerLocks, ArtifactRoundTripsTimedWorkloadFields) {
  ReproArtifact a;
  a.lock = "SpRWL";
  a.policy = "dfs";
  a.seed = 42;
  a.workload.timed_reads = true;
  a.workload.read_deadlines = {1, 400000};
  a.violation = "none";
  const std::string path = write_artifact(a, ::testing::TempDir());
  ReproArtifact b;
  ASSERT_TRUE(read_artifact(path, &b)) << path;
  EXPECT_TRUE(b.workload.timed_reads);
  EXPECT_EQ(b.workload.read_deadlines, a.workload.read_deadlines);
  std::remove(path.c_str());
}

// PCT depth calibration: with calibration off the horizon is the static
// heuristic; with it on, the measured median plus the livelock stall
// allowance replaces it — deterministically for a fixed seed, and never
// below the allowance (change points must be able to land inside the
// stall-detection window or a late strict-priority starvation becomes a
// guaranteed false livelock).
TEST(CheckerLocks, PctCalibrationReplacesStaticHeuristic) {
  const Workload w;  // 3 threads, 1 op each
  const std::size_t heuristic = 3u * 1u * 32u + 16u;
  sim::SimConfig sc;
  const auto allowance =
      static_cast<std::size_t>(sc.resolved_no_progress_bound(w.threads));

  ExploreOptions off;
  off.seed = 5;
  off.max_runs = 8;
  off.calibration_runs = 0;
  const ExploreReport rep_off = explore_pct(make_runner("SpRWL", w), w, off);
  EXPECT_EQ(rep_off.calibrated_decisions, heuristic);
  EXPECT_FALSE(rep_off.found_violation);

  ExploreOptions on = off;
  on.calibration_runs = 5;
  const ExploreReport a = explore_pct(make_runner("SpRWL", w), w, on);
  const ExploreReport b = explore_pct(make_runner("SpRWL", w), w, on);
  EXPECT_GT(a.calibrated_decisions, allowance);
  EXPECT_EQ(a.calibrated_decisions, b.calibrated_decisions);
  EXPECT_EQ(a.schedules, on.max_runs);
  EXPECT_FALSE(a.found_violation);
}

}  // namespace
}  // namespace sprwl::check
