// The snapshot-isolation spec checker (check/si.h) and its integration:
// unit tests of the SI axioms over hand-built histories, the
// bounded-exhaustive DFS acceptance run on SpRWL-mvcc, and the
// self-validation that an engine deliberately serving too-new snapshot
// reads (SpRWL-mvcc-broken) is caught, minimized, and round-tripped
// through the repro artifact.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "check/artifact.h"
#include "check/explorer.h"
#include "check/harness.h"
#include "check/registry.h"
#include "check/si.h"

namespace sprwl::check {
namespace {

OpRecord write_op(int tid, std::uint64_t value, std::uint64_t version,
                  std::uint64_t at) {
  return {tid, true, at, at + 1, value, false, false, version};
}

OpRecord snap_op(int tid, std::uint64_t value, std::uint64_t pin,
                 std::uint64_t at) {
  return {tid, false, at, at + 1, value, false, true, pin};
}

TEST(SiSpec, CleanHistoryPasses) {
  History h;
  h.push_back(write_op(0, 1, 5, 0));
  h.push_back(write_op(0, 2, 9, 2));
  h.push_back(snap_op(1, 0, 3, 4));  // pinned before both writes
  h.push_back(snap_op(1, 1, 5, 6));  // pinned exactly at write 1
  h.push_back(snap_op(1, 2, 12, 8));  // pinned after both
  const SiResult r = check_si_history(h);
  EXPECT_TRUE(r.ok) << r.reason;
}

TEST(SiSpec, LostUpdateDetected) {
  History h;
  h.push_back(write_op(0, 1, 5, 0));
  h.push_back(write_op(1, 1, 9, 2));  // both writers produced 1
  const SiResult r = check_si_history(h);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("lost update"), std::string::npos) << r.reason;
}

TEST(SiSpec, CommitVersionOrderMustMatchValueOrder) {
  History h;
  h.push_back(write_op(0, 1, 9, 0));  // value 1 committed at version 9...
  h.push_back(write_op(1, 2, 5, 2));  // ...but value 2 at version 5
  const SiResult r = check_si_history(h);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("commit versions"), std::string::npos) << r.reason;
}

TEST(SiSpec, TooNewSnapshotReadDetected) {
  History h;
  h.push_back(write_op(0, 1, 5, 0));
  h.push_back(write_op(0, 2, 9, 2));
  h.push_back(snap_op(1, 2, 6, 4));  // pin 6 admits only write 1
  const SiResult r = check_si_history(h);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("too-new"), std::string::npos) << r.reason;
}

TEST(SiSpec, TooOldSnapshotReadDetected) {
  History h;
  h.push_back(write_op(0, 1, 5, 0));
  h.push_back(snap_op(1, 0, 8, 2));  // pin 8 must already see write 1
  const SiResult r = check_si_history(h);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("too-old"), std::string::npos) << r.reason;
}

TEST(SiSpec, NonSnapshotReadsAreOutOfScope) {
  History h;
  h.push_back(write_op(0, 1, 5, 0));
  // A registered (non-snapshot) read with a value SI could never justify:
  // Wing–Gong owns it, the SI checker must not judge it.
  h.push_back(OpRecord{1, false, 2, 3, 7, false, false, 0});
  const SiResult r = check_si_history(h);
  EXPECT_TRUE(r.ok) << r.reason;
}

// The issue's acceptance bar: bounded-exhaustive 2-thread DFS over the
// snapshot-reader variant (1 snapshot reader / 1 writer, retain_versions=2)
// terminates and exhausts with no violation — every interleaving of pin,
// publish, ring append, floor raise and fallback satisfies the SI axioms
// and leaves the non-snapshot sub-history linearizable.
TEST(SiSpec, AcceptanceDfsSpRWLMvccTwoThreads) {
  Workload w;
  w.threads = 2;
  w.writers = 1;
  ExploreOptions opt;
  const ExploreReport rep = explore_dfs(make_runner("SpRWL-mvcc", w), w, opt);
  EXPECT_TRUE(rep.exhausted) << "DFS did not exhaust the bounded tree";
  EXPECT_GT(rep.schedules, 1u);
  EXPECT_FALSE(rep.found_violation)
      << to_string(rep.verdict.kind) << ": " << rep.verdict.detail;
  ::testing::Test::RecordProperty(
      "mvcc_dfs_schedules", static_cast<int>(rep.schedules));
}

// Self-validation: an engine whose snapshot lookup is blinded
// (broken_snapshot_too_new serves current memory past the pin) produces a
// too-new read on some interleaving. The checker must catch it as an SI
// violation, ddmin must minimize it, the artifact must round-trip with the
// snapshot workload fields intact, and the file-driven replay must
// reproduce the verdict.
TEST(SiSpec, MvccBrokenCaughtWithDeterministicRepro) {
  Workload w;
  w.threads = 2;
  w.writers = 1;
  // The artifact records the workload as handed to the explorer, so spell
  // out what the registry would derive: a single-cell snapshot workload
  // over a 2-deep ring with the blinded lookup on.
  w.cells = 1;
  w.snapshot_reads = true;
  w.retain_versions = 2;
  w.broken_snapshot = true;
  ExploreOptions opt;
  opt.lock_name = "SpRWL-mvcc-broken";
  opt.artifact_dir = ::testing::TempDir();
  opt.seed = 123;
  const RunFn run = make_runner("SpRWL-mvcc-broken", w);
  const ExploreReport rep = explore_dfs(run, w, opt);

  ASSERT_TRUE(rep.found_violation)
      << "the checker missed the too-new snapshot read";
  EXPECT_EQ(rep.verdict.kind, Verdict::kSiViolation) << rep.verdict.detail;
  EXPECT_NE(rep.verdict.detail.find("too-new"), std::string::npos)
      << rep.verdict.detail;
  EXPECT_EQ(replay_trace(run, rep.repro).kind, rep.verdict.kind);
  EXPECT_EQ(replay_trace(run, rep.repro).kind, rep.verdict.kind);

  ASSERT_FALSE(rep.artifact_path.empty());
  ReproArtifact a;
  ASSERT_TRUE(read_artifact(rep.artifact_path, &a)) << rep.artifact_path;
  EXPECT_EQ(a.lock, "SpRWL-mvcc-broken");
  EXPECT_EQ(a.choices, rep.repro);
  EXPECT_TRUE(a.workload.snapshot_reads);
  EXPECT_EQ(a.workload.retain_versions, 2u);
  EXPECT_TRUE(a.workload.broken_snapshot);
  const Verdict from_file =
      replay_trace(make_runner(a.lock, a.workload), a.choices);
  EXPECT_EQ(from_file.kind, Verdict::kSiViolation) << from_file.detail;
  std::remove(rep.artifact_path.c_str());
}

// Snapshot workload fields survive the artifact round-trip on their own
// (a repro may be driven by explicit settings rather than a registry name
// that re-applies them), and artifacts written before the fields existed
// still parse with "no snapshots" defaults.
TEST(SiSpec, ArtifactRoundTripsSnapshotWorkloadFields) {
  ReproArtifact a;
  a.lock = "SpRWL-mvcc";
  a.policy = "dfs";
  a.seed = 42;
  a.workload.snapshot_reads = true;
  a.workload.retain_versions = 3;
  a.workload.broken_snapshot = false;
  a.violation = "none";
  const std::string path = write_artifact(a, ::testing::TempDir());
  ReproArtifact b;
  ASSERT_TRUE(read_artifact(path, &b)) << path;
  EXPECT_TRUE(b.workload.snapshot_reads);
  EXPECT_EQ(b.workload.retain_versions, 3u);
  EXPECT_FALSE(b.workload.broken_snapshot);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sprwl::check
