// Unit tests for the Wing–Gong counter-spec checker on hand-built
// histories (the explorer integration is covered in test_checker_locks).
#include <gtest/gtest.h>

#include "check/linearizability.h"

namespace sprwl::check {
namespace {

OpRecord w(int tid, std::uint64_t inv, std::uint64_t resp, std::uint64_t val) {
  return {tid, true, inv, resp, val, false};
}
OpRecord r(int tid, std::uint64_t inv, std::uint64_t resp, std::uint64_t val,
           bool torn = false) {
  return {tid, false, inv, resp, val, torn};
}

TEST(Linearizability, EmptyAndSequentialHistoriesPass) {
  EXPECT_TRUE(check_counter_history({}).ok);
  const History h{w(0, 1, 2, 1), r(1, 3, 4, 1), w(0, 5, 6, 2), r(1, 7, 8, 2)};
  const LinResult res = check_counter_history(h);
  EXPECT_TRUE(res.ok) << res.reason;
}

TEST(Linearizability, TornReadRejectedStructurally) {
  const History h{w(0, 1, 2, 1), r(1, 3, 4, 1, /*torn=*/true)};
  const LinResult res = check_counter_history(h);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.reason.find("torn"), std::string::npos) << res.reason;
  EXPECT_EQ(res.states_visited, 0u);  // no search needed
}

TEST(Linearizability, DuplicateWriteValuesAreALostUpdate) {
  // Two increments both stored 1: the second writer read a stale counter.
  const History h{w(0, 1, 4, 1), w(1, 2, 5, 1)};
  const LinResult res = check_counter_history(h);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.reason.find("lost update"), std::string::npos) << res.reason;
}

TEST(Linearizability, OutOfRangeWriteValueIsALostUpdate) {
  const History h{w(0, 1, 2, 3)};
  EXPECT_FALSE(check_counter_history(h).ok);
}

TEST(Linearizability, NonOverlappingReadMustSeeExactCount) {
  // The read begins after the write's response: it must return 1.
  const History stale{w(0, 1, 2, 1), r(1, 3, 4, 0)};
  const LinResult res = check_counter_history(stale);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.reason.find("overlapping no write"), std::string::npos)
      << res.reason;
}

TEST(Linearizability, ConcurrentReadMaySeeEitherSide) {
  // The read overlaps the write: both 0 (before) and 1 (after) linearize.
  EXPECT_TRUE(check_counter_history({w(0, 1, 4, 1), r(1, 2, 3, 0)}).ok);
  EXPECT_TRUE(check_counter_history({w(0, 1, 4, 1), r(1, 2, 3, 1)}).ok);
}

TEST(Linearizability, ImpossibleConcurrentValueFailsTheSearch) {
  // One write total, yet a concurrent read claims two.
  const History h{w(0, 1, 4, 1), r(1, 2, 3, 2)};
  const LinResult res = check_counter_history(h);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.reason.find("no linearization"), std::string::npos)
      << res.reason;
}

TEST(Linearizability, RealTimeOrderOfReadsIsRespected) {
  // Both reads overlap the write, but the first read responded before the
  // second was invoked and saw the *newer* value — the later read seeing
  // the older one would travel back in time. Wing–Gong's minimality rule
  // must reject it.
  const History h{w(0, 1, 10, 1), r(1, 4, 5, 1), r(2, 6, 7, 0)};
  EXPECT_FALSE(check_counter_history(h).ok);
  // The legal orientation passes.
  const History ok{w(0, 1, 10, 1), r(1, 4, 5, 0), r(2, 6, 7, 1)};
  EXPECT_TRUE(check_counter_history(ok).ok);
}

TEST(Linearizability, MemoizationHandlesManyConcurrentReads) {
  // 2 writes + 12 fully-concurrent reads: naive DFS would branch
  // factorially; the mask memoization keeps states_visited small.
  History h{w(0, 1, 100, 1), w(0, 101, 200, 2)};
  for (int i = 0; i < 12; ++i) h.push_back(r(1 + i, 2, 199, i % 2 == 0 ? 1 : 2));
  const LinResult res = check_counter_history(h);
  EXPECT_TRUE(res.ok) << res.reason;
  EXPECT_LT(res.states_visited, 20000u);
}

TEST(Linearizability, OversizedHistoriesAreRejectedNotMisjudged) {
  History h;
  std::uint64_t t = 1;
  for (int i = 0; i < 65; ++i) {
    // All writes overlap, so none is removed by the reductions.
    h.push_back(w(i, 1, 1000 + t, static_cast<std::uint64_t>(i + 1)));
    ++t;
  }
  const LinResult res = check_counter_history(h);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.reason.find("too large"), std::string::npos) << res.reason;
}

}  // namespace
}  // namespace sprwl::check
