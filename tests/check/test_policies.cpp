// Policy-level tests: PCT seed discipline, DFS termination/exhaustion, and
// the sleep-set reduction on a workload with provably independent ops.
#include <gtest/gtest.h>

#include <vector>

#include "check/explorer.h"
#include "check/harness.h"
#include "check/policies.h"
#include "check/registry.h"
#include "common/platform.h"
#include "sim/simulator.h"

namespace sprwl::check {
namespace {

std::vector<int> run_choices(const RunFn& run, sim::SchedulePolicy& p) {
  return run(p).choices();
}

TEST(Pct, SameSeedSameSchedules) {
  Workload w;
  w.threads = 4;
  w.writers = 2;
  const RunFn run = make_runner("RWL", w);
  PctPolicy a(/*seed=*/11), b(/*seed=*/11);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(run_choices(run, a), run_choices(run, b)) << "run " << i;
  }
}

TEST(Pct, DifferentSeedsDiverge) {
  Workload w;
  w.threads = 4;
  w.writers = 2;
  w.ops_per_thread = 2;
  const RunFn run = make_runner("RWL", w);
  PctPolicy a(/*seed=*/11), b(/*seed=*/12);
  bool diverged = false;
  for (int i = 0; i < 6 && !diverged; ++i) {
    diverged = run_choices(run, a) != run_choices(run, b);
  }
  EXPECT_TRUE(diverged);
}

/// Two fibers, each touching only its own object through explicit
/// sched_point(kApi) decision points: every cross-fiber pair of kApi ops
/// is independent, so sleep sets must collapse most interleavings.
RunResult run_two_objects(sim::SchedulePolicy& policy, int ops) {
  RunResult res;
  sim::SimConfig sc;
  sc.policy = &policy;
  sim::Simulator sim(sc);
  int a = 0, b = 0;
  sim.run(2, [&](int tid) {
    int* obj = tid == 0 ? &a : &b;
    for (int i = 0; i < ops; ++i) {
      platform::sched_point(SchedKind::kApi, obj);
      ++*obj;
    }
  });
  res.completed = !sim.cancelled();
  res.cancelled = sim.cancelled();
  res.livelock = sim.livelocked();
  res.trace = sim.decision_trace();
  return res;
}

TEST(Dfs, ExhaustsTheBoundedTree) {
  const RunFn run = [](sim::SchedulePolicy& p) {
    return run_two_objects(p, 2);
  };
  ExploreOptions opt;
  const ExploreReport rep = explore_dfs(run, Workload{}, opt);
  EXPECT_TRUE(rep.exhausted);
  EXPECT_FALSE(rep.found_violation);
  // 2 fibers x 3 decision points each (start + 2 kApi): C(6,3) = 20 total
  // interleavings before reduction.
  EXPECT_GE(rep.schedules, 1u);
  EXPECT_LE(rep.schedules, 20u);
}

TEST(Dfs, SleepSetsPruneIndependentInterleavings) {
  const RunFn run = [](sim::SchedulePolicy& p) {
    return run_two_objects(p, 2);
  };
  ExploreOptions with_ss;
  with_ss.sleep_sets = true;
  ExploreOptions no_ss;
  no_ss.sleep_sets = false;
  const ExploreReport pruned = explore_dfs(run, Workload{}, with_ss);
  const ExploreReport full = explore_dfs(run, Workload{}, no_ss);
  ASSERT_TRUE(pruned.exhausted);
  ASSERT_TRUE(full.exhausted);
  // Both cover the tree; the sleep-set run completes strictly fewer
  // schedules because commuting interleavings are explored once.
  EXPECT_LT(pruned.schedules, full.schedules);
  EXPECT_GT(full.schedules, 1u);
}

TEST(Dfs, DfsOnARealLockTerminates) {
  Workload w;
  w.threads = 2;
  w.writers = 1;
  const RunFn run = make_runner("RWL", w);
  ExploreOptions opt;
  const ExploreReport rep = explore_dfs(run, w, opt);
  EXPECT_TRUE(rep.exhausted);
  EXPECT_GT(rep.schedules, 1u);
  EXPECT_FALSE(rep.found_violation)
      << to_string(rep.verdict.kind) << ": " << rep.verdict.detail;
}

TEST(Replay, SkipsInapplicableEntriesAndTerminates) {
  Workload w;
  const RunFn run = make_runner("RWL", w);
  // A nonsense trace (fibers that are often ineligible): the run must
  // still complete deterministically and report the divergence.
  ReplayPolicy p({2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2});
  const RunResult r = run(p);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(evaluate(r).kind, Verdict::kOk);
}

TEST(Minimize, ShrinksWhilePreservingTheVerdict) {
  // Minimizing an OK run against kOk must shrink the trace (an empty
  // choice list already yields a completed OK run) and stay kOk.
  Workload w;
  const RunFn run = make_runner("RWL", w);
  ReplayPolicy p({});
  const RunResult r = run(p);
  ASSERT_TRUE(r.completed);
  const std::vector<int> min =
      minimize_trace(run, r.choices(), Verdict::kOk, /*budget=*/200);
  EXPECT_LT(min.size(), r.choices().size());
  EXPECT_EQ(replay_trace(run, min).kind, Verdict::kOk);
}

}  // namespace
}  // namespace sprwl::check
