#include "common/trace.h"

#include <gtest/gtest.h>

#include "common/platform.h"
#include "core/sprwl.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "sim/simulator.h"

namespace sprwl::trace {
namespace {

TEST(Tracer, EmitAndDrainPreserveOrder) {
  ThreadIdScope tid(3);
  Tracer t(16);
  TracerScope scope(t);
  emit(Event::kReadUninsEnter, 1);
  emit(Event::kReadUninsExit, 2);
  const auto records = t.drain();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].event, Event::kReadUninsEnter);
  EXPECT_EQ(records[0].arg, 1u);
  EXPECT_EQ(records[0].tid, 3);
  EXPECT_EQ(records[1].event, Event::kReadUninsExit);
}

TEST(Tracer, RingKeepsTheNewestRecords) {
  ThreadIdScope tid(0);
  Tracer t(4);
  TracerScope scope(t);
  for (std::uint32_t i = 0; i < 10; ++i) emit(Event::kWriterWait, i);
  EXPECT_EQ(t.emitted(), 10u);
  const auto records = t.drain();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().arg, 6u);
  EXPECT_EQ(records.back().arg, 9u);
}

TEST(Tracer, NoTracerInstalledIsANoOp) {
  ASSERT_EQ(Tracer::current(), nullptr);
  emit(Event::kWriteHtmCommit);  // must not crash
}

TEST(Tracer, EventNamesAreDistinct) {
  EXPECT_STREQ(to_string(Event::kReadHtmCommit), "read-htm-commit");
  EXPECT_STREQ(to_string(Event::kWriteAbortReader), "write-abort-reader");
  EXPECT_STREQ(to_string(Event::kModeFlipToSnzi), "mode-flip-to-snzi");
}

TEST(Tracer, CapturesTheFig1Timeline) {
  // The Fig. 1 scenario traced end to end: a long reader forces the writer
  // through reader-aborts into the SGL; the trace must show the reader
  // entering uninstrumented, at least one write-abort-reader, the SGL
  // round trip, and the reader leaving before the SGL section ends.
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope escope(engine);
  core::Config cfg = core::Config::variant(core::SchedulingVariant::kNoSched, 2);
  cfg.reader_htm_first = false;
  core::SpRWLock lock{cfg};
  htm::Shared<std::uint64_t> x;
  Tracer tracer;
  TracerScope scope(tracer);
  sim::Simulator sim;
  sim.run(2, [&](int tid) {
    if (tid == 0) {
      lock.read(0, [&] { platform::advance(50'000); });
    } else {
      platform::advance(5'000);
      lock.write(1, [&] { x.store(1); });
    }
  });
  const auto records = tracer.drain();
  bool saw_enter = false, saw_abort = false, saw_sgl = false, saw_exit = false;
  std::uint64_t reader_exit_time = 0, sgl_exit_time = 0;
  for (const Record& r : records) {
    switch (r.event) {
      case Event::kReadUninsEnter: saw_enter = true; break;
      case Event::kWriteAbortReader: saw_abort = true; break;
      case Event::kWriteSglEnter: saw_sgl = true; break;
      case Event::kReadUninsExit:
        saw_exit = true;
        reader_exit_time = r.time;
        break;
      case Event::kWriteSglExit: sgl_exit_time = r.time; break;
      default: break;
    }
  }
  EXPECT_TRUE(saw_enter);
  EXPECT_TRUE(saw_abort);
  EXPECT_TRUE(saw_sgl);
  EXPECT_TRUE(saw_exit);
  // The SGL writer waited for the reader: it exits after the reader did.
  EXPECT_GT(sgl_exit_time, reader_exit_time);
}

TEST(Tracer, CapturesHtmCommitFastPaths) {
  htm::Engine engine{htm::EngineConfig{}};
  htm::EngineScope escope(engine);
  core::SpRWLock lock{core::Config::variant(core::SchedulingVariant::kFull, 1)};
  htm::Shared<std::uint64_t> x;
  Tracer tracer;
  TracerScope scope(tracer);
  sim::Simulator sim;
  sim.run(1, [&](int) {
    lock.read(0, [&] { (void)x.load(); });
    lock.write(1, [&] { x.store(1); });
  });
  const auto records = tracer.drain();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].event, Event::kReadHtmCommit);
  EXPECT_EQ(records[1].event, Event::kWriteHtmCommit);
  EXPECT_EQ(records[1].arg, 1u);  // first attempt
}

}  // namespace
}  // namespace sprwl::trace
