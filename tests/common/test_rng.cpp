#include "common/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace sprwl {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
    EXPECT_LT(r.next_below(1), 1u);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_in(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng r(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, UniformityChiSquareSanity) {
  Rng r(17);
  std::array<int, 16> buckets{};
  const int n = 160000;
  for (int i = 0; i < n; ++i) ++buckets[r.next_below(16)];
  // Each bucket expects n/16 = 10000; allow 5% deviation.
  for (int b : buckets) EXPECT_NEAR(b, 10000, 500);
}

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);
  EXPECT_EQ(splitmix64(s2), b);
}

}  // namespace
}  // namespace sprwl
