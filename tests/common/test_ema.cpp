#include "common/ema.h"

#include <gtest/gtest.h>

namespace sprwl {
namespace {

TEST(DurationEma, StartsAtZero) {
  DurationEma e;
  EXPECT_EQ(e.estimate(), 0u);
}

TEST(DurationEma, FirstSampleIsAdoptedDirectly) {
  DurationEma e;
  e.record(1000);
  EXPECT_EQ(e.estimate(), 1000u);
}

TEST(DurationEma, ConvergesTowardsConstantInput) {
  DurationEma e(0.125);
  e.record(100);
  for (int i = 0; i < 200; ++i) e.record(500);
  // Integer truncation per step leaves the fixpoint slightly below the
  // input; what matters for scheduling is the right magnitude.
  EXPECT_NEAR(static_cast<double>(e.estimate()), 500.0, 10.0);
}

TEST(DurationEma, TracksShiftFasterWithLargerAlpha) {
  DurationEma slow(0.05), fast(0.5);
  slow.record(100);
  fast.record(100);
  for (int i = 0; i < 10; ++i) {
    slow.record(1000);
    fast.record(1000);
  }
  EXPECT_GT(fast.estimate(), slow.estimate());
}

TEST(DurationEma, ResetClearsEstimate) {
  DurationEma e;
  e.record(42);
  e.reset();
  EXPECT_EQ(e.estimate(), 0u);
  e.record(7);
  EXPECT_EQ(e.estimate(), 7u);
}

TEST(DurationEma, SmoothsOutliers) {
  DurationEma e(0.125);
  for (int i = 0; i < 50; ++i) e.record(1000);
  e.record(100000);  // one spike
  // Estimate moves but stays well below the spike.
  EXPECT_LT(e.estimate(), 15000u);
  EXPECT_GT(e.estimate(), 1000u);
}

}  // namespace
}  // namespace sprwl
