#include "common/histogram.h"

#include <gtest/gtest.h>

namespace sprwl {
namespace {

TEST(LatencyHistogram, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.min(), 0u);
}

TEST(LatencyHistogram, ExactForSmallValues) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.record(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 15u);
  EXPECT_DOUBLE_EQ(h.mean(), 7.5);
}

TEST(LatencyHistogram, QuantilesBoundedRelativeError) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 100000; ++v) h.record(v);
  // Log-bucketed: allow ~7% relative error.
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 50000.0, 50000.0 * 0.08);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.99)), 99000.0, 99000.0 * 0.08);
  EXPECT_GE(h.quantile(1.0), h.quantile(0.5));
}

// Golden values for the within-sub-bucket interpolation. 0..131071
// uniform puts 4096 samples in each exp-12 sub-bucket; the interpolated
// p999 must land on the true rank value (130940) to within a few counts,
// and strictly below the containing bucket's upper bound (131071) — which
// is exactly what the old "return the upper bound" quantile reported,
// over-stating the tail by the full sub-bucket width.
TEST(LatencyHistogram, QuantileInterpolationGoldenValues) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 131072; ++v) h.record(v);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.999)), 130940.0, 8.0);
  EXPECT_LT(h.quantile(0.999), 131071u);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 65535.5, 8.0);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 131071u);
}

// A degenerate distribution must report exactly — interpolation never
// escapes [min, max], so a single repeated value is every quantile.
TEST(LatencyHistogram, QuantileExactForSingleRepeatedValue) {
  LatencyHistogram h;
  for (int i = 0; i < 5; ++i) h.record(777);
  EXPECT_EQ(h.quantile(0.0), 777u);
  EXPECT_EQ(h.quantile(0.5), 777u);
  EXPECT_EQ(h.quantile(0.999), 777u);
  EXPECT_EQ(h.quantile(1.0), 777u);
}

TEST(LatencyHistogram, MeanIsExact) {
  LatencyHistogram h;
  h.record(10);
  h.record(20);
  h.record(60);
  EXPECT_DOUBLE_EQ(h.mean(), 30.0);
  EXPECT_EQ(h.sum(), 90u);
}

TEST(LatencyHistogram, MergeCombines) {
  LatencyHistogram a, b;
  a.record(5);
  a.record(100);
  b.record(1000000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 1000000u);
  EXPECT_EQ(a.sum(), 1000105u);
}

TEST(LatencyHistogram, MergeWithEmptyKeepsValues) {
  LatencyHistogram a, empty;
  a.record(42);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.max(), 42u);
}

TEST(LatencyHistogram, HandlesHugeValues) {
  LatencyHistogram h;
  h.record(~0ULL);
  h.record(1ULL << 62);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~0ULL);
  EXPECT_GE(h.quantile(1.0), (1ULL << 62));
}

TEST(LatencyHistogram, ResetClearsEverything) {
  LatencyHistogram h;
  h.record(7);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

}  // namespace
}  // namespace sprwl
