#include "common/platform.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace sprwl {
namespace {

TEST(Platform, RealClockIsMonotonicNonDecreasing) {
  std::uint64_t prev = platform::now();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t cur = platform::now();
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Platform, ThreadIdDefaultsToMinusOne) {
  EXPECT_EQ(platform::thread_id(), -1);
}

TEST(Platform, ThreadIdScopeAssignsAndRestores) {
  {
    ThreadIdScope scope(5);
    EXPECT_EQ(platform::thread_id(), 5);
  }
  EXPECT_EQ(platform::thread_id(), -1);
}

TEST(Platform, ThreadIdIsPerThread) {
  ThreadIdScope scope(1);
  int other = -2;
  std::thread t([&] { other = platform::thread_id(); });
  t.join();
  EXPECT_EQ(other, -1);
  EXPECT_EQ(platform::thread_id(), 1);
}

TEST(Platform, AdvanceIsNoOpWithoutContext) {
  // Must not crash or change identity; time still real.
  platform::advance(1000000);
  SUCCEED();
}

TEST(Platform, WaitUntilReturnsOnceReached) {
  const std::uint64_t target = platform::now() + 10000;
  platform::wait_until(target);
  EXPECT_GE(platform::now(), target);
}

class FakeContext final : public ExecutionContext {
 public:
  std::uint64_t now() override { return time_; }
  void advance(std::uint64_t c) override { time_ += c; }
  void pause() override { time_ += 1; }
  void wait_until(std::uint64_t t) override {
    if (t > time_) time_ = t;
  }
  int thread_id() override { return 42; }

 private:
  std::uint64_t time_ = 0;
};

TEST(Platform, InstalledContextRoutesAllCalls) {
  FakeContext ctx;
  platform::set_context(&ctx);
  EXPECT_EQ(platform::now(), 0u);
  platform::advance(10);
  EXPECT_EQ(platform::now(), 10u);
  platform::pause();
  EXPECT_EQ(platform::now(), 11u);
  platform::wait_until(100);
  EXPECT_EQ(platform::now(), 100u);
  EXPECT_EQ(platform::thread_id(), 42);
  platform::set_context(nullptr);
  EXPECT_EQ(platform::thread_id(), -1);
}

}  // namespace
}  // namespace sprwl
