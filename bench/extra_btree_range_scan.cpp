// Extra experiment — ordered-index range scans. The paper's introduction
// motivates SpRWL with "long read-only operations, such as range queries
// and long traversals"; this bench runs them literally: a transactional
// B+-tree under one RWLock, readers performing range_count() over windows
// of sweeping width, writers inserting/erasing single keys. As the range
// width grows past HTM capacity the same crossover as Fig. 3 appears on a
// realistic ordered index.
#include <array>
#include <cstdio>
#include <memory>

#include "bench/support/bench_common.h"
#include "bench/support/runner.h"
#include "core/sprwl.h"
#include "locks/posix_rwlock.h"
#include "locks/tle.h"
#include "sim/simulator.h"
#include "structures/btree.h"

namespace sprwl::bench {
namespace {

constexpr std::uint64_t kKeySpace = 1 << 16;

template <class Lock>
double run_point(const Machine& m, Lock& lock, int threads,
                 std::uint64_t range_width, std::uint64_t measure,
                 std::uint64_t seed) {
  htm::EngineConfig ec;
  ec.capacity = m.capacity_at(threads);
  ec.max_threads = threads;
  ec.seed = seed;
  htm::Engine engine(ec);
  structures::BTree::Config tc;
  tc.capacity = 1 << 15;
  tc.max_threads = threads;
  structures::BTree tree(tc);
  {
    ThreadIdScope tid(0);
    Rng rng(seed);
    for (int i = 0; i < 30000; ++i) {
      const std::uint64_t k = rng.next_below(kKeySpace);
      tree.insert(k, k);
    }
  }
  std::uint64_t ops = 0;
  sim::Simulator sim;
  // One scope around the run, on this thread — not per fiber (see
  // workloads/driver.h).
  htm::EngineScope scope(engine);
  sim.run(threads, [&](int tid) {
    Rng rng(seed * 31 + static_cast<std::uint64_t>(tid));
    std::uint64_t mine = 0;
    while (platform::now() < measure) {
      if (rng.next_bool(0.10)) {
        const std::uint64_t k = rng.next_below(kKeySpace);
        const bool add = rng.next_bool(0.5);
        lock.write(1, [&] {
          if (add) {
            tree.insert(k, k);
          } else {
            tree.erase(k);
          }
        });
      } else {
        const std::uint64_t lo = rng.next_below(kKeySpace - range_width);
        lock.read(0, [&] { (void)tree.range_count(lo, lo + range_width); });
      }
      ++mine;
      platform::advance(g_costs.local_work);
    }
    ops += mine;
  });
  return static_cast<double>(ops) / static_cast<double>(measure) * g_costs.ghz * 1e9;
}

void run(const Args& args) {
  const Machine m = broadwell_machine();
  const int threads = args.full ? 56 : 28;
  const std::uint64_t measure =
      args.measure_cycles != 0 ? args.measure_cycles : (args.full ? 8'000'000 : 3'000'000);

  std::printf(
      "Extra: B+-tree range scans under one RWLock | %s | %d threads | 10%% "
      "updates\n",
      m.name, threads);
  std::printf("%10s | %12s %12s %12s | %s\n", "range", "TLE", "RWL", "SpRWL",
              "SpRWL/TLE");
  Runner runner;
  for (const std::uint64_t width : {64ull, 512ull, 4096ull, 16384ull}) {
    auto res = std::make_shared<std::array<double, 3>>();
    const std::uint64_t seed = args.seed;
    runner.submit([res, m, threads, width, measure, seed] {
      locks::TLELock::Config tc;
      tc.max_threads = threads;
      locks::TLELock tle{tc};
      (*res)[0] = run_point(m, tle, threads, width, measure, seed);
    });
    runner.submit([res, m, threads, width, measure, seed] {
      locks::PosixRWLock rwl{threads};
      (*res)[1] = run_point(m, rwl, threads, width, measure, seed);
    });
    runner.submit(
        [res, m, threads, width, measure, seed] {
          core::SpRWLock sprwl{
              core::Config::variant(core::SchedulingVariant::kFull, threads)};
          (*res)[2] = run_point(m, sprwl, threads, width, measure, seed);
        },
        [res, width] {
          const double t_tle = (*res)[0], t_rwl = (*res)[1], t_sp = (*res)[2];
          std::printf("%10llu | %12.3e %12.3e %12.3e | %8.2fx\n",
                      static_cast<unsigned long long>(width), t_tle, t_rwl,
                      t_sp, t_tle > 0 ? t_sp / t_tle : 0.0);
        });
  }
  runner.drain();
}

}  // namespace
}  // namespace sprwl::bench

int main(int argc, char** argv) {
  sprwl::bench::run(sprwl::bench::Args::parse(argc, argv));
  return 0;
}
