// Engine commit-path micro-benchmark: quantifies what decentralizing the
// commit protocol (CommitMode::kPerLineLocks vs the seed's kGlobalLock) buys
// for the primitives every lock algorithm in the library is built from:
//
//   tx_disjoint     each thread commits update transactions to its own line
//   tx_sameline     all threads update one shared line (true conflicts)
//   tx_readonly     read-only transactions (no publish either way)
//   nontx_disjoint  strong-isolation stores to per-thread lines (the SpRWL
//                   reader entry/exit flag pattern, unpacked flags)
//   nontx_sameline  strong-isolation stores hammering one line
//
// Virtual-time throughput is the denominator (the host may have one core;
// see sim/simulator.h). The disjoint scenarios are the point: under the
// global lock they serialize on one word, under per-line locks they are
// embarrassingly parallel. Emits a human table and BENCH_engine.json.
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "bench/support/bench_common.h"
#include "common/costs.h"
#include "common/platform.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "sim/simulator.h"

namespace sprwl::bench {
namespace {

struct alignas(64) Cell {
  htm::Shared<std::uint64_t> v;
};

struct RunOut {
  std::uint64_t ops = 0;     // attempted operations (tx attempts or stores)
  std::uint64_t cycles = 0;  // virtual final_time
  htm::EngineStats stats;

  double ops_per_s() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(ops) / static_cast<double>(cycles) *
                             g_costs.ghz * 1e9;
  }
};

constexpr const char* kScenarios[] = {"tx_disjoint", "tx_sameline",
                                      "tx_readonly", "nontx_disjoint",
                                      "nontx_sameline"};

RunOut run_scenario(const std::string& scenario, htm::CommitMode mode,
                    int threads, int ops_per_thread, std::uint64_t seed) {
  htm::EngineConfig ec;
  ec.commit_mode = mode;
  ec.max_threads = threads;
  ec.seed = seed;
  htm::Engine engine(ec);
  htm::EngineScope scope(engine);
  std::vector<Cell> cells(static_cast<std::size_t>(threads) + 1);
  Cell& shared_cell = cells.back();
  sim::Simulator sim;
  sim.run(threads, [&](int tid) {
    auto& mine = cells[static_cast<std::size_t>(tid)].v;
    for (int i = 0; i < ops_per_thread; ++i) {
      if (scenario == "tx_disjoint") {
        engine.try_transaction([&] { mine.store(mine.load() + 1); });
      } else if (scenario == "tx_sameline") {
        engine.try_transaction(
            [&] { shared_cell.v.store(shared_cell.v.load() + 1); });
      } else if (scenario == "tx_readonly") {
        engine.try_transaction([&] {
          (void)mine.load();
          (void)shared_cell.v.load();
        });
      } else if (scenario == "nontx_disjoint") {
        mine.store(static_cast<std::uint64_t>(i));
      } else {  // nontx_sameline
        shared_cell.v.store(static_cast<std::uint64_t>(i));
      }
    }
  });
  RunOut out;
  out.ops = static_cast<std::uint64_t>(threads) *
            static_cast<std::uint64_t>(ops_per_thread);
  out.cycles = sim.final_time();
  out.stats = engine.stats();
  return out;
}

const char* mode_name(htm::CommitMode m) {
  return m == htm::CommitMode::kPerLineLocks ? "perline" : "global";
}

int engine_ops_main(const Args& args) {
  const int ops = args.full ? 10000 : 2000;
  std::vector<int> threads{1, 2, 4, 8};
  if (args.full) {
    threads.push_back(16);
    threads.push_back(32);
  }

  std::printf("Engine commit-path micro-ops | %d ops/thread | virtual time\n",
              ops);
  std::printf("%-15s %-8s %4s | %12s | %9s %9s %7s | %9s\n", "scenario", "mode",
              "thr", "ops/s", "ln-retry", "nt-retry", "drains", "aborts");

  JsonWriter j;
  j.begin_object();
  j.key("bench").value("engine_ops");
  j.key("ops_per_thread").value(ops);
  j.key("seed").value(args.seed);
  j.key("rows").begin_array();

  // perline/global ops-per-second, indexed [scenario][threads], for the
  // speedup summary below.
  double perline_tp[std::size(kScenarios)][64] = {};
  double global_tp[std::size(kScenarios)][64] = {};

  int si = 0;
  for (const char* scenario : kScenarios) {
    for (const htm::CommitMode mode :
         {htm::CommitMode::kPerLineLocks, htm::CommitMode::kGlobalLock}) {
      for (const int n : threads) {
        const RunOut r = run_scenario(scenario, mode, n, ops, args.seed);
        (mode == htm::CommitMode::kPerLineLocks ? perline_tp
                                                : global_tp)[si][n] =
            r.ops_per_s();
        std::printf("%-15s %-8s %4d | %12.3e | %9llu %9llu %7llu | %9llu\n",
                    scenario, mode_name(mode), n, r.ops_per_s(),
                    static_cast<unsigned long long>(r.stats.commit_line_retries),
                    static_cast<unsigned long long>(r.stats.nontx_line_retries),
                    static_cast<unsigned long long>(r.stats.publish_drains),
                    static_cast<unsigned long long>(r.stats.total_aborts()));
        j.begin_object();
        j.key("scenario").value(scenario);
        j.key("mode").value(mode_name(mode));
        j.key("threads").value(n);
        j.key("ops").value(r.ops);
        j.key("cycles").value(r.cycles);
        j.key("ops_per_s").value(r.ops_per_s());
        j.key("commits_htm").value(r.stats.commits_htm);
        j.key("aborts_conflict").value(r.stats.aborts_conflict);
        j.key("commit_line_retries").value(r.stats.commit_line_retries);
        j.key("nontx_line_retries").value(r.stats.nontx_line_retries);
        j.key("publish_drains").value(r.stats.publish_drains);
        j.end_object();
      }
    }
    ++si;
  }
  j.end_array();

  // The acceptance check of this change: at the top thread count, disjoint
  // work must scale under per-line locks where the global lock serializes.
  const int top = threads.back();
  j.key("speedup_at_top_threads").begin_object();
  j.key("threads").value(top);
  std::printf("\nperline/global speedup at %d threads:\n", top);
  si = 0;
  bool ok = true;
  for (const char* scenario : kScenarios) {
    const double g = global_tp[si][top];
    const double speedup = g > 0 ? perline_tp[si][top] / g : 0.0;
    std::printf("  %-15s %5.2fx\n", scenario, speedup);
    j.key(scenario).value(speedup);
    if ((std::string(scenario) == "tx_disjoint" ||
         std::string(scenario) == "nontx_disjoint") &&
        speedup < 2.0) {
      ok = false;
    }
    ++si;
  }
  j.key("disjoint_speedup_ok").value(ok);
  j.end_object();
  j.end_object();

  const char* out = "BENCH_engine.json";
  if (!j.write_file(out)) {
    std::fprintf(stderr, "failed to write %s\n", out);
    return 1;
  }
  std::printf("\nwrote %s\n", out);
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: disjoint scenarios did not reach 2x over the global "
                 "lock\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace sprwl::bench

int main(int argc, char** argv) {
  return sprwl::bench::engine_ops_main(sprwl::bench::Args::parse(argc, argv));
}
