// Figure 6 — reader tracking scheme: per-thread state flags vs SNZI, at 50%
// updates on the POWER8 profile, sweeping the reader size (lookups per read
// critical section; the writer performs one update, so the lookup count is
// the paper's reader/writer size ratio). The paper runs 80 threads; the
// quick default uses the largest quick thread count.
//
// Expected shape (paper): SNZI costs up to ~6x with short readers (its
// arrive/depart overhead dominates) and wins up to ~6x with very long
// readers (writers check one root word instead of scanning an O(threads)
// state array inside their transaction, shrinking their HTM footprint);
// with long readers SNZI also lowers *reader* latency indirectly, because
// reader-sync waits for faster writers.
#include <array>
#include <cstdio>
#include <memory>

#include "bench/support/hashmap_fig.h"

namespace sprwl::bench {
namespace {

struct VariantResult {
  double tx = 0;
  Breakdown b;
  double rd_lat = 0, wr_lat = 0;
};

VariantResult run_variant(const Machine& m, const HashmapFigParams& p,
                          int threads, bool use_snzi, bool reader_htm_first) {
  htm::EngineConfig ec;
  ec.capacity = m.capacity_at(threads);
  ec.max_threads = threads;
  ec.seed = p.seed;
  htm::Engine engine(ec);
  workloads::HashMap map = make_figure_map(p, threads);
  core::Config lc = core::Config::variant(core::SchedulingVariant::kFull, threads);
  lc.use_snzi = use_snzi;
  lc.reader_htm_first = reader_htm_first;
  // The paper's prototype uses a shallow SNZI tree: queries stay one
  // word, but short readers contend on the few leaves — the very
  // trade-off this figure quantifies.
  lc.snzi_levels = 3;
  auto lock = std::make_unique<core::SpRWLock>(lc);
  workloads::DriverConfig dc;
  dc.threads = threads;
  dc.update_ratio = p.update_ratio;
  dc.lookups_per_read = p.lookups_per_read;
  dc.key_space = p.key_space;
  dc.warmup_cycles = p.warmup_cycles;
  dc.measure_cycles = p.measure_cycles;
  dc.seed = p.seed;
  sim::Simulator sim;
  const workloads::RunResult r = run_hashmap(sim, engine, *lock, map, dc);
  VariantResult out;
  out.tx = r.throughput_tx_s();
  out.b = make_breakdown(r.engine_stats, r.lock_stats, r.reader_aborts);
  out.rd_lat = r.read_latency.mean();
  out.wr_lat = r.write_latency.mean();
  return out;
}

int fig6_main(const Args& args) {
  const Machine m = power8_machine();
  const int threads = m.threads(args.full).back();  // 80 full / 16 quick
  HashmapFigParams base = machine_params(m, args);
  base.update_ratio = 0.50;
  // Short chains: one update fits the (SMT-shared) HTM capacity together
  // with a single-word reader indicator, but not together with an
  // O(threads) state-array scan — the regime Section 4.1.2 isolates.
  base.buckets = 4096;  // chain ~8, scan ~4 lines
  // At 80 SMT threads on the paper's POWER8 even one lookup does not
  // reliably execute in HTM, so readers exercise the tracking scheme; our
  // fig6 runs the uninstrumented path directly to compare the schemes
  // under the same conditions (see EXPERIMENTS.md).
  const bool reader_htm_first = false;

  std::vector<int> sizes{1, 10, 100, 1000};
  if (args.full) sizes.push_back(10000);

  std::printf(
      "Fig. 6 — reader tracking: flags (SpRWL) vs SNZI | %s | 50%% updates | "
      "%d threads\n",
      m.name, threads);
  std::printf("%8s | %12s | %12s | %8s\n", "rd-size", "SpRWL tx/s", "SNZI tx/s",
              "SpRWL/SNZI");

  Runner runner;
  for (const int size : sizes) {
    HashmapFigParams p = base;
    p.lookups_per_read = size;
    // Long readers need a longer window to accumulate samples.
    if (args.measure_cycles == 0) {
      p.measure_cycles = std::max<std::uint64_t>(
          p.measure_cycles, static_cast<std::uint64_t>(size) * 40'000);
    }
    // Both variants of one size are independent points; the combined rows
    // print once both computed, in size order.
    auto res = std::make_shared<std::array<VariantResult, 2>>();
    runner.submit([res, m, p, threads, reader_htm_first] {
      (*res)[0] = run_variant(m, p, threads, false, reader_htm_first);
    });
    runner.submit(
        [res, m, p, threads, reader_htm_first] {
          (*res)[1] = run_variant(m, p, threads, true, reader_htm_first);
        },
        [res, size, threads] {
          const VariantResult& flags = (*res)[0];
          const VariantResult& snzi = (*res)[1];
          std::printf("%8d | %12.3e | %12.3e | %8.2f\n", size, flags.tx,
                      snzi.tx, snzi.tx > 0 ? flags.tx / snzi.tx : 0.0);
          std::printf("         flags: ");
          print_series_row("SpRWL", threads, flags.tx, flags.b, flags.rd_lat,
                           flags.wr_lat);
          std::printf("         snzi:  ");
          print_series_row("SNZI", threads, snzi.tx, snzi.b, snzi.rd_lat,
                           snzi.wr_lat);
        });
  }
  runner.drain();
  return 0;
}

}  // namespace
}  // namespace sprwl::bench

int main(int argc, char** argv) {
  return sprwl::bench::fig6_main(sprwl::bench::Args::parse(argc, argv));
}
