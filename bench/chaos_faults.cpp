// Chaos bench — graceful degradation under injected faults.
//
// Runs the seeded chaos harness (src/fault/chaos.h) over SpRWL, TLE and the
// pthread rwlock baseline under three fault regimes:
//   none   — no injected faults (baseline);
//   chaos  — FaultPlan::chaos(seed): preemptions biased at reader bodies,
//            an interrupt storm, capacity jitter, a syscalling reader;
//   storm  — a hard interrupt storm over the whole run plus a reader that
//            syscalls in every section (TLE's worst case; SpRWL's
//            uninstrumented readers shrug it off).
//
// Every run checks the chaos invariants (exclusion / no lost updates / no
// torn reads / progress watchdog); any violation fails the bench. The table
// shows throughput plus the commit-mode and escalation accounting; the same
// data lands in BENCH_chaos.json.
//
// Expected shape: under "storm", SpRWL's read throughput degrades mildly
// (readers never abort; writers back off and occasionally escalate), while
// TLE collapses onto its global lock (GL% of sections near 100).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/support/bench_common.h"
#include "common/costs.h"
#include "core/sprwl.h"
#include "fault/chaos.h"
#include "fault/fault.h"
#include "htm/engine.h"
#include "locks/posix_rwlock.h"
#include "locks/tle.h"

namespace sprwl::bench {
namespace {

// Matched to the actual virtual-time length of a run (~1.1M cycles for the
// 8x400-op scenario) so the planned fault events land inside the run.
constexpr std::uint64_t kHorizon = 1'200'000;

fault::FaultPlan make_plan(const std::string& regime, std::uint64_t seed,
                           int threads) {
  if (regime == "chaos") return fault::FaultPlan::chaos(seed, threads, kHorizon);
  fault::FaultPlan plan;
  plan.seed = seed;
  if (regime == "storm") {
    plan.storm.from = 0;
    plan.storm.until = ~0ULL;
    plan.storm.peak_rate = 0.6;
    fault::SyscallSpec sys;  // tid 1 syscalls inside every read section
    sys.tid = 1;
    plan.syscalls.push_back(sys);
  }
  return plan;
}

struct Row {
  std::string lock;
  std::string regime;
  std::uint64_t seed = 0;
  fault::ChaosResult r;
  double sections_per_sec = 0;
};

template <class Lock, class MakeLock>
void run_series(const char* lock_name, MakeLock&& make_lock,
                const std::string& regime, std::uint64_t base_seed, int runs,
                std::vector<Row>& rows, bool& all_ok) {
  fault::ChaosConfig cfg;
  cfg.threads = 8;
  cfg.writers = 2;
  cfg.ops_per_thread = 400;
  for (int i = 0; i < runs; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    cfg.seed = seed;
    htm::Engine engine;
    auto lock = make_lock(cfg.threads);
    const fault::FaultPlan plan = make_plan(regime, seed, cfg.threads);
    Row row;
    row.lock = lock_name;
    row.regime = regime;
    row.seed = seed;
    row.r = fault::run_chaos(*lock, engine, cfg, plan);
    const double secs = static_cast<double>(row.r.final_time) /
                        (g_costs.ghz * 1e9);
    const auto sections = static_cast<double>(row.r.reads + row.r.writes);
    row.sections_per_sec = secs > 0 ? sections / secs : 0;
    if (!row.r.invariants_ok()) {
      all_ok = false;
      std::printf("INVARIANT VIOLATION: %s/%s seed=%llu completed=%d torn=%llu "
                  "lost=%llu\n",
                  lock_name, regime.c_str(),
                  static_cast<unsigned long long>(seed), row.r.completed,
                  static_cast<unsigned long long>(row.r.torn_reads),
                  static_cast<unsigned long long>(row.r.lost_updates));
    }
    rows.push_back(std::move(row));
  }
}

void print_rows(const std::vector<Row>& rows) {
  std::printf("%-8s %-6s %6s | %10s | %5s %5s %5s %5s | %6s %6s %6s | %4s %4s\n",
              "lock", "faults", "seed", "sect/s", "HTM%", "GL%", "Unin%",
              "Pess%", "fback", "stall", "lemng", "pre", "sysc");
  for (const Row& row : rows) {
    const locks::OpModeCounts all = [&] {
      locks::OpModeCounts m = row.r.lock_stats.reads;
      m += row.r.lock_stats.writes;
      return m;
    }();
    const double total = static_cast<double>(all.total());
    const auto pct = [&](std::uint64_t n) {
      return total > 0 ? 100.0 * static_cast<double>(n) / total : 0.0;
    };
    std::printf(
        "%-8s %-6s %6llu | %10.3e | %5.1f %5.1f %5.1f %5.1f | %6llu %6llu "
        "%6llu | %4llu %4llu\n",
        row.lock.c_str(), row.regime.c_str(),
        static_cast<unsigned long long>(row.seed), row.sections_per_sec,
        pct(all.htm), pct(all.gl), pct(all.unins), pct(all.pessimistic),
        static_cast<unsigned long long>(row.r.lock_stats.escalations.fallbacks()),
        static_cast<unsigned long long>(
            row.r.lock_stats.escalations.stalled_reader),
        static_cast<unsigned long long>(
            row.r.lock_stats.escalations.lemming_avoided),
        static_cast<unsigned long long>(row.r.faults.preemptions),
        static_cast<unsigned long long>(row.r.faults.syscalls));
  }
}

void write_json(const std::vector<Row>& rows, bool all_ok) {
  JsonWriter j;
  j.begin_object();
  j.key("bench").value("chaos_faults");
  j.key("invariants_ok").value(all_ok);
  j.key("rows").begin_array();
  for (const Row& row : rows) {
    const fault::ChaosResult& r = row.r;
    j.begin_object();
    j.key("lock").value(row.lock);
    j.key("faults").value(row.regime);
    j.key("seed").value(row.seed);
    j.key("completed").value(r.completed);
    j.key("sections_per_sec").value(row.sections_per_sec);
    j.key("reads").value(r.reads);
    j.key("writes").value(r.writes);
    j.key("torn_reads").value(r.torn_reads);
    j.key("lost_updates").value(r.lost_updates);
    j.key("final_time").value(r.final_time);
    j.key("modes").begin_object();
    locks::OpModeCounts all = r.lock_stats.reads;
    all += r.lock_stats.writes;
    j.key("htm").value(all.htm);
    j.key("gl").value(all.gl);
    j.key("unins").value(all.unins);
    j.key("pessimistic").value(all.pessimistic);
    j.end_object();
    j.key("aborts").begin_object();
    j.key("conflict").value(r.lock_stats.aborts.conflict);
    j.key("capacity").value(r.lock_stats.aborts.capacity);
    j.key("lock_busy").value(r.lock_stats.aborts.explicit_lock_busy);
    j.key("reader").value(r.lock_stats.aborts.explicit_reader);
    j.key("spurious").value(r.lock_stats.aborts.spurious);
    j.end_object();
    j.key("escalations").begin_object();
    j.key("retry_exhausted").value(r.lock_stats.escalations.retry_exhausted);
    j.key("capacity").value(r.lock_stats.escalations.capacity);
    j.key("stalled_reader").value(r.lock_stats.escalations.stalled_reader);
    j.key("budget_exhausted").value(r.lock_stats.escalations.budget_exhausted);
    j.key("lemming_avoided").value(r.lock_stats.escalations.lemming_avoided);
    j.end_object();
    j.key("injected").begin_object();
    j.key("preemptions").value(r.faults.preemptions);
    j.key("syscalls").value(r.faults.syscalls);
    j.key("capacity_jitters").value(r.faults.capacity_jitters);
    j.key("peak_abort_rate").value(r.faults.peak_applied_rate);
    j.end_object();
    j.end_object();
  }
  j.end_array();
  j.end_object();
  if (j.write_file("BENCH_chaos.json")) {
    std::printf("\nwrote BENCH_chaos.json\n");
  }
}

}  // namespace
}  // namespace sprwl::bench

int main(int argc, char** argv) {
  using namespace sprwl::bench;
  const Args args = Args::parse(argc, argv);
  const std::uint64_t base_seed = sprwl::fault::env_seed(args.seed);
  const int runs = args.full ? 8 : 3;

  std::printf("Chaos bench — seeded fault injection (base seed %llu, %d "
              "seeds per cell; SPRWL_SEED overrides)\n\n",
              static_cast<unsigned long long>(base_seed), runs);

  std::vector<Row> rows;
  bool all_ok = true;
  for (const char* regime : {"none", "chaos", "storm"}) {
    run_series<sprwl::core::SpRWLock>(
        "SpRWL",
        [](int threads) {
          sprwl::core::Config cfg;
          cfg.max_threads = threads;
          return std::make_unique<sprwl::core::SpRWLock>(cfg);
        },
        regime, base_seed, runs, rows, all_ok);
    run_series<sprwl::locks::TLELock>(
        "TLE",
        [](int threads) {
          sprwl::locks::TLELock::Config cfg;
          cfg.max_threads = threads;
          return std::make_unique<sprwl::locks::TLELock>(cfg);
        },
        regime, base_seed, runs, rows, all_ok);
    run_series<sprwl::locks::PosixRWLock>(
        "RWL",
        [](int threads) {
          return std::make_unique<sprwl::locks::PosixRWLock>(threads);
        },
        regime, base_seed, runs, rows, all_ok);
  }
  print_rows(rows);
  write_json(rows, all_ok);
  std::printf("invariants: %s\n", all_ok ? "OK" : "VIOLATED");
  return all_ok ? 0 : 1;
}
