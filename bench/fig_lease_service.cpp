// Distributed lease service under node faults (DESIGN.md §15).
//
// Sweeps the lease-protected shard (dist/lock_service.h) over 2-8 node
// topologies with a read-mostly workload (one writer and one reader fiber
// per node), in four regimes per point:
//
//   healthy    — no faults: cross-node goodput, optimistic-read escalation
//                rate, and fabric transfers (CostModel::remote_node).
//   chaos      — a seeded FaultPlan::chaos_nodes schedule (node crash,
//                partition, lease-window preemptions); the run must keep
//                every distributed invariant (no torn or stale validated
//                reads, no lost acknowledged updates).
//   crash      — targeted recovery-latency measurement: the lease-holding
//                writer's node crash-stops at a chosen instant and the
//                probe node hammers writes until one lands. The gap is the
//                service's recovery latency, and the acceptance bar is the
//                protocol's own bound: one lease term (the holder's cached
//                expiry is at most a full term ahead) plus the prober's
//                backoff cap and grant overhead.
//   degraded   — the lease service is unreachable: writers must fall back
//                to the shard's degradation SGL (safe, slow, version
//                protocol preserved) and readers must keep validating.
//
// A 1-node identity column runs the same harness twice on a single node
// and demands bit-identical results — the distributed tier must be
// deterministic, and on one node must never touch the fabric.
//
// Results land in BENCH_dist.json; --smoke runs a reduced sweep and (like
// the full run) exits nonzero when any acceptance property fails.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/support/bench_common.h"
#include "dist/lock_service.h"
#include "fault/chaos.h"
#include "fault/fault.h"
#include "htm/engine.h"
#include "sim/simulator.h"
#include "sim/topology.h"

namespace sprwl::bench {
namespace {

constexpr std::uint64_t kLeaseTerm = 40'000;

fault::DistChaosConfig chaos_config(int nodes, int ops, std::uint64_t seed) {
  fault::DistChaosConfig cfg;
  cfg.threads = 2 * nodes;
  cfg.writers = nodes;  // Bresenham spread: one writer fiber per node
  cfg.topology = sim::Topology::split_nodes(cfg.threads, nodes);
  cfg.ops_per_thread = ops;
  cfg.seed = seed;
  return cfg;
}

dist::ShardConfig shard_config(const fault::DistChaosConfig& cfg) {
  dist::ShardConfig sc;
  sc.topology = cfg.topology;
  sc.max_threads = cfg.threads;
  sc.lease.term = kLeaseTerm;
  return sc;
}

htm::EngineConfig engine_config(const fault::DistChaosConfig& cfg) {
  htm::EngineConfig ec;
  ec.max_threads = cfg.threads;
  ec.topology = cfg.topology;
  return ec;
}

struct Row {
  int nodes = 0;
  std::string regime;
  fault::DistChaosResult r;
  std::uint64_t recovery_latency = 0;  ///< crash regime only
  std::uint64_t crash_at = 0;          ///< crash regime only
  std::uint64_t degraded_writes = 0;

  double goodput() const noexcept {
    return r.final_time ? static_cast<double>(r.reads + r.writes) /
                              static_cast<double>(r.final_time)
                        : 0.0;
  }
};

/// Targeted recovery-latency probe: the node-0 writer holds (and renews)
/// the lease until its node crash-stops at `crash_at`; the node-1 prober
/// hammers writes — none can land before the crash (the holder never lets
/// the lease lapse) — and the first success marks recovery.
Row measure_recovery(int nodes, std::uint64_t crash_at, std::uint64_t seed) {
  fault::DistChaosConfig cfg = chaos_config(nodes, 0, seed);
  const dist::ShardConfig sc = shard_config(cfg);
  dist::Shard shard(sc);
  htm::Engine engine(engine_config(cfg));

  fault::FaultPlan plan;
  plan.topology = cfg.topology;
  fault::NodeCrashSpec crash;
  crash.node = 0;
  crash.at = crash_at;
  plan.crashes.push_back(crash);

  sim::SimConfig scfg;
  scfg.topology = cfg.topology;
  scfg.max_virtual_time = crash_at + 4'000'000;
  sim::Simulator sim(scfg);
  fault::FaultInjector injector(plan, &sim, &engine);
  fault::FaultScope fscope(injector);
  htm::EngineScope escope(engine);

  std::uint64_t first_success = 0;
  bool completed = true;
  try {
  sim.run(cfg.threads, [&](int tid) {
    const int node = cfg.topology.node_of(tid);
    if (node == 0 && tid == 0) {
      try {
        for (;;) {  // hold + renew until the crash kills this fiber
          shard.write(tid, [](std::uint64_t* vals, std::size_t n) {
            for (std::size_t c = 0; c < n; ++c) vals[c] = vals[0] + 1;
          });
          platform::advance(500);
        }
      } catch (const fault::NodeCrashed&) {
      }
      return;
    }
    if (node == 1 && first_success == 0 && tid == 2) {
      while (first_success == 0) {
        if (shard.write(tid, [](std::uint64_t* vals, std::size_t n) {
              for (std::size_t c = 0; c < n; ++c) vals[c] = vals[0] + 1;
            })) {
          first_success = platform::now();
        }
      }
    }
  });
  } catch (const sim::SimTimeLimitError&) {
    completed = false;
  }

  Row row;
  row.nodes = nodes;
  row.regime = "crash";
  row.crash_at = crash_at;
  row.recovery_latency =
      first_success > crash_at ? first_success - crash_at : 0;
  row.r.completed = completed && first_success != 0;
  row.r.final_time = sim.final_time();
  row.r.recoveries = shard.stats().recoveries.load(std::memory_order_relaxed);
  return row;
}

Row run_regime(int nodes, const char* regime, int ops, std::uint64_t seed) {
  fault::DistChaosConfig cfg = chaos_config(nodes, ops, seed);
  const dist::ShardConfig sc = shard_config(cfg);
  dist::Shard shard(sc);
  htm::Engine engine(engine_config(cfg));

  fault::FaultPlan plan;
  plan.topology = cfg.topology;
  if (std::strcmp(regime, "chaos") == 0) {
    plan = fault::FaultPlan::chaos_nodes(
        seed, 6'000ULL * static_cast<std::uint64_t>(cfg.ops_per_thread),
        cfg.topology);
  } else if (std::strcmp(regime, "degraded") == 0) {
    shard.set_service_reachable(false);
  }

  Row row;
  row.nodes = nodes;
  row.regime = regime;
  row.r = fault::run_dist_chaos(shard, engine, cfg, plan);
  row.degraded_writes =
      shard.stats().degraded_writes.load(std::memory_order_relaxed);
  return row;
}

void json_row(JsonWriter& j, const Row& row) {
  j.begin_object();
  j.key("nodes").value(static_cast<std::uint64_t>(row.nodes));
  j.key("regime").value(row.regime);
  j.key("completed").value(row.r.completed);
  j.key("reads").value(row.r.reads);
  j.key("writes").value(row.r.writes);
  j.key("goodput").value(row.goodput());
  j.key("final_time").value(row.r.final_time);
  j.key("torn_reads").value(row.r.torn_reads);
  j.key("stale_reads").value(row.r.stale_reads);
  j.key("crashed_fibers").value(row.r.crashed_fibers);
  j.key("node_crashes").value(row.r.faults.node_crashes);
  j.key("partition_stalls").value(row.r.faults.partition_stalls);
  j.key("recoveries").value(row.r.recoveries);
  j.key("write_abandons").value(row.r.write_abandons);
  j.key("read_escalations").value(row.r.read_escalations);
  j.key("node_transfers").value(row.r.node_transfers);
  j.key("degraded_writes").value(row.degraded_writes);
  j.key("crash_at").value(row.crash_at);
  j.key("recovery_latency").value(row.recovery_latency);
  j.end_object();
}

}  // namespace
}  // namespace sprwl::bench

int main(int argc, char** argv) {
  using namespace sprwl::bench;
  const Args args = Args::parse(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int ops = smoke ? 60 : (args.full ? 300 : 120);
  const std::vector<int> node_counts =
      smoke ? std::vector<int>{2, 4} : std::vector<int>{2, 4, 8};
  const std::vector<std::uint64_t> crash_offsets =
      smoke ? std::vector<std::uint64_t>{30'000, 90'000}
            : std::vector<std::uint64_t>{30'000, 90'000, 170'000};

  // The protocol's own recovery bound: the dead holder's cached expiry is
  // at most one full term ahead of the crash, the prober's backoff adds at
  // most its cap, and the grant + recovery + one write section round out
  // the tail (dist/lease.h).
  const std::uint64_t recovery_bound =
      kLeaseTerm + sprwl::dist::LeaseConfig{}.backoff_max + 10'000;

  std::printf(
      "Lease service under node faults (%d ops/fiber, lease term %llu, "
      "seed %llu)%s\n\n",
      ops, static_cast<unsigned long long>(kLeaseTerm),
      static_cast<unsigned long long>(args.seed), smoke ? " (smoke)" : "");

  bool ok = true;
  std::vector<Row> rows;

  // 1-node identity: deterministic, and the fabric must stay untouched.
  {
    const Row a = run_regime(1, "healthy", ops, args.seed);
    const Row b = run_regime(1, "healthy", ops, args.seed);
    const bool identical = a.r.final_time == b.r.final_time &&
                           a.r.final_value == b.r.final_value &&
                           a.r.reads == b.r.reads && a.r.writes == b.r.writes;
    const bool clean = a.r.invariants_ok() && a.r.node_transfers == 0;
    std::printf("1-node identity: final_time=%llu reads=%llu writes=%llu "
                "transfers=%llu  [%s]\n",
                static_cast<unsigned long long>(a.r.final_time),
                static_cast<unsigned long long>(a.r.reads),
                static_cast<unsigned long long>(a.r.writes),
                static_cast<unsigned long long>(a.r.node_transfers),
                identical && clean ? "ok" : "FAIL");
    if (!(identical && clean)) ok = false;
    rows.push_back(a);
  }

  std::printf("\n%-6s %-9s | %8s %8s %9s | %6s %6s %7s | %9s %9s\n", "nodes",
              "regime", "reads", "writes", "goodput", "crash", "recov",
              "escal", "transfers", "rec-lat");
  for (const int nodes : node_counts) {
    for (const char* regime : {"healthy", "chaos", "degraded"}) {
      Row row = run_regime(nodes, regime, ops, args.seed);
      bool row_ok = row.r.invariants_ok();
      if (std::strcmp(regime, "healthy") == 0) {
        row_ok = row_ok && row.r.node_transfers > 0;
      }
      if (std::strcmp(regime, "degraded") == 0) {
        // Unreachable service: every write must have taken the fallback
        // SGL, none the leased path.
        row_ok = row_ok && row.degraded_writes >= row.r.writes &&
                 row.r.writes > 0;
      }
      std::printf("%-6d %-9s | %8llu %8llu %9.2e | %6llu %6llu %7llu | "
                  "%9llu %9s  %s\n",
                  nodes, regime,
                  static_cast<unsigned long long>(row.r.reads),
                  static_cast<unsigned long long>(row.r.writes),
                  row.goodput(),
                  static_cast<unsigned long long>(row.r.crashed_fibers),
                  static_cast<unsigned long long>(row.r.recoveries),
                  static_cast<unsigned long long>(row.r.read_escalations),
                  static_cast<unsigned long long>(row.r.node_transfers), "-",
                  row_ok ? "" : "FAIL");
      if (!row_ok) ok = false;
      rows.push_back(std::move(row));
    }
    // Crash-storm column: recovery latency bounded by the lease term.
    for (const std::uint64_t crash_at : crash_offsets) {
      Row row = measure_recovery(nodes, crash_at, args.seed);
      const bool row_ok =
          row.r.completed && row.recovery_latency > 0 &&
          row.recovery_latency <= recovery_bound;
      std::printf("%-6d %-9s | %8s %8s %9s | %6s %6llu %7s | %9s %9llu  %s\n",
                  nodes, "crash", "-", "-", "-", "-",
                  static_cast<unsigned long long>(row.r.recoveries), "-", "-",
                  static_cast<unsigned long long>(row.recovery_latency),
                  row_ok ? "" : "FAIL");
      if (!row_ok) ok = false;
      rows.push_back(std::move(row));
    }
  }

  JsonWriter j;
  j.begin_object();
  j.key("bench").value("fig_lease_service");
  j.key("smoke").value(smoke);
  j.key("acceptance_ok").value(ok);
  j.key("lease_term").value(kLeaseTerm);
  j.key("recovery_bound").value(recovery_bound);
  j.key("rows").begin_array();
  for (const Row& r : rows) json_row(j, r);
  j.end_array();
  j.end_object();
  if (j.write_file("BENCH_dist.json")) std::printf("\nwrote BENCH_dist.json\n");

  std::printf("acceptance: %s (recovery bound %llu cycles)\n",
              ok ? "OK" : "VIOLATED",
              static_cast<unsigned long long>(recovery_bound));
  return ok ? 0 : 1;
}
