// Snapshot-isolation reader mode — long range scans vs. zipfian write
// bursts (DESIGN.md §14).
//
// The tentpole claim: with MVCC snapshot readers
// (EngineConfig::retain_versions + Config::snapshot_readers) a long
// B+-tree range scan never delays a writer — the reader pins the version
// clock and registers nothing, so writer commit latency is independent of
// scan length. Without it, SpRWL writers self-abort at commit while any
// registered reader is active, so writer tail latency grows with the scan.
//
// The sweep runs scan widths spanning >= 100x in three reader modes:
//   snapshot — read_snapshot() over an engine retaining K versions/line;
//   off      — plain read(), engine retention disabled (the seed baseline);
//   off-api  — read_snapshot() with retention disabled: degrades to read(),
//              and its trace must be byte-identical to `off` (checked via
//              final virtual time + writer latency quantiles — the
//              off-by-default neutrality contract).
// plus a version-buffer sensitivity sweep (retain_versions in {2,4,8,16})
// at the widest scan, where small rings overflow under the write bursts
// and fall back to registered reads.
//
// Results land in BENCH_mvcc.json; --smoke runs a reduced sweep and
// enforces the acceptance properties (writer p99 flat within 2x across the
// >=100x width span with snapshot on; super-linear degradation with it
// off; off-api trace identity), exiting nonzero on violation.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/support/bench_common.h"
#include "common/costs.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "core/sprwl.h"
#include "htm/engine.h"
#include "sim/simulator.h"
#include "structures/btree.h"
#include "workloads/lock_table.h"  // workloads::Zipfian

namespace sprwl::bench {
namespace {

constexpr int kThreads = 8;  // 2 writers, 6 scanning readers
constexpr int kWriters = 2;
constexpr std::uint64_t kKeySpace = 1 << 16;
constexpr std::uint64_t kPreload = 20'000;
constexpr std::uint64_t kBurst = 4;          // writes per zipfian burst
constexpr std::uint64_t kBurstGap = 2'000;   // idle cycles between bursts
constexpr std::uint64_t kScanThink = 200;

enum class ReaderMode { kSnapshot, kOff, kOffApi };

const char* to_string(ReaderMode m) {
  switch (m) {
    case ReaderMode::kSnapshot: return "snapshot";
    case ReaderMode::kOff: return "off";
    case ReaderMode::kOffApi: return "off-api";
  }
  return "?";
}

struct PointOut {
  LatencyHistogram writer_lat;  // around the whole write() acquisition
  std::uint64_t writes = 0;
  std::uint64_t scans = 0;
  std::uint64_t snapshot_reads = 0;
  std::uint64_t snapshot_fallbacks = 0;
  std::uint64_t reader_aborts = 0;  // writer self-aborts on active readers
  htm::EngineStats es;
  std::uint64_t final_time = 0;
};

PointOut run_point(std::uint64_t width, std::uint32_t retain, ReaderMode mode,
                   std::uint64_t measure, std::uint64_t seed) {
  htm::EngineConfig ec;
  ec.capacity = htm::kBroadwell;
  ec.max_threads = kThreads;
  ec.seed = seed;
  // Small table bounds ring memory ((1<<14) lines x K slots); aliasing is
  // identical across modes so comparisons stay apples-to-apples.
  ec.table_bits = 14;
  ec.retain_versions = mode == ReaderMode::kSnapshot ? retain : 0;
  htm::Engine engine(ec);

  core::Config cfg = core::Config::variant(core::SchedulingVariant::kFull,
                                           kThreads);
  // The long-reader regime of the paper: scans run uninstrumented
  // (registered), not as HTM transactions — short-enough scans would
  // otherwise fit the HTM read set and never touch the writer at all,
  // hiding exactly the reader-blocks-writer effect this figure measures.
  // Snapshot mode replaces the *registered* read, so the off baseline must
  // be the registered read too.
  cfg.reader_htm_first = false;
  cfg.snapshot_readers = mode != ReaderMode::kOff;
  core::SpRWLock lock{cfg};

  structures::BTree::Config tc;
  tc.capacity = 1 << 15;
  tc.max_threads = kThreads;
  structures::BTree tree(tc);
  {
    ThreadIdScope tid(0);
    Rng rng(seed);
    for (std::uint64_t i = 0; i < kPreload; ++i) {
      const std::uint64_t k = rng.next_below(kKeySpace);
      tree.insert(k, k);
    }
  }

  const workloads::Zipfian zipf(kKeySpace, 0.99);
  PointOut out;
  sim::Simulator sim;
  htm::EngineScope scope(engine);
  sim.run(kThreads, [&](int tid) {
    Rng rng(seed * 131 + static_cast<std::uint64_t>(tid) + 1);
    if (tid < kWriters) {
      while (platform::now() < measure) {
        for (std::uint64_t b = 0; b < kBurst; ++b) {
          // Zipfian popularity, scrambled off the rank order so the hot
          // set spreads across leaves (see workloads::LockTable).
          const std::uint64_t k =
              (zipf.next(rng) * 0x9E3779B97F4A7C15ULL) & (kKeySpace - 1);
          const bool add = rng.next_bool(0.5);
          const std::uint64_t t0 = platform::now();
          lock.write(1, [&] {
            if (add) {
              tree.insert(k, k);
            } else {
              tree.erase(k);
            }
          });
          out.writer_lat.record(platform::now() - t0);
          ++out.writes;
        }
        platform::advance(kBurstGap);
      }
    } else {
      while (platform::now() < measure) {
        const std::uint64_t lo = rng.next_below(kKeySpace - width);
        const auto body = [&] { (void)tree.range_count(lo, lo + width); };
        if (mode == ReaderMode::kOff) {
          lock.read(0, body);
        } else {
          lock.read_snapshot(0, body);
        }
        ++out.scans;
        platform::advance(kScanThink);
      }
    }
  });
  out.snapshot_reads = lock.snapshot_read_count();
  out.snapshot_fallbacks = lock.snapshot_fallback_count();
  out.reader_aborts = lock.reader_abort_count();
  out.es = engine.stats();
  out.final_time = sim.final_time();
  return out;
}

struct Row {
  std::string series;  // "sweep" or "sensitivity"
  ReaderMode mode;
  std::uint64_t width = 0;
  std::uint32_t retain = 0;
  PointOut pt;
};

void print_rows(const std::vector<Row>& rows) {
  std::printf(
      "%-11s %-8s %6s %6s | %8s %8s %8s | %7s %7s | %8s %8s %8s\n",
      "series", "mode", "width", "K", "wr-p50", "wr-p99", "wr-max", "writes",
      "scans", "snapped", "fallback", "overflow");
  for (const Row& r : rows) {
    std::printf(
        "%-11s %-8s %6llu %6u | %8llu %8llu %8llu | %7llu %7llu | %8llu "
        "%8llu %8llu\n",
        r.series.c_str(), to_string(r.mode),
        static_cast<unsigned long long>(r.width), r.retain,
        static_cast<unsigned long long>(r.pt.writer_lat.quantile(0.50)),
        static_cast<unsigned long long>(r.pt.writer_lat.quantile(0.99)),
        static_cast<unsigned long long>(r.pt.writer_lat.max()),
        static_cast<unsigned long long>(r.pt.writes),
        static_cast<unsigned long long>(r.pt.scans),
        static_cast<unsigned long long>(r.pt.snapshot_reads),
        static_cast<unsigned long long>(r.pt.snapshot_fallbacks),
        static_cast<unsigned long long>(r.pt.es.version_overflows));
  }
}

void write_json(const std::vector<Row>& rows, bool acceptance_ok, bool smoke,
                std::uint64_t seed) {
  JsonWriter j;
  j.begin_object();
  j.key("bench").value("fig_snapshot_scan");
  j.key("smoke").value(smoke);
  j.key("acceptance_ok").value(acceptance_ok);
  j.key("threads").value(kThreads);
  j.key("writers").value(kWriters);
  j.key("seed").value(seed);
  j.key("rows").begin_array();
  for (const Row& r : rows) {
    j.begin_object();
    j.key("series").value(r.series);
    j.key("mode").value(to_string(r.mode));
    j.key("width").value(r.width);
    j.key("retain_versions").value(static_cast<std::uint64_t>(r.retain));
    j.key("writer_p50").value(r.pt.writer_lat.quantile(0.50));
    j.key("writer_p99").value(r.pt.writer_lat.quantile(0.99));
    j.key("writer_max").value(r.pt.writer_lat.max());
    j.key("writer_mean").value(r.pt.writer_lat.mean());
    j.key("writes").value(r.pt.writes);
    j.key("scans").value(r.pt.scans);
    j.key("snapshot_reads").value(r.pt.snapshot_reads);
    j.key("snapshot_fallbacks").value(r.pt.snapshot_fallbacks);
    j.key("reader_aborts").value(r.pt.reader_aborts);
    j.key("snapshot_hits").value(r.pt.es.snapshot_hits);
    j.key("snapshot_misses").value(r.pt.es.snapshot_misses);
    j.key("version_overflows").value(r.pt.es.version_overflows);
    j.key("final_time").value(r.pt.final_time);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  if (j.write_file("BENCH_mvcc.json")) std::printf("\nwrote BENCH_mvcc.json\n");
}

}  // namespace
}  // namespace sprwl::bench

int main(int argc, char** argv) {
  using namespace sprwl::bench;
  const Args args = Args::parse(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::uint64_t measure =
      args.measure_cycles != 0
          ? args.measure_cycles
          : (smoke ? 1'200'000 : (args.full ? 10'000'000 : 3'000'000));
  // The headline ring depth: deep enough that zipfian bursts rarely evict a
  // version a live scan still needs (the sensitivity sweep shows smaller
  // rings overflowing).
  constexpr std::uint32_t kRetain = 16;
  const std::vector<std::uint64_t> widths =
      smoke ? std::vector<std::uint64_t>{16, 1600}
            : (args.full
                   ? std::vector<std::uint64_t>{16, 64, 256, 1600, 6400}
                   : std::vector<std::uint64_t>{16, 160, 1600});

  std::printf(
      "Snapshot readers vs. scan length: B+-tree range_count under zipfian "
      "write bursts\n(%d threads, %d writers, K=%u, seed %llu%s)\n\n",
      kThreads, kWriters, kRetain,
      static_cast<unsigned long long>(args.seed), smoke ? ", smoke" : "");

  std::vector<Row> rows;
  for (const std::uint64_t w : widths) {
    for (const ReaderMode mode :
         {ReaderMode::kSnapshot, ReaderMode::kOff, ReaderMode::kOffApi}) {
      // The off-api identity probe only needs the endpoints.
      if (mode == ReaderMode::kOffApi && w != widths.front() &&
          w != widths.back()) {
        continue;
      }
      Row r;
      r.series = "sweep";
      r.mode = mode;
      r.width = w;
      r.retain = mode == ReaderMode::kSnapshot ? kRetain : 0;
      r.pt = run_point(w, kRetain, mode, measure, args.seed);
      rows.push_back(std::move(r));
    }
  }
  for (const std::uint32_t k : {2u, 4u, 8u, 16u}) {
    Row r;
    r.series = "sensitivity";
    r.mode = ReaderMode::kSnapshot;
    r.width = widths.back();
    r.retain = k;
    r.pt = run_point(widths.back(), k, ReaderMode::kSnapshot, measure,
                     args.seed);
    rows.push_back(std::move(r));
  }

  print_rows(rows);

  // --- acceptance ----------------------------------------------------------
  const auto find = [&](const char* series, ReaderMode mode,
                        std::uint64_t width, std::uint32_t retain) -> const Row* {
    for (const Row& r : rows) {
      if (r.series == series && r.mode == mode && r.width == width &&
          r.retain == retain) {
        return &r;
      }
    }
    return nullptr;
  };
  const std::uint64_t wmin = widths.front(), wmax = widths.back();
  const Row* on_min = find("sweep", ReaderMode::kSnapshot, wmin, kRetain);
  const Row* on_max = find("sweep", ReaderMode::kSnapshot, wmax, kRetain);
  const Row* off_min = find("sweep", ReaderMode::kOff, wmin, 0);
  const Row* off_max = find("sweep", ReaderMode::kOff, wmax, 0);
  const Row* api_min = find("sweep", ReaderMode::kOffApi, wmin, 0);
  const Row* api_max = find("sweep", ReaderMode::kOffApi, wmax, 0);

  bool acceptance_ok = on_min && on_max && off_min && off_max && api_min &&
                       api_max && wmax >= 100 * wmin;
  if (acceptance_ok) {
    const auto p99 = [](const Row* r) {
      return static_cast<double>(r->pt.writer_lat.quantile(0.99));
    };
    // Writer p99 flat within 2x across the >=100x width span, snapshot on.
    const bool flat_on = p99(on_max) <= 2.0 * p99(on_min);
    // Snapshot off: the writer waits out whole scans, so its p99 tail is
    // base write cost plus a scan duration — it keeps growing with the
    // scan width (3x over the span, where the snapshot line is flat) and
    // dwarfs the snapshot-on tail by 4x.
    const bool off_degrades = p99(off_max) >= 3.0 * p99(off_min) &&
                              p99(off_max) > 4.0 * p99(on_max);
    // Trace identity: read_snapshot over a no-retention engine must be the
    // plain read() trace, byte for byte — same virtual end time, same
    // writer latency distribution, same operation counts.
    const auto identical = [](const Row* a, const Row* b) {
      return a->pt.final_time == b->pt.final_time &&
             a->pt.writes == b->pt.writes && a->pt.scans == b->pt.scans &&
             a->pt.writer_lat.quantile(0.50) ==
                 b->pt.writer_lat.quantile(0.50) &&
             a->pt.writer_lat.quantile(0.99) ==
                 b->pt.writer_lat.quantile(0.99) &&
             a->pt.writer_lat.max() == b->pt.writer_lat.max();
    };
    const bool identity =
        identical(off_min, api_min) && identical(off_max, api_max);
    // Snapshot mode earned its flatness on the snapshot path, not by
    // falling back everywhere.
    const bool snapped = on_max->pt.snapshot_reads >
                         10 * on_max->pt.snapshot_fallbacks;
    std::printf(
        "\nacceptance @%llux span: on p99 %.0f -> %.0f (flat<=2x: %s) | off "
        "p99 %.0f -> %.0f (super-linear: %s) | off-api identical: %s | "
        "snapshot-served: %s\n",
        static_cast<unsigned long long>(wmax / wmin), p99(on_min), p99(on_max),
        flat_on ? "ok" : "FAIL", p99(off_min), p99(off_max),
        off_degrades ? "ok" : "FAIL", identity ? "ok" : "FAIL",
        snapped ? "ok" : "FAIL");
    acceptance_ok = flat_on && off_degrades && identity && snapped;
  } else {
    std::printf("\nacceptance: missing rows or width span < 100x\n");
  }

  write_json(rows, acceptance_ok, smoke, args.seed);
  std::printf("acceptance: %s\n", acceptance_ok ? "OK" : "VIOLATED");
  return acceptance_ok ? 0 : 1;
}
