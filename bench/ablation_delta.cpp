// Ablation — the writer-synchronization δ parameter (Alg. 3): a writer
// aborted by readers re-starts so that it is expected to finish δ cycles
// after the last active reader. δ close to 0 maximizes overlap but risks
// another reader abort; δ close to the writer duration is safe but wastes
// concurrency. The paper uses δ = half the writer's expected duration after
// preliminary experiments; this bench reproduces that tuning curve.
#include <cstdio>

#include "bench/support/hashmap_fig.h"

namespace sprwl::bench {
namespace {

void run(const Args& args) {
  const Machine m = broadwell_machine();
  HashmapFigParams p = machine_params(m, args);
  p.lookups_per_read = 10;
  p.update_ratio = 0.10;
  const int threads = args.full ? 56 : 28;

  std::printf(
      "Ablation: writer-sync delta fraction | %s | 10%% updates | %d "
      "threads\n",
      m.name, threads);
  print_series_header();
  Runner runner;
  for (const double delta : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    char label[32];
    std::snprintf(label, sizeof label, "delta=%.2f", delta);
    hashmap_series(runner, label, m, p, {threads}, [delta](int n) {
      core::Config c = core::Config::variant(core::SchedulingVariant::kFull, n);
      c.delta_fraction = delta;
      return std::make_unique<core::SpRWLock>(c);
    });
  }
  runner.drain();
}

}  // namespace
}  // namespace sprwl::bench

int main(int argc, char** argv) {
  sprwl::bench::run(sprwl::bench::Args::parse(argc, argv));
  return 0;
}
