// Micro-benchmarks (google-benchmark, real time): per-operation cost of
// empty read/write critical sections for every lock in the library, plus
// HTM-engine primitives. Not a paper figure — a regression harness for the
// constant factors behind every figure.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/platform.h"
#include "core/sprwl.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "locks/brlock.h"
#include "locks/passive_rwlock.h"
#include "locks/phase_fair.h"
#include "locks/posix_rwlock.h"
#include "locks/rwle.h"
#include "locks/tle.h"
#include "snzi/snzi.h"

namespace {

using namespace sprwl;

constexpr int kMaxThreads = 8;

struct EngineFixture {
  EngineFixture() : engine(make_config()), scope(engine) {}
  static htm::EngineConfig make_config() {
    htm::EngineConfig cfg;
    cfg.max_threads = kMaxThreads;
    return cfg;
  }
  htm::Engine engine;
  htm::EngineScope scope;
};

template <class Lock>
std::unique_ptr<Lock> make_bench_lock();

template <>
std::unique_ptr<locks::PosixRWLock> make_bench_lock() {
  return std::make_unique<locks::PosixRWLock>(kMaxThreads);
}
template <>
std::unique_ptr<locks::BRLock> make_bench_lock() {
  return std::make_unique<locks::BRLock>(kMaxThreads);
}
template <>
std::unique_ptr<locks::PhaseFairRWLock> make_bench_lock() {
  return std::make_unique<locks::PhaseFairRWLock>(kMaxThreads);
}
template <>
std::unique_ptr<locks::PassiveRWLock> make_bench_lock() {
  return std::make_unique<locks::PassiveRWLock>(kMaxThreads);
}
template <>
std::unique_ptr<locks::TLELock> make_bench_lock() {
  locks::TLELock::Config cfg;
  cfg.max_threads = kMaxThreads;
  return std::make_unique<locks::TLELock>(cfg);
}
template <>
std::unique_ptr<locks::RWLELock> make_bench_lock() {
  locks::RWLELock::Config cfg;
  cfg.max_threads = kMaxThreads;
  return std::make_unique<locks::RWLELock>(cfg);
}
template <>
std::unique_ptr<core::SpRWLock> make_bench_lock() {
  return std::make_unique<core::SpRWLock>(
      core::Config::variant(core::SchedulingVariant::kFull, kMaxThreads));
}

template <class Lock>
void BM_UncontendedRead(benchmark::State& state) {
  EngineFixture fx;
  ThreadIdScope tid(0);
  auto lock = make_bench_lock<Lock>();
  htm::Shared<std::uint64_t> cell(7);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    lock->read(0, [&] { sink += cell.load(); });
  }
  benchmark::DoNotOptimize(sink);
}

template <class Lock>
void BM_UncontendedWrite(benchmark::State& state) {
  EngineFixture fx;
  ThreadIdScope tid(0);
  auto lock = make_bench_lock<Lock>();
  htm::Shared<std::uint64_t> cell(0);
  for (auto _ : state) {
    lock->write(1, [&] { cell.store(cell.load() + 1); });
  }
}

void BM_HtmCommitEmpty(benchmark::State& state) {
  EngineFixture fx;
  ThreadIdScope tid(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.engine.try_transaction([] {}).committed());
  }
}

void BM_HtmReadWriteWord(benchmark::State& state) {
  EngineFixture fx;
  ThreadIdScope tid(0);
  htm::Shared<std::uint64_t> cell(0);
  for (auto _ : state) {
    fx.engine.try_transaction([&] { cell.store(cell.load() + 1); });
  }
}

void BM_SharedUninstrumentedLoad(benchmark::State& state) {
  EngineFixture fx;
  ThreadIdScope tid(0);
  htm::Shared<std::uint64_t> cell(3);
  std::uint64_t sink = 0;
  for (auto _ : state) sink += cell.load();
  benchmark::DoNotOptimize(sink);
}

void BM_SnziArriveDepart(benchmark::State& state) {
  EngineFixture fx;
  ThreadIdScope tid(0);
  snzi::Snzi s(snzi::Snzi::Config{3});
  for (auto _ : state) {
    s.arrive(0);
    s.depart(0);
  }
}

}  // namespace

BENCHMARK(BM_UncontendedRead<sprwl::locks::PosixRWLock>)->Name("read/RWL");
BENCHMARK(BM_UncontendedRead<sprwl::locks::BRLock>)->Name("read/BRLock");
BENCHMARK(BM_UncontendedRead<sprwl::locks::PhaseFairRWLock>)->Name("read/PhaseFair");
BENCHMARK(BM_UncontendedRead<sprwl::locks::PassiveRWLock>)->Name("read/PRWL");
BENCHMARK(BM_UncontendedRead<sprwl::locks::TLELock>)->Name("read/TLE");
BENCHMARK(BM_UncontendedRead<sprwl::locks::RWLELock>)->Name("read/RW-LE");
BENCHMARK(BM_UncontendedRead<sprwl::core::SpRWLock>)->Name("read/SpRWL");
BENCHMARK(BM_UncontendedWrite<sprwl::locks::PosixRWLock>)->Name("write/RWL");
BENCHMARK(BM_UncontendedWrite<sprwl::locks::BRLock>)->Name("write/BRLock");
BENCHMARK(BM_UncontendedWrite<sprwl::locks::PhaseFairRWLock>)->Name("write/PhaseFair");
BENCHMARK(BM_UncontendedWrite<sprwl::locks::PassiveRWLock>)->Name("write/PRWL");
BENCHMARK(BM_UncontendedWrite<sprwl::locks::TLELock>)->Name("write/TLE");
BENCHMARK(BM_UncontendedWrite<sprwl::locks::RWLELock>)->Name("write/RW-LE");
BENCHMARK(BM_UncontendedWrite<sprwl::core::SpRWLock>)->Name("write/SpRWL");
BENCHMARK(BM_HtmCommitEmpty);
BENCHMARK(BM_HtmReadWriteWord);
BENCHMARK(BM_SharedUninstrumentedLoad);
BENCHMARK(BM_SnziArriveDepart);

BENCHMARK_MAIN();
