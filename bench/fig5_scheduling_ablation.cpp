// Figure 5 — ablation of SpRWL's scheduling techniques on the long-reader
// hash map at 10% updates (Broadwell): NoSched (base algorithm, §3.1),
// RWait (readers wait for the last active writer), RSync (RWait + join
// waiting readers), full SpRWL (RSync + writer synchronization), with TLE
// as the outside reference.
//
// Expected shape (paper): NoSched already far above TLE; RWait adds gains
// at high thread counts (writers no longer overrun by fresh readers);
// RSync another ~30% (aligned reader starts); full SpRWL a further ~30%
// peak (writer sync cuts reader-caused aborts).
#include <cstdio>

#include "bench/support/hashmap_fig.h"

int main(int argc, char** argv) {
  using namespace sprwl::bench;
  using sprwl::core::SchedulingVariant;
  const Args args = Args::parse(argc, argv);
  const Machine m = broadwell_machine();
  HashmapFigParams p = machine_params(m, args);
  p.lookups_per_read = 10;
  p.update_ratio = 0.10;
  const std::vector<int>& threads = m.threads(args.full);

  std::printf(
      "Fig. 5 — SpRWL scheduling ablation (10%% updates, 10-lookup readers, "
      "%s)\n",
      m.name);
  print_series_header();
  Runner runner;
  hashmap_series(runner, "TLE", m, p, threads, make_tle());
  hashmap_series(runner, "NoSched", m, p, threads,
                 make_sprwl(SchedulingVariant::kNoSched));
  hashmap_series(runner, "RWait", m, p, threads,
                 make_sprwl(SchedulingVariant::kRWait));
  hashmap_series(runner, "RSync", m, p, threads,
                 make_sprwl(SchedulingVariant::kRSync));
  hashmap_series(runner, "SpRWL", m, p, threads,
                 make_sprwl(SchedulingVariant::kFull));
  runner.drain();
  return 0;
}
