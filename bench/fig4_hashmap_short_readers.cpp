// Figure 4 — hash map, readers execute a single lookup (fits HTM), writers
// 1 insert/delete. The unfavourable workload for SpRWL: everything can be
// elided, so plain TLE is the bar.
//
// Expected shape (paper): TLE best overall (all HTM commits); SpRWL
// comparable (within tens of percent — its readers also go through HTM
// first, §3.4) and clearly above the pessimistic locks; RW-LE lags both.
#include <cstdio>

#include "bench/support/hashmap_fig.h"

namespace sprwl::bench {
namespace {

void run_machine(const Machine& m, const Args& args) {
  HashmapFigParams p = machine_params(m, args);
  p.lookups_per_read = 1;
  const std::vector<int>& threads = m.threads(args.full);
  const bool is_power8 = std::string(m.name) == "power8";

  for (const double updates : {0.10, 0.50, 0.90}) {
    p.update_ratio = updates;
    std::printf("\n--- fig4 | %s | %.0f%% updates | readers = 1 lookup ---\n",
                m.name, updates * 100);
    print_series_header();
    hashmap_series("TLE", m, p, threads, make_tle());
    hashmap_series("RWL", m, p, threads, make_rwl());
    hashmap_series("BRLock", m, p, threads, make_brlock());
    if (is_power8) hashmap_series("RW-LE", m, p, threads, make_rwle());
    hashmap_series("SpRWL", m, p, threads, make_sprwl());
  }
}

}  // namespace
}  // namespace sprwl::bench

int main(int argc, char** argv) {
  using namespace sprwl::bench;
  const Args args = Args::parse(argc, argv);
  std::printf("Fig. 4 — hashmap, short readers (1 lookup/read CS)\n");
  if (args.want_profile("broadwell")) run_machine(broadwell_machine(), args);
  if (args.want_profile("power8")) run_machine(power8_machine(), args);
  return 0;
}
