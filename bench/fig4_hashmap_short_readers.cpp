// Figure 4 — hash map, readers execute a single lookup (fits HTM), writers
// 1 insert/delete. The unfavourable workload for SpRWL: everything can be
// elided, so plain TLE is the bar.
//
// Expected shape (paper): TLE best overall (all HTM commits); SpRWL
// comparable (within tens of percent — its readers also go through HTM
// first, §3.4) and clearly above the pessimistic locks; RW-LE lags both.
//
// Data points run in parallel across SPRWL_BENCH_JOBS OS threads (default:
// hardware concurrency); output is byte-identical to a serial run.
#include <cstdio>

#include "bench/support/fig34_suites.h"

int main(int argc, char** argv) {
  using namespace sprwl::bench;
  const Args args = Args::parse(argc, argv);
  std::printf("Fig. 4 — hashmap, short readers (1 lookup/read CS)\n");
  Runner runner;
  fig4_suite(runner, args);
  runner.drain();
  return 0;
}
