// Ablation — self-tuning reader tracking (the Section 5 future-work
// feature): across a reader-size sweep, the adaptive lock should track
// whichever fixed scheme (flags / SNZI) is better at that size, because it
// starts on flags and flips to SNZI once the sampled reader duration
// crosses the threshold.
#include <array>
#include <cstdio>
#include <memory>

#include "bench/support/hashmap_fig.h"

namespace sprwl::bench {
namespace {

double run_point(const Machine& m, const HashmapFigParams& p, int threads,
                 int variant /*0=flags 1=snzi 2=adaptive*/) {
  htm::EngineConfig ec;
  ec.capacity = m.capacity_at(threads);
  ec.max_threads = threads;
  ec.seed = p.seed;
  htm::Engine engine(ec);
  workloads::HashMap map = make_figure_map(p, threads);
  core::Config lc = core::Config::variant(core::SchedulingVariant::kFull, threads);
  lc.reader_htm_first = false;
  lc.use_snzi = variant == 1;
  lc.adaptive_tracking = variant == 2;
  core::SpRWLock lock{lc};
  workloads::DriverConfig dc;
  dc.threads = threads;
  dc.update_ratio = p.update_ratio;
  dc.lookups_per_read = p.lookups_per_read;
  dc.key_space = p.key_space;
  dc.warmup_cycles = p.warmup_cycles;
  dc.measure_cycles = p.measure_cycles;
  dc.seed = p.seed;
  sim::Simulator sim;
  return run_hashmap(sim, engine, lock, map, dc).throughput_tx_s();
}

void run(const Args& args) {
  const Machine m = power8_machine();
  const int threads = m.threads(args.full).back();
  HashmapFigParams base = machine_params(m, args);
  base.update_ratio = 0.50;
  base.buckets = 4096;

  std::printf("Ablation: adaptive reader tracking | %s | %d threads | 50%% "
              "updates\n",
              m.name, threads);
  std::printf("%8s | %12s %12s %12s | %s\n", "rd-size", "flags", "snzi",
              "adaptive", "adaptive vs best fixed");
  Runner runner;
  for (const int size : {1, 10, 100, 1000}) {
    HashmapFigParams p = base;
    p.lookups_per_read = size;
    if (args.measure_cycles == 0) {
      p.measure_cycles = std::max<std::uint64_t>(
          p.measure_cycles, static_cast<std::uint64_t>(size) * 40'000);
    }
    // The three variants of one size are independent points; the row prints
    // once all three computed, in size order.
    auto res = std::make_shared<std::array<double, 3>>();
    runner.submit([res, m, p, threads] { (*res)[0] = run_point(m, p, threads, 0); });
    runner.submit([res, m, p, threads] { (*res)[1] = run_point(m, p, threads, 1); });
    runner.submit(
        [res, m, p, threads] { (*res)[2] = run_point(m, p, threads, 2); },
        [res, size] {
          const double flags = (*res)[0], snzi = (*res)[1], adaptive = (*res)[2];
          const double best = flags > snzi ? flags : snzi;
          std::printf("%8d | %12.3e %12.3e %12.3e | %5.2fx\n", size, flags,
                      snzi, adaptive, best > 0 ? adaptive / best : 0.0);
        });
  }
  runner.drain();
}

}  // namespace
}  // namespace sprwl::bench

int main(int argc, char** argv) {
  sprwl::bench::run(sprwl::bench::Args::parse(argc, argv));
  return 0;
}
