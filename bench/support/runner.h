// Parallel bench runner.
//
// Every benchmark data point — one (lock, thread-count, seed) combination —
// is an independent deterministic experiment: it builds its own Engine,
// data structure, lock and Simulator, and a Simulator's fibers all live on
// the OS thread that calls run(). Points therefore parallelize perfectly
// across OS threads, and the Runner exploits that while keeping the
// *output* of a bench binary byte-identical to a serial run:
//
//  * submit(compute, emit) queues one point. `compute` does the heavy work
//    and may run on any pool thread, concurrently with other computes; it
//    must only touch state it owns (captured by value / its own slot).
//  * `emit` publishes the result (prints the table row, appends JSON) and
//    runs on the draining thread, strictly in submission order, after every
//    compute finished. Output order is thus declaration order regardless of
//    which compute finished first.
//  * drain() is the barrier that runs everything; the destructor drains.
//    Code that mutates process-global configuration between batches (e.g.
//    the ablation benches rescaling g_costs) must drain() before mutating.
//
// The pool size comes from SPRWL_BENCH_JOBS (default: hardware
// concurrency). jobs=1 runs every compute inline on the calling thread in
// submission order — the serial baseline the determinism test compares
// against.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

namespace sprwl::bench {

class Runner {
 public:
  using Fn = std::function<void()>;

  /// SPRWL_BENCH_JOBS if set and positive, else hardware concurrency
  /// (at least 1).
  static int jobs_from_env() {
    if (const char* env = std::getenv("SPRWL_BENCH_JOBS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 1) return static_cast<int>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
  }

  /// jobs <= 0 means "use jobs_from_env()".
  explicit Runner(int jobs = 0) : jobs_(jobs >= 1 ? jobs : jobs_from_env()) {}

  ~Runner() { drain(); }
  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  int jobs() const noexcept { return jobs_; }

  /// Queues one point. Either part may be empty: an emit-only task is how a
  /// bench interleaves section headers with rows in declaration order.
  void submit(Fn compute, Fn emit = {}) {
    pending_.push_back(Task{std::move(compute), std::move(emit), nullptr});
  }

  /// Like submit(), but measures the compute's WALL-clock time (host
  /// seconds, not virtual cycles) and hands it to the emit in milliseconds.
  /// Wall time is nondeterministic by nature, so emits that feed
  /// byte-identity comparisons must keep it out of the compared strings —
  /// report it in separate fields (the JSON `wall_ms` convention).
  void submit_timed(Fn compute, std::function<void(double)> emit) {
    auto wall_ms = std::make_shared<double>(0.0);
    submit(
        [wall_ms, compute = std::move(compute)] {
          const auto t0 = std::chrono::steady_clock::now();
          compute();
          const auto t1 = std::chrono::steady_clock::now();
          *wall_ms =
              std::chrono::duration<double, std::milli>(t1 - t0).count();
        },
        emit ? Fn([wall_ms, emit = std::move(emit)] { emit(*wall_ms); })
             : Fn{});
  }

  /// Runs all queued computes (across the pool; the calling thread
  /// participates), then runs the emits in submission order. Rethrows the
  /// first failed compute (by submission order); no emits run in that case.
  void drain() {
    if (pending_.empty()) return;
    std::vector<Task> tasks;
    tasks.swap(pending_);

    if (jobs_ == 1) {
      for (Task& t : tasks) {
        if (t.compute) t.compute();
      }
    } else {
      std::atomic<std::size_t> next{0};
      auto worker = [&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= tasks.size()) return;
          Task& t = tasks[i];
          if (!t.compute) continue;
          try {
            t.compute();
          } catch (...) {
            t.error = std::current_exception();
          }
        }
      };
      std::vector<std::thread> pool;
      const std::size_t helpers =
          std::min<std::size_t>(static_cast<std::size_t>(jobs_ - 1), tasks.size());
      pool.reserve(helpers);
      for (std::size_t i = 0; i < helpers; ++i) pool.emplace_back(worker);
      worker();  // the draining thread is a pool member too
      for (std::thread& th : pool) th.join();
      for (const Task& t : tasks) {
        if (t.error) std::rethrow_exception(t.error);
      }
    }

    for (Task& t : tasks) {
      if (t.emit) t.emit();
    }
  }

 private:
  struct Task {
    Fn compute;
    Fn emit;
    std::exception_ptr error;
  };

  int jobs_;
  std::vector<Task> pending_;
};

}  // namespace sprwl::bench
