// Shared infrastructure for the figure-regeneration benches: argument
// parsing, machine profiles matching the paper's two testbeds, and the
// row/metric formatting used by every table.
//
// Every bench binary runs with reduced defaults (seconds, not minutes) and
// accepts:
//   --full                paper-scale thread sweeps and longer windows
//   --profile=broadwell|power8|both
//   --measure=<cycles>    measurement window in virtual cycles
//   --seed=<n>
#pragma once

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/support/json.h"
#include "common/histogram.h"
#include "htm/htm.h"
#include "locks/stats.h"
#include "workloads/driver.h"

namespace sprwl::bench {

struct Args {
  bool full = false;
  std::string profile = "both";
  std::uint64_t measure_cycles = 0;  // 0 = per-bench default
  std::uint64_t seed = 42;

  static Args parse(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--full") {
        a.full = true;
      } else if (arg.rfind("--profile=", 0) == 0) {
        a.profile = arg.substr(10);
      } else if (arg.rfind("--measure=", 0) == 0) {
        a.measure_cycles = std::strtoull(arg.c_str() + 10, nullptr, 10);
      } else if (arg.rfind("--seed=", 0) == 0) {
        a.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "options: --full  --profile=broadwell|power8|both  "
            "--measure=<cycles>  --seed=<n>\n");
        std::exit(0);
      }
    }
    return a;
  }

  bool want_profile(const char* name) const {
    return profile == "both" || profile == name;
  }
};

/// One evaluated machine: capacity profile, core topology and the paper's
/// thread counts.
struct Machine {
  const char* name;
  htm::CapacityProfile capacity;
  int physical_cores;
  /// How sharply SMT siblings erode per-thread HTM capacity: effective
  /// capacity = base / max(1, smt * factor). Intel statically partitions
  /// L1 between hyperthreads (factor 1 = true halving); POWER8's L2-based
  /// tracking is shared dynamically and degrades sub-linearly (0.5).
  double smt_capacity_factor;
  std::vector<int> threads_full;
  std::vector<int> threads_quick;

  const std::vector<int>& threads(bool full) const {
    return full ? threads_full : threads_quick;
  }

  /// Effective per-thread HTM capacity at `n` threads. This is the effect
  /// behind the paper's POWER8 curves degrading beyond 10 threads
  /// ("multiple hardware threads start sharing the same physical cores,
  /// which reduces their effective capacity").
  htm::CapacityProfile capacity_at(int n) const {
    const int smt = (n + physical_cores - 1) / physical_cores;
    const auto divisor = static_cast<unsigned>(smt * smt_capacity_factor);
    htm::CapacityProfile c = capacity;
    if (divisor > 1) {
      c.read_lines = std::max(1u, c.read_lines / divisor);
      c.write_lines = std::max(1u, c.write_lines / divisor);
    }
    return c;
  }
};

inline Machine broadwell_machine() {
  return Machine{"broadwell",
                 htm::kBroadwell,
                 28,
                 1.0,
                 {1, 2, 4, 8, 14, 28, 42, 56},
                 {1, 4, 14, 28, 56}};
}

inline Machine power8_machine() {
  return Machine{"power8",
                 htm::kPower8,
                 10,
                 0.5,
                 {1, 2, 4, 8, 16, 32, 64, 80},
                 {1, 4, 16, 48, 80}};
}

/// Percentages the paper's abort/commit breakdown plots show, derived from
/// one run.
struct Breakdown {
  double abort_rate = 0;        // aborted attempts / attempts
  double ab_conflict = 0;       // by cause, as share of attempts
  double ab_capacity = 0;
  double ab_explicit = 0;       // lock-busy and other explicit codes
  double ab_reader = 0;         // the paper's dedicated "reader" class
  double ab_spurious = 0;
  double commit_htm = 0;        // committed sections by mode
  double commit_rot = 0;
  double commit_gl = 0;
  double commit_unins = 0;
  double commit_pess = 0;
};

inline Breakdown make_breakdown(const htm::EngineStats& es,
                                const locks::LockStats& ls,
                                std::uint64_t reader_aborts) {
  Breakdown b;
  const double attempts = static_cast<double>(es.commits_htm + es.commits_rot +
                                              es.total_aborts());
  if (attempts > 0) {
    b.abort_rate = 100.0 * static_cast<double>(es.total_aborts()) / attempts;
    b.ab_conflict = 100.0 * static_cast<double>(es.aborts_conflict) / attempts;
    b.ab_capacity = 100.0 * static_cast<double>(es.aborts_capacity) / attempts;
    const std::uint64_t other_explicit =
        es.aborts_explicit >= reader_aborts ? es.aborts_explicit - reader_aborts : 0;
    b.ab_explicit = 100.0 * static_cast<double>(other_explicit) / attempts;
    b.ab_reader = 100.0 * static_cast<double>(
                              reader_aborts < es.aborts_explicit ? reader_aborts
                                                                 : es.aborts_explicit) /
                  attempts;
    b.ab_spurious = 100.0 * static_cast<double>(es.aborts_spurious) / attempts;
  }
  locks::OpModeCounts all = ls.reads;
  all += ls.writes;
  const double sections = static_cast<double>(all.total());
  if (sections > 0) {
    b.commit_htm = 100.0 * static_cast<double>(all.htm) / sections;
    b.commit_rot = 100.0 * static_cast<double>(all.rot) / sections;
    b.commit_gl = 100.0 * static_cast<double>(all.gl) / sections;
    b.commit_unins = 100.0 * static_cast<double>(all.unins) / sections;
    b.commit_pess = 100.0 * static_cast<double>(all.pessimistic) / sections;
  }
  return b;
}

// Row formatting exists in string form so the parallel runner's emit phase
// and the determinism test see the exact bytes a serial printf would write.

inline std::string format_series_header() {
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "%-10s %4s | %10s | %6s %6s %6s %6s %6s | %5s %5s %5s %5s %5s | %10s "
      "%10s\n",
      "lock", "thr", "tx/s", "ab%", "cnfl%", "cap%", "rdr%", "expl%", "HTM%",
      "ROT%", "GL%", "Unin%", "Pess%", "rd-lat", "wr-lat");
  return buf;
}

inline std::string format_series_row(const char* lock, int threads, double tx_s,
                                     const Breakdown& b, double rd_lat,
                                     double wr_lat) {
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "%-10s %4d | %10.3e | %6.1f %6.1f %6.1f %6.1f %6.1f | %5.1f %5.1f %5.1f "
      "%5.1f %5.1f | %10.0f %10.0f\n",
      lock, threads, tx_s, b.abort_rate, b.ab_conflict, b.ab_capacity,
      b.ab_reader, b.ab_explicit, b.commit_htm, b.commit_rot, b.commit_gl,
      b.commit_unins, b.commit_pess, rd_lat, wr_lat);
  return buf;
}

inline void print_series_header() {
  std::fputs(format_series_header().c_str(), stdout);
}

inline void print_series_row(const char* lock, int threads, double tx_s,
                             const Breakdown& b, double rd_lat, double wr_lat) {
  std::fputs(format_series_row(lock, threads, tx_s, b, rd_lat, wr_lat).c_str(),
             stdout);
}

}  // namespace sprwl::bench
