// The fig3/fig4 hash-map suites as reusable functions: the fig3/fig4
// binaries are thin wrappers around these, and bench/perf_pipeline times
// the exact same point set under different scheduler/runner configurations.
//
// A suite call only *submits* work (rows and section headers as ordered
// emits); the caller drains the Runner. Output is byte-identical to the
// historical serial binaries.
#pragma once

#include <cstdio>

#include "bench/support/hashmap_fig.h"

namespace sprwl::bench {

/// Whole-suite knobs perf_pipeline sweeps. Defaults reproduce the shipping
/// fig3/fig4 configuration.
struct SuiteOptions {
  SeriesOptions series{};
  /// SpRWL commit-time reader scan: line-batched (default) or the
  /// word-at-a-time baseline (core::Config::batched_reader_scan = false).
  bool sprwl_batched_scan = true;
};

namespace detail {

inline void fig34_machine(Runner& runner, const Machine& m, const Args& args,
                          int lookups_per_read, const char* figname,
                          const SuiteOptions& opt) {
  HashmapFigParams p = machine_params(m, args);
  p.lookups_per_read = lookups_per_read;
  const std::vector<int>& threads = m.threads(args.full);
  const bool is_power8 = std::string(m.name) == "power8";
  const char* reader_desc =
      lookups_per_read == 1 ? "readers = 1 lookup" : "readers = 10 lookups";

  for (const double updates : {0.10, 0.50, 0.90}) {
    p.update_ratio = updates;
    char header[160];
    std::snprintf(header, sizeof header,
                  "\n--- %s | %s | %.0f%% updates | %s ---\n", figname, m.name,
                  updates * 100, reader_desc);
    // Headers are emit-only tasks so they land between the right rows.
    runner.submit({}, [text = std::string(header) + format_series_header(),
                       out = opt.series.out] {
      if (out) {
        out(text);
      } else {
        std::fputs(text.c_str(), stdout);
      }
    });
    hashmap_series(runner, "TLE", m, p, threads, make_tle(), opt.series);
    hashmap_series(runner, "RWL", m, p, threads, make_rwl(), opt.series);
    hashmap_series(runner, "BRLock", m, p, threads, make_brlock(), opt.series);
    if (is_power8) {
      hashmap_series(runner, "RW-LE", m, p, threads, make_rwle(), opt.series);
    }
    hashmap_series(runner, "SpRWL", m, p, threads,
                   make_sprwl(core::SchedulingVariant::kFull, false,
                              opt.sprwl_batched_scan),
                   opt.series);
  }
}

}  // namespace detail

/// Fig. 3 — long readers (10 lookups per read critical section).
inline void fig3_suite(Runner& runner, const Args& args,
                       const SuiteOptions& opt = {}) {
  if (args.want_profile("broadwell")) {
    detail::fig34_machine(runner, broadwell_machine(), args, 10, "fig3", opt);
  }
  if (args.want_profile("power8")) {
    detail::fig34_machine(runner, power8_machine(), args, 10, "fig3", opt);
  }
}

/// Fig. 4 — short readers (1 lookup per read critical section).
inline void fig4_suite(Runner& runner, const Args& args,
                       const SuiteOptions& opt = {}) {
  if (args.want_profile("broadwell")) {
    detail::fig34_machine(runner, broadwell_machine(), args, 1, "fig4", opt);
  }
  if (args.want_profile("power8")) {
    detail::fig34_machine(runner, power8_machine(), args, 1, "fig4", opt);
  }
}

}  // namespace sprwl::bench
