// Shared runner for the hash-map figures (Figs. 3-6): builds the map at the
// per-machine population the paper uses (sized so that the 10-lookup reader
// exceeds HTM capacity while a single update fits), runs the mixed workload
// under a given lock for each thread count, and prints one series row per
// point.
//
// Points are submitted to a bench::Runner: each (lock, thread-count) pair
// is an independent experiment — its own Engine, map, lock and Simulator —
// computed on whichever pool thread picks it up, with the row printed in
// declaration order at drain() time (byte-identical to a serial run).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "bench/support/bench_common.h"
#include "bench/support/runner.h"
#include "common/rng.h"
#include "core/sprwl.h"
#include "htm/engine.h"
#include "locks/brlock.h"
#include "locks/posix_rwlock.h"
#include "locks/rwle.h"
#include "locks/tle.h"
#include "sim/simulator.h"
#include "workloads/driver.h"
#include "workloads/hashmap.h"

namespace sprwl::bench {

struct HashmapFigParams {
  double update_ratio = 0.1;
  int lookups_per_read = 10;
  std::uint64_t population = 32768;
  std::uint64_t key_space = 65536;
  std::uint32_t buckets = 256;  // population/buckets = chain length
  std::uint64_t warmup_cycles = 500'000;
  std::uint64_t measure_cycles = 3'000'000;
  std::uint64_t seed = 42;
};

/// Map geometry per machine: Broadwell gets long chains (the paper
/// populates 8M items there), POWER8 shorter ones (3M items) — scaled so
/// the capacity regimes match (see DESIGN.md).
inline HashmapFigParams machine_params(const Machine& m, const Args& args) {
  HashmapFigParams p;
  p.seed = args.seed;
  if (std::string(m.name) == "power8") {
    p.buckets = 1024;  // chain ~32: 10 lookups ~160 lines > 128
  } else {
    p.buckets = 256;  // chain ~128: 10 lookups ~640 lines > 512
  }
  if (args.measure_cycles != 0) {
    p.measure_cycles = args.measure_cycles;
  } else if (args.full) {
    p.measure_cycles = 10'000'000;
  }
  return p;
}

inline workloads::HashMap make_figure_map(const HashmapFigParams& p,
                                          int max_threads) {
  workloads::HashMap::Config mc;
  mc.buckets = p.buckets;
  mc.capacity = static_cast<std::uint32_t>(p.population * 2);
  mc.max_threads = max_threads;
  workloads::HashMap map(mc);
  Rng rng(p.seed);
  map.populate(p.population, p.key_space, rng);
  return map;
}

/// Everything one data point produced, available to SeriesOptions::observe
/// at emit time (declaration order).
struct SeriesPoint {
  std::string lock;
  int threads = 0;
  workloads::RunResult run;
  sim::SimStats sim_stats;        ///< scheduler counters of the point's run
  std::uint64_t final_time = 0;   ///< virtual end time of the point's run
};

struct SeriesOptions {
  /// Simulator configuration for every point (perf_pipeline flips
  /// direct_switch off here to time the classic scheduler).
  sim::SimConfig sim{};
  /// Row sink; default prints to stdout. Runs at emit time, in order.
  std::function<void(const std::string&)> out;
  /// Per-point hook after the row is emitted (aggregation, JSON).
  std::function<void(const SeriesPoint&)> observe;
};

/// Submits one point per thread count to `runner`. make_lock(threads)
/// returns a unique_ptr to the lock; it is copied into each point's task,
/// so the factory must own what it captures (all call sites pass small
/// value-capturing lambdas). Rows appear in declaration order at drain().
template <class MakeLock>
void hashmap_series(Runner& runner, const char* lock_name, const Machine& m,
                    const HashmapFigParams& p, const std::vector<int>& threads,
                    MakeLock make_lock, const SeriesOptions& opt = {}) {
  for (const int n : threads) {
    auto point = std::make_shared<SeriesPoint>();
    point->lock = lock_name;
    point->threads = n;
    runner.submit(
        [point, m, p, n, make_lock, sim_cfg = opt.sim] {
          htm::EngineConfig ec;
          ec.capacity = m.capacity_at(n);
          ec.max_threads = n;
          ec.seed = p.seed;
          htm::Engine engine(ec);
          workloads::HashMap map = make_figure_map(p, n);
          auto lock = make_lock(n);
          workloads::DriverConfig dc;
          dc.threads = n;
          dc.update_ratio = p.update_ratio;
          dc.lookups_per_read = p.lookups_per_read;
          dc.key_space = p.key_space;
          dc.warmup_cycles = p.warmup_cycles;
          dc.measure_cycles = p.measure_cycles;
          dc.seed = p.seed;
          sim::Simulator sim(sim_cfg);
          point->run = run_hashmap(sim, engine, *lock, map, dc);
          point->sim_stats = sim.stats();
          point->final_time = sim.final_time();
        },
        [point, out = opt.out, observe = opt.observe] {
          const workloads::RunResult& r = point->run;
          const Breakdown b =
              make_breakdown(r.engine_stats, r.lock_stats, r.reader_aborts);
          const std::string row =
              format_series_row(point->lock.c_str(), point->threads,
                                r.throughput_tx_s(), b, r.read_latency.mean(),
                                r.write_latency.mean());
          if (out) {
            out(row);
          } else {
            std::fputs(row.c_str(), stdout);
          }
          if (observe) observe(*point);
        });
  }
}

// Lock factories shared by the figures.
inline auto make_tle() {
  return [](int n) {
    locks::TLELock::Config c;
    c.max_threads = n;
    return std::make_unique<locks::TLELock>(c);
  };
}
inline auto make_rwl() {
  return [](int n) { return std::make_unique<locks::PosixRWLock>(n); };
}
inline auto make_brlock() {
  return [](int n) { return std::make_unique<locks::BRLock>(n); };
}
inline auto make_rwle() {
  return [](int n) {
    locks::RWLELock::Config c;
    c.max_threads = n;
    return std::make_unique<locks::RWLELock>(c);
  };
}
inline auto make_sprwl(core::SchedulingVariant v = core::SchedulingVariant::kFull,
                       bool use_snzi = false, bool batched_scan = true) {
  return [v, use_snzi, batched_scan](int n) {
    core::Config c = core::Config::variant(v, n);
    c.use_snzi = use_snzi;
    c.batched_reader_scan = batched_scan;
    return std::make_unique<core::SpRWLock>(c);
  };
}

}  // namespace sprwl::bench
