// Minimal streaming JSON builder for the machine-readable BENCH_*.json
// files the benches emit next to their human tables. Values are written in
// call order; the writer tracks open objects/arrays and inserts commas, so
// call sites stay linear:
//
//   JsonWriter j;
//   j.begin_object();
//   j.key("bench").value("engine_ops");
//   j.key("rows").begin_array();
//   ... j.begin_object(); j.key("threads").value(8); j.end_object(); ...
//   j.end_array();
//   j.end_object();
//   j.write_file("BENCH_engine.json");
#pragma once

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <string>

namespace sprwl::bench {

class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(const char* k) {
    comma();
    append_string(k);
    out_ += ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(const char* s) { return scalar([&] { append_string(s); }); }
  JsonWriter& value(const std::string& s) { return value(s.c_str()); }
  JsonWriter& value(bool b) { return scalar([&] { out_ += b ? "true" : "false"; }); }
  JsonWriter& value(double d) {
    return scalar([&] {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", d);
      out_ += buf;
    });
  }
  JsonWriter& value(std::uint64_t v) {
    return scalar([&] { out_ += std::to_string(v); });
  }
  JsonWriter& value(int v) {
    return scalar([&] { out_ += std::to_string(v); });
  }

  const std::string& str() const noexcept { return out_; }

  bool write_file(const char* path) const {
    assert(depth_ == 0 && "unbalanced begin/end");
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) return false;
    const bool ok = std::fwrite(out_.data(), 1, out_.size(), f) == out_.size();
    std::fclose(f);
    return ok;
  }

 private:
  template <class F>
  JsonWriter& scalar(F&& emit) {
    comma();
    emit();
    just_closed_value_ = true;
    pending_value_ = false;
    return *this;
  }

  JsonWriter& open(char c) {
    comma();
    out_ += c;
    ++depth_;
    just_closed_value_ = false;
    pending_value_ = false;
    return *this;
  }

  JsonWriter& close(char c) {
    assert(depth_ > 0);
    out_ += c;
    --depth_;
    just_closed_value_ = true;
    return *this;
  }

  void comma() {
    if (pending_value_) return;  // right after key(): no separator
    if (just_closed_value_) out_ += ',';
    just_closed_value_ = false;
  }

  void append_string(const char* s) {
    out_ += '"';
    for (; *s != '\0'; ++s) {
      const unsigned char c = static_cast<unsigned char>(*s);
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        case '\r': out_ += "\\r"; break;
        default:
          if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += static_cast<char>(c);
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  int depth_ = 0;
  bool just_closed_value_ = false;
  bool pending_value_ = false;
};

}  // namespace sprwl::bench
