// Perf trajectory of the evaluation pipeline itself: times the fig3+fig4
// point set (the core hash-map suites) under three configurations and
// writes BENCH_perf.json —
//
//   serial_old    jobs=1, the pre-overhaul pipeline: binary priority-queue
//                 scheduler, trampoline-only switching, fresh zeroed fiber
//                 stacks, word-at-a-time reader scan;
//   serial_new    jobs=1, direct fiber switching + line-batched commit
//                 scan (the shipping defaults);
//   parallel_new  SPRWL_BENCH_JOBS (default: hardware concurrency) pool
//                 over the same points.
//
// Besides the wall-clock trajectory (points/sec, context switches/sec) it
// byte-compares the serial_new and parallel_new bench output and fails if
// they differ — the parallel runner must not change a single byte.
//
// Note serial_old differs from serial_new in *scheduler and scan
// configuration* only; both produce valid figure data (serial_old's SpRWL
// rows charge the unbatched scan cost, so their virtual-time numbers are
// the old pipeline's numbers, as intended for a baseline).
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/support/fig34_suites.h"
#include "bench/support/json.h"

namespace sprwl::bench {
namespace {

struct ModeResult {
  std::string name;
  int jobs = 1;
  double wall_s = 0;
  std::uint64_t points = 0;
  std::uint64_t switches = 0;
  std::uint64_t direct_switches = 0;
  std::string output;

  double points_per_sec() const { return wall_s > 0 ? points / wall_s : 0; }
  double switches_per_sec() const {
    return wall_s > 0 ? static_cast<double>(switches) / wall_s : 0;
  }
};

ModeResult run_mode(const char* name, int jobs, bool new_pipeline,
                    const Args& args) {
  ModeResult r;
  r.name = name;
  r.jobs = jobs;
  SuiteOptions opt;
  opt.series.sim.direct_switch = new_pipeline;
  opt.series.sim.legacy_ready_queue = !new_pipeline;
  opt.sprwl_batched_scan = new_pipeline;
  opt.series.out = [&r](const std::string& s) { r.output += s; };
  opt.series.observe = [&r](const SeriesPoint& pt) {
    ++r.points;
    r.switches += pt.sim_stats.switches;
    r.direct_switches += pt.sim_stats.direct_switches;
  };
  const auto t0 = std::chrono::steady_clock::now();
  {
    Runner runner(jobs);
    fig3_suite(runner, args, opt);
    fig4_suite(runner, args, opt);
    runner.drain();
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  std::printf("%-12s  jobs=%-3d  %8.2fs  %6.2f points/s  %11.3e switches/s\n",
              r.name.c_str(), r.jobs, r.wall_s, r.points_per_sec(),
              r.switches_per_sec());
  std::fflush(stdout);
  return r;
}

int run(const Args& args) {
  const int par_jobs = Runner::jobs_from_env();
  std::printf(
      "perf_pipeline — fig3+fig4 suite wall-clock (SPRWL_BENCH_JOBS=%d)\n",
      par_jobs);
  std::fflush(stdout);

  std::vector<ModeResult> modes;
  modes.push_back(run_mode("serial_old", 1, false, args));
  modes.push_back(run_mode("serial_new", 1, true, args));
  modes.push_back(run_mode("parallel_new", par_jobs, true, args));

  const ModeResult& old_m = modes[0];
  const ModeResult& new_s = modes[1];
  const ModeResult& new_p = modes[2];
  const bool identical = new_s.output == new_p.output;
  const double speedup_sched =
      new_s.wall_s > 0 ? old_m.wall_s / new_s.wall_s : 0;
  const double speedup_total =
      new_p.wall_s > 0 ? old_m.wall_s / new_p.wall_s : 0;

  std::printf("\nscheduler+scan speedup (serial_new vs serial_old): %.2fx\n",
              speedup_sched);
  std::printf("total speedup (parallel_new vs serial_old):        %.2fx\n",
              speedup_total);
  std::printf("serial/parallel output byte-identical:             %s\n",
              identical ? "yes" : "NO — DETERMINISM BROKEN");

  JsonWriter j;
  j.begin_object();
  j.key("bench").value("perf_pipeline");
  j.key("suite").value("fig3+fig4");
  j.key("jobs").value(par_jobs);
  j.key("hw_concurrency")
      .value(static_cast<int>(std::thread::hardware_concurrency()));
  j.key("modes").begin_array();
  for (const ModeResult& m : modes) {
    j.begin_object();
    j.key("name").value(m.name);
    j.key("jobs").value(m.jobs);
    j.key("wall_seconds").value(m.wall_s);
    j.key("points").value(m.points);
    j.key("points_per_sec").value(m.points_per_sec());
    j.key("switches").value(m.switches);
    j.key("direct_switches").value(m.direct_switches);
    j.key("switches_per_sec").value(m.switches_per_sec());
    j.end_object();
  }
  j.end_array();
  j.key("speedup_serial_new_vs_serial_old").value(speedup_sched);
  j.key("speedup_parallel_new_vs_serial_old").value(speedup_total);
  j.key("outputs_identical").value(identical);
  j.end_object();
  if (!j.write_file("BENCH_perf.json")) {
    std::fprintf(stderr, "failed to write BENCH_perf.json\n");
    return 2;
  }
  std::printf("wrote BENCH_perf.json\n");
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace sprwl::bench

int main(int argc, char** argv) {
  return sprwl::bench::run(sprwl::bench::Args::parse(argc, argv));
}
