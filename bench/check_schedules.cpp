// check_schedules — CLI driver for the systematic concurrency checker.
//
// Modes (combinable; default is --dfs --pct over every registered lock):
//   --dfs            bounded-exhaustive DFS with sleep sets
//   --pct            PCT randomized exploration (--runs schedules per lock)
//   --replay FILE    replay a CHECK_repro_<seed>.json artifact
//
// Options:
//   --lock NAME      check one lock (registry name, e.g. SpRWL, TLE, RWL;
//                    SpRWL-broken selects the deliberately broken variant)
//   --runs N         PCT runs per lock (default 200)
//   --seed N         PCT base seed (default: SPRWL_SEED or 1)
//   --threads N --writers N --ops N   workload shape (defaults 3/1/1)
//   --artifact-dir D where CHECK_repro_<seed>.json goes (default ".")
//
// Exit status: 0 when everything passes (or a replayed artifact still
// reproduces its recorded verdict class), 1 on a new violation, 2 on usage
// errors. CI runs the DFS smoke + a PCT seed matrix and uploads any
// CHECK_repro_*.json on failure.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/artifact.h"
#include "check/explorer.h"
#include "check/harness.h"
#include "check/registry.h"
#include "fault/fault.h"

namespace sprwl::check {
namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--dfs] [--pct] [--replay FILE] [--lock NAME]\n"
               "          [--runs N] [--seed N] [--threads N] [--writers N]\n"
               "          [--ops N] [--artifact-dir DIR]\n",
               argv0);
  return 2;
}

struct Cli {
  bool dfs = false;
  bool pct = false;
  std::string replay_file;
  std::string lock;
  std::uint64_t runs = 200;
  std::uint64_t seed = fault::env_seed(1);
  std::string artifact_dir = ".";
  Workload workload;
};

void report(const char* mode, const std::string& lock,
            const ExploreReport& rep) {
  if (rep.found_violation) {
    std::printf("%-14s %-12s FAIL  %s: %s\n", lock.c_str(), mode,
                to_string(rep.verdict.kind), rep.verdict.detail.c_str());
    if (!rep.artifact_path.empty()) {
      std::printf("  repro (%zu decisions) written to %s\n", rep.repro.size(),
                  rep.artifact_path.c_str());
      std::printf("  replay: check_schedules --replay %s\n",
                  rep.artifact_path.c_str());
    }
  } else {
    const bool is_dfs = std::strcmp(mode, "dfs") == 0;
    std::printf("%-14s %-12s ok    %llu schedules, %llu pruned%s\n",
                lock.c_str(), mode,
                static_cast<unsigned long long>(rep.schedules),
                static_cast<unsigned long long>(rep.pruned),
                !is_dfs        ? ""
                : rep.exhausted ? ", exhausted"
                                : ", run cap reached");
  }
}

int run_replay(const Cli& cli) {
  ReproArtifact a;
  if (!read_artifact(cli.replay_file, &a)) {
    std::fprintf(stderr, "cannot parse artifact: %s\n",
                 cli.replay_file.c_str());
    return 2;
  }
  std::printf("replaying %s: lock=%s policy=%s seed=%llu (%zu decisions)\n",
              cli.replay_file.c_str(), a.lock.c_str(), a.policy.c_str(),
              static_cast<unsigned long long>(a.seed), a.choices.size());
  std::printf("recorded violation: %s\n", a.violation.c_str());
  const Verdict v = replay_trace(make_runner(a.lock, a.workload), a.choices);
  std::printf("replay verdict: %s%s%s\n", to_string(v.kind),
              v.detail.empty() ? "" : ": ", v.detail.c_str());
  if (!v.violation()) {
    std::printf("the recorded schedule no longer violates (fixed?)\n");
    return 0;
  }
  return 0;  // reproducing a recorded violation is the expected outcome
}

}  // namespace

int run_main(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--dfs") {
      cli.dfs = true;
    } else if (arg == "--pct") {
      cli.pct = true;
    } else if (arg == "--replay") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.replay_file = v;
    } else if (arg == "--lock") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.lock = v;
    } else if (arg == "--runs") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.runs = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.workload.threads = std::atoi(v);
    } else if (arg == "--writers") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.workload.writers = std::atoi(v);
    } else if (arg == "--ops") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.workload.ops_per_thread = std::atoi(v);
    } else if (arg == "--artifact-dir") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.artifact_dir = v;
    } else {
      return usage(argv[0]);
    }
  }
  if (!cli.replay_file.empty()) return run_replay(cli);
  if (!cli.dfs && !cli.pct) cli.dfs = cli.pct = true;

  std::vector<std::string> locks;
  if (!cli.lock.empty()) {
    locks.push_back(cli.lock);
  } else {
    locks = checked_locks();
  }

  bool violated = false;
  for (const std::string& name : locks) {
    const RunFn run = make_runner(name, cli.workload);
    ExploreOptions opt;
    opt.seed = cli.seed;
    opt.lock_name = name;
    opt.artifact_dir = cli.artifact_dir;
    if (cli.dfs) {
      const ExploreReport rep = explore_dfs(run, cli.workload, opt);
      report("dfs", name, rep);
      violated |= rep.found_violation;
    }
    if (cli.pct) {
      ExploreOptions popt = opt;
      popt.max_runs = cli.runs;
      const ExploreReport rep = explore_pct(run, cli.workload, popt);
      report("pct", name, rep);
      violated |= rep.found_violation;
    }
  }
  if (violated) {
    std::printf("\nviolations found; SPRWL_SEED=%llu to replay the pct "
                "matrix, or use the CHECK_repro artifact above\n",
                static_cast<unsigned long long>(cli.seed));
  }
  return violated ? 1 : 0;
}

}  // namespace sprwl::check

int main(int argc, char** argv) {
  return sprwl::check::run_main(argc, argv);
}
