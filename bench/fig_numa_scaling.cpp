// NUMA scaling of SpRWL reader tracking (DESIGN.md §11): sweeps simulated
// sockets × thread counts on the read-heavy hash-map workload and compares
//
//   flat      the default per-thread state array — the writer's commit
//             scan reads ceil(threads/8) flag lines, most owned by remote
//             sockets at scale;
//   sharded   Config::socket_sharded_tracking — per-socket flag shards
//             plus one per-socket summary word, so the commit scan reads
//             `sockets` summary lines instead.
//
// Every point runs with line-owner tracking on, so loads/stores/CAS pay
// the topology-aware coherence extras (CostModel::remote_socket /
// remote_cross). Because single-run throughput of this system is chaotic
// (a ±3% swing from any perturbed escalation), every point is the mean
// over a seed set; per-seed values are kept in the JSON. Three checks
// matter, and all land in BENCH_numa.json:
//
//   * identity   1-socket runs with tracking forced on are byte-identical
//                to the plain defaults (remote_socket = 0 keeps the model
//                a strict no-op off-NUMA) — `outputs_identical`;
//   * scan cost  at >= 2 sockets and 32+ threads the sharded layout spends
//                fewer total virtual cycles in (passing) writer commit
//                scans than the flat layout;
//   * crossover  at >= 2 sockets and 32+ threads read-heavy, mean sharded
//                throughput beats flat.
//
// A remote-cost sensitivity sweep (remote_cross in {50,100,200}) shows the
// conclusions are not an artifact of one cost choice.
//
// A second sweep covers the BRAVO reader table (DESIGN.md §16): {global,
// socket-sharded} slot layouts × {migratory, home-directory} ownership
// models × sockets, read-mostly. Checks: the sharded table's mean
// throughput is at least the global table's at every 2+-socket point
// under both models (`bravo_sharded_beats_global`), and the 1-socket
// home-directory rows are byte-identical to the migratory ones
// (`bravo_identity_1socket`). `--smoke` shrinks every sweep for CI. Exit
// status is non-zero if any identity or bravo acceptance check fails.
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/support/hashmap_fig.h"
#include "bench/support/json.h"
#include "common/costs.h"
#include "core/bravo.h"

namespace sprwl::bench {
namespace {

struct NumaRun {
  std::uint64_t seed = 0;
  std::uint64_t remote_cross = 0;  // cost active during the run
  workloads::RunResult run;
  std::uint64_t scan_cycles = 0;  // passing commit scans, virtual cycles
  std::uint64_t scans = 0;
};

/// One (sockets, threads, layout) point: per-seed runs plus their means.
struct NumaPoint {
  int sockets = 1;
  int threads = 0;
  std::string lock;  // "flat" | "sharded" | "bravo-global" | "bravo-sharded"
  std::string model = "migratory";  // CostModel::ownership during the run
  std::vector<NumaRun> runs;

  double mean_tx_s() const {
    double s = 0;
    for (const NumaRun& r : runs) s += r.run.throughput_tx_s();
    return runs.empty() ? 0 : s / static_cast<double>(runs.size());
  }
  double mean_scan_cycles() const {
    double s = 0;
    for (const NumaRun& r : runs) s += static_cast<double>(r.scan_cycles);
    return runs.empty() ? 0 : s / static_cast<double>(runs.size());
  }
  double mean_scan_cycles_per_scan() const {
    std::uint64_t c = 0, n = 0;
    for (const NumaRun& r : runs) {
      c += r.scan_cycles;
      n += r.scans;
    }
    return n > 0 ? static_cast<double>(c) / static_cast<double>(n) : 0.0;
  }
};

/// Submits one (sockets, threads, layout, seed) run. Like hashmap_series,
/// but the engine carries the socket topology (and forced owner tracking)
/// and the lock the sharded-tracking switch — SeriesOptions has no engine
/// hook, and the scan counters live on SpRWLock, not in LockStats.
void numa_run(Runner& runner, const Machine& m, HashmapFigParams p,
              int sockets, int n, bool sharded, bool track_owners,
              std::uint64_t seed,
              const std::function<void(const std::string&)>& out,
              const std::function<void(const NumaRun&)>& observe) {
  p.seed = seed;
  auto run = std::make_shared<NumaRun>();
  run->seed = seed;
  runner.submit(
      [run, m, p, n, sockets, sharded, track_owners] {
        run->remote_cross = g_costs.remote_cross;
        htm::EngineConfig ec;
        ec.capacity = m.capacity_at(n);
        ec.max_threads = n;
        ec.seed = p.seed;
        ec.topology = sim::Topology::split(n, sockets);
        ec.track_line_owners = track_owners;
        htm::Engine engine(ec);
        workloads::HashMap map = make_figure_map(p, n);
        core::Config c =
            core::Config::variant(core::SchedulingVariant::kFull, n);
        c.topology = ec.topology;
        c.socket_sharded_tracking = sharded;
        // Cache-aligned for the same reason workload pools use
        // aligned_vector (common/aligned.h): Shared<> words embedded in
        // the lock are charged by address, and a stack frame's offset
        // mod 64 varies with ASLR — unaligned, the run would not be
        // reproducible.
        alignas(kCacheLineSize) core::SpRWLock lock(c);
        workloads::DriverConfig dc;
        dc.threads = n;
        dc.update_ratio = p.update_ratio;
        dc.lookups_per_read = p.lookups_per_read;
        dc.key_space = p.key_space;
        dc.warmup_cycles = p.warmup_cycles;
        dc.measure_cycles = p.measure_cycles;
        dc.seed = p.seed;
        sim::Simulator sim;
        run->run = run_hashmap(sim, engine, lock, map, dc);
        run->scan_cycles = lock.commit_scan_cycles();
        run->scans = lock.commit_scan_count();
      },
      [run, sharded, sockets, n, out, observe] {
        if (out) {
          const workloads::RunResult& r = run->run;
          const Breakdown b =
              make_breakdown(r.engine_stats, r.lock_stats, r.reader_aborts);
          const std::string name = std::string(sharded ? "sharded" : "flat") +
                                   "/" + std::to_string(sockets) + "s";
          out(format_series_row(name.c_str(), n, r.throughput_tx_s(), b,
                                r.read_latency.mean(),
                                r.write_latency.mean()));
        }
        if (observe) observe(*run);
      });
}

/// Submits one BRAVO (sockets, table-layout, seed) run: the read-mostly
/// hash-map workload under a bias-enabled SpRWLock whose ReaderTable is
/// either one global slot array or per-socket shards
/// (bravo::Config::shard_by_socket). The run inherits whatever
/// g_costs.ownership is active when the batch executes — the caller owns
/// setting/restoring the model around a drained batch.
void bravo_run(Runner& runner, const Machine& m, HashmapFigParams p,
               int sockets, int n, bool sharded_table, std::uint64_t seed,
               const std::function<void(const std::string&)>& out,
               const std::function<void(const NumaRun&)>& observe) {
  p.seed = seed;
  auto run = std::make_shared<NumaRun>();
  run->seed = seed;
  runner.submit(
      [run, m, p, n, sockets, sharded_table] {
        run->remote_cross = g_costs.remote_cross;
        htm::EngineConfig ec;
        ec.capacity = m.capacity_at(n);
        ec.max_threads = n;
        ec.seed = p.seed;
        ec.topology = sim::Topology::split(n, sockets);
        ec.track_line_owners = true;
        htm::Engine engine(ec);
        workloads::HashMap map = make_figure_map(p, n);
        bravo::ReaderTable::Config bc;
        bc.max_threads = n;
        bc.topology = ec.topology;
        bc.shard_by_socket = sharded_table;
        auto table = std::make_shared<bravo::ReaderTable>(bc);
        core::Config c =
            core::Config::variant(core::SchedulingVariant::kFull, n);
        c.topology = ec.topology;
        c.reader_htm_first = false;
        c.bravo_bias = true;
        c.bravo_table = table;
        // Cache-aligned (see numa_run): the bias fast path charges the
        // lock's embedded bias word on every read, so an ASLR-shifted
        // stack frame would perturb line grouping and break run-to-run
        // bit determinism.
        alignas(kCacheLineSize) core::SpRWLock lock(c);
        workloads::DriverConfig dc;
        dc.threads = n;
        dc.update_ratio = p.update_ratio;
        dc.lookups_per_read = p.lookups_per_read;
        dc.key_space = p.key_space;
        dc.warmup_cycles = p.warmup_cycles;
        dc.measure_cycles = p.measure_cycles;
        dc.seed = p.seed;
        sim::Simulator sim;
        run->run = run_hashmap(sim, engine, lock, map, dc);
        run->scan_cycles = lock.commit_scan_cycles();
        run->scans = lock.commit_scan_count();
      },
      [run, sharded_table, sockets, n, out, observe] {
        if (out) {
          const workloads::RunResult& r = run->run;
          const Breakdown b =
              make_breakdown(r.engine_stats, r.lock_stats, r.reader_aborts);
          const std::string name =
              std::string(sharded_table ? "bshard" : "bglob") + "/" +
              std::to_string(sockets) + "s";
          out(format_series_row(name.c_str(), n, r.throughput_tx_s(), b,
                                r.read_latency.mean(),
                                r.write_latency.mean()));
        }
        if (observe) observe(*run);
      });
}

void json_point(JsonWriter& j, const NumaPoint& pt) {
  j.begin_object();
  j.key("sockets").value(pt.sockets);
  j.key("threads").value(pt.threads);
  j.key("lock").value(pt.lock);
  j.key("model").value(pt.model);
  j.key("mean_tx_s").value(pt.mean_tx_s());
  j.key("mean_scan_cycles").value(pt.mean_scan_cycles());
  j.key("scan_cycles_per_scan").value(pt.mean_scan_cycles_per_scan());
  j.key("runs").begin_array();
  for (const NumaRun& r : pt.runs) {
    j.begin_object();
    j.key("seed").value(r.seed);
    j.key("remote_cross").value(r.remote_cross);
    j.key("tx_s").value(r.run.throughput_tx_s());
    j.key("scan_cycles").value(r.scan_cycles);
    j.key("scans").value(r.scans);
    j.key("socket_transfers").value(r.run.engine_stats.socket_transfers);
    j.key("cross_transfers").value(r.run.engine_stats.cross_transfers);
    j.key("invalidations").value(r.run.engine_stats.invalidations);
    j.key("reader_aborts").value(r.run.reader_aborts);
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

const NumaPoint* find(const std::vector<NumaPoint>& pts, int sockets,
                      int threads, const char* lock) {
  for (const NumaPoint& p : pts) {
    if (p.sockets == sockets && p.threads == threads && p.lock == lock)
      return &p;
  }
  return nullptr;
}

int run(int argc, char** argv) {
  const Args args = Args::parse(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const Machine m = broadwell_machine();
  HashmapFigParams p = machine_params(m, args);
  if (args.measure_cycles == 0 && !args.full) {
    p.measure_cycles = smoke ? 200'000 : 2'000'000;
  }
  const std::vector<int> sockets = smoke ? std::vector<int>{1, 2}
                                         : std::vector<int>{1, 2, 4};
  const std::vector<int> threads = smoke ? std::vector<int>{2, 8}
                                         : std::vector<int>{1, 8, 16, 32, 64};
  const std::vector<std::uint64_t> seeds =
      smoke ? std::vector<std::uint64_t>{42, 7}
            : std::vector<std::uint64_t>{42, 7, 1234, 5, 99};
  const int jobs = Runner::jobs_from_env();
  std::printf("fig_numa_scaling — %s, measure=%llu, seeds=%zu, jobs=%d%s\n",
              m.name, static_cast<unsigned long long>(p.measure_cycles),
              seeds.size(), jobs, smoke ? " (smoke)" : "");

  // Identity: 1-socket, owner tracking forced on vs. the plain defaults.
  // remote_socket defaults to 0 and a 1-socket topology never crosses, so
  // the tracked run must reproduce the untracked rows byte for byte.
  std::string tracked_rows;
  std::string plain_rows;
  {
    Runner runner(jobs);
    for (const int n : threads) {
      numa_run(runner, m, p, 1, n, false, true, args.seed,
               [&tracked_rows](const std::string& s) { tracked_rows += s; },
               {});
      numa_run(runner, m, p, 1, n, false, false, args.seed,
               [&plain_rows](const std::string& s) { plain_rows += s; }, {});
    }
    runner.drain();
  }
  const bool identical = tracked_rows == plain_rows;
  std::fputs(format_series_header().c_str(), stdout);
  std::fputs(tracked_rows.c_str(), stdout);
  std::printf("1-socket tracked output identical to defaults: %s\n",
              identical ? "yes" : "NO — COST MODEL NOT A NO-OP");

  // Main sweep: sockets x threads x {flat, sharded}, seed-averaged, at
  // default costs.
  std::vector<NumaPoint> points;
  // Observe lambdas capture &points.back(); reserve so emplace_back never
  // reallocates under them.
  points.reserve(sockets.size() * threads.size() * 2);
  {
    Runner runner(jobs);
    for (const int s : sockets) {
      for (const int n : threads) {
        for (const bool sharded : {false, true}) {
          points.emplace_back();
          NumaPoint& pt = points.back();
          pt.sockets = s;
          pt.threads = n;
          pt.lock = sharded ? "sharded" : "flat";
          for (const std::uint64_t seed : seeds) {
            numa_run(runner, m, p, s, n, sharded, true, seed, {},
                     [&pt](const NumaRun& r) { pt.runs.push_back(r); });
          }
        }
      }
    }
    runner.drain();
  }
  std::printf("\n%-12s %4s | %12s | %14s | %14s\n", "lock", "thr",
              "mean tx/s", "scan cyc/scan", "scan cyc/run");
  for (const NumaPoint& pt : points) {
    std::printf("%-9s %2ds %4d | %12.4e | %14.1f | %14.0f\n", pt.lock.c_str(),
                pt.sockets, pt.threads, pt.mean_tx_s(),
                pt.mean_scan_cycles_per_scan(), pt.mean_scan_cycles());
  }

  // Sensitivity: the cross-socket transfer cost swept around its default.
  // g_costs is process-global, so each value gets its own drained batch.
  std::vector<NumaPoint> sens;
  sens.reserve(6);
  if (!smoke) {
    const int sens_threads = 32;
    const int sens_sockets = 2;
    const std::uint64_t def = g_costs.remote_cross;
    for (const std::uint64_t rc : {std::uint64_t{50}, std::uint64_t{100},
                                   std::uint64_t{200}}) {
      g_costs.remote_cross = rc;
      Runner runner(jobs);
      for (const bool sharded : {false, true}) {
        sens.emplace_back();
        NumaPoint& pt = sens.back();
        pt.sockets = sens_sockets;
        pt.threads = sens_threads;
        pt.lock = sharded ? "sharded" : "flat";
        for (const std::uint64_t seed : seeds) {
          numa_run(runner, m, p, sens_sockets, sens_threads, sharded, true,
                   seed, {}, [&pt](const NumaRun& r) { pt.runs.push_back(r); });
        }
      }
      runner.drain();
    }
    g_costs.remote_cross = def;
    std::printf("\nsensitivity (s=%d t=%d):\n", sens_sockets, sens_threads);
    for (const NumaPoint& pt : sens) {
      std::printf("remote_cross=%3llu %-8s | %12.4e | %14.1f\n",
                  static_cast<unsigned long long>(pt.runs.front().remote_cross),
                  pt.lock.c_str(), pt.mean_tx_s(),
                  pt.mean_scan_cycles_per_scan());
    }
  }

  // BRAVO table-layout sweep: {global, socket-sharded} ReaderTable ×
  // {migratory, home-directory} ownership × sockets, read-mostly so the
  // bias fast path (slot publish/clear) carries the traffic. The global
  // table hashes every thread over one shared slot array, so at 2+ sockets
  // its slot lines ping-pong across sockets under either ownership model;
  // the sharded table confines each socket's readers to socket-local slot
  // lines and the writer's drain to one summary line per clean shard.
  // g_costs.ownership is process-global, so each model gets its own
  // drained batch. The first-seed 1-socket rows are collected per model:
  // home-directory prices only cross-socket sharing, so on one socket it
  // must reproduce the migratory rows byte for byte.
  const int bt = smoke ? 8 : 32;
  HashmapFigParams bp = p;
  bp.update_ratio = 0.02;
  // Short read sections (one lookup, ~8-node chains): the data-line cost is
  // identical across table layouts, so shrinking it makes the slot-line
  // traffic — the thing the layouts differ in — first-order instead of
  // noise under the long-chain figure geometry.
  bp.lookups_per_read = 1;
  bp.buckets = 4096;
  std::vector<NumaPoint> bravo;
  bravo.reserve(sockets.size() * 2 * 2);
  std::string bravo_rows[2];  // [0]=migratory, [1]=home-directory, 1-socket
  {
    const CostModel::OwnershipModel def_model = g_costs.ownership;
    for (const int mi : {0, 1}) {
      g_costs.ownership =
          mi == 0 ? CostModel::kMigratory : CostModel::kHomeDirectory;
      const char* model = mi == 0 ? "migratory" : "home-directory";
      std::string* id_rows = &bravo_rows[mi];
      Runner runner(jobs);
      for (const int s : sockets) {
        for (const bool sharded : {false, true}) {
          bravo.emplace_back();
          NumaPoint& pt = bravo.back();
          pt.sockets = s;
          pt.threads = bt;
          pt.lock = sharded ? "bravo-sharded" : "bravo-global";
          pt.model = model;
          for (const std::uint64_t seed : seeds) {
            std::function<void(const std::string&)> out;
            if (s == 1 && seed == seeds.front())
              out = [id_rows](const std::string& r) { *id_rows += r; };
            bravo_run(runner, m, bp, s, bt, sharded, seed, out,
                      [&pt](const NumaRun& r) { pt.runs.push_back(r); });
          }
        }
      }
      runner.drain();
    }
    g_costs.ownership = def_model;
  }
  const bool bravo_identity = bravo_rows[0] == bravo_rows[1];
  std::printf("\n%-14s %-14s %2s | %12s | %14s\n", "bravo table", "model",
              "s", "mean tx/s", "scan cyc/scan");
  for (const NumaPoint& pt : bravo) {
    std::printf("%-14s %-14s %2d | %12.4e | %14.1f\n", pt.lock.c_str(),
                pt.model.c_str(), pt.sockets, pt.mean_tx_s(),
                pt.mean_scan_cycles_per_scan());
  }
  std::printf("1-socket home-directory rows identical to migratory: %s\n",
              bravo_identity ? "yes" : "NO — MODEL NOT A 1-SOCKET NO-OP");
  bool bravo_wins = true;
  for (const NumaPoint& g : bravo) {
    if (g.lock != "bravo-global" || g.sockets < 2) continue;
    for (const NumaPoint& sh : bravo) {
      if (sh.lock == "bravo-sharded" && sh.sockets == g.sockets &&
          sh.model == g.model && sh.mean_tx_s() < g.mean_tx_s())
        bravo_wins = false;
    }
  }
  std::printf(
      "sharded bravo beats global at >=2 sockets, both models:  %s\n",
      bravo_wins ? "yes" : "no");

  // Acceptance summary over the multi-socket points at 32+ threads. The
  // scan-reduction check additionally requires ceil(threads/8) > sockets:
  // when the flat scan covers every thread in no more lines than there are
  // socket summaries, the two read sets tie by construction and there is
  // nothing to reduce (e.g. 32 threads on 4 sockets: 4 lines either way).
  bool scan_reduced = true;
  bool crossover = true;
  bool any_32t = false;
  for (const int s : sockets) {
    if (s < 2) continue;
    for (const int n : threads) {
      if (n < 32) continue;
      const NumaPoint* flat = find(points, s, n, "flat");
      const NumaPoint* shard = find(points, s, n, "sharded");
      if (flat == nullptr || shard == nullptr) continue;
      any_32t = true;
      const int flat_lines = (n + 7) / 8;
      if (flat_lines > s &&
          shard->mean_scan_cycles() > flat->mean_scan_cycles())
        scan_reduced = false;
      if (shard->mean_tx_s() < flat->mean_tx_s()) crossover = false;
    }
  }
  std::printf("\nsharded scan cheaper at >=2 sockets, 32+ threads: %s\n",
              any_32t ? (scan_reduced ? "yes" : "no") : "n/a (smoke)");
  std::printf("sharded beats flat at >=2 sockets, 32+ threads:   %s\n",
              any_32t ? (crossover ? "yes" : "no") : "n/a (smoke)");

  JsonWriter j;
  j.begin_object();
  j.key("bench").value("fig_numa_scaling");
  j.key("machine").value(m.name);
  j.key("smoke").value(smoke);
  j.key("measure_cycles").value(p.measure_cycles);
  j.key("seeds").begin_array();
  for (const std::uint64_t s : seeds) j.value(s);
  j.end_array();
  j.key("costs").begin_object();
  j.key("remote_socket").value(g_costs.remote_socket);
  j.key("remote_cross").value(g_costs.remote_cross);
  j.end_object();
  j.key("outputs_identical").value(identical);
  j.key("points").begin_array();
  for (const NumaPoint& pt : points) json_point(j, pt);
  j.end_array();
  j.key("sensitivity").begin_array();
  for (const NumaPoint& pt : sens) json_point(j, pt);
  j.end_array();
  j.key("bravo_points").begin_array();
  for (const NumaPoint& pt : bravo) json_point(j, pt);
  j.end_array();
  j.key("scan_reduced_at_multi_socket").value(any_32t ? scan_reduced : true);
  j.key("sharded_beats_flat_at_32t").value(any_32t ? crossover : true);
  j.key("bravo_identity_1socket").value(bravo_identity);
  j.key("bravo_sharded_beats_global").value(bravo_wins);
  j.end_object();
  if (!j.write_file("BENCH_numa.json")) {
    std::fprintf(stderr, "failed to write BENCH_numa.json\n");
    return 2;
  }
  std::printf("wrote BENCH_numa.json\n");
  return identical && bravo_identity && bravo_wins ? 0 : 1;
}

}  // namespace
}  // namespace sprwl::bench

int main(int argc, char** argv) { return sprwl::bench::run(argc, argv); }
