// Tail latency under open-loop overload — deadline-aware acquisition plus
// admission control (DESIGN.md §13).
//
// The figure benches measure closed-loop throughput, where offered load can
// never exceed capacity. This bench drives the locks open-loop: a seeded
// Poisson/bursty arrival stream at 0.8x–3x of each lock's *measured*
// sustainable service rate, served by a fixed fiber pool. Two operating
// modes per point:
//
//   admission off — untimed acquisitions, every arrival is served. Under
//     overload the backlog (and with it sojourn time) grows without bound:
//     doubling the horizon at 2x load visibly inflates p999.
//   admission on  — bounded queue: arrivals are shed once the backlog or
//     their queue delay exceeds the bound, and dispatched requests acquire
//     with a deadline (try_read_for / try_write_for), so sojourn stays
//     bounded at the cost of a nonzero shed/timeout rate — graceful
//     degradation instead of collapse.
//
// A storm regime composes the overload with a fault::FaultPlan interrupt
// storm (spurious HTM aborts), the adversarial case for the speculation-
// based locks. Results land in BENCH_tail.json; --smoke runs a reduced
// sweep and enforces the acceptance properties (bounded p999 + nonzero
// shed with admission on; p999 growth across horizons with it off),
// exiting nonzero on violation.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/support/bench_common.h"
#include "common/costs.h"
#include "core/sprwl.h"
#include "fault/fault.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "locks/deadline.h"
#include "locks/phase_fair.h"
#include "locks/posix_rwlock.h"
#include "locks/tle.h"
#include "sim/arrivals.h"
#include "sim/simulator.h"

namespace sprwl::bench {
namespace {

constexpr int kServers = 8;
constexpr std::size_t kCells = 4;
constexpr std::uint64_t kReaderWork = 600;
constexpr std::uint64_t kWriterWork = 300;

struct alignas(64) Cell {
  htm::Shared<std::uint64_t> v;
};

struct Params {
  std::size_t requests = 4000;
  double writer_fraction = 0.1;
  std::uint64_t seed = 42;
};

struct PointResult {
  sim::OpenLoopStats stats;
  double offered_rate = 0;  // requests per cycle
  std::uint64_t budget = 0;
  std::uint64_t queue_bound = 0;
};

/// One open-loop run of `reqs` over a fresh lock instance.
template <class MakeLock>
PointResult run_point(MakeLock&& make_lock, const std::vector<sim::Request>& reqs,
                      const sim::AdmissionConfig& adm, std::uint64_t budget,
                      const fault::FaultPlan* plan) {
  std::vector<Cell> cells(kCells);
  htm::Engine engine;
  auto lock = make_lock(kServers);
  sim::Simulator sim;
  htm::EngineScope escope(engine);
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<fault::FaultScope> fscope;
  if (plan != nullptr) {
    injector = std::make_unique<fault::FaultInjector>(*plan, &sim, &engine);
    fscope = std::make_unique<fault::FaultScope>(*injector);
  }

  const auto read_body = [&] {
    fault::checkpoint(fault::InjectPoint::kReadBody);
    const std::uint64_t a = cells[0].v.load();
    platform::advance(kReaderWork);
    for (std::size_t c = 1; c < kCells; ++c) (void)cells[c].v.load();
    (void)a;
  };
  const auto write_body = [&] {
    fault::checkpoint(fault::InjectPoint::kWriteBody);
    const std::uint64_t v = cells[0].v.load() + 1;
    platform::advance(kWriterWork);
    for (std::size_t c = 0; c < kCells; ++c) cells[c].v.store(v);
  };

  PointResult pr;
  pr.budget = budget;
  pr.queue_bound = adm.max_queue_delay;
  pr.stats = sim::run_open_loop(
      sim, kServers, reqs, adm,
      [&](const sim::Request& rq, int /*tid*/) -> locks::AcquireResult {
        if (budget == 0) {  // untimed service (admission-off mode)
          if (rq.is_write) {
            lock->write(1, write_body);
          } else {
            lock->read(0, read_body);
          }
          return locks::AcquireResult::kAcquired;
        }
        return rq.is_write ? lock->try_write_for(1, budget, write_body)
                           : lock->try_read_for(0, budget, read_body);
      });
  return pr;
}

/// Sustainable service rate: every request is present at t=0 (a saturated
/// batch), admission off — served/final_time is the rate the pool can
/// actually sustain on this lock, contention included.
template <class MakeLock>
double calibrate_rate(MakeLock&& make_lock, const Params& p) {
  Rng rng(p.seed ^ 0x5bd1e995);
  std::vector<sim::Request> reqs(p.requests / 4);
  for (auto& r : reqs) r = sim::Request{0, rng.next_bool(p.writer_fraction)};
  sim::AdmissionConfig adm;
  adm.enabled = false;
  const PointResult pr = run_point(make_lock, reqs, adm, 0, nullptr);
  return pr.stats.final_time
             ? static_cast<double>(pr.stats.served()) /
                   static_cast<double>(pr.stats.final_time)
             : 0.0;
}

struct Row {
  std::string lock;
  std::string process;
  std::string regime;
  double multiplier = 0;
  bool admission = false;
  std::size_t requests = 0;
  PointResult pr;
};

void print_rows(const std::vector<Row>& rows) {
  std::printf(
      "%-10s %-7s %-5s %4s %3s %6s | %8s | %9s %9s %9s | %6s %6s %6s | %9s\n",
      "lock", "process", "storm", "mult", "adm", "reqs", "goodput",
      "rd-p50", "rd-p99", "rd-p999", "to%", "rshed%", "wshed%", "wr-p99");
  for (const Row& r : rows) {
    const sim::ClassStats& rd = r.pr.stats.readers;
    const sim::ClassStats& wr = r.pr.stats.writers;
    const double offered =
        static_cast<double>(rd.offered + wr.offered);
    const double to_pct =
        offered > 0
            ? 100.0 * static_cast<double>(rd.timeouts + wr.timeouts) / offered
            : 0;
    // Shed rates per class: the per-class admission bounds exist exactly so
    // these two columns diverge under overload (readers shed first).
    const double rshed_pct =
        rd.offered > 0
            ? 100.0 * static_cast<double>(rd.shed) /
                  static_cast<double>(rd.offered)
            : 0;
    const double wshed_pct =
        wr.offered > 0
            ? 100.0 * static_cast<double>(wr.shed) /
                  static_cast<double>(wr.offered)
            : 0;
    std::printf(
        "%-10s %-7s %-5s %4.1f %3s %6zu | %8.2e | %9llu %9llu %9llu | %6.1f "
        "%6.1f %6.1f | %9llu\n",
        r.lock.c_str(), r.process.c_str(), r.regime.c_str(), r.multiplier,
        r.admission ? "on" : "off", r.requests,
        r.pr.stats.goodput(r.pr.stats.final_time),
        static_cast<unsigned long long>(rd.sojourn.quantile(0.50)),
        static_cast<unsigned long long>(rd.sojourn.quantile(0.99)),
        static_cast<unsigned long long>(rd.sojourn.quantile(0.999)), to_pct,
        rshed_pct, wshed_pct,
        static_cast<unsigned long long>(wr.sojourn.quantile(0.99)));
  }
}

void json_class(JsonWriter& j, const char* name, const sim::ClassStats& c) {
  j.key(name).begin_object();
  j.key("offered").value(c.offered);
  j.key("completed").value(c.completed);
  j.key("timeouts").value(c.timeouts);
  j.key("shed").value(c.shed);
  j.key("sojourn_p50").value(c.sojourn.quantile(0.50));
  j.key("sojourn_p99").value(c.sojourn.quantile(0.99));
  j.key("sojourn_p999").value(c.sojourn.quantile(0.999));
  j.key("sojourn_mean").value(c.sojourn.mean());
  j.key("queue_delay_p99").value(c.queue_delay.quantile(0.99));
  j.end_object();
}

void write_json(const std::vector<Row>& rows, bool acceptance_ok,
                bool smoke) {
  JsonWriter j;
  j.begin_object();
  j.key("bench").value("fig_tail_latency");
  j.key("smoke").value(smoke);
  j.key("acceptance_ok").value(acceptance_ok);
  j.key("servers").value(kServers);
  j.key("rows").begin_array();
  for (const Row& r : rows) {
    j.begin_object();
    j.key("lock").value(r.lock);
    j.key("process").value(r.process);
    j.key("regime").value(r.regime);
    j.key("multiplier").value(r.multiplier);
    j.key("admission").value(r.admission);
    j.key("requests").value(static_cast<std::uint64_t>(r.requests));
    j.key("offered_rate").value(r.pr.offered_rate);
    j.key("deadline_budget").value(r.pr.budget);
    j.key("queue_bound").value(r.pr.queue_bound);
    j.key("goodput").value(r.pr.stats.goodput(r.pr.stats.final_time));
    j.key("final_time").value(r.pr.stats.final_time);
    json_class(j, "readers", r.pr.stats.readers);
    json_class(j, "writers", r.pr.stats.writers);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  if (j.write_file("BENCH_tail.json")) std::printf("\nwrote BENCH_tail.json\n");
}

template <class MakeLock>
void sweep_lock(const char* name, MakeLock&& make_lock, const Params& p,
                bool smoke, std::vector<Row>& rows, bool& acceptance_ok) {
  const double cap = calibrate_rate(make_lock, p);
  if (cap <= 0) {
    std::printf("%s: calibration failed\n", name);
    acceptance_ok = false;
    return;
  }
  const double mean_service = static_cast<double>(kServers) / cap;
  const auto budget = static_cast<std::uint64_t>(6.0 * mean_service);
  sim::AdmissionConfig adm_on;
  adm_on.enabled = true;
  adm_on.max_backlog = 4 * kServers;
  adm_on.max_queue_delay = static_cast<std::uint64_t>(60.0 * mean_service);
  // Per-class policy: shed analytical readers first. Readers get half the
  // writers' backlog depth and queue-delay bound, so under overload the
  // retryable scans absorb the shedding while updates keep landing.
  adm_on.reader_max_backlog = 2 * kServers;
  adm_on.reader_max_queue_delay =
      static_cast<std::uint64_t>(30.0 * mean_service);
  sim::AdmissionConfig adm_off;
  adm_off.enabled = false;

  // The static sojourn ceiling admission control must enforce: a dispatched
  // request waited at most queue-bound and holds the lock path for at most
  // its deadline budget plus one section; 4x slack absorbs scheduling.
  const std::uint64_t p999_cap =
      4 * (adm_on.max_queue_delay + budget + kReaderWork + kWriterWork);

  const std::vector<double> mults =
      smoke ? std::vector<double>{0.8, 2.0}
            : std::vector<double>{0.8, 1.2, 2.0, 3.0};

  for (const double mult : mults) {
    for (const auto process :
         {sim::ArrivalProcess::kPoisson, sim::ArrivalProcess::kBursty,
          sim::ArrivalProcess::kDiurnal}) {
      if (process != sim::ArrivalProcess::kPoisson && mult != 2.0) continue;
      sim::ArrivalConfig acfg;
      acfg.process = process;
      acfg.rate = mult * cap;
      acfg.count = p.requests;
      acfg.writer_fraction = p.writer_fraction;
      acfg.seed = p.seed;
      if (process == sim::ArrivalProcess::kDiurnal) {
        // Four day/night swings per run: peaks at 1.8x the (already 2x)
        // mean rate, troughs at 0.2x — overload pulses with recovery
        // windows, the shape admission control degrades most gracefully on.
        acfg.diurnal_period = static_cast<std::uint64_t>(
            static_cast<double>(p.requests) / acfg.rate / 4.0);
        acfg.diurnal_amplitude = 0.8;
      }
      const std::vector<sim::Request> reqs = sim::generate_arrivals(acfg);

      for (const bool admission : {true, false}) {
        // Horizon growth probe: the admission-off overload point runs twice
        // the horizon too, to expose unbounded backlog growth.
        std::vector<std::size_t> sizes{p.requests};
        if (!admission && mult >= 2.0 &&
            process == sim::ArrivalProcess::kPoisson) {
          sizes.push_back(2 * p.requests);
        }
        for (const std::size_t n : sizes) {
          std::vector<sim::Request> run_reqs = reqs;
          if (n != reqs.size()) {
            sim::ArrivalConfig big = acfg;
            big.count = n;
            run_reqs = sim::generate_arrivals(big);
          }
          for (const bool storm : {false, true}) {
            if (storm && (mult != 2.0 || !admission || n != p.requests ||
                          process != sim::ArrivalProcess::kPoisson)) {
              continue;
            }
            fault::FaultPlan plan;
            const fault::FaultPlan* pplan = nullptr;
            if (storm) {
              plan.seed = p.seed;
              plan.storm.from = 0;
              // The triangular ramp peaks mid-window; span the run so the
              // peak actually lands inside it.
              plan.storm.until = static_cast<std::uint64_t>(
                  1.2 * static_cast<double>(n) / acfg.rate);
              plan.storm.peak_rate = 0.6;
              fault::SyscallSpec sys;  // a syscalling reader defeats elision
              sys.tid = 1;
              plan.syscalls.push_back(sys);
              pplan = &plan;
            }
            Row row;
            row.lock = name;
            row.process = process == sim::ArrivalProcess::kPoisson ? "poisson"
                          : process == sim::ArrivalProcess::kBursty
                              ? "bursty"
                              : "diurnal";
            row.regime = storm ? "storm" : "none";
            row.multiplier = mult;
            row.admission = admission;
            row.requests = n;
            row.pr = run_point(make_lock, run_reqs,
                               admission ? adm_on : adm_off,
                               admission ? budget : 0, pplan);
            row.pr.offered_rate = acfg.rate;
            rows.push_back(std::move(row));
          }
        }
      }
    }
  }

  // --- acceptance: graceful shedding vs unbounded growth -------------------
  const auto find = [&](double mult, bool adm, std::size_t n,
                        const char* process) -> const Row* {
    for (const Row& r : rows) {
      if (r.lock == name && r.multiplier == mult && r.admission == adm &&
          r.requests == n && r.process == process && r.regime == "none") {
        return &r;
      }
    }
    return nullptr;
  };
  const Row* on2 = find(2.0, true, p.requests, "poisson");
  const Row* off2 = find(2.0, false, p.requests, "poisson");
  const Row* off2_long = find(2.0, false, 2 * p.requests, "poisson");
  const Row* diurnal_on = find(2.0, true, p.requests, "diurnal");
  if (on2 == nullptr || off2 == nullptr || off2_long == nullptr ||
      diurnal_on == nullptr) {
    std::printf("%s: missing acceptance rows\n", name);
    acceptance_ok = false;
    return;
  }
  const std::uint64_t shed =
      on2->pr.stats.readers.shed + on2->pr.stats.writers.shed;
  const std::uint64_t p999_on = std::max(
      on2->pr.stats.readers.sojourn.quantile(0.999),
      on2->pr.stats.writers.sojourn.quantile(0.999));
  const std::uint64_t p999_off = off2->pr.stats.readers.sojourn.quantile(0.999);
  const std::uint64_t p999_off_long =
      off2_long->pr.stats.readers.sojourn.quantile(0.999);
  const bool bounded = p999_on <= p999_cap;
  const bool sheds = shed > 0;
  // Open-loop overload with no shedding: backlog grows with the horizon, so
  // doubling the request count must visibly inflate the tail.
  const bool grows =
      static_cast<double>(p999_off_long) > 1.3 * static_cast<double>(p999_off);
  // Per-class policy: readers sit on tighter bounds than writers, so at the
  // overload point the reader class must shed at a rate >= the writers'.
  const sim::ClassStats& rd2 = on2->pr.stats.readers;
  const sim::ClassStats& wr2 = on2->pr.stats.writers;
  const double rshed_rate =
      rd2.offered ? static_cast<double>(rd2.shed) /
                        static_cast<double>(rd2.offered)
                  : 0;
  const double wshed_rate =
      wr2.offered ? static_cast<double>(wr2.shed) /
                        static_cast<double>(wr2.offered)
                  : 0;
  const bool readers_first = rshed_rate >= wshed_rate;
  // Diurnal acceptance: the overload pulses (peaks at 3.6x capacity) must
  // force shedding, yet the same static sojourn ceiling holds — the trough
  // phases are recovery windows, not an excuse for a looser bound.
  const std::uint64_t diurnal_p999 =
      std::max(diurnal_on->pr.stats.readers.sojourn.quantile(0.999),
               diurnal_on->pr.stats.writers.sojourn.quantile(0.999));
  const std::uint64_t diurnal_shed = diurnal_on->pr.stats.readers.shed +
                                     diurnal_on->pr.stats.writers.shed;
  const bool diurnal_ok = diurnal_p999 <= p999_cap && diurnal_shed > 0;
  std::printf(
      "%s diurnal @2.0x: p999(adm on)=%llu (cap %llu) shed=%llu  [%s]\n",
      name, static_cast<unsigned long long>(diurnal_p999),
      static_cast<unsigned long long>(p999_cap),
      static_cast<unsigned long long>(diurnal_shed),
      diurnal_ok ? "ok" : "FAIL");
  if (!diurnal_ok) acceptance_ok = false;
  std::printf(
      "%s acceptance @2.0x: p999(adm on)=%llu (cap %llu) shed=%llu "
      "(rd %.1f%% wr %.1f%%) p999(adm off)=%llu -> %llu over 2x horizon  "
      "[%s]\n",
      name, static_cast<unsigned long long>(p999_on),
      static_cast<unsigned long long>(p999_cap),
      static_cast<unsigned long long>(shed), 100.0 * rshed_rate,
      100.0 * wshed_rate, static_cast<unsigned long long>(p999_off),
      static_cast<unsigned long long>(p999_off_long),
      bounded && sheds && grows && readers_first ? "ok" : "FAIL");
  if (!(bounded && sheds && grows && readers_first)) acceptance_ok = false;
}

}  // namespace
}  // namespace sprwl::bench

int main(int argc, char** argv) {
  using namespace sprwl::bench;
  const Args args = Args::parse(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  Params p;
  p.seed = args.seed;
  if (smoke) p.requests = 600;
  if (args.full) p.requests = 12000;

  std::printf(
      "Tail latency under open-loop overload (%zu requests, %d servers, "
      "seed %llu)%s\n\n",
      p.requests, kServers, static_cast<unsigned long long>(p.seed),
      smoke ? " (smoke)" : "");

  std::vector<Row> rows;
  bool acceptance_ok = true;
  sweep_lock(
      "SpRWL",
      [](int threads) {
        sprwl::core::Config cfg;
        cfg.max_threads = threads;
        return std::make_unique<sprwl::core::SpRWLock>(cfg);
      },
      p, smoke, rows, acceptance_ok);
  sweep_lock(
      "TLE",
      [](int threads) {
        sprwl::locks::TLELock::Config cfg;
        cfg.max_threads = threads;
        return std::make_unique<sprwl::locks::TLELock>(cfg);
      },
      p, smoke, rows, acceptance_ok);
  sweep_lock(
      "RWL",
      [](int threads) {
        return std::make_unique<sprwl::locks::PosixRWLock>(threads);
      },
      p, smoke, rows, acceptance_ok);
  sweep_lock(
      "PhaseFair",
      [](int threads) {
        return std::make_unique<sprwl::locks::PhaseFairRWLock>(threads);
      },
      p, smoke, rows, acceptance_ok);

  std::printf("\n");
  print_rows(rows);
  write_json(rows, acceptance_ok, smoke);
  std::printf("acceptance: %s\n", acceptance_ok ? "OK" : "VIOLATED");
  return acceptance_ok ? 0 : 1;
}
