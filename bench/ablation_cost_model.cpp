// Ablation — cost-model sensitivity. The virtual-time simulator charges
// per-access cycle costs from common/costs.h; the claim in DESIGN.md is
// that the paper's *qualitative* results (who wins, by roughly what factor)
// are stable under +/-2x changes of those constants. This bench runs the
// core Fig. 3 comparison (TLE vs RWL vs SpRWL, 10% updates, long readers)
// at cost scales 0.5x, 1x and 2x.
//
// The SpRWL-lin row runs SpRWL with the commit-time reader scan in its
// word-at-a-time form (batched_reader_scan = false): the batched scan reads
// whole 64-byte lines of state flags, so a writer charges ceil(T/8) loads
// instead of T inside its commit transaction — this row quantifies what
// that batching is worth (and shows the qualitative picture is unchanged).
#include <cstdio>

#include "bench/support/hashmap_fig.h"

namespace sprwl::bench {
namespace {

void scale_costs(double s) {
  CostModel c;  // defaults
  c.load = static_cast<std::uint64_t>(c.load * s);
  c.store = static_cast<std::uint64_t>(c.store * s);
  c.cas = static_cast<std::uint64_t>(c.cas * s);
  c.fence = static_cast<std::uint64_t>(c.fence * s);
  c.pause = static_cast<std::uint64_t>(c.pause * s);
  c.tx_begin = static_cast<std::uint64_t>(c.tx_begin * s);
  c.tx_commit = static_cast<std::uint64_t>(c.tx_commit * s);
  c.tx_abort = static_cast<std::uint64_t>(c.tx_abort * s);
  c.contention_unit = static_cast<std::uint64_t>(c.contention_unit * s);
  g_costs = c;
}

void run(const Args& args) {
  const Machine m = broadwell_machine();
  const int threads = args.full ? 56 : 28;

  Runner runner;
  for (const double scale : {0.5, 1.0, 2.0}) {
    // g_costs is process-global and read by every point: the barrier keeps
    // each scale's points from seeing the next scale's constants.
    runner.drain();
    scale_costs(scale);
    HashmapFigParams p = machine_params(m, args);
    p.lookups_per_read = 10;
    p.update_ratio = 0.10;
    runner.submit({}, [scale, threads] {
      std::printf("\n--- cost scale x%.1f | %d threads | 10%% updates ---\n",
                  scale, threads);
      print_series_header();
    });
    hashmap_series(runner, "TLE", m, p, {threads}, make_tle());
    hashmap_series(runner, "RWL", m, p, {threads}, make_rwl());
    hashmap_series(runner, "SpRWL", m, p, {threads}, make_sprwl());
    hashmap_series(runner, "SpRWL-lin", m, p, {threads},
                   make_sprwl(core::SchedulingVariant::kFull, false,
                              /*batched_scan=*/false));
  }
  runner.drain();
  g_costs = CostModel{};  // restore defaults
}

}  // namespace
}  // namespace sprwl::bench

int main(int argc, char** argv) {
  sprwl::bench::run(sprwl::bench::Args::parse(argc, argv));
  return 0;
}
