// Figure 3 — hash map, readers execute 10 lookups (exceeding HTM capacity),
// writers execute 1 insert/delete. Sweeps 10/50/90% updates over the thread
// counts of the paper's Broadwell and POWER8 machines and prints, for every
// lock, the throughput plus the abort and commit-mode breakdowns and mean
// reader/writer latencies — the five panels of the figure.
//
// Expected shape (paper): SpRWL scales and beats TLE by up to 16x/8x at
// 10% updates (TLE's long readers capacity-abort into the global lock);
// still ahead at 50%, narrower at 90%. RW-LE (POWER8) tracks SpRWL at low
// thread counts, then collapses under writer quiescence. Pessimistic locks
// stay flat.
//
// Data points run in parallel across SPRWL_BENCH_JOBS OS threads (default:
// hardware concurrency); output is byte-identical to a serial run.
#include <cstdio>

#include "bench/support/fig34_suites.h"

int main(int argc, char** argv) {
  using namespace sprwl::bench;
  const Args args = Args::parse(argc, argv);
  std::printf("Fig. 3 — hashmap, long readers (10 lookups/read CS)\n");
  Runner runner;
  fig3_suite(runner, args);
  runner.drain();
  return 0;
}
