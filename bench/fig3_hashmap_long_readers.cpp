// Figure 3 — hash map, readers execute 10 lookups (exceeding HTM capacity),
// writers execute 1 insert/delete. Sweeps 10/50/90% updates over the thread
// counts of the paper's Broadwell and POWER8 machines and prints, for every
// lock, the throughput plus the abort and commit-mode breakdowns and mean
// reader/writer latencies — the five panels of the figure.
//
// Expected shape (paper): SpRWL scales and beats TLE by up to 16x/8x at
// 10% updates (TLE's long readers capacity-abort into the global lock);
// still ahead at 50%, narrower at 90%. RW-LE (POWER8) tracks SpRWL at low
// thread counts, then collapses under writer quiescence. Pessimistic locks
// stay flat.
#include <cstdio>

#include "bench/support/hashmap_fig.h"

namespace sprwl::bench {
namespace {

void run_machine(const Machine& m, const Args& args) {
  HashmapFigParams p = machine_params(m, args);
  p.lookups_per_read = 10;
  const std::vector<int>& threads = m.threads(args.full);
  const bool is_power8 = std::string(m.name) == "power8";

  for (const double updates : {0.10, 0.50, 0.90}) {
    p.update_ratio = updates;
    std::printf("\n--- fig3 | %s | %.0f%% updates | readers = 10 lookups ---\n",
                m.name, updates * 100);
    print_series_header();
    hashmap_series("TLE", m, p, threads, make_tle());
    hashmap_series("RWL", m, p, threads, make_rwl());
    hashmap_series("BRLock", m, p, threads, make_brlock());
    if (is_power8) hashmap_series("RW-LE", m, p, threads, make_rwle());
    hashmap_series("SpRWL", m, p, threads, make_sprwl());
  }
}

}  // namespace
}  // namespace sprwl::bench

int main(int argc, char** argv) {
  using namespace sprwl::bench;
  const Args args = Args::parse(argc, argv);
  std::printf("Fig. 3 — hashmap, long readers (10 lookups/read CS)\n");
  if (args.want_profile("broadwell")) run_machine(broadwell_machine(), args);
  if (args.want_profile("power8")) run_machine(power8_machine(), args);
  return 0;
}
