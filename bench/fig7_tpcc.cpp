// Figure 7 — TPC-C with the paper's mix (Stock-Level 31%, Delivery 4%,
// Order-Status 4%, Payment 43%, New-Order 18%), every transaction executed
// as a critical section of one global RWLock, warehouses = the maximum
// thread count of the sweep.
//
// Expected shape (paper): despite only 35% read-only transactions, SpRWL
// wins up to 4x (Broadwell) / 2x (POWER8) over the best baseline, because
// ~70% of update transactions commit in HTM while long Stock-Level readers
// run uninstrumented. TLE cannot elide Stock-Level; RW-LE pays quiescence
// in writer latency; SNZI helps on POWER8 (smaller writer footprint) and
// hurts on Broadwell.
//
// Data points (including database population) run in parallel across
// SPRWL_BENCH_JOBS OS threads; output is byte-identical to a serial run.
#include <cstdio>
#include <memory>

#include "bench/support/bench_common.h"
#include "bench/support/runner.h"
#include "core/sprwl.h"
#include "locks/brlock.h"
#include "locks/posix_rwlock.h"
#include "locks/rwle.h"
#include "locks/tle.h"
#include "sim/simulator.h"
#include "tpcc/tpcc_driver.h"

namespace sprwl::bench {
namespace {

tpcc::Scale bench_scale(int warehouses, int max_threads, std::uint64_t seed) {
  tpcc::Scale s;
  s.warehouses = warehouses;
  s.districts_per_warehouse = 10;
  s.customers_per_district = 300;
  s.items = 5000;
  s.order_ring = 128;
  s.max_threads = max_threads;
  s.history_per_thread = 4096;
  s.seed = seed;
  return s;
}

/// make_lock(threads) must own its captures (copied into the pool task).
template <class MakeLock>
void tpcc_series(Runner& runner, const char* lock_name, const Machine& m,
                 const Args& args, const std::vector<int>& threads,
                 int warehouses, MakeLock make_lock) {
  for (const int n : threads) {
    auto point = std::make_shared<tpcc::TpccRunResult>();
    runner.submit(
        [point, m, args, n, warehouses, make_lock] {
          htm::EngineConfig ec;
          ec.capacity = m.capacity_at(n);
          ec.max_threads = n;
          ec.seed = args.seed;
          htm::Engine engine(ec);
          // Fresh database per point, as the paper restarts runs.
          tpcc::Database db(bench_scale(warehouses, n, args.seed));
          db.populate();
          auto lock = make_lock(n);
          tpcc::TpccDriverConfig dc;
          dc.threads = n;
          dc.seed = args.seed;
          dc.warmup_cycles = 300'000;
          dc.measure_cycles = args.measure_cycles != 0 ? args.measure_cycles
                              : args.full              ? 8'000'000
                                                       : 3'000'000;
          sim::Simulator sim;
          *point = run_tpcc(sim, engine, *lock, db, dc);
        },
        [point, lock_name = std::string(lock_name), n] {
          const Breakdown b = make_breakdown(point->engine_stats,
                                             point->lock_stats,
                                             point->reader_aborts);
          print_series_row(lock_name.c_str(), n, point->throughput_tx_s(), b,
                           point->read_latency.mean(),
                           point->write_latency.mean());
        });
  }
}

void run_machine(Runner& runner, const Machine& m, const Args& args) {
  const std::vector<int>& threads = m.threads(args.full);
  const int warehouses = threads.back();  // paper: warehouses = max threads
  const bool is_power8 = std::string(m.name) == "power8";
  runner.submit({}, [name = std::string(m.name), warehouses] {
    std::printf("\n--- fig7 | %s | warehouses = %d ---\n", name.c_str(),
                warehouses);
    print_series_header();
  });
  tpcc_series(runner, "TLE", m, args, threads, warehouses, [](int n) {
    locks::TLELock::Config c;
    c.max_threads = n;
    return std::make_unique<locks::TLELock>(c);
  });
  tpcc_series(runner, "RWL", m, args, threads, warehouses,
              [](int n) { return std::make_unique<locks::PosixRWLock>(n); });
  tpcc_series(runner, "BRLock", m, args, threads, warehouses,
              [](int n) { return std::make_unique<locks::BRLock>(n); });
  if (is_power8) {
    tpcc_series(runner, "RW-LE", m, args, threads, warehouses, [](int n) {
      locks::RWLELock::Config c;
      c.max_threads = n;
      return std::make_unique<locks::RWLELock>(c);
    });
  }
  tpcc_series(runner, "SpRWL", m, args, threads, warehouses, [](int n) {
    return std::make_unique<core::SpRWLock>(
        core::Config::variant(core::SchedulingVariant::kFull, n));
  });
  tpcc_series(runner, "SNZI", m, args, threads, warehouses, [](int n) {
    core::Config c = core::Config::variant(core::SchedulingVariant::kFull, n);
    c.use_snzi = true;
    return std::make_unique<core::SpRWLock>(c);
  });
}

}  // namespace
}  // namespace sprwl::bench

int main(int argc, char** argv) {
  using namespace sprwl::bench;
  const Args args = Args::parse(argc, argv);
  std::printf(
      "Fig. 7 — TPC-C (SL 31%% / D 4%% / OS 4%% / P 43%% / NO 18%%), one "
      "global RWLock\n");
  Runner runner;
  if (args.want_profile("broadwell")) run_machine(runner, broadwell_machine(), args);
  if (args.want_profile("power8")) run_machine(runner, power8_machine(), args);
  runner.drain();
  return 0;
}
