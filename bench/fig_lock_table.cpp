// Million-lock scale-out bench (ROADMAP: lock-table workload; DESIGN.md
// §12): per-key SpRWL instances over a zipfian key-value table, comparing
// reader-tracking strategies where the *lock's own* footprint and cold-path
// cost dominate:
//
//   bravo     Config::bravo_bias — global visible-readers table, per-lock
//             O(1)-word shell, lazily allocated tracking plane;
//   flat      default SpRWL (lazy plane, per-thread flag scan);
//   sharded   Config::socket_sharded_tracking (per-socket summaries);
//   snzi      Config::use_snzi (tree-tracked readers).
//
// All variants run with reader_htm_first=false: the comparison is the cost
// of reader REGISTRATION, and the HTM fast path would bypass registration
// entirely for the tiny read sections used here.
//
// Sections, all landing in BENCH_bravo.json:
//
//   footprint   bytes/lock at table scale (1M keys, 16K under --smoke)
//               after a traffic window, for bravo and flat, against the
//               eager baseline (one flat lock with its plane forced — what
//               every lock cost before lazy allocation). Acceptance:
//               eager >= 10x bravo bytes/lock at 1M keys.
//   throughput  variants x update ratios x seeds at high thread count,
//               seed-averaged, plus revocation latency (drain cycles per
//               revocation) for bravo. Acceptance: bravo read-mostly mean
//               throughput >= sharded at the sweep's thread count.
//   numa_2s     2-socket column: global vs. per-socket-sharded BRAVO slot
//               tables (bravo::Config::shard_by_socket) on a 2-socket
//               split with line-owner tracking live, read-mostly.
//   identity    bravo_bias=false with a ReaderTable *present* must emit
//               rows byte-identical to plain SpRWL — the bravo machinery
//               (bias word, lazy plane, table registration) is a strict
//               no-op when off. Exit status 1 if it is not.
//
// Per-point host wall time is recorded as `wall_ms` (Runner::submit_timed)
// and deliberately kept OUT of the identity-compared strings.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/support/bench_common.h"
#include "bench/support/json.h"
#include "bench/support/runner.h"
#include "core/bravo.h"
#include "workloads/lock_table.h"

namespace sprwl::bench {
namespace {

struct Params {
  std::uint64_t footprint_keys = std::uint64_t{1} << 20;
  std::uint64_t sweep_keys = std::uint64_t{1} << 16;
  int sweep_threads = 64;
  int footprint_threads = 8;
  std::vector<double> update_ratios{0.001, 0.01, 0.1};
  std::vector<std::uint64_t> seeds{42, 7, 1234};
  std::uint64_t warmup_cycles = 200'000;
  std::uint64_t measure_cycles = 2'000'000;
};

core::Config variant_cfg(const std::string& name, int threads) {
  core::Config c = core::Config::variant(core::SchedulingVariant::kFull, threads);
  c.reader_htm_first = false;
  if (name == "bravo") {
    c.bravo_bias = true;
    bravo::ReaderTable::Config tc;
    tc.max_threads = threads;
    c.bravo_table = std::make_shared<bravo::ReaderTable>(tc);
  } else if (name == "bravo-2s" || name == "bravo-numa-2s") {
    // The 2-socket column: bias through a global slot array vs. per-socket
    // shards (bravo::Config::shard_by_socket), both on a 2-socket split.
    c.bravo_bias = true;
    c.topology = sim::Topology::split(threads, 2);
    bravo::ReaderTable::Config tc;
    tc.max_threads = threads;
    tc.topology = c.topology;
    tc.shard_by_socket = name == "bravo-numa-2s";
    c.bravo_table = std::make_shared<bravo::ReaderTable>(tc);
  } else if (name == "sharded") {
    c.socket_sharded_tracking = true;
    c.topology = sim::Topology::split(threads, 2);
  } else if (name == "snzi") {
    c.use_snzi = true;
  }  // "flat": defaults
  return c;
}

int table_bits_for(std::uint64_t keys) {
  // First-touch line ids: the engine's version table must cover the data
  // lines plus every touched lock's shell/plane lines. 4M entries is ample
  // for the 1M-key footprint run; the default 1M would alias.
  return keys >= (std::uint64_t{1} << 18) ? 22 : 20;
}

struct PointResult {
  workloads::LockTableRunResult run;
  double wall_ms = 0;
};

/// One (variant, keys, threads, update_ratio, seed) experiment; fully
/// self-contained, deterministic, parallelizable across pool threads.
workloads::LockTableRunResult run_point(const std::string& variant,
                                        std::uint64_t keys, int threads,
                                        double update_ratio,
                                        std::uint64_t seed,
                                        std::uint64_t warmup,
                                        std::uint64_t measure,
                                        const Machine& m,
                                        bool attach_unused_table = false,
                                        int sockets = 1) {
  htm::EngineConfig ec;
  ec.capacity = m.capacity_at(threads);
  ec.max_threads = threads;
  ec.seed = seed;
  ec.table_bits = table_bits_for(keys);
  if (sockets > 1) {
    // The 2-socket column runs with the coherence model live, so remote
    // slot-line traffic is actually priced.
    ec.topology = sim::Topology::split(threads, sockets);
    ec.track_line_owners = true;
  }
  htm::Engine engine(ec);
  workloads::LockTable::Config tc;
  tc.keys = keys;
  tc.lock = variant_cfg(variant, threads);
  if (attach_unused_table) {
    // Identity check: the table is present but bravo_bias stays false, so
    // nothing may ever consult it.
    bravo::ReaderTable::Config rc;
    rc.max_threads = threads;
    tc.lock.bravo_table = std::make_shared<bravo::ReaderTable>(rc);
  }
  workloads::LockTable table(tc);
  workloads::LockTableDriverConfig dc;
  dc.threads = threads;
  dc.update_ratio = update_ratio;
  dc.warmup_cycles = warmup;
  dc.measure_cycles = measure;
  dc.seed = seed;
  sim::Simulator sim;
  return run_lock_table(sim, engine, table, dc);
}

/// The deterministic per-run row used for printing AND the byte-identity
/// comparison — virtual-time results only, never wall time.
std::string format_point(const char* variant, int threads, double ur,
                         std::uint64_t seed,
                         const workloads::LockTableRunResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%-8s t=%-3d ur=%-6.3f seed=%-5llu | %10.3e tx/s | r=%llu "
                "w=%llu torn=%llu rdr-ab=%llu | bias=%llu rev=%llu reb=%llu\n",
                variant, threads, ur, static_cast<unsigned long long>(seed),
                r.throughput_tx_s(), static_cast<unsigned long long>(r.reads),
                static_cast<unsigned long long>(r.writes),
                static_cast<unsigned long long>(r.invariant_failures),
                static_cast<unsigned long long>(r.reader_aborts),
                static_cast<unsigned long long>(r.totals.bias_reads),
                static_cast<unsigned long long>(r.totals.revocations),
                static_cast<unsigned long long>(r.totals.rebias));
  return buf;
}

void json_run(JsonWriter& j, const std::string& variant, int threads,
              double ur, std::uint64_t seed, const PointResult& p) {
  const workloads::LockTableRunResult& r = p.run;
  j.begin_object();
  j.key("variant").value(variant);
  j.key("threads").value(threads);
  j.key("update_ratio").value(ur);
  j.key("seed").value(seed);
  j.key("tx_s").value(r.throughput_tx_s());
  j.key("reads").value(r.reads);
  j.key("writes").value(r.writes);
  j.key("invariant_failures").value(r.invariant_failures);
  j.key("reader_aborts").value(r.reader_aborts);
  j.key("read_latency_mean").value(r.read_latency.mean());
  j.key("write_latency_mean").value(r.write_latency.mean());
  j.key("bias_reads").value(r.totals.bias_reads);
  j.key("revocations").value(r.totals.revocations);
  j.key("revocation_latency").value(r.totals.revocation_latency());
  j.key("rebias").value(r.totals.rebias);
  j.key("locks_with_plane").value(r.totals.locks_with_plane);
  j.key("wall_ms").value(p.wall_ms);
  j.end_object();
}

int run(int argc, char** argv) {
  const Args args = Args::parse(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const Machine m = broadwell_machine();
  Params p;
  if (smoke) {
    p.footprint_keys = std::uint64_t{1} << 14;
    p.sweep_keys = std::uint64_t{1} << 12;
    p.sweep_threads = 8;
    p.update_ratios = {0.01};
    p.seeds = {42};
    p.warmup_cycles = 50'000;
    p.measure_cycles = 200'000;
  }
  if (args.measure_cycles != 0) p.measure_cycles = args.measure_cycles;
  const int jobs = Runner::jobs_from_env();
  std::printf("fig_lock_table — keys=%llu sweep_keys=%llu threads=%d "
              "measure=%llu jobs=%d%s\n",
              static_cast<unsigned long long>(p.footprint_keys),
              static_cast<unsigned long long>(p.sweep_keys), p.sweep_threads,
              static_cast<unsigned long long>(p.measure_cycles), jobs,
              smoke ? " (smoke)" : "");

  // --- footprint at table scale ------------------------------------------
  // Traffic window first (hot locks allocate whatever they need), then
  // bytes/lock from LockTable::Totals. The eager baseline is one flat lock
  // with its plane forced by a single read — the per-lock cost before lazy
  // allocation, i.e. what 10^6 eager locks would each pay.
  auto fp_bravo = std::make_shared<PointResult>();
  auto fp_flat = std::make_shared<PointResult>();
  auto eager_bytes = std::make_shared<std::size_t>(0);
  {
    Runner runner(jobs);
    runner.submit_timed(
        [&, fp_bravo] {
          fp_bravo->run = run_point("bravo", p.footprint_keys,
                                    p.footprint_threads, 0.01, 42,
                                    p.warmup_cycles, p.measure_cycles, m);
        },
        [fp_bravo](double ms) { fp_bravo->wall_ms = ms; });
    runner.submit_timed(
        [&, fp_flat] {
          fp_flat->run = run_point("flat", p.footprint_keys,
                                   p.footprint_threads, 0.01, 42,
                                   p.warmup_cycles, p.measure_cycles, m);
        },
        [fp_flat](double ms) { fp_flat->wall_ms = ms; });
    runner.submit([&, eager_bytes] {
      htm::EngineConfig ec;
      ec.max_threads = p.sweep_threads;
      htm::Engine engine(ec);
      core::Config c = variant_cfg("flat", p.sweep_threads);
      core::SpRWLock lock(c);
      sim::Simulator sim;
      htm::EngineScope scope(engine);
      sim.run(1, [&](int) { lock.read(0, [] {}); });
      *eager_bytes = lock.footprint_bytes();
    });
    runner.drain();
  }
  const double bravo_bpl = fp_bravo->run.totals.bytes_per_lock();
  const double flat_bpl = fp_flat->run.totals.bytes_per_lock();
  const double eager_bpl = static_cast<double>(*eager_bytes);
  std::printf("\nfootprint @ %llu locks (after %.0f%%-update traffic):\n",
              static_cast<unsigned long long>(p.footprint_keys), 1.0);
  std::printf("  bravo       %10.1f B/lock (%llu planes, table %zu B)\n",
              bravo_bpl,
              static_cast<unsigned long long>(
                  fp_bravo->run.totals.locks_with_plane),
              fp_bravo->run.totals.shared_table_bytes);
  std::printf("  flat lazy   %10.1f B/lock (%llu planes)\n", flat_bpl,
              static_cast<unsigned long long>(
                  fp_flat->run.totals.locks_with_plane));
  std::printf("  flat eager  %10.1f B/lock (pre-lazy baseline)\n", eager_bpl);
  const bool footprint_10x = eager_bpl >= 10.0 * bravo_bpl;
  std::printf("  eager >= 10x bravo: %s\n", footprint_10x ? "yes" : "NO");

  // --- throughput sweep ---------------------------------------------------
  const std::vector<std::string> variants{"bravo", "flat", "sharded", "snzi"};
  struct SweepPoint {
    std::string variant;
    double ur = 0;
    std::vector<std::pair<std::uint64_t, PointResult>> runs;  // (seed, result)
    double mean_tx_s() const {
      double s = 0;
      for (const auto& r : runs) s += r.second.run.throughput_tx_s();
      return runs.empty() ? 0 : s / static_cast<double>(runs.size());
    }
  };
  std::vector<SweepPoint> points;
  points.reserve(variants.size() * p.update_ratios.size());
  std::uint64_t total_torn = fp_bravo->run.invariant_failures +
                             fp_flat->run.invariant_failures;
  std::string sweep_rows;
  {
    Runner runner(jobs);
    for (const double ur : p.update_ratios) {
      for (const std::string& v : variants) {
        points.emplace_back();
        SweepPoint& pt = points.back();
        pt.variant = v;
        pt.ur = ur;
        for (const std::uint64_t seed : p.seeds) {
          auto res = std::make_shared<PointResult>();
          runner.submit_timed(
              [&, v, ur, seed, res] {
                res->run = run_point(v, p.sweep_keys, p.sweep_threads, ur,
                                     seed, p.warmup_cycles, p.measure_cycles,
                                     m);
              },
              [&, v, ur, seed, res](double ms) {
                res->wall_ms = ms;
                sweep_rows += format_point(v.c_str(), p.sweep_threads, ur,
                                           seed, res->run);
                total_torn += res->run.invariant_failures;
                pt.runs.emplace_back(seed, *res);
              });
        }
      }
    }
    runner.drain();
  }
  std::fputs(sweep_rows.c_str(), stdout);

  // Acceptance: at the lowest update ratio (read-mostly), bravo's
  // seed-mean throughput is at least the sharded layout's.
  double bravo_rm = 0, sharded_rm = 0;
  const double rm_ur = p.update_ratios.front();
  for (const SweepPoint& pt : points) {
    if (pt.ur != rm_ur) continue;
    if (pt.variant == "bravo") bravo_rm = pt.mean_tx_s();
    if (pt.variant == "sharded") sharded_rm = pt.mean_tx_s();
  }
  const bool read_mostly_parity = bravo_rm >= sharded_rm;
  std::printf("\nread-mostly (ur=%.3f, %d thr): bravo %.3e vs sharded %.3e "
              "tx/s — parity: %s\n",
              rm_ur, p.sweep_threads, bravo_rm, sharded_rm,
              read_mostly_parity ? "yes" : "NO");
  // --- 2-socket column ----------------------------------------------------
  // Global vs. per-socket-sharded BRAVO tables on a 2-socket topology with
  // line-owner tracking on, read-mostly: the sharded table keeps each
  // socket's slot lines socket-local where the global table's hash spreads
  // them across both.
  struct Numa2sPoint {
    std::string variant;
    std::vector<std::pair<std::uint64_t, PointResult>> runs;
    double mean_tx_s() const {
      double s = 0;
      for (const auto& r : runs) s += r.second.run.throughput_tx_s();
      return runs.empty() ? 0 : s / static_cast<double>(runs.size());
    }
  };
  const double numa_ur = p.update_ratios.front();
  std::vector<Numa2sPoint> numa2s;
  numa2s.reserve(2);
  std::string numa2s_rows;
  {
    Runner runner(jobs);
    for (const char* v : {"bravo-2s", "bravo-numa-2s"}) {
      numa2s.emplace_back();
      Numa2sPoint& pt = numa2s.back();
      pt.variant = v;
      for (const std::uint64_t seed : p.seeds) {
        auto res = std::make_shared<PointResult>();
        runner.submit_timed(
            [&, v, seed, res] {
              res->run = run_point(v, p.sweep_keys, p.sweep_threads, numa_ur,
                                   seed, p.warmup_cycles, p.measure_cycles, m,
                                   false, 2);
            },
            [&, v, seed, res](double ms) {
              res->wall_ms = ms;
              numa2s_rows += format_point(v, p.sweep_threads, numa_ur, seed,
                                          res->run);
              total_torn += res->run.invariant_failures;
              pt.runs.emplace_back(seed, *res);
            });
      }
    }
    runner.drain();
  }
  std::fputs(numa2s_rows.c_str(), stdout);
  const bool numa2s_sharded_wins =
      numa2s[1].mean_tx_s() >= numa2s[0].mean_tx_s();
  std::printf("2-socket column (ur=%.3f): sharded-table %.3e vs global %.3e "
              "tx/s — sharded >= global: %s\n",
              numa_ur, numa2s[1].mean_tx_s(), numa2s[0].mean_tx_s(),
              numa2s_sharded_wins ? "yes" : "no");
  std::printf("invariant failures (torn reads) across all runs: %llu\n",
              static_cast<unsigned long long>(total_torn));

  // --- identity: bravo machinery off is a strict no-op --------------------
  // Plain flat vs flat-with-an-attached-but-unused ReaderTable: every
  // deterministic output byte must match (the shared_ptr, the registered
  // ids, the bias word defaulting to off — none of it may perturb virtual
  // time or results).
  std::string plain_rows, attached_rows;
  {
    Runner runner(jobs);
    const int id_threads = smoke ? 4 : 16;
    for (const std::uint64_t seed : p.seeds) {
      auto a = std::make_shared<PointResult>();
      auto b = std::make_shared<PointResult>();
      runner.submit_timed(
          [&, seed, a] {
            a->run = run_point("flat", 64, id_threads, 0.05, seed,
                               p.warmup_cycles, p.measure_cycles, m, false);
          },
          [&, seed, a](double ms) {
            a->wall_ms = ms;
            plain_rows +=
                format_point("flat", id_threads, 0.05, seed, a->run);
          });
      runner.submit_timed(
          [&, seed, b] {
            b->run = run_point("flat", 64, id_threads, 0.05, seed,
                               p.warmup_cycles, p.measure_cycles, m, true);
          },
          [&, seed, b](double ms) {
            b->wall_ms = ms;
            attached_rows +=
                format_point("flat", id_threads, 0.05, seed, b->run);
          });
    }
    runner.drain();
  }
  const bool bravo_off_identical = plain_rows == attached_rows;
  std::printf("bravo_bias=false identical with/without table: %s\n",
              bravo_off_identical ? "yes" : "NO — BRAVO NOT A NO-OP WHEN OFF");

  JsonWriter j;
  j.begin_object();
  j.key("bench").value("fig_lock_table");
  j.key("machine").value(m.name);
  j.key("smoke").value(smoke);
  j.key("measure_cycles").value(p.measure_cycles);
  j.key("footprint").begin_object();
  j.key("keys").value(p.footprint_keys);
  j.key("bravo_bytes_per_lock").value(bravo_bpl);
  j.key("bravo_locks_with_plane").value(fp_bravo->run.totals.locks_with_plane);
  j.key("bravo_shared_table_bytes")
      .value(static_cast<std::uint64_t>(fp_bravo->run.totals.shared_table_bytes));
  j.key("bravo_wall_ms").value(fp_bravo->wall_ms);
  j.key("flat_lazy_bytes_per_lock").value(flat_bpl);
  j.key("flat_locks_with_plane").value(fp_flat->run.totals.locks_with_plane);
  j.key("flat_wall_ms").value(fp_flat->wall_ms);
  j.key("eager_bytes_per_lock").value(eager_bpl);
  j.end_object();
  j.key("runs").begin_array();
  for (const SweepPoint& pt : points) {
    for (const auto& r : pt.runs) {
      json_run(j, pt.variant, p.sweep_threads, pt.ur, r.first, r.second);
    }
  }
  j.end_array();
  j.key("means").begin_array();
  for (const SweepPoint& pt : points) {
    j.begin_object();
    j.key("variant").value(pt.variant);
    j.key("update_ratio").value(pt.ur);
    j.key("mean_tx_s").value(pt.mean_tx_s());
    j.end_object();
  }
  j.end_array();
  j.key("numa_2s").begin_object();
  j.key("update_ratio").value(numa_ur);
  j.key("sockets").value(2);
  j.key("runs").begin_array();
  for (const Numa2sPoint& pt : numa2s) {
    for (const auto& r : pt.runs) {
      json_run(j, pt.variant, p.sweep_threads, numa_ur, r.first, r.second);
    }
  }
  j.end_array();
  j.key("means").begin_array();
  for (const Numa2sPoint& pt : numa2s) {
    j.begin_object();
    j.key("variant").value(pt.variant);
    j.key("mean_tx_s").value(pt.mean_tx_s());
    j.end_object();
  }
  j.end_array();
  j.key("sharded_table_wins").value(numa2s_sharded_wins);
  j.end_object();
  j.key("invariant_failures").value(total_torn);
  j.key("bravo_off_identical").value(bravo_off_identical);
  j.key("footprint_10x").value(footprint_10x);
  j.key("read_mostly_parity").value(read_mostly_parity);
  j.end_object();
  if (!j.write_file("BENCH_bravo.json")) {
    std::fprintf(stderr, "failed to write BENCH_bravo.json\n");
    return 2;
  }
  std::printf("wrote BENCH_bravo.json\n");
  return bravo_off_identical && total_torn == 0 ? 0 : 1;
}

}  // namespace
}  // namespace sprwl::bench

int main(int argc, char** argv) { return sprwl::bench::run(argc, argv); }
