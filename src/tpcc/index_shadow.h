// Index-traversal shadow: models the HTM footprint and conflict surface of
// B+-tree indices.
//
// The in-memory TPC-C port the paper benchmarks keeps its tables behind
// B+-trees; every row access walks root -> inner -> leaf, which is where
// most of a transaction's read footprint (and much of its conflict
// cross-section: hot inner nodes, shared leaf pages) comes from. Our tables
// are directly indexed for simplicity, so each logical index access walks a
// shadow tree instead: it reads (and, for inserts, writes) Shared cells
// laid out like tree nodes — one hot root line, a few inner lines, leaf
// cells packed 8 per line. The footprint per probe (~3 lines) and the
// false-sharing between neighbouring keys match what a real tree exhibits.
#pragma once

#include <cstdint>

#include "common/aligned.h"
#include "htm/line_set.h"
#include "htm/shared.h"

namespace sprwl::tpcc {

class IndexShadow {
 public:
  /// leaves/inners are cell counts; defaults model a two-level tree over a
  /// few hundred thousand keys.
  explicit IndexShadow(std::uint32_t leaves = 4096, std::uint32_t inners = 128)
      : inner_(inners), leaf_(leaves) {}

  /// Read-only lookup: walks root, one inner node, one leaf line.
  void probe(std::uint64_t key) const {
    (void)root_.load();
    (void)inner_[inner_slot(key)].load();
    (void)leaf_[leaf_slot(key)].load();
  }

  /// Insert/remove: lookup plus a leaf write (version bump on the leaf
  /// line — neighbouring keys conflict, like real leaf pages).
  void update(std::uint64_t key) {
    (void)root_.load();
    (void)inner_[inner_slot(key)].load();
    auto& cell = leaf_[leaf_slot(key)];
    cell.store(cell.load() + 1);
  }

 private:
  std::size_t inner_slot(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(htm::detail::mix64(key >> 8) % inner_.size());
  }
  std::size_t leaf_slot(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(htm::detail::mix64(key) % leaf_.size());
  }

  htm::Shared<std::uint64_t> root_;
  // Unpadded on purpose: eight cells per line, like keys sharing a page.
  aligned_vector<htm::Shared<std::uint64_t>> inner_;
  mutable aligned_vector<htm::Shared<std::uint64_t>> leaf_;
};

}  // namespace sprwl::tpcc
