#include "tpcc/tpcc.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/costs.h"
#include "common/platform.h"

namespace sprwl::tpcc {

// --- internal table shapes ----------------------------------------------------

struct Database::District {
  explicit District(const Scale& s)
      : customers(static_cast<std::size_t>(s.customers_per_district)),
        orders(static_cast<std::size_t>(s.order_ring)),
        order_lines(static_cast<std::size_t>(s.order_ring) * kMaxOrderLines),
        no_queue(static_cast<std::size_t>(s.order_ring)) {}

  DistrictRow row;
  std::vector<CustomerRow> customers;
  aligned_vector<OrderRow> orders;           // ring keyed by o_id % ring
  aligned_vector<OrderLineRow> order_lines;  // ring slot * kMaxOrderLines + l
  aligned_vector<htm::Shared<std::uint32_t>> no_queue;  // undelivered o_ids
  htm::Shared<std::uint32_t> no_head;  // consumer cursor (monotonic)
  htm::Shared<std::uint32_t> no_tail;  // producer cursor (monotonic)
};

struct Database::Warehouse {
  explicit Warehouse(const Scale& s) : stock(static_cast<std::size_t>(s.items)) {
    districts.reserve(static_cast<std::size_t>(s.districts_per_warehouse));
    for (int d = 0; d < s.districts_per_warehouse; ++d) {
      districts.push_back(std::make_unique<District>(s));
    }
  }

  WarehouseRow row;
  std::vector<std::unique_ptr<District>> districts;
  aligned_vector<StockRow> stock;
};

namespace {

constexpr std::size_t kDistInfoLen = 24;

std::int64_t permille(std::int64_t cents, std::int64_t rate) noexcept {
  return cents * rate / 1000;
}

}  // namespace

// --- construction & population -------------------------------------------------

Database::Database(Scale scale)
    : scale_(scale),
      nurand_([&] {
        std::uint64_t s = scale.seed ^ 0xC0FFEE;
        const std::uint64_t c_last = splitmix64(s) % 256;
        const std::uint64_t c_id = splitmix64(s) % 1024;
        const std::uint64_t i_id = splitmix64(s) % 8192;
        return NuRand(c_last, c_id, i_id);
      }()),
      history_next_(static_cast<std::size_t>(scale.max_threads)),
      history_(static_cast<std::size_t>(scale.max_threads) *
               static_cast<std::size_t>(scale.history_per_thread)) {
  if (scale_.warehouses < 1 || scale_.districts_per_warehouse < 1 ||
      scale_.customers_per_district < 1 || scale_.items < 1) {
    throw std::invalid_argument("tpcc::Scale cardinalities must be >= 1");
  }
  if ((scale_.order_ring & (scale_.order_ring - 1)) != 0) {
    throw std::invalid_argument("tpcc::Scale::order_ring must be a power of two");
  }
  items_.resize(static_cast<std::size_t>(scale_.items));
  warehouses_.reserve(static_cast<std::size_t>(scale_.warehouses));
  for (int w = 0; w < scale_.warehouses; ++w) {
    warehouses_.push_back(std::make_unique<Warehouse>(scale_));
  }
  for (int t = 0; t < scale_.max_threads; ++t) {
    history_next_[static_cast<std::size_t>(t)]->raw_store(
        static_cast<std::uint32_t>(t) *
        static_cast<std::uint32_t>(scale_.history_per_thread));
  }
}

Database::~Database() = default;

void Database::populate() {
  Rng rng(scale_.seed);

  // Items (clause 4.3.3.1): 10% of I_DATA contain "ORIGINAL".
  for (int i = 0; i < scale_.items; ++i) {
    ItemRow& it = items_[static_cast<std::size_t>(i)];
    it.im_id = static_cast<std::uint32_t>(rng.next_in(1, 10000));
    it.price_cents = static_cast<std::int64_t>(rng.next_in(100, 10000));
    it.name = random_astring(rng, 14, 24);
    it.data = random_astring(rng, 26, 50);
    if (rng.next_bool(0.1)) it.data.replace(it.data.size() / 2, 8, "ORIGINAL");
  }

  const auto d_ytd_init =
      static_cast<std::int64_t>(scale_.customers_per_district) * 1000;  // $10 each

  for (int w = 0; w < scale_.warehouses; ++w) {
    Warehouse& wh = *warehouses_[static_cast<std::size_t>(w)];
    wh.row.tax_permille = static_cast<std::int64_t>(rng.next_in(0, 200));
    wh.row.name = random_astring(rng, 6, 10);
    wh.row.ytd_cents.raw_store(d_ytd_init * scale_.districts_per_warehouse);

    // Stock (clause 4.3.3.1).
    for (int i = 0; i < scale_.items; ++i) {
      StockRow& s = wh.stock[static_cast<std::size_t>(i)];
      s.quantity.raw_store(static_cast<std::uint32_t>(rng.next_in(10, 100)));
      s.ytd.raw_store(0);
      s.order_cnt.raw_store(0);
      s.remote_cnt.raw_store(0);
      for (auto& dist : s.dist) {
        const std::string ds = random_astring(rng, kDistInfoLen, kDistInfoLen);
        std::copy(ds.begin(), ds.end(), dist.begin());
      }
      s.data = random_astring(rng, 26, 50);
      if (rng.next_bool(0.1)) s.data.replace(s.data.size() / 2, 8, "ORIGINAL");
    }

    for (int d = 0; d < scale_.districts_per_warehouse; ++d) {
      District& dist = *wh.districts[static_cast<std::size_t>(d)];
      dist.row.tax_permille = static_cast<std::int64_t>(rng.next_in(0, 200));
      dist.row.name = random_astring(rng, 6, 10);
      dist.row.ytd_cents.raw_store(d_ytd_init);

      // Customers (clause 4.3.3.1): 10% bad credit; names from the
      // syllable table.
      const auto max_code = static_cast<std::uint64_t>(
          std::min(scale_.customers_per_district, 1000) - 1);
      for (int c = 0; c < scale_.customers_per_district; ++c) {
        CustomerRow& cu = dist.customers[static_cast<std::size_t>(c)];
        cu.balance_cents.raw_store(-1000);
        cu.ytd_payment_cents.raw_store(1000);
        cu.payment_cnt.raw_store(1);
        cu.delivery_cnt.raw_store(0);
        cu.last_order_slot.raw_store(0);
        cu.data.raw_assign(random_astring(rng, 100, 240));
        cu.last_code =
            static_cast<std::uint16_t>(nurand_.last_name_code(rng, max_code));
        cu.good_credit = !rng.next_bool(0.1);
        cu.discount_permille = static_cast<std::int64_t>(rng.next_in(0, 500));
        cu.credit_lim_cents = 5000000;
        cu.last = last_name(cu.last_code);
        cu.first = random_astring(rng, 8, 16);
      }

      // Orders: one per customer in a random permutation (clause 4.3.3.1);
      // the most recent 30% are undelivered and sit in the new-order
      // queue. Only the last `order_ring` orders physically persist.
      std::vector<std::uint32_t> perm(
          static_cast<std::size_t>(scale_.customers_per_district));
      for (std::size_t i = 0; i < perm.size(); ++i) {
        perm[i] = static_cast<std::uint32_t>(i + 1);
      }
      for (std::size_t i = perm.size(); i > 1; --i) {
        std::swap(perm[i - 1], perm[rng.next_below(i)]);
      }
      const int total_orders = scale_.customers_per_district;
      const int first_undelivered = total_orders - total_orders * 3 / 10 + 1;
      const auto ring = static_cast<std::uint32_t>(scale_.order_ring);
      for (int o = 1; o <= total_orders; ++o) {
        const auto o_id = static_cast<std::uint32_t>(o);
        if (o_id + ring <= static_cast<std::uint32_t>(total_orders)) {
          continue;  // would be overwritten anyway; skip for speed
        }
        const std::uint32_t slot = o_id % ring;
        OrderRow& ord = dist.orders[slot];
        const std::uint32_t c_id = perm[static_cast<std::size_t>(o - 1)];
        const bool delivered = o < first_undelivered;
        const auto cnt =
            static_cast<std::uint32_t>(rng.next_in(5, kMaxOrderLines));
        ord.id.raw_store(o_id);
        ord.c_id.raw_store(c_id);
        ord.carrier_id.raw_store(
            delivered ? static_cast<std::uint32_t>(rng.next_in(1, 10)) : 0);
        ord.ol_cnt.raw_store(cnt);
        ord.entry_d.raw_store(static_cast<std::uint64_t>(o));
        ord.all_local.raw_store(1);
        for (std::uint32_t l = 0; l < cnt; ++l) {
          OrderLineRow& ol = dist.order_lines[slot * kMaxOrderLines + l];
          ol.i_id.raw_store(static_cast<std::uint32_t>(
              rng.next_in(1, static_cast<std::uint64_t>(scale_.items))));
          ol.supply_w.raw_store(static_cast<std::uint32_t>(w + 1));
          ol.quantity.raw_store(5);
          // Clause 4.3.3.1: delivered lines have amount 0, undelivered a
          // random amount — this is what makes the balance invariant hold.
          ol.amount_cents.raw_store(
              delivered ? 0 : static_cast<std::int64_t>(rng.next_in(1, 999999)));
          ol.delivery_d.raw_store(delivered ? static_cast<std::uint64_t>(o) : 0);
          ol.dist_info.raw_assign(random_astring(rng, kDistInfoLen, kDistInfoLen));
        }
        dist.customers[c_id - 1].last_order_slot.raw_store(o_id + 1);
      }
      dist.row.next_o_id.raw_store(static_cast<std::uint32_t>(total_orders + 1));
      // New-order queue: the undelivered tail, in order.
      std::uint32_t tail = 0;
      for (int o = first_undelivered; o <= total_orders; ++o) {
        const auto o_id = static_cast<std::uint32_t>(o);
        if (o_id + ring <= static_cast<std::uint32_t>(total_orders)) continue;
        dist.no_queue[tail % ring].raw_store(o_id);
        ++tail;
      }
      dist.no_head.raw_store(0);
      dist.no_tail.raw_store(tail);
    }
  }
}

// --- small accessors -----------------------------------------------------------

Database::District& Database::district(int w, int d) noexcept {
  return *warehouses_[static_cast<std::size_t>(w - 1)]
              ->districts[static_cast<std::size_t>(d - 1)];
}
const Database::District& Database::district(int w, int d) const noexcept {
  return *warehouses_[static_cast<std::size_t>(w - 1)]
              ->districts[static_cast<std::size_t>(d - 1)];
}
CustomerRow& Database::customer(int w, int d, int c) noexcept {
  return district(w, d).customers[static_cast<std::size_t>(c - 1)];
}
const CustomerRow& Database::customer(int w, int d, int c) const noexcept {
  return district(w, d).customers[static_cast<std::size_t>(c - 1)];
}
StockRow& Database::stock(int w, int i) noexcept {
  return warehouses_[static_cast<std::size_t>(w - 1)]
      ->stock[static_cast<std::size_t>(i - 1)];
}
const StockRow& Database::stock(int w, int i) const noexcept {
  return warehouses_[static_cast<std::size_t>(w - 1)]
      ->stock[static_cast<std::size_t>(i - 1)];
}

int Database::select_customer_by_last_name(int w, int d,
                                           std::uint16_t code) const {
  // The spec walks a (C_LAST, C_FIRST) index; the name fields are immutable
  // after population, so this runs on plain memory. Model the index probe
  // as a handful of cache misses.
  platform::advance(g_costs.load * 8);
  const District& dist = district(w, d);
  int best[64];
  int n = 0;
  for (int c = 1; c <= scale_.customers_per_district && n < 64; ++c) {
    if (dist.customers[static_cast<std::size_t>(c - 1)].last_code == code) {
      best[n++] = c;
    }
  }
  if (n == 0) return -1;
  std::sort(best, best + n, [&](int a, int b) {
    return dist.customers[static_cast<std::size_t>(a - 1)].first <
           dist.customers[static_cast<std::size_t>(b - 1)].first;
  });
  return best[(n + 1) / 2 - 1];  // ceil(n/2)-th, 1-based
}

HistoryRow& Database::next_history_row() {
  const int tid = platform::thread_id();
  const std::size_t t =
      tid >= 0 ? static_cast<std::size_t>(tid) % history_next_.size() : 0;
  auto& cursor = *history_next_[t];
  const std::uint32_t at = cursor.load();
  const auto base =
      static_cast<std::uint32_t>(t * static_cast<std::size_t>(scale_.history_per_thread));
  const auto span = static_cast<std::uint32_t>(scale_.history_per_thread);
  const std::uint32_t next = (at + 1 - base) % span + base;  // per-thread ring
  cursor.store(next);
  return history_[at];
}

// --- transactions ----------------------------------------------------------------

NewOrderResult Database::new_order(const NewOrderInput& in) {
  NewOrderResult r;
  Warehouse& wh = *warehouses_[static_cast<std::size_t>(in.w_id - 1)];
  District& d = district(in.w_id, in.d_id);
  CustomerRow& cu = customer(in.w_id, in.d_id, in.c_id);

  if (in.rollback) {
    // Clause 2.4.1.4: the last item is unused -> the whole transaction
    // rolls back after having read the pricing rows.
    (void)d.row.next_o_id.load();
    for (int l = 0; l + 1 < in.ol_cnt; ++l) {
      item_index_.probe(
          static_cast<std::uint64_t>(in.lines[static_cast<std::size_t>(l)].i_id));
    }
    r.committed = false;
    return r;
  }
  customer_index_.probe(district_key(in.w_id, in.d_id, static_cast<std::uint64_t>(in.c_id)));

  const std::uint32_t o_id = d.row.next_o_id.load();
  d.row.next_o_id.store(o_id + 1);
  const auto ring = static_cast<std::uint32_t>(scale_.order_ring);
  const std::uint32_t slot = o_id % ring;

  bool all_local = true;
  for (int l = 0; l < in.ol_cnt; ++l) {
    all_local =
        all_local && in.lines[static_cast<std::size_t>(l)].supply_w_id == in.w_id;
  }

  OrderRow& o = d.orders[slot];
  o.id.store(o_id);
  o.c_id.store(static_cast<std::uint32_t>(in.c_id));
  o.carrier_id.store(0);
  o.ol_cnt.store(static_cast<std::uint32_t>(in.ol_cnt));
  o.entry_d.store(in.entry_d);
  o.all_local.store(all_local ? 1 : 0);

  order_index_.update(district_key(in.w_id, in.d_id, o_id));

  std::int64_t total = 0;
  for (int l = 0; l < in.ol_cnt; ++l) {
    const auto& line = in.lines[static_cast<std::size_t>(l)];
    item_index_.probe(static_cast<std::uint64_t>(line.i_id));
    stock_index_.probe((static_cast<std::uint64_t>(line.supply_w_id) << 32) |
                       static_cast<std::uint64_t>(line.i_id));
    const ItemRow& item = items_[static_cast<std::size_t>(line.i_id - 1)];
    StockRow& s = stock(line.supply_w_id, line.i_id);
    const std::uint32_t q = s.quantity.load();
    const auto want = static_cast<std::uint32_t>(line.quantity);
    s.quantity.store(q >= want + 10 ? q - want : q - want + 91);
    s.ytd.store(s.ytd.load() + line.quantity);
    s.order_cnt.store(s.order_cnt.load() + 1);
    if (line.supply_w_id != in.w_id) s.remote_cnt.store(s.remote_cnt.load() + 1);

    const std::int64_t amount = item.price_cents * line.quantity;
    total += amount;

    OrderLineRow& ol =
        d.order_lines[slot * kMaxOrderLines + static_cast<std::uint32_t>(l)];
    ol.i_id.store(static_cast<std::uint32_t>(line.i_id));
    ol.supply_w.store(static_cast<std::uint32_t>(line.supply_w_id));
    ol.quantity.store(want);
    ol.amount_cents.store(amount);
    ol.delivery_d.store(0);
    const auto& dinfo = s.dist[static_cast<std::size_t>(in.d_id - 1)];
    ol.dist_info.assign(std::string_view(dinfo.data(), dinfo.size()));
    orderline_index_.update(
        district_key(in.w_id, in.d_id, o_id * 16 + static_cast<std::uint64_t>(l)));
  }

  // Enqueue as undelivered; a full queue (deliveries lagging far behind)
  // drops the enqueue — the order itself still exists.
  const std::uint32_t tail = d.no_tail.load();
  if (tail - d.no_head.load() < ring) {
    d.no_queue[tail % ring].store(o_id);
    d.no_tail.store(tail + 1);
  }
  cu.last_order_slot.store(o_id + 1);

  const std::int64_t discounted = total - permille(total, cu.discount_permille);
  r.total_cents = discounted + permille(discounted, wh.row.tax_permille) +
                  permille(discounted, d.row.tax_permille);
  r.o_id = o_id;
  r.committed = true;
  return r;
}

PaymentResult Database::payment(const PaymentInput& in) {
  PaymentResult r;
  Warehouse& wh = *warehouses_[static_cast<std::size_t>(in.w_id - 1)];
  District& d = district(in.w_id, in.d_id);
  wh.row.ytd_cents.store(wh.row.ytd_cents.load() + in.amount_cents);
  d.row.ytd_cents.store(d.row.ytd_cents.load() + in.amount_cents);

  int c_id = in.c_id;
  if (in.by_last_name) {
    const int found =
        select_customer_by_last_name(in.c_w_id, in.c_d_id, in.last_code);
    c_id = found > 0 ? found : 1;
  }
  customer_index_.probe(
      district_key(in.c_w_id, in.c_d_id, static_cast<std::uint64_t>(c_id)));
  CustomerRow& cu = customer(in.c_w_id, in.c_d_id, c_id);
  cu.balance_cents.store(cu.balance_cents.load() - in.amount_cents);
  cu.ytd_payment_cents.store(cu.ytd_payment_cents.load() + in.amount_cents);
  cu.payment_cnt.store(cu.payment_cnt.load() + 1);

  if (!cu.good_credit) {
    // Clause 2.5.2.2: bad-credit customers get the payment prepended to
    // C_DATA (truncated to the column size).
    std::string data = std::to_string(c_id) + " " + std::to_string(in.c_d_id) +
                       " " + std::to_string(in.c_w_id) + " " +
                       std::to_string(in.d_id) + " " + std::to_string(in.w_id) +
                       " " + std::to_string(in.amount_cents) + "|";
    data += cu.data.str();
    if (data.size() > cu.data.capacity()) data.resize(cu.data.capacity());
    cu.data.assign(data);
  }

  HistoryRow& h = next_history_row();
  h.c_id.store(static_cast<std::uint32_t>(c_id));
  h.c_d_id.store(static_cast<std::uint32_t>(in.c_d_id));
  h.c_w_id.store(static_cast<std::uint32_t>(in.c_w_id));
  h.d_id.store(static_cast<std::uint32_t>(in.d_id));
  h.w_id.store(static_cast<std::uint32_t>(in.w_id));
  h.amount_cents.store(in.amount_cents);

  r.c_id = c_id;
  r.balance_cents = cu.balance_cents.load();
  return r;
}

OrderStatusResult Database::order_status(const OrderStatusInput& in) {
  OrderStatusResult r;
  int c_id = in.c_id;
  if (in.by_last_name) {
    const int found = select_customer_by_last_name(in.w_id, in.d_id, in.last_code);
    c_id = found > 0 ? found : 1;
  }
  r.c_id = c_id;
  customer_index_.probe(
      district_key(in.w_id, in.d_id, static_cast<std::uint64_t>(c_id)));
  const District& d = district(in.w_id, in.d_id);
  const CustomerRow& cu = customer(in.w_id, in.d_id, c_id);
  r.balance_cents = cu.balance_cents.load();

  const std::uint32_t o_ref = cu.last_order_slot.load();
  if (o_ref == 0) return r;
  const std::uint32_t o_id = o_ref - 1;
  order_index_.probe(district_key(in.w_id, in.d_id, o_id));
  orderline_index_.probe(district_key(in.w_id, in.d_id, o_id * 16));
  const auto ring = static_cast<std::uint32_t>(scale_.order_ring);
  const OrderRow& o = d.orders[o_id % ring];
  if (o.id.load() != o_id) return r;  // order aged out of the ring
  r.o_id = o_id;
  r.carrier_id = o.carrier_id.load();
  const std::uint32_t cnt = o.ol_cnt.load();
  for (std::uint32_t l = 0; l < cnt && l < kMaxOrderLines; ++l) {
    const OrderLineRow& ol = d.order_lines[(o_id % ring) * kMaxOrderLines + l];
    (void)ol.i_id.load();
    (void)ol.supply_w.load();
    (void)ol.quantity.load();
    (void)ol.amount_cents.load();
    (void)ol.delivery_d.load();
    ++r.lines;
  }
  return r;
}

DeliveryResult Database::delivery(const DeliveryInput& in) {
  DeliveryResult r;
  const auto ring = static_cast<std::uint32_t>(scale_.order_ring);
  for (int d_id = 1; d_id <= scale_.districts_per_warehouse; ++d_id) {
    District& d = district(in.w_id, d_id);
    std::uint32_t head = d.no_head.load();
    const std::uint32_t tail = d.no_tail.load();
    bool delivered = false;
    while (head != tail && !delivered) {
      const std::uint32_t o_id = d.no_queue[head % ring].load();
      ++head;
      OrderRow& o = d.orders[o_id % ring];
      if (o.id.load() != o_id || o.carrier_id.load() != 0) {
        continue;  // aged out of the ring or already delivered
      }
      order_index_.probe(district_key(in.w_id, d_id, o_id));
      orderline_index_.probe(district_key(in.w_id, d_id, o_id * 16));
      o.carrier_id.store(static_cast<std::uint32_t>(in.carrier_id));
      const std::uint32_t cnt = o.ol_cnt.load();
      std::int64_t sum = 0;
      for (std::uint32_t l = 0; l < cnt && l < kMaxOrderLines; ++l) {
        OrderLineRow& ol = d.order_lines[(o_id % ring) * kMaxOrderLines + l];
        ol.delivery_d.store(in.delivery_d);
        sum += ol.amount_cents.load();
      }
      const std::uint32_t c_id = o.c_id.load();
      customer_index_.probe(district_key(in.w_id, d_id, c_id));
      CustomerRow& cu = customer(in.w_id, d_id, static_cast<int>(c_id));
      cu.balance_cents.store(cu.balance_cents.load() + sum);
      cu.delivery_cnt.store(cu.delivery_cnt.load() + 1);
      delivered = true;
      ++r.delivered;
    }
    d.no_head.store(head);
  }
  return r;
}

StockLevelResult Database::stock_level(const StockLevelInput& in) {
  StockLevelResult r;
  const District& d = district(in.w_id, in.d_id);
  const std::uint32_t next = d.row.next_o_id.load();
  const std::uint32_t lo = next > 21 ? next - 21 : 1;  // the last 20 orders
  const auto ring = static_cast<std::uint32_t>(scale_.order_ring);

  // Distinct-item filter: local open-addressing set on the stack (the
  // spec's DISTINCT is a private execution detail of the query).
  constexpr std::size_t kSetSize = 1024;  // > 20 orders * 15 lines
  std::uint32_t seen[kSetSize] = {0};

  for (std::uint32_t o_id = lo; o_id < next; ++o_id) {
    order_index_.probe(district_key(in.w_id, in.d_id, o_id));
    const OrderRow& o = d.orders[o_id % ring];
    if (o.id.load() != o_id) continue;
    orderline_index_.probe(district_key(in.w_id, in.d_id, o_id * 16));
    const std::uint32_t cnt = o.ol_cnt.load();
    for (std::uint32_t l = 0; l < cnt && l < kMaxOrderLines; ++l) {
      const OrderLineRow& ol = d.order_lines[(o_id % ring) * kMaxOrderLines + l];
      const std::uint32_t i_id = ol.i_id.load();
      ++r.scanned_lines;
      if (i_id == 0) continue;
      std::size_t h = (i_id * 0x9E3779B1u) % kSetSize;
      bool fresh = true;
      while (seen[h] != 0) {
        if (seen[h] == i_id) {
          fresh = false;
          break;
        }
        h = (h + 1) % kSetSize;
      }
      if (!fresh) continue;
      seen[h] = i_id;
      stock_index_.probe((static_cast<std::uint64_t>(in.w_id) << 32) | i_id);
      if (stock(in.w_id, static_cast<int>(i_id)).quantity.load() <
          static_cast<std::uint32_t>(in.threshold)) {
        ++r.low_stock;
      }
    }
  }
  return r;
}

// --- input generators ------------------------------------------------------------

NewOrderInput Database::make_new_order_input(Rng& rng, int home_w) const {
  NewOrderInput in{};
  in.w_id = home_w;
  in.d_id = static_cast<int>(
      rng.next_in(1, static_cast<std::uint64_t>(scale_.districts_per_warehouse)));
  in.c_id = static_cast<int>(nurand_.customer_id(
      rng, static_cast<std::uint64_t>(scale_.customers_per_district)));
  in.ol_cnt = static_cast<int>(rng.next_in(5, kMaxOrderLines));
  in.rollback = rng.next_bool(0.01);
  in.entry_d = platform::now() | 1;
  for (int l = 0; l < in.ol_cnt; ++l) {
    auto& line = in.lines[static_cast<std::size_t>(l)];
    line.i_id = static_cast<int>(
        nurand_.item_id(rng, static_cast<std::uint64_t>(scale_.items)));
    line.quantity = static_cast<int>(rng.next_in(1, 10));
    line.supply_w_id = home_w;
    if (scale_.warehouses > 1 && rng.next_bool(0.01)) {  // 1% remote
      int other = static_cast<int>(
          rng.next_in(1, static_cast<std::uint64_t>(scale_.warehouses - 1)));
      if (other >= home_w) ++other;
      line.supply_w_id = other;
    }
  }
  return in;
}

PaymentInput Database::make_payment_input(Rng& rng, int home_w) const {
  PaymentInput in{};
  in.w_id = home_w;
  in.d_id = static_cast<int>(
      rng.next_in(1, static_cast<std::uint64_t>(scale_.districts_per_warehouse)));
  in.c_w_id = in.w_id;
  in.c_d_id = in.d_id;
  if (scale_.warehouses > 1 && rng.next_bool(0.15)) {  // 15% remote customer
    int other = static_cast<int>(
        rng.next_in(1, static_cast<std::uint64_t>(scale_.warehouses - 1)));
    if (other >= home_w) ++other;
    in.c_w_id = other;
    in.c_d_id = static_cast<int>(rng.next_in(
        1, static_cast<std::uint64_t>(scale_.districts_per_warehouse)));
  }
  in.by_last_name = rng.next_bool(0.6);
  const auto max_code =
      static_cast<std::uint64_t>(std::min(scale_.customers_per_district, 1000) - 1);
  in.last_code = static_cast<std::uint16_t>(nurand_.last_name_code(rng, max_code));
  in.c_id = static_cast<int>(nurand_.customer_id(
      rng, static_cast<std::uint64_t>(scale_.customers_per_district)));
  in.amount_cents = static_cast<std::int64_t>(rng.next_in(100, 500000));
  return in;
}

OrderStatusInput Database::make_order_status_input(Rng& rng, int home_w) const {
  OrderStatusInput in{};
  in.w_id = home_w;
  in.d_id = static_cast<int>(
      rng.next_in(1, static_cast<std::uint64_t>(scale_.districts_per_warehouse)));
  in.by_last_name = rng.next_bool(0.6);
  const auto max_code =
      static_cast<std::uint64_t>(std::min(scale_.customers_per_district, 1000) - 1);
  in.last_code = static_cast<std::uint16_t>(nurand_.last_name_code(rng, max_code));
  in.c_id = static_cast<int>(nurand_.customer_id(
      rng, static_cast<std::uint64_t>(scale_.customers_per_district)));
  return in;
}

DeliveryInput Database::make_delivery_input(Rng& rng, int home_w) const {
  DeliveryInput in{};
  in.w_id = home_w;
  in.carrier_id = static_cast<int>(rng.next_in(1, 10));
  in.delivery_d = platform::now() | 1;  // non-zero marks "delivered"
  return in;
}

StockLevelInput Database::make_stock_level_input(Rng& rng, int home_w) const {
  StockLevelInput in{};
  in.w_id = home_w;
  in.d_id = static_cast<int>(
      rng.next_in(1, static_cast<std::uint64_t>(scale_.districts_per_warehouse)));
  in.threshold = static_cast<int>(rng.next_in(10, 20));
  return in;
}

// --- consistency checks ------------------------------------------------------------

bool Database::check_warehouse_ytd() const {
  for (int w = 1; w <= scale_.warehouses; ++w) {
    std::int64_t sum = 0;
    for (int d = 1; d <= scale_.districts_per_warehouse; ++d) {
      sum += district(w, d).row.ytd_cents.raw_load();
    }
    if (warehouses_[static_cast<std::size_t>(w - 1)]->row.ytd_cents.raw_load() !=
        sum) {
      return false;
    }
  }
  return true;
}

bool Database::check_next_order_id() const {
  for (int w = 1; w <= scale_.warehouses; ++w) {
    for (int d = 1; d <= scale_.districts_per_warehouse; ++d) {
      const District& dist = district(w, d);
      std::uint32_t max_id = 0;
      for (const OrderRow& o : dist.orders) {
        max_id = std::max(max_id, o.id.raw_load());
      }
      if (dist.row.next_o_id.raw_load() != max_id + 1) return false;
    }
  }
  return true;
}

bool Database::check_new_order_queue() const {
  const auto ring = static_cast<std::uint32_t>(scale_.order_ring);
  for (int w = 1; w <= scale_.warehouses; ++w) {
    for (int d = 1; d <= scale_.districts_per_warehouse; ++d) {
      const District& dist = district(w, d);
      const std::uint32_t head = dist.no_head.raw_load();
      const std::uint32_t tail = dist.no_tail.raw_load();
      if (tail - head > ring) return false;
      for (std::uint32_t i = head; i != tail; ++i) {
        const std::uint32_t o_id = dist.no_queue[i % ring].raw_load();
        const OrderRow& o = dist.orders[o_id % ring];
        if (o.id.raw_load() == o_id && o.carrier_id.raw_load() != 0) {
          return false;  // queued but already delivered
        }
      }
    }
  }
  return true;
}

bool Database::check_order_line_counts() const {
  for (int w = 1; w <= scale_.warehouses; ++w) {
    for (int d = 1; d <= scale_.districts_per_warehouse; ++d) {
      const District& dist = district(w, d);
      const auto ring = static_cast<std::uint32_t>(scale_.order_ring);
      for (std::uint32_t slot = 0; slot < ring; ++slot) {
        const OrderRow& o = dist.orders[slot];
        if (o.id.raw_load() == 0) continue;
        const std::uint32_t cnt = o.ol_cnt.raw_load();
        if (cnt < 5 || cnt > kMaxOrderLines) return false;
        for (std::uint32_t l = 0; l < cnt; ++l) {
          const OrderLineRow& ol = dist.order_lines[slot * kMaxOrderLines + l];
          const std::uint32_t i = ol.i_id.raw_load();
          if (i < 1 || i > static_cast<std::uint32_t>(scale_.items)) return false;
        }
      }
    }
  }
  return true;
}

std::int64_t Database::raw_total_balance_drift() const {
  // sum(c_balance + c_ytd_payment) - sum(amounts of delivered order lines).
  // Zero after population and preserved by payment/delivery/new-order —
  // valid only while the order ring has not overwritten delivered orders.
  std::int64_t total = 0;
  for (int w = 1; w <= scale_.warehouses; ++w) {
    for (int d = 1; d <= scale_.districts_per_warehouse; ++d) {
      const District& dist = district(w, d);
      for (const CustomerRow& cu : dist.customers) {
        total += cu.balance_cents.raw_load() + cu.ytd_payment_cents.raw_load();
      }
      const auto ring = static_cast<std::uint32_t>(scale_.order_ring);
      for (std::uint32_t slot = 0; slot < ring; ++slot) {
        const OrderRow& o = dist.orders[slot];
        if (o.id.raw_load() == 0) continue;
        const std::uint32_t cnt = o.ol_cnt.raw_load();
        for (std::uint32_t l = 0; l < cnt && l < kMaxOrderLines; ++l) {
          const OrderLineRow& ol = dist.order_lines[slot * kMaxOrderLines + l];
          if (ol.delivery_d.raw_load() != 0) total -= ol.amount_cents.raw_load();
        }
      }
    }
  }
  return total;
}

std::string Database::raw_customer_data(int w, int d, int c) const {
  return customer(w, d, c).data.str();
}

bool Database::raw_customer_good_credit(int w, int d, int c) const {
  return customer(w, d, c).good_credit;
}

std::uint32_t Database::customer_index(int w, int d, int c) const noexcept {
  return static_cast<std::uint32_t>(
      ((w - 1) * scale_.districts_per_warehouse + (d - 1)) *
          scale_.customers_per_district +
      (c - 1));
}

}  // namespace sprwl::tpcc
