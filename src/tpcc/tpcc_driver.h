// TPC-C benchmark driver (the paper's Section 4.2 adaptation): every
// transaction runs as a critical section of ONE process-wide read-write
// lock — Order-Status and Stock-Level as read sections, New-Order, Payment
// and Delivery as write sections. Transaction inputs are generated outside
// the critical section (HTM bodies may re-execute and must be idempotent
// w.r.t. their inputs).
#pragma once

#include <cstdint>
#include <vector>

#include "common/costs.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "htm/engine.h"
#include "locks/stats.h"
#include "sim/simulator.h"
#include "tpcc/tpcc.h"

namespace sprwl::tpcc {

/// Critical-section ids (SpRWL keeps one duration estimate per id).
enum CsId : int {
  kCsNewOrder = 1,
  kCsPayment = 2,
  kCsOrderStatus = 3,
  kCsDelivery = 4,
  kCsStockLevel = 5,
};

struct TpccDriverConfig {
  int threads = 4;
  /// The paper's mix: Stock-Level 31%, Delivery 4%, Order-Status 4%,
  /// Payment 43%, New-Order 18%.
  double p_stock_level = 0.31;
  double p_delivery = 0.04;
  double p_order_status = 0.04;
  double p_payment = 0.43;
  std::uint64_t warmup_cycles = 1'000'000;
  std::uint64_t measure_cycles = 10'000'000;
  std::uint64_t seed = 1;
};

struct TpccRunResult {
  std::uint64_t new_orders = 0;
  std::uint64_t payments = 0;
  std::uint64_t order_statuses = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t stock_levels = 0;
  double duration_cycles = 0;
  LatencyHistogram read_latency;   // Order-Status + Stock-Level
  LatencyHistogram write_latency;  // New-Order + Payment + Delivery
  locks::LockStats lock_stats;
  htm::EngineStats engine_stats;
  std::uint64_t reader_aborts = 0;

  std::uint64_t committed() const noexcept {
    return new_orders + payments + order_statuses + deliveries + stock_levels;
  }
  double throughput_tx_s() const noexcept {
    if (duration_cycles <= 0) return 0;
    return static_cast<double>(committed()) / duration_cycles * g_costs.ghz * 1e9;
  }
};

namespace detail {
template <class Lock>
std::uint64_t reader_abort_count(const Lock& lock) {
  if constexpr (requires { lock.reader_abort_count(); }) {
    return lock.reader_abort_count();
  } else {
    return 0;
  }
}
}  // namespace detail

template <class Lock>
TpccRunResult run_tpcc(sim::Simulator& sim, htm::Engine& engine, Lock& lock,
                       Database& db, const TpccDriverConfig& cfg) {
  struct ThreadResult {
    std::uint64_t counts[5] = {0, 0, 0, 0, 0};
    LatencyHistogram read_latency, write_latency;
  };
  std::vector<ThreadResult> results(static_cast<std::size_t>(cfg.threads));

  engine.reset_stats();
  lock.reset_stats();

  const std::uint64_t measure_start = cfg.warmup_cycles;
  const std::uint64_t measure_end = cfg.warmup_cycles + cfg.measure_cycles;
  const int warehouses = db.scale().warehouses;

  // Installed once around the whole run, on the calling thread — see
  // workloads/driver.h for why a per-fiber scope would be wrong.
  htm::EngineScope scope(engine);
  sim.run(cfg.threads, [&](int tid) {
    Rng rng(cfg.seed * 0x2545F4914F6CDD1DULL + static_cast<std::uint64_t>(tid));
    ThreadResult& mine = results[static_cast<std::size_t>(tid)];
    const int home_w = tid % warehouses + 1;
    for (;;) {
      const std::uint64_t t0 = platform::now();
      if (t0 >= measure_end) break;
      const bool measured = t0 >= measure_start;
      const double u = rng.next_double();
      if (u < cfg.p_stock_level) {
        const StockLevelInput in = db.make_stock_level_input(rng, home_w);
        lock.read(kCsStockLevel, [&] { db.stock_level(in); });
        if (measured) {
          ++mine.counts[4];
          mine.read_latency.record(platform::now() - t0);
        }
      } else if (u < cfg.p_stock_level + cfg.p_order_status) {
        const OrderStatusInput in = db.make_order_status_input(rng, home_w);
        lock.read(kCsOrderStatus, [&] { db.order_status(in); });
        if (measured) {
          ++mine.counts[2];
          mine.read_latency.record(platform::now() - t0);
        }
      } else if (u < cfg.p_stock_level + cfg.p_order_status + cfg.p_delivery) {
        const DeliveryInput in = db.make_delivery_input(rng, home_w);
        lock.write(kCsDelivery, [&] { db.delivery(in); });
        if (measured) {
          ++mine.counts[3];
          mine.write_latency.record(platform::now() - t0);
        }
      } else if (u < cfg.p_stock_level + cfg.p_order_status + cfg.p_delivery +
                         cfg.p_payment) {
        const PaymentInput in = db.make_payment_input(rng, home_w);
        lock.write(kCsPayment, [&] { db.payment(in); });
        if (measured) {
          ++mine.counts[1];
          mine.write_latency.record(platform::now() - t0);
        }
      } else {
        const NewOrderInput in = db.make_new_order_input(rng, home_w);
        lock.write(kCsNewOrder, [&] { db.new_order(in); });
        if (measured) {
          ++mine.counts[0];
          mine.write_latency.record(platform::now() - t0);
        }
      }
      platform::advance(g_costs.local_work);
    }
  });

  TpccRunResult out;
  for (const ThreadResult& r : results) {
    out.new_orders += r.counts[0];
    out.payments += r.counts[1];
    out.order_statuses += r.counts[2];
    out.deliveries += r.counts[3];
    out.stock_levels += r.counts[4];
    out.read_latency.merge(r.read_latency);
    out.write_latency.merge(r.write_latency);
  }
  out.duration_cycles = static_cast<double>(cfg.measure_cycles);
  out.lock_stats = lock.stats();
  out.engine_stats = engine.stats();
  out.reader_aborts = detail::reader_abort_count(lock);
  return out;
}

}  // namespace sprwl::tpcc
