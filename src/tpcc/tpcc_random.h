// TPC-C input generation: NURand, customer last names and random strings,
// per clauses 2.1.4-2.1.6 and 4.3.2 of the TPC-C specification (rev 5.11).
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"

namespace sprwl::tpcc {

/// The spec's non-uniform random distribution:
/// NURand(A, x, y) = (((random(0,A) | random(x,y)) + C) % (y - x + 1)) + x.
/// C is a per-field run-time constant (clause 2.1.6.1).
class NuRand {
 public:
  explicit NuRand(std::uint64_t c_last, std::uint64_t c_id, std::uint64_t i_id) noexcept
      : c_last_(c_last), c_id_(c_id), i_id_(i_id) {}

  std::uint64_t last_name_code(Rng& rng, std::uint64_t max_code) const {
    return nurand(rng, 255, 0, max_code, c_last_);
  }
  std::uint64_t customer_id(Rng& rng, std::uint64_t customers) const {
    return nurand(rng, 1023, 1, customers, c_id_);
  }
  std::uint64_t item_id(Rng& rng, std::uint64_t items) const {
    return nurand(rng, 8191, 1, items, i_id_);
  }

 private:
  static std::uint64_t nurand(Rng& rng, std::uint64_t a, std::uint64_t x,
                              std::uint64_t y, std::uint64_t c) {
    return (((rng.next_in(0, a) | rng.next_in(x, y)) + c) % (y - x + 1)) + x;
  }

  std::uint64_t c_last_;
  std::uint64_t c_id_;
  std::uint64_t i_id_;
};

/// Clause 4.3.2.3: last names are three syllables selected by the digits of
/// a code in [0, 999].
inline std::string last_name(std::uint64_t code) {
  static const char* const kSyllables[] = {"BAR",   "OUGHT", "ABLE", "PRI",
                                           "PRES",  "ESE",   "ANTI", "CALLY",
                                           "ATION", "EING"};
  std::string out;
  out += kSyllables[(code / 100) % 10];
  out += kSyllables[(code / 10) % 10];
  out += kSyllables[code % 10];
  return out;
}

/// a-string: random alphanumeric string of length in [lo, hi].
inline std::string random_astring(Rng& rng, std::size_t lo, std::size_t hi) {
  static const char kAlpha[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  const std::size_t n = lo + static_cast<std::size_t>(rng.next_below(hi - lo + 1));
  std::string out(n, '\0');
  for (auto& ch : out) ch = kAlpha[rng.next_below(sizeof(kAlpha) - 1)];
  return out;
}

/// n-string: random numeric string of length in [lo, hi].
inline std::string random_nstring(Rng& rng, std::size_t lo, std::size_t hi) {
  const std::size_t n = lo + static_cast<std::size_t>(rng.next_below(hi - lo + 1));
  std::string out(n, '\0');
  for (auto& ch : out) ch = static_cast<char>('0' + rng.next_below(10));
  return out;
}

}  // namespace sprwl::tpcc
