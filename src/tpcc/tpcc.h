// In-memory TPC-C implementation (from scratch, after the standalone
// in-memory port the paper uses [15,36]).
//
// The database is a set of flat, pre-allocated tables whose *mutable*
// fields live in htm::Shared cells, so the five transactions run correctly
// as HTM writer transactions, SGL-fallback writers and uninstrumented
// readers — the paper adapts TPC-C by executing read-only transactions
// (Order-Status, Stock-Level) as read critical sections and update
// transactions (New-Order, Payment, Delivery) as write critical sections
// of one process-wide RWLock.
//
// Scaling: cardinalities are reduced from the spec (3000 customers/district
// -> 300, 100k items -> 10k, order history kept in a per-district ring of
// the most recent orders) so dozens of warehouses fit in memory; the
// *shape* of each transaction — which tables it touches, how many rows,
// read-only vs update — follows clause 2 of the spec, which is what the
// lock/HTM behaviour depends on. Money is exact (integer cents), rates are
// per-mille integers.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/cacheline.h"
#include "common/rng.h"
#include "htm/shared.h"
#include "tpcc/index_shadow.h"
#include "tpcc/tpcc_random.h"

namespace sprwl::tpcc {

struct Scale {
  int warehouses = 4;
  int districts_per_warehouse = 10;
  int customers_per_district = 300;  ///< spec: 3000
  int items = 10000;                 ///< spec: 100000
  /// Orders retained per district (power of two ring; the spec keeps all
  /// history — Stock-Level only ever joins the last 20 orders, Order-Status
  /// the customer's most recent one, so a ring preserves behaviour).
  int order_ring = 128;
  int max_threads = 64;
  /// History rows per thread (append-only table, per-thread segments).
  int history_per_thread = 1 << 14;
  std::uint64_t seed = 7;
};

// --- rows -------------------------------------------------------------------

struct ItemRow {  // read-only after population
  std::uint32_t im_id = 0;
  std::int64_t price_cents = 0;
  std::string name;
  std::string data;
};

struct WarehouseRow {
  htm::Shared<std::int64_t> ytd_cents;
  std::int64_t tax_permille = 0;  // immutable
  std::string name;
};

struct alignas(kCacheLineSize) DistrictRow {
  htm::Shared<std::int64_t> ytd_cents;
  htm::Shared<std::uint32_t> next_o_id;  // next order number to assign
  std::int64_t tax_permille = 0;         // immutable
  std::string name;
};

struct CustomerRow {
  htm::Shared<std::int64_t> balance_cents;
  htm::Shared<std::int64_t> ytd_payment_cents;
  htm::Shared<std::uint32_t> payment_cnt;
  htm::Shared<std::uint32_t> delivery_cnt;
  /// Ring slot + 1 of this customer's most recent order; 0 = none.
  htm::Shared<std::uint32_t> last_order_slot;
  htm::SharedString<240> data;  ///< scaled from the spec's 500 chars
  // Immutable after population:
  std::uint16_t last_code = 0;  ///< last-name code (index into name table)
  bool good_credit = true;
  std::int64_t discount_permille = 0;
  std::int64_t credit_lim_cents = 0;
  std::string first;
  std::string last;
};

struct OrderRow {
  htm::Shared<std::uint32_t> id;        ///< o_id; 0 = empty slot
  htm::Shared<std::uint32_t> c_id;
  htm::Shared<std::uint32_t> carrier_id;  ///< 0 = undelivered
  htm::Shared<std::uint32_t> ol_cnt;
  htm::Shared<std::uint64_t> entry_d;
  htm::Shared<std::uint32_t> all_local;
};

struct OrderLineRow {
  htm::Shared<std::uint32_t> i_id;
  htm::Shared<std::uint32_t> supply_w;
  htm::Shared<std::uint32_t> quantity;
  htm::Shared<std::int64_t> amount_cents;
  htm::Shared<std::uint64_t> delivery_d;  ///< 0 = undelivered
  htm::SharedString<24> dist_info;
};

struct StockRow {
  htm::Shared<std::uint32_t> quantity;
  htm::Shared<std::int64_t> ytd;
  htm::Shared<std::uint32_t> order_cnt;
  htm::Shared<std::uint32_t> remote_cnt;
  // Immutable after population:
  std::array<std::array<char, 24>, 10> dist;  ///< S_DIST_01 .. S_DIST_10
  std::string data;
};

struct HistoryRow {
  htm::Shared<std::uint32_t> c_id;
  htm::Shared<std::uint32_t> c_d_id;
  htm::Shared<std::uint32_t> c_w_id;
  htm::Shared<std::uint32_t> d_id;
  htm::Shared<std::uint32_t> w_id;
  htm::Shared<std::int64_t> amount_cents;
};

// --- transaction inputs / outputs -------------------------------------------

static constexpr int kMaxOrderLines = 15;

struct NewOrderInput {
  int w_id;  // home warehouse
  int d_id;
  int c_id;
  int ol_cnt;  // 5..15
  bool rollback;  ///< the spec's 1% unused-item rollback case
  struct Line {
    int i_id;
    int supply_w_id;  // == w_id for 99% of lines
    int quantity;     // 1..10
  };
  std::array<Line, kMaxOrderLines> lines;
  std::uint64_t entry_d;
};

struct NewOrderResult {
  bool committed = false;  ///< false for the 1% rollback case
  std::int64_t total_cents = 0;
  std::uint32_t o_id = 0;
};

struct PaymentInput {
  int w_id, d_id;          // home district taking the payment
  int c_w_id, c_d_id;      // customer residence (15% remote)
  bool by_last_name;       // 60%
  int c_id;                // when !by_last_name
  std::uint16_t last_code; // when by_last_name
  std::int64_t amount_cents;
};

struct PaymentResult {
  int c_id = 0;
  std::int64_t balance_cents = 0;
};

struct OrderStatusInput {
  int w_id, d_id;
  bool by_last_name;
  int c_id;
  std::uint16_t last_code;
};

struct OrderStatusResult {
  int c_id = 0;
  std::uint32_t o_id = 0;      // 0 = no order found
  std::uint32_t carrier_id = 0;
  int lines = 0;
  std::int64_t balance_cents = 0;
};

struct DeliveryInput {
  int w_id;
  int carrier_id;  // 1..10
  std::uint64_t delivery_d;
};

struct DeliveryResult {
  int delivered = 0;  ///< districts with an order delivered (<= 10)
};

struct StockLevelInput {
  int w_id, d_id;
  int threshold;  // 10..20
};

struct StockLevelResult {
  int low_stock = 0;
  int scanned_lines = 0;
};

// --- database ----------------------------------------------------------------

class Database {
 public:
  explicit Database(Scale scale);
  ~Database();  // defined where Warehouse/District are complete

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Single-threaded, raw-store population per clause 4.3.3 (scaled).
  void populate();

  // The five transactions (clause 2). Each must run inside the appropriate
  // critical section: New-Order / Payment / Delivery under a write lock,
  // Order-Status / Stock-Level under a read lock.
  NewOrderResult new_order(const NewOrderInput& in);
  PaymentResult payment(const PaymentInput& in);
  OrderStatusResult order_status(const OrderStatusInput& in);
  DeliveryResult delivery(const DeliveryInput& in);
  StockLevelResult stock_level(const StockLevelInput& in);

  // Input generators per clause 2 percentages. Deterministic given rng.
  NewOrderInput make_new_order_input(Rng& rng, int home_w) const;
  PaymentInput make_payment_input(Rng& rng, int home_w) const;
  OrderStatusInput make_order_status_input(Rng& rng, int home_w) const;
  DeliveryInput make_delivery_input(Rng& rng, int home_w) const;
  StockLevelInput make_stock_level_input(Rng& rng, int home_w) const;

  const Scale& scale() const noexcept { return scale_; }

  // --- consistency conditions (clause 3.3.2), raw reads, quiescent only ---
  /// C1: for each warehouse, W_YTD == sum of its districts' D_YTD.
  bool check_warehouse_ytd() const;
  /// C2: per district, D_NEXT_O_ID - 1 == max order id in the ring.
  bool check_next_order_id() const;
  /// C3: every undelivered order in the new-order queue exists in the ring
  /// with carrier 0; delivered orders are not queued.
  bool check_new_order_queue() const;
  /// C4: per order, O_OL_CNT equals its populated order lines.
  bool check_order_line_counts() const;

  /// Aggregate balance invariant used by the concurrency tests:
  /// sum(c_balance) + sum(payments) - sum(delivered ol_amount) == 0.
  std::int64_t raw_total_balance_drift() const;

  /// Raw views for tests (quiescent state only).
  std::string raw_customer_data(int w, int d, int c) const;
  bool raw_customer_good_credit(int w, int d, int c) const;

 private:
  friend class DatabaseTestPeer;

  struct District;
  struct Warehouse;

  std::uint32_t customer_index(int w, int d, int c) const noexcept;
  District& district(int w, int d) noexcept;
  const District& district(int w, int d) const noexcept;
  CustomerRow& customer(int w, int d, int c) noexcept;
  const CustomerRow& customer(int w, int d, int c) const noexcept;
  StockRow& stock(int w, int i) noexcept;
  const StockRow& stock(int w, int i) const noexcept;

  /// Clause 2.5.2.2/2.6.2.2: pick the ceil(n/2)-th customer (1-based) among
  /// those with the given last name, ordered by first name.
  int select_customer_by_last_name(int w, int d, std::uint16_t code) const;

  HistoryRow& next_history_row();

  // Composite index keys for the shadow trees.
  std::uint64_t district_key(int w, int d, std::uint64_t k) const noexcept {
    return (static_cast<std::uint64_t>(w) * 100 + static_cast<std::uint64_t>(d))
               << 32 |
           k;
  }

  Scale scale_;
  NuRand nurand_;

  std::vector<ItemRow> items_;
  std::vector<std::unique_ptr<Warehouse>> warehouses_;
  std::vector<CacheLinePadded<htm::Shared<std::uint32_t>>> history_next_;
  aligned_vector<HistoryRow> history_;

  // Shadow B+-trees (see index_shadow.h): every logical index access walks
  // one, giving transactions the read/write footprint and conflict surface
  // of the tree-indexed port the paper benchmarks.
  IndexShadow item_index_{2048, 64};
  IndexShadow stock_index_{8192, 256};
  IndexShadow customer_index_{4096, 128};
  IndexShadow order_index_{8192, 256};
  IndexShadow orderline_index_{16384, 512};
};

}  // namespace sprwl::tpcc
