#include "fault/fault.h"

#include <cstdlib>

namespace sprwl::fault {

namespace {

/// Uniform pick in [lo, hi] from a stream.
std::uint64_t pick(Rng& rng, std::uint64_t lo, std::uint64_t hi) {
  return rng.next_in(lo, hi);
}

}  // namespace

FaultPlan FaultPlan::chaos(std::uint64_t seed, int threads,
                           std::uint64_t horizon) {
  FaultPlan plan;
  plan.seed = seed;
  std::uint64_t sm = seed ^ 0xc4a7ba11dead5eedULL;
  Rng rng(splitmix64(sm));
  const auto t = static_cast<std::uint64_t>(threads);

  // Preemptions: a handful of bounded deschedules, biased toward reader
  // bodies — a reader frozen with its state flag raised is the adversarial
  // schedule for SpRWL's writers.
  const int n_preempts = static_cast<int>(pick(rng, 2, 6));
  for (int i = 0; i < n_preempts; ++i) {
    PreemptSpec s;
    s.point = rng.next_bool(0.5)
                  ? InjectPoint::kReadBody
                  : static_cast<InjectPoint>(rng.next_below(6));
    s.tid = static_cast<int>(rng.next_below(t));
    s.not_before = pick(rng, 0, horizon / 2);
    s.duration = pick(rng, horizon / 64, horizon / 8);
    s.count = static_cast<int>(pick(rng, 1, 3));
    plan.preempts.push_back(s);
  }

  // Interrupt storm across a random sub-window, most of the time.
  if (rng.next_bool(0.7)) {
    plan.storm.from = pick(rng, 0, horizon / 2);
    plan.storm.until = plan.storm.from + pick(rng, horizon / 8, horizon / 2);
    plan.storm.peak_rate = 0.02 + 0.10 * rng.next_double();
  }

  // Capacity jitter, half the time.
  if (rng.next_bool(0.5)) {
    plan.jitter.from = pick(rng, 0, horizon / 2);
    plan.jitter.until = plan.jitter.from + pick(rng, horizon / 8, horizon / 2);
    plan.jitter.min_scale = 0.25;
    plan.jitter.max_scale = 1.0;
  }

  // One reader that keeps issuing syscalls inside its section for a while.
  if (rng.next_bool(0.5)) {
    SyscallSpec s;
    s.point = InjectPoint::kReadBody;
    s.tid = static_cast<int>(rng.next_below(t));
    s.from = pick(rng, 0, horizon / 2);
    s.until = s.from + pick(rng, horizon / 8, horizon / 2);
    s.cost = pick(rng, 500, 3'000);
    plan.syscalls.push_back(s);
  }
  return plan;
}

FaultPlan FaultPlan::chaos_nodes(std::uint64_t seed, std::uint64_t horizon,
                                 const sim::Topology& topo) {
  FaultPlan plan;
  plan.seed = seed;
  plan.topology = topo;
  std::uint64_t sm = seed ^ 0xd15717eadbeefca5ULL;
  Rng rng(splitmix64(sm));
  const auto nodes = static_cast<std::uint64_t>(topo.nodes < 1 ? 1 : topo.nodes);

  // One node crash-stops somewhere in the first half of the run, leaving
  // its lease (if it holds one) to expire and its payloads possibly torn.
  NodeCrashSpec crash;
  crash.node = static_cast<int>(rng.next_below(nodes));
  crash.at = pick(rng, horizon / 8, horizon / 2);
  plan.crashes.push_back(crash);

  // Usually also a partition against a *different* node: its renewal
  // traffic stalls long enough to lose the lease, exercising the
  // stale-holder fence rather than the crash path.
  if (nodes > 1 && rng.next_bool(0.7)) {
    PartitionSpec part;
    part.node = static_cast<int>((static_cast<std::uint64_t>(crash.node) + 1 +
                                  rng.next_below(nodes - 1)) %
                                 nodes);
    part.from = pick(rng, 0, horizon / 2);
    part.until = part.from + pick(rng, horizon / 8, horizon / 3);
    plan.partitions.push_back(part);
  }

  // A few preemptions aimed at the lease windows so renew/expire decisions
  // interleave with reads and writes in flight.
  const int n_preempts = static_cast<int>(pick(rng, 1, 3));
  for (int i = 0; i < n_preempts; ++i) {
    PreemptSpec s;
    s.point = rng.next_bool(0.5) ? InjectPoint::kLeaseRenew
                                 : InjectPoint::kLeaseExpire;
    s.tid = -1;
    s.not_before = pick(rng, 0, horizon / 2);
    s.duration = pick(rng, horizon / 64, horizon / 16);
    s.count = static_cast<int>(pick(rng, 1, 2));
    plan.preempts.push_back(s);
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, sim::Simulator* sim,
                             htm::Engine* engine)
    : plan_(std::move(plan)), sim_(sim), engine_(engine) {
  const int n = engine_ != nullptr ? engine_->config().max_threads : 256;
  rngs_.reserve(static_cast<std::size_t>(n));
  std::uint64_t sm = plan_.seed ^ 0xfa5151dec0ffee11ULL;
  for (int i = 0; i < n; ++i) rngs_.emplace_back(splitmix64(sm));
  if (engine_ != nullptr) base_rate_ = engine_->spurious_abort_rate();
  jittered_.assign(static_cast<std::size_t>(n), false);
  crashed_.assign(
      static_cast<std::size_t>(plan_.topology.nodes < 1 ? 1
                                                        : plan_.topology.nodes),
      false);
}

void FaultInjector::apply_storm(std::uint64_t now) {
  const AbortStormSpec& s = plan_.storm;
  if (engine_ == nullptr || s.until <= s.from || s.peak_rate <= 0.0) return;
  double rate = base_rate_;
  if (now >= s.from && now < s.until) {
    const double x = static_cast<double>(now - s.from) /
                     static_cast<double>(s.until - s.from);
    rate += s.peak_rate * (x < 0.5 ? 2.0 * x : 2.0 * (1.0 - x));
  }
  if (rate != applied_rate_) {
    engine_->set_spurious_abort_rate(rate);
    applied_rate_ = rate;
    if (rate > stats_.peak_applied_rate) stats_.peak_applied_rate = rate;
  }
}

void FaultInjector::apply_jitter(std::uint64_t now, int tid) {
  const CapacityJitterSpec& j = plan_.jitter;
  if (engine_ == nullptr || j.until <= j.from) return;
  if (tid < 0 || tid >= static_cast<int>(rngs_.size())) return;
  const htm::CapacityProfile base = engine_->config().capacity;
  const auto idx = static_cast<std::size_t>(tid);
  if (now >= j.from && now < j.until) {
    const double scale =
        j.min_scale + (j.max_scale - j.min_scale) * rngs_[idx].next_double();
    const auto scaled = [scale](std::uint32_t lines) {
      const double s = static_cast<double>(lines) * scale;
      return s < 1.0 ? 1u : static_cast<std::uint32_t>(s);
    };
    engine_->set_thread_capacity(tid, scaled(base.read_lines),
                                 scaled(base.write_lines));
    jittered_[idx] = true;
    ++stats_.capacity_jitters;
  } else if (jittered_[idx]) {
    engine_->set_thread_capacity(tid, base.read_lines, base.write_lines);
    jittered_[idx] = false;
  }
}

bool FaultInjector::apply_preempts(InjectPoint p, std::uint64_t now, int tid) {
  for (PreemptSpec& s : plan_.preempts) {
    if (s.count <= 0 || s.point != p) continue;
    if (s.tid != -1 && s.tid != tid) continue;
    if (now < s.not_before) continue;
    --s.count;
    ++stats_.preemptions;
    trace::emit(trace::Event::kFaultPreempt,
                static_cast<std::uint32_t>(
                    s.duration > 0xffffffffULL ? 0xffffffffULL : s.duration));
    if (sim_ != nullptr) sim_->deschedule_current_until(now + s.duration);
    // A context switch kills any in-flight transaction (best-effort HTM);
    // the abort unwinds to the enclosing try_transaction like any other.
    if (engine_ != nullptr && engine_->in_tx()) {
      throw htm::AbortException(htm::AbortCause::kSpurious, 0);
    }
    return true;
  }
  return false;
}

void FaultInjector::apply_syscalls(InjectPoint p, std::uint64_t now, int tid) {
  for (const SyscallSpec& s : plan_.syscalls) {
    if (s.point != p) continue;
    if (s.tid != -1 && s.tid != tid) continue;
    if (now < s.from || now >= s.until) continue;
    ++stats_.syscalls;
    trace::emit(trace::Event::kFaultSyscall);
    if (engine_ != nullptr) {
      engine_->syscall(s.cost);  // aborts the enclosing transaction, if any
    } else {
      platform::advance(s.cost);
    }
    return;
  }
}

void FaultInjector::apply_crashes(std::uint64_t now, int tid) {
  if (plan_.crashes.empty() || tid < 0) return;
  const int node = plan_.topology.node_of(tid);
  for (NodeCrashSpec& s : plan_.crashes) {
    if (s.fired || s.node != node || now < s.at) continue;
    s.fired = true;
    ++stats_.node_crashes;
    if (s.node >= 0 && s.node < static_cast<int>(crashed_.size())) {
      crashed_[static_cast<std::size_t>(s.node)] = true;
    }
  }
  if (!node_is_crashed(node)) return;
  // Crash-stop: the fiber dies here — but never from inside a transaction.
  // A context switch on real hardware would abort the transaction first and
  // leave memory at its pre-transaction state; modelling that as an abort
  // lets the engine unwind cleanly, and the fiber dies at the retry path's
  // next (non-transactional) checkpoint.
  if (engine_ != nullptr && engine_->in_tx()) {
    throw htm::AbortException(htm::AbortCause::kSpurious, 0);
  }
  ++stats_.crash_kills;
  throw NodeCrashed{node};
}

std::uint64_t FaultInjector::partition_heal_time(int node,
                                                 std::uint64_t now) noexcept {
  for (const PartitionSpec& s : plan_.partitions) {
    if (s.node != node || s.until <= s.from) continue;
    if (now >= s.from && now < s.until) {
      ++stats_.partition_stalls;
      return s.until;
    }
  }
  return 0;
}

void FaultInjector::on_point(InjectPoint p) {
  const std::uint64_t now = platform::now();
  const int tid = platform::thread_id();
  apply_storm(now);
  apply_jitter(now, tid);
  apply_crashes(now, tid);
  apply_preempts(p, now, tid);
  apply_syscalls(p, now, tid);
}

std::uint64_t env_seed(std::uint64_t fallback) {
  const char* s = std::getenv("SPRWL_SEED");
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0' ? v : fallback;
}

}  // namespace sprwl::fault
