// Chaos harness: seeded random fault scenarios with invariant checking.
//
// Runs a read/write workload over a small array of padded shared cells
// under any lock of the library, with a FaultPlan injected, and checks the
// three properties a correct lock must keep *under any schedule*:
//
//  * mutual exclusion / no lost updates — every committed write increments
//    all cells by one, so the final value must equal the number of
//    committed write sections;
//  * reader isolation — a reader observing two cells with different values
//    saw a torn update;
//  * progress — the run must finish before the virtual-time watchdog
//    (sim::SimConfig::max_virtual_time); a deadlock or livelock surfaces
//    deterministically as completed == false instead of a hung test.
//
// The harness is deliberately lock-agnostic (same shape as the lock-safety
// typed tests) so SpRWL, TLE and the pessimistic baselines run the exact
// same schedules — which is what lets the chaos bench show SpRWL readers
// riding out an interrupt storm that collapses TLE onto its fallback lock.
#pragma once

#include <cstdint>
#include <vector>

#include "common/platform.h"
#include "common/rng.h"
#include "fault/fault.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "locks/stats.h"
#include "sim/simulator.h"

namespace sprwl::fault {

struct ChaosConfig {
  int threads = 8;
  /// The last `writers` thread ids update; the rest read. Keeping tid 0 a
  /// reader keeps SpRWL's sampler on the reader EMA, which the
  /// stalled-reader watchdog derives its threshold from.
  int writers = 2;
  int ops_per_thread = 150;
  std::uint64_t seed = 1;
  std::uint64_t reader_work = 800;   ///< cycles of work inside a read section
  std::uint64_t writer_work = 300;   ///< cycles of work inside an update
  std::uint64_t between_ops = 400;   ///< max private work between sections
  /// Progress watchdog: the whole scenario must finish within this much
  /// virtual time or the run is reported as not completed.
  std::uint64_t max_virtual_time = 4ULL * 1000 * 1000 * 1000;
};

struct ChaosResult {
  bool completed = false;          ///< progress watchdog verdict
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t torn_reads = 0;    ///< isolation violations observed
  std::uint64_t lost_updates = 0;  ///< committed writes missing from memory
  std::uint64_t final_value = 0;
  std::uint64_t final_time = 0;    ///< virtual time of the last fiber
  FaultStats faults;
  locks::LockStats lock_stats;
  htm::EngineStats engine_stats;

  bool invariants_ok() const noexcept {
    return completed && torn_reads == 0 && lost_updates == 0;
  }
};

/// Runs one chaos scenario. Deterministic given (cfg.seed, plan).
template <class Lock>
ChaosResult run_chaos(Lock& lock, htm::Engine& engine, const ChaosConfig& cfg,
                      const FaultPlan& plan) {
  struct alignas(64) Cell {
    htm::Shared<std::uint64_t> v;
  };
  constexpr std::size_t kCells = 4;
  std::vector<Cell> cells(kCells);
  std::vector<std::uint64_t> commits(static_cast<std::size_t>(cfg.threads), 0);
  std::vector<std::uint64_t> torn(static_cast<std::size_t>(cfg.threads), 0);
  std::vector<std::uint64_t> ops(static_cast<std::size_t>(cfg.threads), 0);

  sim::SimConfig scfg;
  scfg.max_virtual_time = cfg.max_virtual_time;
  sim::Simulator sim(scfg);
  FaultInjector injector(plan, &sim, &engine);
  FaultScope fscope(injector);
  // Installed once around the whole run (not per fiber): fibers finish at
  // different virtual times, and a per-fiber scope would uninstall the
  // engine under the feet of the fibers still running.
  htm::EngineScope escope(engine);

  engine.reset_stats();
  lock.reset_stats();

  ChaosResult res;
  try {
    sim.run(cfg.threads, [&](int tid) {
      Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(tid));
      const auto me = static_cast<std::size_t>(tid);
      const bool is_writer = tid >= cfg.threads - cfg.writers;
      for (int i = 0; i < cfg.ops_per_thread; ++i) {
        if (is_writer) {
          lock.write(1, [&] {
            checkpoint(InjectPoint::kWriteBody);
            const std::uint64_t v = cells[0].v.load() + 1;
            platform::advance(cfg.writer_work);
            for (std::size_t c = 0; c < kCells; ++c) cells[c].v.store(v);
          });
          ++commits[me];  // outside the body: counted once per commit
        } else {
          // Assigned (not accumulated) inside the body so aborted HTM
          // attempts of the same section cannot double-count.
          std::uint64_t torn_here = 0;
          lock.read(0, [&] {
            torn_here = 0;
            checkpoint(InjectPoint::kReadBody);
            const std::uint64_t a = cells[0].v.load();
            platform::advance(cfg.reader_work);
            for (std::size_t c = 1; c < kCells; ++c) {
              if (cells[c].v.load() != a) ++torn_here;
            }
          });
          torn[me] += torn_here;
        }
        ++ops[me];
        platform::advance(1 + rng.next_below(cfg.between_ops));
      }
    });
    res.completed = true;
  } catch (const sim::SimTimeLimitError&) {
    res.completed = false;  // the progress watchdog converts hangs to data
  }

  for (int t = 0; t < cfg.threads; ++t) {
    const auto i = static_cast<std::size_t>(t);
    res.torn_reads += torn[i];
    res.writes += commits[i];
    if (t < cfg.threads - cfg.writers) res.reads += ops[i];
  }
  res.final_value = cells[0].v.raw_load();
  for (std::size_t c = 1; c < kCells; ++c) {
    if (cells[c].v.raw_load() != res.final_value) ++res.torn_reads;
  }
  res.lost_updates =
      res.writes > res.final_value ? res.writes - res.final_value : 0;
  res.final_time = sim.final_time();
  res.faults = injector.stats();
  res.lock_stats = lock.stats();
  res.engine_stats = engine.stats();
  return res;
}

}  // namespace sprwl::fault
