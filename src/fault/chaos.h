// Chaos harness: seeded random fault scenarios with invariant checking.
//
// Runs a read/write workload over a small array of padded shared cells
// under any lock of the library, with a FaultPlan injected, and checks the
// three properties a correct lock must keep *under any schedule*:
//
//  * mutual exclusion / no lost updates — every committed write increments
//    all cells by one, so the final value must equal the number of
//    committed write sections;
//  * reader isolation — a reader observing two cells with different values
//    saw a torn update;
//  * progress — the run must finish before the virtual-time watchdog
//    (sim::SimConfig::max_virtual_time); a deadlock or livelock surfaces
//    deterministically as completed == false instead of a hung test.
//
// The harness is deliberately lock-agnostic (same shape as the lock-safety
// typed tests) so SpRWL, TLE and the pessimistic baselines run the exact
// same schedules — which is what lets the chaos bench show SpRWL readers
// riding out an interrupt storm that collapses TLE onto its fallback lock.
#pragma once

#include <cstdint>
#include <vector>

#include "common/platform.h"
#include "common/rng.h"
#include "dist/lock_service.h"
#include "fault/fault.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "locks/stats.h"
#include "sim/simulator.h"

namespace sprwl::fault {

struct ChaosConfig {
  int threads = 8;
  /// The last `writers` thread ids update; the rest read. Keeping tid 0 a
  /// reader keeps SpRWL's sampler on the reader EMA, which the
  /// stalled-reader watchdog derives its threshold from.
  int writers = 2;
  int ops_per_thread = 150;
  std::uint64_t seed = 1;
  std::uint64_t reader_work = 800;   ///< cycles of work inside a read section
  std::uint64_t writer_work = 300;   ///< cycles of work inside an update
  std::uint64_t between_ops = 400;   ///< max private work between sections
  /// Progress watchdog: the whole scenario must finish within this much
  /// virtual time or the run is reported as not completed.
  std::uint64_t max_virtual_time = 4ULL * 1000 * 1000 * 1000;
};

struct ChaosResult {
  bool completed = false;          ///< progress watchdog verdict
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t torn_reads = 0;    ///< isolation violations observed
  std::uint64_t lost_updates = 0;  ///< committed writes missing from memory
  std::uint64_t final_value = 0;
  std::uint64_t final_time = 0;    ///< virtual time of the last fiber
  FaultStats faults;
  locks::LockStats lock_stats;
  htm::EngineStats engine_stats;

  bool invariants_ok() const noexcept {
    return completed && torn_reads == 0 && lost_updates == 0;
  }
};

/// Runs one chaos scenario. Deterministic given (cfg.seed, plan).
template <class Lock>
ChaosResult run_chaos(Lock& lock, htm::Engine& engine, const ChaosConfig& cfg,
                      const FaultPlan& plan) {
  struct alignas(64) Cell {
    htm::Shared<std::uint64_t> v;
  };
  constexpr std::size_t kCells = 4;
  std::vector<Cell> cells(kCells);
  std::vector<std::uint64_t> commits(static_cast<std::size_t>(cfg.threads), 0);
  std::vector<std::uint64_t> torn(static_cast<std::size_t>(cfg.threads), 0);
  std::vector<std::uint64_t> ops(static_cast<std::size_t>(cfg.threads), 0);

  sim::SimConfig scfg;
  scfg.max_virtual_time = cfg.max_virtual_time;
  sim::Simulator sim(scfg);
  FaultInjector injector(plan, &sim, &engine);
  FaultScope fscope(injector);
  // Installed once around the whole run (not per fiber): fibers finish at
  // different virtual times, and a per-fiber scope would uninstall the
  // engine under the feet of the fibers still running.
  htm::EngineScope escope(engine);

  engine.reset_stats();
  lock.reset_stats();

  ChaosResult res;
  try {
    sim.run(cfg.threads, [&](int tid) {
      Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(tid));
      const auto me = static_cast<std::size_t>(tid);
      const bool is_writer = tid >= cfg.threads - cfg.writers;
      for (int i = 0; i < cfg.ops_per_thread; ++i) {
        if (is_writer) {
          lock.write(1, [&] {
            checkpoint(InjectPoint::kWriteBody);
            const std::uint64_t v = cells[0].v.load() + 1;
            platform::advance(cfg.writer_work);
            for (std::size_t c = 0; c < kCells; ++c) cells[c].v.store(v);
          });
          ++commits[me];  // outside the body: counted once per commit
        } else {
          // Assigned (not accumulated) inside the body so aborted HTM
          // attempts of the same section cannot double-count.
          std::uint64_t torn_here = 0;
          lock.read(0, [&] {
            torn_here = 0;
            checkpoint(InjectPoint::kReadBody);
            const std::uint64_t a = cells[0].v.load();
            platform::advance(cfg.reader_work);
            for (std::size_t c = 1; c < kCells; ++c) {
              if (cells[c].v.load() != a) ++torn_here;
            }
          });
          torn[me] += torn_here;
        }
        ++ops[me];
        platform::advance(1 + rng.next_below(cfg.between_ops));
      }
    });
    res.completed = true;
  } catch (const sim::SimTimeLimitError&) {
    res.completed = false;  // the progress watchdog converts hangs to data
  }

  for (int t = 0; t < cfg.threads; ++t) {
    const auto i = static_cast<std::size_t>(t);
    res.torn_reads += torn[i];
    res.writes += commits[i];
    if (t < cfg.threads - cfg.writers) res.reads += ops[i];
  }
  res.final_value = cells[0].v.raw_load();
  for (std::size_t c = 1; c < kCells; ++c) {
    if (cells[c].v.raw_load() != res.final_value) ++res.torn_reads;
  }
  res.lost_updates =
      res.writes > res.final_value ? res.writes - res.final_value : 0;
  res.final_time = sim.final_time();
  res.faults = injector.stats();
  res.lock_stats = lock.stats();
  res.engine_stats = engine.stats();
  return res;
}

// ---------------------------------------------------------------------------
// Distributed-tier chaos: the same invariant carrier run over a dist::Shard
// across a multi-node topology, with node-scoped faults (crash-stop,
// partitions) in the plan. Adds two invariants the single-node harness has
// no use for:
//
//  * no stale reads — the payload is a monotonic counter, so a *validated*
//    read must never observe a smaller value than the same thread's
//    previous read (the anomaly a skipped version re-validation admits);
//  * crash consistency — fibers of a crashed node die at checkpoints
//    (NodeCrashed), their lease expires, and the next holder's recovery
//    must leave the payload consistent: the final cells must agree and
//    account for every acknowledged write.
// ---------------------------------------------------------------------------

struct DistChaosConfig {
  /// Multi-node shape (sim::Topology::split_nodes). Also the fiber count:
  /// threads are spread node-major over the nodes.
  sim::Topology topology = sim::Topology::split_nodes(8, 2);
  int threads = 8;
  int writers = 2;  ///< spread evenly over the thread ids (and so the nodes)
  int ops_per_thread = 120;
  std::uint64_t seed = 1;
  std::uint64_t writer_work = 300;
  std::uint64_t between_ops = 400;
  std::uint64_t max_virtual_time = 4ULL * 1000 * 1000 * 1000;
};

struct DistChaosResult {
  bool completed = false;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;          ///< acknowledged (returned-true) writes
  std::uint64_t torn_reads = 0;      ///< accepted copy with disagreeing cells
  std::uint64_t stale_reads = 0;     ///< accepted copy went backwards
  std::uint64_t read_failures = 0;
  std::uint64_t write_failures = 0;
  std::uint64_t crashed_fibers = 0;  ///< fibers killed by a node crash
  std::uint64_t final_value = 0;
  std::uint64_t final_time = 0;
  FaultStats faults;
  std::uint64_t recoveries = 0;
  std::uint64_t write_abandons = 0;
  std::uint64_t read_escalations = 0;
  std::uint64_t node_transfers = 0;

  /// A crashed writer may have published its last write without living to
  /// acknowledge it, so final_value may exceed `writes` by at most the
  /// number of crashed fibers; it must never fall short (lost update).
  bool invariants_ok() const noexcept {
    return completed && torn_reads == 0 && stale_reads == 0 &&
           writes <= final_value &&
           final_value <= writes + crashed_fibers;
  }
};

/// Runs one distributed chaos scenario over a fresh shard.
/// Deterministic given (cfg.seed, plan).
inline DistChaosResult run_dist_chaos(dist::Shard& shard, htm::Engine& engine,
                                      const DistChaosConfig& cfg,
                                      const FaultPlan& plan) {
  const std::size_t cells = shard.config().cells;
  const auto n = static_cast<std::size_t>(cfg.threads);
  std::vector<std::uint64_t> commits(n, 0), torn(n, 0), stale(n, 0);
  std::vector<std::uint64_t> reads(n, 0), rfail(n, 0), wfail(n, 0);
  std::vector<std::uint64_t> died(n, 0);

  sim::SimConfig scfg;
  scfg.max_virtual_time = cfg.max_virtual_time;
  scfg.topology = cfg.topology;
  sim::Simulator sim(scfg);
  FaultInjector injector(plan, &sim, &engine);
  FaultScope fscope(injector);
  htm::EngineScope escope(engine);
  engine.reset_stats();

  DistChaosResult res;
  try {
    sim.run(cfg.threads, [&](int tid) {
      Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL +
              static_cast<std::uint64_t>(tid));
      const auto me = static_cast<std::size_t>(tid);
      // Bresenham spread: exactly cfg.writers writer tids, spaced evenly
      // across the id range — and therefore across the nodes, so a node
      // crash can take a lease holder down and another node takes over.
      const bool is_writer =
          (static_cast<std::int64_t>(tid) * cfg.writers) % cfg.threads <
          cfg.writers;
      std::vector<std::uint64_t> buf(cells, 0);
      std::uint64_t last_seen = 0;
      try {
        for (int i = 0; i < cfg.ops_per_thread; ++i) {
          if (is_writer) {
            const bool ok = shard.write(tid, [&](std::uint64_t* vals,
                                                 std::size_t nc) {
              platform::advance(cfg.writer_work);
              const std::uint64_t v = vals[0] + 1;
              for (std::size_t c = 0; c < nc; ++c) vals[c] = v;
            });
            if (ok) {
              ++commits[me];
            } else {
              ++wfail[me];
            }
          } else {
            if (shard.read(tid, buf.data())) {
              ++reads[me];
              for (std::size_t c = 1; c < cells; ++c) {
                if (buf[c] != buf[0]) {
                  ++torn[me];
                  break;
                }
              }
              if (buf[0] < last_seen) ++stale[me];
              if (buf[0] > last_seen) last_seen = buf[0];
            } else {
              ++rfail[me];
            }
          }
          platform::advance(1 + rng.next_below(cfg.between_ops));
        }
      } catch (const NodeCrashed&) {
        died[me] = 1;  // crash-stop: the fiber ends here, state untouched
      }
    });
    res.completed = true;
  } catch (const sim::SimTimeLimitError&) {
    res.completed = false;
  }

  for (std::size_t i = 0; i < n; ++i) {
    res.reads += reads[i];
    res.writes += commits[i];
    res.torn_reads += torn[i];
    res.stale_reads += stale[i];
    res.read_failures += rfail[i];
    res.write_failures += wfail[i];
    res.crashed_fibers += died[i];
  }
  res.final_value = shard.raw_cell(0);
  for (std::size_t c = 1; c < cells; ++c) {
    if (shard.raw_cell(c) != res.final_value) ++res.torn_reads;
  }
  // A payload left mid-publish by the very last crash is still "consistent
  // after recovery" — but nobody recovered it (the run ended). Exclude that
  // one case from the final-cells check by accepting an odd version only
  // when a crash happened.
  if ((shard.raw_version() & 1) != 0 && res.crashed_fibers == 0) {
    ++res.torn_reads;
  }
  res.final_time = sim.final_time();
  res.faults = injector.stats();
  const dist::ShardStats& ss = shard.stats();
  res.recoveries = ss.recoveries.load(std::memory_order_relaxed);
  res.write_abandons = ss.write_abandons.load(std::memory_order_relaxed);
  res.read_escalations = ss.read_escalations.load(std::memory_order_relaxed);
  res.node_transfers = engine.stats().node_transfers;
  return res;
}

// ---------------------------------------------------------------------------
// Torn-read oracle: *manufactures* split cross-node copies and asserts the
// version-validation loop rejects every torn observation. A reader fiber
// issues raw optimistic attempts whose payload copy stalls mid-way
// (Shard::read_once_split) while a writer on another node publishes
// continuously — so the copy's two halves deliberately straddle commits.
// Every attempt whose copied data disagrees across cells must have been
// rejected by the validation; one accepted torn copy is an oracle failure.
// With ShardConfig::broken_skip_read_validation the same harness must see
// accepted torn copies — the oracle validating itself.
// ---------------------------------------------------------------------------

struct TornOracleConfig {
  std::uint64_t seed = 1;
  int attempts = 400;                ///< split read attempts to issue
  std::uint64_t mid_copy_stall = 6'000;  ///< cycles between the copy halves
  std::uint64_t writer_gap = 300;    ///< writer pacing between publishes
  std::uint64_t max_virtual_time = 4ULL * 1000 * 1000 * 1000;
};

struct TornOracleResult {
  bool completed = false;
  std::uint64_t attempts = 0;
  std::uint64_t splits = 0;         ///< attempts whose copied data was torn
  std::uint64_t accepted_torn = 0;  ///< torn copies the validation let through
  std::uint64_t accepted = 0;       ///< validated (accepted) attempts
  std::uint64_t stale_accepted = 0; ///< accepted copies that went backwards

  bool oracle_ok() const noexcept {
    return completed && splits > 0 && accepted_torn == 0 &&
           stale_accepted == 0;
  }
};

/// Runs the oracle over a fresh two-node shard: writer on node 1, split
/// reader on node 0. Deterministic given cfg.seed.
inline TornOracleResult run_torn_oracle(dist::Shard& shard,
                                        htm::Engine& engine,
                                        const TornOracleConfig& cfg) {
  const std::size_t cells = shard.config().cells;
  sim::SimConfig scfg;
  scfg.max_virtual_time = cfg.max_virtual_time;
  scfg.topology = shard.config().topology;
  sim::Simulator sim(scfg);
  htm::EngineScope escope(engine);
  engine.reset_stats();

  TornOracleResult res;
  bool reader_done = false;  // fibers are cooperative: a plain flag suffices
  try {
    sim.run(2, [&](int tid) {
      Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL +
              static_cast<std::uint64_t>(tid));
      if (shard.config().topology.node_of(tid) != 0) {
        // Writer: publish monotonically until the reader finished.
        while (!reader_done) {
          shard.write(tid, [](std::uint64_t* vals, std::size_t nc) {
            const std::uint64_t v = vals[0] + 1;
            for (std::size_t c = 0; c < nc; ++c) vals[c] = v;
          });
          platform::advance(1 + rng.next_below(cfg.writer_gap));
        }
        return;
      }
      // Reader: raw split attempts, with every fourth attempt unstalled —
      // the oracle must also prove clean copies *pass* the validation, or
      // a reject-everything bug would score a perfect rejection rate.
      std::vector<std::uint64_t> buf(cells, 0);
      std::uint64_t last = 0;
      for (int a = 0; a < cfg.attempts; ++a) {
        const std::uint64_t stall = a % 4 == 3 ? 0 : cfg.mid_copy_stall;
        const bool ok = shard.read_once_split(buf.data(), stall);
        ++res.attempts;
        bool is_torn = false;
        for (std::size_t c = 1; c < cells; ++c) {
          if (buf[c] != buf[0]) is_torn = true;
        }
        if (is_torn) ++res.splits;
        if (ok) {
          ++res.accepted;
          if (is_torn) ++res.accepted_torn;
          if (buf[0] < last) ++res.stale_accepted;
          if (buf[0] > last) last = buf[0];
        }
        platform::advance(1 + rng.next_below(cfg.writer_gap));
      }
      reader_done = true;
    });
    res.completed = true;
  } catch (const sim::SimTimeLimitError&) {
    res.completed = false;
  }
  return res;
}

}  // namespace sprwl::fault
