// Deterministic fault injection for the virtual-time simulator.
//
// SpRWL's headline claim — uninstrumented readers are immune to HTM's
// best-effort failure modes — is only falsifiable if the reproduction can
// *produce* those failures on demand: a reader descheduled mid-critical-
// section with its state flag raised, an interrupt storm that aborts every
// transaction in flight, a thread whose effective HTM capacity collapses
// under SMT pressure, a syscall in the middle of a speculated reader.
//
// A FaultPlan is a seeded, declarative schedule of such events. The
// FaultInjector executes it at *checkpoints*: well-known points in the lock
// algorithms (entry/body/exit of read and write critical sections) call
// fault::checkpoint(point), which is a single pointer check when no
// injector is installed — production code pays one predictable branch.
// Everything the injector does is driven by virtual time and seeded RNG
// streams, so any failing schedule replays bit-identically from its seed
// (the SPRWL_SEED environment override, env_seed(), standardizes that for
// chaos and stress tests).
//
// Injection mechanisms and what they model:
//  * PreemptSpec    — sim::Simulator::deschedule_current_until(): the OS
//                     deschedules the fiber for a bounded virtual interval;
//                     an in-flight transaction additionally aborts
//                     (hardware kills transactions on context switches).
//  * AbortStormSpec — ramps htm::Engine's spurious-abort rate up and back
//                     down across a window (timer/IPI interrupt storm).
//  * CapacityJitterSpec — per-thread capacity rescaling (an SMT sibling or
//                     cache-polluting co-runner appears and disappears).
//  * SyscallSpec    — htm::Engine::syscall(): aborts the enclosing
//                     transaction, charges ring-transition cost otherwise.
//
// The injector is a sim-mode instrument: checkpoints may deschedule fibers
// and throw AbortException through transactional code, exactly like the
// events they model. Install with FaultScope around a Simulator::run().
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/platform.h"
#include "common/rng.h"
#include "common/trace.h"
#include "htm/engine.h"
#include "sim/simulator.h"

namespace sprwl::fault {

/// Where in a critical section a checkpoint sits. Enter/Exit checkpoints
/// are emitted by the lock implementations at their dangerous windows
/// (reader flag raised but body not yet run / body done but flag not yet
/// cleared); Body checkpoints are emitted by the workload inside the
/// critical section itself.
enum class InjectPoint : std::uint8_t {
  kReadEnter = 0,
  kReadBody,
  kReadExit,
  kWriteEnter,
  kWriteBody,
  kWriteExit,
  /// Distributed-tier lease decision points (src/dist/lease.h): emitted at
  /// every acquire/renew attempt and at every expiry observation
  /// (grant-over-expired, renewal rejection), so DFS/PCT interleave lease
  /// handoffs like any other lock-API hook and node faults land exactly in
  /// the renewal/expiry windows.
  kLeaseRenew,
  kLeaseExpire,
};

inline const char* to_string(InjectPoint p) noexcept {
  switch (p) {
    case InjectPoint::kReadEnter: return "read-enter";
    case InjectPoint::kReadBody: return "read-body";
    case InjectPoint::kReadExit: return "read-exit";
    case InjectPoint::kWriteEnter: return "write-enter";
    case InjectPoint::kWriteBody: return "write-body";
    case InjectPoint::kWriteExit: return "write-exit";
    case InjectPoint::kLeaseRenew: return "lease-renew";
    case InjectPoint::kLeaseExpire: return "lease-expire";
  }
  return "?";
}

/// Deschedule a fiber at a checkpoint for a bounded virtual interval.
struct PreemptSpec {
  InjectPoint point = InjectPoint::kReadBody;
  int tid = -1;                    ///< fiber to preempt; -1 = any fiber
  std::uint64_t not_before = 0;    ///< fire only at now() >= not_before
  std::uint64_t duration = 200'000;  ///< descheduled interval, cycles
  int count = 1;                   ///< remaining firings; 0 = spent
};

/// Every checkpoint execution inside [from, until) performs a syscall.
/// Window semantics (not a count) so that each HTM retry of the same
/// section hits the syscall again — which is what defeats speculation.
struct SyscallSpec {
  InjectPoint point = InjectPoint::kReadBody;
  int tid = -1;
  std::uint64_t from = 0;
  std::uint64_t until = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t cost = 1'500;      ///< ring transition + kernel work, cycles
};

/// Spurious-abort rate ramps linearly 0 -> peak_rate -> 0 across the
/// window (a triangular interrupt storm). Inactive when until <= from.
struct AbortStormSpec {
  std::uint64_t from = 0;
  std::uint64_t until = 0;
  double peak_rate = 0.0;
};

/// While active, each checkpoint re-draws the thread's HTM capacity as a
/// uniform fraction of the base profile in [min_scale, max_scale].
/// Inactive when until <= from.
struct CapacityJitterSpec {
  std::uint64_t from = 0;
  std::uint64_t until = 0;
  double min_scale = 0.25;
  double max_scale = 1.0;
};

/// Node-scoped crash-stop (distributed tier, src/dist/): at the first
/// matching checkpoint executed at now() >= at by any fiber of `node`, the
/// whole node dies — that fiber and every other fiber of the node raise
/// NodeCrashed at their next non-transactional checkpoint. Nothing is
/// cleaned up: a held lease is NOT released (it must expire in virtual
/// time) and half-published payloads stay torn for the next holder's
/// recovery to repair — exactly the crash-stop model lease protocols are
/// specified against.
struct NodeCrashSpec {
  int node = 0;
  std::uint64_t at = 0;  ///< earliest virtual time; fires once
  bool fired = false;
};

/// Node-scoped partition: while now() is inside [from, until), messages
/// between `node` and the lease service stall — the dist layer's
/// acquire/renew paths consult FaultInjector::partition_heal_time() and
/// wait out the heal, which is what pushes a renewal past its lease's
/// expiry (the stale-holder fencing case). Inactive when until <= from.
struct PartitionSpec {
  int node = 0;
  std::uint64_t from = 0;
  std::uint64_t until = 0;
};

/// Raised at a checkpoint by a fiber whose node crash-stopped. Deliberately
/// NOT a std::exception: generic handlers must not swallow a crash — only
/// the dist chaos/bench harnesses, which model per-node failure, catch it.
struct NodeCrashed {
  int node = 0;
};

/// A complete seeded fault schedule.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<PreemptSpec> preempts;
  std::vector<SyscallSpec> syscalls;
  AbortStormSpec storm;
  CapacityJitterSpec jitter;
  /// Node-scoped events; only meaningful with a multi-node topology.
  std::vector<NodeCrashSpec> crashes;
  std::vector<PartitionSpec> partitions;
  /// Maps fiber ids to nodes for the node-scoped events (defaults to a
  /// single node, under which crashes/partitions target node 0 = everyone).
  sim::Topology topology;

  /// Randomized chaos schedule over [0, horizon) for `threads` fibers:
  /// several preemptions at random points (biased toward reader bodies —
  /// the adversarial case for SpRWL), an interrupt storm across a random
  /// sub-window, capacity jitter, and one syscall-window reader.
  /// Deterministic given the seed.
  static FaultPlan chaos(std::uint64_t seed, int threads,
                         std::uint64_t horizon);

  /// Randomized node-scoped chaos over [0, horizon): one node crash at a
  /// random time, usually a partition window against another node, plus a
  /// few preemptions biased into lease renewal/expiry windows.
  /// Deterministic given the seed.
  static FaultPlan chaos_nodes(std::uint64_t seed, std::uint64_t horizon,
                               const sim::Topology& topo);
};

struct FaultStats {
  std::uint64_t preemptions = 0;
  std::uint64_t syscalls = 0;
  std::uint64_t capacity_jitters = 0;
  std::uint64_t node_crashes = 0;     ///< crash specs that fired
  std::uint64_t crash_kills = 0;      ///< fibers killed by a node crash
  std::uint64_t partition_stalls = 0; ///< dist ops stalled by a partition
  double peak_applied_rate = 0.0;  ///< highest storm rate actually applied
};

class FaultInjector {
 public:
  /// `sim` enables preemptions (may be null: preempt specs are skipped);
  /// `engine` enables storms, jitter and syscalls (may be null likewise).
  FaultInjector(FaultPlan plan, sim::Simulator* sim, htm::Engine* engine);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Executes the plan at one checkpoint. May deschedule the calling fiber
  /// and may throw htm::AbortException (via Engine) when the modelled event
  /// kills an in-flight transaction — callers inside transactional code
  /// must let that propagate, exactly as for any transactional access.
  void on_point(InjectPoint p);

  /// True once a NodeCrashSpec for `node` has fired. The dist layer also
  /// checks this directly (e.g. before serving a cross-node read from a
  /// dead node's memory would make no sense to model).
  bool node_is_crashed(int node) const noexcept {
    return node >= 0 && node < static_cast<int>(crashed_.size()) &&
           crashed_[static_cast<std::size_t>(node)];
  }

  /// Heal time of the partition currently stalling `node`'s service
  /// messages, or 0 when none is active at `now`. Callers on the dist
  /// renewal/acquire path wait_until() the heal, modelling the stalled RPC.
  std::uint64_t partition_heal_time(int node, std::uint64_t now) noexcept;

  const FaultStats& stats() const noexcept { return stats_; }
  const FaultPlan& plan() const noexcept { return plan_; }

  static FaultInjector* current() noexcept {
    return g_current.load(std::memory_order_acquire);
  }
  static void set_current(FaultInjector* f) noexcept {
    g_current.store(f, std::memory_order_release);
  }

 private:
  void apply_storm(std::uint64_t now);
  void apply_jitter(std::uint64_t now, int tid);
  bool apply_preempts(InjectPoint p, std::uint64_t now, int tid);
  void apply_syscalls(InjectPoint p, std::uint64_t now, int tid);
  void apply_crashes(std::uint64_t now, int tid);

  FaultPlan plan_;
  sim::Simulator* sim_;
  htm::Engine* engine_;
  FaultStats stats_;
  std::vector<Rng> rngs_;          // one deterministic stream per thread
  std::vector<bool> jittered_;     // threads holding a jittered capacity
  std::vector<bool> crashed_;      // nodes that crash-stopped
  double applied_rate_ = -1.0;     // last storm rate pushed to the engine
  double base_rate_ = 0.0;         // engine's configured rate at install

  static inline std::atomic<FaultInjector*> g_current{nullptr};
};

// InjectPoint rides on the tail block of SchedKind so checkpoint() can
// route to the controlled scheduler with a single add.
static_assert(static_cast<int>(SchedKind::kWriteExit) -
                      static_cast<int>(SchedKind::kReadEnter) ==
                  static_cast<int>(InjectPoint::kWriteExit),
              "SchedKind kReadEnter..kWriteExit must mirror InjectPoint");
static_assert(static_cast<int>(SchedKind::kLeaseExpire) -
                      static_cast<int>(SchedKind::kReadEnter) ==
                  static_cast<int>(InjectPoint::kLeaseExpire),
              "SchedKind kLeaseRenew/kLeaseExpire must mirror InjectPoint");

/// Checkpoint hook called by lock implementations and chaos workloads.
/// One predictable branch when no injector is installed. `obj` identifies
/// the lock instance for the controlled scheduler's independence analysis
/// (src/check/); it is ignored by the fault injector.
inline void checkpoint(InjectPoint p, const void* obj) {
  platform::sched_point(
      static_cast<SchedKind>(static_cast<std::uint8_t>(SchedKind::kReadEnter) +
                             static_cast<std::uint8_t>(p)),
      obj);
  if (FaultInjector* f = FaultInjector::current()) f->on_point(p);
}
inline void checkpoint(InjectPoint p) { checkpoint(p, nullptr); }

/// Dist-layer queries against the installed injector; benign no-ops when
/// none is installed (the common, fault-free case).
inline bool node_crashed(int node) noexcept {
  FaultInjector* f = FaultInjector::current();
  return f != nullptr && f->node_is_crashed(node);
}
inline std::uint64_t partition_heal(int node, std::uint64_t now) noexcept {
  FaultInjector* f = FaultInjector::current();
  return f != nullptr ? f->partition_heal_time(node, now) : 0;
}

/// RAII installer, mirroring htm::EngineScope / trace::TracerScope.
class FaultScope {
 public:
  explicit FaultScope(FaultInjector& f) noexcept
      : prev_(FaultInjector::current()) {
    FaultInjector::set_current(&f);
  }
  ~FaultScope() { FaultInjector::set_current(prev_); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  FaultInjector* prev_;
};

/// Seed-replay discipline for chaos/stress tests: returns the SPRWL_SEED
/// environment value when set, else `fallback`. Failing tests print the
/// seed they ran with, so `SPRWL_SEED=<n> ctest -R ...` reproduces any
/// failing schedule bit-identically.
std::uint64_t env_seed(std::uint64_t fallback);

}  // namespace sprwl::fault
