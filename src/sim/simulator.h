// Deterministic fiber-based virtual-time simulator.
//
// The paper's evaluation ran on a 56-thread Broadwell and an 80-thread
// POWER8. This reproduction runs on whatever host it is given (possibly a
// single core), so wall-clock throughput cannot demonstrate scalability.
// Instead, benchmarks execute their worker threads as cooperatively
// scheduled fibers under a *virtual clock*:
//
//  * every fiber has its own virtual time; the scheduler always runs the
//    fiber with the smallest (time, id), so shared-memory accesses happen
//    in virtual-time order — exactly the interleaving a real machine with
//    one logical CPU per thread would expose;
//  * each shared access / fence / HTM event charges cycles from the
//    CostModel (common/costs.h), so overlap between critical sections is
//    modelled faithfully: N readers that each take T cycles and run
//    concurrently cost ~T of virtual time, not N*T;
//  * runs are bit-deterministic given the workload seed, which the test
//    suite exploits heavily.
//
// Because only one fiber executes at any instant (single OS thread), plain
// std::atomic operations in the algorithm code are trivially well-defined;
// the algorithms still use correct orderings so the same code passes the
// real-thread stress tests.
//
// A fiber must never block on an OS primitive held by another fiber; all
// waiting in this library is spinning via platform::pause(), which advances
// virtual time and yields, so the scheduler always makes progress. A
// configurable virtual-time limit converts livelock bugs into test failures.
//
// Context switching uses a ~20ns hand-rolled x86-64 switch (glibc
// swapcontext would issue a sigprocmask syscall per switch); other
// architectures fall back to ucontext.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/platform.h"

namespace sprwl::sim {

struct SimConfig {
  std::size_t stack_bytes = 256 * 1024;
  /// Virtual-time runaway guard: a fiber whose clock passes this limit
  /// throws SimTimeLimitError (surfaces livelocks deterministically).
  /// 20e9 cycles = 10 virtual seconds at the default 2 GHz — far beyond any
  /// test or bench window, small enough that deadlock tests fail fast.
  std::uint64_t max_virtual_time = 20ULL * 1000 * 1000 * 1000;
};

class SimTimeLimitError : public std::runtime_error {
 public:
  explicit SimTimeLimitError(std::uint64_t t)
      : std::runtime_error("virtual time limit exceeded at " + std::to_string(t)) {}
};

class Simulator {
 public:
  explicit Simulator(SimConfig cfg = {});
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Runs `nthreads` fibers executing body(tid) for tid in [0, nthreads).
  /// Blocks until every fiber finished. Rethrows the first fiber error (the
  /// one earliest in virtual time); remaining fibers still run to
  /// completion (or to the virtual-time limit).
  void run(int nthreads, const std::function<void(int)>& body);

  /// Virtual time at which the last fiber of the previous run() finished.
  std::uint64_t final_time() const noexcept { return final_time_; }

  /// Fault-injection hook: deschedules the *currently running* fiber until
  /// virtual time `until`, modelling an OS preemption — the fiber performs
  /// no work while other fibers run in the gap, and its clock resumes at
  /// `until`. Must be called from inside a fiber of this simulator (no-op
  /// otherwise). Throws SimTimeLimitError past the virtual-time limit, so
  /// runaway fault plans still terminate deterministically.
  void deschedule_current_until(std::uint64_t until);

  /// Count of deschedule_current_until() preemptions in the current/last run.
  std::uint64_t preemptions() const noexcept { return preemptions_; }

  // --- internal (public for the assembly entry thunk) ----------------------
  struct Fiber;
  static void fiber_body(Fiber& f);
  static void exit_fiber(Fiber& f);

 private:
  struct FiberContext;

  struct Entry {
    std::uint64_t time;
    int id;
    bool operator>(const Entry& o) const noexcept {
      return time != o.time ? time > o.time : id > o.id;
    }
  };

  void schedule_loop();
  void fiber_advance(Fiber& f, std::uint64_t cycles);
  void fiber_wait_until(Fiber& f, std::uint64_t t);
  void yield_to_scheduler(Fiber& f);
  void switch_to_fiber(Fiber& f);
  void prepare_fiber(Fiber& f);

  SimConfig cfg_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> ready_;
  const std::function<void(int)>* body_ = nullptr;
  void* sched_rsp_ = nullptr;  // x86-64 fast path save slot
  void* main_ctx_ = nullptr;   // ucontext fallback
  Fiber* running_ = nullptr;   // fiber currently on the CPU (else scheduler)
  // The scheduler's __cxa_eh_globals, saved while a fiber runs. All fibers
  // share one OS thread, so the libstdc++ per-thread exception bookkeeping
  // must be swapped at every context switch — otherwise two fibers that
  // yield inside catch handlers pop each other's in-flight exception
  // objects (see simulator.cpp).
  unsigned char sched_eh_state_[2 * sizeof(void*)] = {};
  // AddressSanitizer fiber bookkeeping; unused outside ASan builds.
  void* sched_fake_stack_ = nullptr;
  const void* sched_stack_bottom_ = nullptr;
  std::size_t sched_stack_size_ = 0;
  std::uint64_t next_wake_ = 0;
  std::uint64_t final_time_ = 0;
  std::uint64_t preemptions_ = 0;

  friend struct FiberContext;
};

/// Convenience harness for the real-thread stress tests: spawns
/// std::threads, assigns dense platform thread ids, joins, rethrows the
/// first worker exception.
void run_real_threads(int nthreads, const std::function<void(int)>& body);

}  // namespace sprwl::sim
