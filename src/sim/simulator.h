// Deterministic fiber-based virtual-time simulator.
//
// The paper's evaluation ran on a 56-thread Broadwell and an 80-thread
// POWER8. This reproduction runs on whatever host it is given (possibly a
// single core), so wall-clock throughput cannot demonstrate scalability.
// Instead, benchmarks execute their worker threads as cooperatively
// scheduled fibers under a *virtual clock*:
//
//  * every fiber has its own virtual time; the scheduler always runs the
//    fiber with the smallest (time, id), so shared-memory accesses happen
//    in virtual-time order — exactly the interleaving a real machine with
//    one logical CPU per thread would expose;
//  * each shared access / fence / HTM event charges cycles from the
//    CostModel (common/costs.h), so overlap between critical sections is
//    modelled faithfully: N readers that each take T cycles and run
//    concurrently cost ~T of virtual time, not N*T;
//  * runs are bit-deterministic given the workload seed, which the test
//    suite exploits heavily.
//
// Because only one fiber executes at any instant (single OS thread), plain
// std::atomic operations in the algorithm code are trivially well-defined;
// the algorithms still use correct orderings so the same code passes the
// real-thread stress tests.
//
// A fiber must never block on an OS primitive held by another fiber; all
// waiting in this library is spinning via platform::pause(), which advances
// virtual time and yields, so the scheduler always makes progress. A
// configurable virtual-time limit converts livelock bugs into test failures.
//
// Scheduler hot path (this is the inner loop of every benchmark, so its
// wall-clock cost gates the whole evaluation pipeline):
//
//  * the ready set is an indexed 4-ary min-heap of (time, id) — flatter
//    than a binary heap (half the levels for the same fiber count, and the
//    four children of a node share a cache line), with a fiber-id → slot
//    index maintained alongside for O(1) membership;
//  * when a yielding fiber already knows the next runnable fiber (the heap
//    minimum), it switches to it *directly* instead of bouncing through the
//    scheduler stack — one context switch per handoff instead of two, which
//    halves switches on ping-pong workloads (SimConfig::direct_switch;
//    disable to get the classic trampoline, kept as the measurable
//    baseline for bench/perf_pipeline). The schedule is identical either
//    way: a fiber yields only when its clock passed the heap minimum, so
//    push-self-then-pop-min selects exactly the fiber the trampoline's
//    pop would have selected;
//  * fiber stacks are recycled through a thread-local pool instead of being
//    freshly allocated (and zeroed) for every run() — a 56-fiber run reuses
//    ~14 MB of stacks that would otherwise be re-touched per data point;
//  * SimStats counts switches, direct switches and heap traffic so the
//    perf trajectory (BENCH_perf.json) can report switches/sec.
//
// Context switching uses a ~20ns hand-rolled x86-64 switch (glibc
// swapcontext would issue a sigprocmask syscall per switch); other
// architectures fall back to ucontext.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/platform.h"
#include "sim/schedule_policy.h"
#include "sim/topology.h"

namespace sprwl::sim {

struct SimConfig {
  std::size_t stack_bytes = 256 * 1024;
  /// Virtual-time runaway guard: a fiber whose clock passes this limit
  /// throws SimTimeLimitError (surfaces livelocks deterministically).
  /// 20e9 cycles = 10 virtual seconds at the default 2 GHz — far beyond any
  /// test or bench window, small enough that deadlock tests fail fast.
  std::uint64_t max_virtual_time = 20ULL * 1000 * 1000 * 1000;
  /// Fiber→fiber handoff without the scheduler trampoline (see the header
  /// comment). Schedules are bit-identical with it on or off; off costs one
  /// extra context switch per yield and exists as the measurable baseline.
  bool direct_switch = true;
  /// Faithful reproduction of the original scheduler for perf baselines
  /// (bench/perf_pipeline's "serial_old" mode): ready set in a binary
  /// std::priority_queue, a fresh zero-initialized stack per fiber per
  /// run() (no pooling), always through the trampoline (direct_switch is
  /// ignored). The schedule — and therefore every virtual-time result — is
  /// bit-identical to the default scheduler; only wall-clock cost differs.
  bool legacy_ready_queue = false;
  /// Controlled-scheduler mode (systematic testing, src/check/): when set,
  /// virtual-time order no longer drives scheduling. Every pause, timed
  /// wait and fault::checkpoint() parks the fiber, and the policy chooses
  /// which parked fiber runs next. Incompatible with legacy_ready_queue.
  SchedulePolicy* policy = nullptr;
  /// Controlled mode: hard cap on decisions per run — a second livelock
  /// backstop (the primary one is no_progress_bound) and the bound that
  /// keeps DFS runs finite on spin-heavy code.
  std::size_t max_decisions = 20000;
  /// Controlled mode: after this many consecutive decision rounds in which
  /// no fiber made progress (every eligible fiber merely re-parked at a
  /// spin pause), the run is declared livelocked/deadlocked and unwound.
  /// 0 (the default) derives the bound from the fiber count at run() entry:
  /// 64 + 16 * nthreads rounds. Queue locks hand off through chains whose
  /// zero-progress prefix grows with the number of parked waiters (an MCS
  /// release walks the whole queue through pause decisions before the next
  /// owner runs), so a flat constant starts flagging healthy handoffs as
  /// livelock around 8 threads. The per-thread term keeps the bound
  /// proportional to the deepest legitimate pending-queue a schedule can
  /// build while still converting true livelocks into verdicts quickly.
  /// Explicit values are honoured unchanged (livelock tests pin small ones).
  int no_progress_bound = 0;

  /// Simulated machine shape (sockets × cores-per-socket). Fiber tid = core
  /// id, socket-major. Consumed by the HTM engine's coherence model and the
  /// topology-aware lock layouts; the simulator itself schedules purely by
  /// virtual time, so the default 1-socket topology changes nothing.
  Topology topology{};

  /// The no-progress bound a run over `nthreads` fibers actually uses.
  int resolved_no_progress_bound(int nthreads) const noexcept {
    if (no_progress_bound > 0) return no_progress_bound;
    return 64 + 16 * (nthreads > 0 ? nthreads : 1);
  }
};

/// Cheap per-run scheduler counters (reset at every run() entry).
struct SimStats {
  std::uint64_t switches = 0;         ///< activations: control entered a fiber
  std::uint64_t direct_switches = 0;  ///< activations done fiber→fiber
  std::uint64_t heap_pushes = 0;
  std::uint64_t heap_pops = 0;
};

class SimTimeLimitError : public std::runtime_error {
 public:
  explicit SimTimeLimitError(std::uint64_t t)
      : std::runtime_error("virtual time limit exceeded at " + std::to_string(t)) {}
};

/// Thrown into fibers to unwind them when a controlled run is abandoned
/// (policy returned kCancelRun, livelock verdict, max_decisions). NOT
/// derived from std::exception on purpose: workload bodies that catch
/// std::exception (or lock code that catches specific exception types and
/// rethrows the rest via `catch (...) { ...; throw; }`) must not swallow
/// it. fiber_body catches it and discards it — a cancelled fiber reports
/// no error.
class RunCancelled {};

class Simulator {
 public:
  explicit Simulator(SimConfig cfg = {});
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Runs `nthreads` fibers executing body(tid) for tid in [0, nthreads).
  /// Blocks until every fiber finished. Rethrows the first fiber error (the
  /// one earliest in virtual time); remaining fibers still run to
  /// completion (or to the virtual-time limit).
  ///
  /// Reuse semantics: a Simulator may run any number of workloads back to
  /// back. Every run() resets the per-run results (final_time(),
  /// preemptions(), stats()) at entry — they always describe the most
  /// recent run, never an accumulation — and recycles fiber stacks through
  /// a thread-local pool, so repeated runs do not re-allocate. run(0) is a
  /// no-op that leaves the previous run's results readable. A Simulator is
  /// single-threaded: run() must not be called concurrently from two OS
  /// threads, but different Simulators on different threads are fine (the
  /// parallel bench runner relies on exactly that).
  void run(int nthreads, const std::function<void(int)>& body);

  /// Virtual time at which the last fiber of the previous run() finished.
  std::uint64_t final_time() const noexcept { return final_time_; }

  /// Fault-injection hook: deschedules the *currently running* fiber until
  /// virtual time `until`, modelling an OS preemption — the fiber performs
  /// no work while other fibers run in the gap, and its clock resumes at
  /// `until`. Must be called from inside a fiber of this simulator (no-op
  /// otherwise). Throws SimTimeLimitError past the virtual-time limit, so
  /// runaway fault plans still terminate deterministically.
  void deschedule_current_until(std::uint64_t until);

  /// Count of deschedule_current_until() preemptions in the current/last run.
  std::uint64_t preemptions() const noexcept { return preemptions_; }

  /// Scheduler counters for the current/last run.
  const SimStats& stats() const noexcept { return stats_; }

  // --- controlled-mode results (meaningful only when cfg.policy != null) ---

  /// The decision sequence of the current/last controlled run: the op that
  /// was chosen (and resumed) at each decision point, in order. Feed the
  /// fiber ids to a ReplayPolicy to reproduce the schedule exactly.
  const std::vector<PendingOp>& decision_trace() const noexcept {
    return trace_;
  }
  /// True when the last controlled run was abandoned because no fiber made
  /// progress within no_progress_bound rounds (livelock/deadlock) or the
  /// max_decisions cap was hit.
  bool livelocked() const noexcept { return livelocked_; }
  /// True when the last controlled run was abandoned for any reason
  /// (policy kCancelRun or livelock verdict) and its fibers were unwound.
  bool cancelled() const noexcept { return cancelled_; }

  // --- internal (public for the assembly entry thunk) ----------------------
  struct Fiber;
  static void fiber_body(Fiber& f);
  static void exit_fiber(Fiber& f);

 private:
  struct FiberContext;

  // Ready-set key, packed as (time << kIdBits) | id so the scheduling
  // order (time, then id) is a single integer compare and four heap
  // children fit in half a cache line. Capacity bounds enforced at run()
  // entry: at most 2^kIdBits fibers, virtual times below 2^(64 - kIdBits)
  // (the default 20e9-cycle limit is ~2^20 below that ceiling).
  struct Entry {
    std::uint64_t key;
    static constexpr int kIdBits = 10;
    static Entry make(std::uint64_t time, int id) noexcept {
      return Entry{(time << kIdBits) | static_cast<std::uint64_t>(id)};
    }
    std::uint64_t time() const noexcept { return key >> kIdBits; }
    int id() const noexcept {
      return static_cast<int>(key & ((1u << kIdBits) - 1));
    }
    bool less_than(const Entry& o) const noexcept { return key < o.key; }
  };

  void schedule_loop();
  void schedule_loop_legacy();
  void schedule_loop_controlled();
  /// Parks the running fiber at a decision point (controlled mode only).
  void controlled_point(SchedKind kind, std::uintptr_t obj);
  /// Resumes fiber f from the scheduler with full context bookkeeping.
  void activate_fiber(Fiber& f);
  /// Unwinds every live fiber with RunCancelled (round-robin until all
  /// done, so unwind-time spin waits — e.g. queue-lock handoffs inside
  /// ScopeExit blocks — still make progress).
  void cancel_all_fibers();
  std::uintptr_t canonical_obj(std::uintptr_t raw);
  void fiber_advance(Fiber& f, std::uint64_t cycles);
  void fiber_wait_until(Fiber& f, std::uint64_t t);
  void yield_from(Fiber& f);
  void yield_to_scheduler(Fiber& f);
  void direct_switch_from(Fiber& f);
  void switch_to_fiber(Fiber& f);
  void prepare_fiber(Fiber& f);

  // Indexed 4-ary min-heap over (time, id); heap_pos_[id] is slot+1 (0 =
  // not queued). See the header comment for why not std::priority_queue.
  bool heap_empty() const noexcept { return heap_.empty(); }
  const Entry& heap_top() const noexcept { return heap_.front(); }
  void heap_push(Entry e);
  Entry heap_pop();
  /// Pops the minimum and inserts `e` in one sift (classic heap replace).
  /// The direct-switch path uses it with e = the yielding fiber, whose time
  /// only just passed the old minimum — the sift usually exits after one
  /// level, where pop-then-push would sink the array tail down the whole
  /// tree and then bubble `e` up again.
  Entry heap_replace_top(Entry e);
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);

  SimConfig cfg_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::vector<Entry> heap_;
  std::vector<std::uint32_t> heap_pos_;
  const std::function<void(int)>* body_ = nullptr;
  void* sched_rsp_ = nullptr;  // x86-64 fast path save slot
  void* main_ctx_ = nullptr;   // ucontext fallback
  Fiber* running_ = nullptr;   // fiber currently on the CPU (else scheduler)
  // The scheduler's __cxa_eh_globals, saved while a fiber runs. All fibers
  // share one OS thread, so the libstdc++ per-thread exception bookkeeping
  // must be swapped at every context switch — otherwise two fibers that
  // yield inside catch handlers pop each other's in-flight exception
  // objects (see simulator.cpp).
  unsigned char sched_eh_state_[2 * sizeof(void*)] = {};
  // AddressSanitizer fiber bookkeeping; unused outside ASan builds. A
  // fiber's first activation may now come from another fiber (direct
  // switch), so fiber_body only records the origin stack as the scheduler's
  // when from_scheduler_ says the activation came from schedule_loop.
  void* sched_fake_stack_ = nullptr;
  const void* sched_stack_bottom_ = nullptr;
  std::size_t sched_stack_size_ = 0;
  bool from_scheduler_ = false;
  bool direct_switch_ = false;  // cfg_.direct_switch, resolved at run() entry
  std::uint64_t next_wake_ = 0;
  std::uint64_t final_time_ = 0;
  std::uint64_t preemptions_ = 0;
  SimStats stats_;
  // Controlled-mode state (all reset at run() entry).
  bool controlled_ = false;
  bool cancel_run_ = false;   // set to start unwinding every live fiber
  bool livelocked_ = false;
  bool cancelled_ = false;
  std::uint64_t progress_ = 0;  // bumped whenever a fiber does real work
  std::vector<PendingOp> trace_;
  std::vector<std::uintptr_t> obj_table_;  // raw obj -> dense per-run id

  friend struct FiberContext;
};

/// Convenience harness for the real-thread stress tests: spawns
/// std::threads, assigns dense platform thread ids, joins, rethrows the
/// first worker exception.
void run_real_threads(int nthreads, const std::function<void(int)>& body);

}  // namespace sprwl::sim
