// Open-loop arrival generation and admission control (DESIGN.md §13).
//
// The figure benches so far are closed-loop: N fibers issue the next
// request the moment the previous one finishes, so offered load can never
// exceed capacity and queues cannot grow. Tail latency under overload —
// the regime deadlines and shedding exist for — needs an *open-loop*
// driver: requests arrive on their own clock whether or not the system
// keeps up, and the backlog (and with it sojourn time) grows without bound
// unless something sheds.
//
// This header provides the three pieces:
//   * generate_arrivals() — a seeded Poisson or bursty (on/off modulated
//     Poisson) arrival sequence in virtual time;
//   * AdmissionConfig — bounded-queue admission control: a request is shed
//     (AcquireResult::kShed) at dispatch when the backlog or its own queue
//     delay exceeds the bound. Shedding is the admission layer's verdict,
//     never a lock's: locks only report kAcquired or kTimeout.
//   * run_open_loop() — a fiber pool that serves the sequence and records
//     per-class (reader/writer) completion, timeout, shed and latency
//     statistics.
//
// Everything is driven by the virtual clock and seeded RNG, so a sweep is
// bit-reproducible given (config, seed) — the BENCH_tail.json goldens rely
// on it.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/histogram.h"
#include "common/platform.h"
#include "common/rng.h"
#include "locks/deadline.h"
#include "sim/simulator.h"

namespace sprwl::sim {

enum class ArrivalProcess : std::uint8_t {
  kPoisson,  ///< memoryless arrivals at a constant mean rate
  kBursty,   ///< on/off modulated Poisson: rate alternates between
             ///< burst_multiplier * rate (on) and a compensating low rate
             ///< (off) so the long-run mean stays `rate`
  kDiurnal,  ///< sinusoidally modulated Poisson: rate(t) = rate * (1 +
             ///< diurnal_amplitude * sin(2π t / diurnal_period)) — the
             ///< smooth day/night swing of production traffic, with the
             ///< long-run mean staying `rate` over whole periods
};

struct Request {
  std::uint64_t arrival = 0;  ///< virtual-time cycles
  bool is_write = false;
};

struct ArrivalConfig {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  /// Mean arrival rate in requests per virtual cycle (e.g. 1e-4 = one
  /// request every 10k cycles on average).
  double rate = 1e-4;
  std::size_t count = 1000;     ///< requests to generate
  double writer_fraction = 0.1;
  std::uint64_t seed = 1;
  /// Bursty process shape: `burst_on` cycles at burst_multiplier * rate,
  /// then `burst_off` cycles at the rate that restores the long-run mean
  /// (clamped at zero when the on-phase alone exceeds the mean budget).
  std::uint64_t burst_on = 400'000;
  std::uint64_t burst_off = 400'000;
  double burst_multiplier = 4.0;
  /// Diurnal process shape: one full sinusoidal swing per period, peak at
  /// rate * (1 + amplitude), trough at rate * (1 - amplitude). Amplitude
  /// must lie in [0, 1] so the instantaneous rate stays nonnegative.
  std::uint64_t diurnal_period = 2'000'000;
  double diurnal_amplitude = 0.8;
};

/// Seeded arrival sequence, sorted by arrival time. Piecewise-constant-rate
/// Poisson sampling: an exponential inter-arrival draw that crosses a phase
/// boundary is discarded and re-drawn from the boundary, which is exact by
/// memorylessness.
inline std::vector<Request> generate_arrivals(const ArrivalConfig& cfg) {
  if (!(cfg.rate > 0)) throw std::invalid_argument("arrival rate must be > 0");
  Rng rng(cfg.seed ^ 0xa27c5f1edb1d2e3fULL);
  const auto exp_draw = [&](double rate) {
    // Inverse-CDF with the draw clamped away from 0 so log() is finite.
    double u = rng.next_double();
    if (u <= 0) u = 0x1.0p-53;
    return -std::log(u) / rate;
  };

  if (cfg.process == ArrivalProcess::kDiurnal) {
    // Lewis–Shedler thinning against the peak rate: exact for an
    // inhomogeneous Poisson process, and every candidate consumes a fixed
    // number of RNG draws so the sequence is seed-reproducible.
    if (cfg.diurnal_period == 0) {
      throw std::invalid_argument("diurnal period must be nonzero");
    }
    if (!(cfg.diurnal_amplitude >= 0.0) || cfg.diurnal_amplitude > 1.0) {
      throw std::invalid_argument("diurnal amplitude must be in [0, 1]");
    }
    const double two_pi = 2.0 * 3.14159265358979323846;
    const double rate_max = cfg.rate * (1.0 + cfg.diurnal_amplitude);
    std::vector<Request> out;
    out.reserve(cfg.count);
    double t = 0;
    while (out.size() < cfg.count) {
      t += exp_draw(rate_max);
      const double phase =
          two_pi * (t / static_cast<double>(cfg.diurnal_period));
      const double r =
          cfg.rate * (1.0 + cfg.diurnal_amplitude * std::sin(phase));
      const double keep = rng.next_double();
      if (keep * rate_max <= r) {
        out.push_back(Request{static_cast<std::uint64_t>(t),
                              rng.next_bool(cfg.writer_fraction)});
      }
    }
    return out;
  }

  double rate_on = cfg.rate;
  double rate_off = cfg.rate;
  std::uint64_t period = 0;
  if (cfg.process == ArrivalProcess::kBursty) {
    if (cfg.burst_on == 0 || cfg.burst_off == 0) {
      throw std::invalid_argument("bursty phases must be nonzero");
    }
    period = cfg.burst_on + cfg.burst_off;
    rate_on = cfg.rate * cfg.burst_multiplier;
    const double budget =
        cfg.rate * static_cast<double>(period) -
        rate_on * static_cast<double>(cfg.burst_on);
    rate_off = std::max(0.0, budget / static_cast<double>(cfg.burst_off));
  }

  std::vector<Request> out;
  out.reserve(cfg.count);
  double t = 0;
  while (out.size() < cfg.count) {
    double rate = rate_on;
    double phase_end = 0;
    if (period != 0) {
      const double into =
          t - std::floor(t / static_cast<double>(period)) *
                  static_cast<double>(period);
      const bool on = into < static_cast<double>(cfg.burst_on);
      rate = on ? rate_on : rate_off;
      phase_end = t - into + (on ? static_cast<double>(cfg.burst_on)
                                 : static_cast<double>(period));
    }
    if (rate <= 0) {  // silent off-phase: jump to the next boundary
      t = phase_end;
      continue;
    }
    const double next = t + exp_draw(rate);
    if (period != 0 && next >= phase_end) {
      t = phase_end;  // re-draw from the boundary (memorylessness)
      continue;
    }
    t = next;
    out.push_back(Request{static_cast<std::uint64_t>(t),
                          rng.next_bool(cfg.writer_fraction)});
  }
  return out;
}

struct AdmissionConfig {
  bool enabled = true;
  /// Shed when the backlog (arrived but not yet dispatched requests) at
  /// dispatch time exceeds this depth. 0 disables the depth bound.
  std::size_t max_backlog = 64;
  /// Shed when the request already waited longer than this before service
  /// could start (its sojourn bound is unmeetable). 0 disables.
  std::uint64_t max_queue_delay = 0;
  /// Per-class overrides for READER requests (0 = inherit the shared bound
  /// above). Overload policy usually wants to shed analytical readers
  /// before writers — a dropped scan is retryable, a dropped update is
  /// lost work — so readers get *tighter* bounds than the shared ones
  /// while writers keep them.
  std::size_t reader_max_backlog = 0;
  std::uint64_t reader_max_queue_delay = 0;

  std::size_t backlog_bound(bool is_write) const noexcept {
    return !is_write && reader_max_backlog != 0 ? reader_max_backlog
                                                : max_backlog;
  }
  std::uint64_t queue_delay_bound(bool is_write) const noexcept {
    return !is_write && reader_max_queue_delay != 0 ? reader_max_queue_delay
                                                    : max_queue_delay;
  }
};

struct ClassStats {
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t shed = 0;
  LatencyHistogram sojourn;      ///< arrival -> completion (completed only)
  LatencyHistogram queue_delay;  ///< arrival -> dispatch (served + timed out)

  void merge(const ClassStats& o) noexcept {
    offered += o.offered;
    completed += o.completed;
    timeouts += o.timeouts;
    shed += o.shed;
    sojourn.merge(o.sojourn);
    queue_delay.merge(o.queue_delay);
  }
};

struct OpenLoopStats {
  ClassStats readers;
  ClassStats writers;
  std::uint64_t final_time = 0;  ///< virtual time the last server finished

  std::uint64_t served() const noexcept {
    return readers.completed + writers.completed;
  }
  /// Completed requests per virtual cycle (goodput — shed and timed-out
  /// requests do not count).
  double goodput(std::uint64_t horizon) const noexcept {
    return horizon ? static_cast<double>(served()) /
                         static_cast<double>(horizon)
                   : 0.0;
  }
};

/// Serves `reqs` (sorted by arrival) on `nservers` fibers inside `sim`.
/// Servers claim requests FCFS through a shared ticket, sleep until the
/// arrival instant when ahead of it, apply admission control, and invoke
///   serve(request, tid) -> locks::AcquireResult
/// which is expected to run the critical section (under a timed or untimed
/// acquisition — its choice) and report how the acquisition ended.
///
/// Single-simulator use only: the stats are written by multiple fibers
/// without synchronization, which is safe because fibers share one OS
/// thread.
template <class Serve>
OpenLoopStats run_open_loop(Simulator& sim, int nservers,
                            const std::vector<Request>& reqs,
                            const AdmissionConfig& adm, Serve&& serve) {
  OpenLoopStats stats;
  std::atomic<std::size_t> next{0};
  sim.run(nservers, [&](int tid) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= reqs.size()) break;
      const Request& rq = reqs[i];
      if (platform::now() < rq.arrival) platform::wait_until(rq.arrival);
      const std::uint64_t start = platform::now();
      const std::uint64_t qdelay = start - rq.arrival;
      ClassStats& cls = rq.is_write ? stats.writers : stats.readers;
      ++cls.offered;
      if (adm.enabled) {
        bool shed = false;
        const std::uint64_t delay_bound = adm.queue_delay_bound(rq.is_write);
        const std::size_t backlog_bound = adm.backlog_bound(rq.is_write);
        if (delay_bound != 0 && qdelay > delay_bound) {
          shed = true;
        } else if (backlog_bound != 0) {
          // Backlog = requests that have arrived by `start` but not been
          // dispatched. reqs is sorted, so a binary search counts arrivals;
          // this is observer arithmetic and charges no virtual time.
          const auto arrived = static_cast<std::size_t>(
              std::upper_bound(reqs.begin(), reqs.end(), start,
                               [](std::uint64_t t, const Request& r) {
                                 return t < r.arrival;
                               }) -
              reqs.begin());
          if (arrived > i + 1 && arrived - (i + 1) > backlog_bound) {
            shed = true;
          }
        }
        if (shed) {
          ++cls.shed;
          continue;
        }
      }
      cls.queue_delay.record(qdelay);
      const locks::AcquireResult r = serve(rq, tid);
      if (r == locks::AcquireResult::kAcquired) {
        ++cls.completed;
        cls.sojourn.record(platform::now() - rq.arrival);
      } else {
        ++cls.timeouts;
      }
    }
  });
  stats.final_time = sim.final_time();
  return stats;
}

}  // namespace sprwl::sim
