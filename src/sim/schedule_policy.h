// Pluggable schedule decision-making for the simulator's controlled mode.
//
// In the default (virtual-time) mode the simulator always runs the fiber
// with the smallest clock — a single, fixed interleaving per seed. In
// controlled mode every instrumented point (fault::checkpoint() at
// critical-section boundaries, every platform::pause() spin iteration,
// every timed wait) parks the fiber instead, and a SchedulePolicy chooses
// which parked fiber runs next. The schedule becomes an explicit sequence
// of decisions: systematic testers (src/check/) can randomize it (PCT),
// enumerate it (bounded DFS with sleep sets), or replay a recorded one.
//
// Determinism contract: given the same workload body and the same sequence
// of pick() return values, the simulator produces bit-identical eligible
// sets, traces and histories. Policies must not consult wall-clock time or
// global RNG state — seed them explicitly.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/platform.h"

namespace sprwl::sim {

/// One parked fiber's pending operation at a decision point. `obj` is a
/// per-run dense id (first-appearance order) of the lock/object the point
/// was tagged with — stable across runs that share a decision prefix, even
/// though the underlying heap addresses differ. 0 means "unknown object";
/// such ops are treated as dependent on everything.
struct PendingOp {
  int fiber = -1;
  SchedKind kind = SchedKind::kStart;
  std::uintptr_t obj = 0;
};

/// The eligible set at one decision point, ordered by ascending fiber id.
struct PickView {
  std::size_t decision = 0;        ///< index of this decision within the run
  const PendingOp* ops = nullptr;  ///< eligible parked fibers
  int count = 0;
};

class SchedulePolicy {
 public:
  /// pick() may return this instead of a fiber id to abandon the run: the
  /// simulator unwinds every live fiber (destructors run), run() returns
  /// normally and Simulator::cancelled() reports true. Used by DFS to
  /// prune subtrees its sleep sets prove redundant.
  static constexpr int kCancelRun = -1;

  virtual ~SchedulePolicy() = default;

  /// Called once at run() entry, before any decision.
  virtual void begin_run(int nfibers) { (void)nfibers; }

  /// Chooses the fiber to resume from view.ops (must return one of the
  /// listed fiber ids, or kCancelRun).
  virtual int pick(const PickView& view) = 0;
};

}  // namespace sprwl::sim
