// Simulated machine topology: sockets × cores-per-socket.
//
// The virtual-time cost model charges a uniform price per shared access by
// default, which makes every core equidistant — a machine that has never
// existed. Real multi-socket parts pay a steep premium when a cache line's
// home moves across the interconnect (~3-10x an LLC hit on the paper's
// Broadwell and POWER8 boxes), and that asymmetry is exactly what NUMA-aware
// reader-indicator layouts (BRAVO-style sharding, socket-major SNZI trees)
// exist to exploit.
//
// Topology is the one struct both the simulator and the HTM engine agree on:
// the engine maps a dense thread id to a socket to decide whether an access
// migrated a line across sockets (htm/engine.h, coherence_extra), and locks
// use it to shard their reader-tracking planes per socket (core/sprwl.h,
// snzi/snzi.h). It is a plain value type with no dependencies so every layer
// can include it.
//
// Thread ids map to cores in socket-major order: threads [0, C) are socket
// 0, [C, 2C) socket 1, and so on — matching how the benchmarks pin fibers.
// The default (1 socket) makes every pair of cores same-socket, which — with
// the default remote costs of zero — keeps single-socket runs bit-identical
// to the flat model.
//
// Above sockets sits an optional *node* level (nodes × sockets-per-node),
// modelling a cluster of machines joined by an RDMA-class fabric: a
// cross-node transfer prices a one-sided remote read (CostModel::remote_node,
// ≫ remote_cross) and — crucially — nodes share no cache coherence, so the
// distributed tier (src/dist/) layers versioned leases and version-validated
// one-sided reads on top instead of relying on the engine's strong
// isolation. Sockets map to nodes in node-major order (sockets [0, P) are
// node 0, [P, 2P) node 1, ...). The default (1 node) makes every core
// same-node, keeping all single-node runs bit-identical to before the node
// level existed.
#pragma once

namespace sprwl::sim {

struct Topology {
  /// Number of sockets (NUMA domains). 1 = flat machine, the default.
  int sockets = 1;
  /// Cores per socket. 0 = unbounded (every thread lands on socket 0 when
  /// sockets == 1; must be set when sockets > 1).
  int cores_per_socket = 0;
  /// Number of nodes (separate coherence domains). 1 = single machine,
  /// the default.
  int nodes = 1;
  /// Sockets per node. 0 = unbounded (every socket lands on node 0 when
  /// nodes == 1; must be set when nodes > 1).
  int sockets_per_node = 0;

  /// True when the topology cannot distinguish any two cores.
  bool flat() const noexcept { return sockets <= 1 && nodes <= 1; }

  /// True when every core shares one coherence domain (no node level).
  bool single_node() const noexcept { return nodes <= 1; }

  /// Socket owning dense thread/core id `core` (socket-major assignment).
  /// Ids past the last socket wrap, so oversubscribed runs stay valid.
  int socket_of(int core) const noexcept {
    if (sockets <= 1 || cores_per_socket <= 0 || core < 0) return 0;
    return (core / cores_per_socket) % sockets;
  }

  bool same_socket(int a, int b) const noexcept {
    return socket_of(a) == socket_of(b);
  }

  /// Node owning dense thread/core id `core` (node-major over sockets).
  int node_of(int core) const noexcept {
    if (single_node() || sockets_per_node <= 0) return 0;
    return (socket_of(core) / sockets_per_node) % nodes;
  }

  /// Node owning socket `socket` directly — the home-directory coherence
  /// model tracks sharers per *socket*, so pricing an invalidation needs the
  /// socket→node map without a representative core id.
  int node_of_socket(int socket) const noexcept {
    if (single_node() || sockets_per_node <= 0) return 0;
    return (socket / sockets_per_node) % nodes;
  }

  bool same_node(int a, int b) const noexcept {
    return node_of(a) == node_of(b);
  }

  /// Topology that spreads `threads` cores evenly over `sockets` sockets
  /// (last socket takes the remainder). The benchmark sweeps use this.
  static Topology split(int threads, int sockets) noexcept {
    Topology t;
    t.sockets = sockets < 1 ? 1 : sockets;
    t.cores_per_socket =
        t.sockets == 1 ? 0 : (threads + t.sockets - 1) / t.sockets;
    return t;
  }

  /// Topology that spreads `threads` cores over `nodes` nodes of
  /// `sockets_per_node` sockets each. The distributed-tier sweeps use this;
  /// nodes == 1 degenerates to split(threads, sockets_per_node).
  static Topology split_nodes(int threads, int nodes,
                              int sockets_per_node = 1) noexcept {
    if (sockets_per_node < 1) sockets_per_node = 1;
    if (nodes < 1) nodes = 1;
    Topology t = split(threads, nodes * sockets_per_node);
    if (nodes > 1) {
      t.nodes = nodes;
      t.sockets_per_node = sockets_per_node;
    }
    return t;
  }
};

}  // namespace sprwl::sim
