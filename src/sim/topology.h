// Simulated machine topology: sockets × cores-per-socket.
//
// The virtual-time cost model charges a uniform price per shared access by
// default, which makes every core equidistant — a machine that has never
// existed. Real multi-socket parts pay a steep premium when a cache line's
// home moves across the interconnect (~3-10x an LLC hit on the paper's
// Broadwell and POWER8 boxes), and that asymmetry is exactly what NUMA-aware
// reader-indicator layouts (BRAVO-style sharding, socket-major SNZI trees)
// exist to exploit.
//
// Topology is the one struct both the simulator and the HTM engine agree on:
// the engine maps a dense thread id to a socket to decide whether an access
// migrated a line across sockets (htm/engine.h, coherence_extra), and locks
// use it to shard their reader-tracking planes per socket (core/sprwl.h,
// snzi/snzi.h). It is a plain value type with no dependencies so every layer
// can include it.
//
// Thread ids map to cores in socket-major order: threads [0, C) are socket
// 0, [C, 2C) socket 1, and so on — matching how the benchmarks pin fibers.
// The default (1 socket) makes every pair of cores same-socket, which — with
// the default remote costs of zero — keeps single-socket runs bit-identical
// to the flat model.
#pragma once

namespace sprwl::sim {

struct Topology {
  /// Number of sockets (NUMA domains). 1 = flat machine, the default.
  int sockets = 1;
  /// Cores per socket. 0 = unbounded (every thread lands on socket 0 when
  /// sockets == 1; must be set when sockets > 1).
  int cores_per_socket = 0;

  /// True when the topology cannot distinguish any two cores.
  bool flat() const noexcept { return sockets <= 1; }

  /// Socket owning dense thread/core id `core` (socket-major assignment).
  /// Ids past the last socket wrap, so oversubscribed runs stay valid.
  int socket_of(int core) const noexcept {
    if (flat() || cores_per_socket <= 0 || core < 0) return 0;
    return (core / cores_per_socket) % sockets;
  }

  bool same_socket(int a, int b) const noexcept {
    return socket_of(a) == socket_of(b);
  }

  /// Topology that spreads `threads` cores evenly over `sockets` sockets
  /// (last socket takes the remainder). The benchmark sweeps use this.
  static Topology split(int threads, int sockets) noexcept {
    Topology t;
    t.sockets = sockets < 1 ? 1 : sockets;
    t.cores_per_socket =
        t.sockets == 1 ? 0 : (threads + t.sockets - 1) / t.sockets;
    return t;
  }
};

}  // namespace sprwl::sim
