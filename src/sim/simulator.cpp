#include "sim/simulator.h"

#include <algorithm>
#include <cstring>
#include <cxxabi.h>
#include <exception>
#include <queue>
#include <thread>

#include "common/costs.h"

#if defined(__SANITIZE_ADDRESS__)
#define SPRWL_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SPRWL_ASAN_FIBERS 1
#endif
#endif
#ifndef SPRWL_ASAN_FIBERS
#define SPRWL_ASAN_FIBERS 0
#endif

#if SPRWL_ASAN_FIBERS
// AddressSanitizer must be told about every stack switch, or it attributes
// fiber frames to the OS thread's stack and reports false positives (and
// cannot detect genuine fiber-stack overflows).
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save,
                                    const void* stack_bottom,
                                    std::size_t stack_size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** stack_bottom_old,
                                     std::size_t* stack_size_old);
}
#endif

#if defined(__x86_64__)
#define SPRWL_FAST_FIBERS 1
extern "C" {
// Defined in fiber_switch.S.
void sprwl_ctx_switch(void** save_rsp, void* restore_rsp);
void sprwl_fiber_entry();
// First C++ frame of a fresh fiber; referenced from fiber_switch.S.
void sprwl_fiber_main();
}
#else
#define SPRWL_FAST_FIBERS 0
#include <ucontext.h>
#endif

namespace sprwl::sim {
namespace {

// Every fiber shares one OS thread and therefore, by default, one
// __cxa_eh_globals — libstdc++'s per-thread stack of in-flight exception
// objects. That breaks as soon as a fiber yields while an exception is
// alive: the HTM engine charges the abort penalty (which can yield) inside
// its `catch (const AbortException&)` handler, so two fibers can be inside
// catch blocks concurrently. Their __cxa_end_catch calls then pop each
// other's exception objects off the shared list, freeing an exception
// another fiber is still reading (a genuine use-after-free, found by ASan).
// The cure is to give each execution context a private copy of the
// structure, swapped at every switch. Its Itanium-ABI layout is stable:
// { __cxa_exception* caughtExceptions; unsigned int uncaughtExceptions; },
// which two pointer-sized words cover on LP64 and ILP32 alike.
constexpr std::size_t kEhStateBytes = 2 * sizeof(void*);

void eh_switch(unsigned char* save_to, const unsigned char* restore_from) {
  auto* live = reinterpret_cast<unsigned char*>(abi::__cxa_get_globals());
  std::memcpy(save_to, live, kEhStateBytes);
  std::memcpy(live, restore_from, kEhStateBytes);
}

// Thread-local fiber stack pool: every bench data point spins up its own
// Simulator (often dozens of fibers), and a fresh make_unique<char[]>
// zero-initializes the whole 256 KB stack — ~14 MB of memset per 56-fiber
// run, repeated per point. Recycling keeps the stacks warm and skips the
// zeroing (fibers fully initialize every frame they use; recycled garbage
// is unobservable, so determinism is unaffected). Pool access is
// single-threaded by construction: a Simulator's run() executes entirely
// on one OS thread.
struct StackPool {
  std::size_t bytes = 0;
  std::vector<std::unique_ptr<char[]>> free_list;
};
thread_local StackPool t_stack_pool;
constexpr std::size_t kMaxPooledStacks = 128;

std::unique_ptr<char[]> acquire_stack(std::size_t bytes) {
  StackPool& pool = t_stack_pool;
  if (pool.bytes == bytes && !pool.free_list.empty()) {
    std::unique_ptr<char[]> s = std::move(pool.free_list.back());
    pool.free_list.pop_back();
    return s;
  }
  return std::unique_ptr<char[]>(new char[bytes]);  // uninitialized
}

void release_stack(std::size_t bytes, std::unique_ptr<char[]> s) {
  StackPool& pool = t_stack_pool;
  if (pool.bytes != bytes) {
    pool.free_list.clear();  // size changed: the old stacks are useless
    pool.bytes = bytes;
  }
  if (pool.free_list.size() < kMaxPooledStacks) {
    pool.free_list.push_back(std::move(s));
  }
}

}  // namespace

struct Simulator::FiberContext final : ExecutionContext {
  Simulator* sim = nullptr;
  Fiber* fiber = nullptr;

  std::uint64_t now() override;
  void advance(std::uint64_t cycles) override;
  void pause() override;
  void wait_until(std::uint64_t t) override;
  int thread_id() override;
  void sched_point(SchedKind kind, std::uintptr_t obj) override;
  void enable_sched_points(bool on) noexcept { sched_points_ = on; }
};

struct Simulator::Fiber {
  std::unique_ptr<char[]> stack;
  std::uint64_t time = 0;
  std::uint32_t jitter = 0;  // per-fiber LCG state for pause jitter
  bool done = false;
  int id = 0;
  Simulator* sim = nullptr;
  std::exception_ptr error;
  FiberContext exec_ctx;
  // Controlled-mode bookkeeping.
  PendingOp pending;               // where this fiber is parked
  std::uint64_t pause_stamp = 0;   // progress_ epoch observed at last pause
  bool started = false;            // body entered at least once
  bool cancelling = false;         // RunCancelled already thrown into it
  // Private __cxa_eh_globals while descheduled (zero = no live exceptions).
  unsigned char eh_state[kEhStateBytes] = {};
  void* fake_stack = nullptr;  // ASan fiber bookkeeping (unused otherwise)
#if SPRWL_FAST_FIBERS
  void* rsp = nullptr;
#else
  ucontext_t ctx{};
#endif
};

// The fiber being switched into for the first time; consumed by the entry
// thunk. One scheduler runs per OS thread, hence thread_local.
thread_local Simulator::Fiber* t_entering_fiber = nullptr;

std::uint64_t Simulator::FiberContext::now() { return fiber->time; }
void Simulator::FiberContext::advance(std::uint64_t cycles) {
  sim->fiber_advance(*fiber, cycles);
}
void Simulator::FiberContext::pause() {
  if (sim->controlled_ && fiber->cancelling) {
    // Unwinding a cancelled run: park without charging time (no
    // SimTimeLimitError may fire while a destructor is mid-unwind).
    sim->controlled_point(SchedKind::kPause, 0);
    return;
  }
  // Spin iterations on real hardware never take exactly the same number of
  // cycles; a deterministic simulator without jitter can lock coupled spin
  // loops into a *permanent* periodic schedule (e.g. a reader whose
  // re-check cadence never aligns with the gaps of an SGL writer convoy —
  // a starvation the paper acknowledges as transient on real machines).
  // A small per-fiber pseudo-random perturbation (deterministic given the
  // run) breaks such lockstep without affecting costs materially.
  fiber->jitter = fiber->jitter * 1664525u + 1013904223u;
  sim->fiber_advance(*fiber, g_costs.pause + (fiber->jitter >> 28));
  if (sim->controlled_) sim->controlled_point(SchedKind::kPause, 0);
}
void Simulator::FiberContext::wait_until(std::uint64_t t) {
  if (sim->controlled_ && fiber->cancelling) {
    sim->controlled_point(SchedKind::kTimedWait, 0);
    return;
  }
  sim->fiber_wait_until(*fiber, t);
  if (sim->controlled_) sim->controlled_point(SchedKind::kTimedWait, 0);
}
int Simulator::FiberContext::thread_id() { return fiber->id; }
void Simulator::FiberContext::sched_point(SchedKind kind, std::uintptr_t obj) {
  sim->controlled_point(kind, obj);
}

Simulator::Simulator(SimConfig cfg) : cfg_(cfg) {
#if !SPRWL_FAST_FIBERS
  main_ctx_ = new ucontext_t{};
#endif
}

Simulator::~Simulator() {
#if !SPRWL_FAST_FIBERS
  delete static_cast<ucontext_t*>(main_ctx_);
#endif
}

// --- indexed 4-ary min-heap -------------------------------------------------
//
// Flat array of (time, id) ordered by less_than; heap_pos_[id] = slot + 1.
// 4-ary: children of slot i are 4i+1..4i+4 — half the tree height of a
// binary heap and the four children share one cache line, so a sift-down
// touches fewer lines than std::priority_queue's binary layout.

void Simulator::heap_push(Entry e) {
  ++stats_.heap_pushes;
  heap_.push_back(e);
  heap_sift_up(heap_.size() - 1);
}

Simulator::Entry Simulator::heap_pop() {
  ++stats_.heap_pops;
  const Entry top = heap_.front();
  heap_pos_[static_cast<std::size_t>(top.id())] = 0;
  const Entry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_.front() = last;
    heap_pos_[static_cast<std::size_t>(last.id())] = 1;
    heap_sift_down(0);
  }
  return top;
}

Simulator::Entry Simulator::heap_replace_top(Entry e) {
  ++stats_.heap_pushes;
  ++stats_.heap_pops;
  const Entry top = heap_.front();
  heap_pos_[static_cast<std::size_t>(top.id())] = 0;
  heap_.front() = e;
  heap_pos_[static_cast<std::size_t>(e.id())] = 1;
  heap_sift_down(0);
  return top;
}

void Simulator::heap_sift_up(std::size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!e.less_than(heap_[parent])) break;
    heap_[i] = heap_[parent];
    heap_pos_[static_cast<std::size_t>(heap_[i].id())] = static_cast<std::uint32_t>(i + 1);
    i = parent;
  }
  heap_[i] = e;
  heap_pos_[static_cast<std::size_t>(e.id())] = static_cast<std::uint32_t>(i + 1);
}

void Simulator::heap_sift_down(std::size_t i) {
  const Entry e = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_[c].less_than(heap_[best])) best = c;
    }
    if (!heap_[best].less_than(e)) break;
    heap_[i] = heap_[best];
    heap_pos_[static_cast<std::size_t>(heap_[i].id())] = static_cast<std::uint32_t>(i + 1);
    i = best;
  }
  heap_[i] = e;
  heap_pos_[static_cast<std::size_t>(e.id())] = static_cast<std::uint32_t>(i + 1);
}

// --- context switching ------------------------------------------------------

void Simulator::fiber_body(Fiber& f) {
#if SPRWL_ASAN_FIBERS
  // First activation of this fiber: complete the switch whoever started
  // it began. The origin stack bounds are the scheduler's only when the
  // activation came from schedule_loop — under direct switching it can be
  // another fiber, whose bounds must not overwrite the scheduler's.
  {
    const void* from_bottom = nullptr;
    std::size_t from_size = 0;
    __sanitizer_finish_switch_fiber(nullptr, &from_bottom, &from_size);
    if (f.sim->from_scheduler_) {
      f.sim->sched_stack_bottom_ = from_bottom;
      f.sim->sched_stack_size_ = from_size;
    }
  }
#endif
  try {
    (*f.sim->body_)(f.id);
  } catch (const RunCancelled&) {
    // Controlled run abandoned: the fiber unwound cleanly, no error.
  } catch (...) {
    f.error = std::current_exception();
  }
  f.done = true;
}

#if SPRWL_FAST_FIBERS

void Simulator::switch_to_fiber(Fiber& f) {
  t_entering_fiber = &f;  // consumed only on a fiber's first activation
  from_scheduler_ = true;
  eh_switch(sched_eh_state_, f.eh_state);
#if SPRWL_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&sched_fake_stack_, f.stack.get(),
                                 cfg_.stack_bytes);
#endif
  sprwl_ctx_switch(&sched_rsp_, f.rsp);
#if SPRWL_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(sched_fake_stack_, nullptr, nullptr);
#endif
}

void Simulator::yield_to_scheduler(Fiber& f) {
  eh_switch(f.eh_state, sched_eh_state_);
#if SPRWL_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&f.fake_stack, sched_stack_bottom_,
                                 sched_stack_size_);
#endif
  sprwl_ctx_switch(&f.rsp, sched_rsp_);
#if SPRWL_ASAN_FIBERS
  // Resumed: whoever switched back to us finished their half.
  __sanitizer_finish_switch_fiber(f.fake_stack, nullptr, nullptr);
#endif
}

void Simulator::exit_fiber(Fiber& f) {
  // Permanently hand control back to the scheduler; the save slot is dead.
  eh_switch(f.eh_state, f.sim->sched_eh_state_);
#if SPRWL_ASAN_FIBERS
  // Null save slot: the fiber is dying, let ASan destroy its fake stack.
  __sanitizer_start_switch_fiber(nullptr, f.sim->sched_stack_bottom_,
                                 f.sim->sched_stack_size_);
#endif
  sprwl_ctx_switch(&f.rsp, f.sim->sched_rsp_);
}

void Simulator::prepare_fiber(Fiber& f) {
  // Stack layout (from the top): [entry address][6 callee-saved slots].
  // sprwl_ctx_switch pops the six slots, then `ret` enters
  // sprwl_fiber_entry with rsp 16-byte aligned.
  auto top = reinterpret_cast<std::uintptr_t>(f.stack.get()) + cfg_.stack_bytes;
  top &= ~std::uintptr_t{15};
  auto* sp = reinterpret_cast<void**>(top);
  *--sp = reinterpret_cast<void*>(&sprwl_fiber_entry);
  for (int i = 0; i < 6; ++i) *--sp = nullptr;
  f.rsp = sp;
}

#else  // portable ucontext fallback

void Simulator::switch_to_fiber(Fiber& f) {
  t_entering_fiber = &f;
  from_scheduler_ = true;
  eh_switch(sched_eh_state_, f.eh_state);
#if SPRWL_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&sched_fake_stack_, f.stack.get(),
                                 cfg_.stack_bytes);
#endif
  swapcontext(static_cast<ucontext_t*>(main_ctx_), &f.ctx);
#if SPRWL_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(sched_fake_stack_, nullptr, nullptr);
#endif
}

void Simulator::yield_to_scheduler(Fiber& f) {
  eh_switch(f.eh_state, sched_eh_state_);
#if SPRWL_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&f.fake_stack, sched_stack_bottom_,
                                 sched_stack_size_);
#endif
  swapcontext(&f.ctx, static_cast<ucontext_t*>(main_ctx_));
#if SPRWL_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(f.fake_stack, nullptr, nullptr);
#endif
}

void Simulator::exit_fiber(Fiber& f) {
  // The actual switch happens via uc_link when the trampoline falls off;
  // restore the scheduler's exception state (and tell ASan the fiber's
  // stack is dying) just before that.
  eh_switch(f.eh_state, f.sim->sched_eh_state_);
#if SPRWL_ASAN_FIBERS
  __sanitizer_start_switch_fiber(nullptr, f.sim->sched_stack_bottom_,
                                 f.sim->sched_stack_size_);
#endif
}

namespace {
void ucontext_trampoline() {
  Simulator::Fiber* f = t_entering_fiber;
  t_entering_fiber = nullptr;
  Simulator::fiber_body(*f);
  Simulator::exit_fiber(*f);
  // Falling off returns to uc_link (the scheduler's main context).
}
}  // namespace

void Simulator::prepare_fiber(Fiber& f) {
  getcontext(&f.ctx);
  f.ctx.uc_stack.ss_sp = f.stack.get();
  f.ctx.uc_stack.ss_size = cfg_.stack_bytes;
  f.ctx.uc_link = static_cast<ucontext_t*>(main_ctx_);
  makecontext(&f.ctx, &ucontext_trampoline, 0);
}

#endif

// Fiber→fiber handoff: the yielding fiber f re-queues itself, takes the
// heap minimum m and switches straight to m's stack — the scheduler stack
// is not touched, halving the context switches of a yield. Schedule
// equivalence with the trampoline: f yields only because f.time >
// next_wake_ (the heap minimum's time), so push-self-then-extract-min
// selects exactly the entry the trampoline's pop would have returned (and
// never f itself — strict inequality). The push+pop pair is fused into one
// heap_replace_top: identical result, one sift instead of three.
void Simulator::direct_switch_from(Fiber& f) {
  const Entry e = heap_replace_top(Entry::make(f.time, f.id));
  Fiber& m = *fibers_[static_cast<std::size_t>(e.id())];
  next_wake_ = heap_top().time();  // non-empty: f itself is queued
  running_ = &m;
  platform::set_context(&m.exec_ctx);
  ++stats_.switches;
  ++stats_.direct_switches;
  t_entering_fiber = &m;  // consumed only on m's first activation
  from_scheduler_ = false;
  eh_switch(f.eh_state, m.eh_state);
#if SPRWL_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&f.fake_stack, m.stack.get(),
                                 cfg_.stack_bytes);
#endif
#if SPRWL_FAST_FIBERS
  sprwl_ctx_switch(&f.rsp, m.rsp);
#else
  swapcontext(&f.ctx, &m.ctx);
#endif
#if SPRWL_ASAN_FIBERS
  // Resumed: whoever switched back to us finished their half.
  __sanitizer_finish_switch_fiber(f.fake_stack, nullptr, nullptr);
#endif
}

void Simulator::yield_from(Fiber& f) {
  if (direct_switch_) {
    direct_switch_from(f);
  } else {
    yield_to_scheduler(f);
  }
}

void Simulator::deschedule_current_until(std::uint64_t until) {
  if (running_ == nullptr) return;  // not called from a fiber: nothing to do
  ++preemptions_;
  fiber_wait_until(*running_, until);
}

void Simulator::run(int nthreads, const std::function<void(int)>& body) {
  if (nthreads <= 0) return;
  // Packed ready-set keys (see Entry) bound the fiber count and the
  // representable virtual time; both limits are far beyond every use.
  if (nthreads > (1 << Entry::kIdBits))
    throw std::invalid_argument("Simulator: more than 1024 fibers");
  if (cfg_.max_virtual_time >= (1ULL << (64 - Entry::kIdBits)))
    throw std::invalid_argument("Simulator: max_virtual_time >= 2^54");
  if (cfg_.policy != nullptr && cfg_.legacy_ready_queue)
    throw std::invalid_argument(
        "Simulator: controlled mode is incompatible with legacy_ready_queue");
  body_ = &body;
  controlled_ = cfg_.policy != nullptr;
  direct_switch_ = cfg_.direct_switch && !cfg_.legacy_ready_queue && !controlled_;
  // Defensive per-run reset: results always describe this run, whatever
  // state a previous run (or an exception unwinding out of one) left.
  preemptions_ = 0;
  final_time_ = 0;
  stats_ = SimStats{};
  cancel_run_ = false;
  livelocked_ = false;
  cancelled_ = false;
  progress_ = 0;
  trace_.clear();
  obj_table_.clear();
  heap_.clear();
  heap_pos_.assign(static_cast<std::size_t>(nthreads), 0);
  heap_.reserve(static_cast<std::size_t>(nthreads));
  fibers_.clear();
  fibers_.reserve(static_cast<std::size_t>(nthreads));

  for (int i = 0; i < nthreads; ++i) {
    auto f = std::make_unique<Fiber>();
    f->id = i;
    f->jitter = static_cast<std::uint32_t>(i) * 2654435761u + 1u;
    f->sim = this;
    // Legacy mode reproduces the original allocation behavior: a fresh
    // zero-initialized stack per fiber per run, nothing pooled.
    f->stack = cfg_.legacy_ready_queue
                   ? std::make_unique<char[]>(cfg_.stack_bytes)
                   : acquire_stack(cfg_.stack_bytes);
    f->exec_ctx.sim = this;
    f->exec_ctx.fiber = f.get();
    f->exec_ctx.enable_sched_points(controlled_);
    f->pending = PendingOp{i, SchedKind::kStart, 0};
    prepare_fiber(*f);
    if (!cfg_.legacy_ready_queue && !controlled_) heap_push(Entry::make(0, i));
    fibers_.push_back(std::move(f));
  }

  if (cfg_.legacy_ready_queue) {
    schedule_loop_legacy();
  } else if (controlled_) {
    schedule_loop_controlled();
  } else {
    schedule_loop();
  }

  std::exception_ptr first_error;
  std::uint64_t first_error_time = ~0ULL;
  for (auto& f : fibers_) {
    final_time_ = std::max(final_time_, f->time);
    if (f->error && f->time < first_error_time) {
      first_error = f->error;
      first_error_time = f->time;
    }
    if (!cfg_.legacy_ready_queue) {
      release_stack(cfg_.stack_bytes, std::move(f->stack));
    }
  }
  fibers_.clear();
  body_ = nullptr;
  if (first_error) std::rethrow_exception(first_error);
}

void Simulator::schedule_loop() {
  while (!heap_empty()) {
    const Entry e = heap_pop();
    Fiber& f = *fibers_[static_cast<std::size_t>(e.id())];
    next_wake_ = heap_empty() ? ~0ULL : heap_top().time();
    platform::set_context(&f.exec_ctx);
    running_ = &f;
    ++stats_.switches;
    switch_to_fiber(f);
    // Under direct switching control returns here only when a fiber
    // *exits*, and `running_` then names that fiber (not necessarily f —
    // the handoffs moved on). Under the trampoline it is f, yielded or
    // done, exactly as before.
    Fiber& ran = *running_;
    running_ = nullptr;
    platform::set_context(nullptr);
    if (!ran.done) heap_push(Entry::make(ran.time, ran.id));
    // If a fiber errored out, the remaining ones either finish or hit the
    // virtual-time limit deterministically; run() reports the earliest error.
  }
}

// The pre-overhaul scheduler, preserved verbatim in behavior as the
// measurable wall-clock baseline (SimConfig::legacy_ready_queue): binary
// std::priority_queue ready set, every activation through the trampoline.
// It produces the exact same schedule as schedule_loop + direct switching,
// just slower — perf_pipeline quantifies by how much.
void Simulator::schedule_loop_legacy() {
  // The original two-field entry with a field-wise comparator, not the
  // packed key the new heap uses — the baseline must not inherit the
  // overhaul's representation wins.
  struct LegacyEntry {
    std::uint64_t time;
    int id;
    bool operator>(const LegacyEntry& o) const noexcept {
      return time != o.time ? time > o.time : id > o.id;
    }
  };
  std::priority_queue<LegacyEntry, std::vector<LegacyEntry>,
                      std::greater<LegacyEntry>>
      ready;
  for (auto& f : fibers_) ready.push(LegacyEntry{f->time, f->id});
  stats_.heap_pushes += fibers_.size();
  while (!ready.empty()) {
    const LegacyEntry e = ready.top();
    ready.pop();
    ++stats_.heap_pops;
    Fiber& f = *fibers_[static_cast<std::size_t>(e.id)];
    next_wake_ = ready.empty() ? ~0ULL : ready.top().time;
    platform::set_context(&f.exec_ctx);
    running_ = &f;
    ++stats_.switches;
    switch_to_fiber(f);
    Fiber& ran = *running_;
    running_ = nullptr;
    platform::set_context(nullptr);
    if (!ran.done) {
      ready.push(LegacyEntry{ran.time, ran.id});
      ++stats_.heap_pushes;
    }
  }
}

// --- controlled-scheduler mode ---------------------------------------------
//
// The ready heap is unused: every live fiber is "parked" at its last
// decision point (pause / timed wait / fault::checkpoint / sched_point)
// and the policy picks which one to resume. next_wake_ is pinned to ~0 so
// virtual time never forces a yield — parking is explicit and exhaustive,
// which is what makes the explored schedule space well-defined.
//
// Spin loops need special care: a fiber parked at a pause whose condition
// cannot change until another fiber runs would otherwise let the policy
// burn the whole decision budget re-running one spinner. The progress
// counter handles it: progress_ bumps whenever a fiber parks at a
// *non*-pause point (it executed real instrumented work) or completes; a
// pause-parked fiber that already observed the current epoch
// (pause_stamp == progress_) is ineligible until the epoch moves. When
// that empties the eligible set, a "verification round" makes every live
// fiber eligible again — covering state changes that happen between
// pauses without an instrumented point in between — and
// no_progress_bound such rounds without progress is the livelock/deadlock
// verdict.

void Simulator::schedule_loop_controlled() {
  SchedulePolicy& policy = *cfg_.policy;
  policy.begin_run(static_cast<int>(fibers_.size()));
  next_wake_ = ~0ULL;
  int alive = static_cast<int>(fibers_.size());
  const int no_progress_bound =
      cfg_.resolved_no_progress_bound(static_cast<int>(fibers_.size()));
  int stall_rounds = 0;
  std::uint64_t last_progress = progress_;
  std::vector<PendingOp> ops;
  ops.reserve(fibers_.size());
  while (alive > 0) {
    if (progress_ != last_progress) {
      last_progress = progress_;
      stall_rounds = 0;
    }
    ops.clear();
    for (auto& fp : fibers_) {
      Fiber& f = *fp;
      if (f.done) continue;
      if (f.pending.kind == SchedKind::kPause && f.pause_stamp == progress_)
        continue;  // would spin again without new information
      ops.push_back(f.pending);
    }
    if (ops.empty()) {
      for (auto& fp : fibers_) {
        if (!fp->done) ops.push_back(fp->pending);
      }
      if (++stall_rounds > no_progress_bound) {
        livelocked_ = true;
        break;
      }
    }
    if (trace_.size() >= cfg_.max_decisions) {
      livelocked_ = true;
      break;
    }
    const PickView view{trace_.size(), ops.data(),
                        static_cast<int>(ops.size())};
    const int choice = policy.pick(view);
    if (choice == SchedulePolicy::kCancelRun) break;
    Fiber* chosen = nullptr;
    for (const PendingOp& op : ops) {
      if (op.fiber == choice) {
        chosen = fibers_[static_cast<std::size_t>(choice)].get();
        break;
      }
    }
    if (chosen == nullptr) {
      cancel_all_fibers();
      cancelled_ = true;
      throw std::logic_error(
          "SchedulePolicy::pick returned an ineligible fiber");
    }
    trace_.push_back(chosen->pending);
    activate_fiber(*chosen);
    if (chosen->done) {
      --alive;
      ++progress_;
    }
  }
  if (alive > 0) {
    cancel_all_fibers();
    cancelled_ = true;
  }
}

void Simulator::controlled_point(SchedKind kind, std::uintptr_t obj) {
  Fiber* f = running_;
  if (!controlled_ || f == nullptr) return;
  if (cancel_run_) {
    if (!f->cancelling) {
      f->cancelling = true;
      throw RunCancelled{};
    }
    // Already unwinding: park cooperatively so peers can run (unwind code
    // may legitimately spin-wait on them, e.g. a queue-lock handoff in a
    // ScopeExit block).
    yield_to_scheduler(*f);
    return;
  }
  f->pending = PendingOp{f->id, kind, canonical_obj(obj)};
  if (kind == SchedKind::kPause) {
    f->pause_stamp = progress_;
  } else {
    ++progress_;
  }
  yield_to_scheduler(*f);
  if (cancel_run_ && !f->cancelling) {
    f->cancelling = true;
    throw RunCancelled{};
  }
}

void Simulator::activate_fiber(Fiber& f) {
  f.started = true;
  platform::set_context(&f.exec_ctx);
  running_ = &f;
  ++stats_.switches;
  switch_to_fiber(f);
  running_ = nullptr;
  platform::set_context(nullptr);
}

void Simulator::cancel_all_fibers() {
  cancel_run_ = true;
  next_wake_ = ~0ULL;
  // Round-robin until every fiber unwound: a single pass is not enough
  // because unwind code can wait on peers that unwind later in the pass.
  // The bound converts a stuck unwind (a genuinely broken lock whose
  // release path deadlocks) into a deterministic failure instead of a hang.
  constexpr int kMaxRounds = 100000;
  for (int round = 0; round < kMaxRounds; ++round) {
    bool any = false;
    for (auto& fp : fibers_) {
      Fiber& f = *fp;
      if (f.done) continue;
      if (!f.started) {
        f.done = true;  // never entered the body: nothing on its stack
        continue;
      }
      any = true;
      activate_fiber(f);
    }
    if (!any) return;
  }
  throw std::runtime_error(
      "Simulator: cancelled fibers failed to unwind (release path stuck)");
}

std::uintptr_t Simulator::canonical_obj(std::uintptr_t raw) {
  if (raw == 0) return 0;
  for (std::size_t i = 0; i < obj_table_.size(); ++i) {
    if (obj_table_[i] == raw) return static_cast<std::uintptr_t>(i + 1);
  }
  obj_table_.push_back(raw);
  return static_cast<std::uintptr_t>(obj_table_.size());
}

void Simulator::fiber_advance(Fiber& f, std::uint64_t cycles) {
  f.time += cycles;
  if (f.time > cfg_.max_virtual_time) throw SimTimeLimitError(f.time);
  if (f.time > next_wake_) yield_from(f);
}

void Simulator::fiber_wait_until(Fiber& f, std::uint64_t t) {
  if (t > f.time) {
    f.time = t;
    if (f.time > cfg_.max_virtual_time) throw SimTimeLimitError(f.time);
  }
  if (f.time > next_wake_) yield_from(f);
}

void run_real_threads(int nthreads, const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nthreads));
  threads.reserve(static_cast<std::size_t>(nthreads));
  for (int i = 0; i < nthreads; ++i) {
    threads.emplace_back([&, i] {
      ThreadIdScope scope(i);
      try {
        body(i);
      } catch (...) {
        errors[static_cast<std::size_t>(i)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace sprwl::sim

#if SPRWL_FAST_FIBERS
// First C++ frame of a fresh fiber (called from sprwl_fiber_entry in
// fiber_switch.S). Runs the fiber body, then returns control to the
// scheduler permanently.
extern "C" void sprwl_fiber_main() {
  using Fiber = sprwl::sim::Simulator::Fiber;
  Fiber* f = sprwl::sim::t_entering_fiber;
  sprwl::sim::t_entering_fiber = nullptr;
  sprwl::sim::Simulator::fiber_body(*f);
  sprwl::sim::Simulator::exit_fiber(*f);
}
#endif
