#include "sim/simulator.h"

#include <algorithm>
#include <exception>
#include <thread>

#include "common/costs.h"

#if defined(__x86_64__)
#define SPRWL_FAST_FIBERS 1
extern "C" {
// Defined in fiber_switch.S.
void sprwl_ctx_switch(void** save_rsp, void* restore_rsp);
void sprwl_fiber_entry();
// First C++ frame of a fresh fiber; referenced from fiber_switch.S.
void sprwl_fiber_main();
}
#else
#define SPRWL_FAST_FIBERS 0
#include <ucontext.h>
#endif

namespace sprwl::sim {

struct Simulator::FiberContext final : ExecutionContext {
  Simulator* sim = nullptr;
  Fiber* fiber = nullptr;

  std::uint64_t now() override;
  void advance(std::uint64_t cycles) override;
  void pause() override;
  void wait_until(std::uint64_t t) override;
  int thread_id() override;
};

struct Simulator::Fiber {
  std::unique_ptr<char[]> stack;
  std::uint64_t time = 0;
  std::uint32_t jitter = 0;  // per-fiber LCG state for pause jitter
  bool done = false;
  int id = 0;
  Simulator* sim = nullptr;
  std::exception_ptr error;
  FiberContext exec_ctx;
#if SPRWL_FAST_FIBERS
  void* rsp = nullptr;
#else
  ucontext_t ctx{};
#endif
};

// The fiber being switched into for the first time; consumed by the entry
// thunk. One scheduler runs per OS thread, hence thread_local.
thread_local Simulator::Fiber* t_entering_fiber = nullptr;

std::uint64_t Simulator::FiberContext::now() { return fiber->time; }
void Simulator::FiberContext::advance(std::uint64_t cycles) {
  sim->fiber_advance(*fiber, cycles);
}
void Simulator::FiberContext::pause() {
  // Spin iterations on real hardware never take exactly the same number of
  // cycles; a deterministic simulator without jitter can lock coupled spin
  // loops into a *permanent* periodic schedule (e.g. a reader whose
  // re-check cadence never aligns with the gaps of an SGL writer convoy —
  // a starvation the paper acknowledges as transient on real machines).
  // A small per-fiber pseudo-random perturbation (deterministic given the
  // run) breaks such lockstep without affecting costs materially.
  fiber->jitter = fiber->jitter * 1664525u + 1013904223u;
  sim->fiber_advance(*fiber, g_costs.pause + (fiber->jitter >> 28));
}
void Simulator::FiberContext::wait_until(std::uint64_t t) {
  sim->fiber_wait_until(*fiber, t);
}
int Simulator::FiberContext::thread_id() { return fiber->id; }

Simulator::Simulator(SimConfig cfg) : cfg_(cfg) {
#if !SPRWL_FAST_FIBERS
  main_ctx_ = new ucontext_t{};
#endif
}

Simulator::~Simulator() {
#if !SPRWL_FAST_FIBERS
  delete static_cast<ucontext_t*>(main_ctx_);
#endif
}

void Simulator::fiber_body(Fiber& f) {
  try {
    (*f.sim->body_)(f.id);
  } catch (...) {
    f.error = std::current_exception();
  }
  f.done = true;
}

#if SPRWL_FAST_FIBERS

void Simulator::switch_to_fiber(Fiber& f) {
  t_entering_fiber = &f;  // consumed only on a fiber's first activation
  sprwl_ctx_switch(&sched_rsp_, f.rsp);
}

void Simulator::yield_to_scheduler(Fiber& f) {
  sprwl_ctx_switch(&f.rsp, sched_rsp_);
}

void Simulator::exit_fiber(Fiber& f) {
  // Permanently hand control back to the scheduler; the save slot is dead.
  void* dead = nullptr;
  (void)dead;
  sprwl_ctx_switch(&f.rsp, f.sim->sched_rsp_);
}

void Simulator::prepare_fiber(Fiber& f) {
  // Stack layout (from the top): [entry address][6 callee-saved slots].
  // sprwl_ctx_switch pops the six slots, then `ret` enters
  // sprwl_fiber_entry with rsp 16-byte aligned.
  auto top = reinterpret_cast<std::uintptr_t>(f.stack.get()) + cfg_.stack_bytes;
  top &= ~std::uintptr_t{15};
  auto* sp = reinterpret_cast<void**>(top);
  *--sp = reinterpret_cast<void*>(&sprwl_fiber_entry);
  for (int i = 0; i < 6; ++i) *--sp = nullptr;
  f.rsp = sp;
}

#else  // portable ucontext fallback

void Simulator::switch_to_fiber(Fiber& f) {
  t_entering_fiber = &f;
  swapcontext(static_cast<ucontext_t*>(main_ctx_), &f.ctx);
}

void Simulator::yield_to_scheduler(Fiber& f) {
  swapcontext(&f.ctx, static_cast<ucontext_t*>(main_ctx_));
}

void Simulator::exit_fiber(Fiber&) {}  // uc_link returns to the scheduler

namespace {
void ucontext_trampoline() {
  Simulator::Fiber* f = t_entering_fiber;
  t_entering_fiber = nullptr;
  Simulator::fiber_body(*f);
  // Falling off returns to uc_link (the scheduler's main context).
}
}  // namespace

void Simulator::prepare_fiber(Fiber& f) {
  getcontext(&f.ctx);
  f.ctx.uc_stack.ss_sp = f.stack.get();
  f.ctx.uc_stack.ss_size = cfg_.stack_bytes;
  f.ctx.uc_link = static_cast<ucontext_t*>(main_ctx_);
  makecontext(&f.ctx, &ucontext_trampoline, 0);
}

#endif

void Simulator::run(int nthreads, const std::function<void(int)>& body) {
  if (nthreads <= 0) return;
  body_ = &body;
  fibers_.clear();
  fibers_.reserve(static_cast<std::size_t>(nthreads));

  for (int i = 0; i < nthreads; ++i) {
    auto f = std::make_unique<Fiber>();
    f->id = i;
    f->jitter = static_cast<std::uint32_t>(i) * 2654435761u + 1u;
    f->sim = this;
    f->stack = std::make_unique<char[]>(cfg_.stack_bytes);
    f->exec_ctx.sim = this;
    f->exec_ctx.fiber = f.get();
    prepare_fiber(*f);
    ready_.push(Entry{0, i});
    fibers_.push_back(std::move(f));
  }

  schedule_loop();

  final_time_ = 0;
  std::exception_ptr first_error;
  std::uint64_t first_error_time = ~0ULL;
  for (const auto& f : fibers_) {
    final_time_ = std::max(final_time_, f->time);
    if (f->error && f->time < first_error_time) {
      first_error = f->error;
      first_error_time = f->time;
    }
  }
  fibers_.clear();
  body_ = nullptr;
  if (first_error) std::rethrow_exception(first_error);
}

void Simulator::schedule_loop() {
  while (!ready_.empty()) {
    const Entry e = ready_.top();
    ready_.pop();
    Fiber& f = *fibers_[static_cast<std::size_t>(e.id)];
    next_wake_ = ready_.empty() ? ~0ULL : ready_.top().time;
    platform::set_context(&f.exec_ctx);
    switch_to_fiber(f);
    platform::set_context(nullptr);
    if (!f.done) ready_.push(Entry{f.time, f.id});
    // If a fiber errored out, the remaining ones either finish or hit the
    // virtual-time limit deterministically; run() reports the earliest error.
  }
}

void Simulator::fiber_advance(Fiber& f, std::uint64_t cycles) {
  f.time += cycles;
  if (f.time > cfg_.max_virtual_time) throw SimTimeLimitError(f.time);
  if (f.time > next_wake_) yield_to_scheduler(f);
}

void Simulator::fiber_wait_until(Fiber& f, std::uint64_t t) {
  if (t > f.time) {
    f.time = t;
    if (f.time > cfg_.max_virtual_time) throw SimTimeLimitError(f.time);
  }
  if (f.time > next_wake_) yield_to_scheduler(f);
}

void run_real_threads(int nthreads, const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nthreads));
  threads.reserve(static_cast<std::size_t>(nthreads));
  for (int i = 0; i < nthreads; ++i) {
    threads.emplace_back([&, i] {
      ThreadIdScope scope(i);
      try {
        body(i);
      } catch (...) {
        errors[static_cast<std::size_t>(i)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace sprwl::sim

#if SPRWL_FAST_FIBERS
// First C++ frame of a fresh fiber (called from sprwl_fiber_entry in
// fiber_switch.S). Runs the fiber body, then returns control to the
// scheduler permanently.
extern "C" void sprwl_fiber_main() {
  using Fiber = sprwl::sim::Simulator::Fiber;
  Fiber* f = sprwl::sim::t_entering_fiber;
  sprwl::sim::t_entering_fiber = nullptr;
  sprwl::sim::Simulator::fiber_body(*f);
  sprwl::sim::Simulator::exit_fiber(*f);
  __builtin_unreachable();
}
#endif
