#include "sim/simulator.h"

#include <algorithm>
#include <cstring>
#include <cxxabi.h>
#include <exception>
#include <thread>

#include "common/costs.h"

#if defined(__SANITIZE_ADDRESS__)
#define SPRWL_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SPRWL_ASAN_FIBERS 1
#endif
#endif
#ifndef SPRWL_ASAN_FIBERS
#define SPRWL_ASAN_FIBERS 0
#endif

#if SPRWL_ASAN_FIBERS
// AddressSanitizer must be told about every stack switch, or it attributes
// fiber frames to the OS thread's stack and reports false positives (and
// cannot detect genuine fiber-stack overflows).
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save,
                                    const void* stack_bottom,
                                    std::size_t stack_size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** stack_bottom_old,
                                     std::size_t* stack_size_old);
}
#endif

#if defined(__x86_64__)
#define SPRWL_FAST_FIBERS 1
extern "C" {
// Defined in fiber_switch.S.
void sprwl_ctx_switch(void** save_rsp, void* restore_rsp);
void sprwl_fiber_entry();
// First C++ frame of a fresh fiber; referenced from fiber_switch.S.
void sprwl_fiber_main();
}
#else
#define SPRWL_FAST_FIBERS 0
#include <ucontext.h>
#endif

namespace sprwl::sim {
namespace {

// Every fiber shares one OS thread and therefore, by default, one
// __cxa_eh_globals — libstdc++'s per-thread stack of in-flight exception
// objects. That breaks as soon as a fiber yields while an exception is
// alive: the HTM engine charges the abort penalty (which can yield) inside
// its `catch (const AbortException&)` handler, so two fibers can be inside
// catch blocks concurrently. Their __cxa_end_catch calls then pop each
// other's exception objects off the shared list, freeing an exception
// another fiber is still reading (a genuine use-after-free, found by ASan).
// The cure is to give each execution context a private copy of the
// structure, swapped at every switch. Its Itanium-ABI layout is stable:
// { __cxa_exception* caughtExceptions; unsigned int uncaughtExceptions; },
// which two pointer-sized words cover on LP64 and ILP32 alike.
constexpr std::size_t kEhStateBytes = 2 * sizeof(void*);

void eh_switch(unsigned char* save_to, const unsigned char* restore_from) {
  auto* live = reinterpret_cast<unsigned char*>(abi::__cxa_get_globals());
  std::memcpy(save_to, live, kEhStateBytes);
  std::memcpy(live, restore_from, kEhStateBytes);
}

}  // namespace

struct Simulator::FiberContext final : ExecutionContext {
  Simulator* sim = nullptr;
  Fiber* fiber = nullptr;

  std::uint64_t now() override;
  void advance(std::uint64_t cycles) override;
  void pause() override;
  void wait_until(std::uint64_t t) override;
  int thread_id() override;
};

struct Simulator::Fiber {
  std::unique_ptr<char[]> stack;
  std::uint64_t time = 0;
  std::uint32_t jitter = 0;  // per-fiber LCG state for pause jitter
  bool done = false;
  int id = 0;
  Simulator* sim = nullptr;
  std::exception_ptr error;
  FiberContext exec_ctx;
  // Private __cxa_eh_globals while descheduled (zero = no live exceptions).
  unsigned char eh_state[kEhStateBytes] = {};
  void* fake_stack = nullptr;  // ASan fiber bookkeeping (unused otherwise)
#if SPRWL_FAST_FIBERS
  void* rsp = nullptr;
#else
  ucontext_t ctx{};
#endif
};

// The fiber being switched into for the first time; consumed by the entry
// thunk. One scheduler runs per OS thread, hence thread_local.
thread_local Simulator::Fiber* t_entering_fiber = nullptr;

std::uint64_t Simulator::FiberContext::now() { return fiber->time; }
void Simulator::FiberContext::advance(std::uint64_t cycles) {
  sim->fiber_advance(*fiber, cycles);
}
void Simulator::FiberContext::pause() {
  // Spin iterations on real hardware never take exactly the same number of
  // cycles; a deterministic simulator without jitter can lock coupled spin
  // loops into a *permanent* periodic schedule (e.g. a reader whose
  // re-check cadence never aligns with the gaps of an SGL writer convoy —
  // a starvation the paper acknowledges as transient on real machines).
  // A small per-fiber pseudo-random perturbation (deterministic given the
  // run) breaks such lockstep without affecting costs materially.
  fiber->jitter = fiber->jitter * 1664525u + 1013904223u;
  sim->fiber_advance(*fiber, g_costs.pause + (fiber->jitter >> 28));
}
void Simulator::FiberContext::wait_until(std::uint64_t t) {
  sim->fiber_wait_until(*fiber, t);
}
int Simulator::FiberContext::thread_id() { return fiber->id; }

Simulator::Simulator(SimConfig cfg) : cfg_(cfg) {
#if !SPRWL_FAST_FIBERS
  main_ctx_ = new ucontext_t{};
#endif
}

Simulator::~Simulator() {
#if !SPRWL_FAST_FIBERS
  delete static_cast<ucontext_t*>(main_ctx_);
#endif
}

void Simulator::fiber_body(Fiber& f) {
#if SPRWL_ASAN_FIBERS
  // First activation of this fiber: complete the switch the scheduler
  // started, and learn the scheduler's stack bounds for later yields.
  __sanitizer_finish_switch_fiber(nullptr, &f.sim->sched_stack_bottom_,
                                  &f.sim->sched_stack_size_);
#endif
  try {
    (*f.sim->body_)(f.id);
  } catch (...) {
    f.error = std::current_exception();
  }
  f.done = true;
}

#if SPRWL_FAST_FIBERS

void Simulator::switch_to_fiber(Fiber& f) {
  t_entering_fiber = &f;  // consumed only on a fiber's first activation
  eh_switch(sched_eh_state_, f.eh_state);
#if SPRWL_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&sched_fake_stack_, f.stack.get(),
                                 cfg_.stack_bytes);
#endif
  sprwl_ctx_switch(&sched_rsp_, f.rsp);
#if SPRWL_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(sched_fake_stack_, nullptr, nullptr);
#endif
}

void Simulator::yield_to_scheduler(Fiber& f) {
  eh_switch(f.eh_state, sched_eh_state_);
#if SPRWL_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&f.fake_stack, sched_stack_bottom_,
                                 sched_stack_size_);
#endif
  sprwl_ctx_switch(&f.rsp, sched_rsp_);
#if SPRWL_ASAN_FIBERS
  // Resumed: the scheduler finished its half of the switch back to us.
  __sanitizer_finish_switch_fiber(f.fake_stack, nullptr, nullptr);
#endif
}

void Simulator::exit_fiber(Fiber& f) {
  // Permanently hand control back to the scheduler; the save slot is dead.
  eh_switch(f.eh_state, f.sim->sched_eh_state_);
#if SPRWL_ASAN_FIBERS
  // Null save slot: the fiber is dying, let ASan destroy its fake stack.
  __sanitizer_start_switch_fiber(nullptr, f.sim->sched_stack_bottom_,
                                 f.sim->sched_stack_size_);
#endif
  sprwl_ctx_switch(&f.rsp, f.sim->sched_rsp_);
}

void Simulator::prepare_fiber(Fiber& f) {
  // Stack layout (from the top): [entry address][6 callee-saved slots].
  // sprwl_ctx_switch pops the six slots, then `ret` enters
  // sprwl_fiber_entry with rsp 16-byte aligned.
  auto top = reinterpret_cast<std::uintptr_t>(f.stack.get()) + cfg_.stack_bytes;
  top &= ~std::uintptr_t{15};
  auto* sp = reinterpret_cast<void**>(top);
  *--sp = reinterpret_cast<void*>(&sprwl_fiber_entry);
  for (int i = 0; i < 6; ++i) *--sp = nullptr;
  f.rsp = sp;
}

#else  // portable ucontext fallback

void Simulator::switch_to_fiber(Fiber& f) {
  t_entering_fiber = &f;
  eh_switch(sched_eh_state_, f.eh_state);
#if SPRWL_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&sched_fake_stack_, f.stack.get(),
                                 cfg_.stack_bytes);
#endif
  swapcontext(static_cast<ucontext_t*>(main_ctx_), &f.ctx);
#if SPRWL_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(sched_fake_stack_, nullptr, nullptr);
#endif
}

void Simulator::yield_to_scheduler(Fiber& f) {
  eh_switch(f.eh_state, sched_eh_state_);
#if SPRWL_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&f.fake_stack, sched_stack_bottom_,
                                 sched_stack_size_);
#endif
  swapcontext(&f.ctx, static_cast<ucontext_t*>(main_ctx_));
#if SPRWL_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(f.fake_stack, nullptr, nullptr);
#endif
}

void Simulator::exit_fiber(Fiber& f) {
  // The actual switch happens via uc_link when the trampoline falls off;
  // restore the scheduler's exception state (and tell ASan the fiber's
  // stack is dying) just before that.
  eh_switch(f.eh_state, f.sim->sched_eh_state_);
#if SPRWL_ASAN_FIBERS
  __sanitizer_start_switch_fiber(nullptr, f.sim->sched_stack_bottom_,
                                 f.sim->sched_stack_size_);
#endif
}

namespace {
void ucontext_trampoline() {
  Simulator::Fiber* f = t_entering_fiber;
  t_entering_fiber = nullptr;
  Simulator::fiber_body(*f);
  Simulator::exit_fiber(*f);
  // Falling off returns to uc_link (the scheduler's main context).
}
}  // namespace

void Simulator::prepare_fiber(Fiber& f) {
  getcontext(&f.ctx);
  f.ctx.uc_stack.ss_sp = f.stack.get();
  f.ctx.uc_stack.ss_size = cfg_.stack_bytes;
  f.ctx.uc_link = static_cast<ucontext_t*>(main_ctx_);
  makecontext(&f.ctx, &ucontext_trampoline, 0);
}

#endif

void Simulator::deschedule_current_until(std::uint64_t until) {
  if (running_ == nullptr) return;  // not called from a fiber: nothing to do
  ++preemptions_;
  fiber_wait_until(*running_, until);
}

void Simulator::run(int nthreads, const std::function<void(int)>& body) {
  if (nthreads <= 0) return;
  body_ = &body;
  preemptions_ = 0;
  fibers_.clear();
  fibers_.reserve(static_cast<std::size_t>(nthreads));

  for (int i = 0; i < nthreads; ++i) {
    auto f = std::make_unique<Fiber>();
    f->id = i;
    f->jitter = static_cast<std::uint32_t>(i) * 2654435761u + 1u;
    f->sim = this;
    f->stack = std::make_unique<char[]>(cfg_.stack_bytes);
    f->exec_ctx.sim = this;
    f->exec_ctx.fiber = f.get();
    prepare_fiber(*f);
    ready_.push(Entry{0, i});
    fibers_.push_back(std::move(f));
  }

  schedule_loop();

  final_time_ = 0;
  std::exception_ptr first_error;
  std::uint64_t first_error_time = ~0ULL;
  for (const auto& f : fibers_) {
    final_time_ = std::max(final_time_, f->time);
    if (f->error && f->time < first_error_time) {
      first_error = f->error;
      first_error_time = f->time;
    }
  }
  fibers_.clear();
  body_ = nullptr;
  if (first_error) std::rethrow_exception(first_error);
}

void Simulator::schedule_loop() {
  while (!ready_.empty()) {
    const Entry e = ready_.top();
    ready_.pop();
    Fiber& f = *fibers_[static_cast<std::size_t>(e.id)];
    next_wake_ = ready_.empty() ? ~0ULL : ready_.top().time;
    platform::set_context(&f.exec_ctx);
    running_ = &f;
    switch_to_fiber(f);
    running_ = nullptr;
    platform::set_context(nullptr);
    if (!f.done) ready_.push(Entry{f.time, f.id});
    // If a fiber errored out, the remaining ones either finish or hit the
    // virtual-time limit deterministically; run() reports the earliest error.
  }
}

void Simulator::fiber_advance(Fiber& f, std::uint64_t cycles) {
  f.time += cycles;
  if (f.time > cfg_.max_virtual_time) throw SimTimeLimitError(f.time);
  if (f.time > next_wake_) yield_to_scheduler(f);
}

void Simulator::fiber_wait_until(Fiber& f, std::uint64_t t) {
  if (t > f.time) {
    f.time = t;
    if (f.time > cfg_.max_virtual_time) throw SimTimeLimitError(f.time);
  }
  if (f.time > next_wake_) yield_to_scheduler(f);
}

void run_real_threads(int nthreads, const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nthreads));
  threads.reserve(static_cast<std::size_t>(nthreads));
  for (int i = 0; i < nthreads; ++i) {
    threads.emplace_back([&, i] {
      ThreadIdScope scope(i);
      try {
        body(i);
      } catch (...) {
        errors[static_cast<std::size_t>(i)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace sprwl::sim

#if SPRWL_FAST_FIBERS
// First C++ frame of a fresh fiber (called from sprwl_fiber_entry in
// fiber_switch.S). Runs the fiber body, then returns control to the
// scheduler permanently.
extern "C" void sprwl_fiber_main() {
  using Fiber = sprwl::sim::Simulator::Fiber;
  Fiber* f = sprwl::sim::t_entering_fiber;
  sprwl::sim::t_entering_fiber = nullptr;
  sprwl::sim::Simulator::fiber_body(*f);
  sprwl::sim::Simulator::exit_fiber(*f);
  __builtin_unreachable();
}
#endif
