// Virtual-time cost model.
//
// When running under the sim::Simulator, every shared-memory access, fence
// and HTM event charges virtual cycles so that throughput and latency have
// the same *shape* they would on real hardware. The defaults approximate a
// ~2 GHz out-of-order core where shared accesses mostly miss to L2/LLC
// (30 cycles), fences drain the store buffer (~40), and HTM begin/commit
// cost roughly what Intel reports for RTM (tens of cycles each).
//
// EXPERIMENTS.md includes a sensitivity check: the qualitative results are
// stable under +/-2x changes of these values.
//
// The model is mutable global state on purpose: it is configured once by a
// harness before any worker starts and is read-only during a run.
#pragma once

#include <cstdint>

namespace sprwl {

struct CostModel {
  /// How line ownership is priced when the engine tracks owners.
  ///
  /// kMigratory (the default, and the only model before the home-directory
  /// mode existed): the last accessor owns the line, so every access from a
  /// different core pays the topology tier of a cache-to-cache transfer —
  /// including read-after-read, which makes read-sharing bounce lines and
  /// overstates cross-socket costs for reader-heavy workloads.
  ///
  /// kHomeDirectory: a line's home socket is its first toucher and the
  /// engine keeps a per-line sharer-socket mask. A read from a socket not
  /// yet in the mask charges one fetch-to-shared (remote_cross, or
  /// remote_node across nodes) and joins the mask; subsequent reads from
  /// that socket are free. A write charges one invalidation per *other*
  /// sharing socket and collapses the mask to the writer — so read-mostly
  /// sharing is cheap and the cost concentrates where the coherence traffic
  /// really is: writers (e.g. the BRAVO revocation drain) invalidating
  /// reader sockets.
  enum OwnershipModel { kMigratory = 0, kHomeDirectory = 1 };
  OwnershipModel ownership = kMigratory;

  std::uint64_t load = 8;        ///< one shared load (mostly-warm mix)
  std::uint64_t store = 10;      ///< one shared store
  std::uint64_t cas = 40;        ///< one read-modify-write
  std::uint64_t fence = 30;      ///< full memory fence
  std::uint64_t pause = 40;      ///< one spin-loop iteration
  std::uint64_t tx_begin = 60;   ///< HTM transaction begin
  std::uint64_t tx_commit = 80;  ///< HTM commit (success)
  std::uint64_t tx_abort = 120;  ///< HTM abort + rollback to begin
  /// Per written cache line, the cost of the commit's publish window: taking
  /// the line exclusive, draining the store and releasing the new version.
  /// Charged *while the line's versioned lock (or, in kGlobalLock mode, the
  /// global commit lock) is held*, so in virtual time the publish of
  /// same-line writers serializes while disjoint-line writers overlap —
  /// the coherence behaviour the decentralized commit path is built around.
  std::uint64_t line_publish = 15;
  std::uint64_t local_work = 5;  ///< per private (non-shared) step of work
  /// Extra cycles a contended lock handoff costs *per waiting thread*:
  /// under a TATAS lock every release invalidates all spinners and the
  /// winner's RMW contends with the losers', so handoff latency grows
  /// linearly with the spinner count — the classic non-scalable-lock
  /// behaviour of pthread's internal mutex that the paper's flat RWL curve
  /// reflects.
  std::uint64_t contention_unit = 30;
  /// Topology-tiered coherence extras, charged *on top of* load/store/cas
  /// when the HTM engine tracks line owners (sim::Topology with >1 socket,
  /// or EngineConfig::track_line_owners): the accessing core pulls the line
  /// from the core that touched it last.
  ///
  /// remote_socket is the extra for a same-socket transfer (core-to-core
  /// through the shared LLC). It defaults to 0 because the flat 8-cycle
  /// load already prices the mostly-warm LLC mix — keeping the default
  /// model, and therefore every existing single-socket result, bit-exact.
  /// remote_cross is the extra for a cross-socket transfer (QPI/NUMA hop;
  /// ~100 extra cycles ≈ the 2-3x local-to-remote ratio Intel publishes
  /// for 2-socket Broadwell). It only ever applies when a topology with
  /// >= 2 sockets is configured, so it too is invisible by default.
  std::uint64_t remote_socket = 0;
  std::uint64_t remote_cross = 100;
  /// Extra for a cross-node transfer (sim::Topology with >= 2 nodes): a
  /// one-sided RDMA-class read pulling the line over the fabric. ~600 extra
  /// cycles ≈ 1.5-2 us round trips at 2 GHz amortized over warm NIC state,
  /// an order of magnitude past remote_cross — the gap the distributed
  /// tier's leases and version-validated read caching exist to hide. Only
  /// applies when a multi-node topology is configured, so it is invisible
  /// by default (single-node runs stay bit-exact).
  std::uint64_t remote_node = 600;
  double ghz = 2.0;  ///< virtual clock frequency, for tx/s
};

/// The process-wide cost model. Harnesses may overwrite it before starting
/// workers; defaults are always valid.
inline CostModel g_costs{};

}  // namespace sprwl
