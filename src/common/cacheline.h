// Cache-line geometry constants and padding helpers.
//
// Every per-thread slot that is written by one thread and polled by others
// (reader flags, clocks, per-thread mutexes, ...) is padded to its own cache
// line to avoid false sharing, exactly as the SpRWL paper's prototype does.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace sprwl {

/// Size, in bytes, of one cache line (and of one HTM conflict-detection
/// granule in the emulator).
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps a value so that it occupies (at least) one full cache line.
///
/// Usage: `std::vector<CacheLinePadded<std::atomic<uint64_t>>> slots(n);`
template <class T>
struct alignas(kCacheLineSize) CacheLinePadded {
  T value{};

  CacheLinePadded() = default;

  template <class... Args>
  explicit CacheLinePadded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

static_assert(sizeof(CacheLinePadded<char>) == kCacheLineSize);
static_assert(alignof(CacheLinePadded<char>) == kCacheLineSize);

}  // namespace sprwl
