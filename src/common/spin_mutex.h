// Test-and-test-and-set spin mutex, virtual-time aware.
//
// Used as the internal mutex of the pessimistic lock baselines and as a
// building block elsewhere. Spinning goes through platform::pause() so that
// under simulation the waiting thread's virtual clock advances and other
// fibers get to run (a fiber never blocks the scheduler).
#pragma once

#include <atomic>

#include "common/costs.h"
#include "common/platform.h"

namespace sprwl {

class SpinMutex {
 public:
  void lock() {
    if (try_lock()) return;
    waiters_.fetch_add(1, std::memory_order_relaxed);
    for (;;) {
      while (locked_.load(std::memory_order_relaxed)) platform::pause();
      if (!locked_.exchange(true, std::memory_order_acquire)) break;
    }
    waiters_.fetch_sub(1, std::memory_order_relaxed);
    charge_acquisition();
  }

  bool try_lock() {
    platform::advance(g_costs.cas);
    if (locked_.exchange(true, std::memory_order_acquire)) return false;
    charge_acquisition();
    return true;
  }

  /// lock() with an absolute virtual-time deadline (~0 = none). Returns
  /// false with the waiter count restored if the deadline passes before
  /// the mutex is acquired.
  bool try_lock_until(std::uint64_t deadline) {
    if (try_lock()) return true;
    if (deadline != ~std::uint64_t{0} && platform::now() >= deadline) {
      return false;
    }
    waiters_.fetch_add(1, std::memory_order_relaxed);
    for (;;) {
      while (locked_.load(std::memory_order_relaxed)) {
        if (deadline != ~std::uint64_t{0} && platform::now() >= deadline) {
          waiters_.fetch_sub(1, std::memory_order_relaxed);
          return false;
        }
        platform::pause();
      }
      if (!locked_.exchange(true, std::memory_order_acquire)) break;
    }
    waiters_.fetch_sub(1, std::memory_order_relaxed);
    charge_acquisition();
    return true;
  }

  void unlock() {
    platform::advance(g_costs.store);
    locked_.store(false, std::memory_order_release);
  }

  bool is_locked() const noexcept {
    return locked_.load(std::memory_order_acquire);
  }

 private:
  /// Models the coherence cost of a contended handoff: the winner pays
  /// proportionally to the number of threads spinning on the line.
  void charge_acquisition() {
    const int w = waiters_.load(std::memory_order_relaxed);
    if (w > 0) {
      platform::advance(static_cast<std::uint64_t>(w) * g_costs.contention_unit);
    }
  }

  std::atomic<bool> locked_{false};
  std::atomic<int> waiters_{0};
};

}  // namespace sprwl
