// Log-bucketed latency histogram.
//
// The paper reports average reader/writer latencies in cycles on log-scaled
// axes; we additionally keep enough resolution for percentiles. Buckets are
// (power-of-two, 16 sub-buckets) — HdrHistogram-style with ~6% relative
// error, constant memory, and O(1) record.
#pragma once

#include <array>
#include <cstdint>

namespace sprwl {

class LatencyHistogram {
 public:
  static constexpr int kSubBits = 4;                  // 16 linear sub-buckets
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kExpBuckets = 64 - kSubBits;   // covers full uint64

  void record(std::uint64_t v) noexcept {
    ++buckets_[index_of(v)];
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
    if (v < min_) min_ = v;
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t max() const noexcept { return count_ ? max_ : 0; }
  std::uint64_t min() const noexcept { return count_ ? min_ : 0; }

  double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }

  /// Value at quantile q in [0,1], interpolated linearly within the
  /// containing sub-bucket (assuming a uniform spread of the bucket's
  /// samples over its value range), then clamped to [min, max]. Returning
  /// the bucket's upper bound instead systematically over-reports tails:
  /// up to ~6% relative at p999 on log buckets.
  std::uint64_t quantile(double q) const noexcept {
    if (count_ == 0) return 0;
    if (q < 0) q = 0;
    if (q >= 1) return max_;  // rank count-1 IS the max sample, exactly
    const double rank = q * static_cast<double>(count_ - 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i] == 0) continue;
      const double before = static_cast<double>(seen);
      seen += buckets_[i];
      if (static_cast<double>(seen) > rank) {
        const std::uint64_t lo = lower_bound_of(static_cast<int>(i));
        const std::uint64_t hi = upper_bound_of(static_cast<int>(i));
        const double frac =
            (rank - before) / static_cast<double>(buckets_[i]);
        std::uint64_t v =
            lo + static_cast<std::uint64_t>(
                     frac * static_cast<double>(hi - lo) + 0.5);
        if (v < min_) v = min_;
        if (v > max_) v = max_;
        return v;
      }
    }
    return max_;
  }

  /// Merge another histogram into this one (used to aggregate per-thread
  /// recorders after a run; no concurrent use).
  void merge(const LatencyHistogram& other) noexcept {
    for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_) {
      if (other.max_ > max_) max_ = other.max_;
      if (other.min_ < min_) min_ = other.min_;
    }
  }

  void reset() noexcept { *this = LatencyHistogram{}; }

 private:
  static int index_of(std::uint64_t v) noexcept {
    if (v < kSub) return static_cast<int>(v);
    const int msb = 63 - __builtin_clzll(v);
    const int exp = msb - kSubBits;               // >= 1 here
    const int sub = static_cast<int>((v >> exp) & (kSub - 1));
    return exp * kSub + sub;
  }

  static std::uint64_t upper_bound_of(int idx) noexcept {
    const int exp = idx >> kSubBits;
    const int sub = idx & (kSub - 1);
    if (exp == 0) return static_cast<std::uint64_t>(sub);
    return ((static_cast<std::uint64_t>(kSub) + sub + 1) << (exp)) - 1;
  }

  static std::uint64_t lower_bound_of(int idx) noexcept {
    const int exp = idx >> kSubBits;
    const int sub = idx & (kSub - 1);
    if (exp == 0) return static_cast<std::uint64_t>(sub);
    return (static_cast<std::uint64_t>(kSub) + sub) << exp;
  }

  std::array<std::uint64_t, static_cast<std::size_t>(kExpBuckets) * kSub> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t min_ = ~0ULL;
};

}  // namespace sprwl
