// Minimal scope guard: runs a callable on scope exit.
//
// Critical-section bodies are user code and may throw; every lock in this
// library releases whatever it holds through a ScopeExit so that an
// exception from the body leaves the lock usable (CP.20: RAII, never plain
// lock/unlock).
#pragma once

#include <utility>

namespace sprwl {

template <class F>
class ScopeExit {
 public:
  explicit ScopeExit(F f) noexcept : f_(std::move(f)) {}
  ~ScopeExit() { f_(); }

  ScopeExit(const ScopeExit&) = delete;
  ScopeExit& operator=(const ScopeExit&) = delete;

 private:
  F f_;
};

template <class F>
ScopeExit(F) -> ScopeExit<F>;

}  // namespace sprwl
