// Small, fast, deterministic PRNGs used throughout the library.
//
// The benchmarks and the virtual-time simulator must be bit-reproducible
// given a seed, so we avoid std::mt19937's size and use splitmix64 for
// seeding plus xoshiro256** for the stream (public-domain algorithms by
// Blackman & Vigna).
#pragma once

#include <cstdint>

namespace sprwl {

/// splitmix64 step; used to derive well-mixed seeds from small integers.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — a fast 256-bit-state generator with good statistical
/// quality; one instance per thread, never shared.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Multiply-shift range reduction (Lemire). Bias is negligible for the
    // bounds used here and determinism matters more than perfect uniformity.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool next_bool(double p) noexcept { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace sprwl
