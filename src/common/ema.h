// Exponential moving average of critical-section durations.
//
// SpRWL samples critical-section durations on a single thread (Section 3.2.1
// of the paper) and keeps an EMA per critical-section id so that waiting
// phases can be sized from the *expected* end time of readers/writers. The
// estimate is published through a relaxed atomic so every thread can read it
// without synchronization; only the sampler thread writes.
#pragma once

#include <atomic>
#include <cstdint>

namespace sprwl {

class DurationEma {
 public:
  /// alpha is the weight of the newest sample; the paper's prototype uses a
  /// small constant so the estimate tracks workload shifts quickly without
  /// jitter. 1/8 matches common RTT-estimator practice.
  explicit DurationEma(double alpha = 0.125) noexcept : alpha_(alpha) {}

  /// Record one duration sample (cycles). Called by the sampler thread only.
  void record(std::uint64_t cycles) noexcept {
    const std::uint64_t cur = value_.load(std::memory_order_relaxed);
    if (cur == 0) {
      value_.store(cycles, std::memory_order_relaxed);
      return;
    }
    const double next = static_cast<double>(cur) * (1.0 - alpha_) +
                        static_cast<double>(cycles) * alpha_;
    value_.store(static_cast<std::uint64_t>(next), std::memory_order_relaxed);
  }

  /// Current estimate in cycles; 0 means "no sample yet".
  std::uint64_t estimate() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
  double alpha_;
};

}  // namespace sprwl
