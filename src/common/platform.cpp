#include "common/platform.h"

#include <chrono>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace sprwl::platform::detail {

thread_local ExecutionContext* t_context = nullptr;
thread_local int t_thread_id = -1;

std::uint64_t real_now() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

void real_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  // Portable spin hint: nothing better without arch support.
  asm volatile("" ::: "memory");
#endif
  // On hosts with fewer cores than spinners (this reproduction may run on a
  // single core), a pure busy-wait burns whole scheduler quanta before the
  // thread being waited on can run. Yielding keeps spin hand-offs at
  // syscall latency instead.
  std::this_thread::yield();
}

void real_wait_until(std::uint64_t t) noexcept {
  while (real_now() < t) real_pause();
}

}  // namespace sprwl::platform::detail
