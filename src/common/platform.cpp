#include "common/platform.h"

#include <chrono>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace sprwl::platform {
namespace {

thread_local ExecutionContext* t_context = nullptr;
thread_local int t_thread_id = -1;

std::uint64_t real_now() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

void real_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  // Portable spin hint: nothing better without arch support.
  asm volatile("" ::: "memory");
#endif
  // On hosts with fewer cores than spinners (this reproduction may run on a
  // single core), a pure busy-wait burns whole scheduler quanta before the
  // thread being waited on can run. Yielding keeps spin hand-offs at
  // syscall latency instead.
  std::this_thread::yield();
}

}  // namespace

void set_context(ExecutionContext* ctx) noexcept { t_context = ctx; }

ExecutionContext* context() noexcept { return t_context; }

void set_thread_id(int tid) noexcept { t_thread_id = tid; }

std::uint64_t now() {
  if (t_context != nullptr) return t_context->now();
  return real_now();
}

void advance(std::uint64_t cycles) {
  if (t_context != nullptr) t_context->advance(cycles);
}

void pause() {
  if (t_context != nullptr) {
    t_context->pause();
    return;
  }
  real_pause();
}

void wait_until(std::uint64_t t) {
  if (t_context != nullptr) {
    t_context->wait_until(t);
    return;
  }
  while (real_now() < t) real_pause();
}

int thread_id() {
  if (t_context != nullptr) return t_context->thread_id();
  return t_thread_id;
}

}  // namespace sprwl::platform
