// Cache-line-aligned allocation.
//
// Workload data pools must start on a cache-line boundary: otherwise the
// mapping of objects onto 64-byte lines — and with it HTM footprints and
// conflict patterns — would depend on where the heap happened to place the
// buffer, making runs irreproducible. An aligned_vector pins the layout so
// that a given seed always exercises the same line geometry.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

#include "common/cacheline.h"

namespace sprwl {

template <class T>
struct CacheAlignedAllocator {
  using value_type = T;

  CacheAlignedAllocator() = default;
  template <class U>
  constexpr CacheAlignedAllocator(const CacheAlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    const auto align =
        std::align_val_t{alignof(T) > kCacheLineSize ? alignof(T) : kCacheLineSize};
    return static_cast<T*>(::operator new(n * sizeof(T), align));
  }

  void deallocate(T* p, std::size_t) noexcept {
    const auto align =
        std::align_val_t{alignof(T) > kCacheLineSize ? alignof(T) : kCacheLineSize};
    ::operator delete(p, align);
  }

  template <class U>
  bool operator==(const CacheAlignedAllocator<U>&) const noexcept {
    return true;
  }
};

template <class T>
using aligned_vector = std::vector<T, CacheAlignedAllocator<T>>;

}  // namespace sprwl
