// Execution-platform abstraction: time, spin hints and thread identity.
//
// All lock algorithms in this library are written against this tiny facade
// instead of raw rdtsc/_mm_pause so that the *same* code runs in two modes:
//
//  * real mode   — plain std::thread; now() reads the hardware TSC (the
//                  paper's prototype also uses the timestamp counter),
//                  pause() is a CPU spin hint, advance() is a no-op.
//  * simulated   — a sprwl::sim fiber installed an ExecutionContext; now()
//    mode          is the fiber's virtual clock, advance()/pause() charge
//                  virtual cycles and may switch to another fiber, and
//                  wait_until() jumps the virtual clock (modelling the
//                  paper's "timed wait on the TSC instead of spinning"
//                  optimization, Section 3.4).
//
// The indirection is one thread_local pointer check per call; negligible
// next to what it models, and it keeps the algorithm code identical to what
// would run on real hardware.
#pragma once

#include <cstdint>

namespace sprwl {

/// Classification of schedule decision points for the simulator's
/// controlled-scheduler mode (sim::SchedulePolicy). The kReadEnter..
/// kWriteExit block mirrors fault::InjectPoint one-to-one (static_asserted
/// in fault.h) so fault::checkpoint() routes here without a table.
enum class SchedKind : std::uint8_t {
  kStart = 0,   ///< fiber has not run yet
  kPause,       ///< one spin-loop iteration
  kTimedWait,   ///< a timed wait (platform::wait_until) elapsed
  kReadEnter,   ///< read critical section entered (flag raised, body not run)
  kReadBody,    ///< inside the read critical section
  kReadExit,    ///< read body done, flag not yet cleared
  kWriteEnter,  ///< write critical section entered
  kWriteBody,   ///< inside the write critical section
  kWriteExit,   ///< write body done, lock not yet released
  kLeaseRenew,  ///< dist lease acquire/renew decision point (src/dist/)
  kLeaseExpire, ///< dist lease expiry observed / grant-over-expired decision
  kApi,         ///< lock API boundary (acquire/release call)
};

inline const char* to_string(SchedKind k) noexcept {
  switch (k) {
    case SchedKind::kStart: return "start";
    case SchedKind::kPause: return "pause";
    case SchedKind::kTimedWait: return "timed-wait";
    case SchedKind::kReadEnter: return "read-enter";
    case SchedKind::kReadBody: return "read-body";
    case SchedKind::kReadExit: return "read-exit";
    case SchedKind::kWriteEnter: return "write-enter";
    case SchedKind::kWriteBody: return "write-body";
    case SchedKind::kWriteExit: return "write-exit";
    case SchedKind::kLeaseRenew: return "lease-renew";
    case SchedKind::kLeaseExpire: return "lease-expire";
    case SchedKind::kApi: return "api";
  }
  return "?";
}

/// Per-thread execution environment; implemented by sim::Simulator for
/// fibers. Real threads run with no context installed.
class ExecutionContext {
 public:
  virtual ~ExecutionContext() = default;

  /// Current time in cycles (virtual or TSC).
  virtual std::uint64_t now() = 0;

  /// Charge `cycles` of work to this thread's clock.
  virtual void advance(std::uint64_t cycles) = 0;

  /// One spin-loop iteration: charges a small cost and lets others run.
  virtual void pause() = 0;

  /// Block (in virtual time) until now() >= t.
  virtual void wait_until(std::uint64_t t) = 0;

  /// Dense id of the current logical thread, in [0, max_threads).
  virtual int thread_id() = 0;

  /// Schedule decision point (controlled-scheduler mode only; see
  /// sim::SchedulePolicy). `obj` identifies the lock/object the point
  /// belongs to, 0 when unknown. Default: no-op.
  virtual void sched_point(SchedKind kind, std::uintptr_t obj) {
    (void)kind;
    (void)obj;
  }

  /// Whether sched_point() calls should be forwarded at all. Checked inline
  /// by platform::sched_point() so that instrumented code pays one
  /// predictable branch outside controlled mode.
  bool sched_points_enabled() const noexcept { return sched_points_; }

 protected:
  bool sched_points_ = false;
};

namespace platform {

namespace detail {
// The per-thread state lives here (defined in platform.cpp) so the facade
// functions below can inline into the simulator/engine hot paths — they
// run tens of millions of times per bench data point, and a cross-TU call
// per virtual-cycle charge is measurable at that rate.
extern thread_local ExecutionContext* t_context;
extern thread_local int t_thread_id;
std::uint64_t real_now() noexcept;
void real_pause() noexcept;
void real_wait_until(std::uint64_t t) noexcept;
}  // namespace detail

/// Install/remove the context for the calling OS thread. Passing nullptr
/// restores real mode.
inline void set_context(ExecutionContext* ctx) noexcept {
  detail::t_context = ctx;
}
inline ExecutionContext* context() noexcept { return detail::t_context; }

/// In real mode, threads must be given a dense id before touching any lock
/// that keeps per-thread state. In simulated mode the fiber id wins.
inline void set_thread_id(int tid) noexcept { detail::t_thread_id = tid; }

// These may throw when a simulated context enforces its virtual-time limit
// (sim::SimTimeLimitError), hence no noexcept.
inline std::uint64_t now() {
  ExecutionContext* c = detail::t_context;
  return c != nullptr ? c->now() : detail::real_now();
}
inline void advance(std::uint64_t cycles) {
  ExecutionContext* c = detail::t_context;
  if (c != nullptr) c->advance(cycles);
}
inline void pause() {
  ExecutionContext* c = detail::t_context;
  if (c != nullptr) {
    c->pause();
    return;
  }
  detail::real_pause();
}
inline void wait_until(std::uint64_t t) {
  ExecutionContext* c = detail::t_context;
  if (c != nullptr) {
    c->wait_until(t);
    return;
  }
  detail::real_wait_until(t);
}
inline int thread_id() {
  ExecutionContext* c = detail::t_context;
  return c != nullptr ? c->thread_id() : detail::t_thread_id;
}
/// Schedule decision point. A no-op (one predictable branch) except under
/// the simulator's controlled-scheduler mode, where it parks the calling
/// fiber and lets the active SchedulePolicy decide who runs next. `obj`
/// tags the point with the lock/object it belongs to.
inline void sched_point(SchedKind kind, const void* obj = nullptr) {
  ExecutionContext* c = detail::t_context;
  if (c != nullptr && c->sched_points_enabled()) {
    c->sched_point(kind, reinterpret_cast<std::uintptr_t>(obj));
  }
}

}  // namespace platform

/// RAII helper for real-thread harnesses: assigns the dense thread id for
/// the lifetime of a worker's body.
class ThreadIdScope {
 public:
  explicit ThreadIdScope(int tid) noexcept { platform::set_thread_id(tid); }
  ~ThreadIdScope() { platform::set_thread_id(-1); }
  ThreadIdScope(const ThreadIdScope&) = delete;
  ThreadIdScope& operator=(const ThreadIdScope&) = delete;
};

}  // namespace sprwl
