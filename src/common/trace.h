// Lightweight event tracing for lock decisions.
//
// A Tracer is a fixed-capacity ring of (virtual-time, thread, event, arg)
// records. Locks emit through the process-wide current tracer when one is
// installed and skip a single branch when none is (the default — tracing is
// strictly opt-in and charges no virtual time, it is an observer, not part
// of the modelled machine).
//
// Intended use: install a Tracer around a puzzling run, drain() it, and
// read the interleaved decision timeline — which reader deferred to the
// SGL, which writer burned its budget, when the adaptive tracker flipped.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/platform.h"

namespace sprwl::trace {

enum class Event : std::uint8_t {
  kNone = 0,
  // Reader-side
  kReadHtmCommit,      ///< read section elided in HTM (§3.4 fast path)
  kReadUninsEnter,     ///< uninstrumented read section entered
  kReadUninsExit,      ///< uninstrumented read section left
  kReaderWait,         ///< reader-sync wait began; arg = writer tid
  kReaderJoin,         ///< joined an already-waiting reader; arg = writer tid
  kReaderDeferSgl,     ///< reader backed off from a busy SGL
  // Writer-side
  kWriteHtmCommit,     ///< update committed in HTM; arg = attempts used
  kWriteAbortReader,   ///< attempt aborted by an active reader
  kWriterWait,         ///< writer-sync delay began (Alg. 3)
  kWriteSglEnter,      ///< fallback path taken; arg = attempts used
  kWriteSglExit,
  kWriterBackoff,      ///< exponential retry backoff; arg = backoff cycles
  kStalledReaderEscalate,  ///< reader-stall watchdog fired; arg = attempts
  kLemmingAvoided,     ///< lock-busy abort forgiven (no retry burned)
  // Tracking-mode (adaptive)
  kModeFlipToSnzi,
  kModeFlipToFlags,
  kModeTransitionDone,
  // BRAVO global reader bias (DESIGN.md §12)
  kReadBiasEnter,      ///< fast-path read via the global reader table
  kReadBiasExit,
  kBiasRevoke,         ///< writer revoked the lock's bias; arg = drain cycles
  kBiasRebias,         ///< reader streak re-enabled the bias
  // Fault injection (src/fault)
  kFaultPreempt,       ///< fiber descheduled; arg = duration in cycles
  kFaultSyscall,       ///< modelled syscall fired at a checkpoint
  // Deadline-aware acquisition (DESIGN.md §13)
  kReadTimeout,        ///< timed read abandoned (all tracking unwound)
  kWriteTimeout,       ///< timed write abandoned before entering its section
  kBiasRevokeAbandoned,  ///< timed revocation drain expired; bias re-armed
};

const char* to_string(Event e) noexcept;

struct Record {
  std::uint64_t time;
  std::int32_t tid;
  Event event;
  std::uint32_t arg;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1 << 14) : ring_(capacity) {}

  void emit(Event e, std::uint32_t arg = 0) {
    const std::size_t at =
        cursor_.fetch_add(1, std::memory_order_relaxed) % ring_.size();
    ring_[at] = Record{platform::now(), platform::thread_id(), e, arg};
  }

  /// Snapshot of the retained records in emission order (oldest first).
  /// Call at quiescence (after the run), not concurrently with emitters.
  std::vector<Record> drain() const {
    const std::size_t total = cursor_.load(std::memory_order_relaxed);
    std::vector<Record> out;
    const std::size_t n = total < ring_.size() ? total : ring_.size();
    out.reserve(n);
    const std::size_t start = total < ring_.size() ? 0 : total % ring_.size();
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
  }

  std::size_t emitted() const noexcept {
    return cursor_.load(std::memory_order_relaxed);
  }

  static Tracer* current() noexcept {
    return g_current.load(std::memory_order_acquire);
  }
  static void set_current(Tracer* t) noexcept {
    g_current.store(t, std::memory_order_release);
  }

 private:
  std::vector<Record> ring_;
  std::atomic<std::size_t> cursor_{0};
  static inline std::atomic<Tracer*> g_current{nullptr};
};

/// Emit through the installed tracer, if any. One predictable branch when
/// tracing is off.
inline void emit(Event e, std::uint32_t arg = 0) {
  if (Tracer* t = Tracer::current()) t->emit(e, arg);
}

/// RAII installer.
class TracerScope {
 public:
  explicit TracerScope(Tracer& t) noexcept : prev_(Tracer::current()) {
    Tracer::set_current(&t);
  }
  ~TracerScope() { Tracer::set_current(prev_); }
  TracerScope(const TracerScope&) = delete;
  TracerScope& operator=(const TracerScope&) = delete;

 private:
  Tracer* prev_;
};

inline const char* to_string(Event e) noexcept {
  switch (e) {
    case Event::kNone: return "none";
    case Event::kReadHtmCommit: return "read-htm-commit";
    case Event::kReadUninsEnter: return "read-unins-enter";
    case Event::kReadUninsExit: return "read-unins-exit";
    case Event::kReaderWait: return "reader-wait";
    case Event::kReaderJoin: return "reader-join";
    case Event::kReaderDeferSgl: return "reader-defer-sgl";
    case Event::kWriteHtmCommit: return "write-htm-commit";
    case Event::kWriteAbortReader: return "write-abort-reader";
    case Event::kWriterWait: return "writer-wait";
    case Event::kWriteSglEnter: return "write-sgl-enter";
    case Event::kWriteSglExit: return "write-sgl-exit";
    case Event::kWriterBackoff: return "writer-backoff";
    case Event::kStalledReaderEscalate: return "stalled-reader-escalate";
    case Event::kLemmingAvoided: return "lemming-avoided";
    case Event::kModeFlipToSnzi: return "mode-flip-to-snzi";
    case Event::kModeFlipToFlags: return "mode-flip-to-flags";
    case Event::kModeTransitionDone: return "mode-transition-done";
    case Event::kReadBiasEnter: return "read-bias-enter";
    case Event::kReadBiasExit: return "read-bias-exit";
    case Event::kBiasRevoke: return "bias-revoke";
    case Event::kBiasRebias: return "bias-rebias";
    case Event::kFaultPreempt: return "fault-preempt";
    case Event::kFaultSyscall: return "fault-syscall";
    case Event::kReadTimeout: return "read-timeout";
    case Event::kWriteTimeout: return "write-timeout";
    case Event::kBiasRevokeAbandoned: return "bias-revoke-abandoned";
  }
  return "?";
}

}  // namespace sprwl::trace
