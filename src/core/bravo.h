// BRAVO-style global visible-readers table (Dice & Kogan, arXiv:1810.01553).
//
// SpRWL's per-lock reader tracking costs O(threads) words *per lock* — fatal
// at the lock-table scale ROADMAP targets (millions of per-key locks, almost
// all cold). BRAVO's observation: reader *registration* does not have to be
// per-lock. One process-global, cache-line-padded slot array is shared by
// every lock; a reader under a biased lock publishes (lock, tid) into its
// hashed slot and skips the lock's flag plane entirely. Writers revoke the
// bias and drain the table before falling back to the per-lock scan, so the
// table only has to make readers *visible*, not countable — hash collisions
// merely make revocation conservative (a writer may wait for a reader of a
// different lock that shares the slot), never unsafe.
//
// The slots are htm::Shared words: occupy() is a strong-isolation CAS and
// release() a strong-isolation store, so both bump their line's version and
// are visible to transactional writers exactly like the per-lock state flags
// (the safety argument of DESIGN.md §12 leans on this).
//
// Slot tags are dense lock ids (register_lock()), not addresses: the virtual
// time a run accumulates must not depend on where the heap placed a lock, or
// runs would be irreproducible. slot_of() mixes (lock id, tid) so that one
// lock's readers spread over the table and one thread's locks do too.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>

#include "common/aligned.h"
#include "common/cacheline.h"
#include "common/platform.h"
#include "htm/line_set.h"
#include "htm/shared.h"
#include "sim/topology.h"

namespace sprwl::bravo {

class ReaderTable {
 public:
  struct Config {
    /// Upper bound on concurrently running threads; the auto-sized table
    /// holds slots_per_thread slots per thread so fast-path CAS failures
    /// (collisions) stay rare.
    int max_threads = 64;
    int slots_per_thread = 4;
    /// Machine shape; a table sized for more cores than max_threads keeps
    /// collision rates flat when the run oversubscribes sockets.
    sim::Topology topology{};
    /// Explicit slot count override; 0 = auto from the fields above. Tests
    /// and the checker force tiny tables (down to 1 slot) to make collision
    /// and revocation interleavings reachable.
    std::size_t slots = 0;
  };

  /// Slots per 64-byte line; the revocation drain reads whole lines.
  static constexpr std::size_t kSlotsPerLine = 8;

  explicit ReaderTable(Config cfg) : cfg_(cfg) {
    std::size_t n = cfg.slots;
    if (n == 0) {
      int cores = cfg.topology.sockets * cfg.topology.cores_per_socket;
      if (cores < cfg.max_threads) cores = cfg.max_threads;
      if (cores < 1) cores = 1;
      n = static_cast<std::size_t>(cores) *
          static_cast<std::size_t>(cfg.slots_per_thread < 1 ? 1 : cfg.slots_per_thread);
      n = (n + kSlotsPerLine - 1) / kSlotsPerLine * kSlotsPerLine;
    }
    if (n == 0) throw std::invalid_argument("ReaderTable needs >= 1 slot");
    slots_ = aligned_vector<htm::Shared<std::uint64_t>>(n);
  }

  ReaderTable() : ReaderTable(Config{}) {}

  /// Hands out the next dense lock id. Locks register at construction;
  /// construction is a single-threaded phase (population / per-run setup),
  /// so ids — and with them slot hashes and virtual-time traces — are
  /// deterministic.
  std::uint32_t register_lock() noexcept {
    return next_lock_id_.fetch_add(1, std::memory_order_relaxed);
  }

  std::size_t slot_of(std::uint32_t lock_id, int tid) const noexcept {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(lock_id) << 32) |
        static_cast<std::uint32_t>(tid);
    return static_cast<std::size_t>(htm::detail::mix64(key)) % slots_.size();
  }

  /// Tag a lock's readers publish: ids are 0-based, 0 means "slot empty".
  static std::uint64_t tag_of(std::uint32_t lock_id) noexcept {
    return static_cast<std::uint64_t>(lock_id) + 1;
  }

  /// Fast-path publish: CAS the slot from empty to this lock's tag
  /// (strong isolation — bumps the slot line's version). False on
  /// collision: the caller must take the per-lock slow path.
  bool occupy(std::size_t slot, std::uint32_t lock_id) {
    return slots_[slot].cas(0, tag_of(lock_id));
  }

  /// Matching release (strong-isolation store).
  void release(std::size_t slot) { slots_[slot].store(0); }

  /// Revocation drain: wait until no slot holds `lock_id`'s tag. Reads one
  /// line at a time with a single load charge (line_or_plain) and only
  /// spins per-slot on lines whose summary is non-empty; a slot occupied by
  /// a *different* lock costs one extra word compare, never a wait.
  ///
  /// `skip_last_slot` is the deliberately broken variant the DFS checker
  /// must catch (ISSUE 6): the drain ignores the table's last slot, so a
  /// fast-path reader parked there survives revocation and a writer can
  /// commit over it.
  ///
  /// `deadline` is an absolute virtual time (~0 = none): the drain gives
  /// up and returns false the moment it passes, leaving whatever slots it
  /// already drained drained. The caller (SpRWLock::revoke_bias) must NOT
  /// treat a false return as "no readers" — it re-arms the bias instead.
  /// With the default deadline the charge sequence is identical to the
  /// pre-timeout drain (the expiry check reads the clock for free).
  bool wait_for_readers_of(std::uint32_t lock_id, bool skip_last_slot = false,
                           std::uint64_t deadline = ~std::uint64_t{0}) {
    const std::uint64_t tag = tag_of(lock_id);
    const std::size_t limit = slots_.size() - (skip_last_slot ? 1 : 0);
    for (std::size_t base = 0; base < limit; base += kSlotsPerLine) {
      const std::size_t count =
          limit - base < kSlotsPerLine ? limit - base : kSlotsPerLine;
      if (htm::line_or_plain(&slots_[base], count) == 0) continue;
      for (std::size_t s = base; s < base + count; ++s) {
        while (slots_[s].load() == tag) {
          if (deadline != ~std::uint64_t{0} && platform::now() >= deadline) {
            return false;
          }
          platform::pause();
        }
      }
    }
    return true;
  }

  /// Raw view: true iff no slot holds any lock's tag (chaos tests assert
  /// this at quiesce — a slot leaked by an abandoned timed acquisition
  /// would wedge every later revocation drain).
  bool all_slots_empty_raw() const noexcept {
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      if (slots_[s].raw_load() != 0) return false;
    }
    return true;
  }

  /// Raw occupant of a slot (tests; 0 = empty).
  std::uint64_t occupant_raw(std::size_t slot) const noexcept {
    return slots_[slot].raw_load();
  }

  std::size_t slot_count() const noexcept { return slots_.size(); }
  std::uint32_t registered_locks() const noexcept {
    return next_lock_id_.load(std::memory_order_relaxed);
  }

  /// Total bytes of the table — the *shared* part of the per-lock footprint
  /// accounting (amortized over every registered lock).
  std::size_t footprint_bytes() const noexcept {
    return sizeof(*this) +
           slots_.capacity() * sizeof(htm::Shared<std::uint64_t>);
  }

  const Config& config() const noexcept { return cfg_; }

 private:
  Config cfg_;
  aligned_vector<htm::Shared<std::uint64_t>> slots_;
  std::atomic<std::uint32_t> next_lock_id_{0};
};

}  // namespace sprwl::bravo
