// BRAVO-style global visible-readers table (Dice & Kogan, arXiv:1810.01553).
//
// SpRWL's per-lock reader tracking costs O(threads) words *per lock* — fatal
// at the lock-table scale ROADMAP targets (millions of per-key locks, almost
// all cold). BRAVO's observation: reader *registration* does not have to be
// per-lock. One process-global, cache-line-padded slot array is shared by
// every lock; a reader under a biased lock publishes (lock, tid) into its
// hashed slot and skips the lock's flag plane entirely. Writers revoke the
// bias and drain the table before falling back to the per-lock scan, so the
// table only has to make readers *visible*, not countable — hash collisions
// merely make revocation conservative (a writer may wait for a reader of a
// different lock that shares the slot), never unsafe.
//
// The slots are htm::Shared words: occupy() is a strong-isolation CAS and
// release() a strong-isolation store, so both bump their line's version and
// are visible to transactional writers exactly like the per-lock state flags
// (the safety argument of DESIGN.md §12 leans on this).
//
// Slot tags are dense lock ids (register_lock()), not addresses: the virtual
// time a run accumulates must not depend on where the heap placed a lock, or
// runs would be irreproducible. slot_of() mixes (lock id, tid) so that one
// lock's readers spread over the table and one thread's locks do too.
//
// NUMA variant (Config::shard_by_socket — BRAVO's own per-node tables): the
// table becomes one cache-aligned slot shard per socket, each sized from
// that socket's core count, and slot_of() hashes (lock, tid) *within the
// acquirer's socket's shard* — a biased reader only ever touches lines of
// its own socket. Each shard additionally maintains an occupancy summary:
// one word PER THREAD of the socket, packed into the shard's own summary
// line(s), that is STICKY with amortized clears. The thread's first
// registration stores 1 (a plain strong-isolation store, before the
// caller's Dekker fence); the word then stays raised — tracked by a
// thread-private mirror, so steady-state registrations touch no summary
// line at all — until the thread's Config::summary_clear_period-th
// outermost release stores 0 and re-arms the publish. Only the owning
// thread ever writes its word (no read-modify-write, no contention, and
// no drainer-side clears, which would race between concurrent drains of
// different locks); two earlier designs lost to this one: a per-shard
// count word turned the summary into a CAS hotspot, and clearing on
// EVERY outermost release paid two strong stores per uncontended read —
// both cost more than the drain they saved. A revoking writer walking
// shards in socket order line-ORs the summary line(s) — ONE load per
// line, one line for up to 8 resident threads — and skips the whole
// shard when they read 0. Safety of the skip (DESIGN.md §16): a reader's
// word reads 0 only if its LAST summary write was a clear (outermost
// release, depth 0) — any registration after that stores 1 before the
// fence that precedes its bias validation, and the writer publishes
// kBiasRevoking before the fence that precedes its summary reads — so a
// writer that reads an all-zero summary either ran after the readers'
// releases or their validations are yet to come and will observe
// kBiasRevoking and back out. A summary word may over-report (stickiness
// IS over-reporting; the drain then scans the shard's slot lines, which
// is merely conservative) but never under-reports a reader inside its
// section.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/aligned.h"
#include "common/cacheline.h"
#include "common/platform.h"
#include "htm/line_set.h"
#include "htm/shared.h"
#include "sim/topology.h"

namespace sprwl::bravo {

class ReaderTable {
 public:
  struct Config {
    /// Upper bound on concurrently running threads; the auto-sized table
    /// holds slots_per_thread slots per thread so fast-path CAS failures
    /// (collisions) stay rare.
    int max_threads = 64;
    int slots_per_thread = 4;
    /// Machine shape; a table sized for more cores than max_threads keeps
    /// collision rates flat when the run oversubscribes sockets.
    sim::Topology topology{};
    /// Explicit slot count override; 0 = auto from the fields above. Tests
    /// and the checker force tiny tables (down to 1 slot) to make collision
    /// and revocation interleavings reachable. With shard_by_socket this is
    /// the slot count *per shard*.
    std::size_t slots = 0;
    /// NUMA sharding: one slot shard per topology socket, each sized from
    /// sockets × cores_per_socket (slots_per_thread slots per core of the
    /// shard's socket) and starting on its own cache line, plus per-shard
    /// occupancy-summary lines (one word per resident thread, written on
    /// registration transitions only) the revocation drain reads first.
    /// Off by default — the global table's layout, costs and traces are
    /// untouched.
    bool shard_by_socket = false;
    /// Sticky-summary clear cadence (shard_by_socket only): a thread's
    /// summary word is cleared on every Nth outermost release and
    /// re-published on the next registration, so steady-state reads pay
    /// no summary stores at all (2 x (store + line_publish) / N cycles
    /// amortized). 1 = clear on every outermost release (exact
    /// transition semantics; the unit tests use this). Larger values
    /// trade drain conservatism — a recently-active shard reads dirty
    /// and gets scanned — for reader throughput.
    int summary_clear_period = 8;
  };

  /// Slots per 64-byte line; the revocation drain reads whole lines.
  static constexpr std::size_t kSlotsPerLine = 8;

  explicit ReaderTable(Config cfg) : cfg_(cfg) {
    if (cfg.shard_by_socket) {
      shards_ = cfg.topology.sockets < 1 ? 1 : cfg.topology.sockets;
      std::size_t per_shard = cfg.slots;
      if (per_shard == 0) {
        // Per-shard sizing comes from the shard's own core count, not the
        // global one: a shard only ever hosts its socket's readers.
        if (cfg.topology.sockets > 1 && cfg.topology.cores_per_socket < 1) {
          throw std::invalid_argument(
              "ReaderTable: shard_by_socket with >1 socket requires "
              "cores_per_socket >= 1 (shard would be empty)");
        }
        const int cores = cfg.topology.cores_per_socket >= 1
                              ? cfg.topology.cores_per_socket
                              : (cfg.max_threads < 1 ? 1 : cfg.max_threads);
        per_shard = static_cast<std::size_t>(cores) *
                    static_cast<std::size_t>(
                        cfg.slots_per_thread < 1 ? 1 : cfg.slots_per_thread);
      }
      if (per_shard == 0)
        throw std::invalid_argument("ReaderTable: empty shard");
      shard_slots_ = per_shard;
      shard_stride_ =
          (per_shard + kSlotsPerLine - 1) / kSlotsPerLine * kSlotsPerLine;
      slots_ = aligned_vector<htm::Shared<std::uint64_t>>(
          static_cast<std::size_t>(shards_) * shard_stride_);
      // Summary lines per shard: one word per thread the shard can host
      // (local_index is a bijection socket-tid -> [0, span)), rounded to
      // whole lines. Typically one line — cores_per_socket <= 8 — so a
      // clean shard costs the drain exactly one load.
      const int mt = cfg.max_threads < 1 ? 1 : cfg.max_threads;
      std::size_t span = 1;
      for (int t = 0; t < mt; ++t) {
        const std::size_t li = local_index(t) + 1;
        if (li > span) span = li;
      }
      summary_stride_ =
          (span + kSlotsPerLine - 1) / kSlotsPerLine * kSlotsPerLine;
      summary_ = aligned_vector<htm::Shared<std::uint64_t>>(
          static_cast<std::size_t>(shards_) * summary_stride_);
      // Per-thread registration state: thread-private bookkeeping (each
      // entry is read/written only by its own thread), uncharged — the
      // depth turns nested registrations into at most one summary write
      // per outermost pair, and the published mirror + release counter
      // implement the amortized sticky clears.
      priv_.assign(static_cast<std::size_t>(mt), ThreadState{});
      return;
    }
    std::size_t n = cfg.slots;
    if (n == 0) {
      int cores = cfg.topology.sockets * cfg.topology.cores_per_socket;
      if (cores < cfg.max_threads) cores = cfg.max_threads;
      if (cores < 1) cores = 1;
      n = static_cast<std::size_t>(cores) *
          static_cast<std::size_t>(cfg.slots_per_thread < 1 ? 1 : cfg.slots_per_thread);
      n = (n + kSlotsPerLine - 1) / kSlotsPerLine * kSlotsPerLine;
    }
    if (n == 0) throw std::invalid_argument("ReaderTable needs >= 1 slot");
    shard_slots_ = n;
    shard_stride_ = n;
    slots_ = aligned_vector<htm::Shared<std::uint64_t>>(n);
  }

  ReaderTable() : ReaderTable(Config{}) {}

  /// Hands out the next dense lock id. Locks register at construction;
  /// construction is a single-threaded phase (population / per-run setup),
  /// so ids — and with them slot hashes and virtual-time traces — are
  /// deterministic.
  std::uint32_t register_lock() noexcept {
    return next_lock_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// True when the table is socket-sharded (Config::shard_by_socket).
  bool sharded() const noexcept { return cfg_.shard_by_socket; }
  int shard_count() const noexcept { return shards_; }
  /// Logical slots per shard (= the whole table when not sharded).
  std::size_t shard_slots() const noexcept { return shard_slots_; }

  /// Shard the acquiring thread registers in — its socket's. Threads past
  /// the last socket wrap (Topology::socket_of), so oversubscription stays
  /// valid.
  int shard_of_tid(int tid) const noexcept {
    return cfg_.shard_by_socket ? cfg_.topology.socket_of(tid) % shards_ : 0;
  }

  /// Shard owning a slot index. release() uses this, NOT the releasing
  /// thread's current socket: a reader that migrated between occupy and
  /// release must decrement the summary of the shard it registered in.
  int shard_of_slot(std::size_t slot) const noexcept {
    return cfg_.shard_by_socket ? static_cast<int>(slot / shard_stride_) : 0;
  }

  std::size_t slot_of(std::uint32_t lock_id, int tid) const noexcept {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(lock_id) << 32) |
        static_cast<std::uint32_t>(tid);
    const std::uint64_t h = htm::detail::mix64(key);
    if (cfg_.shard_by_socket) {
      const int shard = shard_of_tid(tid);
      return static_cast<std::size_t>(shard) * shard_stride_ +
             static_cast<std::size_t>(h) % shard_slots_;
    }
    return static_cast<std::size_t>(h) % slots_.size();
  }

  /// Tag a lock's readers publish: ids are 0-based, 0 means "slot empty".
  static std::uint64_t tag_of(std::uint32_t lock_id) noexcept {
    return static_cast<std::uint64_t>(lock_id) + 1;
  }

  /// Fast-path publish: CAS the slot from empty to this lock's tag
  /// (strong isolation — bumps the slot line's version). False on
  /// collision: the caller must take the per-lock slow path. Sharded
  /// tables also raise the thread's summary word — BEFORE the caller's
  /// Dekker fence, which is what licenses the drain's clean-shard skip —
  /// unless the word is still sticky-raised from an earlier registration
  /// (the thread-private mirror knows; the steady state touches no
  /// summary line). `tid` is the acquiring thread; the global layout
  /// ignores it.
  bool occupy(std::size_t slot, std::uint32_t lock_id, int tid) {
    if (!slots_[slot].cas(0, tag_of(lock_id))) return false;
    if (cfg_.shard_by_socket) {
      ThreadState& st = priv_[static_cast<std::size_t>(tid)];
      ++st.depth;
      if (!st.published) {
        summary_word(shard_of_slot(slot), tid).store(1);
        st.published = true;
      }
    }
    return true;
  }

  /// Matching release (strong-isolation store). Slot first; then, on the
  /// thread's summary_clear_period-th outermost release, its summary
  /// word in the slot's shard (the registering shard, wherever the
  /// thread runs now) is cleared and the sticky publish re-armed. A
  /// summary therefore over-reports between clears — later drains scan
  /// the shard's slot lines, conservative never unsafe — and never reads
  /// clean while a registration of its shard is live.
  void release(std::size_t slot, int tid) {
    slots_[slot].store(0);
    if (cfg_.shard_by_socket) {
      ThreadState& st = priv_[static_cast<std::size_t>(tid)];
      if (st.depth > 0 && --st.depth == 0) {
        const std::uint32_t period =
            cfg_.summary_clear_period < 1
                ? 1
                : static_cast<std::uint32_t>(cfg_.summary_clear_period);
        if (++st.outermost_releases % period == 0) {
          summary_word(shard_of_slot(slot), tid).store(0);
          st.published = false;
        }
      }
    }
  }

  /// Revocation drain: wait until no slot holds `lock_id`'s tag. Reads one
  /// line at a time with a single load charge (line_or_plain) and only
  /// spins per-slot on lines whose summary is non-empty; a slot occupied by
  /// a *different* lock costs one extra word compare, never a wait.
  /// Sharded tables are walked in socket order, and a shard whose occupancy
  /// summary reads 0 costs exactly its summary line reads (one line for up
  /// to 8 resident threads) — the drain is O(sockets) when remote shards
  /// are clean.
  ///
  /// `skip_last_slot` is the deliberately broken variant the DFS checker
  /// must catch (ISSUE 6): the drain ignores the table's last slot, so a
  /// fast-path reader parked there survives revocation and a writer can
  /// commit over it. Global-table layout only.
  ///
  /// `broken_skip_shard` is the sharded-table analogue (ISSUE 10): the
  /// drain skips that shard's summary — and with it the whole shard — so a
  /// reader parked on that (remote) socket survives revocation. -1 = off.
  ///
  /// `deadline` is an absolute virtual time (~0 = none): the drain gives
  /// up and returns false the moment it passes, leaving whatever slots it
  /// already drained drained. The caller (SpRWLock::revoke_bias) must NOT
  /// treat a false return as "no readers" — it re-arms the bias instead.
  /// With the default deadline the charge sequence is identical to the
  /// pre-timeout drain (the expiry check reads the clock for free).
  ///
  /// `shard_cycles`, when non-null, receives the virtual cycles the drain
  /// spent in each shard — the per-shard revocation EMA the lock's re-bias
  /// throttle keys off. Shard `sh` is written at
  /// shard_cycles[sh * shard_cycles_stride] (in units of std::uint64_t):
  /// the stride lets the caller keep its per-shard scratch interleaved
  /// with other per-shard telemetry in one allocation.
  bool wait_for_readers_of(std::uint32_t lock_id, bool skip_last_slot = false,
                           std::uint64_t deadline = ~std::uint64_t{0},
                           int broken_skip_shard = -1,
                           std::uint64_t* shard_cycles = nullptr,
                           std::size_t shard_cycles_stride = 1) {
    const std::uint64_t tag = tag_of(lock_id);
    if (cfg_.shard_by_socket) {
      for (int sh = 0; sh < shards_; ++sh) {
        std::uint64_t* cyc =
            shard_cycles == nullptr
                ? nullptr
                : shard_cycles + static_cast<std::size_t>(sh) *
                                     shard_cycles_stride;
        if (cyc != nullptr) *cyc = 0;
        if (sh == broken_skip_shard) continue;  // checker-only blindness
        const std::uint64_t t0 = platform::now();
        const std::size_t base = static_cast<std::size_t>(sh) * shard_stride_;
        // Line-OR the shard's occupancy summary — one load per summary
        // line (typically one line total). All-zero means no reader of
        // ANY lock is registered here (see the header comment for why a
        // late-arriving reader is safe to skip).
        const std::size_t sb = static_cast<std::size_t>(sh) * summary_stride_;
        std::uint64_t occupied = 0;
        for (std::size_t b = 0; b < summary_stride_; b += kSlotsPerLine) {
          const std::size_t count = summary_stride_ - b < kSlotsPerLine
                                        ? summary_stride_ - b
                                        : kSlotsPerLine;
          occupied |= htm::line_or_plain(&summary_[sb + b], count);
          if (occupied != 0) break;
        }
        if (occupied != 0) {
          if (!drain_range(base, base + shard_slots_, tag, deadline)) {
            if (cyc != nullptr) *cyc = platform::now() - t0;
            return false;
          }
        }
        if (cyc != nullptr) *cyc = platform::now() - t0;
      }
      return true;
    }
    const std::size_t limit = slots_.size() - (skip_last_slot ? 1 : 0);
    return drain_range(0, limit, tag, deadline);
  }

  /// Raw view: true iff no slot holds any lock's tag (chaos tests assert
  /// this at quiesce — a slot leaked by an abandoned timed acquisition
  /// would wedge every later revocation drain). Summaries are NOT part of
  /// the invariant: sticky words legitimately stay raised between
  /// amortized clears, which only costs later drains a shard scan.
  bool all_slots_empty_raw() const noexcept {
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      if (slots_[s].raw_load() != 0) return false;
    }
    return true;
  }

  /// Raw occupant of a slot (tests; 0 = empty).
  std::uint64_t occupant_raw(std::size_t slot) const noexcept {
    return slots_[slot].raw_load();
  }

  /// Raw occupancy summary of a shard: the number of raised (sticky)
  /// per-thread words — an upper bound on the threads registered there
  /// (tests; sharded tables only; exact with summary_clear_period = 1).
  std::uint64_t summary_raw(int shard) const noexcept {
    if (!cfg_.shard_by_socket) return 0;
    const std::size_t sb = static_cast<std::size_t>(shard) * summary_stride_;
    std::uint64_t n = 0;
    for (std::size_t w = 0; w < summary_stride_; ++w)
      n += summary_[sb + w].raw_load();
    return n;
  }

  std::size_t slot_count() const noexcept { return slots_.size(); }
  std::uint32_t registered_locks() const noexcept {
    return next_lock_id_.load(std::memory_order_relaxed);
  }

  /// Total bytes of the table — the *shared* part of the per-lock footprint
  /// accounting (amortized over every registered lock).
  std::size_t footprint_bytes() const noexcept {
    return sizeof(*this) +
           slots_.capacity() * sizeof(htm::Shared<std::uint64_t>) +
           summary_.capacity() * sizeof(htm::Shared<std::uint64_t>) +
           priv_.capacity() * sizeof(ThreadState);
  }

  const Config& config() const noexcept { return cfg_; }

 private:
  /// Per-slot drain over [first, limit): line-OR summary per line, per-slot
  /// spin only where the line is non-empty. Shared by both layouts.
  bool drain_range(std::size_t first, std::size_t limit, std::uint64_t tag,
                   std::uint64_t deadline) {
    for (std::size_t base = first; base < limit; base += kSlotsPerLine) {
      const std::size_t count =
          limit - base < kSlotsPerLine ? limit - base : kSlotsPerLine;
      if (htm::line_or_plain(&slots_[base], count) == 0) continue;
      for (std::size_t s = base; s < base + count; ++s) {
        while (slots_[s].load() == tag) {
          if (deadline != ~std::uint64_t{0} && platform::now() >= deadline) {
            return false;
          }
          platform::pause();
        }
      }
    }
    return true;
  }

  /// Dense index of `tid` within its socket's summary block: with
  /// socket_of(t) = (t / cores_per_socket) % sockets, the socket-s tids
  /// are t = (m*sockets + s)*cps + j (j < cps), and m*cps + j enumerates
  /// them without gaps — so each resident thread owns exactly one summary
  /// word and no two threads ever store to the same one.
  std::size_t local_index(int tid) const noexcept {
    const int cps = cfg_.topology.cores_per_socket;
    if (shards_ <= 1 || cps < 1) return static_cast<std::size_t>(tid);
    return static_cast<std::size_t>(tid / (cps * shards_)) *
               static_cast<std::size_t>(cps) +
           static_cast<std::size_t>(tid % cps);
  }

  htm::Shared<std::uint64_t>& summary_word(int shard, int tid) noexcept {
    return summary_[static_cast<std::size_t>(shard) * summary_stride_ +
                    local_index(tid)];
  }

  Config cfg_;
  int shards_ = 1;
  std::size_t shard_slots_ = 0;   // logical slots per shard
  std::size_t shard_stride_ = 0;  // line-rounded slots_ indices per shard
  std::size_t summary_stride_ = 0;  // line-rounded summary words per shard
  aligned_vector<htm::Shared<std::uint64_t>> slots_;
  aligned_vector<htm::Shared<std::uint64_t>> summary_;  // sharded only
  // Per-thread registration state (sharded only): each entry touched only
  // by its own thread, so plain fields suffice; uncharged bookkeeping.
  struct ThreadState {
    std::uint32_t depth = 0;               // nested registrations live now
    std::uint32_t outermost_releases = 0;  // clears fire every period-th
    bool published = false;                // mirror of this thread's word
  };
  std::vector<ThreadState> priv_;
  std::atomic<std::uint32_t> next_lock_id_{0};
};

}  // namespace sprwl::bravo
