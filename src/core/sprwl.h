// SpRWL — Speculative Read-Write Lock (the paper's core contribution).
//
// Writers execute their critical sections as hardware transactions and, at
// commit time, check for active readers, self-aborting if any is found
// (base algorithm, Section 3.1 / Alg. 1). Readers execute completely
// *uninstrumented*: they advertise a per-thread flag with a fence, run
// plain code, and clear the flag — so they are immune to every HTM
// limitation (capacity, syscalls, interrupts). Safety follows from HTM's
// atomic publish plus strong isolation on the reader flags (Figs. 1-2 of
// the paper; emulated faithfully by htm::Engine, see DESIGN.md).
//
// On top of the base algorithm this implementation provides everything the
// paper describes, each independently switchable through Config:
//
//  * reader synchronization (Alg. 2): readers wait for the active writer
//    expected to finish last, and join already-waiting readers so their
//    start times align (Config::reader_sync / reader_join);
//  * writer synchronization (Alg. 3): a writer aborted by a reader delays
//    its retry so its commit lands δ cycles after the last active reader
//    ends (Config::writer_sync, delta_fraction);
//  * reader-HTM-first (§3.4): readers optimistically try one-shot HTM and
//    fall back to the uninstrumented path on capacity/exhaustion;
//  * SNZI reader tracking (§3.4): writers check one root word instead of
//    scanning the O(threads) state array (Config::use_snzi);
//  * timed waits on the timestamp counter instead of spinning (§3.4);
//  * the versioned-SGL reader-starvation fix sketched in §3.3
//    (Config::versioned_sgl, off by default as in the paper);
//  * BRAVO-style global reader bias (Config::bravo_bias, DESIGN.md §12):
//    readers under a biased lock publish into a process-global
//    bravo::ReaderTable and skip the per-lock flag plane entirely;
//    writers revoke the bias and drain the table before using the
//    per-lock scan. Combined with the lazily allocated tracking plane
//    below, a cold lock costs O(1) words — the property the million-lock
//    lock-table workload (workloads/lock_table.h) depends on.
//
// Per-lock tracking state (flag plane, SNZI tree, scheduling clocks, EMAs,
// stats) lives in a lazily allocated Plane: it is built on the first
// operation that needs it and never for locks that only ever see bias-path
// or HTM-path readers. Plane construction charges no virtual time and
// engine line ids are assigned on first *access*, so lazy allocation is
// invisible to the cost model — runs are bit-identical with eager
// allocation.
//
// Duration estimates use a per-critical-section-id exponential moving
// average sampled on a single thread (§3.2.1); critical sections are
// identified by the integer cs_id passed to read()/write().
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/aligned.h"
#include "common/cacheline.h"
#include "common/ema.h"
#include "common/platform.h"
#include "common/scope_exit.h"
#include "common/trace.h"
#include "core/bravo.h"
#include "fault/fault.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "locks/deadline.h"
#include "locks/sgl.h"
#include "locks/stats.h"
#include "sim/topology.h"
#include "snzi/snzi.h"

namespace sprwl::core {

/// Named scheduling configurations matching the ablation of Fig. 5.
enum class SchedulingVariant {
  kNoSched,  ///< base algorithm only (Section 3.1)
  kRWait,    ///< readers wait for the last active writer
  kRSync,    ///< RWait + readers join already-waiting readers
  kFull,     ///< RSync + writer synchronization (the default SpRWL)
};

struct Config {
  int max_threads = 64;
  /// HTM attempts for writers before the SGL fallback (capacity aborts
  /// activate the fallback immediately, as in the paper's retry policy).
  int max_retries = 10;
  /// HTM attempts for the optimistic reader path.
  int reader_htm_retries = 10;
  bool reader_sync = true;
  bool reader_join = true;
  bool writer_sync = true;
  bool reader_htm_first = true;
  bool use_snzi = false;
  /// Self-tuning reader tracking (the paper's Section 5 future work):
  /// readers register through per-thread flags while the sampled reader
  /// duration is short and through SNZI once it exceeds
  /// adaptive_threshold_cycles, with a drain-based two-phase transition so
  /// writers always observe every active reader. Overrides use_snzi.
  bool adaptive_tracking = false;
  std::uint64_t adaptive_threshold_cycles = 20'000;
  bool versioned_sgl = false;
  /// Commit-time reader scan granularity (non-SNZI path): batched reads the
  /// 64-byte-aligned state array one cache line (8 flags) at a time with an
  /// OR-summary early exit, so a writer's commit check costs ceil(T/8)
  /// transactional line reads instead of T word reads. Conflict detection
  /// is line-granular either way, so the strong-isolation store/abort
  /// contract is unchanged; false restores the linear per-word scan (the
  /// ablation baseline in bench/ablation_cost_model).
  bool batched_reader_scan = true;
  /// δ as a fraction of the writer's expected duration (paper default 1/2).
  double delta_fraction = 0.5;
  double ema_alpha = 0.125;
  /// Thread that samples critical-section durations (§3.2.1).
  int sampler_tid = 0;
  /// SNZI tree depth; 0 = auto-size so there are roughly max_threads/2
  /// leaves (bounded contention per leaf, logarithmic update cost).
  int snzi_levels = 0;
  /// Topology-aware hierarchical reader tracking (DESIGN.md §11): shard the
  /// flags plane per socket. Readers keep their per-thread flag but the
  /// flag slots are laid out socket-major with per-socket line padding (a
  /// reader's flag store only ever touches a socket-local line), and each
  /// socket additionally maintains a one-word reader count on its own cache
  /// line. The writer's commit-time scan then transactionally reads the S
  /// socket summaries instead of ceil(T/8) flag lines — a smaller
  /// transactional read set AND fewer cross-socket line pulls per commit
  /// attempt. Any reader arrival still bumps a subscribed summary line, so
  /// the scan aborts on exactly the same interleavings as the flat layouts
  /// (the safety argument is unchanged; the checker registers this as the
  /// "SpRWL-sharded" variant). When use_snzi is also set the SNZI tree goes
  /// socket-major instead (snzi::Snzi::Config). Off = today's flat layouts.
  bool socket_sharded_tracking = false;
  /// The machine shape the sharding follows (socket-major dense tids, like
  /// sim::SimConfig::topology). The 1-socket default degenerates to one
  /// shard: a single summary word in front of the flat flags.
  sim::Topology topology{};
  /// RSync-aligned reader batching (DESIGN.md §16): the reader-scheduling
  /// scans visit per-socket state first and descend into a socket's flag
  /// shard only when that socket can matter. writer_wait (Alg. 3) reads
  /// each socket's one-word reader count and skips sockets whose count is
  /// 0 — an idle remote socket costs one line read instead of
  /// cores_per_socket flag reads. readers_wait (Alg. 2) reads each shard
  /// line with one OR-summary load and scans per-word only where the OR
  /// carries a writer bit (the reader-count summary cannot gate it:
  /// writers advertise flags but are deliberately invisible to the reader
  /// counts). Scheduling heuristics only — the waits target the same
  /// writer/reader either way; the commit-time safety scan is unchanged.
  /// Requires socket_sharded_tracking (the summaries and the socket-major
  /// flag layout are what it batches over).
  bool socket_batched_rsync = false;
  /// Expected duration, in cycles, used before the first sample arrives.
  std::uint64_t bootstrap_estimate = 500;

  // --- BRAVO global reader bias (DESIGN.md §12) ---------------------------
  /// Route readers through the process-global bravo_table while this lock's
  /// bias is on: the reader CASes its hashed slot there and never touches
  /// the per-lock flag plane. Writers revoke the bias (kBiasRevoking →
  /// table drain → kBiasOff) before attempting, and their commit scan
  /// transactionally subscribes the bias word, so a concurrent re-bias
  /// aborts them. Requires bravo_table.
  bool bravo_bias = false;
  /// The shared visible-readers table. One table serves every lock of the
  /// workload; locks register for a dense id at construction.
  std::shared_ptr<bravo::ReaderTable> bravo_table;
  /// Consecutive reader-only acquisitions (streak, reset by any writer)
  /// before a reader tries to re-arm a revoked bias.
  int bravo_rebias_reads = 16;
  /// Revocation-cost-proportional inhibition (the BRAVO paper's rule): a
  /// re-bias is additionally suppressed until the bias has been off for
  /// this multiple of the sampled revocation latency.
  double bravo_rebias_cooldown = 8.0;

  // --- MVCC snapshot readers (DESIGN.md §14) ------------------------------
  /// Third acquisition mode: read_snapshot() pins the engine's global
  /// version clock at entry and serves every Shared<T> load inside the
  /// section from that snapshot (current memory when the line is unchanged
  /// since the pin, the retained prior version otherwise). The reader
  /// registers NOTHING — no flag plane, no SNZI arrival, no bravo slot —
  /// so writers' commit-time scans and the deferral heuristics never
  /// observe snapshot readers and writer latency is independent of how
  /// long the scan runs. Requires an installed engine with
  /// EngineConfig::retain_versions > 0; without one (or with this flag
  /// off) read_snapshot() degrades to a plain read().
  bool snapshot_readers = false;

  // --- graceful degradation under adverse schedules (DESIGN.md §8) --------
  /// Exponential backoff between retries after conflict/spurious aborts
  /// (abort storms): first delay, doubling up to the cap. Reader aborts use
  /// writer_wait (Alg. 3) instead; lock-busy aborts wait for the SGL.
  /// base = 0 disables backoff.
  std::uint64_t backoff_base_cycles = 120;
  std::uint64_t backoff_max_cycles = 8'192;
  /// Total virtual time a writer may spend retrying HTM (attempts, waits
  /// and backoffs) before escalating to the SGL. 0 = unbounded. Far above
  /// any healthy retry sequence; bounds pathological abort storms.
  std::uint64_t writer_retry_budget_cycles = 8'000'000;
  /// Stalled-reader watchdog: a writer continuously aborted by readers for
  /// longer than max(slack, multiplier * sampled reader EMA) stops burning
  /// transactions and escalates to the (versioned) SGL — the reader is
  /// presumed descheduled with its flag raised. multiplier <= 0 disables.
  double reader_stall_multiplier = 16.0;
  std::uint64_t reader_stall_slack_cycles = 64'000;
  /// Lemming-effect avoidance: aborts caused purely by the busy fallback
  /// lock do not consume retry attempts, so one writer on the SGL cannot
  /// cascade the whole writer population onto it.
  bool lemming_avoidance = true;

  /// Checker self-validation ONLY (tests/check): when >= 0, the writer's
  /// commit-time reader scan falls back to the per-word loop and skips this
  /// tid in addition to the writer's own — a deliberately broken scan that
  /// lets a writer commit over a live reader. The systematic checker must
  /// catch the resulting atomicity violation; never set in production.
  int broken_scan_skip_tid = -1;
  /// Checker self-validation ONLY: the bravo revocation drain ignores the
  /// global table's last slot, so a fast-path reader parked there survives
  /// revocation and a writer can commit over it. Never set in production.
  bool broken_revoke_skip_last_slot = false;
  /// Checker self-validation ONLY: a timed fast-path reader that expires
  /// after occupying its bravo slot "forgets" to release it — the leaked
  /// slot makes every later revocation drain spin forever, which the
  /// checker must report as livelock. Never set in production.
  bool broken_timeout_skip_slot_release = false;
  /// Checker self-validation ONLY (socket-sharded bravo tables): the
  /// revocation drain skips this shard entirely — summary and slots — so a
  /// fast-path reader registered on that (remote) socket survives
  /// revocation and a writer can commit over it. The systematic checker
  /// must catch the resulting atomicity violation. -1 = off; never set in
  /// production.
  int broken_revoke_skip_shard = -1;

  static Config variant(SchedulingVariant v, int max_threads) {
    Config c;
    c.max_threads = max_threads;
    switch (v) {
      case SchedulingVariant::kNoSched:
        c.reader_sync = c.reader_join = c.writer_sync = false;
        break;
      case SchedulingVariant::kRWait:
        c.reader_join = c.writer_sync = false;
        break;
      case SchedulingVariant::kRSync:
        c.writer_sync = false;
        break;
      case SchedulingVariant::kFull:
        break;
    }
    return c;
  }
};

class SpRWLock {
 public:
  /// Explicit-abort codes (Intel _xabort-style).
  static constexpr std::uint8_t kCodeLockBusy = 0x01;
  static constexpr std::uint8_t kCodeReader = 0x02;

  explicit SpRWLock(Config cfg)
      : cfg_(std::move(cfg)),
        sharded_(cfg_.socket_sharded_tracking),
        sockets_(sharded_ ? std::max(cfg_.topology.sockets, 1) : 1),
        socket_stride_(sharded_ ? round_to_line(slots_per_socket(cfg_))
                                : static_cast<std::size_t>(cfg_.max_threads)) {
    if (sharded_ && sockets_ > 1 &&
        (cfg_.topology.cores_per_socket <= 0 ||
         sockets_ * cfg_.topology.cores_per_socket < cfg_.max_threads)) {
      // An undersized topology would wrap two tids onto one flag slot.
      throw std::invalid_argument(
          "SpRWLock: socket_sharded_tracking needs sockets * "
          "cores_per_socket >= max_threads (see sim::Topology::split)");
    }
    if (cfg_.socket_batched_rsync && !cfg_.socket_sharded_tracking) {
      throw std::invalid_argument(
          "SpRWLock: Config::socket_batched_rsync requires "
          "socket_sharded_tracking (it batches over the socket-major "
          "flag shards and their summaries)");
    }
    if (cfg_.adaptive_tracking) cfg_.use_snzi = false;  // mode_ decides
    if (cfg_.bravo_bias) {
      if (cfg_.bravo_table == nullptr) {
        throw std::invalid_argument(
            "SpRWLock: Config::bravo_bias requires a shared "
            "Config::bravo_table");
      }
      lock_id_ = cfg_.bravo_table->register_lock();
      bias_.raw_store(kBiasOn);  // read-only cold locks never build a plane
      if (cfg_.bravo_table->sharded()) {
        // Per-shard revocation telemetry (DESIGN.md §16): EMA and cooldown
        // anchor per table shard, so a saturated remote socket throttles
        // only its own readers' re-bias, not the whole process. One lazily
        // allocated block behind one pointer: only sharded-bravo locks
        // pay, and a cold lock's shell carries a single null word for the
        // million-lock footprint bench. The scratch member is the drain's
        // per-shard cycle scratch — safe unsynchronized because the
        // kBiasOn→kBiasRevoking CAS admits one drainer per lock at a time.
        shard_revoke_ = std::make_unique<ShardRevoke[]>(
            static_cast<std::size_t>(cfg_.bravo_table->shard_count()));
      }
    }
  }

  ~SpRWLock() { delete plane_.load(std::memory_order_acquire); }
  SpRWLock(const SpRWLock&) = delete;
  SpRWLock& operator=(const SpRWLock&) = delete;

  /// Current reader-tracking mode (for tests and introspection):
  /// true = SNZI, false = per-thread flags.
  bool tracking_with_snzi() const {
    const Plane* p = plane_peek();
    return p != nullptr ? p->mode_.raw_load() == kModeSnzi : cfg_.use_snzi;
  }
  bool tracking_transition_active() const {
    const Plane* p = plane_peek();
    return p != nullptr && p->transition_.raw_load() != 0;
  }

  /// Leaf count of the SNZI tree, if one exists (tests pin the auto-sizing
  /// here); 0 when tracking is flags-only. Forces the lazy plane: callers
  /// asking about tree geometry want the tree the lock *would* use.
  std::size_t snzi_leaf_count() {
    if (!cfg_.use_snzi && !cfg_.adaptive_tracking) return 0;
    Plane& p = plane();
    return p.snzi_ != nullptr ? p.snzi_->leaf_count() : 0;
  }

  /// Virtual cycles spent in commit-time reader scans that ran to
  /// completion without finding a reader (an abort unwinds before the
  /// sample is taken), and how many such scans there were. The NUMA bench
  /// divides them to show the sharded scan's smaller read set.
  std::uint64_t commit_scan_cycles() const {
    const Plane* p = plane_peek();
    if (p == nullptr) return 0;
    std::uint64_t n = 0;
    for (const auto& s : p->scan_stats_) n += s.value.cycles;
    return n;
  }
  std::uint64_t commit_scan_count() const {
    const Plane* p = plane_peek();
    if (p == nullptr) return 0;
    std::uint64_t n = 0;
    for (const auto& s : p->scan_stats_) n += s.value.scans;
    return n;
  }

  /// Executes f as a read-only critical section identified by cs_id.
  template <class F>
  void read(int cs_id, F&& f) {
    read_impl(cs_id, locks::kNoDeadline, std::forward<F>(f));
  }

  /// read() bounded by a relative virtual-time budget (cycles). Returns
  /// kTimeout — with every advertisement unwound (flag/SNZI/slot/waiting
  /// version) — if the lock cannot be entered before the deadline. A zero
  /// or clock-wrapping budget throws std::invalid_argument at entry.
  template <class F>
  locks::AcquireResult try_read_for(int cs_id, std::uint64_t budget_cycles,
                                    F&& f) {
    return read_impl(cs_id, locks::checked_deadline(budget_cycles),
                     std::forward<F>(f));
  }

  /// write() bounded by a relative virtual-time budget (cycles). Once the
  /// section body has committed (HTM) or the SGL is held (point of no
  /// return), the operation completes even if the deadline passes
  /// mid-section; kTimeout is only returned from pre-entry waits, with the
  /// writer flag cleared and any partial bias revocation re-armed.
  template <class F>
  locks::AcquireResult try_write_for(int cs_id, std::uint64_t budget_cycles,
                                     F&& f) {
    return write_impl(cs_id, locks::checked_deadline(budget_cycles),
                      std::forward<F>(f));
  }

  /// Executes f as a *snapshot* read section (Config::snapshot_readers,
  /// DESIGN.md §14): pins the engine's version clock at entry and routes
  /// every Shared<T> load inside f through the multi-version lookup, so f
  /// observes the committed state as of the pin no matter how long it
  /// runs — and registers nothing a writer could wait on. f must be
  /// read-only and re-runnable: when the pinned version leaves the bounded
  /// version ring mid-section (htm::SnapshotMiss) the section re-runs as a
  /// normal registered read, the same re-execution contract the HTM-first
  /// reader path already imposes.
  template <class F>
  void read_snapshot(int cs_id, F&& f) {
    htm::Engine* engine = htm::Engine::current();
    if (!cfg_.snapshot_readers || engine == nullptr ||
        !engine->retains_versions()) {
      read(cs_id, std::forward<F>(f));
      return;
    }
    checked_tid();  // loud entry validation, like every other entry point
    for (;;) {
      // Pin only while the SGL is observed free and unchanged across the
      // pin. An SGL-fallback writer publishes each store of its section
      // with its own write version, so a snapshot pinned mid-fallback
      // could observe a torn prefix of that section; HTM writers are
      // immune (one commit publishes one version). Same state on both
      // sides of the pin ⇒ no acquisition happened in between (lock and
      // unlock each bump the word), so the pin cannot straddle one. The
      // re-check must NOT go through Shared::load — the thread is pinned
      // by then and the lookup would serve the word as of the pin,
      // validating unconditionally — so it reads raw and charges the load
      // explicitly.
      const std::uint64_t s0 = gl_.state();
      if ((s0 & 1) == 0) {
        engine->snapshot_begin();
        platform::advance(g_costs.load);
        if (gl_.state_raw() == s0) break;
        engine->snapshot_end();
      }
      platform::pause();
    }
    bool missed = false;
    {
      // The unpin lives in a ScopeExit so every unwind path — SnapshotMiss,
      // an exception out of f, the chaos harness's RunCancelled — releases
      // the reclamation pin; a leaked pin silently wedges version
      // reclamation for the rest of the run.
      ScopeExit unpin([&] { engine->snapshot_end(); });
      fault::checkpoint(fault::InjectPoint::kReadEnter, this);
      try {
        f();
        fault::checkpoint(fault::InjectPoint::kReadExit, this);
      } catch (const htm::SnapshotMiss&) {
        missed = true;
      }
    }
    if (!missed) {
      snapshot_reads_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // The ring reclaimed a version this snapshot still needed (long
    // section + small retain_versions). Fall back to a registered read —
    // correct, just no longer invisible to writers.
    snapshot_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    read_impl(cs_id, locks::kNoDeadline, std::forward<F>(f));
  }

 private:
  template <class F>
  locks::AcquireResult read_impl(int cs_id, std::uint64_t deadline, F&& f) {
    const int tid = checked_tid();

    if (cfg_.bravo_bias) {
      switch (try_bias_read(tid, deadline, f)) {
        case BiasRead::kDone: return locks::AcquireResult::kAcquired;
        case BiasRead::kTimeout:
          trace::emit(trace::Event::kReadTimeout);
          return locks::AcquireResult::kTimeout;
        case BiasRead::kSlow: break;
      }
    }

    if (cfg_.reader_htm_first && try_reader_htm(f)) {
      trace::emit(trace::Event::kReadHtmCommit);
      htm_reads_.fetch_add(1, std::memory_order_relaxed);
      if (cfg_.bravo_bias) maybe_rebias(tid);
      return locks::AcquireResult::kAcquired;
    }

    // Uninstrumented path.
    Plane& p = plane();
    bool have_pass = false;       // versioned-SGL bypass (§3.3)
    std::uint64_t pass_below = 0;
    std::uint64_t track_mode = kModeFlags;
    for (;;) {
      // Between iterations nothing is advertised, so expiry needs no
      // unwind here (waiting_ver_ is cleared before each defer exit).
      if (locks::deadline_expired(deadline)) {
        trace::emit(trace::Event::kReadTimeout);
        return locks::AcquireResult::kTimeout;
      }
      if (cfg_.reader_sync && !have_pass) {
        if (!readers_wait(p, tid, deadline)) {
          trace::emit(trace::Event::kReadTimeout);
          return locks::AcquireResult::kTimeout;
        }
      }
      if (cfg_.writer_sync) {
        p.clock_r_[static_cast<std::size_t>(tid)]->store(
            platform::now() + read_estimate(p, cs_id),
            std::memory_order_relaxed);
      }
      track_mode = advertise_reader(p, tid);
      if (cfg_.versioned_sgl) {
        p.waiting_ver_[static_cast<std::size_t>(tid)]->store(
            0, std::memory_order_release);
      }
      if (!gl_.is_locked()) break;
      if (have_pass && gl_.version() > pass_below) break;  // reader priority
      // Defer to the SGL holder (Alg. 1, reader_gl_sync).
      trace::emit(trace::Event::kReaderDeferSgl);
      unadvertise_reader(p, tid, track_mode);
      if (cfg_.versioned_sgl) {
        const std::uint64_t v0 = gl_.version();
        p.waiting_ver_[static_cast<std::size_t>(tid)]->store(
            (v0 << 1) | 1, std::memory_order_seq_cst);
        while (gl_.is_locked() && gl_.version() <= v0) {
          if (locks::deadline_expired(deadline)) {
            // Retract the published waiting version before abandoning or a
            // versioned-SGL writer's drain spins on a phantom waiter.
            p.waiting_ver_[static_cast<std::size_t>(tid)]->store(
                0, std::memory_order_release);
            trace::emit(trace::Event::kReadTimeout);
            return locks::AcquireResult::kTimeout;
          }
          locks::deadline_pause(deadline);
        }
        have_pass = true;
        pass_below = v0;
      } else {
        while (gl_.is_locked()) {
          if (locks::deadline_expired(deadline)) {
            trace::emit(trace::Event::kReadTimeout);
            return locks::AcquireResult::kTimeout;
          }
          locks::deadline_pause(deadline);
        }
      }
    }

    // Dangerous window: the flag is raised but the section has not run yet.
    // A preemption injected here is what the stalled-reader watchdog and
    // the chaos harness exercise. The flag is the point of no return for a
    // timed reader: it is advertised, so the section runs even if the
    // deadline passes during the preemption (unwinding here would buy
    // nothing — the cleanup cost equals the section's own release).
    fault::checkpoint(fault::InjectPoint::kReadEnter, this);
    trace::emit(trace::Event::kReadUninsEnter);
    const std::uint64_t cs_start = platform::now();
    {
      ScopeExit release([&] {
        htm::memory_fence();  // reads must complete before the flag clears
        unadvertise_reader(p, tid, track_mode);
        trace::emit(trace::Event::kReadUninsExit);
      });
      std::forward<F>(f)();
      fault::checkpoint(fault::InjectPoint::kReadExit, this);
    }
    if (tid == cfg_.sampler_tid) {
      p.read_ema_[ema_slot(cs_id)]->record(platform::now() - cs_start);
      read_estimate_hint_.store(p.read_ema_[ema_slot(cs_id)]->estimate(),
                                std::memory_order_relaxed);
      if (cfg_.adaptive_tracking) maybe_adapt(p, cs_id);
    }
    p.modes_.record_read(locks::CommitMode::kUnins);
    if (cfg_.bravo_bias) maybe_rebias(tid);
    return locks::AcquireResult::kAcquired;
  }

 public:

  /// Executes f as an update critical section identified by cs_id.
  template <class F>
  void write(int cs_id, F&& f) {
    write_impl(cs_id, locks::kNoDeadline, std::forward<F>(f));
  }

 private:
  template <class F>
  locks::AcquireResult write_impl(int cs_id, std::uint64_t deadline, F&& f) {
    const int tid = checked_tid();
    htm::Engine* engine = htm::Engine::current();
    assert(engine != nullptr && "SpRWL requires an installed htm::Engine");

    if (cfg_.bravo_bias) {
      reader_streak_.store(0, std::memory_order_relaxed);
    }

    // Advertise through the flag plane only when one exists (or bravo is
    // off, which allocates it here as before): under bravo a cold lock has
    // no plane and therefore no slow-path readers to schedule against —
    // forcing a plane here would defeat the O(1)-word cold footprint.
    const bool flagged =
        cfg_.reader_sync && !(cfg_.bravo_bias && plane_peek() == nullptr);
    Plane* wp = flagged ? &plane() : plane_peek();
    if (flagged) {
      // Advertise the writer and its expected end time (Alg. 2).
      wp->clock_w_[static_cast<std::size_t>(tid)]->store(
          platform::now() + write_estimate(*wp, cs_id),
          std::memory_order_relaxed);
      wp->state_[state_slot(tid)].store(kWriter);
      htm::memory_fence();
    }
    ScopeExit clear_flag([&] {
      if (flagged) wp->state_[state_slot(tid)].store(kIdle);
    });
    fault::checkpoint(fault::InjectPoint::kWriteEnter, this);

    // Escalation to the (versioned) SGL; `why` records which degradation
    // path fired so chaos runs can tell retry exhaustion from a stalled
    // reader or an exhausted budget. Returns false if the deadline expired
    // before the SGL was acquired (the fallback itself is then the last
    // wait a timed writer can abandon — once the SGL is held the write
    // runs to completion).
    const auto escalate = [&](locks::Escalation why, int attempts) -> bool {
      plane().modes_.record_escalation(why);
      trace::emit(why == locks::Escalation::kStalledReader
                      ? trace::Event::kStalledReaderEscalate
                      : trace::Event::kWriteSglEnter,
                  static_cast<std::uint32_t>(attempts));
      if (!fallback_write(cs_id, tid, deadline, f)) return false;
      trace::emit(trace::Event::kWriteSglExit);
      plane().modes_.record_write(locks::CommitMode::kGl);
      return true;
    };
    const auto timed_out = [&]() -> locks::AcquireResult {
      trace::emit(trace::Event::kWriteTimeout);
      return locks::AcquireResult::kTimeout;  // clear_flag unwinds the flag
    };

    int attempts = 0;
    std::uint64_t backoff = 0;       // current exponential delay
    std::uint64_t retry_start = 0;   // first attempt of the current streak
    std::uint64_t stall_since = 0;   // first reader abort of the streak
    bool retrying = false;
    bool stalled = false;
    for (;;) {
      if (locks::deadline_expired(deadline)) return timed_out();
      while (gl_.is_locked()) {
        if (locks::deadline_expired(deadline)) return timed_out();
        locks::deadline_pause(deadline);
      }
      // Revoke the bias before every attempt: the drain guarantees no
      // fast-path reader is live, and the in-transaction bias subscription
      // below catches any re-bias that slips in after it (DESIGN.md §12).
      // A drain abandoned on deadline re-arms the bias (see revoke_bias).
      if (cfg_.bravo_bias && !revoke_bias(deadline)) return timed_out();
      ++attempts;
      const std::uint64_t attempt_start = platform::now();
      if (!retrying) {
        retrying = true;
        retry_start = attempt_start;
      }
      const htm::TxStatus status = engine->try_transaction([&] {
        if (gl_.is_locked()) engine->abort_tx(kCodeLockBusy);  // subscription
        f();
        check_for_readers(engine, tid);
      });
      if (status.committed()) {
        // Pin the data commit's version before clear_flag's kIdle publish
        // overwrites last_commit_version() (the SI checker needs the
        // version that stamped the section's lines, not the metadata's).
        engine->note_section_version();
        if (tid == cfg_.sampler_tid) {
          if (Plane* p = plane_peek()) {
            p->write_ema_[ema_slot(cs_id)]->record(platform::now() -
                                                   attempt_start);
          }
        }
        trace::emit(trace::Event::kWriteHtmCommit,
                    static_cast<std::uint32_t>(attempts));
        // Inline counter (like htm_reads_): recording through the plane's
        // per-thread ModeRecorder would allocate the plane for a lock whose
        // only traffic is HTM commits — exactly the cold case the lazy
        // plane exists for. stats() merges the counters, so totals match.
        htm_writes_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      plane().modes_.record_abort(status, kCodeLockBusy, kCodeReader);
      const bool lock_busy = status.cause == htm::AbortCause::kExplicit &&
                             status.code == kCodeLockBusy;
      const bool reader_abort = status.cause == htm::AbortCause::kExplicit &&
                                status.code == kCodeReader;
      if (reader_abort) {
        if (Plane* p = plane_peek()) {
          ++p->reader_aborts_[static_cast<std::size_t>(tid)].value;
        } else {
          cold_reader_aborts_.fetch_add(1, std::memory_order_relaxed);
        }
        trace::emit(trace::Event::kWriteAbortReader);
      }
      if (status.cause == htm::AbortCause::kCapacity) {
        // Retrying cannot help a section that does not fit; fall back now.
        if (!escalate(locks::Escalation::kCapacity, attempts)) {
          return timed_out();
        }
        break;
      }
      if (lock_busy && cfg_.lemming_avoidance) {
        // The abort says nothing about *this* section — the fallback lock
        // was simply held. Forgive the attempt (and restart the budget
        // clock: waiting for the SGL is not retrying) so one SGL writer
        // does not drag the whole population onto the global lock.
        --attempts;
        retrying = false;
        stalled = false;
        plane().modes_.record_escalation(locks::Escalation::kLemmingAvoided);
        trace::emit(trace::Event::kLemmingAvoided);
        continue;
      }
      if (attempts >= cfg_.max_retries) {
        if (!escalate(locks::Escalation::kRetryExhausted, attempts)) {
          return timed_out();
        }
        break;
      }
      const std::uint64_t now = platform::now();
      if (cfg_.writer_retry_budget_cycles != 0 &&
          now - retry_start > cfg_.writer_retry_budget_cycles) {
        if (!escalate(locks::Escalation::kBudgetExhausted, attempts)) {
          return timed_out();
        }
        break;
      }
      if (reader_abort) {
        if (!stalled) {
          stalled = true;
          stall_since = attempt_start;
        }
        const std::uint64_t threshold = stall_threshold();
        if (threshold != 0 && now - stall_since > threshold) {
          // The reader blocking us has been active far longer than readers
          // ever run: presume it descheduled with its flag raised and stop
          // burning transactions against it.
          if (!escalate(locks::Escalation::kStalledReader, attempts)) {
            return timed_out();
          }
          break;
        }
        if (cfg_.writer_sync) {
          trace::emit(trace::Event::kWriterWait);
          writer_wait(cs_id, tid, deadline);
        }
      } else {
        stalled = false;
        // Conflict or interrupt: back off exponentially so an abort storm
        // degrades throughput instead of melting it.
        if (cfg_.backoff_base_cycles != 0) {
          backoff = backoff == 0
                        ? cfg_.backoff_base_cycles
                        : std::min<std::uint64_t>(backoff * 2,
                                                  cfg_.backoff_max_cycles);
          trace::emit(trace::Event::kWriterBackoff,
                      static_cast<std::uint32_t>(backoff));
          const std::uint64_t target =
              locks::cap_wait(now + backoff, deadline);
          if (target > platform::now()) platform::wait_until(target);
        }
      }
    }
    fault::checkpoint(fault::InjectPoint::kWriteExit, this);
    return locks::AcquireResult::kAcquired;
  }

 public:

  locks::LockStats stats() const {
    locks::LockStats s;
    if (const Plane* p = plane_peek()) s = p->modes_.snapshot();
    s.reads.htm += htm_reads_.load(std::memory_order_relaxed);
    s.reads.unins += bias_reads_.load(std::memory_order_relaxed);
    s.writes.htm += htm_writes_.load(std::memory_order_relaxed);
    return s;
  }

  /// Writer aborts caused by an active reader (the paper's "reader" abort
  /// class, reported separately from other explicit aborts).
  std::uint64_t reader_abort_count() const {
    std::uint64_t n = cold_reader_aborts_.load(std::memory_order_relaxed);
    if (const Plane* p = plane_peek()) {
      for (const auto& c : p->reader_aborts_) n += c.value;
    }
    return n;
  }

  void reset_stats() {
    if (Plane* p = plane_.load(std::memory_order_acquire)) {
      p->modes_.reset();
      for (auto& c : p->reader_aborts_) c.value = 0;
      for (auto& s : p->scan_stats_) s.value = {};
    }
    htm_reads_.store(0, std::memory_order_relaxed);
    htm_writes_.store(0, std::memory_order_relaxed);
    bias_reads_.store(0, std::memory_order_relaxed);
    snapshot_reads_.store(0, std::memory_order_relaxed);
    snapshot_fallbacks_.store(0, std::memory_order_relaxed);
    cold_reader_aborts_.store(0, std::memory_order_relaxed);
    revocations_.store(0, std::memory_order_relaxed);
    revoke_cycles_.store(0, std::memory_order_relaxed);
    rebias_count_.store(0, std::memory_order_relaxed);
  }

  // --- BRAVO introspection (tests and the lock-table bench) ---------------

  /// Raw view of the bias word (no virtual-time charge).
  bool bias_is_on() const { return bias_.raw_load() == kBiasOn; }
  std::uint64_t bias_read_count() const {
    return bias_reads_.load(std::memory_order_relaxed);
  }
  std::uint64_t revocation_count() const {
    return revocations_.load(std::memory_order_relaxed);
  }
  /// Total virtual cycles writers spent in revocation drains.
  std::uint64_t revocation_cycles() const {
    return revoke_cycles_.load(std::memory_order_relaxed);
  }
  std::uint64_t rebias_count() const {
    return rebias_count_.load(std::memory_order_relaxed);
  }
  /// Per-shard revocation-latency EMA (socket-sharded bravo tables only;
  /// 0 = no sample yet, or the table is not sharded). The re-bias cooldown
  /// a reader on `shard`'s socket observes is bravo_rebias_cooldown times
  /// this.
  std::uint64_t shard_revoke_ema(int shard) const {
    if (shard_revoke_ == nullptr || shard < 0 ||
        shard >= cfg_.bravo_table->shard_count()) {
      return 0;
    }
    return shard_revoke_[shard].ema.load(std::memory_order_relaxed);
  }
  /// Snapshot sections that completed against their pinned version.
  std::uint64_t snapshot_read_count() const {
    return snapshot_reads_.load(std::memory_order_relaxed);
  }
  /// Snapshot sections whose pinned version left the bounded ring
  /// (htm::SnapshotMiss) and re-ran as a registered read.
  std::uint64_t snapshot_fallback_count() const {
    return snapshot_fallbacks_.load(std::memory_order_relaxed);
  }
  /// Dense id in the shared reader table (bravo only; 0 otherwise).
  std::uint32_t lock_id() const noexcept { return lock_id_; }
  bool has_plane() const noexcept { return plane_peek() != nullptr; }

  /// Raw (uncharged) view of every per-lock reader-tracking structure at
  /// quiesce: no flag raised, no socket count pending, no SNZI arrival
  /// without its depart. The cancellation-unwind chaos tests assert this
  /// after timed readers raced preemptions and abort storms — a phantom
  /// reader left by an abandoned acquisition shows up here. Bravo table
  /// slots are global state; assert those through ReaderTable directly.
  bool tracking_quiescent() const {
    const Plane* p = plane_peek();
    if (p == nullptr) return true;
    if (p->snzi_ != nullptr && p->snzi_->root_count_raw() != 0) return false;
    for (const auto& s : p->state_) {
      if (s.raw_load() == kReader) return false;
    }
    for (const auto& c : p->socket_count_) {
      if (c.raw_load() != 0) return false;
    }
    return true;
  }

  /// Bytes this lock owns: the O(1)-word shell plus, if some operation
  /// forced it, the lazily allocated tracking plane. The shared bravo
  /// table is *not* included — it amortizes over every registered lock
  /// (workloads report it separately).
  std::size_t footprint_bytes() const {
    std::size_t b = sizeof(*this);
    if (shard_revoke_ != nullptr) {
      b += static_cast<std::size_t>(cfg_.bravo_table->shard_count()) *
           sizeof(ShardRevoke);
    }
    if (const Plane* p = plane_peek()) b += p->bytes();
    return b;
  }

  const Config& config() const noexcept { return cfg_; }
  static const char* name() noexcept { return "SpRWL"; }

 private:
  static constexpr std::uint64_t kIdle = 0;
  static constexpr std::uint64_t kReader = 1;  // bit 0: OR-summary early exit
  static constexpr std::uint64_t kWriter = 2;  // bit 1: invisible to the scan
  /// 8-byte flags per 64-byte cache line (batched commit scan granularity).
  static constexpr std::size_t kFlagsPerLine = 8;
  static constexpr std::uint64_t kModeFlags = 0;
  static constexpr std::uint64_t kModeSnzi = 1;
  static constexpr std::size_t kEmaSlots = 256;
  // Bias word states (DESIGN.md §12). Writers treat anything != kBiasOff as
  // "fast readers may exist": kBiasRevoking keeps a second writer out of
  // the section until the first writer's drain completes and publishes
  // kBiasOff — the two-writer revocation race.
  static constexpr std::uint64_t kBiasOff = 0;
  static constexpr std::uint64_t kBiasOn = 1;
  static constexpr std::uint64_t kBiasRevoking = 2;

  struct ScanStat {
    std::uint64_t cycles = 0;
    std::uint64_t scans = 0;
  };

  /// Everything whose size scales with max_threads (or holds a tree):
  /// reader flags, scheduling clocks, EMAs, SNZI, stats. Built on first
  /// need; cold locks never pay for it. Construction does plain
  /// allocation + raw stores only — no engine access, no virtual time —
  /// and the engine assigns line ids on first *access*, so lazy
  /// allocation is bit-identical to eager allocation.
  struct Plane {
    Plane(const Config& cfg, bool sharded, int sockets, std::size_t stride)
        : state_(sharded ? static_cast<std::size_t>(sockets) * stride
                         : static_cast<std::size_t>(cfg.max_threads)),
          socket_count_(sharded
                            ? static_cast<std::size_t>(sockets) * kFlagsPerLine
                            : 0),
          clock_w_(static_cast<std::size_t>(cfg.max_threads)),
          clock_r_(static_cast<std::size_t>(cfg.max_threads)),
          waiting_for_(static_cast<std::size_t>(cfg.max_threads)),
          waiting_ver_(static_cast<std::size_t>(cfg.max_threads)),
          reader_aborts_(static_cast<std::size_t>(cfg.max_threads)),
          scan_stats_(static_cast<std::size_t>(cfg.max_threads)),
          modes_(cfg.max_threads) {
      for (auto& w : waiting_for_) w->store(-1, std::memory_order_relaxed);
      for (auto& e : read_ema_) {
        e = std::make_unique<DurationEma>(cfg.ema_alpha);
      }
      for (auto& e : write_ema_) {
        e = std::make_unique<DurationEma>(cfg.ema_alpha);
      }
      if (cfg.use_snzi || cfg.adaptive_tracking) {
        int levels = cfg.snzi_levels;
        if (levels == 0) {
          levels = 1;
          // The cap follows max_threads (clamped only by the tree's own
          // limit): a hard `levels < 8` clamp here used to silently
          // under-size the tree past 256 threads — 128 leaves for 1024
          // threads, quadrupling per-leaf contention.
          while ((1 << (levels - 1)) * 2 < cfg.max_threads &&
                 levels < snzi::Snzi::kMaxLevels) {
            ++levels;
          }
        }
        snzi::Snzi::Config sc;
        sc.levels = levels;
        if (sharded) {
          // Socket-major leaves: same-socket slots share a contiguous leaf
          // block, so reader arrive/depart traffic stays socket-local.
          sc.sockets = cfg.topology.sockets;
          sc.cores_per_socket = cfg.topology.cores_per_socket;
        }
        snzi_ = std::make_unique<snzi::Snzi>(sc);
      }
      mode_.raw_store(cfg.use_snzi ? kModeSnzi : kModeFlags);
      transition_.raw_store(0);
    }

    /// Heap bytes of the plane (per-lock footprint accounting).
    std::size_t bytes() const {
      std::size_t b = sizeof(Plane);
      b += state_.capacity() * sizeof(htm::Shared<std::uint64_t>);
      b += socket_count_.capacity() * sizeof(htm::Shared<std::uint64_t>);
      b += clock_w_.capacity() *
           sizeof(CacheLinePadded<std::atomic<std::uint64_t>>);
      b += clock_r_.capacity() *
           sizeof(CacheLinePadded<std::atomic<std::uint64_t>>);
      b += waiting_for_.capacity() * sizeof(CacheLinePadded<std::atomic<int>>);
      b += waiting_ver_.capacity() *
           sizeof(CacheLinePadded<std::atomic<std::uint64_t>>);
      b += reader_aborts_.capacity() * sizeof(CacheLinePadded<std::uint64_t>);
      b += scan_stats_.capacity() * sizeof(CacheLinePadded<ScanStat>);
      if (snzi_ != nullptr) b += snzi_->footprint_bytes();
      b += kEmaSlots * 2 * sizeof(DurationEma);
      b += modes_.footprint_bytes();
      return b;
    }

    // Packed like the paper's state[N] array: a writer's commit-time scan
    // touches ~N/8 lines (it must fit HTM capacity), at the price that one
    // reader's flag store invalidates the whole line of 8 flags — the
    // trade-off the SNZI variant (one root word) removes. In sharded mode
    // the slots are laid out socket-major with per-socket line padding (see
    // state_slot) and the scan moves to socket_count_.
    aligned_vector<htm::Shared<std::uint64_t>> state_;
    // Sharded mode: per-socket reader counts, one line (kFlagsPerLine
    // words) per socket, count in word 0. Empty in flat mode.
    aligned_vector<htm::Shared<std::uint64_t>> socket_count_;
    std::vector<CacheLinePadded<std::atomic<std::uint64_t>>> clock_w_;
    std::vector<CacheLinePadded<std::atomic<std::uint64_t>>> clock_r_;
    std::vector<CacheLinePadded<std::atomic<int>>> waiting_for_;
    std::vector<CacheLinePadded<std::atomic<std::uint64_t>>> waiting_ver_;
    std::vector<CacheLinePadded<std::uint64_t>> reader_aborts_;
    std::vector<CacheLinePadded<ScanStat>> scan_stats_;
    std::unique_ptr<snzi::Snzi> snzi_;
    htm::Shared<std::uint64_t> mode_;        ///< current tracking structure
    htm::Shared<std::uint64_t> transition_;  ///< nonzero: writers check both
    std::unique_ptr<DurationEma> read_ema_[kEmaSlots];
    std::unique_ptr<DurationEma> write_ema_[kEmaSlots];
    locks::ModeRecorder modes_;
  };

  static std::size_t ema_slot(int cs_id) noexcept {
    return static_cast<std::size_t>(cs_id) % kEmaSlots;
  }

  static std::size_t round_to_line(std::size_t slots) noexcept {
    return (slots + kFlagsPerLine - 1) / kFlagsPerLine * kFlagsPerLine;
  }

  /// Flag slots one socket's shard needs. A topology without an explicit
  /// cores_per_socket puts every thread on socket 0, so the single shard
  /// must hold them all.
  static std::size_t slots_per_socket(const Config& cfg) noexcept {
    const int cps = cfg.topology.cores_per_socket;
    if (cfg.topology.sockets <= 1 || cps <= 0)
      return static_cast<std::size_t>(cfg.max_threads);
    return static_cast<std::size_t>(cps);
  }

  Plane* plane_peek() const noexcept {
    return plane_.load(std::memory_order_acquire);
  }

  /// The lazily allocated tracking plane; builds it on first call.
  Plane& plane() {
    Plane* p = plane_peek();
    return p != nullptr ? *p : install_plane();
  }

  Plane& install_plane() {
    auto fresh =
        std::make_unique<Plane>(cfg_, sharded_, sockets_, socket_stride_);
    Plane* expected = nullptr;
    if (plane_.compare_exchange_strong(expected, fresh.get(),
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      Plane* p = fresh.release();
      if (cfg_.bravo_bias) {
        // Strong-isolation publish: a writer's commit scan subscribes this
        // word to short-circuit when no plane exists, so the install must
        // bump its line version (and thereby abort such a writer) exactly
        // like a reader flag store would. Never reached inside a
        // transaction: the bravo scan only dereferences the plane *after*
        // reading 1 here. Bravo-off locks never touch the word at all.
        plane_published_.store(1);
      }
      return *p;
    }
    return *expected;  // lost the install race; `fresh` frees itself
  }

  /// Entry-point thread validation: a dense id >= max_threads would index
  /// out of bounds in every per-thread array of this lock, and release
  /// builds used to do exactly that (the assert compiled away). Failing
  /// loudly at section entry turns a mis-sized Config into a diagnosable
  /// error instead of silent corruption.
  int checked_tid() const {
    const int tid = platform::thread_id();
    if (tid < 0 || tid >= cfg_.max_threads) {
      throw std::out_of_range(
          "SpRWLock: thread id " + std::to_string(tid) +
          " outside [0, max_threads=" + std::to_string(cfg_.max_threads) +
          "); raise Config::max_threads or give the thread a dense id "
          "(sim::Simulator / ThreadIdScope)");
    }
    return tid;
  }

  /// Flag-slot index of `tid`. Flat: the dense tid. Sharded: socket-major
  /// with each socket's shard padded to cache-line granularity, so a
  /// reader's flag store never touches another socket's line.
  std::size_t state_slot(int tid) const noexcept {
    if (!sharded_) return static_cast<std::size_t>(tid);
    const int cps = cfg_.topology.cores_per_socket;
    const std::size_t local =
        cps > 0 ? static_cast<std::size_t>(tid % cps) : static_cast<std::size_t>(tid);
    return static_cast<std::size_t>(cfg_.topology.socket_of(tid)) *
               socket_stride_ +
           local;
  }

  /// Index of socket `s`'s summary word (each summary owns a full line).
  std::size_t socket_word(int s) const noexcept {
    return static_cast<std::size_t>(s) * kFlagsPerLine;
  }

  /// Inverse of state_slot: the tid owning a flag slot, or -1 for shard
  /// padding (the batched scheduling scans walk slots line-wise and must
  /// map hits back to threads). Verified against state_slot so the two
  /// can never disagree on a layout corner case.
  int tid_of_slot(std::size_t slot) const noexcept {
    const int s = static_cast<int>(slot / socket_stride_);
    const std::size_t local = slot % socket_stride_;
    const int cps = cfg_.topology.cores_per_socket;
    const int t = sockets_ > 1 && cps > 0
                      ? s * cps + static_cast<int>(local)
                      : static_cast<int>(local);
    return t < cfg_.max_threads && state_slot(t) == slot ? t : -1;
  }

  /// SNZI-style per-socket reader count: the zero/non-zero state of socket
  /// s's readers in one word on socket s's own line. A strong-isolation CAS
  /// loop — the arrival's version bump on this line is what aborts any
  /// writer whose commit scan already subscribed it.
  void socket_count_update(Plane& p, int tid, std::int64_t delta) {
    htm::Shared<std::uint64_t>& c =
        p.socket_count_[socket_word(cfg_.topology.socket_of(tid))];
    for (;;) {
      const std::uint64_t v = c.load();
      if (c.cas(v, v + static_cast<std::uint64_t>(delta))) return;
      platform::pause();
    }
  }

  std::uint64_t read_estimate(Plane& p, int cs_id) const {
    const std::uint64_t e = p.read_ema_[ema_slot(cs_id)]->estimate();
    return e != 0 ? e : cfg_.bootstrap_estimate;
  }
  std::uint64_t write_estimate(Plane& p, int cs_id) const {
    const std::uint64_t e = p.write_ema_[ema_slot(cs_id)]->estimate();
    return e != 0 ? e : cfg_.bootstrap_estimate;
  }

  /// How long a writer tolerates consecutive reader aborts before presuming
  /// the blocking reader is stalled (descheduled with its flag raised).
  /// Derived from the observed reader duration: a healthy reader finishes
  /// within a few EMAs, so waiting `reader_stall_multiplier` times that is
  /// evidence the reader is not running. 0 disables the watchdog.
  std::uint64_t stall_threshold() const {
    if (cfg_.reader_stall_multiplier <= 0.0) return 0;
    const auto scaled = static_cast<std::uint64_t>(
        cfg_.reader_stall_multiplier *
        static_cast<double>(read_estimate_hint_.load(std::memory_order_relaxed)));
    return std::max(cfg_.reader_stall_slack_cycles, scaled);
  }

  // --- BRAVO fast path / revocation / re-bias (DESIGN.md §12) -------------

  /// Outcome of the biased fast path: section ran, deadline expired (slot
  /// already unwound), or "take the slow path" (bias off, slot collision,
  /// or a concurrent revocation/SGL writer won the race).
  enum class BiasRead { kDone, kTimeout, kSlow };

  /// Biased reader fast path: publish (lock, tid) in the global table and
  /// run the section without ever touching the per-lock plane.
  template <class F>
  BiasRead try_bias_read(int tid, std::uint64_t deadline, F&& f) {
    if (bias_.load() != kBiasOn) return BiasRead::kSlow;
    bravo::ReaderTable& table = *cfg_.bravo_table;
    const std::size_t slot = table.slot_of(lock_id_, tid);
    if (!table.occupy(slot, lock_id_, tid)) return BiasRead::kSlow;  // collision
    htm::memory_fence();  // publish the slot before validating bias / SGL
    if (bias_.load() != kBiasOn || gl_.is_locked()) {
      // Dekker with the writer (publish-slot/check-bias vs
      // publish-revoking/scan-slots): losing the race here means the
      // writer's drain may already have passed our line, so back out and
      // register where the writer is looking.
      table.release(slot, tid);
      return BiasRead::kSlow;
    }
    fault::checkpoint(fault::InjectPoint::kReadEnter, this);
    if (locks::deadline_expired(deadline)) {
      // Expired while parked at the checkpoint (the chaos preemption
      // window). The slot is published, so the unwind MUST release it — a
      // leaked slot wedges every later revocation drain. The broken flag
      // skips exactly this release for the checker's self-validation.
      if (!cfg_.broken_timeout_skip_slot_release) table.release(slot, tid);
      return BiasRead::kTimeout;
    }
    trace::emit(trace::Event::kReadBiasEnter);
    {
      ScopeExit release([&] {
        htm::memory_fence();  // reads must complete before the slot clears
        table.release(slot, tid);
        trace::emit(trace::Event::kReadBiasExit);
      });
      f();
      fault::checkpoint(fault::InjectPoint::kReadExit, this);
    }
    bias_reads_.fetch_add(1, std::memory_order_relaxed);
    return BiasRead::kDone;
  }

  /// Writer-side revocation. Three-state protocol: only the writer whose
  /// CAS moves kBiasOn → kBiasRevoking drains the table; every other
  /// writer arriving mid-revocation waits for the kBiasOff publish, so no
  /// writer can enter its section while a fast-path reader might still be
  /// live (the two-writer revocation race). Returns false iff the deadline
  /// expired first; a drain abandoned mid-way re-arms the bias
  /// (kBiasRevoking → kBiasOn, NOT kBiasOff): undrained fast-path readers
  /// may still be live, so publishing kBiasOff would let the next writer
  /// commit over them. The next writer simply revokes from scratch.
  bool revoke_bias(std::uint64_t deadline = locks::kNoDeadline) {
    for (;;) {
      const std::uint64_t b = bias_.load();
      if (b == kBiasOff) return true;
      if (b == kBiasOn && bias_.cas(kBiasOn, kBiasRevoking)) {
        htm::memory_fence();  // order the state change before the scan
        const std::uint64_t t0 = platform::now();
        // The drain writes each shard's cycles into that shard's scratch
        // word, striding over the interleaved {ema, last} telemetry.
        std::uint64_t* cycles =
            shard_revoke_ != nullptr ? &shard_revoke_[0].scratch : nullptr;
        if (!cfg_.bravo_table->wait_for_readers_of(
                lock_id_, cfg_.broken_revoke_skip_last_slot, deadline,
                cfg_.broken_revoke_skip_shard, cycles,
                sizeof(ShardRevoke) / sizeof(std::uint64_t))) {
          bias_.store(kBiasOn);  // re-arm: drain incomplete
          trace::emit(trace::Event::kBiasRevokeAbandoned);
          return false;
        }
        const std::uint64_t dur = platform::now() - t0;
        bias_.store(kBiasOff);  // publish: other writers may proceed
        trace::emit(trace::Event::kBiasRevoke,
                    static_cast<std::uint32_t>(dur));
        revocations_.fetch_add(1, std::memory_order_relaxed);
        revoke_cycles_.fetch_add(dur, std::memory_order_relaxed);
        const std::uint64_t prev =
            revoke_ema_hint_.load(std::memory_order_relaxed);
        revoke_ema_hint_.store(prev == 0 ? dur : prev - prev / 8 + dur / 8,
                               std::memory_order_relaxed);
        last_revoke_end_.store(platform::now(), std::memory_order_relaxed);
        if (cycles != nullptr) {
          // Attribute the drain per shard: a clean remote shard samples ~one
          // line read, a saturated one its full spin — so the cooldown each
          // socket's readers see tracks the cost of revoking *their* shard.
          const std::uint64_t end = platform::now();
          const int n = cfg_.bravo_table->shard_count();
          for (int s = 0; s < n; ++s) {
            ShardRevoke& sr = shard_revoke_[s];
            const std::uint64_t d = sr.scratch;
            const std::uint64_t p = sr.ema.load(std::memory_order_relaxed);
            sr.ema.store(p == 0 ? d : p - p / 8 + d / 8,
                         std::memory_order_relaxed);
            sr.last.store(end, std::memory_order_relaxed);
          }
        }
        return true;
      }
      if (locks::deadline_expired(deadline)) return false;
      // Deadline-keyed pause: expiry mid-drain-wait wakes exactly at the
      // deadline instead of at the next pause boundary past it.
      locks::deadline_pause(deadline);
    }
  }

  /// Reader-side adaptive re-bias: after bravo_rebias_reads consecutive
  /// reader-only acquisitions (writers reset the streak) and once the
  /// revocation-EMA cooldown has passed, re-arm the bias. The decision
  /// peeks raw state (uncharged heuristics); the flip itself is a charged
  /// strong-isolation CAS whose version bump aborts any writer whose
  /// commit scan already subscribed the bias word. With a socket-sharded
  /// table the cooldown consults the *reader's own shard's* revocation EMA
  /// (recorded per shard by revoke_bias): a saturated remote socket whose
  /// drain runs long throttles only its own readers, not this one.
  void maybe_rebias(int tid) {
    const std::uint64_t streak =
        reader_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (streak < static_cast<std::uint64_t>(cfg_.bravo_rebias_reads)) return;
    if (bias_.raw_load() != kBiasOff) return;
    std::uint64_t last, ema;
    if (shard_revoke_ != nullptr) {
      const int sh = cfg_.bravo_table->shard_of_tid(tid);
      last = shard_revoke_[sh].last.load(std::memory_order_relaxed);
      ema = shard_revoke_[sh].ema.load(std::memory_order_relaxed);
    } else {
      last = last_revoke_end_.load(std::memory_order_relaxed);
      ema = revoke_ema_hint_.load(std::memory_order_relaxed);
    }
    if (last != 0 && ema != 0) {
      const auto cool = static_cast<std::uint64_t>(
          cfg_.bravo_rebias_cooldown * static_cast<double>(ema));
      if (platform::now() - last < cool) return;
    }
    if (bias_.cas(kBiasOff, kBiasOn)) {
      reader_streak_.store(0, std::memory_order_relaxed);
      rebias_count_.fetch_add(1, std::memory_order_relaxed);
      trace::emit(trace::Event::kBiasRebias);
    }
  }

  /// §3.4: optimistic one-shot HTM execution of a reader.
  template <class F>
  bool try_reader_htm(F&& f) {
    htm::Engine* engine = htm::Engine::current();
    if (engine == nullptr) return false;
    int attempts = 0;
    for (;;) {
      if (gl_.is_locked()) return false;  // no point speculating
      ++attempts;
      const htm::TxStatus status = engine->try_transaction([&] {
        if (gl_.is_locked()) engine->abort_tx(kCodeLockBusy);
        f();
      });
      if (status.committed()) return true;
      plane().modes_.record_abort(status, kCodeLockBusy, kCodeReader);
      if (status.cause == htm::AbortCause::kCapacity ||
          attempts >= cfg_.reader_htm_retries) {
        return false;
      }
    }
  }

  void register_reader(Plane& p, int tid, std::uint64_t mode) {
    if (mode == kModeSnzi) {
      p.snzi_->arrive(tid);
    } else {
      p.state_[state_slot(tid)].store(kReader);  // strong isolation
      if (sharded_) socket_count_update(p, tid, +1);
    }
    htm::memory_fence();  // flag must be visible before the section's reads
  }

  /// Advertises the reader in the current tracking structure and returns
  /// the mode used (the reader must deregister from the same structure).
  /// Under adaptive tracking the mode is re-checked after registration so
  /// that a reader racing a mode flip can never sit, active, in a
  /// structure the sampler already declared drained.
  std::uint64_t advertise_reader(Plane& p, int tid) {
    std::uint64_t m = cfg_.adaptive_tracking
                          ? p.mode_.load()
                          : (cfg_.use_snzi ? kModeSnzi : kModeFlags);
    for (;;) {
      register_reader(p, tid, m);
      if (!cfg_.adaptive_tracking) return m;
      const std::uint64_t cur = p.mode_.load();
      if (cur == m) return m;
      unadvertise_reader(p, tid, m);
      m = cur;
    }
  }

  void unadvertise_reader(Plane& p, int tid, std::uint64_t mode) {
    if (mode == kModeSnzi) {
      p.snzi_->depart(tid);
    } else {
      p.state_[state_slot(tid)].store(kIdle);
      if (sharded_) socket_count_update(p, tid, -1);
    }
  }

  /// Sampler-side self-tuning (Section 5 future work): flip the tracking
  /// structure when the sampled reader duration crosses the threshold.
  /// Two-phase: transition_ stays set (writers check BOTH structures)
  /// until the old structure is observed drained.
  void maybe_adapt(Plane& p, int cs_id) {
    if (p.transition_.load() != 0) {
      const std::uint64_t old_mode =
          p.mode_.load() == kModeSnzi ? kModeFlags : kModeSnzi;
      if (structure_quiet(p, old_mode)) {
        p.transition_.store(0);
        trace::emit(trace::Event::kModeTransitionDone);
      }
      return;
    }
    const std::uint64_t desired =
        read_estimate(p, cs_id) >= cfg_.adaptive_threshold_cycles ? kModeSnzi
                                                                  : kModeFlags;
    if (desired != p.mode_.load()) {
      p.transition_.store(1);  // ordered before the flip (engine-serialized)
      p.mode_.store(desired);
      trace::emit(desired == kModeSnzi ? trace::Event::kModeFlipToSnzi
                                       : trace::Event::kModeFlipToFlags);
    }
  }

  bool structure_quiet(Plane& p, std::uint64_t mode) const {
    if (mode == kModeSnzi) return p.snzi_->root_count_raw() == 0;
    if (sharded_) {
      for (int s = 0; s < sockets_; ++s) {
        if (p.socket_count_[socket_word(s)].raw_load() != 0) return false;
      }
      return true;
    }
    for (int t = 0; t < cfg_.max_threads; ++t) {
      if (p.state_[static_cast<std::size_t>(t)].raw_load() == kReader) {
        return false;
      }
    }
    return true;
  }

  /// Commit-time reader check, executed inside the writer's transaction.
  /// The wrapper samples the scan's virtual-cycle cost; an abort_tx unwinds
  /// past the sample, so only scans that found no reader are measured.
  void check_for_readers(htm::Engine* engine, int tid) {
    const std::uint64_t scan_start = platform::now();
    check_for_readers_impl(engine, tid);
    if (Plane* p = plane_peek()) {
      auto& s = p->scan_stats_[static_cast<std::size_t>(tid)].value;
      s.cycles += platform::now() - scan_start;
      ++s.scans;
    }
  }

  void check_for_readers_impl(htm::Engine* engine, int tid) {
    if (cfg_.bravo_bias) {
      // Transactional reads — both are *subscriptions*: a re-bias (reader
      // about to take the fast path) or a plane install (first slow-path
      // reader arriving) after this point bumps the word's line version
      // and aborts this writer at validation, so neither kind of reader
      // can hide (DESIGN.md §12).
      if (bias_.load() != kBiasOff) engine->abort_tx(kCodeReader);
      if (plane_published_.load() == 0) return;  // no slow reader ever
    }
    Plane& p = plane();
    bool check_snzi = cfg_.use_snzi;
    bool check_flags = !cfg_.use_snzi;
    if (cfg_.adaptive_tracking) {
      // Transactional reads: the writer subscribes to the mode words, so a
      // transition mid-transaction aborts it rather than hiding a reader.
      const bool in_transition = p.transition_.load() != 0;
      const std::uint64_t m = p.mode_.load();
      check_snzi = in_transition || m == kModeSnzi;
      check_flags = in_transition || m == kModeFlags;
    }
    if (check_snzi && p.snzi_->query()) engine->abort_tx(kCodeReader);
    if (!check_flags) return;
    if (sharded_) {
      // Hierarchical scan: S transactionally-subscribed socket summaries
      // instead of ceil(T/8) flag lines. A reader arriving on any socket
      // bumps its summary line's version (socket_count_update publishes
      // through the engine), which aborts this transaction exactly as a
      // flag store to a subscribed flag line would — the read set got
      // smaller, not the set of interleavings that kill the scan.
      // broken_scan_skip_tid blinds the scan to that tid's whole socket
      // (checker self-validation of the sharded layout; see Config).
      const int skip_socket =
          cfg_.broken_scan_skip_tid >= 0
              ? cfg_.topology.socket_of(cfg_.broken_scan_skip_tid)
              : -1;
      for (int s = 0; s < sockets_; ++s) {
        if (s == skip_socket) continue;
        if (p.socket_count_[socket_word(s)].load() != 0) {
          engine->abort_tx(kCodeReader);
        }
      }
      return;
    }
    if (cfg_.batched_reader_scan && cfg_.broken_scan_skip_tid < 0) {
      // Line-granular scan: state_ is 64-byte aligned, so elements
      // [base, base+8) share one cache line; one OR-summary read covers
      // them all. kReader sets bit 0 and kWriter bit 1, so the writer's own
      // flag (and other writers') never trips the early exit — no tid skip
      // needed. A reader flag published concurrently bumps the line version
      // and aborts this transaction exactly as the per-word scan would.
      const auto n = static_cast<std::size_t>(cfg_.max_threads);
      for (std::size_t base = 0; base < n; base += kFlagsPerLine) {
        const std::size_t count = std::min(kFlagsPerLine, n - base);
        if ((htm::line_or(*engine, &p.state_[base], count) & kReader) != 0) {
          engine->abort_tx(kCodeReader);
        }
      }
      return;
    }
    for (int t = 0; t < cfg_.max_threads; ++t) {
      if (t == tid || t == cfg_.broken_scan_skip_tid) continue;
      if (p.state_[static_cast<std::size_t>(t)].load() == kReader) {
        engine->abort_tx(kCodeReader);
      }
    }
  }

  /// Alg. 2 Readers_Wait: wait for the active writer expected to end last,
  /// or join a reader that is already waiting for one. Returns false iff
  /// the deadline expired mid-wait — with waiting_for_ already reset, so
  /// readers that joined us are unaffected (they copied the *writer's* tid
  /// at join time and wait on that writer, not on us).
  bool readers_wait(Plane& p, int tid, std::uint64_t deadline) {
    int wait_for = -1;
    bool joined = false;
    std::uint64_t max_end = 0;
    if (cfg_.socket_batched_rsync) {
      // Line-batched scan (DESIGN.md §16): one OR-summary load per shard
      // line, per-word state reads only where the OR carries the writer
      // bit — an idle socket costs stride/8 loads instead of
      // cores_per_socket. The join probe (waiting_for_) has no flag the OR
      // could gate, but it is an uncharged plain-atomic load, so the
      // charged cost still drops from max_threads word reads to line
      // reads + flagged writers.
      for (int s = 0; s < sockets_ && !joined; ++s) {
        const std::size_t base0 =
            static_cast<std::size_t>(s) * socket_stride_;
        for (std::size_t base = base0;
             base < base0 + socket_stride_ && !joined;
             base += kFlagsPerLine) {
          const std::size_t count =
              std::min(kFlagsPerLine, base0 + socket_stride_ - base);
          const bool has_writer =
              (htm::line_or_plain(&p.state_[base], count) & kWriter) != 0;
          for (std::size_t sl = base; sl < base + count; ++sl) {
            const int t = tid_of_slot(sl);
            if (t < 0 || t == tid) continue;
            const std::size_t ts = static_cast<std::size_t>(t);
            if (has_writer && state_raw(p, t) == kWriter) {
              const std::uint64_t end =
                  p.clock_w_[ts]->load(std::memory_order_relaxed);
              if (wait_for == -1 || end > max_end) {
                max_end = end;
                wait_for = t;
              }
            } else if (cfg_.reader_join) {
              const int other =
                  p.waiting_for_[ts]->load(std::memory_order_acquire);
              if (other != -1) {
                wait_for = other;  // align our start with that reader's
                joined = true;
                break;
              }
            }
          }
        }
      }
    } else {
      for (int t = 0; t < cfg_.max_threads; ++t) {
        if (t == tid) continue;
        const std::size_t s = static_cast<std::size_t>(t);
        if (state_raw(p, t) == kWriter) {
          const std::uint64_t end =
              p.clock_w_[s]->load(std::memory_order_relaxed);
          if (wait_for == -1 || end > max_end) {
            max_end = end;
            wait_for = t;
          }
        } else if (cfg_.reader_join) {
          const int other = p.waiting_for_[s]->load(std::memory_order_acquire);
          if (other != -1) {
            wait_for = other;  // align our start with that reader's
            joined = true;
            break;
          }
        }
      }
    }
    if (wait_for == -1) return true;
    trace::emit(joined ? trace::Event::kReaderJoin : trace::Event::kReaderWait,
                static_cast<std::uint32_t>(wait_for));
    const std::size_t me = static_cast<std::size_t>(tid);
    p.waiting_for_[me]->store(wait_for, std::memory_order_release);
    // Timed wait up to the writer's expected end (§3.4), then poll.
    const std::uint64_t until = locks::cap_wait(
        p.clock_w_[static_cast<std::size_t>(wait_for)]->load(
            std::memory_order_relaxed),
        deadline);
    if (until > platform::now()) platform::wait_until(until);
    while (state_raw(p, wait_for) == kWriter) {
      if (locks::deadline_expired(deadline)) {
        p.waiting_for_[me]->store(-1, std::memory_order_release);
        return false;
      }
      locks::deadline_pause(deadline);
    }
    p.waiting_for_[me]->store(-1, std::memory_order_release);
    return true;
  }

  /// Alg. 3 writer_wait: delay the retry so the write is expected to end δ
  /// cycles after the last active reader. Without a plane there is no
  /// slow-path reader to wait for (bias readers carry no end-time clock).
  /// The wait target is capped at the deadline; the caller's loop-top
  /// expiry check turns the truncated wait into a timeout.
  void writer_wait(int cs_id, int tid,
                   std::uint64_t deadline = locks::kNoDeadline) {
    Plane* pp = plane_peek();
    if (pp == nullptr) return;
    Plane& p = *pp;
    std::uint64_t last_reader_end = 0;
    if (cfg_.socket_batched_rsync) {
      // Summary-first (DESIGN.md §16): one load per socket's reader count;
      // descend into a socket's flag shard only when it hosts a reader. An
      // idle remote socket costs 1 line read instead of cores_per_socket.
      // The count is exact for what this scan looks for — flag-mode
      // readers are the only things that bump it and the only things that
      // show kReader here (SNZI-mode readers appear in neither).
      for (int s = 0; s < sockets_; ++s) {
        if (p.socket_count_[socket_word(s)].load() == 0) continue;
        for (int t = 0; t < cfg_.max_threads; ++t) {
          if (t == tid || cfg_.topology.socket_of(t) != s) continue;
          if (state_raw(p, t) == kReader) {
            const std::uint64_t end =
                p.clock_r_[static_cast<std::size_t>(t)]->load(
                    std::memory_order_relaxed);
            if (end > last_reader_end) last_reader_end = end;
          }
        }
      }
    } else {
      for (int t = 0; t < cfg_.max_threads; ++t) {
        if (t == tid) continue;
        if (state_raw(p, t) == kReader) {
          const std::uint64_t end =
              p.clock_r_[static_cast<std::size_t>(t)]->load(
                  std::memory_order_relaxed);
          if (end > last_reader_end) last_reader_end = end;
        }
      }
    }
    if (last_reader_end == 0) return;
    const std::uint64_t dur = write_estimate(p, cs_id);
    const std::uint64_t lead =
        dur - static_cast<std::uint64_t>(static_cast<double>(dur) * cfg_.delta_fraction);
    const std::uint64_t target = locks::cap_wait(
        last_reader_end > lead ? last_reader_end - lead : last_reader_end,
        deadline);
    if (target > platform::now()) platform::wait_until(target);
  }

  /// Plain (uncharged beyond one load) view of another thread's state,
  /// used by the scheduling code that runs outside any transaction.
  std::uint64_t state_raw(Plane& p, int t) {
    return p.state_[state_slot(t)].load();
  }

  /// Returns false iff the deadline expired before the SGL was acquired.
  /// Acquiring the SGL is the point of no return: every wait below it
  /// (bias drain, versioned waiter drain, reader drain) terminates because
  /// readers observing the busy SGL defer, so the write always completes
  /// once the lock is held — a timed writer never abandons a partially
  /// drained SGL acquisition.
  template <class F>
  bool fallback_write(int cs_id, int tid, std::uint64_t deadline, F&& f) {
    if (!gl_.lock_until(deadline)) return false;
    // Revoke *under* the SGL: a fast-path reader validates the SGL after
    // publishing its slot, so any reader that slipped past the lock is in
    // the table and this drain waits it out; later readers see the busy
    // SGL and defer (DESIGN.md §12).
    if (cfg_.bravo_bias) revoke_bias();
    if (cfg_.versioned_sgl) {
      if (Plane* pp = plane_peek()) {
        // §3.3: let readers that started waiting before this acquisition in.
        const std::uint64_t my_ver = gl_.version();
        for (int t = 0; t < cfg_.max_threads; ++t) {
          if (t == tid) continue;
          auto& wv = *pp->waiting_ver_[static_cast<std::size_t>(t)];
          for (;;) {
            const std::uint64_t v = wv.load(std::memory_order_acquire);
            if ((v & 1) == 0 || (v >> 1) >= my_ver) break;
            platform::pause();
          }
        }
      }
    }
    wait_for_readers(tid);
    const std::uint64_t start = platform::now();
    {
      ScopeExit release([&] { gl_.unlock(); });
      f();
      // Under the SGL every store of f published with its own version;
      // the last one is the section's commit timestamp. Pin it before the
      // trailing writer-flag clear publishes over it.
      if (htm::Engine* e = htm::Engine::current()) e->note_section_version();
    }
    if (tid == cfg_.sampler_tid) {
      if (Plane* pp = plane_peek()) {
        pp->write_ema_[ema_slot(cs_id)]->record(platform::now() - start);
      }
    }
    return true;
  }

  /// Alg. 1 wait_for_readers: executed while holding the SGL; readers that
  /// find the SGL busy defer, so this drains. No plane = no slow-path
  /// reader ever advertised = nothing to drain (a reader installing the
  /// plane after the peek sees the busy SGL and defers before running).
  void wait_for_readers(int tid) {
    Plane* pp = plane_peek();
    if (pp == nullptr) return;
    Plane& p = *pp;
    if (cfg_.use_snzi || cfg_.adaptive_tracking) {
      while (p.snzi_->query()) platform::pause();
      if (cfg_.use_snzi) return;
    }
    // Sharded mode drains per slot too (state_raw resolves through the
    // shard layout): the socket summaries are for the *transactional*
    // commit scan, where read-set size decides aborts. Here the SGL is
    // held and arriving readers defer with a transient advertise/
    // unadvertise — a count-based drain would keep observing their +1/-1
    // churn and spin long after every section finished, while the per-slot
    // scan passes each slot the moment it clears and never revisits it.
    for (int t = 0; t < cfg_.max_threads; ++t) {
      if (t == tid) continue;
      while (state_raw(p, t) == kReader) platform::pause();
    }
  }

  Config cfg_;
  locks::SglLock gl_;
  // Sharding geometry, resolved once from cfg_ (declared before use).
  // socket_stride_ is the flag-slot count each socket's shard occupies,
  // rounded to line granularity so shards never share a line.
  bool sharded_;
  int sockets_;
  std::size_t socket_stride_;
  // --- BRAVO shell (the O(1)-word cold-lock state) ------------------------
  std::uint32_t lock_id_ = 0;
  htm::Shared<std::uint64_t> bias_;             ///< kBiasOff/On/Revoking
  htm::Shared<std::uint64_t> plane_published_;  ///< 1 once plane_ is set (bravo)
  std::atomic<Plane*> plane_{nullptr};
  std::atomic<std::uint64_t> reader_streak_{0};
  std::atomic<std::uint64_t> last_revoke_end_{0};
  std::atomic<std::uint64_t> revoke_ema_hint_{0};
  // Per-table-shard revocation telemetry (socket-sharded bravo tables
  // only, lazily sized from the table in the ctor; null otherwise so the
  // cold-lock shell pays exactly one extra word). scratch is the
  // revoker's drain scratch — exclusive because kBiasOn→kBiasRevoking
  // admits one drainer per lock at a time; the drain writes it in place
  // via wait_for_readers_of's stride.
  struct ShardRevoke {
    std::atomic<std::uint64_t> ema{0};   // shard's revocation-latency EMA
    std::atomic<std::uint64_t> last{0};  // end of shard's last revocation
    std::uint64_t scratch = 0;           // drain cycles, this revocation
  };
  static_assert(sizeof(ShardRevoke) == 3 * sizeof(std::uint64_t),
                "drain strides over ShardRevoke as raw uint64 words");
  std::unique_ptr<ShardRevoke[]> shard_revoke_;
  std::atomic<std::uint64_t> bias_reads_{0};
  std::atomic<std::uint64_t> snapshot_reads_{0};
  std::atomic<std::uint64_t> snapshot_fallbacks_{0};
  std::atomic<std::uint64_t> htm_reads_{0};
  std::atomic<std::uint64_t> htm_writes_{0};
  std::atomic<std::uint64_t> cold_reader_aborts_{0};
  std::atomic<std::uint64_t> revocations_{0};
  std::atomic<std::uint64_t> revoke_cycles_{0};
  std::atomic<std::uint64_t> rebias_count_{0};
  /// Latest sampled reader-duration EMA, published by the sampler thread for
  /// the stalled-reader watchdog (which runs on *writer* threads).
  std::atomic<std::uint64_t> read_estimate_hint_{0};
};

}  // namespace sprwl::core
