// The hash-map micro-benchmark workload of the paper's sensitivity analysis
// (Section 4.1): a chained hash map protected by a single read-write lock,
// offering lookup / insert / delete. Reader size is controlled by the
// number of lookups per read critical section; chain length (population /
// buckets) controls how much memory one lookup touches and therefore
// whether readers fit HTM capacity.
//
// All mutable shared state lives in htm::Shared cells, so the map works
// identically under transactional writers, SGL writers and uninstrumented
// readers. Nodes come from a pre-allocated pool with per-thread free lists
// and bump regions (no allocator contention between concurrent HTM
// writers, and erased nodes stay valid memory — uninstrumented readers can
// never chase a dangling pointer).
#pragma once

#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/aligned.h"
#include "common/cacheline.h"
#include "common/rng.h"
#include "htm/line_set.h"
#include "htm/shared.h"

namespace sprwl::workloads {

class HashMap {
 public:
  struct Config {
    std::uint32_t buckets = 1024;
    /// Total node pool size; must cover the initial population plus
    /// per-thread headroom for inserts.
    std::uint32_t capacity = 1u << 16;
    int max_threads = 64;
  };

  explicit HashMap(Config cfg)
      : cfg_(cfg),
        heads_(cfg.buckets),
        pool_(cfg.capacity),
        alloc_(static_cast<std::size_t>(cfg.max_threads)) {
    if (cfg.buckets == 0) throw std::invalid_argument("buckets must be > 0");
    for (auto& h : heads_) h.raw_store(kNull);
    for (auto& a : alloc_) a.value.free_head.raw_store(kNull);
    carve_regions(0);  // populate() re-carves what it leaves over
  }

  /// Single-threaded pre-population with `count` distinct keys drawn from
  /// [0, key_space). Remaining pool nodes are split evenly into per-thread
  /// bump regions. Must run before any concurrent use.
  void populate(std::uint64_t count, std::uint64_t key_space, Rng& rng) {
    if (count > cfg_.capacity)
      throw std::invalid_argument("population exceeds pool capacity");
    // Duplicate detection by chain walk is O(count * chain) — it dominated
    // whole-suite wall time at bench scale. A seen-bitmap makes the same
    // accept/reject decision (key present in the map <=> drawn before) in
    // O(1), so the RNG consumption and the resulting map are byte-for-byte
    // unchanged. Bounded fallback keeps huge sparse key spaces working.
    std::vector<char> seen;
    if (key_space <= (1ULL << 26)) seen.assign(key_space, 0);
    std::uint32_t next_node = 0;
    std::uint64_t inserted = 0;
    while (inserted < count) {
      const std::uint64_t key = rng.next_below(key_space);
      if (seen.empty() ? raw_contains(key) : seen[key] != 0) continue;
      if (!seen.empty()) seen[key] = 1;
      const std::uint32_t idx = next_node++;
      Node& n = pool_[idx];
      n.key.raw_store(key);
      n.value.raw_store(key ^ kValueTag);
      const std::uint32_t b = bucket_of(key);
      n.next.raw_store(heads_[b].raw_load());
      heads_[b].raw_store(idx);
      ++inserted;
    }
    carve_regions(next_node);
  }

  /// Read operation; call inside a read critical section.
  bool lookup(std::uint64_t key) const {
    const std::uint32_t b = bucket_of(key);
    std::uint32_t idx = heads_[b].load();
    while (idx != kNull) {
      const Node& n = pool_[idx];
      if (n.key.load() == key) return true;
      idx = n.next.load();
    }
    return false;
  }

  /// Insert; call inside a write critical section. Returns false when the
  /// key already exists (value refreshed) or the caller's pool is empty.
  bool insert(std::uint64_t key, std::uint64_t value) {
    const std::uint32_t b = bucket_of(key);
    std::uint32_t idx = heads_[b].load();
    while (idx != kNull) {
      Node& n = pool_[idx];
      if (n.key.load() == key) {
        n.value.store(value);
        return false;
      }
      idx = n.next.load();
    }
    const std::uint32_t fresh = alloc_node();
    if (fresh == kNull) return false;  // pool exhausted: drop (bounded map)
    Node& n = pool_[fresh];
    n.key.store(key);
    n.value.store(value);
    n.next.store(heads_[b].load());
    heads_[b].store(fresh);
    return true;
  }

  /// Erase; call inside a write critical section.
  bool erase(std::uint64_t key) {
    const std::uint32_t b = bucket_of(key);
    std::uint32_t idx = heads_[b].load();
    std::uint32_t prev = kNull;
    while (idx != kNull) {
      Node& n = pool_[idx];
      if (n.key.load() == key) {
        const std::uint32_t next = n.next.load();
        if (prev == kNull) {
          heads_[b].store(next);
        } else {
          pool_[prev].next.store(next);
        }
        free_node(idx);
        return true;
      }
      prev = idx;
      idx = n.next.load();
    }
    return false;
  }

  // --- uninstrumented verification helpers (quiescent state only) ---------

  std::size_t raw_size() const {
    std::size_t n = 0;
    for (const auto& h : heads_) {
      std::uint32_t idx = h.raw_load();
      while (idx != kNull) {
        ++n;
        idx = pool_[idx].next.raw_load();
      }
    }
    return n;
  }

  bool raw_contains(std::uint64_t key) const {
    std::uint32_t idx = heads_[bucket_of(key)].raw_load();
    while (idx != kNull) {
      if (pool_[idx].key.raw_load() == key) return true;
      idx = pool_[idx].next.raw_load();
    }
    return false;
  }

  const Config& config() const noexcept { return cfg_; }

 private:
  static constexpr std::uint32_t kNull = 0xffffffffu;
  static constexpr std::uint64_t kValueTag = 0x5eed5eed5eed5eedULL;

  struct Node {
    htm::Shared<std::uint64_t> key;
    htm::Shared<std::uint64_t> value;
    htm::Shared<std::uint32_t> next;
  };

  struct ThreadAlloc {
    htm::Shared<std::uint32_t> free_head;
    htm::Shared<std::uint32_t> bump;
    std::uint32_t bump_end = 0;
  };

  /// Splits pool nodes [first, capacity) evenly into per-thread bump
  /// regions so concurrent writers never contend on an allocator.
  void carve_regions(std::uint32_t first) {
    const std::uint32_t remaining = cfg_.capacity - first;
    const std::uint32_t per_thread =
        remaining / static_cast<std::uint32_t>(alloc_.size());
    std::uint32_t cursor = first;
    for (auto& a : alloc_) {
      a.value.bump.raw_store(cursor);
      a.value.bump_end = cursor + per_thread;
      cursor += per_thread;
    }
  }

  std::uint32_t bucket_of(std::uint64_t key) const noexcept {
    return static_cast<std::uint32_t>(htm::detail::mix64(key) % cfg_.buckets);
  }

  std::uint32_t alloc_node() {
    auto& a = alloc_[static_cast<std::size_t>(platform::thread_id())].value;
    const std::uint32_t head = a.free_head.load();
    if (head != kNull) {
      a.free_head.store(pool_[head].next.load());
      return head;
    }
    const std::uint32_t b = a.bump.load();
    if (b < a.bump_end) {
      a.bump.store(b + 1);
      return b;
    }
    return kNull;
  }

  void free_node(std::uint32_t idx) {
    auto& a = alloc_[static_cast<std::size_t>(platform::thread_id())].value;
    pool_[idx].next.store(a.free_head.load());
    a.free_head.store(idx);
  }

  Config cfg_;
  // Cache-line-aligned so the object-to-line geometry (and with it HTM
  // footprints) is identical for every run of a given configuration.
  aligned_vector<htm::Shared<std::uint32_t>> heads_;
  aligned_vector<Node> pool_;
  std::vector<CacheLinePadded<ThreadAlloc>> alloc_;
};

}  // namespace sprwl::workloads
