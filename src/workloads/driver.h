// Generic workload driver: runs a lock-protected hash-map workload under
// the virtual-time simulator and collects everything the paper's plots
// need — throughput, per-type latencies, commit-mode breakdown and abort
// breakdown.
//
// The driver is templated on the lock type; every lock in this library
// exposes the same region interface (read(cs_id, f) / write(cs_id, f)),
// stats() and reset_stats().
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/costs.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "htm/engine.h"
#include "locks/stats.h"
#include "sim/simulator.h"
#include "workloads/hashmap.h"

namespace sprwl::workloads {

struct DriverConfig {
  int threads = 4;
  double update_ratio = 0.1;
  int lookups_per_read = 10;
  std::uint64_t key_space = 1u << 16;
  std::uint64_t warmup_cycles = 1'000'000;
  std::uint64_t measure_cycles = 10'000'000;
  std::uint64_t seed = 1;
  int read_cs_id = 0;
  int write_cs_id = 1;
};

struct RunResult {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  double duration_cycles = 0;
  LatencyHistogram read_latency;
  LatencyHistogram write_latency;
  locks::LockStats lock_stats;
  htm::EngineStats engine_stats;
  std::uint64_t reader_aborts = 0;  ///< SpRWL / RW-LE "reader" abort class

  std::uint64_t committed() const noexcept { return reads + writes; }

  /// Committed critical sections per second of virtual time.
  double throughput_tx_s() const noexcept {
    if (duration_cycles <= 0) return 0;
    return static_cast<double>(committed()) / duration_cycles * g_costs.ghz * 1e9;
  }
};

namespace detail {

template <class Lock>
std::uint64_t reader_abort_count(const Lock& lock) {
  if constexpr (requires { lock.reader_abort_count(); }) {
    return lock.reader_abort_count();
  } else {
    return 0;
  }
}

}  // namespace detail

/// Runs the mixed lookup/insert/delete workload of Section 4.1 for
/// cfg.measure_cycles of virtual time after a warmup, and aggregates
/// per-thread results. Deterministic given cfg.seed.
template <class Lock>
RunResult run_hashmap(sim::Simulator& sim, htm::Engine& engine, Lock& lock,
                      HashMap& map, const DriverConfig& cfg) {
  struct ThreadResult {
    std::uint64_t reads = 0, writes = 0;
    LatencyHistogram read_latency, write_latency;
  };
  std::vector<ThreadResult> results(static_cast<std::size_t>(cfg.threads));

  engine.reset_stats();
  lock.reset_stats();

  const std::uint64_t measure_start = cfg.warmup_cycles;
  const std::uint64_t measure_end = cfg.warmup_cycles + cfg.measure_cycles;

  // Installed once around the whole run (not per fiber): fibers finish at
  // different virtual times, and a per-fiber scope would uninstall the
  // engine under the feet of the fibers still running. Scoping on the
  // calling thread also keeps concurrent bench workers isolated — the
  // engine resolves through a thread-local first, and every fiber of this
  // simulator runs on this OS thread.
  htm::EngineScope scope(engine);
  sim.run(cfg.threads, [&](int tid) {
    Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(tid));
    ThreadResult& mine = results[static_cast<std::size_t>(tid)];
    for (;;) {
      const std::uint64_t t0 = platform::now();
      if (t0 >= measure_end) break;
      const bool measured = t0 >= measure_start;
      if (rng.next_bool(cfg.update_ratio)) {
        const std::uint64_t key = rng.next_below(cfg.key_space);
        const bool do_insert = rng.next_bool(0.5);
        lock.write(cfg.write_cs_id, [&] {
          if (do_insert) {
            map.insert(key, key * 3 + 1);
          } else {
            map.erase(key);
          }
        });
        if (measured) {
          ++mine.writes;
          mine.write_latency.record(platform::now() - t0);
        }
      } else {
        lock.read(cfg.read_cs_id, [&] {
          for (int i = 0; i < cfg.lookups_per_read; ++i) {
            map.lookup(rng.next_below(cfg.key_space));
          }
        });
        if (measured) {
          ++mine.reads;
          mine.read_latency.record(platform::now() - t0);
        }
      }
      platform::advance(g_costs.local_work);  // between-ops private work
    }
  });

  RunResult out;
  for (const ThreadResult& r : results) {
    out.reads += r.reads;
    out.writes += r.writes;
    out.read_latency.merge(r.read_latency);
    out.write_latency.merge(r.write_latency);
  }
  out.duration_cycles = static_cast<double>(cfg.measure_cycles);
  out.lock_stats = lock.stats();
  out.engine_stats = engine.stats();
  out.reader_aborts = detail::reader_abort_count(lock);
  return out;
}

}  // namespace sprwl::workloads
