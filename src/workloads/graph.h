// Graph workload: "long traversals" (the second workload class the paper's
// introduction motivates alongside range queries).
//
// A directed graph in pooled adjacency lists over htm::Shared cells:
// readers run bounded breadth-first traversals (hundreds to thousands of
// shared loads — far beyond any HTM capacity), writers add or remove single
// edges. Like the hash map, the structure is plain sequential code; the
// enclosing RWLock provides all concurrency control, so the structure works
// identically under HTM writers, SGL writers and uninstrumented readers.
#pragma once

#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/aligned.h"
#include "common/cacheline.h"
#include "common/rng.h"
#include "htm/shared.h"

namespace sprwl::workloads {

class Graph {
 public:
  struct Config {
    std::uint32_t nodes = 4096;
    std::uint32_t edge_capacity = 1u << 16;  ///< edge-cell pool size
    int max_threads = 64;
  };

  explicit Graph(Config cfg)
      : cfg_(cfg),
        heads_(cfg.nodes),
        pool_(cfg.edge_capacity),
        alloc_(static_cast<std::size_t>(cfg.max_threads)) {
    if (cfg.nodes == 0) throw std::invalid_argument("nodes must be > 0");
    for (auto& h : heads_) h.raw_store(kNull);
    for (auto& a : alloc_) a.value.free_head.raw_store(kNull);
    carve_regions(0);
  }

  /// Single-threaded population with `edges` random edges; consumes pool
  /// cells from the front and re-carves the remainder into per-thread
  /// segments.
  void populate(std::uint64_t edges, Rng& rng) {
    for (std::uint64_t i = 0; i < edges; ++i) {
      const auto from = static_cast<std::uint32_t>(rng.next_below(cfg_.nodes));
      const auto to = static_cast<std::uint32_t>(rng.next_below(cfg_.nodes));
      raw_add_edge(from, to);
    }
    carve_regions(populate_cursor_);
  }

  /// Adds edge from->to; call inside a write critical section. Returns
  /// false if the edge exists or the caller's pool segment is exhausted.
  bool add_edge(std::uint32_t from, std::uint32_t to) {
    std::uint32_t e = heads_[from].load();
    while (e != kNull) {
      const Edge& edge = pool_[e];
      if (edge.to.load() == to) return false;
      e = edge.next.load();
    }
    const std::uint32_t fresh = alloc_edge();
    if (fresh == kNull) return false;
    Edge& edge = pool_[fresh];
    edge.to.store(to);
    edge.next.store(heads_[from].load());
    heads_[from].store(fresh);
    return true;
  }

  /// Removes edge from->to; call inside a write critical section.
  bool remove_edge(std::uint32_t from, std::uint32_t to) {
    std::uint32_t e = heads_[from].load();
    std::uint32_t prev = kNull;
    while (e != kNull) {
      Edge& edge = pool_[e];
      if (edge.to.load() == to) {
        const std::uint32_t next = edge.next.load();
        if (prev == kNull) {
          heads_[from].store(next);
        } else {
          pool_[prev].next.store(next);
        }
        free_edge(e);
        return true;
      }
      prev = e;
      e = edge.next.load();
    }
    return false;
  }

  /// Bounded BFS from `start`: number of distinct nodes reached within
  /// `max_visits` dequeues — the long-traversal reader. Uses only stack /
  /// private memory besides the shared adjacency cells.
  std::uint32_t bfs_count(std::uint32_t start, std::uint32_t max_visits) const {
    // Private scratch: visited bitmap + queue. Allocation is private
    // memory and therefore invisible to conflict detection, like a real
    // traversal's working set.
    std::vector<std::uint64_t> visited((cfg_.nodes + 63) / 64, 0);
    std::vector<std::uint32_t> queue;
    queue.reserve(max_visits);
    auto mark = [&](std::uint32_t n) {
      auto& word = visited[n >> 6];
      const std::uint64_t bit = 1ULL << (n & 63);
      const bool fresh = (word & bit) == 0;
      word |= bit;
      return fresh;
    };
    mark(start);
    queue.push_back(start);
    std::uint32_t reached = 1;
    std::size_t head = 0;
    while (head < queue.size() && head < max_visits) {
      const std::uint32_t n = queue[head++];
      std::uint32_t e = heads_[n].load();
      while (e != kNull) {
        const Edge& edge = pool_[e];
        const std::uint32_t to = edge.to.load();
        if (mark(to)) {
          ++reached;
          queue.push_back(to);
        }
        e = edge.next.load();
      }
    }
    return reached;
  }

  /// Membership test; call inside a read (or write) critical section.
  bool has_edge(std::uint32_t from, std::uint32_t to) const {
    std::uint32_t e = heads_[from].load();
    while (e != kNull) {
      if (pool_[e].to.load() == to) return true;
      e = pool_[e].next.load();
    }
    return false;
  }

  /// Out-degree of a node (short reader).
  std::uint32_t degree(std::uint32_t node) const {
    std::uint32_t n = 0;
    std::uint32_t e = heads_[node].load();
    while (e != kNull) {
      ++n;
      e = pool_[e].next.load();
    }
    return n;
  }

  // --- raw verification (quiescent state only) -----------------------------

  std::size_t raw_edge_count() const {
    std::size_t n = 0;
    for (const auto& h : heads_) {
      std::uint32_t e = h.raw_load();
      while (e != kNull) {
        ++n;
        e = pool_[e].next.raw_load();
      }
    }
    return n;
  }

  bool raw_has_edge(std::uint32_t from, std::uint32_t to) const {
    std::uint32_t e = heads_[from].raw_load();
    while (e != kNull) {
      if (pool_[e].to.raw_load() == to) return true;
      e = pool_[e].next.raw_load();
    }
    return false;
  }

  const Config& config() const noexcept { return cfg_; }

 private:
  static constexpr std::uint32_t kNull = 0xffffffffu;

  struct Edge {
    htm::Shared<std::uint32_t> to;
    htm::Shared<std::uint32_t> next;
  };

  struct ThreadAlloc {
    htm::Shared<std::uint32_t> free_head;
    htm::Shared<std::uint32_t> bump;
    std::uint32_t bump_end = 0;
  };

  void carve_regions(std::uint32_t first) {
    const std::uint32_t remaining = cfg_.edge_capacity - first;
    const std::uint32_t per_thread =
        remaining / static_cast<std::uint32_t>(alloc_.size());
    std::uint32_t cursor = first;
    for (auto& a : alloc_) {
      a.value.bump.raw_store(cursor);
      a.value.bump_end = cursor + per_thread;
      cursor += per_thread;
    }
  }

  void raw_add_edge(std::uint32_t from, std::uint32_t to) {
    // Population-time variant of add_edge using raw accessors.
    std::uint32_t e = heads_[from].raw_load();
    while (e != kNull) {
      if (pool_[e].to.raw_load() == to) return;
      e = pool_[e].next.raw_load();
    }
    if (populate_cursor_ >= cfg_.edge_capacity) return;
    const std::uint32_t fresh = populate_cursor_++;
    pool_[fresh].to.raw_store(to);
    pool_[fresh].next.raw_store(heads_[from].raw_load());
    heads_[from].raw_store(fresh);
  }

  std::uint32_t alloc_edge() {
    auto& a = alloc_[static_cast<std::size_t>(platform::thread_id()) %
                     alloc_.size()]
                  .value;
    const std::uint32_t head = a.free_head.load();
    if (head != kNull) {
      a.free_head.store(pool_[head].next.load());
      return head;
    }
    const std::uint32_t b = a.bump.load();
    if (b < a.bump_end) {
      a.bump.store(b + 1);
      return b;
    }
    return kNull;
  }

  void free_edge(std::uint32_t e) {
    auto& a = alloc_[static_cast<std::size_t>(platform::thread_id()) %
                     alloc_.size()]
                  .value;
    pool_[e].next.store(a.free_head.load());
    a.free_head.store(e);
  }

  Config cfg_;
  std::uint32_t populate_cursor_ = 0;
  aligned_vector<htm::Shared<std::uint32_t>> heads_;
  aligned_vector<Edge> pool_;
  std::vector<CacheLinePadded<ThreadAlloc>> alloc_;
};

}  // namespace sprwl::workloads
