// The million-lock scale-out workload (ROADMAP: lock-table scale-out;
// DESIGN.md §12): a key-value table where EVERY key has its own SpRWL
// instance — the regime databases and runtimes actually run read-write
// locks in (per-row latches, per-bucket locks, B+-tree leaf latches), and
// the regime the paper's single-lock benchmarks never touch.
//
// Two things dominate here and both are properties of the *lock*, not the
// protected data:
//
//  * footprint — O(threads) words per lock is fatal at 10^6 locks. The
//    table exists to measure bytes/lock for the lazily-planed, BRAVO-biased
//    SpRWLock against the eager flat baseline;
//  * skew — popularity is zipfian (Gray et al.'s generator, the YCSB
//    distribution). Hot keys see real reader/writer traffic and exercise
//    bias revocation; the cold tail (the overwhelming majority) must cost
//    nothing but its shell.
//
// Data layout is B+-tree-leaf striped: values live in 64-byte leaf lines of
// kKeysPerLeaf keys × 2 words each, so neighbouring keys share a cache line
// exactly as leaf entries do — a reader's optional leaf scan touches the
// whole line while its lock only covers one key (realistic false sharing
// across lock instances). Each key's two words maintain the invariant
// w1 == w0 ^ kTag; writers bump the pair through their key's lock and a
// torn read (a writer committing over a live reader) is detected by the
// reader as an invariant violation — the workload doubles as a whole-stack
// correctness check.
#pragma once

#include <cmath>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <vector>

#include "common/aligned.h"
#include "common/costs.h"
#include "common/histogram.h"
#include "common/platform.h"
#include "common/rng.h"
#include "core/sprwl.h"
#include "htm/engine.h"
#include "htm/shared.h"
#include "sim/simulator.h"

namespace sprwl::workloads {

/// Zipfian rank generator after Gray et al. (SIGMOD'94), the YCSB
/// formulation: next() returns a rank in [0, n) where rank 0 is the most
/// popular. The O(n) zeta precomputation runs once at construction; next()
/// is constant-time. Deterministic given the caller's Rng.
class Zipfian {
 public:
  explicit Zipfian(std::uint64_t n, double theta = 0.99)
      : n_(n), theta_(theta) {
    if (n < 2) throw std::invalid_argument("Zipfian needs n >= 2");
    double zn = 0.0;
    double z2 = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      zn += 1.0 / std::pow(static_cast<double>(i), theta);
      if (i == 2) z2 = zn;
    }
    zetan_ = zn;
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - z2 / zn);
  }

  std::uint64_t next(Rng& rng) const {
    const double u = rng.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto r = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return r < n_ ? r : n_ - 1;
  }

  std::uint64_t n() const noexcept { return n_; }

 private:
  std::uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
};

class LockTable {
 public:
  /// Keys sharing one 64-byte leaf line (2 words per key, 8 words per line).
  static constexpr std::uint64_t kKeysPerLeaf = 4;

  struct Config {
    /// Number of keys = number of locks. Must be a power of two >= 4 (the
    /// zipfian rank-to-key scramble below is only bijective on a
    /// power-of-two ring, and a leaf holds 4 keys).
    std::uint64_t keys = std::uint64_t{1} << 16;
    /// Per-key lock configuration, copied into every lock. For the bravo
    /// variants, lock.bravo_table is shared by all of them (per-key dense
    /// ids are registered here, in key order, single-threaded — so slot
    /// hashes and virtual-time traces are reproducible).
    core::Config lock;
  };

  explicit LockTable(Config cfg) : cfg_(cfg), words_(check_keys(cfg.keys) * 2) {
    for (std::uint64_t k = 0; k < cfg_.keys; ++k) {
      words_[word0_of(k)].raw_store(0);
      words_[word0_of(k) + 1].raw_store(kTag);
      locks_.emplace_back(cfg_.lock);
    }
  }

  std::uint64_t keys() const noexcept { return cfg_.keys; }
  core::SpRWLock& lock_of(std::uint64_t key) { return locks_[key]; }

  /// Zipfian ranks are ordered by popularity, which without scrambling
  /// would make keys 0..k the hot set — consecutive, same-leaf, same
  /// cache lines, an accidental best case. The odd-multiplier scramble is
  /// a bijection on the power-of-two key ring (odd numbers are invertible
  /// mod 2^k), spreading the hot set across leaves the way real key
  /// popularity spreads across a B+-tree.
  std::uint64_t key_of_rank(std::uint64_t rank) const noexcept {
    return (rank * 0x9E3779B97F4A7C15ULL) & (cfg_.keys - 1);
  }

  /// Read operation; call inside lock_of(key)'s READ critical section.
  /// Returns false on an invariant violation — a torn read, which no
  /// correct lock ever exposes. leaf_scan additionally reads the rest of
  /// the key's leaf line (the B+-tree "scan the leaf you landed on"
  /// pattern); those words belong to OTHER keys under other locks, so
  /// only the traffic matters, never their invariant.
  bool verify_key(std::uint64_t key, bool leaf_scan = true) const {
    const std::uint64_t w0 = word0_of(key);
    const std::uint64_t a = words_[w0].load();
    const std::uint64_t b = words_[w0 + 1].load();
    if (leaf_scan) {
      const std::uint64_t base = w0 & ~std::uint64_t{7};  // leaf line start
      std::uint64_t sink = 0;
      for (std::uint64_t i = 0; i < 2 * kKeysPerLeaf; ++i) {
        if (base + i == w0 || base + i == w0 + 1) continue;
        sink ^= words_[base + i].load();
      }
      sink_.raw_store(sink);  // keep the loads observable
    }
    return b == (a ^ kTag);
  }

  /// Write operation; call inside lock_of(key)'s WRITE critical section.
  void bump_key(std::uint64_t key) {
    const std::uint64_t w0 = word0_of(key);
    const std::uint64_t v = words_[w0].load() + 1;
    words_[w0].store(v);
    words_[w0 + 1].store(v ^ kTag);
  }

  /// Quiescent-state check (no virtual-time charge): every key's pair
  /// intact. Used by tests after a run.
  bool raw_all_intact() const {
    for (std::uint64_t k = 0; k < cfg_.keys; ++k) {
      const std::uint64_t w0 = word0_of(k);
      if (words_[w0 + 1].raw_load() != (words_[w0].raw_load() ^ kTag)) {
        return false;
      }
    }
    return true;
  }

  std::uint64_t raw_version_of(std::uint64_t key) const {
    return words_[word0_of(key)].raw_load();
  }

  void reset_stats() {
    for (auto& l : locks_) l.reset_stats();
  }

  /// Whole-table accounting, summed over every lock. The scan is uncharged
  /// bookkeeping; with the lazy plane it is cheap even at 10^6 locks
  /// because cold locks answer from their shell.
  struct Totals {
    std::uint64_t locks = 0;
    std::uint64_t locks_with_plane = 0;
    /// Per-lock bytes: shells plus every allocated plane. The shared bravo
    /// table is reported separately (it amortizes across all locks).
    std::size_t lock_bytes = 0;
    std::size_t shared_table_bytes = 0;
    std::uint64_t bias_reads = 0;
    std::uint64_t revocations = 0;
    std::uint64_t revoke_cycles = 0;
    std::uint64_t rebias = 0;

    double bytes_per_lock() const noexcept {
      if (locks == 0) return 0.0;
      return static_cast<double>(lock_bytes + shared_table_bytes) /
             static_cast<double>(locks);
    }
    /// Mean virtual cycles one bias revocation (table drain) cost writers.
    double revocation_latency() const noexcept {
      if (revocations == 0) return 0.0;
      return static_cast<double>(revoke_cycles) /
             static_cast<double>(revocations);
    }
  };

  Totals totals() const {
    Totals t;
    t.locks = cfg_.keys;
    for (const auto& l : locks_) {
      if (l.has_plane()) ++t.locks_with_plane;
      t.lock_bytes += l.footprint_bytes();
      t.bias_reads += l.bias_read_count();
      t.revocations += l.revocation_count();
      t.revoke_cycles += l.revocation_cycles();
      t.rebias += l.rebias_count();
    }
    if (cfg_.lock.bravo_table != nullptr) {
      t.shared_table_bytes = cfg_.lock.bravo_table->footprint_bytes();
    }
    return t;
  }

  /// Commit-mode/abort breakdown aggregated over every lock.
  locks::LockStats stats() const {
    locks::LockStats s;
    for (const auto& l : locks_) {
      const locks::LockStats one = l.stats();
      s.reads += one.reads;
      s.writes += one.writes;
      s.aborts += one.aborts;
      s.escalations += one.escalations;
    }
    return s;
  }

  std::uint64_t reader_aborts() const {
    std::uint64_t n = 0;
    for (const auto& l : locks_) n += l.reader_abort_count();
    return n;
  }

  const Config& config() const noexcept { return cfg_; }

 private:
  static constexpr std::uint64_t kTag = 0x5eedc0de5eedc0deULL;

  static std::uint64_t check_keys(std::uint64_t keys) {
    if (keys < kKeysPerLeaf || (keys & (keys - 1)) != 0) {
      throw std::invalid_argument(
          "LockTable: keys must be a power of two >= 4");
    }
    return keys;
  }

  /// Leaf-striped word index of key k's first word: leaf line k/4, slot
  /// (k%4)*2 within the line. aligned_vector is 64-byte aligned, so word
  /// indices [8i, 8i+8) are one cache line — one leaf.
  static std::uint64_t word0_of(std::uint64_t k) noexcept {
    return (k / kKeysPerLeaf) * 8 + (k % kKeysPerLeaf) * 2;
  }

  Config cfg_;
  aligned_vector<htm::Shared<std::uint64_t>> words_;
  /// deque: SpRWLock is neither copyable nor movable, and a deque grows
  /// without relocating elements.
  std::deque<core::SpRWLock> locks_;
  /// Leaf-scan sink so the extra loads cannot be optimized away; raw-stored
  /// (uncharged — the loads are the modelled work, the sink is bookkeeping).
  mutable htm::Shared<std::uint64_t> sink_;
};

struct LockTableDriverConfig {
  int threads = 4;
  double update_ratio = 0.01;
  double zipf_theta = 0.99;
  bool leaf_scan = true;
  std::uint64_t warmup_cycles = 200'000;
  std::uint64_t measure_cycles = 2'000'000;
  std::uint64_t seed = 1;
  int read_cs_id = 0;
  int write_cs_id = 1;
};

struct LockTableRunResult {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  /// Reads whose invariant check failed — torn reads. Always 0 for a
  /// correct lock; the broken checker variants exist to make it nonzero.
  std::uint64_t invariant_failures = 0;
  double duration_cycles = 0;
  LatencyHistogram read_latency;
  LatencyHistogram write_latency;
  locks::LockStats lock_stats;
  htm::EngineStats engine_stats;
  std::uint64_t reader_aborts = 0;
  LockTable::Totals totals;

  std::uint64_t committed() const noexcept { return reads + writes; }
  double throughput_tx_s() const noexcept {
    if (duration_cycles <= 0) return 0;
    return static_cast<double>(committed()) / duration_cycles * g_costs.ghz *
           1e9;
  }
};

/// Runs the zipfian per-key-lock workload for cfg.measure_cycles of virtual
/// time after a warmup. Deterministic given cfg.seed. Each operation draws
/// a zipfian rank, scrambles it to a key, and takes THAT key's lock — reads
/// verify the key's invariant pair (plus the optional leaf scan), writes
/// bump it.
inline LockTableRunResult run_lock_table(sim::Simulator& sim,
                                         htm::Engine& engine, LockTable& table,
                                         const LockTableDriverConfig& cfg) {
  struct ThreadResult {
    std::uint64_t reads = 0, writes = 0, failures = 0;
    LatencyHistogram read_latency, write_latency;
  };
  std::vector<ThreadResult> results(static_cast<std::size_t>(cfg.threads));

  engine.reset_stats();
  table.reset_stats();

  const Zipfian zipf(table.keys(), cfg.zipf_theta);
  const std::uint64_t measure_start = cfg.warmup_cycles;
  const std::uint64_t measure_end = cfg.warmup_cycles + cfg.measure_cycles;

  htm::EngineScope scope(engine);
  sim.run(cfg.threads, [&](int tid) {
    Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(tid));
    ThreadResult& mine = results[static_cast<std::size_t>(tid)];
    for (;;) {
      const std::uint64_t t0 = platform::now();
      if (t0 >= measure_end) break;
      const bool measured = t0 >= measure_start;
      const std::uint64_t key = table.key_of_rank(zipf.next(rng));
      core::SpRWLock& lock = table.lock_of(key);
      if (rng.next_bool(cfg.update_ratio)) {
        lock.write(cfg.write_cs_id, [&] { table.bump_key(key); });
        if (measured) {
          ++mine.writes;
          mine.write_latency.record(platform::now() - t0);
        }
      } else {
        bool ok = true;
        lock.read(cfg.read_cs_id,
                  [&] { ok = table.verify_key(key, cfg.leaf_scan); });
        if (!ok) ++mine.failures;
        if (measured) {
          ++mine.reads;
          mine.read_latency.record(platform::now() - t0);
        }
      }
      platform::advance(g_costs.local_work);
    }
  });

  LockTableRunResult out;
  for (const ThreadResult& r : results) {
    out.reads += r.reads;
    out.writes += r.writes;
    out.invariant_failures += r.failures;
    out.read_latency.merge(r.read_latency);
    out.write_latency.merge(r.write_latency);
  }
  out.duration_cycles = static_cast<double>(cfg.measure_cycles);
  out.lock_stats = table.stats();
  out.engine_stats = engine.stats();
  out.reader_aborts = table.reader_aborts();
  out.totals = table.totals();
  return out;
}

}  // namespace sprwl::workloads
