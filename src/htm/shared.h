// Shared memory cells: the boundary between algorithm code and the HTM
// emulator.
//
// On real hardware, any load/store inside a transaction is transactional
// and any access outside is plain — the instruction stream is identical.
// Under emulation, data shared between transactional writers and
// uninstrumented readers lives in Shared<T> cells that perform the same
// dispatch: inside a transaction the access goes through the engine
// (redo log / read-set), outside it is a plain atomic access. The only cost
// an "uninstrumented" reader pays is a thread-local in-transaction check —
// there is no per-access synchronization, which is the whole point of
// SpRWL's uninstrumented readers.
//
// store()/cas() outside a transaction are strong-isolation accesses: a
// lock-free publish cycle on the owning line's versioned lock that bumps
// the line version — invalidating the line in live transactions' read sets
// — and drains any commit already past validation (what cache coherence
// does on real HTM). Stores to different lines never serialize with each
// other or with disjoint commits. That is exactly the behaviour SpRWL's
// safety argument needs for the reader state flags and the SGL word, and
// it is also what makes SGL-fallback writers' plain stores abort
// conflicting transactions.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>

#include "common/costs.h"
#include "common/platform.h"
#include "htm/engine.h"

namespace sprwl::htm {

template <class T>
class Shared;

std::uint64_t line_or(Engine& e, const Shared<std::uint64_t>* first,
                      std::size_t n);
std::uint64_t line_or_plain(const Shared<std::uint64_t>* first, std::size_t n);

template <class T>
class Shared {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "Shared<T> requires a trivially copyable T of at most 8 bytes");

 public:
  Shared() = default;
  explicit Shared(T v) noexcept { cell_.store(encode(v), std::memory_order_relaxed); }

  /// Transaction-aware load. Plain (uninstrumented) outside a transaction —
  /// with owner tracking on, the plain path still reports the access so the
  /// line's topology-tiered transfer cost (and ownership migration) is
  /// charged; without tracking (the default) the extra branch is one
  /// predictable flag test.
  T load() const {
    Engine* e = Engine::current();
    if (e != nullptr) {
      if (e->in_tx()) return decode(e->tx_read(cell_));
      // MVCC snapshot sections (core::SpRWLock::read_snapshot) route every
      // load through the version lookup; threads outside a snapshot — and
      // every thread of an engine without retained versions — pay one flag
      // test. Throws SnapshotMiss when the pinned version left the ring.
      if (e->in_snapshot()) return decode(e->snapshot_read(cell_));
      if (e->tracks_owners()) e->plain_access(&cell_);
    }
    platform::advance(g_costs.load);
    return decode(cell_.load(std::memory_order_acquire));
  }

  /// Transaction-aware store. Outside a transaction this is a
  /// strong-isolation store (serialized with commits).
  void store(T v) {
    Engine* e = Engine::current();
    if (e != nullptr) {
      if (e->in_tx()) {
        e->tx_write(cell_, encode(v));
      } else {
        e->nontx_store(cell_, encode(v));
      }
      return;
    }
    platform::advance(g_costs.store);
    cell_.store(encode(v), std::memory_order_release);
  }

  /// Transaction-aware compare-and-swap (used by SNZI). Inside a
  /// transaction this is simply a read-check-write on the redo log; outside
  /// it is a strong-isolation CAS.
  bool cas(T expected, T desired) {
    Engine* e = Engine::current();
    if (e != nullptr) {
      if (e->in_tx()) {
        if (decode(e->tx_read(cell_)) != expected) return false;
        e->tx_write(cell_, encode(desired));
        return true;
      }
      return e->nontx_cas(cell_, encode(expected), encode(desired));
    }
    platform::advance(g_costs.cas);
    std::uint64_t exp = encode(expected);
    return cell_.compare_exchange_strong(exp, encode(desired),
                                         std::memory_order_acq_rel);
  }

  /// Raw accessors for single-threaded phases (population, verification).
  /// They bypass the engine and charge no virtual time.
  T raw_load() const noexcept { return decode(cell_.load(std::memory_order_relaxed)); }
  void raw_store(T v) noexcept { cell_.store(encode(v), std::memory_order_relaxed); }

 private:
  friend std::uint64_t line_or(Engine& e, const Shared<std::uint64_t>* first,
                               std::size_t n);
  friend std::uint64_t line_or_plain(const Shared<std::uint64_t>* first,
                                     std::size_t n);

  static std::uint64_t encode(T v) noexcept {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(T));
    return bits;
  }
  static T decode(std::uint64_t bits) noexcept {
    T v;
    std::memcpy(&v, &bits, sizeof(T));
    return v;
  }

  mutable std::atomic<std::uint64_t> cell_{0};
};

/// Fixed-capacity string stored as shared 8-byte words (TPC-C rows carry
/// CHAR/VARCHAR fields that update transactions overwrite).
template <std::size_t N>
class SharedString {
  static constexpr std::size_t kWords = (N + 7) / 8;

 public:
  void assign(std::string_view s) {
    std::size_t n = s.size() < N ? s.size() : N;
    size_.store(static_cast<std::uint32_t>(n));
    for (std::size_t w = 0; w * 8 < n; ++w) {
      std::uint64_t bits = 0;
      const std::size_t chunk = (n - w * 8 < 8) ? n - w * 8 : 8;
      std::memcpy(&bits, s.data() + w * 8, chunk);
      words_[w].store(bits);
    }
  }

  std::string str() const {
    const std::size_t n = size_.load();
    std::string out(n, '\0');
    for (std::size_t w = 0; w * 8 < n; ++w) {
      const std::uint64_t bits = words_[w].load();
      const std::size_t chunk = (n - w * 8 < 8) ? n - w * 8 : 8;
      std::memcpy(out.data() + w * 8, &bits, chunk);
    }
    return out;
  }

  /// Population-time assign: raw stores, no engine involvement.
  void raw_assign(std::string_view s) noexcept {
    std::size_t n = s.size() < N ? s.size() : N;
    size_.raw_store(static_cast<std::uint32_t>(n));
    for (std::size_t w = 0; w * 8 < n; ++w) {
      std::uint64_t bits = 0;
      const std::size_t chunk = (n - w * 8 < 8) ? n - w * 8 : 8;
      std::memcpy(&bits, s.data() + w * 8, chunk);
      words_[w].raw_store(bits);
    }
  }

  static constexpr std::size_t capacity() noexcept { return N; }

 private:
  Shared<std::uint32_t> size_;
  Shared<std::uint64_t> words_[kWords];
};

/// Transactional OR-summary of `n` consecutive Shared<uint64_t> cells that
/// share one 64-byte cache line (n <= 8; e.g. a 64-byte-aligned
/// aligned_vector of per-thread state words). One load charge, one
/// read-set entry — SpRWL's batched commit-time reader scan reads a whole
/// line of flags per step instead of one word. Must be called inside a
/// transaction on `e`. Shared<uint64_t> is exactly its 8-byte cell, so
/// consecutive elements map to consecutive words of the line.
inline std::uint64_t line_or(Engine& e, const Shared<std::uint64_t>* first,
                             std::size_t n) {
  static_assert(sizeof(Shared<std::uint64_t>) == sizeof(std::uint64_t),
                "Shared<uint64_t> must be exactly its cell");
  return e.tx_read_line_or(&first->cell_, n);
}

/// Plain (non-transactional) OR-summary of `n` consecutive cells sharing
/// one 64-byte line (n <= 8) — the coherence-granular read the BRAVO
/// revocation drain uses to skip empty reader-table lines in one load
/// charge. Unlike line_or no read-set entry is created: the caller runs
/// outside any transaction (revocation happens before the writer's HTM
/// attempt), so a concurrently arriving reader is caught by the writer's
/// in-transaction bias subscription, not by this scan (DESIGN.md §12).
inline std::uint64_t line_or_plain(const Shared<std::uint64_t>* first,
                                   std::size_t n) {
  static_assert(sizeof(Shared<std::uint64_t>) == sizeof(std::uint64_t),
                "Shared<uint64_t> must be exactly its cell");
  Engine* e = Engine::current();
  if (e != nullptr && e->tracks_owners()) e->plain_access(&first->cell_);
  platform::advance(g_costs.load);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc |= first[i].cell_.load(std::memory_order_acquire);
  }
  return acc;
}

/// Full memory fence, charged to virtual time. The paper's readers issue
/// one after publishing their state flag and one before clearing it.
inline void memory_fence() {
  platform::advance(g_costs.fence);
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

}  // namespace sprwl::htm
